package store

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"implicitlayout/layout"
)

// collectDB drains db.Scan into parallel slices.
func collectDB(db *DB[uint64, string]) (keys []uint64, vals []string) {
	db.Scan(func(k uint64, v string) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	return keys, vals
}

func TestDBPutGetDelete(t *testing.T) {
	db, err := NewDB[uint64, string](DBConfig{MemLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, ok := db.Get(1); ok {
		t.Fatal("Get on empty DB reported a hit")
	}
	db.Put(1, "a")
	db.Put(2, "b")
	db.Put(1, "a2") // overwrite in memtable
	if v, ok := db.Get(1); !ok || v != "a2" {
		t.Fatalf("Get(1) = %q, %v; want \"a2\", true", v, ok)
	}
	db.Delete(2)
	if _, ok := db.Get(2); ok {
		t.Fatal("Get(2) after Delete reported a hit")
	}
	if db.Contains(2) {
		t.Fatal("Contains(2) after Delete")
	}
	db.Flush() // force everything into runs; semantics must not change
	if v, ok := db.Get(1); !ok || v != "a2" {
		t.Fatalf("after Flush Get(1) = %q, %v; want \"a2\", true", v, ok)
	}
	if _, ok := db.Get(2); ok {
		t.Fatal("after Flush Get(2) reported a hit; tombstone lost in flush")
	}
	db.Put(1, "a3") // newer memtable version must shadow the run
	if v, _ := db.Get(1); v != "a3" {
		t.Fatalf("Get(1) = %q, want memtable version \"a3\"", v)
	}
}

func TestDBTombstoneShadowsOlderRuns(t *testing.T) {
	db, err := NewDB[uint64, string](DBConfig{MemLimit: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.Put(10, "v1")
	db.Flush() // run A holds 10=v1
	db.Delete(10)
	db.Flush() // run B holds the tombstone; A still holds v1
	if _, ok := db.Get(10); ok {
		t.Fatal("tombstone in newer run failed to shadow older run")
	}
	keys, _ := collectDB(db)
	if len(keys) != 0 {
		t.Fatalf("Scan yielded %v; want nothing (deleted)", keys)
	}
}

func TestDBCompactionMergesAndDropsTombstones(t *testing.T) {
	db, err := NewDB[uint64, string](DBConfig{MemLimit: 4, Fanout: 2,
		Store: []Option{WithShards(2), WithLayout(layout.VEB)}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 64
	for i := uint64(0); i < n; i++ {
		db.Put(i, fmt.Sprint("v", i))
	}
	for i := uint64(0); i < n; i += 2 {
		db.Delete(i)
	}
	db.Flush()

	st := db.Stats()
	if st.MemRecords != 0 || st.FrozenTables != 0 {
		t.Fatalf("after Flush: %+v; want empty memtable and frozen list", st)
	}
	for i, lvl := range st.RunLevels {
		if i > 0 && lvl < st.RunLevels[i-1] {
			t.Fatalf("run levels not ascending: %v", st.RunLevels)
		}
	}
	// Tiered compaction with fanout 2 must have kept every level under 2
	// runs.
	count := map[int]int{}
	for _, lvl := range st.RunLevels {
		count[lvl]++
		if count[lvl] >= 2 {
			t.Fatalf("level %d holds %d runs, fanout invariant violated: %v",
				lvl, count[lvl], st.RunLevels)
		}
	}

	keys, vals := collectDB(db)
	var wantK []uint64
	var wantV []string
	for i := uint64(1); i < n; i += 2 {
		wantK = append(wantK, i)
		wantV = append(wantV, fmt.Sprint("v", i))
	}
	if !slices.Equal(keys, wantK) || !slices.Equal(vals, wantV) {
		t.Fatalf("Scan = %v/%v, want %v/%v", keys, vals, wantK, wantV)
	}

	// The deepest merge consumed the oldest run, so tombstones must be
	// physically gone: total run records == live records.
	total := 0
	for _, c := range db.Stats().RunRecords {
		total += c
	}
	if total != len(wantK) {
		t.Fatalf("runs hold %d records, want %d live (tombstones not dropped)",
			total, len(wantK))
	}
}

func TestDBRangeMergesAllLayers(t *testing.T) {
	for _, kind := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier} {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := NewDB[uint64, string](DBConfig{MemLimit: 16, Fanout: 3,
				Store: []Option{WithLayout(kind), WithShards(3), WithB(4)}})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			ref := map[uint64]string{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(500))
				switch rng.Intn(10) {
				case 0:
					db.Delete(k)
					delete(ref, k)
				default:
					v := fmt.Sprint("r", i)
					db.Put(k, v)
					ref[k] = v
				}
				if i == 1000 {
					db.Flush()
				}
			}

			check := func(lo, hi uint64) {
				t.Helper()
				var gotK []uint64
				var gotV []string
				db.Range(lo, hi, func(k uint64, v string) bool {
					gotK = append(gotK, k)
					gotV = append(gotV, v)
					return true
				})
				var wantK []uint64
				for k := range ref {
					if k >= lo && k <= hi {
						wantK = append(wantK, k)
					}
				}
				slices.Sort(wantK)
				wantV := make([]string, len(wantK))
				for i, k := range wantK {
					wantV[i] = ref[k]
				}
				if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
					t.Fatalf("Range(%d, %d): got %d records, want %d (first diff around %v)",
						lo, hi, len(gotK), len(wantK), firstDiff(gotK, wantK))
				}
			}
			check(0, 600)   // everything
			check(100, 250) // interior
			check(499, 499) // singleton
			check(600, 700) // empty, above
			db.Flush()
			check(0, 600) // after full compaction too

			// Early exit must stop the merge cleanly.
			seen := 0
			db.Scan(func(uint64, string) bool { seen++; return seen < 5 })
			if seen != 5 {
				t.Fatalf("early-exit Scan saw %d records, want 5", seen)
			}
		})
	}
}

func firstDiff(a, b []uint64) any {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: %d vs %d", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

func TestDBBackgroundFlush(t *testing.T) {
	db, err := NewDB[uint64, string](DBConfig{MemLimit: 32, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := uint64(0); i < 1000; i++ {
		db.Put(i, fmt.Sprint("v", i))
	}
	// The background worker races this check; Flush forces the backlog
	// down deterministically, then everything must be served from runs.
	db.Flush()
	st := db.Stats()
	if st.Runs() == 0 {
		t.Fatalf("no runs after 1000 writes with MemLimit 32: %+v", st)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := db.Get(i); !ok || v != fmt.Sprint("v", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
}

func TestDBConfigValidation(t *testing.T) {
	if _, err := NewDB[int, int](DBConfig{MemLimit: -1}); err == nil {
		t.Fatal("negative MemLimit accepted")
	}
	if _, err := NewDB[int, int](DBConfig{Fanout: 1}); err == nil {
		t.Fatal("Fanout 1 accepted (would merge forever)")
	}
	if _, err := NewDB[int, int](DBConfig{Store: []Option{WithLayout(layout.Kind(99))}}); err == nil {
		t.Fatal("unknown layout accepted")
	}
	// KeepAll must be overridden, not honored: the DB is KeepLast only.
	db, err := NewDB[int, int](DBConfig{MemLimit: 2, Store: []Option{WithDuplicates(KeepAll)}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put(1, 10)
	db.Put(1, 11)
	db.Put(2, 20)
	db.Flush()
	n := 0
	db.Scan(func(int, int) bool { n++; return true })
	if n != 2 {
		t.Fatalf("Scan saw %d records, want 2 (KeepAll must not leak into DB runs)", n)
	}
}

func TestDBCloseDrainsAndBlocksWrites(t *testing.T) {
	db, err := NewDB[int, int](DBConfig{MemLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		if err := db.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Close must have drained every layer into runs — the active
	// memtable AND all frozen tables — so a clean shutdown never
	// strands an acknowledged write in a volatile layer.
	st := db.Stats()
	if st.MemRecords != 0 || st.FrozenTables != 0 {
		t.Fatalf("after Close: %+v; want everything flushed into runs", st)
	}
	// The DB stays readable; writes are refused.
	for k := 1; k <= 10; k++ {
		if v, ok := db.Get(k); !ok || v != k {
			t.Fatalf("after Close: Get(%d) = %d, %v", k, v, ok)
		}
	}
	if err := db.Put(11, 11); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close returned %v, want ErrClosed", err)
	}
	if err := db.Delete(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close returned %v, want ErrClosed", err)
	}
	if v, ok := db.Get(1); !ok || v != 1 {
		t.Fatalf("refused Delete still took effect: Get(1) = %d, %v", v, ok)
	}
}

// TestDBCloseFlushesAllFrozen pins the Close contract on a backlog of
// several frozen memtables: with the background worker already stopped,
// freezes pile up and only Close's own synchronous drain can flush them.
func TestDBCloseFlushesAllFrozen(t *testing.T) {
	db, err := NewDB[int, int](DBConfig{MemLimit: 4, Fanout: 64})
	if err != nil {
		t.Fatal(err)
	}
	db.worker.Close() // simulate a busy/stopped compactor: kicks are no-ops
	for k := 0; k < 20; k++ {
		if err := db.Put(k, k*k); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.FrozenTables < 2 {
		t.Fatalf("test needs a frozen backlog, got %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.MemRecords != 0 || st.FrozenTables != 0 {
		t.Fatalf("Close left unflushed layers: %+v", st)
	}
	for k := 0; k < 20; k++ {
		if v, ok := db.Get(k); !ok || v != k*k {
			t.Fatalf("after Close: Get(%d) = %d, %v; want %d", k, v, ok, k*k)
		}
	}
}
