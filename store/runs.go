package store

import (
	"cmp"
	"iter"
)

// run is one immutable sorted run of the DB: a sharded implicit-layout
// Store whose payloads carry the tombstone bit, tagged with its
// compaction level. Level 0 runs are single flushed memtables; a level
// L+1 run is the merge of Fanout level-L runs. Within the DB's run stack
// runs are ordered newest first, which is also level-ascending: every
// record in a lower-level run is newer than any equal-key record below
// it.
type run[K cmp.Ordered, V any] struct {
	st    *Store[K, mval[V]]
	level int
	// file is the run's segment file (base name inside the DB
	// directory), or "" in memory-only mode. A run with a file is
	// durable: its records survive a restart without the WAL.
	file string
}

// dbstate is the immutable half of a DB, published through one atomic
// pointer: the frozen memtables waiting to be flushed (newest first) and
// the run stack (newest first). Readers load the pointer once and get a
// consistent snapshot — a flush or merge replaces the whole dbstate in a
// single swap, so no reader ever observes a record twice or not at all
// while it migrates from memtable to run to merged run.
type dbstate[K cmp.Ordered, V any] struct {
	frozen []*memtable[K, V]
	runs   []*run[K, V]
}

// source is one cursor of the DB's k-way merge: a pull iterator over a
// sorted stream of records with a one-record lookahead. Sources are
// merged newest first, so on equal keys the lowest-index source wins.
type source[K cmp.Ordered, V any] struct {
	next func() (K, mval[V], bool)
	stop func()
	key  K
	mv   mval[V]
	ok   bool
}

func (s *source[K, V]) advance() { s.key, s.mv, s.ok = s.next() }

// recsSource streams a sorted mrec slice (a cloned active memtable or a
// frozen memtable's range view).
func recsSource[K cmp.Ordered, V any](recs []mrec[K, V]) *source[K, V] {
	i := 0
	s := &source[K, V]{
		next: func() (K, mval[V], bool) {
			if i >= len(recs) {
				var zk K
				return zk, mval[V]{}, false
			}
			r := recs[i]
			i++
			return r.key, r.mv, true
		},
		stop: func() {},
	}
	s.advance()
	return s
}

// storeSource streams one run through its fence-pruned Range (or whole
// Scan), converted from push to pull with iter.Pull2 so it can take part
// in the k-way merge.
func storeSource[K cmp.Ordered, V any](st *Store[K, mval[V]], lo, hi K, all bool) *source[K, V] {
	seq := iter.Seq2[K, mval[V]](func(yield func(K, mval[V]) bool) {
		if all {
			st.Scan(yield)
		} else {
			st.Range(lo, hi, yield)
		}
	})
	next, stop := iter.Pull2(seq)
	s := &source[K, V]{next: next, stop: stop}
	s.advance()
	return s
}

// rankSource streams one run's whole record set in ascending key order
// by rank arithmetic — PosOfRank per record, no goroutines, no Export,
// no allocation beyond the cursor itself. It is the input half of the
// streaming compaction: each step touches O(1) positions of the run's
// permuted arrays, so a merge over mapped victims faults pages at the
// pace of the merge instead of materializing every input on the heap.
func rankSource[K cmp.Ordered, V any](st *Store[K, mval[V]]) *source[K, V] {
	si, rank := 0, 0
	s := &source[K, V]{
		next: func() (K, mval[V], bool) {
			for si < len(st.shards) && rank >= st.shards[si].idx.Len() {
				si++
				rank = 0
			}
			if si >= len(st.shards) {
				var zk K
				return zk, mval[V]{}, false
			}
			pos := st.shards[si].idx.PosOfRank(rank)
			rank++
			return st.shards[si].idx.At(pos), st.svals[si][pos], true
		},
		stop: func() {},
	}
	s.advance()
	return s
}

// mergeSources runs the k-way merge that backs DB.Range and DB.Scan:
// sources are sorted streams ordered newest first, and for each distinct
// key the newest source's record wins while the same key is consumed
// (and discarded) from every older source. Records whose winning payload
// is a tombstone are suppressed. yield returning false stops the merge.
//
// The source count is the memtable count plus the run count — single
// digits under the DB's compaction invariants — so the per-step minimum
// scan is cheaper than maintaining a heap.
func mergeSources[K cmp.Ordered, V any](sources []*source[K, V], yield func(key K, val V) bool) {
	defer func() {
		for _, s := range sources {
			s.stop()
		}
	}()
	for {
		best := -1
		for i, s := range sources {
			if s.ok && (best < 0 || s.key < sources[best].key) {
				best = i // strict <: ties keep the earlier (newer) source
			}
		}
		if best < 0 {
			return
		}
		key, mv := sources[best].key, sources[best].mv
		for _, s := range sources {
			if s.ok && s.key == key {
				s.advance() // consume the winner and every shadowed copy
			}
		}
		if mv.dead {
			continue
		}
		if !yield(key, mv.val) {
			return
		}
	}
}

// zipRecs pairs the parallel key and payload slices a run Export returns
// back into merge records.
func zipRecs[K cmp.Ordered, V any](keys []K, vals []mval[V]) []mrec[K, V] {
	recs := make([]mrec[K, V], len(keys))
	for i := range recs {
		recs[i] = mrec[K, V]{key: keys[i], mv: vals[i]}
	}
	return recs
}

// unzipRecs splits merge records back into the parallel key and payload
// slices a run build ingests — zipRecs' inverse.
func unzipRecs[K cmp.Ordered, V any](recs []mrec[K, V]) ([]K, []mval[V]) {
	keys := make([]K, len(recs))
	vals := make([]mval[V], len(recs))
	for i, r := range recs {
		keys[i], vals[i] = r.key, r.mv
	}
	return keys, vals
}

// compactRecs resolves a merged record slice in place: the slice holds
// equal keys adjacent with the newest occurrence first (parallelMerge
// keeps the left, newer, run on ties), so keeping the first of each
// equal-key group applies first-hit-wins. When dropTombs is set —
// the merge output becomes the oldest run, so there is nothing left to
// shadow — tombstones are dropped too, reclaiming deleted keys for good.
func compactRecs[K cmp.Ordered, V any](recs []mrec[K, V], dropTombs bool) []mrec[K, V] {
	w := 0
	for i := range recs {
		if i > 0 && recs[i].key == recs[i-1].key {
			continue // shadowed by a newer occurrence
		}
		if dropTombs && recs[i].mv.dead {
			continue
		}
		recs[w] = recs[i]
		w++
	}
	return recs[:w]
}
