package store

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestViewBasic pins a view and checks Get/GetBatch/Range/Scan agree
// with the DB for a quiescent dataset.
func TestViewBasic(t *testing.T) {
	db, err := NewDB[int, int](DBConfig{MemLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Put(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(7); err != nil {
		t.Fatal(err)
	}
	v := db.View()
	for i := 0; i < n; i++ {
		got, ok := v.Get(i)
		want, wantOK := db.Get(i)
		if ok != wantOK || got != want {
			t.Fatalf("View.Get(%d) = %d,%v; DB.Get = %d,%v", i, got, ok, want, wantOK)
		}
	}
	if v.Contains(7) {
		t.Fatal("View.Contains(7) after delete")
	}
	keys := make([]int, n+10)
	for i := range keys {
		keys[i] = i
	}
	vals, found := v.GetBatch(keys, 2)
	for i, k := range keys {
		want, wantOK := db.Get(k)
		if found[i] != wantOK || vals[i] != want {
			t.Fatalf("View.GetBatch key %d = %d,%v; DB.Get = %d,%v", k, vals[i], found[i], want, wantOK)
		}
	}
	var viaRange, viaScan int
	v.Range(10, 20, func(k, val int) bool {
		if val != k*3 {
			t.Fatalf("View.Range yielded %d -> %d", k, val)
		}
		viaRange++
		return true
	})
	if viaRange != 11 {
		t.Fatalf("View.Range [10,20] yielded %d records, want 11", viaRange)
	}
	v.Scan(func(k, val int) bool { viaScan++; return true })
	if viaScan != n-1 {
		t.Fatalf("View.Scan yielded %d records, want %d", viaScan, n-1)
	}
}

// TestViewPinsEpoch checks the pin guarantee: records the pinned epoch
// holds stay readable through the view while flushes and merges churn
// the run stack underneath it, and every key of one batch is answered.
func TestViewPinsEpoch(t *testing.T) {
	db, err := NewDB[uint64, uint64](DBConfig{MemLimit: 256, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	// Stable keys: written once before the pin, never touched again.
	const stable = 2000
	keys := make([]uint64, stable)
	for i := uint64(0); i < stable; i++ {
		keys[i] = i
		if err := db.Put(i, i^0xabcd); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	v := db.View()

	// Churn writer: disjoint key space, forces flushes and merges that
	// rewrite the run stack the view has pinned.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(1 << 32); !stop.Load(); k++ {
			if err := db.Put(k, k); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for round := 0; round < 50; round++ {
		vals, found := v.GetBatch(keys, 2)
		for i, k := range keys {
			if !found[i] || vals[i] != k^0xabcd {
				t.Fatalf("round %d: pinned key %d = %d,%v; want %d,true",
					round, k, vals[i], found[i], k^0xabcd)
			}
		}
		if val, ok := v.Get(keys[round%stable]); !ok || val != keys[round%stable]^0xabcd {
			t.Fatalf("round %d: pinned Get(%d) = %d,%v", round, keys[round%stable], val, ok)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestViewSurvivesCompaction pins a view, then forces the pinned runs
// to be merged away entirely; the view must keep serving them.
func TestViewSurvivesCompaction(t *testing.T) {
	db, err := NewDB[int, int](DBConfig{MemLimit: 128, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := db.Put(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	v := db.View()
	// Overwrite everything and drain compaction so the pinned epoch's
	// runs are all merge victims by the time we read through the view.
	for i := 0; i < n; i++ {
		if err := db.Put(i, i+2); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	v.Scan(func(k, val int) bool {
		// The pinned epoch predates the overwrite, but the captured
		// memtable kept receiving writes while active, so either
		// version is a correct answer; what must not happen is a miss
		// or a foreign value.
		if val != k+1 && val != k+2 {
			t.Fatalf("view saw %d -> %d after compaction", k, val)
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("view scan saw %d records, want %d", count, n)
	}
}
