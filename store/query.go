package store

import "implicitlayout/internal/par"

// Ref locates a key inside the store: the shard that holds it and the
// key's position in that shard's layout array.
type Ref struct {
	Shard, Pos int
}

// Get returns the location of x, or ok == false when x is absent. The
// query routes through the fence keys to the one shard whose range covers
// x and descends that shard's layout.
func (s *Store[T]) Get(x T) (ref Ref, ok bool) {
	sh := s.route(x)
	if sh < 0 {
		return Ref{}, false
	}
	pos := s.shards[sh].idx.Find(x)
	if pos < 0 {
		return Ref{}, false
	}
	return Ref{Shard: sh, Pos: pos}, true
}

// At returns the key stored at ref, which must come from Get or
// Predecessor on this store.
func (s *Store[T]) At(ref Ref) T { return s.shards[ref.Shard].idx.At(ref.Pos) }

// Contains reports whether x is present.
func (s *Store[T]) Contains(x T) bool {
	_, ok := s.Get(x)
	return ok
}

// GlobalOffset returns the sorted rank of the first key of shard i: the
// shard's keys occupy ranks [GlobalOffset(i), GlobalOffset(i)+ShardLen(i))
// of the exported sorted order.
func (s *Store[T]) GlobalOffset(i int) int { return s.shards[i].off }

// Predecessor returns the largest key <= x and its location, or ok ==
// false when x precedes every key. The fence router guarantees the
// answer, if any, lies in the routed shard: its fence (smallest key) is
// <= x by construction.
func (s *Store[T]) Predecessor(x T) (key T, ref Ref, ok bool) {
	sh := s.route(x)
	if sh < 0 {
		var zero T
		return zero, Ref{}, false
	}
	pos := s.shards[sh].idx.Predecessor(x)
	ref = Ref{Shard: sh, Pos: pos}
	return s.At(ref), ref, true
}

// ShardStats counts the queries routed to one shard and how many hit.
type ShardStats struct {
	Queries, Hits int
}

// BatchStats aggregates one GetBatch call: total queries and hits plus
// the per-shard breakdown (indexed by shard).
type BatchStats struct {
	Queries, Hits int
	Shards        []ShardStats
}

func (b *BatchStats) add(o BatchStats) {
	b.Queries += o.Queries
	b.Hits += o.Hits
	for i, s := range o.Shards {
		b.Shards[i].Queries += s.Queries
		b.Shards[i].Hits += s.Hits
	}
}

// getBatchSerial answers queries on one worker, accumulating stats.
func (s *Store[T]) getBatchSerial(queries []T) BatchStats {
	st := BatchStats{Queries: len(queries), Shards: make([]ShardStats, len(s.shards))}
	for _, q := range queries {
		sh := s.route(q)
		if sh < 0 {
			continue
		}
		st.Shards[sh].Queries++
		if s.shards[sh].idx.Find(q) >= 0 {
			st.Shards[sh].Hits++
			st.Hits++
		}
	}
	return st
}

// GetBatch answers all queries with p parallel workers (values below 1
// fall back to serial; so do batches too small to be worth forking) and
// returns aggregate and per-shard statistics. Queries are independent, so
// the batch is split into p contiguous chunks, each worker routes and
// answers its chunk against the shared immutable shards, and the per-
// worker statistics are merged — the embarrassingly parallel query
// workload of the paper's evaluation, behind a serving-layer interface.
func (s *Store[T]) GetBatch(queries []T, p int) BatchStats {
	if p < 1 {
		p = 1
	}
	if p == 1 || len(queries) < 2*p {
		return s.getBatchSerial(queries)
	}
	// Unlike the permutation loops, each iteration here is a full tree
	// descent, so forking pays off well below par.DefaultMinFor.
	r := par.Runner{Lo: 0, Hi: p, MinFor: 2 * p}
	partial := make([]BatchStats, p)
	r.For(len(queries), func(w, lo, hi int) {
		partial[w] = s.getBatchSerial(queries[lo:hi])
	})
	total := BatchStats{Shards: make([]ShardStats, len(s.shards))}
	for _, st := range partial {
		if st.Shards == nil {
			continue // worker past the end of a short batch
		}
		total.add(st)
	}
	return total
}
