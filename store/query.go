package store

import (
	"implicitlayout/internal/par"
	"implicitlayout/search"
)

// Ref locates a record inside the store: the shard that holds it and the
// record's position in that shard's layout array.
type Ref struct {
	Shard, Pos int
}

// valAt returns the value stored at ref (the zero V for keys-only
// stores). Values occupy the same per-shard positions as their keys —
// PermuteWith moved both arrays by one permutation, and the segment
// codec preserves the pairing — so the lookup is one slice index,
// whether the shard's arrays live on the heap or in a mapped segment.
func (s *Store[K, V]) valAt(ref Ref) V {
	if s.svals == nil {
		var zero V
		return zero
	}
	return s.svals[ref.Shard][ref.Pos]
}

// GetRef returns the location of key x, or ok == false when x is absent.
// The query routes through the fence keys to the one shard whose range
// covers x and descends that shard's layout.
func (s *Store[K, V]) GetRef(x K) (ref Ref, ok bool) {
	sh := s.route(x)
	if sh < 0 {
		return Ref{}, false
	}
	pos := s.shards[sh].idx.Find(x)
	if pos < 0 {
		return Ref{}, false
	}
	return Ref{Shard: sh, Pos: pos}, true
}

// Get returns the value stored under key x, or ok == false when x is
// absent. Stores built without values (BuildSet, or Build with nil
// vals) return the zero V on hits — see HasValues; use Contains there.
func (s *Store[K, V]) Get(x K) (val V, ok bool) {
	ref, ok := s.GetRef(x)
	if !ok {
		var zero V
		return zero, false
	}
	return s.valAt(ref), true
}

// At returns the record stored at ref, which must come from GetRef or
// PredecessorRef on this store.
func (s *Store[K, V]) At(ref Ref) (key K, val V) {
	return s.shards[ref.Shard].idx.At(ref.Pos), s.valAt(ref)
}

// Contains reports whether key x is present.
func (s *Store[K, V]) Contains(x K) bool {
	_, ok := s.GetRef(x)
	return ok
}

// GlobalOffset returns the sorted rank of the first key of shard i: the
// shard's records occupy ranks [GlobalOffset(i), GlobalOffset(i)+ShardLen(i))
// of the exported sorted order.
func (s *Store[K, V]) GlobalOffset(i int) int { return s.shards[i].off }

// Predecessor returns the largest key <= x with its value, or ok ==
// false when x precedes every key.
func (s *Store[K, V]) Predecessor(x K) (key K, val V, ok bool) {
	ref, ok := s.PredecessorRef(x)
	if !ok {
		var zeroK K
		var zeroV V
		return zeroK, zeroV, false
	}
	key, val = s.At(ref)
	return key, val, true
}

// PredecessorRef returns the location of the largest key <= x, or ok ==
// false when x precedes every key. The fence router guarantees the
// answer, if any, lies in the routed shard: its fence (smallest key) is
// <= x by construction.
func (s *Store[K, V]) PredecessorRef(x K) (ref Ref, ok bool) {
	sh := s.route(x)
	if sh < 0 {
		return Ref{}, false
	}
	return Ref{Shard: sh, Pos: s.shards[sh].idx.Predecessor(x)}, true
}

// ShardStats counts the queries routed to one shard and how many hit.
type ShardStats struct {
	Queries, Hits int
}

// BatchStats aggregates one GetBatch call: total queries and hits, the
// per-shard breakdown (indexed by shard), and the queries no fence
// covered. Unrouted queries reach no shard, so they appear in no
// ShardStats entry; counting them separately keeps the books balanced:
// Queries == sum over Shards of Queries + Unrouted.
type BatchStats struct {
	Queries, Hits int
	Unrouted      int
	Shards        []ShardStats
}

// BatchResult is one GetBatch answer set: Vals[i] is the value stored
// under queries[i] (the zero V when absent, or for keys-only stores) and
// Found[i] reports presence; the embedded BatchStats aggregates hit
// counts per shard.
type BatchResult[V any] struct {
	Vals  []V
	Found []bool
	BatchStats
}

// batchGroupMin is the per-worker chunk size from which GetBatch
// regroups its queries by shard and answers each shard's slice with one
// interleaved ring (see getBatchGrouped). Below it the regrouping
// buffers cost more than the rings recover, and the query-by-query path
// wins.
const batchGroupMin = search.InterleaveMinBatch

// getBatchChunk answers one worker's chunk, writing the aligned result
// slices and accumulating stats: regrouped ring execution for chunks
// worth the buffers, query-by-query routing below that.
func (s *Store[K, V]) getBatchChunk(queries []K, vals []V, found []bool, shards []ShardStats) (hits, unrouted int) {
	if len(queries) >= batchGroupMin && len(s.shards) > 0 {
		return s.getBatchGrouped(queries, vals, found, shards)
	}
	return s.getBatchSerial(queries, vals, found, shards)
}

// getBatchSerial answers queries one at a time: route, descend, record.
// vals, found, and queries have equal length.
func (s *Store[K, V]) getBatchSerial(queries []K, vals []V, found []bool, shards []ShardStats) (hits, unrouted int) {
	for qi, q := range queries {
		sh := s.route(q)
		if sh < 0 {
			unrouted++
			continue
		}
		shards[sh].Queries++
		pos := s.shards[sh].idx.Find(q)
		if pos < 0 {
			continue
		}
		shards[sh].Hits++
		hits++
		found[qi] = true
		vals[qi] = s.valAt(Ref{Shard: sh, Pos: pos})
	}
	return hits, unrouted
}

// getBatchGrouped answers queries by shard instead of by arrival order:
// route every query, bucket the routed ones per shard with a counting
// sort, answer each shard's bucket with one FindBatchInto call — an
// interleaved ring descending a single layout, instead of rings forced
// to straddle shards — and scatter the positions back through the
// bucket's index permutation. Results and stats are identical to
// getBatchSerial; only the descent order changes.
func (s *Store[K, V]) getBatchGrouped(queries []K, vals []V, found []bool, shards []ShardStats) (hits, unrouted int) {
	ns := len(s.shards)
	shardOf := make([]int, len(queries))
	offs := make([]int, ns+1)
	for qi, q := range queries {
		sh := s.route(q)
		shardOf[qi] = sh
		if sh < 0 {
			unrouted++
			continue
		}
		offs[sh+1]++
	}
	for i := 0; i < ns; i++ {
		offs[i+1] += offs[i]
	}
	routed := offs[ns]
	gk := make([]K, routed)     // queries, grouped by shard
	gidx := make([]int, routed) // original index of gk[i]
	next := make([]int, ns)
	copy(next, offs[:ns])
	for qi, sh := range shardOf {
		if sh < 0 {
			continue
		}
		at := next[sh]
		next[sh] = at + 1
		gk[at] = queries[qi]
		gidx[at] = qi
	}
	gpos := make([]int, routed)
	for sh := 0; sh < ns; sh++ {
		lo, hi := offs[sh], offs[sh+1]
		if lo == hi {
			continue
		}
		shHits := s.shards[sh].idx.FindBatchInto(gk[lo:hi], gpos[lo:hi], 1)
		shards[sh].Queries += hi - lo
		shards[sh].Hits += shHits
		hits += shHits
	}
	for gi, qi := range gidx {
		if pos := gpos[gi]; pos >= 0 {
			found[qi] = true
			vals[qi] = s.valAt(Ref{Shard: shardOf[qi], Pos: pos})
		}
	}
	return hits, unrouted
}

// GetBatch answers all queries with p parallel workers (values below 1
// fall back to serial; so do batches too small to be worth forking) and
// returns every value alongside aggregate and per-shard statistics.
// Queries are independent, so the batch is split into p contiguous
// chunks, each worker routes and answers its chunk against the shared
// immutable shards — writing disjoint ranges of the result slices — and
// the per-worker statistics are merged: the embarrassingly parallel
// query workload of the paper's evaluation, behind a serving-layer
// interface.
func (s *Store[K, V]) GetBatch(queries []K, p int) BatchResult[V] {
	res := BatchResult[V]{
		Vals:  make([]V, len(queries)),
		Found: make([]bool, len(queries)),
		BatchStats: BatchStats{
			Queries: len(queries),
			Shards:  make([]ShardStats, len(s.shards)),
		},
	}
	if p < 1 {
		p = 1
	}
	if p == 1 || len(queries) < 2*p {
		res.Hits, res.Unrouted = s.getBatchChunk(queries, res.Vals, res.Found, res.Shards)
		return res
	}
	// Unlike the permutation loops, each iteration here is a full tree
	// descent, so forking pays off well below par.DefaultMinFor.
	r := par.Runner{Lo: 0, Hi: p, MinFor: 2 * p}
	type partialStats struct {
		hits, unrouted int
		shards         []ShardStats
	}
	partial := make([]partialStats, p)
	r.For(len(queries), func(w, lo, hi int) {
		shards := make([]ShardStats, len(s.shards))
		hits, unrouted := s.getBatchChunk(queries[lo:hi], res.Vals[lo:hi], res.Found[lo:hi], shards)
		partial[w] = partialStats{hits: hits, unrouted: unrouted, shards: shards}
	})
	for _, st := range partial {
		if st.shards == nil {
			continue // worker past the end of a short batch
		}
		res.Hits += st.hits
		res.Unrouted += st.unrouted
		for i, sh := range st.shards {
			res.Shards[i].Queries += sh.Queries
			res.Shards[i].Hits += sh.Hits
		}
	}
	return res
}
