package store

import (
	"cmp"
)

// This file is the streaming half of compaction: a loser-tree k-way
// merge over rank-order run cursors, feeding a shard-at-a-time sink.
// Where the old merge Exported every victim onto the heap (O(sum of
// inputs) peak memory), the streaming merge holds k cursors and one
// output shard buffer — O(one shard) — and everything else stays on
// disk (or in the page cache, for mapped victims) until the moment it
// is read or written.

// maxStreamShardRecs caps the streaming merge's output shard size, and
// with it the merge's peak heap: a merge whose output would exceed
// Shards × this many records simply gets more shards. 2^19 records of
// a 16-byte (key, payload) pair is ~8 MiB of buffer — big enough that
// permutation and frame-write costs amortize, small enough that a
// GOMEMLIMIT a fraction of the dataset holds.
const maxStreamShardRecs = 1 << 19

// loserTree is the merge's selection structure: a tournament tree over
// k sources where node[0] holds the current winner and node[1:] hold
// the losers of the internal matches, so replacing the winner replays
// exactly one leaf-to-root path — ceil(log2 k) comparisons per record,
// against the linear scan's k. Ties order by source index, lower
// (newer) first, which is what makes the first record the merge yields
// for a key the newest version — the same rule mergeSources and
// parallelMerge apply.
type loserTree[K cmp.Ordered, V any] struct {
	src  []*source[K, V]
	node []int
}

func newLoserTree[K cmp.Ordered, V any](src []*source[K, V]) *loserTree[K, V] {
	t := &loserTree[K, V]{src: src, node: make([]int, max(len(src), 1))}
	for i := range t.node {
		t.node[i] = -1
	}
	// Seed the bracket leaf by leaf, descending: a carried winner parks
	// at the first vacant internal slot (its opponent has not arrived
	// yet); a winner whose whole path is already decided is the root.
	for i := len(src) - 1; i >= 0; i-- {
		w := i
		for n := (i + len(src)) / 2; n > 0; n /= 2 {
			if t.node[n] == -1 {
				t.node[n] = w
				w = -1
				break
			}
			if t.beats(t.node[n], w) {
				w, t.node[n] = t.node[n], w
			}
		}
		if w >= 0 {
			t.node[0] = w
		}
	}
	return t
}

// beats reports whether source a wins the match against source b: the
// smaller next key wins, the lower index breaks ties, and an exhausted
// source loses to any live one.
func (t *loserTree[K, V]) beats(a, b int) bool {
	sa, sb := t.src[a], t.src[b]
	if !sa.ok || !sb.ok {
		return sa.ok
	}
	if sa.key != sb.key {
		return sa.key < sb.key
	}
	return a < b
}

// winner returns the index of the source holding the smallest next
// record (newest on ties), or -1 when every source is exhausted.
func (t *loserTree[K, V]) winner() int {
	w := t.node[0]
	if !t.src[w].ok {
		return -1
	}
	return w
}

// advance consumes the winner's current record and replays its path:
// each internal node holds the loser of the match played there, so the
// new champion of the winner's subtree emerges by re-playing exactly
// those matches.
func (t *loserTree[K, V]) advance() {
	w := t.node[0]
	t.src[w].advance()
	for n := (w + len(t.src)) / 2; n > 0; n /= 2 {
		if t.beats(t.node[n], w) {
			w, t.node[n] = t.node[n], w
		}
	}
	t.node[0] = w
}

// streamCompact runs the k-way first-hit-wins merge over sources
// (ordered newest first) and emits each surviving record in ascending
// key order: for every distinct key the newest version wins, shadowed
// versions are consumed and dropped, and — when dropTombs is set,
// i.e. the output becomes the oldest run — tombstones are dropped too.
// It is the streaming equivalent of parallelMerge + compactRecs, and
// the property test in stream_test.go holds the two to the same
// answers. emit returning an error aborts the merge.
func streamCompact[K cmp.Ordered, V any](sources []*source[K, V], dropTombs bool, emit func(K, mval[V]) error) error {
	defer func() {
		for _, s := range sources {
			s.stop()
		}
	}()
	t := newLoserTree(sources)
	for {
		w := t.winner()
		if w < 0 {
			return nil
		}
		key, mv := t.src[w].key, t.src[w].mv
		// Consume the winner and every shadowed equal-key record: ties
		// rank by source index, so the first winner was the newest.
		for {
			t.advance()
			w = t.winner()
			if w < 0 || t.src[w].key != key {
				break
			}
		}
		if dropTombs && mv.dead {
			continue
		}
		if err := emit(key, mv); err != nil {
			return err
		}
	}
}

// shardStreamer batches the merge's record stream into output shards of
// the planned size and hands each full shard to the segment writer. Its
// two buffers are the streaming merge's entire record memory; they are
// reused shard after shard (AppendShard writes the permuted bytes out
// before returning).
type shardStreamer[K cmp.Ordered, V any] struct {
	w      *segWriter[K, V]
	target int
	keys   []K
	vals   []mval[V]
}

func newShardStreamer[K cmp.Ordered, V any](w *segWriter[K, V], target int) *shardStreamer[K, V] {
	return &shardStreamer[K, V]{
		w:      w,
		target: target,
		keys:   make([]K, 0, target),
		vals:   make([]mval[V], 0, target),
	}
}

func (ss *shardStreamer[K, V]) add(k K, mv mval[V]) error {
	ss.keys = append(ss.keys, k)
	ss.vals = append(ss.vals, mv)
	if len(ss.keys) >= ss.target {
		return ss.flush()
	}
	return nil
}

// flush appends the buffered records as one shard; a partial final
// shard flushes on the explicit call after the merge runs dry.
func (ss *shardStreamer[K, V]) flush() error {
	if len(ss.keys) == 0 {
		return nil
	}
	err := ss.w.AppendShard(ss.keys, ss.vals)
	ss.keys, ss.vals = ss.keys[:0], ss.vals[:0]
	return err
}

// streamShardPlan sizes the streaming merge's output shards for an
// upper-bound record count: at least the configured shard count (so a
// streamed run shards like a built run), more if the configured count
// would push a shard over maxStreamShardRecs. Returns the target
// records per shard. The true output count is only known when the
// merge finishes, so the last shard may run short — readers derive
// every length from the stream, and nothing requires balance.
func streamShardPlan(cfg Config, upper int) int {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if need := (upper + maxStreamShardRecs - 1) / maxStreamShardRecs; need > shards {
		shards = need
	}
	target := (upper + shards - 1) / shards
	if target < 1 {
		target = 1
	}
	return target
}
