//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir's LOCK file, enforcing
// the one-opener-per-directory contract: a second Open — from this or
// any other process — fails immediately instead of corrupting the first
// opener's write-ahead log and manifest. flock locks die with their
// process, so a crash never leaves a stale lock behind; the LOCK file
// itself is inert and stays in the directory. The returned release is
// idempotent.
func lockDir(dir string) (release func(), err error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is already open in another DB (flock: %w)", dir, err)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
			f.Close()
		})
	}, nil
}
