package store_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/store"
)

// valOf is the test payload convention: the value stored under key k.
func valOf(k uint64) string { return fmt.Sprint("payload-", k) }

// buildKV returns shuffled odd keys 1..2n-1 with their valOf payloads.
func buildKV(n int, seed int64) ([]uint64, []string) {
	keys := shuffledOdd(n, seed)
	vals := make([]string, n)
	for i := range vals {
		vals[i] = valOf(keys[i])
	}
	return keys, vals
}

// TestKVRoundTrip is the record-store acceptance property: for every
// layout x algorithm, Get returns the stored value for every present
// key, misses stay misses, GetBatch returns the same values in batch
// position, and Export recovers the sorted key–value pairs.
func TestKVRoundTrip(t *testing.T) {
	const n = 1 << 12
	keys, vals := buildKV(n, 21)
	for _, kind := range allKinds {
		for _, alg := range perm.Algorithms() {
			st, err := store.Build(keys, vals,
				store.WithLayout(kind), store.WithShards(8), store.WithWorkers(4),
				store.WithAlgorithm(alg))
			if err != nil {
				t.Fatalf("%v/%v: Build: %v", kind, alg, err)
			}
			if !st.HasValues() || st.Len() != n {
				t.Fatalf("%v/%v: store shape wrong", kind, alg)
			}

			for i := 0; i < n; i++ {
				x := uint64(2*i + 1)
				got, ok := st.Get(x)
				if !ok || got != valOf(x) {
					t.Fatalf("%v/%v: Get(%d) = %q, %v; want %q", kind, alg, x, got, ok, valOf(x))
				}
				if _, ok := st.Get(x - 1); ok {
					t.Fatalf("%v/%v: Get(%d) hit", kind, alg, x-1)
				}
			}

			queries := make([]uint64, 0, 2*n)
			for i := 0; i < n; i++ {
				queries = append(queries, uint64(2*i+1), uint64(2*i))
			}
			for _, p := range []int{1, 8} {
				res := st.GetBatch(queries, p)
				if res.Hits != n {
					t.Fatalf("%v/%v p=%d: %d hits, want %d", kind, alg, p, res.Hits, n)
				}
				for qi, q := range queries {
					if hit := q%2 == 1; res.Found[qi] != hit {
						t.Fatalf("%v/%v p=%d: Found[%d]=%v for %d", kind, alg, p, qi, res.Found[qi], q)
					} else if hit && res.Vals[qi] != valOf(q) {
						t.Fatalf("%v/%v p=%d: Vals[%d]=%q, want %q", kind, alg, p, qi, res.Vals[qi], valOf(q))
					}
				}
			}

			outK, outV := st.Export()
			if !slices.IsSorted(outK) || len(outK) != n || len(outV) != n {
				t.Fatalf("%v/%v: Export shape wrong", kind, alg)
			}
			for i := range outK {
				if outV[i] != valOf(outK[i]) {
					t.Fatalf("%v/%v: exported pair (%d, %q) mismatched", kind, alg, outK[i], outV[i])
				}
			}
		}
	}
}

// TestKVPredecessorReturnsValue: predecessor queries carry the payload.
func TestKVPredecessorReturnsValue(t *testing.T) {
	const n = 1 << 10
	keys, vals := buildKV(n, 23)
	st, err := store.Build(keys, vals, store.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		odd := uint64(2*i + 1)
		key, val, ok := st.Predecessor(odd + 1)
		if !ok || key != odd || val != valOf(odd) {
			t.Fatalf("Predecessor(%d) = (%d, %q, %v)", odd+1, key, val, ok)
		}
	}
}

// TestKVRebuildKeepsValues: layout migration preserves the records.
func TestKVRebuildKeepsValues(t *testing.T) {
	const n = 2048
	keys, vals := buildKV(n, 29)
	st, err := store.Build(keys, vals, store.WithLayout(layout.VEB), store.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := st.Rebuild(store.WithLayout(layout.BTree), store.WithShards(16), store.WithB(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x := uint64(2*i + 1)
		if got, ok := rb.Get(x); !ok || got != valOf(x) {
			t.Fatalf("rebuilt Get(%d) = %q, %v", x, got, ok)
		}
	}
}

// TestBuildValueLengthMismatch: mismatched record slices are rejected.
func TestBuildValueLengthMismatch(t *testing.T) {
	if _, err := store.Build([]uint64{1, 2, 3}, []string{"a"}); err == nil {
		t.Fatal("Build with len(vals) != len(keys) should error")
	}
}

// TestDuplicatePolicies pins down the duplicate-key contract of Build:
// KeepLast (default) keeps the latest value per key, KeepFirst the
// earliest, KeepAll keeps every record, and Reject fails the build.
func TestDuplicatePolicies(t *testing.T) {
	keys := []uint64{5, 3, 5, 9, 3, 5}
	vals := []string{"a", "b", "c", "d", "e", "f"}

	t.Run("KeepLastDefault", func(t *testing.T) {
		st, err := store.Build(keys, vals, store.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		if st.Duplicates() != store.KeepLast {
			t.Fatalf("default policy = %v", st.Duplicates())
		}
		if st.Len() != 3 {
			t.Fatalf("Len = %d, want 3 deduped keys", st.Len())
		}
		for k, want := range map[uint64]string{3: "e", 5: "f", 9: "d"} {
			if got, ok := st.Get(k); !ok || got != want {
				t.Fatalf("Get(%d) = %q, %v; want %q", k, got, ok, want)
			}
		}
	})

	t.Run("KeepFirst", func(t *testing.T) {
		st, err := store.Build(keys, vals, store.WithShards(2),
			store.WithDuplicates(store.KeepFirst))
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range map[uint64]string{3: "b", 5: "a", 9: "d"} {
			if got, ok := st.Get(k); !ok || got != want {
				t.Fatalf("Get(%d) = %q, %v; want %q", k, got, ok, want)
			}
		}
	})

	t.Run("KeepAll", func(t *testing.T) {
		st, err := store.Build(keys, vals, store.WithShards(2),
			store.WithDuplicates(store.KeepAll))
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != len(keys) {
			t.Fatalf("Len = %d, want %d", st.Len(), len(keys))
		}
		// Export yields all records, equal keys in input order (stable).
		outK, outV := st.Export()
		if !slices.Equal(outK, []uint64{3, 3, 5, 5, 5, 9}) {
			t.Fatalf("Export keys = %v", outK)
		}
		if !slices.Equal(outV, []string{"b", "e", "a", "c", "f", "d"}) {
			t.Fatalf("Export vals = %v", outV)
		}
		// Get returns the value of some occurrence of the key.
		if got, ok := st.Get(5); !ok || (got != "a" && got != "c" && got != "f") {
			t.Fatalf("Get(5) = %q, %v", got, ok)
		}
	})

	t.Run("Reject", func(t *testing.T) {
		if _, err := store.Build(keys, vals, store.WithDuplicates(store.Reject)); err == nil {
			t.Fatal("Reject policy should fail on duplicates")
		}
		uniq, err := store.Build([]uint64{4, 2, 8}, []string{"x", "y", "z"},
			store.WithDuplicates(store.Reject))
		if err != nil {
			t.Fatalf("Reject policy failed a duplicate-free build: %v", err)
		}
		if got, ok := uniq.Get(2); !ok || got != "y" {
			t.Fatalf("Get(2) = %q, %v", got, ok)
		}
	})

	t.Run("DedupeShrinksShards", func(t *testing.T) {
		// 6 records, 3 distinct keys, 6 shards requested: after dedupe
		// only 3 shards can be non-empty.
		st, err := store.Build(keys, vals, store.WithShards(6))
		if err != nil {
			t.Fatal(err)
		}
		if st.Shards() > 3 {
			t.Fatalf("deduped store kept %d shards for 3 keys", st.Shards())
		}
	})
}

// TestScanStreamsSortedRecords: Scan yields every record exactly once in
// globally ascending key order, for every layout x algorithm, and stops
// early when asked.
func TestScanStreamsSortedRecords(t *testing.T) {
	const n = 1 << 11
	keys, vals := buildKV(n, 31)
	for _, kind := range allKinds {
		for _, alg := range perm.Algorithms() {
			st, err := store.Build(keys, vals,
				store.WithLayout(kind), store.WithShards(8), store.WithAlgorithm(alg))
			if err != nil {
				t.Fatal(err)
			}
			var gotK []uint64
			st.Scan(func(key uint64, val string) bool {
				if val != valOf(key) {
					t.Fatalf("%v/%v: Scan yielded (%d, %q)", kind, alg, key, val)
				}
				gotK = append(gotK, key)
				return true
			})
			if len(gotK) != n || !slices.IsSorted(gotK) {
				t.Fatalf("%v/%v: Scan yielded %d keys, sorted=%v", kind, alg, len(gotK), slices.IsSorted(gotK))
			}
			count := 0
			st.Scan(func(uint64, string) bool {
				count++
				return count < n/3
			})
			if count != n/3 {
				t.Fatalf("%v/%v: early stop scanned %d", kind, alg, count)
			}
		}
	}
}

// TestRangeAgainstSortedReference is the cross-shard Range acceptance
// property: random intervals — empty ones, shard-boundary-straddling
// ones, and whole-store ones — yield exactly the records the sorted
// reference slice contains, in order, for every layout x algorithm.
func TestRangeAgainstSortedReference(t *testing.T) {
	const n = 1 << 11
	keys, vals := buildKV(n, 37)
	sortedK := slices.Clone(keys)
	slices.Sort(sortedK)
	rng := rand.New(rand.NewSource(41))
	for _, kind := range allKinds {
		for _, alg := range perm.Algorithms() {
			st, err := store.Build(keys, vals,
				store.WithLayout(kind), store.WithShards(8), store.WithAlgorithm(alg))
			if err != nil {
				t.Fatal(err)
			}
			fences := st.Fences()

			intervals := [][2]uint64{
				{0, uint64(2*n + 10)},            // whole store, bounds outside key range
				{1, uint64(2*n - 1)},             // whole store, exact bounds
				{17, 3},                          // inverted: empty
				{4, 4},                           // between keys: empty
				{0, 0},                           // below every key: empty
				{uint64(2*n + 1), uint64(4 * n)}, // above every key: empty
			}
			// Intervals straddling every shard boundary, including ones
			// starting/ending exactly on a fence key.
			for i := 1; i < len(fences); i++ {
				f := fences[i]
				intervals = append(intervals,
					[2]uint64{f - 2, f + 2}, [2]uint64{f, f}, [2]uint64{f - 3, f})
			}
			for trial := 0; trial < 40; trial++ {
				lo := uint64(rng.Intn(2*n + 2))
				intervals = append(intervals, [2]uint64{lo, lo + uint64(rng.Intn(n))})
			}

			for _, iv := range intervals {
				lo, hi := iv[0], iv[1]
				var want []uint64
				for _, k := range sortedK {
					if k >= lo && k <= hi {
						want = append(want, k)
					}
				}
				var got []uint64
				st.Range(lo, hi, func(key uint64, val string) bool {
					if val != valOf(key) {
						t.Fatalf("%v/%v [%d,%d]: Range yielded (%d, %q)", kind, alg, lo, hi, key, val)
					}
					got = append(got, key)
					return true
				})
				if !slices.Equal(got, want) {
					t.Fatalf("%v/%v [%d,%d]:\n got %v\nwant %v", kind, alg, lo, hi, got, want)
				}
			}

			// Early stop crosses a shard boundary: ask for more records
			// than one shard holds, stop after shardLen+3.
			limit := st.ShardLen(0) + 3
			count := 0
			st.Range(0, uint64(2*n), func(uint64, string) bool {
				count++
				return count < limit
			})
			if count != limit {
				t.Fatalf("%v/%v: cross-shard early stop yielded %d, want %d", kind, alg, count, limit)
			}
		}
	}
}

// TestScanKeepAllDuplicates: a KeepAll multiset scans every duplicate.
func TestScanKeepAllDuplicates(t *testing.T) {
	keys := []uint64{7, 7, 3, 7, 3, 11}
	vals := []string{"a", "b", "c", "d", "e", "f"}
	st, err := store.Build(keys, vals, store.WithShards(3),
		store.WithDuplicates(store.KeepAll), store.WithLayout(layout.BST))
	if err != nil {
		t.Fatal(err)
	}
	var gotK []uint64
	var gotV []string
	st.Scan(func(key uint64, val string) bool {
		gotK = append(gotK, key)
		gotV = append(gotV, val)
		return true
	})
	if !slices.Equal(gotK, []uint64{3, 3, 7, 7, 7, 11}) {
		t.Fatalf("Scan keys = %v", gotK)
	}
	if !slices.Equal(gotV, []string{"c", "e", "a", "b", "d", "f"}) {
		t.Fatalf("Scan vals = %v", gotV)
	}
}

// TestSetZeroValues: the Set alias serves struct{} values and Get still
// reports presence.
func TestSetZeroValues(t *testing.T) {
	st, err := store.BuildSet([]uint64{10, 20, 30}, store.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	var set *store.Set[uint64] = st // the alias really is the same type
	if _, ok := set.Get(20); !ok {
		t.Fatal("Get(20) missed")
	}
	if _, ok := set.Get(21); ok {
		t.Fatal("Get(21) hit")
	}
}
