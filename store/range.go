package store

// Scan calls yield for every record in the store, in globally ascending
// key order, stopping early if yield returns false. No shard is ever
// unpermuted: each shard's layout is walked in order by the index's Scan
// (O(N) node visits total), and shards are visited in fence order, which
// is globally sorted because the build partitioned by key range. Like
// every query, Scan leaves the snapshot untouched and may run alongside
// any number of other readers.
func (s *Store[K, V]) Scan(yield func(key K, val V) bool) {
	for i := range s.shards {
		stopped := false
		s.shards[i].idx.Scan(func(pos int, key K) bool {
			if !yield(key, s.valAt(Ref{Shard: i, Pos: pos})) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Range calls yield for every record with lo <= key <= hi, in globally
// ascending key order, stopping early if yield returns false. The fence
// keys prune the shard walk to the ones whose key range intersects
// [lo, hi]; inside each surviving shard the layout's in-order range
// descent prunes subtrees, so the cost is O(k + S log N) node visits for
// k reported records over S intersecting shards.
func (s *Store[K, V]) Range(lo, hi K, yield func(key K, val V) bool) {
	if hi < lo {
		return
	}
	for i := range s.shards {
		if s.fences[i] > hi {
			return // fences ascend: every later shard starts above hi too
		}
		// A shard's keys never exceed the next fence, so a next fence
		// below lo means this whole shard sits below the interval.
		if i+1 < len(s.shards) && s.fences[i+1] < lo {
			continue
		}
		stopped := false
		s.shards[i].idx.Range(lo, hi, func(pos int, key K) bool {
			if !yield(key, s.valAt(Ref{Shard: i, Pos: pos})) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}
