package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"implicitlayout/internal/blockio"
)

// The manifest is the authoritative list of live segments: one small
// file, MANIFEST, naming every segment the run stack is made of (newest
// first, with each segment's compaction level). It is never edited in
// place — every mutation writes a complete replacement through
// blockio.WriteFileAtomic (temp file, fsync, rename, directory fsync),
// so a reopen after a crash sees either the old segment set or the new
// one, both complete and internally consistent.
//
// The swap protocol for every flush and compaction is:
//
//	1. write the new segment to a temp file, fsync, rename into place
//	2. rewrite MANIFEST to the new segment list (atomically, as above)
//	3. publish the new in-memory state to readers
//	4. delete the files the new manifest no longer references
//	   (obsoleted segments, the flushed memtable's WAL)
//
// The manifest rewrite at step 2 is the commit point. A crash before it
// leaves stray segment files that the next Open garbage-collects; a
// crash after it leaves stray inputs that Open also garbage-collects
// (step 4's deletions are pure cleanup). At no point does the manifest
// reference a file that is not fully on disk.

const (
	manifestName    = "MANIFEST"
	manifestMagic   = "ILMAN\x01"
	manifestVersion = 1

	tagManifest = 'm'
)

// manifestSeg names one live segment.
type manifestSeg struct {
	File  string // base name within the DB directory
	Level int    // compaction level (0 = flushed memtable)
}

// manifest is the decoded MANIFEST content. Segments are ordered newest
// first, matching the DB's run stack (and therefore level-ascending).
type manifest struct {
	Version  int
	Segments []manifestSeg
}

// writeManifest atomically replaces dir's MANIFEST.
func writeManifest(dir string, m manifest) error {
	m.Version = manifestVersion
	return blockio.WriteFileAtomic(filepath.Join(dir, manifestName), func(w io.Writer) error {
		if _, err := io.WriteString(w, manifestMagic); err != nil {
			return err
		}
		return writeGobFrame(blockio.NewWriter(w), tagManifest, m)
	})
}

// readManifest loads dir's MANIFEST; ok is false when none exists (a
// fresh directory). Unlike a WAL tail, a damaged manifest is a hard
// error: it is rewritten atomically, so it is either absent, or complete
// and checksummed — a mismatch means real corruption, and guessing at
// the segment list would serve wrong data.
func readManifest(dir string) (m manifest, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("store: opening manifest: %w", err)
	}
	defer f.Close()
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return manifest{}, false, fmt.Errorf("store: reading manifest magic: %w", err)
	}
	if string(magic) != manifestMagic {
		return manifest{}, false, fmt.Errorf("store: MANIFEST is not a manifest (magic %q)", magic)
	}
	if err := readGobFrame(blockio.NewReader(f), tagManifest, &m); err != nil {
		return manifest{}, false, err
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("store: manifest version %d, this build reads %d",
			m.Version, manifestVersion)
	}
	for i, s := range m.Segments {
		if s.File != filepath.Base(s.File) || s.File == "" {
			return manifest{}, false, fmt.Errorf("store: manifest names invalid segment file %q", s.File)
		}
		if i > 0 && s.Level < m.Segments[i-1].Level {
			return manifest{}, false, fmt.Errorf("store: manifest segment levels not ascending: %v", m.Segments)
		}
	}
	return m, true, nil
}

// segmentPath names a segment file for the given sequence number.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x.seg", seq))
}

// parseSegmentSeq extracts the sequence number from a segment file
// name. The match is exact, so derived or temp names never count.
func parseSegmentSeq(name string) (seq uint64, ok bool) {
	if _, err := fmt.Sscanf(name, "seg-%016x.seg", &seq); err != nil {
		return 0, false
	}
	return seq, name == fmt.Sprintf("seg-%016x.seg", seq)
}
