package store

import (
	"implicitlayout/internal/par"
	"implicitlayout/perm"
)

// Export returns the store's records in ascending key order (vals is nil
// for keys-only stores). Each shard is copied and inverted with
// perm.UnpermuteWith concurrently; concatenating the shards in fence
// order is already globally sorted because the build partitioned by key
// range. The servable shards are never disturbed — a Store stays a
// consistent snapshot for its readers while (and after) it is exported.
//
// The returned slices are always freshly allocated heap memory, never
// aliases of the store's shard arrays. For a mapped store this is a hard
// requirement, not a courtesy: the copy happens before the in-place
// unpermute (a read-only mapping cannot be permuted), and it is what
// lets a compaction consume a mapped run and outlive the moment its
// mapping is released — the exported records own their bytes.
func (s *Store[K, V]) Export() (keys []K, vals []V) {
	keys = make([]K, s.n)
	if s.hasVals {
		vals = make([]V, s.n)
	}
	r := par.New(s.cfg.Workers)
	r.Tasks(len(s.shards), func(i int, sub par.Runner) {
		sh := s.shards[i]
		lo, hi := sh.off, sh.off+sh.idx.Len()
		dstK := keys[lo:hi]
		copy(dstK, sh.idx.Data())
		var err error
		if vals == nil {
			err = perm.Unpermute(dstK, s.cfg.Layout,
				perm.WithWorkers(sub.P()), perm.WithB(s.cfg.B))
		} else {
			dstV := vals[lo:hi]
			copy(dstV, s.svals[i])
			err = perm.UnpermuteWith(dstK, dstV, s.cfg.Layout,
				perm.WithWorkers(sub.P()), perm.WithB(s.cfg.B))
		}
		if err != nil {
			// Build validated the layout kind, so inversion cannot fail.
			panic("store: " + err.Error())
		}
	})
	return keys, vals
}

// Rebuild constructs a new Store over the same record set with different
// parameters (layout, shard count, B, ...), leaving the receiver intact:
// the snapshot-swap primitive a serving process uses to migrate layouts
// with zero reader downtime.
func (s *Store[K, V]) Rebuild(opts ...Option) (*Store[K, V], error) {
	merged := append([]Option{
		WithShards(s.cfg.Shards),
		WithLayout(s.cfg.Layout),
		WithB(s.cfg.B),
		WithWorkers(s.cfg.Workers),
		WithAlgorithm(s.cfg.Algorithm),
		WithDuplicates(s.cfg.Duplicates),
	}, opts...)
	keys, vals := s.Export()
	return Build(keys, vals, merged...)
}
