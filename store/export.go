package store

import (
	"implicitlayout/internal/par"
	"implicitlayout/perm"
)

// Export returns the store's keys in ascending sorted order. Each shard
// is copied and inverted with perm.Unpermute concurrently; concatenating
// the shards in fence order is already globally sorted because the build
// partitioned by key range. The servable shards are never disturbed — a
// Store stays a consistent snapshot for its readers while (and after) it
// is exported.
func (s *Store[T]) Export() []T {
	out := make([]T, len(s.keys))
	r := par.New(s.cfg.Workers)
	r.Tasks(len(s.shards), func(i int, sub par.Runner) {
		sh := s.shards[i]
		dst := out[sh.off : sh.off+sh.idx.Len()]
		copy(dst, s.keys[sh.off:sh.off+sh.idx.Len()])
		if err := perm.Unpermute(dst, s.cfg.Layout,
			perm.WithWorkers(sub.P()), perm.WithB(s.cfg.B)); err != nil {
			// Build validated the layout kind, so inversion cannot fail.
			panic("store: " + err.Error())
		}
	})
	return out
}

// Rebuild constructs a new Store over the same key set with different
// parameters (layout, shard count, B, ...), leaving the receiver intact:
// the snapshot-swap primitive a serving process uses to migrate layouts
// with zero reader downtime.
func (s *Store[T]) Rebuild(opts ...Option) (*Store[T], error) {
	merged := append([]Option{
		WithShards(s.cfg.Shards),
		WithLayout(s.cfg.Layout),
		WithB(s.cfg.B),
		WithWorkers(s.cfg.Workers),
		WithAlgorithm(s.cfg.Algorithm),
	}, opts...)
	return Build(s.Export(), merged...)
}
