// Package store is a read-optimized, sharded static index store built on
// the paper's in-place layout permutations: the first serving-layer
// subsystem on the road from "fast kernels" to "fast system".
//
// A Store owns its keys end to end. Build ingests an unsorted key set and
// runs the parallel build pipeline — parallel merge sort, range partition
// into shards, then perm.Permute of every shard concurrently into the
// configured layout (vEB by default). Queries route through a fence-key
// router (the first key of each shard, captured while the data is still
// sorted) and run the layout's search kernel inside the owning shard;
// GetBatch fans a query batch out over a bounded worker pool and reports
// per-shard hit statistics.
//
// A built Store is immutable — snapshot semantics. Any number of reader
// goroutines may share one Store with no synchronization, and Export
// recovers the sorted key set via perm.Unpermute without disturbing the
// servable shards.
package store

import (
	"cmp"
	"fmt"
	"runtime"

	"implicitlayout/internal/par"
	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

// Config collects the build parameters; zero fields select defaults.
type Config struct {
	// Shards is the number of range partitions (default: GOMAXPROCS,
	// clamped to the key count so no shard is empty).
	Shards int
	// Layout is the per-shard memory layout (default layout.VEB).
	Layout layout.Kind
	// B is the B-tree node capacity (default perm.DefaultB); ignored by
	// the BST and vEB layouts.
	B int
	// Workers bounds the build pipeline's parallelism (values below 1
	// select GOMAXPROCS).
	Workers int
	// Algorithm selects the permutation family (default perm.CycleLeader,
	// the fastest on CPUs in the paper's measurements).
	Algorithm perm.Algorithm
}

// Option configures Build.
type Option func(*Config)

// WithShards sets the shard count (values below 1 select GOMAXPROCS).
func WithShards(s int) Option { return func(c *Config) { c.Shards = s } }

// WithLayout selects the per-shard layout (default layout.VEB).
func WithLayout(k layout.Kind) Option { return func(c *Config) { c.Layout = k } }

// WithB sets the B-tree node capacity (default perm.DefaultB).
func WithB(b int) Option { return func(c *Config) { c.B = b } }

// WithWorkers bounds the build parallelism (values below 1 select
// GOMAXPROCS).
func WithWorkers(p int) Option { return func(c *Config) { c.Workers = p } }

// WithAlgorithm selects the permutation family used by the build.
func WithAlgorithm(a perm.Algorithm) Option { return func(c *Config) { c.Algorithm = a } }

func buildConfig(n int, opts []Option) Config {
	c := Config{Layout: layout.VEB, B: perm.DefaultB, Algorithm: perm.CycleLeader}
	for _, o := range opts {
		o(&c)
	}
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > n {
		c.Shards = n
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.B < 1 {
		c.B = perm.DefaultB
	}
	return c
}

// shard is one range partition: a laid-out slice of the store's backing
// array plus its offset in sorted order.
type shard[T cmp.Ordered] struct {
	idx *search.Index[T]
	off int // global sorted rank of the shard's first key
}

// Store is an immutable sharded index over a static key set. It is safe
// for concurrent use by any number of reader goroutines.
type Store[T cmp.Ordered] struct {
	cfg    Config
	keys   []T // backing array, shards laid out back to back
	shards []shard[T]
	fences []T // fences[i] = smallest key of shard i (sorted ascending)
}

// Build ingests keys (in any order, duplicates allowed), runs the
// parallel build pipeline, and returns the immutable Store. The input
// slice is copied, never mutated.
//
// Keys must be totally ordered by <. Floating-point key sets containing
// NaN sort deterministically (NaNs first, as slices.Sort orders them)
// and Export stays correct, but the layout query kernels compare with <
// like every searcher in this repository, so queries touching a shard
// that holds a NaN are undefined — filter NaNs out upstream.
func Build[T cmp.Ordered](keys []T, opts ...Option) (*Store[T], error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("store: cannot build from an empty key set")
	}
	c := buildConfig(len(keys), opts)
	switch c.Layout {
	case layout.Sorted, layout.BST, layout.BTree, layout.VEB:
	default:
		return nil, fmt.Errorf("store: unknown layout %v", c.Layout)
	}
	owned := make([]T, len(keys))
	copy(owned, keys)

	runner := par.New(c.Workers)

	// Stage 1: parallel sort of the full key set.
	parallelSort(runner, owned)

	// Stage 2: range partition. Equal-size index ranges of the sorted
	// array are contiguous key ranges, so the partition is by key range
	// with near-perfect balance; fences are read off before the layout
	// permutation destroys sorted order.
	s := &Store[T]{cfg: c, keys: owned}
	s.shards = make([]shard[T], c.Shards)
	s.fences = make([]T, c.Shards)
	n := len(owned)
	for i := 0; i < c.Shards; i++ {
		lo, hi := i*n/c.Shards, (i+1)*n/c.Shards
		s.shards[i] = shard[T]{off: lo, idx: search.NewIndex(owned[lo:hi:hi], c.Layout, c.B)}
		s.fences[i] = owned[lo]
	}

	// Stage 3: permute every shard into its layout concurrently. Each
	// shard task inherits a disjoint slice of the worker budget, so total
	// build parallelism stays bounded by c.Workers.
	runner.Tasks(c.Shards, func(i int, sub par.Runner) {
		lo, hi := i*n/c.Shards, (i+1)*n/c.Shards
		perm.Permute(owned[lo:hi], c.Layout, c.Algorithm,
			perm.WithWorkers(sub.P()), perm.WithB(c.B))
	})
	return s, nil
}

// Len returns the number of keys (including duplicates).
func (s *Store[T]) Len() int { return len(s.keys) }

// Shards returns the shard count.
func (s *Store[T]) Shards() int { return len(s.shards) }

// Layout returns the per-shard layout kind.
func (s *Store[T]) Layout() layout.Kind { return s.cfg.Layout }

// B returns the B-tree node capacity shards were built with.
func (s *Store[T]) B() int { return s.cfg.B }

// Fences returns the router's fence keys: Fences()[i] is the smallest key
// of shard i. The result is a copy and ascends.
func (s *Store[T]) Fences() []T {
	f := make([]T, len(s.fences))
	copy(f, s.fences)
	return f
}

// ShardLen returns the number of keys in shard i.
func (s *Store[T]) ShardLen(i int) int { return s.shards[i].idx.Len() }

// route returns the shard that would hold x: the largest i with
// fences[i] <= x, or -1 when x precedes every key in the store.
func (s *Store[T]) route(x T) int {
	return search.PredecessorBinary(s.fences, x)
}
