// Package store is the serving layer built on the paper's in-place
// layout permutations. It offers two data structures: the immutable
// sharded Store, and the writable DB that stacks an LSM-style write path
// on top of it. See ARCHITECTURE.md at the repository root for the layer
// diagram and data flows.
//
// # Store: the static record store
//
// A Store owns its records end to end. Build ingests unsorted key–value
// pairs and runs the parallel build pipeline — stable parallel merge sort
// by key, duplicate-key resolution, range partition into shards, then a
// payload-carrying perm.PermuteWith of every shard concurrently into the
// configured layout (vEB by default), so each value sits at the same
// array position as its key. Queries route through a fence-key router
// (the first key of each shard, captured while the data is still sorted)
// and run the layout's search kernel inside the owning shard; Get returns
// the stored value, GetBatch fans a query batch out over a bounded worker
// pool and returns every value plus per-shard hit statistics, and Range
// and Scan stream records in globally ascending key order by walking the
// shards through their fence keys — without ever unpermuting.
//
// Keys-only use is the Set alias (a Store with struct{} values) built by
// BuildSet. A built Store is immutable — snapshot semantics. Any number
// of reader goroutines may share one Store with no synchronization, and
// Export recovers the sorted records via perm.UnpermuteWith without
// disturbing the servable shards.
//
// # DB: the writable store
//
// A DB accepts Put and Delete at any time: writes land in a mutable
// memtable, a background compactor flushes full memtables into immutable
// level-0 runs — each run a sharded Store whose payloads carry a
// tombstone bit — and merges runs level to level as they accumulate.
// Reads resolve versions newest-first across memtable and runs, and
// DB.Range/DB.Scan k-way merge all layers into one ordered stream of
// live records. The paper's cheap parallel construction is what makes
// "rebuild a search layout at every flush" a write path rather than a
// maintenance outage. Duplicate handling is always KeepLast in the DB
// (overwrite semantics); see the decision table in README.md for how
// the Store policies interact with tombstones.
//
// # Durability
//
// Open backs a DB with a directory and makes the write path crash-safe:
// Put and Delete are appended to a write-ahead log before they are
// acknowledged, flushed runs are persisted as checksummed segment files
// holding the permuted shard arrays verbatim (an implicit layout is a
// pointer-free array, so the permuted array is the on-disk format and
// reopening never re-sorts or re-permutes), and an atomically rewritten
// manifest names the live segments. Reopening the directory replays any
// logs a crash left behind and serves the whole acknowledged history.
// The same codec is public on the static store as Store.WriteTo and
// ReadStore. Formats and the recovery protocol are specified in
// ARCHITECTURE.md ("On-disk layout and crash recovery").
//
// Fixed-width records (ints, uints, floats) are written in a raw
// 64-byte-aligned segment format that can be served without decoding:
// OpenStore with WithMmap — or DBConfig.Mmap for a durable DB — maps
// segment files read-only and serves the permuted arrays in place from
// the OS page cache, so cold opens are O(shards) metadata work and the
// servable dataset is not bounded by the heap. See "Zero-copy serving"
// in ARCHITECTURE.md.
package store

import (
	"cmp"
	"fmt"
	"runtime"

	"implicitlayout/internal/filter"
	"implicitlayout/internal/par"
	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

// DuplicatePolicy selects how Build resolves records with equal keys.
// Resolution happens after the stable sort, so "first" and "last" refer
// to input order.
type DuplicatePolicy int

const (
	// KeepLast keeps, for each key, the value of its last occurrence in
	// the input — the overwrite semantics of loading a map. The default.
	KeepLast DuplicatePolicy = iota
	// KeepFirst keeps the value of the first occurrence in the input.
	KeepFirst
	// KeepAll keeps every occurrence (multiset semantics). Get and
	// GetBatch return the value of an unspecified occurrence of the key;
	// Range, Scan, and Export yield all of them, equal keys in input
	// order.
	KeepAll
	// Reject makes Build fail with an error naming the first duplicated
	// key.
	Reject
)

// String returns the policy name.
func (d DuplicatePolicy) String() string {
	switch d {
	case KeepLast:
		return "keep-last"
	case KeepFirst:
		return "keep-first"
	case KeepAll:
		return "keep-all"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("DuplicatePolicy(%d)", int(d))
}

// Config collects the build parameters; zero fields select defaults.
type Config struct {
	// Shards is the number of range partitions (default: GOMAXPROCS,
	// clamped to the record count so no shard is empty).
	Shards int
	// Layout is the per-shard memory layout (default layout.VEB).
	Layout layout.Kind
	// B is the B-tree node capacity (default perm.DefaultB); ignored by
	// the BST and vEB layouts.
	B int
	// Workers bounds the build pipeline's parallelism (values below 1
	// select GOMAXPROCS).
	Workers int
	// Algorithm selects the permutation family (default perm.CycleLeader,
	// the fastest on CPUs in the paper's measurements).
	Algorithm perm.Algorithm
	// Duplicates selects the duplicate-key policy (default KeepLast).
	Duplicates DuplicatePolicy
	// Mmap asks OpenStore (and DB segment reopens) to serve codec-v2
	// segment files from a read-only memory mapping instead of decoding
	// them onto the heap: open cost drops from O(data) to O(shards), and
	// the OS page cache — not the Go heap — holds the working set.
	// Ignored by Build (a built store is heap-born by construction) and
	// silently degraded to heap decoding when the platform cannot map
	// files or the segment is v1 (gob). See WithMmap.
	Mmap bool
}

// Option configures Build.
type Option func(*Config)

// WithShards sets the shard count (values below 1 select GOMAXPROCS).
func WithShards(s int) Option { return func(c *Config) { c.Shards = s } }

// WithLayout selects the per-shard layout (default layout.VEB).
func WithLayout(k layout.Kind) Option { return func(c *Config) { c.Layout = k } }

// WithB sets the B-tree node capacity (default perm.DefaultB).
func WithB(b int) Option { return func(c *Config) { c.B = b } }

// WithWorkers bounds the build parallelism (values below 1 select
// GOMAXPROCS).
func WithWorkers(p int) Option { return func(c *Config) { c.Workers = p } }

// WithAlgorithm selects the permutation family used by the build.
func WithAlgorithm(a perm.Algorithm) Option { return func(c *Config) { c.Algorithm = a } }

// WithDuplicates selects the duplicate-key policy (default KeepLast).
func WithDuplicates(d DuplicatePolicy) Option { return func(c *Config) { c.Duplicates = d } }

// WithMmap selects zero-copy serving for OpenStore: a codec-v2 segment
// file is mapped read-only and its shard arrays are served in place from
// the page cache, never decoded onto the heap. Platforms without mmap
// and v1 (gob) segments fall back to heap decoding. See Store.Mapped and
// Store.Release for the mapping lifecycle.
func WithMmap(on bool) Option { return func(c *Config) { c.Mmap = on } }

func buildConfig(n int, opts []Option) Config {
	c := Config{Layout: layout.VEB, B: perm.DefaultB, Algorithm: perm.CycleLeader}
	for _, o := range opts {
		o(&c)
	}
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > n {
		c.Shards = n
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.B < 1 {
		c.B = perm.DefaultB
	}
	return c
}

// shard is one range partition: a laid-out slice of the store's backing
// key array plus its offset in sorted order. Values are not stored here —
// the value of the key at shard-local position p lives at the same
// backing-array position, vals[off+p], because PermuteWith moved both
// arrays by the same permutation.
type shard[K cmp.Ordered] struct {
	idx *search.Index[K]
	off int // global sorted rank of the shard's first key
}

// Store is an immutable sharded key–value index over a static record set.
// It is safe for concurrent use by any number of reader goroutines. V may
// be any type; a keys-only Store (the Set alias) carries no value array
// at all.
//
// The shard arrays are held per shard, not as one assumed-contiguous
// allocation: a Build-born store's shards are windows into one heap
// array, while a store opened with WithMmap serves each shard directly
// from its 64-byte-aligned block of a mapped segment file. Every query,
// iteration, and export path goes through the per-shard views, so the
// search kernels never know which backing they are reading.
type Store[K cmp.Ordered, V any] struct {
	cfg     Config
	n       int  // total records across shards
	hasVals bool // false for keys-only stores (no value arrays at all)
	shards  []shard[K]
	svals   [][]V    // svals[i][p] = value of shard i's key at position p; nil when !hasVals
	fences  []K      // fences[i] = smallest key of shard i (sorted ascending)
	maxKey  K        // largest key in the store (fences[0] is the smallest)
	back    *backing // non-nil when the shard arrays view a mapped segment
	// bloom is the optional per-run key filter the DB's read path
	// consults before descending (see filter.go). Build leaves it nil;
	// the DB attaches one to every run it builds, and the v2.1 segment
	// codec persists and restores it.
	bloom *filter.Bloom
}

// Set is a keys-only Store: the value type is struct{} and no value
// array is allocated. It is the PR 1 key-set API under the record store.
type Set[K cmp.Ordered] = Store[K, struct{}]

// rec pairs a key with its value for the build-time stable sort.
type rec[K, V any] struct {
	key K
	val V
}

// Build ingests parallel slices of keys and values (in any order;
// vals[i] is the payload of keys[i]), runs the parallel build pipeline,
// and returns the immutable Store. Both input slices are copied, never
// mutated. A nil vals builds a keys-only store (see BuildSet); otherwise
// len(vals) must equal len(keys).
//
// Records with equal keys are resolved by the configured
// DuplicatePolicy, KeepLast by default: for each key the value of its
// last occurrence in the input wins, like loading a map.
//
// Keys must be totally ordered by <. Floating-point key sets containing
// NaN sort deterministically (NaNs first, as slices.Sort orders them)
// and Export stays correct, but the layout query kernels compare with <
// like every searcher in this repository, so queries touching a shard
// that holds a NaN are undefined — filter NaNs out upstream. Duplicate
// resolution compares with ==, which never merges NaNs.
func Build[K cmp.Ordered, V any](keys []K, vals []V, opts ...Option) (*Store[K, V], error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("store: cannot build from an empty key set")
	}
	if vals != nil && len(vals) != len(keys) {
		return nil, fmt.Errorf("store: %d keys but %d values", len(keys), len(vals))
	}
	c := buildConfig(len(keys), opts)
	switch c.Layout {
	case layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier:
	default:
		return nil, fmt.Errorf("store: unknown layout %v", c.Layout)
	}
	switch c.Duplicates {
	case KeepLast, KeepFirst, KeepAll, Reject:
	default:
		return nil, fmt.Errorf("store: unknown duplicate policy %v", c.Duplicates)
	}
	ownedK := make([]K, len(keys))
	copy(ownedK, keys)
	var ownedV []V
	if vals != nil {
		ownedV = make([]V, len(vals))
		copy(ownedV, vals)
	}

	runner := par.New(c.Workers)

	// Stage 1: parallel sort of the full record set. Keys-only stores
	// take the specialized key sort; records zip through a transient pair
	// array so the stable sort moves each value with its key. (The pair
	// array, like the sort's scratch buffer, exists only during Build.)
	if ownedV == nil {
		parallelSort(runner, ownedK)
	} else {
		recs := make([]rec[K, V], len(ownedK))
		for i := range recs {
			recs[i] = rec[K, V]{key: ownedK[i], val: ownedV[i]}
		}
		parallelSortStable(runner, recs, func(a, b rec[K, V]) int {
			return cmp.Compare(a.key, b.key)
		})
		for i := range recs {
			ownedK[i], ownedV[i] = recs[i].key, recs[i].val
		}
	}

	// Stage 2: duplicate resolution on the sorted records. The stable
	// sort left equal keys in input order, so first/last occurrence is
	// first/last of each equal run.
	switch c.Duplicates {
	case Reject:
		for i := 1; i < len(ownedK); i++ {
			if ownedK[i] == ownedK[i-1] {
				return nil, fmt.Errorf("store: duplicate key %v", ownedK[i])
			}
		}
	case KeepFirst, KeepLast:
		ownedK, ownedV = dedupe(ownedK, ownedV, c.Duplicates == KeepLast)
	}
	n := len(ownedK)
	if c.Shards > n {
		c.Shards = n // dedupe may have shrunk below the requested count
	}

	// Stage 3: range partition. Equal-size index ranges of the sorted
	// array are contiguous key ranges, so the partition is by key range
	// with near-perfect balance; fences are read off before the layout
	// permutation destroys sorted order.
	s := &Store[K, V]{cfg: c, n: n, hasVals: ownedV != nil}
	s.maxKey = ownedK[n-1] // read off while still sorted, like the fences
	s.shards = make([]shard[K], c.Shards)
	s.fences = make([]K, c.Shards)
	if ownedV != nil {
		s.svals = make([][]V, c.Shards)
	}
	for i := 0; i < c.Shards; i++ {
		lo, hi := i*n/c.Shards, (i+1)*n/c.Shards
		s.shards[i] = shard[K]{off: lo, idx: search.NewIndex(ownedK[lo:hi:hi], c.Layout, c.B)}
		if ownedV != nil {
			s.svals[i] = ownedV[lo:hi:hi]
		}
		s.fences[i] = ownedK[lo]
	}

	// Stage 4: permute every shard into its layout concurrently, values
	// riding the same permutation as their keys. Each shard task inherits
	// a disjoint slice of the worker budget, so total build parallelism
	// stays bounded by c.Workers.
	runner.Tasks(c.Shards, func(i int, sub par.Runner) {
		lo, hi := i*n/c.Shards, (i+1)*n/c.Shards
		if ownedV == nil {
			perm.Permute(ownedK[lo:hi], c.Layout, c.Algorithm,
				perm.WithWorkers(sub.P()), perm.WithB(c.B))
		} else {
			perm.PermuteWith(ownedK[lo:hi], ownedV[lo:hi], c.Layout, c.Algorithm,
				perm.WithWorkers(sub.P()), perm.WithB(c.B))
		}
	})
	return s, nil
}

// BuildSet builds a keys-only store — the PR 1 key-set pipeline. All
// Options apply; the duplicate policy defaults to KeepLast, so a Set
// deduplicates like a set unless WithDuplicates(KeepAll) asks for
// multiset behavior.
func BuildSet[K cmp.Ordered](keys []K, opts ...Option) (*Set[K], error) {
	return Build[K, struct{}](keys, nil, opts...)
}

// dedupe compacts equal-key runs of the sorted records in place, keeping
// the first element of each run (or the last, when keepLast). vals may be
// nil.
func dedupe[K cmp.Ordered, V any](keys []K, vals []V, keepLast bool) ([]K, []V) {
	w := 0
	for i := range keys {
		if w > 0 && keys[i] == keys[w-1] {
			if keepLast && vals != nil {
				vals[w-1] = vals[i]
			}
			continue
		}
		keys[w] = keys[i]
		if vals != nil {
			vals[w] = vals[i]
		}
		w++
	}
	if vals == nil {
		return keys[:w], nil
	}
	return keys[:w], vals[:w]
}

// Len returns the number of records the store serves (after duplicate
// resolution).
func (s *Store[K, V]) Len() int { return s.n }

// HasValues reports whether the store carries value payloads; a Set
// built by BuildSet does not.
func (s *Store[K, V]) HasValues() bool { return s.hasVals }

// Shards returns the shard count.
func (s *Store[K, V]) Shards() int { return len(s.shards) }

// Layout returns the per-shard layout kind.
func (s *Store[K, V]) Layout() layout.Kind { return s.cfg.Layout }

// B returns the B-tree node capacity shards were built with.
func (s *Store[K, V]) B() int { return s.cfg.B }

// Duplicates returns the duplicate-key policy the store was built with.
func (s *Store[K, V]) Duplicates() DuplicatePolicy { return s.cfg.Duplicates }

// Fences returns the router's fence keys: Fences()[i] is the smallest key
// of shard i. The result is a copy and ascends.
func (s *Store[K, V]) Fences() []K {
	f := make([]K, len(s.fences))
	copy(f, s.fences)
	return f
}

// ShardLen returns the number of records in shard i.
func (s *Store[K, V]) ShardLen(i int) int { return s.shards[i].idx.Len() }

// route returns the shard that would hold x: the largest i with
// fences[i] <= x, or -1 when x precedes every key in the store.
func (s *Store[K, V]) route(x K) int {
	return search.PredecessorBinary(s.fences, x)
}
