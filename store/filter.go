package store

import (
	"cmp"
	"math"
	"reflect"

	"implicitlayout/internal/filter"
)

// This file is the store side of the per-run key filters: a
// deterministic hash over any ordered key type, the bloom construction
// the DB's run builds and the streaming segment writer share, and the
// fences+bloom decision rule DB.Get and DB.GetBatch consult before
// descending into a run. The filter bits themselves live in
// internal/filter; the v2.1 segment codec persists them (see
// segment.go), so a reopened run skips the same lookups it skipped
// before the restart.

// keyHash maps a key to the 64-bit hash the run filters are built over.
// It must be deterministic across processes and platforms — the hash
// feeds a bloom filter that is serialized into segment files — so it
// avoids maphash's per-process seeds: primitives hash their value bits
// through a fixed avalanche mix, strings through FNV-1a. Named types
// whose underlying kind is a primitive take the reflection fallback,
// which hashes the same way per kind; cmp.Ordered admits no other
// kinds, so every key type the store can hold is hashable.
//
// Negative zero is normalized to positive zero before hashing so the
// two float encodings of an equal key cannot split across the filter.
// (NaN keys hash deterministically but are already undefined for the
// query kernels — see Build.)
func keyHash[K cmp.Ordered](k K) uint64 {
	switch v := any(k).(type) {
	case int:
		return mix64(uint64(v))
	case int8:
		return mix64(uint64(v))
	case int16:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case uint:
		return mix64(uint64(v))
	case uint8:
		return mix64(uint64(v))
	case uint16:
		return mix64(uint64(v))
	case uint32:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case uintptr:
		return mix64(uint64(v))
	case float32:
		if v == 0 {
			v = 0 // fold -0 into +0: equal keys, different bits
		}
		return mix64(uint64(math.Float32bits(v)))
	case float64:
		if v == 0 {
			v = 0
		}
		return mix64(math.Float64bits(v))
	case string:
		return hashString(v)
	}
	// Named types: same per-kind rule via reflection. A given key type
	// always takes one path, so writer and reader hash identically.
	rv := reflect.ValueOf(k)
	switch rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return mix64(uint64(rv.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return mix64(rv.Uint())
	case reflect.Float32, reflect.Float64:
		f := rv.Float()
		if f == 0 {
			f = 0
		}
		return mix64(math.Float64bits(f))
	case reflect.String:
		return hashString(rv.String())
	}
	panic("store: unhashable ordered key kind " + rv.Kind().String())
}

// mix64 is the 64-bit avalanche finalizer (Murmur3's fmix64): every
// input bit affects every output bit, turning sequential keys into
// uniformly spread filter probes.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// hashString is FNV-1a 64 with a final avalanche — simple, allocation-
// free, and stable across builds.
func hashString(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return mix64(h)
}

// runBloom builds the run filter over a run's keys — live and tombstone
// alike: a tombstone is a version a read must find, so it must pass the
// filter.
func runBloom[K cmp.Ordered](keys []K) *filter.Bloom {
	b := filter.New(len(keys))
	for _, k := range keys {
		b.Add(keyHash(k))
	}
	return b
}

// Filter-check outcomes for one (run, key) pair — see run.filterCheck.
const (
	runProbe     = iota // the run may hold the key: descend
	runSkipFence        // key outside [min, max]: provably absent
	runSkipBloom        // bloom filter says absent (no false negatives)
)

// filterCheck is the read path's pre-descent gate: the fence interval
// (the run's smallest and largest keys) proves most out-of-range keys
// absent for free, and the bloom filter catches most in-range misses
// for one cache line — so a point lookup skips runs without faulting
// their pages. A runProbe answer is the only case that descends; bloom
// false positives cost a wasted descent, never a wrong answer.
func (r *run[K, V]) filterCheck(key K) int {
	s := r.st
	if key < s.fences[0] || s.maxKey < key {
		return runSkipFence
	}
	if s.bloom != nil && !s.bloom.MayContain(keyHash(key)) {
		return runSkipBloom
	}
	return runProbe
}
