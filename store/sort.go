package store

import (
	"cmp"
	"slices"

	"implicitlayout/internal/par"
)

// sortSerialBelow is the input size under which forking sort runs is not
// worth the goroutine overhead.
const sortSerialBelow = 1 << 13

// parallelSort sorts a ascending using the runner's workers: each worker
// sorts one contiguous run, then runs are merged pairwise in parallel
// rounds. It uses one n-element scratch buffer; the build pipeline is the
// only caller, so the transient allocation never touches the query path.
func parallelSort[T cmp.Ordered](r par.Runner, a []T) {
	n := len(a)
	p := r.P()
	if p > n {
		p = n
	}
	if p <= 1 || n < sortSerialBelow {
		slices.Sort(a)
		return
	}

	// Stage 1: p sorted runs, one per worker.
	bounds := make([]int, p+1)
	for i := range bounds {
		bounds[i] = i * n / p
	}
	r.Tasks(p, func(i int, _ par.Runner) {
		slices.Sort(a[bounds[i]:bounds[i+1]])
	})

	// Stage 2: merge runs pairwise until one remains, ping-ponging
	// between a and the scratch buffer. Each merge task splits its pair
	// across the sub-runner it receives (co-ranking), so the rounds keep
	// all workers busy even as the run count halves — without this the
	// final whole-array merge would be a serial O(n) tail.
	src, dst := a, make([]T, n)
	rounds := 0
	for len(bounds)-1 > 1 {
		runs := len(bounds) - 1
		pairs := runs / 2
		odd := runs % 2
		r.Tasks(pairs+odd, func(t int, sub par.Runner) {
			if t == pairs { // unpaired trailing run: carried over verbatim
				copy(dst[bounds[2*t]:bounds[2*t+1]], src[bounds[2*t]:bounds[2*t+1]])
				return
			}
			lo, mid, hi := bounds[2*t], bounds[2*t+1], bounds[2*t+2]
			parallelMerge(sub, dst[lo:hi], src[lo:mid], src[mid:hi])
		})
		next := bounds[:0:0]
		for i := 0; i < len(bounds); i += 2 {
			next = append(next, bounds[i])
		}
		if next[len(next)-1] != n {
			next = append(next, n)
		}
		bounds = next
		src, dst = dst, src
		rounds++
	}
	if rounds%2 == 1 {
		copy(a, src)
	}
}

// mergeSerialBelow is the merge output size under which splitting one
// merge across workers is not worth the co-ranking overhead.
const mergeSerialBelow = 1 << 12

// parallelMerge merges the sorted runs x and y into dst using the
// runner's workers: the output is cut into P near-equal chunks, co-rank
// binary searches find the matching split points in x and y, and each
// worker merges its chunk independently.
func parallelMerge[T cmp.Ordered](r par.Runner, dst, x, y []T) {
	k := r.P()
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 1 || len(dst) < mergeSerialBelow {
		mergeRuns(dst, x, y)
		return
	}
	type cut struct{ i, j int }
	cuts := make([]cut, k+1)
	cuts[k] = cut{len(x), len(y)}
	for w := 1; w < k; w++ {
		i, j := coRank(w*len(dst)/k, x, y)
		cuts[w] = cut{i, j}
	}
	r.Tasks(k, func(w int, _ par.Runner) {
		lo, hi := cuts[w], cuts[w+1]
		mergeRuns(dst[lo.i+lo.j:hi.i+hi.j], x[lo.i:hi.i], y[lo.j:hi.j])
	})
}

// coRank returns the unique (i, j) with i+j == t such that merging x[:i]
// and y[:j] yields the first t elements of the stable merge of x and y
// (x wins ties, matching mergeRuns). Both slices must be sorted.
func coRank[T cmp.Ordered](t int, x, y []T) (int, int) {
	lo, hi := max(0, t-len(y)), min(t, len(x))
	for {
		i := int(uint(lo+hi) >> 1)
		j := t - i
		switch {
		case j > 0 && i < len(x) && !cmp.Less(y[j-1], x[i]):
			// y[j-1] >= x[i]: x[i] precedes y[j-1] in merge order, so it
			// belongs inside the prefix — i is too small.
			lo = i + 1
		case i > 0 && j < len(y) && cmp.Less(y[j], x[i-1]):
			// x[i-1] follows y[j] in merge order — i is too big.
			hi = i - 1
		default:
			return i, j
		}
	}
}

// mergeRuns merges the sorted runs x and y into dst, which must have
// length len(x)+len(y). Comparison is cmp.Less, the order slices.Sort
// produces for stage-1 runs, so the parallel path orders float NaNs
// exactly like the serial slices.Sort path.
func mergeRuns[T cmp.Ordered](dst, x, y []T) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if cmp.Less(y[j], x[i]) {
			dst[k] = y[j]
			j++
		} else {
			dst[k] = x[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], x[i:])
	copy(dst[k:], y[j:])
}
