package store

import (
	"cmp"
	"slices"

	"implicitlayout/internal/par"
)

// sortSerialBelow is the input size under which forking sort runs is not
// worth the goroutine overhead.
const sortSerialBelow = 1 << 13

// parallelSort sorts a ascending using the runner's workers. It is the
// key-only fast path: serial leaves use the specialized slices.Sort.
func parallelSort[T cmp.Ordered](r par.Runner, a []T) {
	parallelSortRuns(r, a, slices.Sort[[]T, T], cmp.Less[T])
}

// parallelSortStable sorts a ascending by the comparison cmpf, stably:
// elements that compare equal keep their input order. The build pipeline
// uses it for key–value records, where stability is what makes the
// duplicate-key policies (first/last occurrence wins) well defined.
func parallelSortStable[E any](r par.Runner, a []E, cmpf func(E, E) int) {
	parallelSortRuns(r, a,
		func(run []E) { slices.SortStableFunc(run, cmpf) },
		func(x, y E) bool { return cmpf(x, y) < 0 })
}

// parallelSortRuns is the shared engine: each worker sorts one contiguous
// run with sortRun, then runs are merged pairwise in parallel rounds under
// the order less. It uses one n-element scratch buffer; the build pipeline
// is the only caller, so the transient allocation never touches the query
// path. The merge keeps the left run on ties, so the whole sort is stable
// whenever sortRun is.
func parallelSortRuns[E any](r par.Runner, a []E, sortRun func([]E), less func(E, E) bool) {
	n := len(a)
	p := r.P()
	if p > n {
		p = n
	}
	if p <= 1 || n < sortSerialBelow {
		sortRun(a)
		return
	}

	// Stage 1: p sorted runs, one per worker.
	bounds := make([]int, p+1)
	for i := range bounds {
		bounds[i] = i * n / p
	}
	r.Tasks(p, func(i int, _ par.Runner) {
		sortRun(a[bounds[i]:bounds[i+1]])
	})

	// Stage 2: merge runs pairwise until one remains, ping-ponging
	// between a and the scratch buffer. Each merge task splits its pair
	// across the sub-runner it receives (co-ranking), so the rounds keep
	// all workers busy even as the run count halves — without this the
	// final whole-array merge would be a serial O(n) tail.
	src, dst := a, make([]E, n)
	rounds := 0
	for len(bounds)-1 > 1 {
		runs := len(bounds) - 1
		pairs := runs / 2
		odd := runs % 2
		r.Tasks(pairs+odd, func(t int, sub par.Runner) {
			if t == pairs { // unpaired trailing run: carried over verbatim
				copy(dst[bounds[2*t]:bounds[2*t+1]], src[bounds[2*t]:bounds[2*t+1]])
				return
			}
			lo, mid, hi := bounds[2*t], bounds[2*t+1], bounds[2*t+2]
			parallelMerge(sub, dst[lo:hi], src[lo:mid], src[mid:hi], less)
		})
		next := bounds[:0:0]
		for i := 0; i < len(bounds); i += 2 {
			next = append(next, bounds[i])
		}
		if next[len(next)-1] != n {
			next = append(next, n)
		}
		bounds = next
		src, dst = dst, src
		rounds++
	}
	if rounds%2 == 1 {
		copy(a, src)
	}
}

// mergeSerialBelow is the merge output size under which splitting one
// merge across workers is not worth the co-ranking overhead.
const mergeSerialBelow = 1 << 12

// parallelMerge merges the sorted runs x and y into dst using the
// runner's workers: the output is cut into P near-equal chunks, co-rank
// binary searches find the matching split points in x and y, and each
// worker merges its chunk independently.
func parallelMerge[E any](r par.Runner, dst, x, y []E, less func(E, E) bool) {
	k := r.P()
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 1 || len(dst) < mergeSerialBelow {
		mergeRuns(dst, x, y, less)
		return
	}
	type cut struct{ i, j int }
	cuts := make([]cut, k+1)
	cuts[k] = cut{len(x), len(y)}
	for w := 1; w < k; w++ {
		i, j := coRank(w*len(dst)/k, x, y, less)
		cuts[w] = cut{i, j}
	}
	r.Tasks(k, func(w int, _ par.Runner) {
		lo, hi := cuts[w], cuts[w+1]
		mergeRuns(dst[lo.i+lo.j:hi.i+hi.j], x[lo.i:hi.i], y[lo.j:hi.j], less)
	})
}

// coRank returns the unique (i, j) with i+j == t such that merging x[:i]
// and y[:j] yields the first t elements of the stable merge of x and y
// (x wins ties, matching mergeRuns). Both slices must be sorted by less.
func coRank[E any](t int, x, y []E, less func(E, E) bool) (int, int) {
	lo, hi := max(0, t-len(y)), min(t, len(x))
	for {
		i := int(uint(lo+hi) >> 1)
		j := t - i
		switch {
		case j > 0 && i < len(x) && !less(y[j-1], x[i]):
			// y[j-1] >= x[i]: x[i] precedes y[j-1] in merge order, so it
			// belongs inside the prefix — i is too small.
			lo = i + 1
		case i > 0 && j < len(y) && less(y[j], x[i-1]):
			// x[i-1] follows y[j] in merge order — i is too big.
			hi = i - 1
		default:
			return i, j
		}
	}
}

// mergeRuns merges the sorted runs x and y into dst, which must have
// length len(x)+len(y). The left run wins ties, which preserves input
// order across the contiguous stage-1 runs; for cmp.Ordered keys less is
// cmp.Less, the order slices.Sort produces, so the parallel path orders
// float NaNs exactly like the serial path.
func mergeRuns[E any](dst, x, y []E, less func(E, E) bool) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if less(y[j], x[i]) {
			dst[k] = y[j]
			j++
		} else {
			dst[k] = x[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], x[i:])
	copy(dst[k:], y[j:])
}
