package store

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"implicitlayout/internal/blockio"
)

// maintain drains all pending background work: flush every frozen
// memtable to a level-0 run, then merge levels until each holds fewer
// than Fanout runs. It is the drain function of the DB's par.Worker and
// is also called synchronously by Flush and Close; the compact mutex
// serializes the callers, so run-stack surgery has exactly one writer.
// Writers are never blocked — each step does its expensive work (build,
// export, merge, segment write) against immutable inputs and only takes
// db.mu for the final snapshot swap.
func (db *DB[K, V]) maintain() {
	db.compact.Lock()
	defer db.compact.Unlock()
	for {
		if db.dir != "" && db.err() != nil {
			// After the first durability failure the DB stops changing
			// its on-disk state: no further segment may commit, because
			// committing newer data while e.g. an obsolete WAL refused
			// deletion could let that stale log shadow the newer
			// segment at the next recovery. Frozen tables keep serving
			// from memory, their sealed WALs keep their records safe.
			return
		}
		if db.flushOne() {
			continue
		}
		if db.mergeOne() {
			continue
		}
		return
	}
}

// flushOne builds the oldest frozen memtable into a level-0 run and
// swaps it out of the frozen list, returning false when there is nothing
// to flush. The frozen table's sorted view has unique keys, so the
// build pipeline's sort stage sees already-ordered input and the real
// cost is the parallel layout permutation — the paper's construction
// primitive is the flush path.
//
// In durable mode the run is published by the manifest swap protocol:
// segment file written and fsynced first, manifest rewritten to name it
// (the commit point), in-memory state swapped, and only then is the
// flushed memtable's now-redundant WAL deleted. A crash anywhere in the
// sequence loses nothing: before the commit point the WAL still carries
// the records (the orphan segment is garbage-collected at the next
// Open); after it, the segment does (a surviving WAL replays into
// records that the newer recovery run shadows harmlessly).
func (db *DB[K, V]) flushOne() bool {
	st := db.state.Load()
	if len(st.frozen) == 0 {
		return false
	}
	m := st.frozen[len(st.frozen)-1] // oldest: flush order preserves run recency
	keys, vals := unzipRecs(m.sortedRecs())
	newRun := &run[K, V]{st: db.buildRun(keys, vals), level: 0}

	if db.dir != "" {
		// Only maintain() mutates runs and we hold the compact mutex, so
		// st.runs is still current for the manifest.
		if _, err := db.persistRun(newRun, st.runs); err != nil {
			db.setErr(err)
			return false // records stay safe: in the frozen table and its WAL
		}
	}

	db.mu.Lock()
	//lint:allow snapload deliberate re-read at the swap point: db.mu is held, so this load sees the frozen entries added since the first snapshot
	cur := db.state.Load() // frozen may have grown at the front meanwhile
	ns := &dbstate[K, V]{
		frozen: cur.frozen[: len(cur.frozen)-1 : len(cur.frozen)-1],
		runs:   append([]*run[K, V]{newRun}, cur.runs...),
	}
	db.state.Store(ns)
	db.mu.Unlock()

	if m.wal != nil {
		// The segment is committed; the WAL is redundant — but a WAL
		// that refuses deletion is NOT harmless garbage: left behind, a
		// future recovery would replay it into the newest run, where
		// its stale records could shadow anything committed afterwards.
		// A failed removal therefore turns the sticky error on, which
		// (via maintain's gate) freezes the on-disk state so nothing
		// newer can ever land behind the stale log.
		if err := os.Remove(m.wal.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			db.setErr(fmt.Errorf("store: removing flushed WAL: %w", err))
		}
		m.wal = nil
	}
	return true
}

// mergeOne merges the runs of the shallowest over-full level (>= Fanout
// runs) into one run of the next level, returning false when every level
// is within bounds. The merge streams: each victim is iterated in rank
// order through its permuted array (no Export, no heap copy of the
// inputs), a loser tree resolves the k sources newest-first with
// first-hit-wins, and the output segment is written shard by shard as
// the merged stream fills each buffer — so the merge's peak heap is one
// output shard, however large the inputs (see stream.go). A merge that
// consumes the oldest run drops tombstones too — nothing older exists
// for them to shadow. Types the raw codec cannot stream (string keys,
// struct values) and memory-only DBs take the in-memory variant of the
// same merge: identical record resolution, O(output) heap.
//
// Durable mode follows the same swap protocol as flushOne: merged
// segment written first, manifest rewritten without the victims (the
// commit point), state swapped, victims' files deleted last.
func (db *DB[K, V]) mergeOne() bool {
	st := db.state.Load()
	lo, hi, ok := overFullLevel(st.runs, db.cfg.Fanout)
	if !ok {
		return false
	}
	level := st.runs[lo].level
	toLast := hi == len(st.runs) // merge output becomes the oldest run
	victims := st.runs[lo:hi]

	var newRun *run[K, V]
	if db.dir != "" && runStreamable[K, V]() {
		var err error
		if newRun, err = db.mergeStreamed(victims, level+1, toLast); err != nil {
			db.setErr(err)
			return false // victims stay live; merge retries after the error clears
		}
	} else {
		keys, vals := mergeToMemory(victims, toLast)
		if len(keys) > 0 { // all-tombstone merges can compact to nothing
			newRun = &run[K, V]{st: db.buildRun(keys, vals), level: level + 1}
			if db.dir != "" {
				file, err := db.writeSegment(newRun.st)
				if err != nil {
					db.setErr(err)
					return false
				}
				newRun.file = file
			}
		}
	}

	// The post-merge run stack: victims [lo, hi) replaced by the merged
	// run. Only maintain() mutates runs (compact mutex held), so this
	// slice is exact for both the manifest and the snapshot swap.
	nr := make([]*run[K, V], 0, len(st.runs)-(hi-lo)+1)
	nr = append(nr, st.runs[:lo]...)
	if newRun != nil {
		nr = append(nr, newRun)
	}
	nr = append(nr, st.runs[hi:]...)
	if db.dir != "" {
		if err := db.commitManifest(nr); err != nil {
			db.setErr(err)
			if newRun != nil {
				os.Remove(filepath.Join(db.dir, newRun.file)) // orphan: best-effort GC
			}
			return false
		}
	}

	db.mu.Lock()
	//lint:allow snapload deliberate re-read at the swap point: db.mu is held, so this load sees frozen entries added since the merge began
	cur := db.state.Load() // cur.frozen may differ from st.frozen; runs cannot
	db.state.Store(&dbstate[K, V]{frozen: cur.frozen, runs: nr})
	db.mu.Unlock()

	// The manifest no longer names the victims; their files are garbage.
	// Deleting a victim that is still mapped is safe — the mapping keeps
	// its pages alive past the unlink — and the mapping itself is NOT
	// released here: a reader holding the pre-swap snapshot may still be
	// mid-Range over a victim run. The merge retains nothing of the
	// victims (Export copied every record out before the merge), so each
	// victim's mapping dies with its last reader's epoch, via the GC
	// cleanup its open registered.
	for _, victim := range st.runs[lo:hi] {
		if victim.file != "" {
			os.Remove(filepath.Join(db.dir, victim.file))
		}
	}
	return true
}

// errSegEmpty aborts a streamed merge whose every record compacted away
// (an all-tombstone merge into the oldest level): returned from the
// WriteFileAtomic callback, it makes the writer discard the temp file,
// and mergeStreamed maps it to "no output run".
var errSegEmpty = errors.New("store: merge compacted to nothing")

// mergeStreamed is the durable merge path: the k-way streaming merge
// writing its output segment shard by shard inside one atomic file
// write. The whole merge runs in the WriteFileAtomic callback, so a
// crash at any point leaves only a temp file the next Open removes —
// the victims stay live until the manifest commit that follows. On
// success the segment is reopened through the normal segment path
// (mapped in cold-serve mode), so the merged run's records live in the
// page cache, not the heap, and the merge's peak heap stays O(one
// shard) end to end. Returns (nil, nil) when the merge compacts to
// nothing.
func (db *DB[K, V]) mergeStreamed(victims []*run[K, V], level int, dropTombs bool) (*run[K, V], error) {
	upper := 0
	for _, v := range victims {
		upper += v.st.Len()
	}
	cfg := buildConfig(upper, db.runOpts)
	path := segmentPath(db.dir, db.nextSeq.Add(1)-1)
	err := blockio.WriteFileAtomic(path, func(w io.Writer) error {
		sources := make([]*source[K, V], len(victims))
		for i, v := range victims {
			sources[i] = rankSource(v.st) // victims are newest-first already
		}
		sw, err := newSegWriter[K, V](w, cfg, upper)
		if err != nil {
			return err
		}
		ss := newShardStreamer(sw, streamShardPlan(cfg, upper))
		if err := streamCompact(sources, dropTombs, ss.add); err != nil {
			return err
		}
		if err := ss.flush(); err != nil {
			return err
		}
		if sw.Records() == 0 {
			return errSegEmpty
		}
		return sw.Finish()
	})
	if errors.Is(err, errSegEmpty) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: writing merged segment: %w", err)
	}
	file := filepath.Base(path)
	st, err := db.readSegmentFile(file)
	if err != nil {
		os.Remove(path) // unreadable before it was ever live: GC, best-effort
		return nil, fmt.Errorf("store: reopening merged segment: %w", err)
	}
	return &run[K, V]{st: st, level: level, file: file}, nil
}

// mergeToMemory runs the same streaming merge with an in-memory sink:
// the fallback for memory-only DBs and for types the raw codec cannot
// stream. Record resolution is identical to mergeStreamed — one code
// path decides what survives a compaction (see streamCompact).
func mergeToMemory[K cmp.Ordered, V any](victims []*run[K, V], dropTombs bool) ([]K, []mval[V]) {
	upper := 0
	for _, v := range victims {
		upper += v.st.Len()
	}
	sources := make([]*source[K, V], len(victims))
	for i, v := range victims {
		sources[i] = rankSource(v.st)
	}
	keys := make([]K, 0, upper)
	vals := make([]mval[V], 0, upper)
	streamCompact(sources, dropTombs, func(k K, mv mval[V]) error {
		keys = append(keys, k)
		vals = append(vals, mv)
		return nil
	})
	return keys, vals
}

// overFullLevel returns the bounds [lo, hi) of the runs of the
// shallowest level holding at least fanout runs. Runs are newest-first
// and level-ascending, so each level is one contiguous band.
func overFullLevel[K cmp.Ordered, V any](runs []*run[K, V], fanout int) (lo, hi int, ok bool) {
	for i := 0; i < len(runs); {
		j := i
		for j < len(runs) && runs[j].level == runs[i].level {
			j++
		}
		if j-i >= fanout {
			return i, j, true
		}
		i = j
	}
	return 0, 0, false
}

// buildRun runs the static build pipeline over sorted unique records and
// returns the servable Store. The inputs come from a frozen memtable or
// a compaction merge, so a build error is impossible by construction —
// mirroring Export, an error here panics rather than propagating an
// error path no caller could hit.
func (db *DB[K, V]) buildRun(keys []K, vals []mval[V]) *Store[K, mval[V]] {
	st, err := Build(keys, vals, db.runOpts...)
	if err != nil {
		panic("store: run build failed: " + err.Error())
	}
	// Attach the run's key filter (fences and maxKey fall out of the
	// build; the bloom must be made). The input keys are already unique
	// — memtables and merges both dedupe — so the filter is sized
	// exactly. The v2.1 segment codec persists it with the run.
	st.bloom = runBloom(keys)
	return st
}

// persistRun publishes newRun as the newest run: segment file written,
// then the manifest rewritten to name [newRun] + rest — the commit
// point shared by background flushes (flushOne) and recovery flushes
// (flushRecovered). On manifest failure the orphan segment is removed;
// newRun.file is set on success. The returned slice is the committed
// run stack.
func (db *DB[K, V]) persistRun(newRun *run[K, V], rest []*run[K, V]) ([]*run[K, V], error) {
	file, err := db.writeSegment(newRun.st)
	if err != nil {
		return nil, err
	}
	newRun.file = file
	nr := append([]*run[K, V]{newRun}, rest...)
	if err := db.commitManifest(nr); err != nil {
		os.Remove(filepath.Join(db.dir, file)) // orphan: best-effort GC
		return nil, err
	}
	return nr, nil
}

// writeSegment persists one run's Store as a new segment file — written
// to a temp file, fsynced, renamed into place, directory fsynced — and
// returns its base name. The file is not live until a manifest names it.
func (db *DB[K, V]) writeSegment(st *Store[K, mval[V]]) (string, error) {
	path := segmentPath(db.dir, db.nextSeq.Add(1)-1)
	err := blockio.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := writeRunStream(w, st)
		return err
	})
	if err != nil {
		return "", fmt.Errorf("store: writing segment: %w", err)
	}
	return filepath.Base(path), nil
}

// readSegmentFile reopens one segment as a servable run Store: mapped
// zero-copy in cold-serve mode (DBConfig.Mmap), heap-decoded otherwise.
func (db *DB[K, V]) readSegmentFile(name string) (*Store[K, mval[V]], error) {
	return openSegFile[K, mval[V]](filepath.Join(db.dir, name), runCodec[V]{},
		[]Option{WithWorkers(db.workers), WithMmap(db.cfg.Mmap)})
}

// commitManifest atomically rewrites the manifest to name exactly the
// given run stack — the commit point of every flush and merge.
func (db *DB[K, V]) commitManifest(runs []*run[K, V]) error {
	m := manifest{Segments: make([]manifestSeg, len(runs))}
	for i, r := range runs {
		m.Segments[i] = manifestSeg{File: r.file, Level: r.level}
	}
	return writeManifest(db.dir, m)
}
