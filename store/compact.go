package store

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/par"
)

// maintain drains all pending background work: flush every frozen
// memtable to a level-0 run, then merge levels until each holds fewer
// than Fanout runs. It is the drain function of the DB's par.Worker and
// is also called synchronously by Flush and Close; the compact mutex
// serializes the callers, so run-stack surgery has exactly one writer.
// Writers are never blocked — each step does its expensive work (build,
// export, merge, segment write) against immutable inputs and only takes
// db.mu for the final snapshot swap.
func (db *DB[K, V]) maintain() {
	db.compact.Lock()
	defer db.compact.Unlock()
	for {
		if db.dir != "" && db.err() != nil {
			// After the first durability failure the DB stops changing
			// its on-disk state: no further segment may commit, because
			// committing newer data while e.g. an obsolete WAL refused
			// deletion could let that stale log shadow the newer
			// segment at the next recovery. Frozen tables keep serving
			// from memory, their sealed WALs keep their records safe.
			return
		}
		if db.flushOne() {
			continue
		}
		if db.mergeOne() {
			continue
		}
		return
	}
}

// flushOne builds the oldest frozen memtable into a level-0 run and
// swaps it out of the frozen list, returning false when there is nothing
// to flush. The frozen table's sorted view has unique keys, so the
// build pipeline's sort stage sees already-ordered input and the real
// cost is the parallel layout permutation — the paper's construction
// primitive is the flush path.
//
// In durable mode the run is published by the manifest swap protocol:
// segment file written and fsynced first, manifest rewritten to name it
// (the commit point), in-memory state swapped, and only then is the
// flushed memtable's now-redundant WAL deleted. A crash anywhere in the
// sequence loses nothing: before the commit point the WAL still carries
// the records (the orphan segment is garbage-collected at the next
// Open); after it, the segment does (a surviving WAL replays into
// records that the newer recovery run shadows harmlessly).
func (db *DB[K, V]) flushOne() bool {
	st := db.state.Load()
	if len(st.frozen) == 0 {
		return false
	}
	m := st.frozen[len(st.frozen)-1] // oldest: flush order preserves run recency
	keys, vals := unzipRecs(m.sortedRecs())
	newRun := &run[K, V]{st: db.buildRun(keys, vals), level: 0}

	if db.dir != "" {
		// Only maintain() mutates runs and we hold the compact mutex, so
		// st.runs is still current for the manifest.
		if _, err := db.persistRun(newRun, st.runs); err != nil {
			db.setErr(err)
			return false // records stay safe: in the frozen table and its WAL
		}
	}

	db.mu.Lock()
	//lint:allow snapload deliberate re-read at the swap point: db.mu is held, so this load sees the frozen entries added since the first snapshot
	cur := db.state.Load() // frozen may have grown at the front meanwhile
	ns := &dbstate[K, V]{
		frozen: cur.frozen[: len(cur.frozen)-1 : len(cur.frozen)-1],
		runs:   append([]*run[K, V]{newRun}, cur.runs...),
	}
	db.state.Store(ns)
	db.mu.Unlock()

	if m.wal != nil {
		// The segment is committed; the WAL is redundant — but a WAL
		// that refuses deletion is NOT harmless garbage: left behind, a
		// future recovery would replay it into the newest run, where
		// its stale records could shadow anything committed afterwards.
		// A failed removal therefore turns the sticky error on, which
		// (via maintain's gate) freezes the on-disk state so nothing
		// newer can ever land behind the stale log.
		if err := os.Remove(m.wal.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			db.setErr(fmt.Errorf("store: removing flushed WAL: %w", err))
		}
		m.wal = nil
	}
	return true
}

// mergeOne merges the runs of the shallowest over-full level (>= Fanout
// runs) into one run of the next level, returning false when every level
// is within bounds. The merge exports each run back to sorted records
// (parallel unpermute), reduces them newest-to-oldest with the build
// pipeline's parallel pair merge, resolves shadowed versions
// first-hit-wins, and builds the result into a fresh sharded layout. A
// merge that consumes the oldest run drops tombstones too — nothing
// older exists for them to shadow.
//
// Durable mode follows the same swap protocol as flushOne: merged
// segment written first, manifest rewritten without the victims (the
// commit point), state swapped, victims' files deleted last.
func (db *DB[K, V]) mergeOne() bool {
	st := db.state.Load()
	lo, hi, ok := overFullLevel(st.runs, db.cfg.Fanout)
	if !ok {
		return false
	}
	level := st.runs[lo].level
	toLast := hi == len(st.runs) // merge output becomes the oldest run

	// Export every victim concurrently (each export is itself a parallel
	// unpermute over the run's shards), newest first.
	r := par.New(db.workers)
	exported := make([][]mrec[K, V], hi-lo)
	r.Tasks(hi-lo, func(i int, _ par.Runner) {
		keys, vals := st.runs[lo+i].st.Export()
		exported[i] = zipRecs(keys, vals)
	})

	// Reduce newest-to-oldest with the parallel pair merge; keeping the
	// newer run on the left makes parallelMerge's left-wins-ties rule
	// put the newest version of every key first, which is exactly what
	// compactRecs' first-hit-wins pass needs.
	merged := exported[0]
	for _, older := range exported[1:] {
		dst := make([]mrec[K, V], len(merged)+len(older))
		parallelMerge(r, dst, merged, older, func(a, b mrec[K, V]) bool {
			return a.key < b.key
		})
		merged = dst
	}
	merged = compactRecs(merged, toLast)

	var newRun *run[K, V]
	if len(merged) > 0 { // all-tombstone merges can compact to nothing
		keys, vals := unzipRecs(merged)
		newRun = &run[K, V]{st: db.buildRun(keys, vals), level: level + 1}
	}

	// The post-merge run stack: victims [lo, hi) replaced by the merged
	// run. Only maintain() mutates runs (compact mutex held), so this
	// slice is exact for both the manifest and the snapshot swap.
	nr := make([]*run[K, V], 0, len(st.runs)-(hi-lo)+1)
	nr = append(nr, st.runs[:lo]...)
	if newRun != nil {
		if db.dir != "" {
			file, err := db.writeSegment(newRun.st)
			if err != nil {
				db.setErr(err)
				return false // victims stay live; merge retries after the error clears
			}
			newRun.file = file
		}
		nr = append(nr, newRun)
	}
	nr = append(nr, st.runs[hi:]...)
	if db.dir != "" {
		if err := db.commitManifest(nr); err != nil {
			db.setErr(err)
			if newRun != nil {
				os.Remove(filepath.Join(db.dir, newRun.file)) // orphan: best-effort GC
			}
			return false
		}
	}

	db.mu.Lock()
	//lint:allow snapload deliberate re-read at the swap point: db.mu is held, so this load sees frozen entries added since the merge began
	cur := db.state.Load() // cur.frozen may differ from st.frozen; runs cannot
	db.state.Store(&dbstate[K, V]{frozen: cur.frozen, runs: nr})
	db.mu.Unlock()

	// The manifest no longer names the victims; their files are garbage.
	// Deleting a victim that is still mapped is safe — the mapping keeps
	// its pages alive past the unlink — and the mapping itself is NOT
	// released here: a reader holding the pre-swap snapshot may still be
	// mid-Range over a victim run. The merge retains nothing of the
	// victims (Export copied every record out before the merge), so each
	// victim's mapping dies with its last reader's epoch, via the GC
	// cleanup its open registered.
	for _, victim := range st.runs[lo:hi] {
		if victim.file != "" {
			os.Remove(filepath.Join(db.dir, victim.file))
		}
	}
	return true
}

// overFullLevel returns the bounds [lo, hi) of the runs of the
// shallowest level holding at least fanout runs. Runs are newest-first
// and level-ascending, so each level is one contiguous band.
func overFullLevel[K cmp.Ordered, V any](runs []*run[K, V], fanout int) (lo, hi int, ok bool) {
	for i := 0; i < len(runs); {
		j := i
		for j < len(runs) && runs[j].level == runs[i].level {
			j++
		}
		if j-i >= fanout {
			return i, j, true
		}
		i = j
	}
	return 0, 0, false
}

// buildRun runs the static build pipeline over sorted unique records and
// returns the servable Store. The inputs come from a frozen memtable or
// a compaction merge, so a build error is impossible by construction —
// mirroring Export, an error here panics rather than propagating an
// error path no caller could hit.
func (db *DB[K, V]) buildRun(keys []K, vals []mval[V]) *Store[K, mval[V]] {
	st, err := Build(keys, vals, db.runOpts...)
	if err != nil {
		panic("store: run build failed: " + err.Error())
	}
	return st
}

// persistRun publishes newRun as the newest run: segment file written,
// then the manifest rewritten to name [newRun] + rest — the commit
// point shared by background flushes (flushOne) and recovery flushes
// (flushRecovered). On manifest failure the orphan segment is removed;
// newRun.file is set on success. The returned slice is the committed
// run stack.
func (db *DB[K, V]) persistRun(newRun *run[K, V], rest []*run[K, V]) ([]*run[K, V], error) {
	file, err := db.writeSegment(newRun.st)
	if err != nil {
		return nil, err
	}
	newRun.file = file
	nr := append([]*run[K, V]{newRun}, rest...)
	if err := db.commitManifest(nr); err != nil {
		os.Remove(filepath.Join(db.dir, file)) // orphan: best-effort GC
		return nil, err
	}
	return nr, nil
}

// writeSegment persists one run's Store as a new segment file — written
// to a temp file, fsynced, renamed into place, directory fsynced — and
// returns its base name. The file is not live until a manifest names it.
func (db *DB[K, V]) writeSegment(st *Store[K, mval[V]]) (string, error) {
	path := segmentPath(db.dir, db.nextSeq.Add(1)-1)
	err := blockio.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := writeRunStream(w, st)
		return err
	})
	if err != nil {
		return "", fmt.Errorf("store: writing segment: %w", err)
	}
	return filepath.Base(path), nil
}

// readSegmentFile reopens one segment as a servable run Store: mapped
// zero-copy in cold-serve mode (DBConfig.Mmap), heap-decoded otherwise.
func (db *DB[K, V]) readSegmentFile(name string) (*Store[K, mval[V]], error) {
	return openSegFile[K, mval[V]](filepath.Join(db.dir, name), runCodec[V]{},
		[]Option{WithWorkers(db.workers), WithMmap(db.cfg.Mmap)})
}

// commitManifest atomically rewrites the manifest to name exactly the
// given run stack — the commit point of every flush and merge.
func (db *DB[K, V]) commitManifest(runs []*run[K, V]) error {
	m := manifest{Segments: make([]manifestSeg, len(runs))}
	for i, r := range runs {
		m.Segments[i] = manifestSeg{File: r.file, Level: r.level}
	}
	return writeManifest(db.dir, m)
}
