package store

import (
	"cmp"

	"implicitlayout/internal/par"
)

// maintain drains all pending background work: flush every frozen
// memtable to a level-0 run, then merge levels until each holds fewer
// than Fanout runs. It is the drain function of the DB's par.Worker and
// is also called synchronously by Flush; the compact mutex serializes
// the two, so run-stack surgery has exactly one writer. Writers are
// never blocked — each step does its expensive work (build, export,
// merge) against immutable inputs and only takes db.mu for the final
// snapshot swap.
func (db *DB[K, V]) maintain() {
	db.compact.Lock()
	defer db.compact.Unlock()
	for {
		if db.flushOne() {
			continue
		}
		if db.mergeOne() {
			continue
		}
		return
	}
}

// flushOne builds the oldest frozen memtable into a level-0 run and
// swaps it out of the frozen list, returning false when there is nothing
// to flush. The frozen table's sorted view has unique keys, so the
// build pipeline's sort stage sees already-ordered input and the real
// cost is the parallel layout permutation — the paper's construction
// primitive is the flush path.
func (db *DB[K, V]) flushOne() bool {
	st := db.state.Load()
	if len(st.frozen) == 0 {
		return false
	}
	m := st.frozen[len(st.frozen)-1] // oldest: flush order preserves run recency
	recs := m.sortedRecs()
	keys := make([]K, len(recs))
	vals := make([]mval[V], len(recs))
	for i, r := range recs {
		keys[i], vals[i] = r.key, r.mv
	}
	newRun := &run[K, V]{st: db.buildRun(keys, vals), level: 0}

	db.mu.Lock()
	cur := db.state.Load() // frozen may have grown at the front meanwhile
	ns := &dbstate[K, V]{
		frozen: cur.frozen[: len(cur.frozen)-1 : len(cur.frozen)-1],
		runs:   append([]*run[K, V]{newRun}, cur.runs...),
	}
	db.state.Store(ns)
	db.mu.Unlock()
	return true
}

// mergeOne merges the runs of the shallowest over-full level (>= Fanout
// runs) into one run of the next level, returning false when every level
// is within bounds. The merge exports each run back to sorted records
// (parallel unpermute), reduces them newest-to-oldest with the build
// pipeline's parallel pair merge, resolves shadowed versions
// first-hit-wins, and builds the result into a fresh sharded layout. A
// merge that consumes the oldest run drops tombstones too — nothing
// older exists for them to shadow.
func (db *DB[K, V]) mergeOne() bool {
	st := db.state.Load()
	lo, hi, ok := overFullLevel(st.runs, db.cfg.Fanout)
	if !ok {
		return false
	}
	level := st.runs[lo].level
	toLast := hi == len(st.runs) // merge output becomes the oldest run

	// Export every victim concurrently (each export is itself a parallel
	// unpermute over the run's shards), newest first.
	r := par.New(db.workers)
	exported := make([][]mrec[K, V], hi-lo)
	r.Tasks(hi-lo, func(i int, _ par.Runner) {
		keys, vals := st.runs[lo+i].st.Export()
		exported[i] = zipRecs(keys, vals)
	})

	// Reduce newest-to-oldest with the parallel pair merge; keeping the
	// newer run on the left makes parallelMerge's left-wins-ties rule
	// put the newest version of every key first, which is exactly what
	// compactRecs' first-hit-wins pass needs.
	merged := exported[0]
	for _, older := range exported[1:] {
		dst := make([]mrec[K, V], len(merged)+len(older))
		parallelMerge(r, dst, merged, older, func(a, b mrec[K, V]) bool {
			return a.key < b.key
		})
		merged = dst
	}
	merged = compactRecs(merged, toLast)

	var newRun *run[K, V]
	if len(merged) > 0 { // all-tombstone merges can compact to nothing
		keys := make([]K, len(merged))
		vals := make([]mval[V], len(merged))
		for i, rec := range merged {
			keys[i], vals[i] = rec.key, rec.mv
		}
		newRun = &run[K, V]{st: db.buildRun(keys, vals), level: level + 1}
	}

	db.mu.Lock()
	cur := db.state.Load()
	// Only maintain() mutates runs and we hold the compact mutex, so the
	// victims still occupy [lo, hi) — but cur.frozen may differ from
	// st.frozen, so rebuild the state from cur.
	nr := make([]*run[K, V], 0, len(cur.runs)-(hi-lo)+1)
	nr = append(nr, cur.runs[:lo]...)
	if newRun != nil {
		nr = append(nr, newRun)
	}
	nr = append(nr, cur.runs[hi:]...)
	db.state.Store(&dbstate[K, V]{frozen: cur.frozen, runs: nr})
	db.mu.Unlock()
	return true
}

// overFullLevel returns the bounds [lo, hi) of the runs of the
// shallowest level holding at least fanout runs. Runs are newest-first
// and level-ascending, so each level is one contiguous band.
func overFullLevel[K cmp.Ordered, V any](runs []*run[K, V], fanout int) (lo, hi int, ok bool) {
	for i := 0; i < len(runs); {
		j := i
		for j < len(runs) && runs[j].level == runs[i].level {
			j++
		}
		if j-i >= fanout {
			return i, j, true
		}
		i = j
	}
	return 0, 0, false
}

// buildRun runs the static build pipeline over sorted unique records and
// returns the servable Store. The inputs come from a frozen memtable or
// a compaction merge, so a build error is impossible by construction —
// mirroring Export, an error here panics rather than propagating an
// error path no caller could hit.
func (db *DB[K, V]) buildRun(keys []K, vals []mval[V]) *Store[K, mval[V]] {
	st, err := Build(keys, vals, db.runOpts...)
	if err != nil {
		panic("store: run build failed: " + err.Error())
	}
	return st
}
