package store_test

import (
	"fmt"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// Example builds a sharded vEB key–value store from unsorted records,
// serves point, batch, predecessor, and range queries, and exports the
// sorted snapshot.
func Example() {
	keys := []uint64{31, 3, 27, 11, 23, 7, 19, 1, 15, 5, 29, 9, 25, 13, 21, 17}
	vals := make([]string, len(keys))
	for i, k := range keys {
		vals[i] = fmt.Sprint("rec", k)
	}
	st, err := store.Build(keys, vals, store.WithShards(4), store.WithLayout(layout.VEB))
	if err != nil {
		panic(err)
	}

	fmt.Println("shards:", st.Shards(), "fences:", st.Fences())
	v, ok := st.Get(15)
	fmt.Printf("Get(15): %q %v  ", v, ok)
	_, ok = st.Get(16)
	fmt.Println("Get(16) ok:", ok)

	if key, val, ok := st.Predecessor(16); ok {
		fmt.Printf("Predecessor(16): %d %q\n", key, val)
	}

	res := st.GetBatch([]uint64{1, 2, 15, 31, 99}, 2)
	fmt.Printf("batch: %d/%d hits, Vals[0]=%q\n", res.Hits, res.Queries, res.Vals[0])

	st.Range(5, 11, func(key uint64, val string) bool {
		fmt.Printf("range hit %d=%q\n", key, val)
		return true
	})

	sortedKeys, sortedVals := st.Export()
	fmt.Println("export:", sortedKeys[:3], sortedVals[:3], "...")
	// Output:
	// shards: 4 fences: [1 9 17 25]
	// Get(15): "rec15" true  Get(16) ok: false
	// Predecessor(16): 15 "rec15"
	// batch: 3/5 hits, Vals[0]="rec1"
	// range hit 5="rec5"
	// range hit 7="rec7"
	// range hit 9="rec9"
	// range hit 11="rec11"
	// export: [1 3 5] [rec1 rec3 rec5] ...
}
