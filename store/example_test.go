package store_test

import (
	"fmt"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// Example builds a sharded vEB store from unsorted keys, serves point,
// batch, and predecessor queries, and exports the sorted snapshot.
func Example() {
	keys := []uint64{31, 3, 27, 11, 23, 7, 19, 1, 15, 5, 29, 9, 25, 13, 21, 17}
	st, err := store.Build(keys, store.WithShards(4), store.WithLayout(layout.VEB))
	if err != nil {
		panic(err)
	}

	fmt.Println("shards:", st.Shards(), "fences:", st.Fences())
	fmt.Println("Contains(15):", st.Contains(15), " Contains(16):", st.Contains(16))

	if key, _, ok := st.Predecessor(16); ok {
		fmt.Println("Predecessor(16):", key)
	}

	stats := st.GetBatch([]uint64{1, 2, 15, 31, 99}, 2)
	fmt.Printf("batch: %d/%d hits\n", stats.Hits, stats.Queries)

	fmt.Println("export:", st.Export()[:4], "...")
	// Output:
	// shards: 4 fences: [1 9 17 25]
	// Contains(15): true  Contains(16): false
	// Predecessor(16): 15
	// batch: 3/5 hits
	// export: [1 3 5 7] ...
}
