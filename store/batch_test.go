package store_test

import (
	"math/rand"
	"testing"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// TestGetBatchGroupedMatchesGet: the regrouped batch path (large chunks,
// one interleaved ring per shard slice) returns exactly what per-query
// Get returns, in query order, for every layout — and the stats books
// balance: Queries == sum of shard queries + Unrouted.
func TestGetBatchGroupedMatchesGet(t *testing.T) {
	const n = 1 << 12
	keys, vals := buildKV(n, 31)
	rng := rand.New(rand.NewSource(13))
	queries := make([]uint64, 4*n+3)
	for i := range queries {
		// Odd values hit, even miss inside the key range; 0 routes to no
		// shard on stores whose smallest key exceeds it.
		queries[i] = uint64(rng.Intn(2*n + 4))
	}
	for _, kind := range allKinds {
		st, err := store.Build(keys, vals,
			store.WithLayout(kind), store.WithShards(8), store.WithWorkers(4))
		if err != nil {
			t.Fatalf("%v: Build: %v", kind, err)
		}
		for _, p := range []int{1, 4} {
			res := st.GetBatch(queries, p)
			if res.Queries != len(queries) {
				t.Fatalf("%v p=%d: Queries = %d, want %d", kind, p, res.Queries, len(queries))
			}
			hits := 0
			for i, q := range queries {
				wantVal, wantOK := st.Get(q)
				if res.Found[i] != wantOK || res.Vals[i] != wantVal {
					t.Fatalf("%v p=%d: query %d got (%q, %v), Get gives (%q, %v)",
						kind, p, q, res.Vals[i], res.Found[i], wantVal, wantOK)
				}
				if wantOK {
					hits++
				}
			}
			if res.Hits != hits {
				t.Fatalf("%v p=%d: Hits = %d, want %d", kind, p, res.Hits, hits)
			}
			routed, shardHits := 0, 0
			for _, sh := range res.Shards {
				routed += sh.Queries
				shardHits += sh.Hits
			}
			if routed+res.Unrouted != res.Queries {
				t.Fatalf("%v p=%d: %d routed + %d unrouted != %d queries",
					kind, p, routed, res.Unrouted, res.Queries)
			}
			if shardHits != res.Hits {
				t.Fatalf("%v p=%d: shard hits sum %d != Hits %d", kind, p, shardHits, res.Hits)
			}
		}
	}
}

// TestGetBatchUnrouted: queries below every fence land in no shard; they
// must be counted, not silently dropped, on both the query-by-query and
// the regrouped path.
func TestGetBatchUnrouted(t *testing.T) {
	// Keys 101, 103, ... — everything below 101 routes nowhere.
	keys := make([]uint64, 256)
	vals := make([]string, len(keys))
	for i := range keys {
		keys[i] = uint64(101 + 2*i)
		vals[i] = valOf(keys[i])
	}
	st, err := store.Build(keys, vals, store.WithLayout(layout.BTree), store.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	small := []uint64{1, 50, 101, 103, 100} // 3 unrouted, 2 hits; below batchGroupMin
	large := make([]uint64, 0, 300)
	wantUnrouted, wantHits := 0, 0
	for i := 0; i < 300; i++ {
		q := uint64(i)
		large = append(large, q)
		if q < 101 {
			wantUnrouted++
		} else if q%2 == 1 && q <= keys[len(keys)-1] {
			wantHits++
		}
	}
	if res := st.GetBatch(small, 1); res.Unrouted != 3 || res.Hits != 2 {
		t.Fatalf("small batch: Unrouted = %d, Hits = %d; want 3, 2", res.Unrouted, res.Hits)
	}
	for _, p := range []int{1, 3} {
		res := st.GetBatch(large, p)
		if res.Unrouted != wantUnrouted || res.Hits != wantHits {
			t.Fatalf("p=%d: Unrouted = %d, Hits = %d; want %d, %d",
				p, res.Unrouted, res.Hits, wantUnrouted, wantHits)
		}
		routed := 0
		for _, sh := range res.Shards {
			routed += sh.Queries
		}
		if routed+res.Unrouted != res.Queries {
			t.Fatalf("p=%d: %d routed + %d unrouted != %d queries", p, routed, res.Unrouted, res.Queries)
		}
	}
}

// TestDBGetBatch: batched DB lookups agree with Get across every tier a
// version can live in — active memtable, frozen memtables, and a stack
// of runs with overwrites and tombstones needing newest-first
// resolution.
func TestDBGetBatch(t *testing.T) {
	db, err := store.NewDB[uint64, string](store.DBConfig{MemLimit: 64, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const span = 1 << 10
	rng := rand.New(rand.NewSource(17))
	live := make(map[uint64]string)
	for i := 0; i < 6*span; i++ {
		k := uint64(rng.Intn(span))
		if rng.Intn(4) == 0 {
			db.Delete(k)
			delete(live, k)
		} else {
			v := valOf(k + uint64(i)<<16)
			db.Put(k, v)
			live[k] = v
		}
		if i%1500 == 0 {
			db.Flush() // push versions into runs mid-stream
		}
	}
	queries := make([]uint64, 3*span)
	for i := range queries {
		queries[i] = uint64(rng.Intn(span + span/4)) // some never written
	}
	for _, p := range []int{1, 4} {
		vals, found := db.GetBatch(queries, p)
		if len(vals) != len(queries) || len(found) != len(queries) {
			t.Fatalf("p=%d: result lengths %d/%d, want %d", p, len(vals), len(found), len(queries))
		}
		for i, q := range queries {
			wantVal, wantOK := db.Get(q)
			if found[i] != wantOK || vals[i] != wantVal {
				t.Fatalf("p=%d: query %d got (%q, %v), Get gives (%q, %v)",
					p, q, vals[i], found[i], wantVal, wantOK)
			}
			if mapVal, mapOK := live[q]; found[i] != mapOK || (mapOK && vals[i] != mapVal) {
				t.Fatalf("p=%d: query %d got (%q, %v), model says (%q, %v)",
					p, q, vals[i], found[i], mapVal, mapOK)
			}
		}
	}
	if vals, found := db.GetBatch(nil, 2); len(vals) != 0 || len(found) != 0 {
		t.Fatal("empty batch returned non-empty results")
	}
}
