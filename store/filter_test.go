package store

import (
	"fmt"
	"math"
	"testing"
)

// TestKeyHashDeterministicAcrossKinds pins the property the persisted
// bloom filters depend on: a named type must hash exactly like its
// underlying primitive (the reflection fallback and the type switch
// must agree), because a filter built in one process is consulted in
// another after a segment round trip.
func TestKeyHashDeterministicAcrossKinds(t *testing.T) {
	type myInt int64
	type myUint uint32
	type myFloat float64
	type myString string
	if keyHash(myInt(-42)) != keyHash(int64(-42)) {
		t.Error("named int64 hashes differently from int64")
	}
	if keyHash(myUint(42)) != keyHash(uint64(42)) {
		t.Error("named uint32 hashes differently from its widened value")
	}
	if keyHash(myFloat(3.5)) != keyHash(float64(3.5)) {
		t.Error("named float64 hashes differently from float64")
	}
	if keyHash(myString("abc")) != keyHash("abc") {
		t.Error("named string hashes differently from string")
	}
	// Signed values widen through uint64 conversion in both paths.
	if keyHash(int8(-1)) != keyHash(int64(-1)) {
		t.Error("int8(-1) and int64(-1) disagree")
	}
}

// TestKeyHashNegativeZero: -0.0 == +0.0 as keys, so they must hash
// identically or a filter could split one logical key across two bit
// patterns.
func TestKeyHashNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if keyHash(negZero) != keyHash(0.0) {
		t.Error("float64 -0 and +0 hash differently")
	}
	if keyHash(float32(math.Copysign(0, -1))) != keyHash(float32(0)) {
		t.Error("float32 -0 and +0 hash differently")
	}
	type myF float64
	if keyHash(myF(negZero)) != keyHash(myF(0)) {
		t.Error("named float -0 and +0 hash differently")
	}
}

// TestKeyHashStableValues pins a few hash outputs so an accidental
// change to the mixing constants — which would orphan every persisted
// filter — fails loudly instead of silently degrading to 100% false
// positives on reopened segments.
func TestKeyHashStableValues(t *testing.T) {
	if got, want := keyHash(uint64(0)), mix64(0); got != want {
		t.Errorf("keyHash(0) = %#x, want mix64(0) = %#x", got, want)
	}
	if got := keyHash(uint64(1)); got != 0xB456BCFC34C2CB2C {
		t.Errorf("keyHash(uint64(1)) = %#x changed; persisted filters depend on this value", got)
	}
	if got := keyHash(""); got != 0xEFD01F60BA992926 {
		t.Errorf("keyHash(\"\") = %#x changed; persisted filters depend on this value", got)
	}
}

// TestDBReadAmp exercises the read path's filter gate end to end: a DB
// with several disjoint-range runs must answer out-of-range lookups
// with fence skips, absent in-range lookups mostly with bloom skips,
// and present keys by probing — with the three counters accounting for
// every (lookup, run) pair.
func TestDBReadAmp(t *testing.T) {
	db, err := NewDB[uint64, uint64](DBConfig{MemLimit: 100, Fanout: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Three runs with disjoint key ranges, even keys only — so every
	// odd key is an in-range miss the fences cannot disprove.
	const runSize = 1000
	for r := 0; r < 3; r++ {
		for i := 0; i < runSize; i++ {
			if err := db.Put(uint64(2*(r*runSize+i)), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Stats().Runs(); got < 3 {
		t.Fatalf("expected >= 3 runs, got %d", got)
	}
	runs := db.Stats().Runs()

	// Out-of-range misses: every run's fences disprove them.
	for i := 0; i < 100; i++ {
		if _, ok := db.Get(uint64(1_000_000 + i)); ok {
			t.Fatal("phantom hit")
		}
	}
	st := db.Stats()
	if st.RunsSkippedFence != uint64(100*runs) {
		t.Errorf("out-of-range misses: fence skips = %d, want %d", st.RunsSkippedFence, 100*runs)
	}
	if st.RunsProbed != 0 || st.RunsSkippedBloom != 0 {
		t.Errorf("out-of-range misses probed %d runs, bloom-skipped %d; want 0", st.RunsProbed, st.RunsSkippedBloom)
	}

	// Present keys: each run's keys pass its own filter (no false
	// negatives ever), and the walk stops at the first hit — key k in
	// run r is preceded by the newer runs, each of which may skip it.
	for i := 0; i < 100; i++ {
		k := uint64(2 * (i * 29 % (3 * runSize)))
		if _, ok := db.Get(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
	st2 := db.Stats()
	if st2.RunsProbed < 100 {
		t.Errorf("present keys probed %d runs, want >= 100 (one hit each)", st2.RunsProbed)
	}

	// In-range misses: the fences cannot help (the key interval is
	// covered), so skipping is the bloom filter's job. With ~10
	// bits/key the expected false-positive rate is 1-2%; even 100× that
	// would pass this loose bound — what cannot happen is the filter
	// doing nothing.
	const misses = 2000
	before := db.Stats()
	for i := 0; i < misses; i++ {
		// Odd keys: interleaved between stored ones — in range, never
		// stored.
		if _, ok := db.Get(uint64(2*i + 1)); ok {
			t.Fatal("phantom hit")
		}
	}
	after := db.Stats()
	probed := after.RunsProbed - before.RunsProbed
	skipped := after.RunsSkippedBloom - before.RunsSkippedBloom
	fenced := after.RunsSkippedFence - before.RunsSkippedFence
	if probed+skipped+fenced != uint64(misses*runs) {
		t.Errorf("counters do not account for every (lookup, run) pair: %d+%d+%d != %d",
			probed, skipped, fenced, misses*runs)
	}
	// Cross-check the observed false-positive rate against the filter's
	// design point (1-2%): in-range misses that were neither fenced nor
	// bloom-skipped are exactly the bloom false positives.
	if denom := probed + skipped; denom > 0 {
		if fpr := float64(probed) / float64(denom); fpr > 0.10 {
			t.Errorf("bloom false-positive rate %.3f over the 10%% cross-check bound", fpr)
		}
	}

	// GetBatch must advance the same counters by the same accounting.
	b0 := db.Stats()
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(1_000_000 + i) // above every run's max key
	}
	_, found := db.GetBatch(keys, 2)
	for i, f := range found {
		if f {
			t.Fatalf("GetBatch phantom hit at %d", i)
		}
	}
	b1 := db.Stats()
	dFence := b1.RunsSkippedFence - b0.RunsSkippedFence
	if dFence != uint64(len(keys)*runs) {
		t.Errorf("GetBatch out-of-range misses: fence skips = %d, want %d", dFence, len(keys)*runs)
	}
}

// TestDBGetBatchFilteredCorrectness drives GetBatch through the filter
// gate with a mix of hits, misses, and tombstones across multiple runs
// and checks every answer against Get — the filters must change cost,
// never answers.
func TestDBGetBatchFilteredCorrectness(t *testing.T) {
	db, err := NewDB[uint64, uint64](DBConfig{MemLimit: 50, Fanout: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for r := 0; r < 4; r++ {
		for i := 0; i < 200; i++ {
			k := uint64(r*100 + i) // overlapping ranges across runs
			if k%13 == 0 {
				err = db.Delete(k)
			} else {
				err = db.Put(k, k*10+uint64(r))
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]uint64, 0, 800)
	for k := uint64(0); k < 800; k++ {
		keys = append(keys, k)
	}
	vals, found := db.GetBatch(keys, 2)
	for i, k := range keys {
		wantV, wantOK := db.Get(k)
		if found[i] != wantOK || (wantOK && vals[i] != wantV) {
			t.Fatalf("GetBatch(%d) = (%d, %v), Get = (%d, %v)", k, vals[i], found[i], wantV, wantOK)
		}
	}
}

// TestFilterSurvivesReopen checks the durable half of the filter story:
// after Close and a cold-serve (mmap) reopen, the restored filters keep
// producing skips — the v2.1 segment round trip carries the bloom
// bits, and fences are recovered from the permuted arrays by rank
// arithmetic.
func TestFilterSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	open := func(mmapped bool) *DB[uint64, uint64] {
		db, err := Open[uint64, uint64](dir, DBConfig{MemLimit: 100, Fanout: 100, Mmap: mmapped})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open(false)
	// Even keys only, so odd keys are in-range misses for the blooms.
	for r := 0; r < 3; r++ {
		for i := 0; i < 500; i++ {
			if err := db.Put(uint64(2*(r*500+i)), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, mmapped := range []bool{false, true} {
		t.Run(fmt.Sprintf("mmap=%v", mmapped), func(t *testing.T) {
			db := open(mmapped)
			defer db.Close()
			runs := db.Stats().Runs()
			if runs < 3 {
				t.Fatalf("reopened with %d runs, want >= 3", runs)
			}
			for i := 0; i < 100; i++ {
				if _, ok := db.Get(uint64(100_000 + i)); ok {
					t.Fatal("phantom hit after reopen")
				}
			}
			st := db.Stats()
			if st.RunsSkippedFence != uint64(100*runs) {
				t.Errorf("reopened fence skips = %d, want %d", st.RunsSkippedFence, 100*runs)
			}
			// In-range misses (odd keys): restored blooms must keep
			// skipping.
			before := db.Stats()
			for i := 0; i < 500; i++ {
				if _, ok := db.Get(uint64(2*i + 1)); ok {
					t.Fatal("phantom hit after reopen")
				}
			}
			after := db.Stats()
			if skipped := after.RunsSkippedBloom - before.RunsSkippedBloom; skipped == 0 {
				t.Error("reopened filters produced zero bloom skips on in-range misses")
			}
			// And every stored key still answers.
			for i := 0; i < 1500; i += 31 {
				if _, ok := db.Get(uint64(2 * i)); !ok {
					t.Fatalf("key %d lost after reopen", 2*i)
				}
			}
		})
	}
}
