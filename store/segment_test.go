package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"implicitlayout/layout"
)

// buildRandom returns a store over n random records (duplicate keys
// possible) plus the expected sorted export.
func buildRandom(t *testing.T, n int, opts ...Option) (*Store[uint64, string], []uint64, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	keys := make([]uint64, n)
	vals := make([]string, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(4 * n))
		vals[i] = fmt.Sprint("v", keys[i])
	}
	st, err := Build(keys, vals, opts...)
	if err != nil {
		t.Fatal(err)
	}
	wantK, wantV := st.Export()
	return st, wantK, wantV
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, kind := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier} {
		t.Run(kind.String(), func(t *testing.T) {
			st, wantK, wantV := buildRandom(t, 1000,
				WithLayout(kind), WithShards(4), WithB(4))
			var buf bytes.Buffer
			n, err := st.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := ReadStore[uint64, string](bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != st.Len() || got.Shards() != st.Shards() ||
				got.Layout() != st.Layout() || got.B() != st.B() ||
				got.Duplicates() != st.Duplicates() {
				t.Fatalf("reopened store shape differs: %d/%d records, %d/%d shards",
					got.Len(), st.Len(), got.Shards(), st.Shards())
			}
			if !slices.Equal(got.Fences(), st.Fences()) {
				t.Fatalf("fences differ: %v vs %v", got.Fences(), st.Fences())
			}
			// Point lookups and ordered export must match the original —
			// and no re-permutation happened: the shard arrays were used
			// as stored.
			for _, k := range wantK {
				v, ok := got.Get(k)
				want, _ := st.Get(k)
				if !ok || v != want {
					t.Fatalf("reopened Get(%d) = %q, %v; want %q, true", k, v, ok, want)
				}
			}
			gotK, gotV := got.Export()
			if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
				t.Fatalf("reopened Export differs")
			}
		})
	}
}

func TestSegmentRoundTripKeySet(t *testing.T) {
	keys := []uint64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	st, err := BuildSet(keys, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore[uint64, struct{}](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.HasValues() {
		t.Fatal("reopened key set reports values")
	}
	for _, k := range keys {
		if !got.Contains(k) {
			t.Fatalf("reopened set lost key %d", k)
		}
	}
	if got.Contains(10) {
		t.Fatal("reopened set invented key 10")
	}
}

func TestSegmentRejectsTruncation(t *testing.T) {
	st, _, _ := buildRandom(t, 200, WithShards(2))
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, len(segMagic), len(full) / 2, len(full) - 1} {
		if _, err := ReadStore[uint64, string](bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("segment truncated to %d/%d bytes was accepted", cut, len(full))
		}
	}
}

func TestSegmentRejectsCorruption(t *testing.T) {
	st, _, _ := buildRandom(t, 200, WithShards(2))
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// A flipped bit anywhere must be caught by the magic check, a frame
	// checksum, or the structural validation — sampled across the file.
	for pos := 0; pos < len(full); pos += 97 {
		bad := bytes.Clone(full)
		bad[pos] ^= 0x10
		if _, err := ReadStore[uint64, string](bytes.NewReader(bad)); err == nil {
			t.Fatalf("segment with byte %d flipped was accepted", pos)
		}
	}
}

func TestSegmentPayloadKindsNotInterchangeable(t *testing.T) {
	// A DB run segment must not open as a plain Store and vice versa.
	keys := []uint64{1, 2, 3}
	vals := []mval[string]{{val: "a"}, {val: "b"}, {dead: true}}
	st, err := Build(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := writeRunStream(&buf, st); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStore[uint64, string](bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("run segment opened as a plain store")
	}
	got, err := readRunStream[uint64, string](bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if mv, ok := got.Get(2); !ok || mv.dead || mv.val != "b" {
		t.Fatalf("run segment Get(2) = %+v, %v", mv, ok)
	}
	if mv, ok := got.Get(3); !ok || !mv.dead {
		t.Fatalf("run segment lost the tombstone: %+v, %v", mv, ok)
	}
}
