package store

import (
	"cmp"
	"math"
	"math/rand"
	"slices"
	"testing"

	"implicitlayout/internal/par"
)

// TestParallelSort compares against the standard sort across sizes
// spanning the serial cutoff, worker counts, and duplicate-heavy inputs.
func TestParallelSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, sortSerialBelow - 1, sortSerialBelow, 1 << 15, 1<<15 + 77} {
		for _, p := range []int{1, 2, 3, 7, 8, 16} {
			a := make([]uint64, n)
			for i := range a {
				a[i] = uint64(rng.Intn(n/4 + 1)) // plenty of duplicates
			}
			want := slices.Clone(a)
			slices.Sort(want)
			parallelSort(par.New(p), a)
			if !slices.Equal(a, want) {
				t.Fatalf("n=%d p=%d: parallelSort differs from slices.Sort", n, p)
			}
		}
	}
}

// TestCoRank verifies the split invariant on duplicate-heavy runs: for
// every cut position t, merging the co-ranked prefixes yields exactly the
// first t elements of the full merge.
func TestCoRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x := make([]uint64, rng.Intn(200))
		y := make([]uint64, rng.Intn(200))
		for i := range x {
			x[i] = uint64(rng.Intn(20))
		}
		for i := range y {
			y[i] = uint64(rng.Intn(20))
		}
		slices.Sort(x)
		slices.Sort(y)
		full := make([]uint64, len(x)+len(y))
		mergeRuns(full, x, y, cmp.Less)
		for cut := 0; cut <= len(full); cut++ {
			i, j := coRank(cut, x, y, cmp.Less)
			if i+j != cut {
				t.Fatalf("coRank(%d) = (%d, %d), sum != cut", cut, i, j)
			}
			prefix := make([]uint64, cut)
			mergeRuns(prefix, x[:i], y[:j], cmp.Less)
			if !slices.Equal(prefix, full[:cut]) {
				t.Fatalf("coRank(%d) = (%d, %d): prefix %v != %v", cut, i, j, prefix, full[:cut])
			}
		}
	}
}

// TestParallelMerge cross-checks the co-ranked parallel merge against the
// serial kernel across the serial cutoff.
func TestParallelMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{mergeSerialBelow - 1, mergeSerialBelow, 1 << 14} {
		for _, p := range []int{1, 2, 5, 8} {
			x := make([]uint64, n/3)
			y := make([]uint64, n-n/3)
			for i := range x {
				x[i] = uint64(rng.Intn(n / 2))
			}
			for i := range y {
				y[i] = uint64(rng.Intn(n / 2))
			}
			slices.Sort(x)
			slices.Sort(y)
			want := make([]uint64, n)
			mergeRuns(want, x, y, cmp.Less)
			got := make([]uint64, n)
			parallelMerge(par.New(p), got, x, y, cmp.Less)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d p=%d: parallelMerge differs from mergeRuns", n, p)
			}
		}
	}
}

// TestParallelSortNaN: float keys containing NaN sort identically on the
// serial (slices.Sort) and parallel (run-sort + co-ranked merge) paths.
func TestParallelSortNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := sortSerialBelow * 2
	a := make([]float64, n)
	for i := range a {
		if rng.Intn(10) == 0 {
			a[i] = math.NaN()
		} else {
			a[i] = rng.NormFloat64()
		}
	}
	want := slices.Clone(a)
	slices.Sort(want)
	parallelSort(par.New(8), a)
	for i := range a {
		if math.IsNaN(want[i]) != math.IsNaN(a[i]) || (!math.IsNaN(a[i]) && a[i] != want[i]) {
			t.Fatalf("NaN sort diverges from slices.Sort at %d: %v vs %v", i, a[i], want[i])
		}
	}
}

// TestMergeRuns covers the pairwise merge kernel, including empty and
// one-sided runs.
func TestMergeRuns(t *testing.T) {
	cases := []struct{ x, y []uint64 }{
		{nil, nil},
		{[]uint64{1}, nil},
		{nil, []uint64{2}},
		{[]uint64{1, 3, 5}, []uint64{2, 2, 4, 9}},
		{[]uint64{7, 8}, []uint64{1, 2, 3}},
	}
	for _, c := range cases {
		dst := make([]uint64, len(c.x)+len(c.y))
		mergeRuns(dst, c.x, c.y, cmp.Less)
		want := append(slices.Clone(c.x), c.y...)
		slices.Sort(want)
		if !slices.Equal(dst, want) {
			t.Fatalf("mergeRuns(%v, %v) = %v, want %v", c.x, c.y, dst, want)
		}
	}
}

// TestParallelSortStable: equal keys keep their input order across the
// serial cutoff and worker counts — the property the duplicate-key
// policies rely on.
func TestParallelSortStable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	type pair struct {
		key uint64
		seq int
	}
	for _, n := range []int{0, 1, 100, sortSerialBelow, 1<<15 + 77} {
		for _, p := range []int{1, 3, 8} {
			a := make([]pair, n)
			for i := range a {
				a[i] = pair{key: uint64(rng.Intn(n/16 + 1)), seq: i} // heavy duplication
			}
			parallelSortStable(par.New(p), a, func(x, y pair) int {
				return cmp.Compare(x.key, y.key)
			})
			for i := 1; i < n; i++ {
				if a[i-1].key > a[i].key {
					t.Fatalf("n=%d p=%d: not sorted at %d", n, p, i)
				}
				if a[i-1].key == a[i].key && a[i-1].seq > a[i].seq {
					t.Fatalf("n=%d p=%d: equal keys reordered at %d", n, p, i)
				}
			}
		}
	}
}
