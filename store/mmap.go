package store

import (
	"cmp"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"runtime"
	"slices"

	"bytes"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/filter"
	"implicitlayout/internal/mmapio"
	"implicitlayout/search"
)

// This file is the zero-copy half of the segment codec: opening a
// codec-v2 segment file by mapping it read-only and serving the shard
// arrays in place from the page cache. The search kernels are untouched
// by any of it — a mapped shard is still just a []K — which is the
// paper's implicit-layout property doing external-memory work: a query
// touches O(log_B n) cache lines of a flat array, and it makes no
// difference whether those lines are heap or page cache.

// backing records who owns a store's shard arrays. A nil *backing means
// the Go heap owns them (Build, ReadStore) and the garbage collector is
// the whole lifecycle. A non-nil backing means the arrays view a mapped
// segment file, and release unmaps it.
type backing struct {
	release func() error
}

// Mapped reports whether the store serves its shard arrays from a
// mapped segment file rather than the heap.
func (s *Store[K, V]) Mapped() bool { return s.back != nil }

// Release unmaps a mapped store's backing region. It is idempotent and
// a no-op for heap-backed stores.
//
// After Release every query on the store faults: the caller owns the
// proof that no reader still holds it. Callers that cannot prove that —
// the DB's snapshot epochs, where a superseded run may still be serving
// an old reader's Range — must NOT call Release and instead let the
// mapping die with the store: every mapped open registers a GC cleanup,
// so an unreferenced mapped store unmaps itself exactly when the last
// epoch holding it is collected, the same reclamation rule as heap runs.
func (s *Store[K, V]) Release() error {
	if s.back == nil {
		return nil
	}
	return s.back.release()
}

// OpenStore opens a segment file written by Store.WriteTo. With
// WithMmap(true) and a codec-v2 segment (fixed-width K and V) on a
// platform with mmap, the file is mapped read-only and served zero-copy:
// the open costs O(shards) page touches instead of an O(data) decode,
// the shard arrays stay in the OS page cache rather than the Go heap,
// and datasets larger than RAM are served at page granularity. In every
// other case — v1 gob segments, platforms without mmap, or no WithMmap —
// the file is decoded onto the heap exactly like ReadStore.
//
// The zero-copy trade, stated plainly: a mapped open verifies the magic,
// header, padding, and trailer checksums and every structural invariant,
// but does NOT checksum the bulk shard arrays it never reads — that
// would page in the whole file and forfeit the O(shards) open. Integrity
// of the arrays rests on the segment write protocol (written once,
// fsynced, atomically renamed, never modified). A heap decode of the
// same file (ReadStore, or OpenStore without mmap) verifies every frame.
//
// A mapped store serves any number of concurrent readers. Its mapping is
// released when the store is garbage-collected, or eagerly by Release if
// the caller can prove no reader remains.
func OpenStore[K cmp.Ordered, V any](path string, opts ...Option) (*Store[K, V], error) {
	return openSegFile[K, V](path, plainCodec[V]{}, opts)
}

// openSegFile opens one segment file with the configured backing:
// mapped when requested and possible, heap-decoded otherwise. It is the
// single entry point shared by OpenStore and the DB's segment reopen.
func openSegFile[K cmp.Ordered, V any](path string, codec segCodec[V], opts []Option) (*Store[K, V], error) {
	var optc Config
	for _, o := range opts {
		o(&optc)
	}
	if optc.Mmap && mmapio.Supported {
		if st, err := openSegMapped[K, V](path, codec, opts); !errors.Is(err, errSegNotMappable) {
			return st, err
		}
		// A v1 segment under a mmap request: decode it onto the heap —
		// the pre-v2 files stay servable forever, just not zero-copy.
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readSegStream[K](f, codec, opts)
}

// openSegMapped maps the file and builds a Store over the mapping. On
// any error the mapping is released before returning; errSegNotMappable
// (a v1 segment) tells the caller to fall back to heap decoding.
func openSegMapped[K cmp.Ordered, V any](path string, codec segCodec[V], opts []Option) (*Store[K, V], error) {
	region, err := mmapio.Map(path)
	if err != nil {
		// No mapping to be had (platform quirk, exotic filesystem):
		// degrade to the decode path rather than failing the open.
		return nil, errSegNotMappable
	}
	st, err := readSegMapped[K, V](region.Bytes(), codec, opts)
	if err != nil {
		return nil, errors.Join(err, region.Close())
	}
	st.back = &backing{release: region.Close}
	// The safety net that makes "snapshot epochs end at garbage
	// collection" hold for mapped runs too: when the last reference to
	// the store dies, the mapping goes with it. Release (or a second
	// cleanup) is harmless — Region.Close is idempotent.
	//lint:allow stickyerr GC-triggered last-resort unmap: there is no caller to hand the error to, and a failed munmap only leaks address space
	runtime.AddCleanup(st, func(r *mmapio.Region) { r.Close() }, region)
	// Point queries dominate serving; tell the OS not to read ahead.
	region.Advise(mmapio.Random)
	return st, nil
}

// readSegMapped builds a Store whose shard arrays are views into b, the
// mapped bytes of a codec-v2 segment file. Structural frames (header,
// pads, trailer) are checksum-verified; the raw array frames are bounds-
// and length-checked but not checksummed — see the OpenStore contract.
func readSegMapped[K cmp.Ordered, V any](b []byte, codec segCodec[V], opts []Option) (*Store[K, V], error) {
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("store: not a segment file (magic %q)", b[:min(len(b), len(segMagic))])
	}
	off := len(segMagic)
	tag, payload, off, err := blockio.Frame(b, off, true)
	if err != nil {
		return nil, fmt.Errorf("store: reading segment header: %w", err)
	}
	if tag != tagSegHeader {
		return nil, fmt.Errorf("store: frame %q where %q expected", tag, tagSegHeader)
	}
	var hdr segHeader
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("store: decoding segment header: %w", err)
	}
	if err := validateSegHeader[K](&hdr, codec); err != nil {
		return nil, err
	}
	if hdr.Version == segV1 {
		return nil, fmt.Errorf("%w: v%d segments hold gob frames, which map to nothing", errSegNotMappable, hdr.Version)
	}
	var rawKeys, rawVals [][]byte
	var sf segFilter
	if hdr.Version == segV21 {
		// The streamable format states its shard lengths only in the
		// trailing 'f' frame, so a mapped open walks the frames first:
		// each shard's record count falls out of its key frame's size,
		// and the 'f' frame must then agree with what was observed. The
		// walk touches only frame headers and the small structural
		// payloads — the bulk arrays stay cold.
		rawKeys, rawVals, sf, off, err = mappedV21Frames(b, off, &hdr, codec.rawTag())
		if err != nil {
			return nil, err
		}
		lens := make([]int, len(rawKeys))
		records := 0
		for i, rk := range rawKeys {
			lens[i] = len(rk) / hdr.KeyWidth
			records += lens[i]
		}
		if err := validateShardLens(sf.ShardLens, sf.Records); err != nil {
			return nil, err
		}
		if sf.Records != records || !slices.Equal(sf.ShardLens, lens) {
			return nil, fmt.Errorf("store: segment filter frame says %d records in shards %v, stream holds %d in %v",
				sf.Records, sf.ShardLens, records, lens)
		}
		hdr.Records = records
		hdr.ShardLens = lens
	}
	s := newSegStore[K, V](&hdr, opts)
	recOff := 0
	for i, l := range hdr.ShardLens {
		var raw []byte
		if hdr.Version == segV21 {
			raw = rawKeys[i]
		} else if raw, off, err = mappedRawFrame(b, off, tagSegKeys, l, hdr.KeyWidth); err != nil {
			return nil, err
		}
		keys, err := mmapio.View[K](raw)
		if err != nil {
			return nil, fmt.Errorf("store: segment shard %d keys: %w", i, err)
		}
		s.shards[i] = shard[K]{off: recOff, idx: search.NewIndex(keys, s.cfg.Layout, hdr.B)}
		recOff += l
		if hdr.HasVals {
			if hdr.Version == segV21 {
				raw = rawVals[i]
			} else if raw, off, err = mappedRawFrame(b, off, codec.rawTag(), l, hdr.ValWidth); err != nil {
				return nil, err
			}
			vals, err := mmapio.View[V](raw)
			if err != nil {
				return nil, fmt.Errorf("store: segment shard %d values: %w", i, err)
			}
			s.svals[i] = vals
		}
		s.fences[i] = s.shards[i].idx.AtRank(0)
	}
	last := s.shards[len(s.shards)-1].idx
	s.maxKey = last.AtRank(last.Len() - 1)
	if len(sf.Bloom) > 0 {
		bl, err := filter.Unmarshal(sf.Bloom)
		if err != nil {
			return nil, fmt.Errorf("store: segment run filter: %w", err)
		}
		s.bloom = bl
	}
	tag, payload, off, err = blockio.Frame(b, off, true)
	if err != nil {
		return nil, fmt.Errorf("store: segment trailer missing (file truncated?): %w", err)
	}
	var tr segTrailer
	if tag != tagSegTrailer {
		return nil, fmt.Errorf("store: frame %q where trailer expected", tag)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&tr); err != nil {
		return nil, fmt.Errorf("store: decoding segment trailer: %w", err)
	}
	if tr.Records != hdr.Records {
		return nil, fmt.Errorf("store: segment trailer says %d records, header %d", tr.Records, hdr.Records)
	}
	if off != len(b) {
		return nil, fmt.Errorf("store: %d bytes of trailing junk after the segment trailer", len(b)-off)
	}
	return s, checkFences(s)
}

// mappedV21Frames walks a v2.1 segment's shard frames up to and
// including the 'f' frame, returning views of each shard's raw key and
// value payloads (unverified bulk, like every mapped array), the decoded
// filter frame, and the offset after it. Structural frames — pads and
// the 'f' frame itself — are checksum-verified.
func mappedV21Frames(b []byte, off int, hdr *segHeader, rawTag byte) (rawKeys, rawVals [][]byte, sf segFilter, end int, err error) {
	for {
		tag, payload, noff, err := blockio.Frame(b, off, true)
		if err != nil {
			return nil, nil, sf, 0, fmt.Errorf("store: reading segment shard frames (file truncated?): %w", err)
		}
		if tag == tagSegFilter {
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&sf); err != nil {
				return nil, nil, sf, 0, fmt.Errorf("store: decoding frame %q: %w", tagSegFilter, err)
			}
			return rawKeys, rawVals, sf, noff, nil
		}
		if tag != tagSegPad {
			return nil, nil, sf, 0, fmt.Errorf("store: frame %q where pad or filter expected", tag)
		}
		off = noff
		tag, payload, off, err = blockio.Frame(b, off, false)
		if err != nil {
			return nil, nil, sf, 0, fmt.Errorf("store: reading frame %q: %w", tagSegKeys, err)
		}
		if tag != tagSegKeys {
			return nil, nil, sf, 0, fmt.Errorf("store: frame %q where %q expected", tag, tagSegKeys)
		}
		if len(payload) == 0 || len(payload)%hdr.KeyWidth != 0 {
			return nil, nil, sf, 0, fmt.Errorf("store: segment frame %q holds %d bytes, not a positive multiple of the %d-byte key width",
				tagSegKeys, len(payload), hdr.KeyWidth)
		}
		l := len(payload) / hdr.KeyWidth
		rawKeys = append(rawKeys, payload)
		if hdr.HasVals {
			var raw []byte
			raw, off, err = mappedRawFrame(b, off, rawTag, l, hdr.ValWidth)
			if err != nil {
				return nil, nil, sf, 0, err
			}
			rawVals = append(rawVals, raw)
		}
	}
}

// mappedRawFrame consumes a pad frame (verified — it is tiny) and the
// array frame that follows (unverified — it is the bulk data), returning
// the array payload as a view into b and the offset after it. The
// payload must hold exactly n elements of the given width.
func mappedRawFrame(b []byte, off int, want byte, n, width int) ([]byte, int, error) {
	tag, _, off, err := blockio.Frame(b, off, true)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading pad before frame %q: %w", want, err)
	}
	if tag != tagSegPad {
		return nil, 0, fmt.Errorf("store: frame %q where pad expected", tag)
	}
	tag, payload, off, err := blockio.Frame(b, off, false)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading frame %q: %w", want, err)
	}
	if tag != want {
		return nil, 0, fmt.Errorf("store: frame %q where %q expected", tag, want)
	}
	if len(payload) != n*width {
		return nil, 0, fmt.Errorf("store: segment frame %q holds %d bytes, want %d records × %d bytes",
			want, len(payload), n, width)
	}
	return payload, off, nil
}
