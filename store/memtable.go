package store

import (
	"cmp"
	"slices"
	"sync"
)

// mval is the record payload inside the DB's write path: the user value
// plus a tombstone bit. Runs store mval payloads too, so a deletion
// written to the memtable keeps shadowing older runs after it is flushed,
// until compaction reaches the last level and drops it for good.
type mval[V any] struct {
	val  V
	dead bool
}

// mrec is one sorted-view record: a key with its payload.
type mrec[K cmp.Ordered, V any] struct {
	key K
	mv  mval[V]
}

// memtable is the DB's mutable ingest buffer: a hash map with overwrite
// (KeepLast) semantics and tombstones for deletes, plus a sorted view
// materialized at most once after the table freezes.
//
// The representation is deliberately a map, not a skip list or sorted
// array: Put, Delete, and Get are O(1) under the DB's lock, so the write
// path's critical section stays a few dozen nanoseconds no matter how
// full the table is. Order is recovered exactly once per memtable
// lifetime — at flush (where the run build's parallel sort ingests the
// records anyway) or at the first ordered read of a frozen table — which
// is the same sort-then-permute shape as the paper's static pipeline.
// Ordered reads of the *active* table sort their interval per call; that
// cost is bounded by the flush threshold and carried by the reader, not
// by writers.
type memtable[K cmp.Ordered, V any] struct {
	m        map[K]mval[V]
	sortOnce sync.Once
	sorted   []mrec[K, V]
	// wal is the sealed write-ahead log that carries this table's
	// records (durable mode, set at freeze). It outlives the table just
	// long enough for the flush that persists the records as a segment,
	// which then deletes it.
	wal *walWriter
}

func newMemtable[K cmp.Ordered, V any]() *memtable[K, V] {
	return &memtable[K, V]{m: make(map[K]mval[V])}
}

// put inserts or overwrites key with the given payload.
func (m *memtable[K, V]) put(key K, mv mval[V]) { m.m[key] = mv }

// get returns the payload stored under key. A hit with mv.dead set means
// the key was deleted here — the caller must stop searching older data.
func (m *memtable[K, V]) get(key K) (mv mval[V], ok bool) {
	mv, ok = m.m[key]
	return mv, ok
}

// len returns the number of records, tombstones included (a tombstone
// occupies a slot and counts toward the flush threshold like any write).
func (m *memtable[K, V]) len() int { return len(m.m) }

// collect returns an unsorted copy of the records with keys in [lo, hi]
// (all of them when all is set). Range readers collect the active
// memtable under the DB's read lock — one O(len) scan, no ordering work
// — and sort the copy outside it, so a long scan never holds up writers.
func (m *memtable[K, V]) collect(lo, hi K, all bool) []mrec[K, V] {
	recs := make([]mrec[K, V], 0, len(m.m))
	for k, mv := range m.m {
		if all || (k >= lo && k <= hi) {
			recs = append(recs, mrec[K, V]{key: k, mv: mv})
		}
	}
	return recs
}

// sortedRecs returns the table's records in ascending key order,
// materializing the view on first use. Only safe on frozen memtables:
// the map must no longer be written. Concurrent callers (the compactor
// flushing, readers merging) share one materialization.
func (m *memtable[K, V]) sortedRecs() []mrec[K, V] {
	m.sortOnce.Do(func() {
		var zk K
		m.sorted = m.collect(zk, zk, true)
		sortRecs(m.sorted)
	})
	return m.sorted
}

// sortRecs sorts a record slice ascending by key.
func sortRecs[K cmp.Ordered, V any](recs []mrec[K, V]) {
	slices.SortFunc(recs, func(a, b mrec[K, V]) int { return cmp.Compare(a.key, b.key) })
}

// boundRecs narrows a sorted record slice to the keys in [lo, hi]
// (returned as a subslice, no copy).
func boundRecs[K cmp.Ordered, V any](recs []mrec[K, V], lo, hi K, all bool) []mrec[K, V] {
	if all {
		return recs
	}
	i, _ := slices.BinarySearchFunc(recs, lo, func(r mrec[K, V], k K) int {
		return cmp.Compare(r.key, k)
	})
	j, ok := slices.BinarySearchFunc(recs, hi, func(r mrec[K, V], k K) int {
		return cmp.Compare(r.key, k)
	})
	if ok {
		j++
	}
	return recs[i:j]
}
