package store_test

import (
	"fmt"
	"os"
	"path/filepath"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// ExampleDB opens a writable store, takes interleaved writes and
// deletes, and reads through all layers — memtable, frozen tables, and
// compacted runs — as one ordered key space.
func ExampleDB() {
	db, err := store.NewDB[uint64, string](store.DBConfig{
		MemLimit: 4, // tiny, so this example exercises real flushes
		Store:    []store.Option{store.WithLayout(layout.VEB)},
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	for i := uint64(1); i <= 10; i++ {
		db.Put(i, fmt.Sprint("v", i))
	}
	db.Put(3, "v3-rewritten")
	db.Delete(5)
	db.Flush() // deterministic for the example; serving code never needs it

	v, ok := db.Get(3)
	fmt.Println("Get(3):", v, ok)
	_, ok = db.Get(5)
	fmt.Println("Get(5) ok:", ok)
	st := db.Stats()
	fmt.Println("memtable and frozen after flush:", st.MemRecords, st.FrozenTables)
	// Output:
	// Get(3): v3-rewritten true
	// Get(5) ok: false
	// memtable and frozen after flush: 0 0
}

// ExampleDB_Put shows overwrite semantics: the newest version of a key
// wins, whether it lives in the memtable or has already been flushed
// into a run.
func ExampleDB_Put() {
	db, err := store.NewDB[string, int](store.DBConfig{})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put("alice", 1)
	db.Put("bob", 2)
	db.Flush()          // "alice" = 1 now lives in an immutable run
	db.Put("alice", 10) // newer memtable version shadows the run

	v, _ := db.Get("alice")
	fmt.Println("alice:", v)
	v, _ = db.Get("bob")
	fmt.Println("bob:", v)
	// Output:
	// alice: 10
	// bob: 2
}

// ExampleDB_Get shows the three outcomes of a lookup: a live value, a
// miss, and a deletion (a tombstone is an authoritative miss even though
// older runs still hold the key).
func ExampleDB_Get() {
	db, err := store.NewDB[uint64, string](store.DBConfig{})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put(1, "one")
	db.Flush()
	db.Delete(1) // tombstone in the memtable, "one" still in the run below

	_, ok := db.Get(1)
	fmt.Println("deleted:", ok)
	_, ok = db.Get(2)
	fmt.Println("never written:", ok)
	db.Put(1, "one again")
	v, ok := db.Get(1)
	fmt.Println("rewritten:", v, ok)
	// Output:
	// deleted: false
	// never written: false
	// rewritten: one again true
}

// ExampleDB_Range shows the k-way merged ordered stream: records come
// back in ascending key order regardless of which layer holds them, with
// deleted keys suppressed.
func ExampleDB_Range() {
	db, err := store.NewDB[uint64, string](store.DBConfig{MemLimit: 4})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	for _, k := range []uint64{40, 10, 30, 20, 50, 60} {
		db.Put(k, fmt.Sprint("v", k))
	}
	db.Flush()
	db.Delete(30)     // tombstone in the memtable
	db.Put(25, "v25") // new key in the memtable

	db.Range(10, 50, func(k uint64, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 10 v10
	// 20 v20
	// 25 v25
	// 40 v40
	// 50 v50
}

// ExampleOpen shows the durable lifecycle: a DB opened on a directory
// logs every write ahead of acknowledging it, persists flushed runs as
// segment files (the permuted arrays verbatim — reopening never
// re-sorts or re-permutes), and serves the whole acknowledged history
// again after a restart.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "store-open-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	db, err := store.Open[uint64, string](dir, store.DBConfig{})
	if err != nil {
		panic(err)
	}
	if err := db.Put(1, "survives restarts"); err != nil {
		panic(err) // a non-nil error means the write was NOT acked
	}
	if err := db.Delete(2); err != nil {
		panic(err)
	}
	if err := db.Close(); err != nil { // flushes every layer to segments
		panic(err)
	}

	reopened, err := store.Open[uint64, string](dir, store.DBConfig{})
	if err != nil {
		panic(err)
	}
	defer reopened.Close()
	v, ok := reopened.Get(1)
	fmt.Println("after restart, Get(1):", v, ok)
	manifest, err := os.Stat(filepath.Join(dir, "MANIFEST"))
	fmt.Println("manifest exists:", err == nil && !manifest.IsDir())
	// Output:
	// after restart, Get(1): survives restarts true
	// manifest exists: true
}

// ExampleStore_Range shows the static store's cross-shard ordered
// streaming: the fence keys prune the shard walk and each shard's
// layout is traversed in order, so records arrive globally sorted
// without any unpermuting.
func ExampleStore_Range() {
	keys := []uint64{8, 3, 5, 1, 9, 2, 7, 4, 6, 10}
	vals := []string{"h", "c", "e", "a", "i", "b", "g", "d", "f", "j"}
	st, err := store.Build(keys, vals,
		store.WithShards(3), store.WithLayout(layout.BTree), store.WithB(2))
	if err != nil {
		panic(err)
	}

	st.Range(3, 7, func(k uint64, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 3 c
	// 4 d
	// 5 e
	// 6 f
	// 7 g
}
