package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"implicitlayout/layout"
)

// TestDBCompactionStress hammers one DB from concurrent writers and
// readers while a tiny MemLimit keeps the background compactor
// constantly flushing and merging, and verifies the result against a
// mutex-guarded map. Each writer owns a disjoint key stripe, so its own
// reads mid-flight have deterministic answers even while other stripes
// churn; dedicated readers meanwhile check cross-stripe ordering
// invariants that must hold in every snapshot. Run under -race this is
// the memory-model check on the atomic-snapshot swap (CI does exactly
// that).
func TestDBCompactionStress(t *testing.T) {
	const (
		writers  = 4
		readers  = 2
		opsEach  = 3000
		stripe   = 1 << 16 // key space per writer
		memLimit = 64      // tiny: force constant flush + merge traffic
	)
	db, err := NewDB[uint64, uint64](DBConfig{MemLimit: memLimit, Fanout: 2,
		Store: []Option{WithLayout(layout.VEB), WithShards(2)}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var refMu sync.Mutex
	ref := map[uint64]uint64{}

	var wgWriters sync.WaitGroup
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(w) * stripe
			mine := map[uint64]uint64{} // this stripe's expected state
			for i := 0; i < opsEach; i++ {
				k := base + uint64(rng.Intn(512))
				switch rng.Intn(10) {
				case 0, 1: // delete
					db.Delete(k)
					delete(mine, k)
					refMu.Lock()
					delete(ref, k)
					refMu.Unlock()
				default: // put
					v := uint64(i)<<8 | uint64(w)
					db.Put(k, v)
					mine[k] = v
					refMu.Lock()
					ref[k] = v
					refMu.Unlock()
				}
				// A writer's own stripe is single-writer, so its reads
				// are deterministic no matter what compaction is doing.
				if i%17 == 0 {
					want, live := mine[k]
					got, ok := db.Get(k)
					if ok != live || (live && got != want) {
						panic(fmt.Sprintf("writer %d: Get(%d) = %d,%v want %d,%v",
							w, k, got, ok, want, live))
					}
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var wgReaders sync.WaitGroup
	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func(r int) {
			defer wgReaders.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := uint64(rng.Intn(writers * stripe))
				hi := lo + uint64(rng.Intn(1024))
				prev := uint64(0)
				first := true
				db.Range(lo, hi, func(k, v uint64) bool {
					if k < lo || k > hi {
						panic(fmt.Sprintf("Range(%d,%d) yielded out-of-range key %d", lo, hi, k))
					}
					if !first && k <= prev {
						panic(fmt.Sprintf("Range(%d,%d) keys not strictly ascending: %d after %d",
							lo, hi, k, prev))
					}
					if who := v & 0xff; who != k/stripe {
						panic(fmt.Sprintf("key %d carries value written by stripe %d", k, who))
					}
					prev, first = k, false
					return true
				})
			}
		}(r)
	}

	wgWriters.Wait()
	close(stop)
	wgReaders.Wait()

	// Final verification against the reference — first through the
	// memtable+runs path as the workload left it, then through the
	// runs-only path after a full synchronous flush and compaction.
	verify := func(phase string) {
		t.Helper()
		for k, want := range ref {
			if got, ok := db.Get(k); !ok || got != want {
				t.Fatalf("%s: Get(%d) = %d, %v; want %d, true", phase, k, got, ok, want)
			}
		}
		n := 0
		db.Scan(func(k, v uint64) bool {
			want, ok := ref[k]
			if !ok || v != want {
				t.Fatalf("%s: Scan yielded %d=%d; reference says %d,%v", phase, k, v, want, ok)
			}
			n++
			return true
		})
		if n != len(ref) {
			t.Fatalf("%s: Scan yielded %d records, reference has %d", phase, n, len(ref))
		}
	}
	verify("pre-flush")
	db.Flush()
	st := db.Stats()
	if st.MemRecords != 0 || st.FrozenTables != 0 {
		t.Fatalf("after Flush: %+v", st)
	}
	verify("post-flush")
}
