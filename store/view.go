package store

import "cmp"

// View is a pinned point-in-time read view of a DB — the epoch-pinning
// hook the wire server's batched reads ride. Creating one loads the
// DB's snapshot pointer exactly once and captures the memtable that was
// active at that moment; every read through the view resolves against
// that same immutable epoch (frozen memtables + run stack), so a
// multi-key batch or a long range never sees half its keys from one run
// stack and half from another while a flush or merge races it.
//
// Pinning is free: the dbstate and its runs are immutable and
// garbage-collected, so a View is three pointers, and dropping it (or
// tearing the connection that held it) releases the epoch the way any
// reader's snapshot is released — when the GC collects the last
// reference, which is also when a mapped segment held only by this
// epoch is unmapped. There is nothing to close and nothing to leak.
//
// The one mutable input, the captured memtable, keeps receiving writes
// while it remains the DB's active table, so a View's reads are "at
// least as new as the pin" rather than frozen at it: a key overwritten
// after the pin may return the newer value until the memtable freezes.
// What the pin does guarantee is that no acknowledged record vanishes
// mid-view — a record the epoch holds stays readable through the view
// even after compaction has merged its run away — and that every key of
// one batch is answered by the same run-stack epoch.
//
// A View stays valid after Close (it serves the final state, like DB
// reads) and is safe for concurrent use.
type View[K cmp.Ordered, V any] struct {
	db  *DB[K, V]
	act *memtable[K, V]
	st  *dbstate[K, V]
}

// View pins the DB's current epoch and returns a read view of it.
func (db *DB[K, V]) View() *View[K, V] {
	db.mu.RLock()
	// Capture both halves under one lock hold: a freeze swaps the
	// active table into the snapshot under the write lock, so this pair
	// is coherent — the epoch's frozen list and the captured table never
	// both miss a record.
	v := &View[K, V]{db: db, act: db.active, st: db.state.Load()}
	db.mu.RUnlock()
	return v
}

// Get returns the newest live value stored under key as seen by the
// pinned epoch — Get on the DB, minus the possibility of a concurrent
// flush or merge changing which layers answer.
func (v *View[K, V]) Get(key K) (val V, ok bool) {
	v.db.mu.RLock()
	mv, hit := v.act.get(key)
	v.db.mu.RUnlock()
	if hit {
		return liveValue(mv)
	}
	return v.db.getImmutable(v.st, key)
}

// Contains reports whether key has a live value in the pinned epoch.
func (v *View[K, V]) Contains(key K) bool {
	_, ok := v.Get(key)
	return ok
}

// GetBatch answers many independent point lookups against the pinned
// epoch: vals[i] and found[i] are what Get(keys[i]) would return, every
// key resolved by the same run stack. p is the worker count per run
// (values below 1 fall back to serial), as in DB.GetBatch.
func (v *View[K, V]) GetBatch(keys []K, p int) (vals []V, found []bool) {
	return v.db.getBatchOn(v.act, v.st, keys, p)
}

// Range calls yield for every live record with lo <= key <= hi in
// ascending key order within the pinned epoch, stopping early if yield
// returns false.
func (v *View[K, V]) Range(lo, hi K, yield func(key K, val V) bool) {
	if hi < lo {
		return
	}
	v.db.rangeOn(v.act, v.st, lo, hi, false, yield)
}

// Scan calls yield for every live record in the pinned epoch in
// ascending key order — Range over the whole key space.
func (v *View[K, V]) Scan(yield func(key K, val V) bool) {
	var zero K
	v.db.rangeOn(v.act, v.st, zero, zero, true, yield)
}
