package store

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"fmt"
	"io"
	"runtime"

	"implicitlayout/internal/blockio"
	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

// The segment codec serializes a built Store so it can be reopened
// without re-sorting or re-permuting: the per-shard key and value arrays
// are written exactly as they sit in memory — already permuted into
// their layout — so reading a segment back is a copy into fresh slices
// plus index reconstruction, never a rebuild. The permuted array IS the
// on-disk format, which is the external-memory payoff of an implicit
// (pointer-free) layout: there is nothing to deserialize.
//
// A segment is a magic prefix followed by blockio frames:
//
//	"ILSEG\x01"
//	frame 'h': gob(segHeader)      version, structure, shard lengths
//	per shard, in fence order:
//	  frame 'k': gob([]K)          the shard's permuted key array
//	  frame 'v': gob([]V)          plain payloads (omitted for key sets)
//	  — or, for DB run segments —
//	  frame 'w': gob([]V)          raw values, tombstone slots zeroed
//	  frame 't': bitmap            tombstone bit per shard position
//	frame 'e': gob(segTrailer)     record count; doubles as an end marker
//
// Every frame carries a CRC-32C (see internal/blockio), so truncation
// surfaces as a torn or missing trailer and bit rot as a checksum
// mismatch. The trailer is what distinguishes "complete" from "cut
// short": a reader that has not seen frame 'e' refuses the file.

const (
	segMagic   = "ILSEG\x01"
	segVersion = 1

	tagSegHeader  = 'h'
	tagSegKeys    = 'k'
	tagSegVals    = 'v'
	tagSegRawVals = 'w'
	tagSegTombs   = 't'
	tagSegTrailer = 'e'
)

// Payload kinds: a plain segment stores user values directly; a run
// segment stores the DB's mval payloads as a raw value array plus a
// tombstone bitmap, so the value type itself never needs to understand
// deletion markers (and gob never sees the unexported mval fields).
const (
	segPayloadPlain = iota
	segPayloadRun
)

// segHeader is frame 'h': everything needed to rebuild the Store's
// structure around the raw arrays.
type segHeader struct {
	Version    int
	Payload    int   // segPayloadPlain or segPayloadRun
	Records    int   // total records across shards
	HasVals    bool  // false for key-set stores (no value frames at all)
	Layout     int   // layout.Kind the shards are permuted into
	B          int   // B-tree node capacity the shards were built with
	Algorithm  int   // perm.Algorithm, kept for Rebuild fidelity
	Duplicates int   // DuplicatePolicy the store was built with
	ShardLens  []int // per-shard record counts, in fence order
}

// segTrailer is frame 'e': the completeness marker.
type segTrailer struct {
	Records int
}

// segCodec abstracts how a shard's value slice crosses the codec: one
// gob frame for plain stores, raw values + tombstone bitmap for DB runs.
// readShard fills dst (length 0, capacity n — a window into the store's
// preallocated value array) with exactly n decoded payloads.
type segCodec[V any] interface {
	kind() int
	writeShard(bw *blockio.Writer, vals []V) error
	readShard(br *blockio.Reader, n int, dst []V) error
}

// plainCodec serializes values as one gob frame per shard. V must be
// gob-encodable (exported fields, no functions or channels).
type plainCodec[V any] struct{}

func (plainCodec[V]) kind() int { return segPayloadPlain }

func (plainCodec[V]) writeShard(bw *blockio.Writer, vals []V) error {
	return writeGobFrame(bw, tagSegVals, vals)
}

func (plainCodec[V]) readShard(br *blockio.Reader, n int, dst []V) error {
	return readGobSlice(br, tagSegVals, n, dst)
}

// runCodec serializes the DB's mval payloads: the raw user values in one
// frame (tombstone slots hold the zero value) and the tombstone bits in
// a second, so the wire format needs no knowledge of mval's layout.
type runCodec[V any] struct{}

func (runCodec[V]) kind() int { return segPayloadRun }

func (runCodec[V]) writeShard(bw *blockio.Writer, vals []mval[V]) error {
	raw := make([]V, len(vals))
	dead := make([]byte, (len(vals)+7)/8)
	for i, mv := range vals {
		if mv.dead {
			dead[i/8] |= 1 << (i % 8)
		} else {
			raw[i] = mv.val
		}
	}
	if err := writeGobFrame(bw, tagSegRawVals, raw); err != nil {
		return err
	}
	return bw.WriteBlock(tagSegTombs, dead)
}

func (runCodec[V]) readShard(br *blockio.Reader, n int, dst []mval[V]) error {
	// The wire holds raw values and a bitmap, the store holds mval — one
	// scratch slice for the raw decode is inherent to the translation.
	raw := make([]V, 0, n)
	if err := readGobSlice(br, tagSegRawVals, n, raw); err != nil {
		return err
	}
	raw = raw[:n]
	tag, dead, err := br.Next()
	if err != nil {
		return fmt.Errorf("store: segment tombstone bitmap: %w", err)
	}
	if tag != tagSegTombs || len(dead) != (n+7)/8 {
		return fmt.Errorf("store: segment tombstone bitmap malformed (tag %q, %d bytes for %d records)",
			tag, len(dead), n)
	}
	vals := dst[:n]
	for i := range vals {
		if dead[i/8]&(1<<(i%8)) != 0 {
			vals[i] = mval[V]{dead: true}
		} else {
			vals[i] = mval[V]{val: raw[i]}
		}
	}
	return nil
}

// writeGobFrame and readGobFrame are the gob-payload-in-a-frame codec
// shared by the segment and manifest formats.
func writeGobFrame(bw *blockio.Writer, tag byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("store: encoding frame %q: %w", tag, err)
	}
	return bw.WriteBlock(tag, buf.Bytes())
}

func readGobFrame(br *blockio.Reader, want byte, v any) error {
	tag, payload, err := br.Next()
	if err != nil {
		return fmt.Errorf("store: reading frame %q: %w", want, err)
	}
	if tag != want {
		return fmt.Errorf("store: frame %q where %q expected", tag, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("store: decoding frame %q: %w", want, err)
	}
	return nil
}

// readGobSlice decodes a slice frame of exactly n elements, steering
// gob's allocation into dst (length 0, capacity n): gob reuses a
// destination slice whose capacity suffices, so a segment shard decodes
// straight into the store's preallocated backing array with no scratch
// copy — the "reopen is a read, not a rebuild" property, applied to
// allocation too. If gob nevertheless reallocated (a malformed frame
// longer than the header promised would, before failing the length
// check), the decoded data is copied back so the contract holds.
func readGobSlice[T any](br *blockio.Reader, tag byte, n int, dst []T) error {
	s := dst
	if err := readGobFrame(br, tag, &s); err != nil {
		return err
	}
	if len(s) != n {
		return fmt.Errorf("store: segment frame %q holds %d elements, header says %d", tag, len(s), n)
	}
	if n > 0 && &s[0] != &dst[:1][0] {
		copy(dst[:n], s)
	}
	return nil
}

// WriteTo serializes the store to w in the segment format, returning the
// byte count written. The shards' permuted arrays go out verbatim, so a
// later ReadStore serves queries with zero rebuild work. K and V must be
// gob-encodable; the read side recovers the same layout, shard
// boundaries, fences, and duplicate policy. WriteTo implements
// io.WriterTo and never mutates the store.
func (s *Store[K, V]) WriteTo(w io.Writer) (int64, error) {
	return writeSegStream(w, s, plainCodec[V]{})
}

// ReadStore reconstructs a Store from a stream produced by WriteTo. The
// structural parameters (layout, shard count, B, duplicate policy) come
// from the stream itself; of the options only WithWorkers is honored —
// it bounds the parallelism of future Export/Rebuild calls on the
// reopened store. The stream is checksummed frame by frame: a truncated
// or bit-flipped segment is rejected, never served.
func ReadStore[K cmp.Ordered, V any](r io.Reader, opts ...Option) (*Store[K, V], error) {
	return readSegStream[K](r, plainCodec[V]{}, opts)
}

// writeRunStream serializes a DB run's Store (mval payloads) — same
// format, run payload kind.
func writeRunStream[K cmp.Ordered, V any](w io.Writer, st *Store[K, mval[V]]) (int64, error) {
	return writeSegStream(w, st, runCodec[V]{})
}

// readRunStream reopens a DB run segment with the given Export
// parallelism.
func readRunStream[K cmp.Ordered, V any](r io.Reader, workers int) (*Store[K, mval[V]], error) {
	return readSegStream[K](r, runCodec[V]{}, []Option{WithWorkers(workers)})
}

func writeSegStream[K cmp.Ordered, V any](w io.Writer, s *Store[K, V], codec segCodec[V]) (int64, error) {
	n, err := io.WriteString(w, segMagic)
	if err != nil {
		return int64(n), err
	}
	bw := blockio.NewWriter(w)
	hdr := segHeader{
		Version:    segVersion,
		Payload:    codec.kind(),
		Records:    len(s.keys),
		HasVals:    s.vals != nil,
		Layout:     int(s.cfg.Layout),
		B:          s.cfg.B,
		Algorithm:  int(s.cfg.Algorithm),
		Duplicates: int(s.cfg.Duplicates),
		ShardLens:  make([]int, len(s.shards)),
	}
	for i, sh := range s.shards {
		hdr.ShardLens[i] = sh.idx.Len()
	}
	if err := writeGobFrame(bw, tagSegHeader, hdr); err != nil {
		return int64(n) + bw.Offset(), err
	}
	for _, sh := range s.shards {
		lo, hi := sh.off, sh.off+sh.idx.Len()
		if err := writeGobFrame(bw, tagSegKeys, s.keys[lo:hi]); err != nil {
			return int64(n) + bw.Offset(), err
		}
		if s.vals != nil {
			if err := codec.writeShard(bw, s.vals[lo:hi]); err != nil {
				return int64(n) + bw.Offset(), err
			}
		}
	}
	if err := writeGobFrame(bw, tagSegTrailer, segTrailer{Records: len(s.keys)}); err != nil {
		return int64(n) + bw.Offset(), err
	}
	return int64(n) + bw.Offset(), nil
}

func readSegStream[K cmp.Ordered, V any](r io.Reader, codec segCodec[V], opts []Option) (*Store[K, V], error) {
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("store: reading segment magic: %w", err)
	}
	if string(magic) != segMagic {
		return nil, fmt.Errorf("store: not a segment file (magic %q)", magic)
	}
	br := blockio.NewReader(r)
	var hdr segHeader
	if err := readGobFrame(br, tagSegHeader, &hdr); err != nil {
		return nil, err
	}
	if hdr.Version != segVersion {
		return nil, fmt.Errorf("store: segment version %d, this build reads %d", hdr.Version, segVersion)
	}
	if hdr.Payload != codec.kind() {
		return nil, fmt.Errorf("store: segment payload kind %d where %d expected (a DB run segment and a plain Store segment are not interchangeable)",
			hdr.Payload, codec.kind())
	}
	kind := layout.Kind(hdr.Layout)
	switch kind {
	case layout.Sorted, layout.BST, layout.BTree, layout.VEB:
	default:
		return nil, fmt.Errorf("store: segment names unknown layout %d", hdr.Layout)
	}
	if hdr.B < 1 || hdr.Records < 1 || len(hdr.ShardLens) < 1 || len(hdr.ShardLens) > hdr.Records {
		return nil, fmt.Errorf("store: segment header malformed (records=%d shards=%d b=%d)",
			hdr.Records, len(hdr.ShardLens), hdr.B)
	}
	total := 0
	for _, l := range hdr.ShardLens {
		if l < 1 || l > hdr.Records-total {
			return nil, fmt.Errorf("store: segment shard lengths %v inconsistent with %d records",
				hdr.ShardLens, hdr.Records)
		}
		total += l
	}
	if total != hdr.Records {
		return nil, fmt.Errorf("store: segment shard lengths sum to %d, header says %d records",
			total, hdr.Records)
	}

	workers := runtime.GOMAXPROCS(0)
	var optc Config
	for _, o := range opts {
		o(&optc)
	}
	if optc.Workers >= 1 {
		workers = optc.Workers
	}
	s := &Store[K, V]{
		cfg: Config{
			Shards:     len(hdr.ShardLens),
			Layout:     kind,
			B:          hdr.B,
			Workers:    workers,
			Algorithm:  perm.Algorithm(hdr.Algorithm),
			Duplicates: DuplicatePolicy(hdr.Duplicates),
		},
		keys:   make([]K, hdr.Records),
		shards: make([]shard[K], len(hdr.ShardLens)),
		fences: make([]K, len(hdr.ShardLens)),
	}
	if hdr.HasVals {
		s.vals = make([]V, hdr.Records)
	}
	off := 0
	for i, l := range hdr.ShardLens {
		// Decode the shard's permuted arrays directly into the store's
		// backing slices — the read path's whole job is this copy-free
		// landing.
		if err := readGobSlice(br, tagSegKeys, l, s.keys[off:off:off+l]); err != nil {
			return nil, err
		}
		if hdr.HasVals {
			if err := codec.readShard(br, l, s.vals[off:off:off+l]); err != nil {
				return nil, err
			}
		}
		data := s.keys[off : off+l : off+l]
		s.shards[i] = shard[K]{off: off, idx: search.NewIndex(data, kind, hdr.B)}
		// The fence is the shard's smallest key: in-order rank 0, located
		// by index arithmetic in the permuted array — no sorted copy of
		// the shard ever exists on the read path.
		s.fences[i] = s.shards[i].idx.AtRank(0)
		off += l
	}
	var tr segTrailer
	if err := readGobFrame(br, tagSegTrailer, &tr); err != nil {
		return nil, fmt.Errorf("store: segment trailer missing (file truncated?): %w", err)
	}
	if tr.Records != hdr.Records {
		return nil, fmt.Errorf("store: segment trailer says %d records, header %d", tr.Records, hdr.Records)
	}
	// Fences ascend by construction (equal fences are possible under
	// KeepAll, where an equal-key run may straddle a shard boundary).
	for i := 1; i < len(s.fences); i++ {
		if s.fences[i] < s.fences[i-1] {
			return nil, fmt.Errorf("store: segment fence keys not ascending at shard %d", i)
		}
	}
	return s, nil
}
