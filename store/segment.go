package store

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"slices"
	"unsafe"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/filter"
	"implicitlayout/internal/mmapio"
	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

// The segment codec serializes a built Store so it can be reopened
// without re-sorting or re-permuting: the per-shard key and value arrays
// are written exactly as they sit in memory — already permuted into
// their layout — so reading a segment back is a copy into fresh slices
// plus index reconstruction, never a rebuild. The permuted array IS the
// on-disk format, which is the external-memory payoff of an implicit
// (pointer-free) layout: there is nothing to deserialize.
//
// A segment is a magic prefix followed by blockio frames, in one of two
// codec versions selected at write time:
//
// Version 1 (gob; any gob-encodable K and V):
//
//	"ILSEG\x01"
//	frame 'h': gob(segHeader)      version, structure, shard lengths
//	per shard, in fence order:
//	  frame 'k': gob([]K)          the shard's permuted key array
//	  frame 'v': gob([]V)          plain payloads (omitted for key sets)
//	  — or, for DB run segments —
//	  frame 'w': gob([]V)          raw values, tombstone slots zeroed
//	  frame 't': bitmap            tombstone bit per shard position
//	frame 'e': gob(segTrailer)     record count; doubles as an end marker
//
// Version 2 (raw; fixed-width keys and values, detected via reflection
// at write time — ints, uints, floats):
//
//	"ILSEG\x01"
//	frame 'h': gob(segHeader)      as v1, plus the platform contract:
//	                               endianness tag, key/value reflect
//	                               kinds, key/value element widths
//	per shard, in fence order:
//	  frame 'p': zero padding      sized so the NEXT payload starts at a
//	                               64-byte-aligned file offset
//	  frame 'k': raw key array     the permuted keys, native byte order
//	  frame 'p': zero padding      (value frames only when HasVals)
//	  frame 'v': raw value array   plain payloads — or, for DB runs,
//	  frame 'w': raw mval array    value + tombstone flag per element
//	frame 'e': gob(segTrailer)     record count; doubles as an end marker
//
// A v2 shard array on disk is bit-identical to the array in memory, and
// every array payload starts 64-byte aligned (cache-line aligned, and —
// since the magic sits at file offset 0 and mappings are page-aligned —
// correctly aligned for any primitive element). Hierarchical-layout
// segments widen that to 4096: their page-sized layout blocks then
// coincide with OS pages of the mapping, so one cold outer descent step
// costs one page fault (see segAlignFor). Pad frames are self-sizing,
// so readers need not know which alignment the writer chose. That is
// what makes v2 mappable: OpenStore with WithMmap serves the arrays in
// place from the page cache without decoding them (see mmap.go). v1
// remains the fallback for arbitrary gob-encodable types and stays
// readable forever.
//
// Version 2.1 (raw, streamable; the DB's run segments):
//
//	"ILSEG\x01"
//	frame 'h': gob(segHeader)      as v2, but Records is 0 and
//	                               ShardLens is nil — a streaming writer
//	                               does not know them yet
//	per shard, in fence order:
//	  frame 'p' / 'k' / 'p' / 'w'  exactly as v2
//	frame 'f': gob(segFilter)      the authoritative shard lengths and
//	                               record count, plus the run's
//	                               serialized bloom filter
//	frame 'e': gob(segTrailer)     record count; doubles as an end marker
//
// v2.1 exists so a segment can be written front to back by a streaming
// compaction that learns the shard count, lengths, and filter only as
// the merged stream runs dry: everything a v2 header states up front
// rides in the trailing 'f' frame instead, readers derive each shard's
// length from its 'k' frame's size and cross-check the 'f' frame, and
// the writer never seeks. The shard frames themselves are bit-identical
// to v2 — same alignment, same mapped-serving property. The fence keys
// and the min/max key interval are not serialized at all: a reader
// recovers them from the permuted arrays by rank arithmetic (rank 0 of
// each shard, last rank of the last shard), O(1) per shard. v2 and v1
// segments stay readable forever; only DB run segments are written as
// v2.1 (plain Store.WriteTo keeps v2 — it knows its lengths up front
// and has no filter to carry).
//
// Raw frames are native-endian; the header records the byte order and
// the element widths, and a reader on a mismatched platform refuses the
// segment with a clear error instead of serving garbage. A segment
// whose version this build does not know is likewise refused — never
// guessed at, and never garbage-collected as a stray.
//
// Every frame carries a CRC-32C (see internal/blockio), so truncation
// surfaces as a torn or missing trailer and bit rot as a checksum
// mismatch. The trailer is what distinguishes "complete" from "cut
// short": a reader that has not seen frame 'e' refuses the file. (The
// zero-copy mapped open is the one deliberate exception: it verifies
// the structural frames but not the bulk arrays it never reads — see
// the contract note on OpenStore.)

const (
	segMagic = "ILSEG\x01"

	segV1  = 1 // gob frames: any gob-encodable K and V
	segV2  = 2 // raw fixed-width frames: mappable
	segV21 = 3 // v2 shard frames + trailing lengths/filter: streamable

	tagSegHeader  = 'h'
	tagSegKeys    = 'k'
	tagSegVals    = 'v'
	tagSegRawVals = 'w'
	tagSegTombs   = 't'
	tagSegPad     = 'p'
	tagSegFilter  = 'f'
	tagSegTrailer = 'e'

	// segAlign is the alignment of every v2 array payload within the
	// file: one cache line, and a multiple of every primitive's natural
	// alignment.
	segAlign = 64

	// segPageAlign is the v2 array alignment for hierarchical-layout
	// segments: one OS page, so that a mapped shard's page-sized layout
	// blocks coincide with page-cache units and a cold outer descent
	// step faults exactly one page. Readers are pad-length-agnostic, so
	// the wider padding needs no format change.
	segPageAlign = 4096
)

// segAlignFor returns the v2 array alignment for a layout: page blocks
// for the hierarchical layout, cache lines otherwise.
func segAlignFor(k layout.Kind) int {
	if k == layout.Hier {
		return segPageAlign
	}
	return segAlign
}

// errSegVersionUnknown marks a segment written by a build newer than this
// one. Open treats it specially: such a file is refused, never deleted as
// a stray — it may be real data this build simply cannot read.
var errSegVersionUnknown = errors.New("store: segment version unknown to this build")

// errSegNotMappable marks a well-formed segment that cannot be served by
// mapping (a v1 gob segment); the caller falls back to heap decoding.
var errSegNotMappable = errors.New("store: segment is not mappable")

// Payload kinds: a plain segment stores user values directly; a run
// segment stores the DB's mval payloads — as a raw value array plus a
// tombstone bitmap in v1, or as the mval array verbatim in v2 — so the
// value type itself never needs to understand deletion markers.
const (
	segPayloadPlain = iota
	segPayloadRun
)

// segHeader is frame 'h': everything needed to rebuild the Store's
// structure around the raw arrays. The platform-contract fields are set
// for v2 (raw) segments only; v1 readers ignore them and pre-v2 builds
// decode them away harmlessly (gob skips unknown fields).
type segHeader struct {
	Version    int
	Payload    int   // segPayloadPlain or segPayloadRun
	Records    int   // total records across shards
	HasVals    bool  // false for key-set stores (no value frames at all)
	Layout     int   // layout.Kind the shards are permuted into
	B          int   // B-tree node capacity the shards were built with
	Algorithm  int   // perm.Algorithm, kept for Rebuild fidelity
	Duplicates int   // DuplicatePolicy the store was built with
	ShardLens  []int // per-shard record counts, in fence order

	// v2 platform contract: raw arrays are memory dumps, so a reader
	// must be byte-order- and width-compatible with the writer or
	// refuse. KeyKind/ValKind are reflect.Kind values; ValWidth is the
	// on-disk element width — sizeof(V) for plain segments, sizeof(mval)
	// for run segments, whose elements carry the tombstone flag inline.
	Endian   string
	KeyKind  int
	KeyWidth int
	ValKind  int
	ValWidth int
}

// segTrailer is frame 'e': the completeness marker.
type segTrailer struct {
	Records int
}

// segFilter is frame 'f' of a v2.1 segment: the structural facts a
// streaming writer only knows at the end — the authoritative per-shard
// record counts (cross-checked against the sizes of the 'k' frames that
// preceded it) — plus the run's serialized bloom filter
// (filter.Marshal bytes; empty when the run has none).
type segFilter struct {
	ShardLens []int
	Records   int
	Bloom     []byte
}

// hostEndian returns this machine's byte order tag as recorded in v2
// headers.
func hostEndian() string {
	var buf [2]byte
	binary.NativeEndian.PutUint16(buf[:], 1)
	if buf[0] == 1 {
		return "little"
	}
	return "big"
}

// fixedKind reports whether t is a fixed-width primitive the raw codec
// can serialize as a memory dump — the reflection-time eligibility test
// for codec v2. Strings, structs, slices, and interfaces are not; they
// take the gob path.
func fixedKind(t reflect.Type) (reflect.Kind, bool) {
	switch k := t.Kind(); k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64:
		return k, true
	}
	return 0, false
}

// segCodec abstracts how a shard's value slice crosses the codec: one
// gob frame for plain stores, raw values + tombstone bitmap for DB runs
// (v1), or — when rawElem allows — a verbatim array dump (v2).
// readShard fills dst (length 0, capacity n — a window into the store's
// preallocated value array) with exactly n decoded payloads.
type segCodec[V any] interface {
	kind() int
	writeShard(bw *blockio.Writer, vals []V) error
	readShard(br *blockio.Reader, n int, dst []V) error
	// rawElem reports v2 eligibility: the on-disk element width and the
	// reflect kind recorded in the header (the user value's kind — for
	// run segments the element is the mval wrapper but the kind names
	// the wrapped primitive). ok is false when only gob can carry V.
	rawElem() (width int, kind reflect.Kind, ok bool)
	// rawTag is the v2 array frame tag ('v' plain, 'w' run).
	rawTag() byte
}

// plainCodec serializes values as one gob frame per shard (v1) or a raw
// array dump (v2, fixed-width V). V must be gob-encodable for v1.
type plainCodec[V any] struct{}

func (plainCodec[V]) kind() int    { return segPayloadPlain }
func (plainCodec[V]) rawTag() byte { return tagSegVals }

func (plainCodec[V]) rawElem() (int, reflect.Kind, bool) {
	k, ok := fixedKind(reflect.TypeFor[V]())
	if !ok {
		return 0, 0, false
	}
	var v V
	return int(unsafe.Sizeof(v)), k, true
}

func (plainCodec[V]) writeShard(bw *blockio.Writer, vals []V) error {
	return writeGobFrame(bw, tagSegVals, vals)
}

func (plainCodec[V]) readShard(br *blockio.Reader, n int, dst []V) error {
	return readGobSlice(br, tagSegVals, n, dst)
}

// runCodec serializes the DB's mval payloads. In v1 the raw user values
// travel in one gob frame (tombstone slots hold the zero value) and the
// tombstone bits in a second, so the wire format needs no knowledge of
// mval's layout. In v2 the mval array itself is the payload: for a
// fixed-width V, mval[V] — value plus tombstone flag — is itself a
// fixed-width struct, so the dump stays mappable and the tombstone bit
// rides at its in-memory offset. (The recorded ValWidth pins the struct
// size; mval's field order is part of the v2 format and must not change
// without a version bump.)
type runCodec[V any] struct{}

func (runCodec[V]) kind() int    { return segPayloadRun }
func (runCodec[V]) rawTag() byte { return tagSegRawVals }

func (runCodec[V]) rawElem() (int, reflect.Kind, bool) {
	k, ok := fixedKind(reflect.TypeFor[V]())
	if !ok {
		return 0, 0, false
	}
	return int(unsafe.Sizeof(mval[V]{})), k, true
}

func (runCodec[V]) writeShard(bw *blockio.Writer, vals []mval[V]) error {
	raw := make([]V, len(vals))
	dead := make([]byte, (len(vals)+7)/8)
	for i, mv := range vals {
		if mv.dead {
			dead[i/8] |= 1 << (i % 8)
		} else {
			raw[i] = mv.val
		}
	}
	if err := writeGobFrame(bw, tagSegRawVals, raw); err != nil {
		return err
	}
	return bw.WriteBlock(tagSegTombs, dead)
}

func (runCodec[V]) readShard(br *blockio.Reader, n int, dst []mval[V]) error {
	// The wire holds raw values and a bitmap, the store holds mval — one
	// scratch slice for the raw decode is inherent to the translation.
	raw := make([]V, 0, n)
	if err := readGobSlice(br, tagSegRawVals, n, raw); err != nil {
		return err
	}
	raw = raw[:n]
	tag, dead, err := br.Next()
	if err != nil {
		return fmt.Errorf("store: segment tombstone bitmap: %w", err)
	}
	if tag != tagSegTombs || len(dead) != (n+7)/8 {
		return fmt.Errorf("store: segment tombstone bitmap malformed (tag %q, %d bytes for %d records)",
			tag, len(dead), n)
	}
	vals := dst[:n]
	for i := range vals {
		if dead[i/8]&(1<<(i%8)) != 0 {
			vals[i] = mval[V]{dead: true}
		} else {
			vals[i] = mval[V]{val: raw[i]}
		}
	}
	return nil
}

// writeGobFrame and readGobFrame are the gob-payload-in-a-frame codec
// shared by the segment and manifest formats.
func writeGobFrame(bw *blockio.Writer, tag byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("store: encoding frame %q: %w", tag, err)
	}
	return bw.WriteBlock(tag, buf.Bytes())
}

func readGobFrame(br *blockio.Reader, want byte, v any) error {
	tag, payload, err := br.Next()
	if err != nil {
		return fmt.Errorf("store: reading frame %q: %w", want, err)
	}
	if tag != want {
		return fmt.Errorf("store: frame %q where %q expected", tag, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("store: decoding frame %q: %w", want, err)
	}
	return nil
}

// readGobSlice decodes a slice frame of exactly n elements, steering
// gob's allocation into dst (length 0, capacity n): gob reuses a
// destination slice whose capacity suffices, so a segment shard decodes
// straight into the store's preallocated backing array with no scratch
// copy — the "reopen is a read, not a rebuild" property, applied to
// allocation too. If gob nevertheless reallocated (a malformed frame
// longer than the header promised would, before failing the length
// check), the decoded data is copied back so the contract holds.
func readGobSlice[T any](br *blockio.Reader, tag byte, n int, dst []T) error {
	s := dst
	if err := readGobFrame(br, tag, &s); err != nil {
		return err
	}
	if len(s) != n {
		return fmt.Errorf("store: segment frame %q holds %d elements, header says %d", tag, len(s), n)
	}
	if n > 0 && &s[0] != &dst[:1][0] {
		copy(dst[:n], s)
	}
	return nil
}

// segZeros backs pad-frame payloads (at most segPageAlign-1 bytes of
// them).
var segZeros [segPageAlign]byte

// writeRawFrame writes the v2 form of one shard array: a pad frame sized
// so the array payload that follows starts at an align-aligned stream
// offset (base is the writer's offset within the stream — the magic
// length), then the raw array bytes themselves.
func writeRawFrame(bw *blockio.Writer, base int64, tag byte, payload []byte, align int64) error {
	pad := int((align - (base+bw.Offset()+2*blockio.HeaderSize)%align) % align)
	if err := bw.WriteBlock(tagSegPad, segZeros[:pad]); err != nil {
		return err
	}
	return bw.WriteBlock(tag, payload)
}

// readRawFrame reads the v2 form of one shard array from a frame stream:
// the pad frame, then the array frame, whose payload must hold exactly n
// elements of the given width — a misaligned length (truncated or padded
// raw data that somehow kept its checksum) is refused here.
func readRawFrame(br *blockio.Reader, want byte, n, width int) ([]byte, error) {
	tag, _, err := br.Next()
	if err != nil {
		return nil, fmt.Errorf("store: reading pad before frame %q: %w", want, err)
	}
	if tag != tagSegPad {
		return nil, fmt.Errorf("store: frame %q where pad expected", tag)
	}
	tag, payload, err := br.Next()
	if err != nil {
		return nil, fmt.Errorf("store: reading frame %q: %w", want, err)
	}
	if tag != want {
		return nil, fmt.Errorf("store: frame %q where %q expected", tag, want)
	}
	if len(payload) != n*width {
		return nil, fmt.Errorf("store: segment frame %q holds %d bytes, want %d records × %d bytes",
			want, len(payload), n, width)
	}
	return payload, nil
}

// WriteTo serializes the store to w in the segment format, returning the
// byte count written. The shards' permuted arrays go out verbatim, so a
// later ReadStore serves queries with zero rebuild work. When both K and
// V are fixed-width primitives the codec-v2 raw format is chosen — the
// shard arrays become 64-byte-aligned memory dumps a later OpenStore
// can map and serve zero-copy — and the gob v1 format otherwise; both
// sides of the choice read back identically. For v1, K and V must be
// gob-encodable. WriteTo implements io.WriterTo and never mutates the
// store.
//
// The stream is laid out assuming it starts at offset 0 of its file
// (segment files always do): writing it at a nonzero offset breaks v2's
// alignment guarantee for a future mapped open, though heap decoding
// still works.
func (s *Store[K, V]) WriteTo(w io.Writer) (int64, error) {
	return writeSegStream(w, s, plainCodec[V]{})
}

// ReadStore reconstructs a Store from a stream produced by WriteTo. The
// structural parameters (layout, shard count, B, duplicate policy) come
// from the stream itself; of the options only WithWorkers is honored —
// it bounds the parallelism of future Export/Rebuild calls on the
// reopened store. The stream is checksummed frame by frame: a truncated
// or bit-flipped segment is rejected, never served. (To serve a segment
// file zero-copy instead of decoding it, see OpenStore.)
func ReadStore[K cmp.Ordered, V any](r io.Reader, opts ...Option) (*Store[K, V], error) {
	return readSegStream[K](r, plainCodec[V]{}, opts)
}

// writeRunStream serializes a DB run's Store (mval payloads) — same
// format, run payload kind.
func writeRunStream[K cmp.Ordered, V any](w io.Writer, st *Store[K, mval[V]]) (int64, error) {
	return writeSegStream(w, st, runCodec[V]{})
}

// readRunStream reopens a DB run segment from a stream with the given
// Export parallelism — the heap-decode path; openSegFile adds the
// mapped alternative for file-backed runs.
func readRunStream[K cmp.Ordered, V any](r io.Reader, workers int) (*Store[K, mval[V]], error) {
	return readSegStream[K](r, runCodec[V]{}, []Option{WithWorkers(workers)})
}

// segWriteVersion picks the codec version for a store: v1 (gob) unless
// every array is a fixed-width memory dump; then v2.1 for DB run
// segments — the streamable format that carries the run's filter — and
// v2 for plain stores, whose format has no filter to carry.
func segWriteVersion[K cmp.Ordered, V any](s *Store[K, V], codec segCodec[V]) int {
	if _, ok := fixedKind(reflect.TypeFor[K]()); !ok {
		return segV1
	}
	if s.hasVals {
		if _, _, ok := codec.rawElem(); !ok {
			return segV1
		}
	}
	if codec.kind() == segPayloadRun {
		return segV21
	}
	return segV2
}

func writeSegStream[K cmp.Ordered, V any](w io.Writer, s *Store[K, V], codec segCodec[V]) (int64, error) {
	return writeSegStreamVersion(w, s, codec, segWriteVersion(s, codec))
}

func writeSegStreamVersion[K cmp.Ordered, V any](w io.Writer, s *Store[K, V], codec segCodec[V], version int) (int64, error) {
	n, err := io.WriteString(w, segMagic)
	if err != nil {
		return int64(n), err
	}
	base := int64(n)
	bw := blockio.NewWriter(w)
	lens := make([]int, len(s.shards))
	for i, sh := range s.shards {
		lens[i] = sh.idx.Len()
	}
	hdr := segHeader{
		Version:    version,
		Payload:    codec.kind(),
		Records:    s.n,
		HasVals:    s.hasVals,
		Layout:     int(s.cfg.Layout),
		B:          s.cfg.B,
		Algorithm:  int(s.cfg.Algorithm),
		Duplicates: int(s.cfg.Duplicates),
		ShardLens:  lens,
	}
	if version == segV21 {
		// The streamable format states lengths only in the trailing 'f'
		// frame; a buffered writer follows the same shape so readers see
		// one v2.1, not two.
		hdr.Records = 0
		hdr.ShardLens = nil
	}
	if version != segV1 {
		kk, _ := fixedKind(reflect.TypeFor[K]())
		var zk K
		hdr.Endian = hostEndian()
		hdr.KeyKind = int(kk)
		hdr.KeyWidth = int(unsafe.Sizeof(zk))
		if s.hasVals {
			vw, vk, _ := codec.rawElem()
			hdr.ValKind = int(vk)
			hdr.ValWidth = vw
		}
		// A shard's raw array is one frame, and must be: a mapped shard
		// is served as one contiguous region, so it cannot be chunked.
		// blockio caps a frame at MaxBlock (1 GiB) — reject here with an
		// actionable error instead of failing mid-stream.
		width := max(hdr.KeyWidth, hdr.ValWidth)
		for i, l := range lens {
			if l > blockio.MaxBlock/width {
				return int64(n), fmt.Errorf("store: shard %d holds %d records × %d bytes, over the %d-byte per-shard frame cap of the raw segment codec; build with more shards (WithShards) to persist a dataset this large",
					i, l, width, blockio.MaxBlock)
			}
		}
	}
	if err := writeGobFrame(bw, tagSegHeader, hdr); err != nil {
		return base + bw.Offset(), err
	}
	align := int64(segAlignFor(s.cfg.Layout))
	for i, sh := range s.shards {
		if version != segV1 {
			if err := writeRawFrame(bw, base, tagSegKeys, mmapio.Bytes(sh.idx.Data()), align); err != nil {
				return base + bw.Offset(), err
			}
			if s.hasVals {
				if err := writeRawFrame(bw, base, codec.rawTag(), mmapio.Bytes(s.svals[i]), align); err != nil {
					return base + bw.Offset(), err
				}
			}
			continue
		}
		if err := writeGobFrame(bw, tagSegKeys, sh.idx.Data()); err != nil {
			return base + bw.Offset(), err
		}
		if s.hasVals {
			if err := codec.writeShard(bw, s.svals[i]); err != nil {
				return base + bw.Offset(), err
			}
		}
	}
	if version == segV21 {
		sf := segFilter{ShardLens: lens, Records: s.n}
		if s.bloom != nil {
			sf.Bloom = s.bloom.Marshal()
		}
		if err := writeGobFrame(bw, tagSegFilter, sf); err != nil {
			return base + bw.Offset(), err
		}
	}
	if err := writeGobFrame(bw, tagSegTrailer, segTrailer{Records: s.n}); err != nil {
		return base + bw.Offset(), err
	}
	return base + bw.Offset(), nil
}

// validateSegHeader runs the structural checks shared by every reader:
// known version and layout, consistent record and shard counts, and —
// for v2 — the platform contract (byte order, key/value kinds and
// widths must match this build on this machine, or the raw arrays would
// be served as garbage).
func validateSegHeader[K cmp.Ordered, V any](hdr *segHeader, codec segCodec[V]) error {
	switch hdr.Version {
	case segV1, segV2, segV21:
	default:
		return fmt.Errorf("%w: version %d, this build reads v%d (gob), v%d (raw), and v%d (raw streamable) — written by a newer build?",
			errSegVersionUnknown, hdr.Version, segV1, segV2, segV21)
	}
	if hdr.Payload != codec.kind() {
		return fmt.Errorf("store: segment payload kind %d where %d expected (a DB run segment and a plain Store segment are not interchangeable)",
			hdr.Payload, codec.kind())
	}
	switch layout.Kind(hdr.Layout) {
	case layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier:
	default:
		return fmt.Errorf("store: segment names unknown layout %d", hdr.Layout)
	}
	if hdr.B < 1 {
		return fmt.Errorf("store: segment header malformed (b=%d)", hdr.B)
	}
	if hdr.Version == segV21 {
		// The streamable format learns its lengths from the shard frames
		// and the 'f' frame; the header must not claim any.
		if hdr.Records != 0 || hdr.ShardLens != nil {
			return fmt.Errorf("store: v2.1 segment header claims records=%d shards=%d; lengths belong in the filter frame",
				hdr.Records, len(hdr.ShardLens))
		}
	} else if err := validateShardLens(hdr.ShardLens, hdr.Records); err != nil {
		return err
	}
	if hdr.Version != segV1 {
		if host := hostEndian(); hdr.Endian != host {
			return fmt.Errorf("store: segment raw arrays are %s-endian, this host is %s-endian — refusing to serve byte-swapped data",
				hdr.Endian, host)
		}
		kk, kok := fixedKind(reflect.TypeFor[K]())
		var zk K
		if !kok {
			return fmt.Errorf("store: segment holds raw fixed-width keys but key type %T is not fixed-width", zk)
		}
		if hdr.KeyKind != int(kk) || hdr.KeyWidth != int(unsafe.Sizeof(zk)) {
			return fmt.Errorf("store: segment keys are %v (%d bytes), this store's key type %T is %v (%d bytes)",
				reflect.Kind(hdr.KeyKind), hdr.KeyWidth, zk, kk, unsafe.Sizeof(zk))
		}
		if hdr.HasVals {
			vw, vk, ok := codec.rawElem()
			if !ok {
				return fmt.Errorf("store: segment holds raw fixed-width values but this store's value type is not fixed-width")
			}
			if hdr.ValKind != int(vk) || hdr.ValWidth != vw {
				return fmt.Errorf("store: segment values are %v (%d bytes/element), this store expects %v (%d bytes/element)",
					reflect.Kind(hdr.ValKind), hdr.ValWidth, vk, vw)
			}
		}
	}
	return nil
}

// validateShardLens checks a segment's per-shard record counts: at
// least one shard, every shard non-empty, and the lengths summing to
// the stated record count. v1/v2 readers apply it to the header's
// lengths, v2.1 readers to the trailing filter frame's.
func validateShardLens(lens []int, records int) error {
	if records < 1 || len(lens) < 1 || len(lens) > records {
		return fmt.Errorf("store: segment structure malformed (records=%d shards=%d)",
			records, len(lens))
	}
	total := 0
	for _, l := range lens {
		if l < 1 || l > records-total {
			return fmt.Errorf("store: segment shard lengths %v inconsistent with %d records",
				lens, records)
		}
		total += l
	}
	if total != records {
		return fmt.Errorf("store: segment shard lengths sum to %d, header says %d records",
			total, records)
	}
	return nil
}

// newSegStore allocates the Store shell every reader fills in: config
// recovered from the header, worker bound from the options.
func newSegStore[K cmp.Ordered, V any](hdr *segHeader, opts []Option) *Store[K, V] {
	workers := runtime.GOMAXPROCS(0)
	var optc Config
	for _, o := range opts {
		o(&optc)
	}
	if optc.Workers >= 1 {
		workers = optc.Workers
	}
	s := &Store[K, V]{
		cfg: Config{
			Shards:     len(hdr.ShardLens),
			Layout:     layout.Kind(hdr.Layout),
			B:          hdr.B,
			Workers:    workers,
			Algorithm:  perm.Algorithm(hdr.Algorithm),
			Duplicates: DuplicatePolicy(hdr.Duplicates),
		},
		n:       hdr.Records,
		hasVals: hdr.HasVals,
		shards:  make([]shard[K], len(hdr.ShardLens)),
		fences:  make([]K, len(hdr.ShardLens)),
	}
	if hdr.HasVals {
		s.svals = make([][]V, len(hdr.ShardLens))
	}
	return s
}

// checkFences verifies the recovered fences ascend. (Equal fences are
// possible under KeepAll, where an equal-key run may straddle a shard
// boundary.)
func checkFences[K cmp.Ordered, V any](s *Store[K, V]) error {
	for i := 1; i < len(s.fences); i++ {
		if s.fences[i] < s.fences[i-1] {
			return fmt.Errorf("store: segment fence keys not ascending at shard %d", i)
		}
	}
	return nil
}

func readSegStream[K cmp.Ordered, V any](r io.Reader, codec segCodec[V], opts []Option) (*Store[K, V], error) {
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("store: reading segment magic: %w", err)
	}
	if string(magic) != segMagic {
		return nil, fmt.Errorf("store: not a segment file (magic %q)", magic)
	}
	br := blockio.NewReader(r)
	var hdr segHeader
	if err := readGobFrame(br, tagSegHeader, &hdr); err != nil {
		return nil, err
	}
	if err := validateSegHeader[K](&hdr, codec); err != nil {
		return nil, err
	}
	if hdr.Version == segV21 {
		return readSegStreamV21[K](br, &hdr, codec, opts)
	}
	s := newSegStore[K, V](&hdr, opts)
	kind := s.cfg.Layout

	// The heap backing: one contiguous array per record column, shards
	// windowed back to back, exactly as Build leaves them.
	keys := make([]K, hdr.Records)
	var vals []V
	if hdr.HasVals {
		vals = make([]V, hdr.Records)
	}
	off := 0
	for i, l := range hdr.ShardLens {
		// Decode the shard's permuted arrays directly into the store's
		// backing slices — the read path's whole job is this copy-free
		// landing.
		if hdr.Version == segV2 {
			raw, err := readRawFrame(br, tagSegKeys, l, hdr.KeyWidth)
			if err != nil {
				return nil, err
			}
			copy(mmapio.Bytes(keys[off:off+l]), raw)
			if hdr.HasVals {
				raw, err := readRawFrame(br, codec.rawTag(), l, hdr.ValWidth)
				if err != nil {
					return nil, err
				}
				copy(mmapio.Bytes(vals[off:off+l]), raw)
			}
		} else {
			if err := readGobSlice(br, tagSegKeys, l, keys[off:off:off+l]); err != nil {
				return nil, err
			}
			if hdr.HasVals {
				if err := codec.readShard(br, l, vals[off:off:off+l]); err != nil {
					return nil, err
				}
			}
		}
		data := keys[off : off+l : off+l]
		s.shards[i] = shard[K]{off: off, idx: search.NewIndex(data, kind, hdr.B)}
		if hdr.HasVals {
			s.svals[i] = vals[off : off+l : off+l]
		}
		// The fence is the shard's smallest key: in-order rank 0, located
		// by index arithmetic in the permuted array — no sorted copy of
		// the shard ever exists on the read path.
		s.fences[i] = s.shards[i].idx.AtRank(0)
		off += l
	}
	last := s.shards[len(s.shards)-1].idx
	s.maxKey = last.AtRank(last.Len() - 1)
	var tr segTrailer
	if err := readGobFrame(br, tagSegTrailer, &tr); err != nil {
		return nil, fmt.Errorf("store: segment trailer missing (file truncated?): %w", err)
	}
	if tr.Records != hdr.Records {
		return nil, fmt.Errorf("store: segment trailer says %d records, header %d", tr.Records, hdr.Records)
	}
	if err := checkFences(s); err != nil {
		return nil, err
	}
	return s, nil
}

// readSegStreamV21 reads the streamable v2.1 format: the shard frames
// arrive before their lengths are known, so the reader derives each
// shard's record count from its key frame's size, collects the payloads
// (blockio hands each frame a fresh slice, so retaining them is safe),
// and only then — at the 'f' frame — learns the writer's view of the
// structure, which must agree exactly with what was observed.
func readSegStreamV21[K cmp.Ordered, V any](br *blockio.Reader, hdr *segHeader, codec segCodec[V], opts []Option) (*Store[K, V], error) {
	var rawKeys, rawVals [][]byte
	var sf segFilter
	for {
		tag, payload, err := br.Next()
		if err != nil {
			return nil, fmt.Errorf("store: reading segment shard frames (file truncated?): %w", err)
		}
		if tag == tagSegFilter {
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&sf); err != nil {
				return nil, fmt.Errorf("store: decoding frame %q: %w", tagSegFilter, err)
			}
			break
		}
		if tag != tagSegPad {
			return nil, fmt.Errorf("store: frame %q where pad or filter expected", tag)
		}
		tag, payload, err = br.Next()
		if err != nil {
			return nil, fmt.Errorf("store: reading frame %q: %w", tagSegKeys, err)
		}
		if tag != tagSegKeys {
			return nil, fmt.Errorf("store: frame %q where %q expected", tag, tagSegKeys)
		}
		if len(payload) == 0 || len(payload)%hdr.KeyWidth != 0 {
			return nil, fmt.Errorf("store: segment frame %q holds %d bytes, not a positive multiple of the %d-byte key width",
				tagSegKeys, len(payload), hdr.KeyWidth)
		}
		l := len(payload) / hdr.KeyWidth
		rawKeys = append(rawKeys, payload)
		if hdr.HasVals {
			raw, err := readRawFrame(br, codec.rawTag(), l, hdr.ValWidth)
			if err != nil {
				return nil, err
			}
			rawVals = append(rawVals, raw)
		}
	}
	// The observed structure is authoritative only if the 'f' frame
	// agrees: a mismatch means a frame went missing or a foreign frame
	// slipped in, both of which somehow kept their checksums — refuse.
	lens := make([]int, len(rawKeys))
	records := 0
	for i, rk := range rawKeys {
		lens[i] = len(rk) / hdr.KeyWidth
		records += lens[i]
	}
	if err := validateShardLens(sf.ShardLens, sf.Records); err != nil {
		return nil, err
	}
	if sf.Records != records || !slices.Equal(sf.ShardLens, lens) {
		return nil, fmt.Errorf("store: segment filter frame says %d records in shards %v, stream holds %d in %v",
			sf.Records, sf.ShardLens, records, lens)
	}
	hdr.Records = records
	hdr.ShardLens = lens
	s := newSegStore[K, V](hdr, opts)
	kind := s.cfg.Layout
	keys := make([]K, records)
	var vals []V
	if hdr.HasVals {
		vals = make([]V, records)
	}
	off := 0
	for i, l := range lens {
		copy(mmapio.Bytes(keys[off:off+l]), rawKeys[i])
		if hdr.HasVals {
			copy(mmapio.Bytes(vals[off:off+l]), rawVals[i])
		}
		data := keys[off : off+l : off+l]
		s.shards[i] = shard[K]{off: off, idx: search.NewIndex(data, kind, hdr.B)}
		if hdr.HasVals {
			s.svals[i] = vals[off : off+l : off+l]
		}
		s.fences[i] = s.shards[i].idx.AtRank(0)
		off += l
	}
	last := s.shards[len(s.shards)-1].idx
	s.maxKey = last.AtRank(last.Len() - 1)
	if len(sf.Bloom) > 0 {
		b, err := filter.Unmarshal(sf.Bloom)
		if err != nil {
			return nil, fmt.Errorf("store: segment run filter: %w", err)
		}
		s.bloom = b
	}
	var tr segTrailer
	if err := readGobFrame(br, tagSegTrailer, &tr); err != nil {
		return nil, fmt.Errorf("store: segment trailer missing (file truncated?): %w", err)
	}
	if tr.Records != records {
		return nil, fmt.Errorf("store: segment trailer says %d records, shard frames hold %d", tr.Records, records)
	}
	if err := checkFences(s); err != nil {
		return nil, err
	}
	return s, nil
}

// probeSegmentVersion reads just enough of a segment file to learn its
// codec version. Open uses it before garbage-collecting a stray segment:
// a version this build does not know marks a file written by a newer
// build, which must be refused — surfaced, not silently deleted.
func probeSegmentVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, fmt.Errorf("store: reading segment magic: %w", err)
	}
	if string(magic) != segMagic {
		return 0, fmt.Errorf("store: not a segment file (magic %q)", magic)
	}
	var hdr segHeader
	if err := readGobFrame(blockio.NewReader(f), tagSegHeader, &hdr); err != nil {
		return 0, err
	}
	return hdr.Version, nil
}
