package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/mmapio"
	"implicitlayout/layout"
)

// writeStoreFile persists st to a fresh file under t.TempDir and returns
// the path.
func writeStoreFile(t *testing.T, st *Store[int64, uint64]) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func buildFixedRandom(t *testing.T, n int, opts ...Option) *Store[int64, uint64] {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	keys := make([]int64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(4 * n))
		vals[i] = uint64(keys[i]) * 3
	}
	st, err := Build(keys, vals, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestOpenStoreParity is the heap-vs-mmap half of the parity suite:
// every query surface must answer identically whether the segment was
// decoded onto the heap or mapped, across all layouts.
func TestOpenStoreParity(t *testing.T) {
	const n = 3000
	for _, kind := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier} {
		for _, mmap := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/mmap=%v", kind, mmap), func(t *testing.T) {
				orig := buildFixedRandom(t, n, WithLayout(kind), WithShards(4), WithB(4))
				path := writeStoreFile(t, orig)
				got, err := OpenStore[int64, uint64](path, WithMmap(mmap))
				if err != nil {
					t.Fatal(err)
				}
				if want := mmap && mmapio.Supported; got.Mapped() != want {
					t.Fatalf("Mapped() = %v, want %v", got.Mapped(), want)
				}
				assertStoreParity(t, orig, got, n)
			})
		}
	}
}

// assertStoreParity checks Get, GetBatch, Predecessor, Range, and Scan
// agree between two stores over a probe set spanning hits and misses.
func assertStoreParity(t *testing.T, want, got *Store[int64, uint64], n int) {
	t.Helper()
	if got.Len() != want.Len() || got.Shards() != want.Shards() || got.Layout() != want.Layout() {
		t.Fatalf("shape differs: %d/%d records, %d/%d shards, %v/%v layout",
			got.Len(), want.Len(), got.Shards(), want.Shards(), got.Layout(), want.Layout())
	}
	probes := make([]int64, 0, 2*n)
	for k := int64(-1); k < int64(4*n+1); k += 3 {
		probes = append(probes, k)
	}
	for _, k := range probes {
		wv, wok := want.Get(k)
		gv, gok := got.Get(k)
		if wok != gok || wv != gv {
			t.Fatalf("Get(%d) = %d, %v; want %d, %v", k, gv, gok, wv, wok)
		}
		wk, wpv, wpok := want.Predecessor(k)
		gk, gpv, gpok := got.Predecessor(k)
		if wpok != gpok || wk != gk || wpv != gpv {
			t.Fatalf("Predecessor(%d) = (%d, %d, %v); want (%d, %d, %v)", k, gk, gpv, gpok, wk, wpv, wpok)
		}
	}
	wb := want.GetBatch(probes, 4)
	gb := got.GetBatch(probes, 4)
	if !slices.Equal(wb.Vals, gb.Vals) || !slices.Equal(wb.Found, gb.Found) || wb.Hits != gb.Hits {
		t.Fatalf("GetBatch differs: %d/%d hits", gb.Hits, wb.Hits)
	}
	type kv struct {
		k int64
		v uint64
	}
	collect := func(s *Store[int64, uint64], lo, hi int64, all bool) []kv {
		var out []kv
		y := func(k int64, v uint64) bool { out = append(out, kv{k, v}); return true }
		if all {
			s.Scan(y)
		} else {
			s.Range(lo, hi, y)
		}
		return out
	}
	if w, g := collect(want, 0, 0, true), collect(got, 0, 0, true); !slices.Equal(w, g) {
		t.Fatalf("Scan differs: %d vs %d records", len(g), len(w))
	}
	lo, hi := int64(n/3), int64(2*n/3)
	if w, g := collect(want, lo, hi, false), collect(got, lo, hi, false); !slices.Equal(w, g) {
		t.Fatalf("Range(%d, %d) differs: %d vs %d records", lo, hi, len(g), len(w))
	}
	wk, wv := want.Export()
	gk, gv := got.Export()
	if !slices.Equal(wk, gk) || !slices.Equal(wv, gv) {
		t.Fatalf("Export differs")
	}
}

// TestDBMmapParity is the DB half of the parity suite: a durable
// directory with overwrites, deletes, and several segments must serve
// identical Get/Range/Scan answers reopened cold in heap mode and in
// cold-serve (mmap) mode, across all tree layouts.
func TestDBMmapParity(t *testing.T) {
	const n = 4000
	for _, kind := range []layout.Kind{layout.BST, layout.BTree, layout.VEB, layout.Hier} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := DBConfig{
				MemLimit: 512, Fanout: 3,
				Store: []Option{WithLayout(kind), WithB(4), WithShards(2)},
			}
			db, err := Open[uint64, uint64](dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < n; i++ {
				k := uint64(rng.Intn(n))
				switch rng.Intn(10) {
				case 0:
					if err := db.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(ref, k)
				default:
					v := uint64(i)
					if err := db.Put(k, v); err != nil {
						t.Fatal(err)
					}
					ref[k] = v
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			heapCfg, mmapCfg := cfg, cfg
			mmapCfg.Mmap = true
			hdb, err := Open[uint64, uint64](dir+"", heapCfg)
			if err != nil {
				t.Fatal(err)
			}
			if st := hdb.Stats(); st.MappedRuns != 0 {
				t.Fatalf("heap reopen reports %d mapped runs", st.MappedRuns)
			}
			if err := hdb.Close(); err != nil {
				t.Fatal(err)
			}
			mdb, err := Open[uint64, uint64](dir, mmapCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer mdb.Close()
			if st := mdb.Stats(); mmapio.Supported && (st.DiskRuns == 0 || st.MappedRuns != st.DiskRuns) {
				t.Fatalf("cold-serve reopen: %d of %d disk runs mapped", st.MappedRuns, st.DiskRuns)
			}

			for k := uint64(0); k < n; k++ {
				wv, wok := ref[k]
				gv, gok := mdb.Get(k)
				if wok != gok || wv != gv {
					t.Fatalf("mmap Get(%d) = %d, %v; want %d, %v", k, gv, gok, wv, wok)
				}
			}
			var scanned []uint64
			prev := uint64(0)
			first := true
			mdb.Scan(func(k, v uint64) bool {
				if !first && k <= prev {
					t.Fatalf("Scan out of order: %d after %d", k, prev)
				}
				first, prev = false, k
				if ref[k] != v {
					t.Fatalf("Scan yielded (%d, %d), want value %d", k, v, ref[k])
				}
				scanned = append(scanned, k)
				return true
			})
			if len(scanned) != len(ref) {
				t.Fatalf("Scan yielded %d records, reference holds %d", len(scanned), len(ref))
			}

			// Keep writing against the mapped runs: flushes and merges must
			// read through the mappings (copy-out via Export) and the DB
			// must stay consistent while mapped and heap runs coexist.
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(n))
				v := uint64(1_000_000 + i)
				if err := mdb.Put(k, v); err != nil {
					t.Fatal(err)
				}
				ref[k] = v
			}
			if err := mdb.Flush(); err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < n; k++ {
				wv, wok := ref[k]
				gv, gok := mdb.Get(k)
				if wok != gok || wv != gv {
					t.Fatalf("post-compaction Get(%d) = %d, %v; want %d, %v", k, gv, gok, wv, wok)
				}
			}
		})
	}
}

// TestDBMmapRecoversWAL: cold-serve mode still replays WALs — mapping
// only changes how manifest segments are served, not recovery.
func TestDBMmapRecoversWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 64}
	db, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := db.Put(i, i*7); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: stop without flushing (the WAL keeps the records).
	crashDB(db)

	cfg.Mmap = true
	re, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := uint64(0); i < 200; i++ {
		if v, ok := re.Get(i); !ok || v != i*7 {
			t.Fatalf("after WAL recovery, Get(%d) = %d, %v; want %d", i, v, ok, i*7)
		}
	}
}

// TestMmapV1Fallback: v1 segments — whether forced (files written before
// codec v2 existed) or inherent (non-fixed-width types) — still open and
// serve correctly under a mmap request, on the heap.
func TestMmapV1Fallback(t *testing.T) {
	// A fixed-width store written in the v1 format, as a pre-v2 build
	// would have.
	orig := buildFixedRandom(t, 500, WithShards(3))
	path := filepath.Join(t.TempDir(), "v1.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeSegStreamVersion(f, orig, plainCodec[uint64]{}, segV1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := OpenStore[int64, uint64](path, WithMmap(true))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mapped() {
		t.Fatal("a v1 segment cannot be mapped, yet Mapped() is true")
	}
	assertStoreParity(t, orig, got, 500)

	// A string-valued store is v1 by nature; WriteTo must pick v1 and the
	// mmap request must degrade to a working heap open.
	keys := []uint64{3, 1, 2}
	vals := []string{"c", "a", "b"}
	sst, err := Build(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(t.TempDir(), "str.seg")
	sf, err := os.Create(spath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sst.WriteTo(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	sgot, err := OpenStore[uint64, string](spath, WithMmap(true))
	if err != nil {
		t.Fatal(err)
	}
	if sgot.Mapped() {
		t.Fatal("string-valued segment mapped")
	}
	if v, ok := sgot.Get(2); !ok || v != "b" {
		t.Fatalf("Get(2) = %q, %v", v, ok)
	}
}

// TestMmapKeySet: a keys-only store has no value frames at all; the v2
// format and the mapped open must both handle that shape.
func TestMmapKeySet(t *testing.T) {
	keys := []uint64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	st, err := BuildSet(keys, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "set.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := OpenStore[uint64, struct{}](path, WithMmap(true))
	if err != nil {
		t.Fatal(err)
	}
	if got.HasValues() {
		t.Fatal("reopened key set reports values")
	}
	if mmapio.Supported && !got.Mapped() {
		t.Fatal("key-set segment not mapped")
	}
	for _, k := range keys {
		if !got.Contains(k) {
			t.Fatalf("mapped set lost key %d", k)
		}
	}
	if got.Contains(10) {
		t.Fatal("mapped set invented key 10")
	}
}

// TestMmapRunTombstones: a v2 run segment dumps mval structs verbatim;
// the tombstone flags must survive both the heap and the mapped reopen.
func TestMmapRunTombstones(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5}
	vals := []mval[uint64]{{val: 10}, {dead: true}, {val: 30}, {dead: true}, {val: 50}}
	st, err := Build(keys, vals, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeRunStream(f, st); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, mmap := range []bool{false, true} {
		got, err := openSegFile[uint64, mval[uint64]](path, runCodec[uint64]{}, []Option{WithMmap(mmap)})
		if err != nil {
			t.Fatalf("mmap=%v: %v", mmap, err)
		}
		for i, k := range keys {
			mv, ok := got.Get(k)
			if !ok || mv.dead != vals[i].dead || mv.val != vals[i].val {
				t.Fatalf("mmap=%v: Get(%d) = %+v, %v; want %+v", mmap, k, mv, ok, vals[i])
			}
		}
	}
}

// TestMmapExportCopyOut is the poisoned-releaser test: everything a
// compaction takes from a mapped store (Export) must own its memory, so
// that releasing the mapping — the poison: after munmap any lingering
// alias would fault or read garbage — cannot corrupt the merge.
func TestMmapExportCopyOut(t *testing.T) {
	if !mmapio.Supported {
		t.Skip("no mmap on this platform")
	}
	orig := buildFixedRandom(t, 2000, WithShards(4))
	wantK, wantV := orig.Export()
	path := writeStoreFile(t, orig)
	mapped, err := OpenStore[int64, uint64](path, WithMmap(true))
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Mapped() {
		t.Fatal("not mapped")
	}
	gotK, gotV := mapped.Export()
	// Poison: unmap while holding the exported slices, then delete the
	// file for good measure. If Export leaked any alias into the mapping,
	// the comparison below would fault.
	if err := mapped.Release(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
		t.Fatal("exported records differ from the originals")
	}
}

// TestSegmentMisalignedLength: a raw array frame whose byte length is
// not records × width must be refused by both readers, even with a
// valid checksum (the attack readGobSlice's length check covers for gob
// is covered here for raw frames).
func TestSegmentMisalignedLength(t *testing.T) {
	orig := buildFixedRandom(t, 100, WithShards(1))
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Rebuild the file, re-framing the keys frame with one extra byte —
	// checksummed correctly, so only the length check can catch it.
	var bad bytes.Buffer
	bad.WriteString(segMagic)
	bw := blockio.NewWriter(&bad)
	off := len(segMagic)
	for {
		tag, payload, next, err := blockio.Frame(full, off, true)
		if err != nil {
			break
		}
		if tag == tagSegKeys {
			payload = append(bytes.Clone(payload), 0xEE)
		}
		if err := bw.WriteBlock(tag, payload); err != nil {
			t.Fatal(err)
		}
		off = next
	}
	if _, err := ReadStore[int64, uint64](bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("heap reader accepted a misaligned raw keys frame")
	}
	if _, err := readSegMapped[int64, uint64](bad.Bytes(), plainCodec[uint64]{}, nil); err == nil {
		t.Fatal("mapped reader accepted a misaligned raw keys frame")
	}
}

// TestSegmentPlatformMismatch: v2 headers carry the endianness tag and
// element widths; a mismatch must produce a refusal naming the
// incompatibility, not garbage data.
func TestSegmentPlatformMismatch(t *testing.T) {
	orig := buildFixedRandom(t, 50, WithShards(1))
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	reframe := func(mutate func(h *segHeader)) []byte {
		var out bytes.Buffer
		out.WriteString(segMagic)
		bw := blockio.NewWriter(&out)
		off := len(segMagic)
		for {
			tag, payload, next, err := blockio.Frame(buf.Bytes(), off, true)
			if err != nil {
				break
			}
			if tag == tagSegHeader {
				var hdr segHeader
				if err := readGobFrame(blockio.NewReader(bytes.NewReader(buf.Bytes()[off:])), tagSegHeader, &hdr); err != nil {
					t.Fatal(err)
				}
				mutate(&hdr)
				if err := writeGobFrame(bw, tagSegHeader, hdr); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := bw.WriteBlock(tag, payload); err != nil {
					t.Fatal(err)
				}
			}
			off = next
		}
		return out.Bytes()
	}

	cases := []struct {
		name   string
		mutate func(h *segHeader)
	}{
		{"endianness", func(h *segHeader) {
			if h.Endian == "little" {
				h.Endian = "big"
			} else {
				h.Endian = "little"
			}
		}},
		{"key width", func(h *segHeader) { h.KeyWidth = 4 }},
		{"key kind", func(h *segHeader) { h.KeyKind = int(reflect.Float64) }},
		{"value width", func(h *segHeader) { h.ValWidth = 2 }},
		{"unknown version", func(h *segHeader) { h.Version = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := reframe(tc.mutate)
			_, err := ReadStore[int64, uint64](bytes.NewReader(enc))
			if err == nil {
				t.Fatal("heap reader served a platform-mismatched segment")
			}
			if tc.name == "unknown version" && !errors.Is(err, errSegVersionUnknown) {
				t.Fatalf("unknown version not classified: %v", err)
			}
			if _, merr := readSegMapped[int64, uint64](enc, plainCodec[uint64]{}, nil); merr == nil {
				t.Fatal("mapped reader served a platform-mismatched segment")
			}
		})
	}
}

// TestDBRefusesUnknownStraySegment: a stray segment file with a codec
// version from the future must abort Open, not be garbage-collected —
// it may be a newer build's data.
func TestDBRefusesUnknownStraySegment(t *testing.T) {
	dir := t.TempDir()
	db, err := Open[uint64, uint64](dir, DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	writeStray := func(name string, version int) {
		var buf bytes.Buffer
		buf.WriteString(segMagic)
		if err := writeGobFrame(blockio.NewWriter(&buf), tagSegHeader, segHeader{Version: version}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Future version: refused, file left in place.
	stray := "seg-00000000000000f0.seg"
	writeStray(stray, 99)
	if _, err := Open[uint64, uint64](dir, DBConfig{}); err == nil {
		t.Fatal("Open garbage-collected a future-version segment")
	}
	if _, err := os.Stat(filepath.Join(dir, stray)); err != nil {
		t.Fatalf("future-version stray was deleted: %v", err)
	}

	// Known version: a plain crashed-flush orphan, GC'd as before.
	if err := os.Remove(filepath.Join(dir, stray)); err != nil {
		t.Fatal(err)
	}
	writeStray(stray, segV1)
	db, err = Open[uint64, uint64](dir, DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := os.Stat(filepath.Join(dir, stray)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("known-version stray not garbage-collected: %v", err)
	}
	if v, ok := db.Get(1); !ok || v != 2 {
		t.Fatalf("Get(1) = %d, %v after stray handling", v, ok)
	}
}

// TestSegmentV2Alignment: every raw array payload must start at a
// 64-byte-aligned stream offset — the property that makes the mapped
// views correctly aligned for any primitive.
func TestSegmentV2Alignment(t *testing.T) {
	for _, shards := range []int{1, 3, 7} {
		st := buildFixedRandom(t, 501, WithShards(shards))
		var buf bytes.Buffer
		if _, err := st.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		off := len(segMagic)
		for {
			tag, payload, next, err := blockio.Frame(b, off, true)
			if err != nil {
				break
			}
			if tag == tagSegKeys || tag == tagSegVals {
				if len(payload) > 0 {
					payloadOff := next - len(payload)
					if payloadOff%segAlign != 0 {
						t.Fatalf("shards=%d: frame %q payload at offset %d, not %d-aligned",
							shards, tag, payloadOff, segAlign)
					}
				}
			}
			off = next
		}
	}
}
