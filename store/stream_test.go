package store

import (
	"bytes"
	"cmp"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"

	"implicitlayout/internal/par"
	"implicitlayout/layout"
)

// oracleMerge is the pre-streaming compaction algorithm, kept verbatim
// as the property-test oracle: Export every input run onto the heap,
// reduce newest-to-oldest with the parallel pair merge (left wins
// ties), then resolve first-hit-wins with compactRecs. The streaming
// merge must produce byte-for-byte the same record sequence.
func oracleMerge[K cmp.Ordered, V any](runs []*Store[K, mval[V]], dropTombs bool) []mrec[K, V] {
	r := par.New(2)
	exported := make([][]mrec[K, V], len(runs))
	for i, st := range runs {
		keys, vals := st.Export()
		exported[i] = zipRecs(keys, vals)
	}
	merged := exported[0]
	for _, older := range exported[1:] {
		dst := make([]mrec[K, V], len(merged)+len(older))
		parallelMerge(r, dst, merged, older, func(a, b mrec[K, V]) bool {
			return a.key < b.key
		})
		merged = dst
	}
	return compactRecs(merged, dropTombs)
}

// streamMerge collects streamCompact's output for comparison.
func streamMerge[K cmp.Ordered, V any](runs []*Store[K, mval[V]], dropTombs bool) []mrec[K, V] {
	sources := make([]*source[K, V], len(runs))
	for i, st := range runs {
		sources[i] = rankSource(st)
	}
	var out []mrec[K, V]
	streamCompact(sources, dropTombs, func(k K, mv mval[V]) error {
		out = append(out, mrec[K, V]{key: k, mv: mv})
		return nil
	})
	return out
}

// TestStreamCompactMatchesOracle is the streaming merge's ground truth:
// across every layout, both duplicate policies a run store can be built
// with, tombstone-dropping and -keeping merges, and many random record
// sets, streamCompact over rank-order cursors must emit exactly the
// records the old Export + parallelMerge + compactRecs pipeline
// produced.
func TestStreamCompactMatchesOracle(t *testing.T) {
	layouts := []struct {
		kind layout.Kind
		b    int
	}{
		{layout.Sorted, 0}, {layout.BST, 0}, {layout.BTree, 4},
		{layout.VEB, 0}, {layout.Hier, 4},
	}
	for _, lay := range layouts {
		for _, dup := range []DuplicatePolicy{KeepLast, KeepAll} {
			for _, dropTombs := range []bool{false, true} {
				name := fmt.Sprintf("%v/%v/drop=%v", lay.kind, dup, dropTombs)
				t.Run(name, func(t *testing.T) {
					for seed := uint64(0); seed < 8; seed++ {
						rng := rand.New(rand.NewPCG(seed, 99))
						nRuns := 2 + int(seed%3)
						runs := make([]*Store[uint32, mval[uint16]], nRuns)
						for i := range runs {
							n := 1 + rng.IntN(400)
							keys := make([]uint32, n)
							vals := make([]mval[uint16], n)
							for j := range keys {
								// Narrow key space: heavy cross-run overlap.
								keys[j] = rng.Uint32N(200)
								vals[j] = mval[uint16]{val: uint16(rng.Uint32())}
								if rng.IntN(4) == 0 {
									vals[j] = mval[uint16]{dead: true}
								}
							}
							st, err := Build(keys, vals,
								WithLayout(lay.kind), WithB(lay.b),
								WithShards(1+rng.IntN(5)), WithDuplicates(dup))
							if err != nil {
								t.Fatalf("seed %d run %d: Build: %v", seed, i, err)
							}
							runs[i] = st
						}
						want := oracleMerge(runs, dropTombs)
						got := streamMerge(runs, dropTombs)
						if !slices.Equal(got, want) {
							t.Fatalf("seed %d: streaming merge diverged from oracle: %d vs %d records",
								seed, len(got), len(want))
						}
					}
				})
			}
		}
	}
}

// TestStreamCompactNewestWins pins the tie rule with a deterministic
// case: the same key in every run, the lowest-index (newest) run's
// version must win, and a newest tombstone must suppress the key (and
// vanish entirely when dropTombs is set).
func TestStreamCompactNewestWins(t *testing.T) {
	mk := func(mv mval[uint16]) *Store[uint32, mval[uint16]] {
		st, err := Build([]uint32{7}, []mval[uint16]{mv})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	runs := []*Store[uint32, mval[uint16]]{
		mk(mval[uint16]{dead: true}),
		mk(mval[uint16]{val: 1}),
		mk(mval[uint16]{val: 2}),
	}
	if got := streamMerge(runs, false); len(got) != 1 || !got[0].mv.dead {
		t.Fatalf("keep-tombstones merge = %+v, want one tombstone", got)
	}
	if got := streamMerge(runs, true); len(got) != 0 {
		t.Fatalf("drop-tombstones merge = %+v, want empty", got)
	}
	// Reorder: newest is now val=2.
	runs = []*Store[uint32, mval[uint16]]{runs[2], runs[0], runs[1]}
	got := streamMerge(runs, true)
	if len(got) != 1 || got[0].mv.val != 2 {
		t.Fatalf("merge = %+v, want the newest run's value 2", got)
	}
}

// TestRankSourceOrder checks the streaming input half in isolation:
// rankSource must yield every record of a multi-shard permuted store in
// ascending key order, payloads attached to the right keys.
func TestRankSourceOrder(t *testing.T) {
	for _, kind := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier} {
		rng := rand.New(rand.NewPCG(5, uint64(kind)))
		n := 1000
		keys := make([]uint32, n)
		vals := make([]mval[uint16], n)
		for i := range keys {
			keys[i] = rng.Uint32()
			vals[i] = mval[uint16]{val: uint16(keys[i] >> 7)}
		}
		st, err := Build(keys, vals, WithLayout(kind), WithB(4), WithShards(7))
		if err != nil {
			t.Fatal(err)
		}
		wantK, wantV := st.Export()
		src := rankSource(st)
		for i := 0; src.ok; i++ {
			if src.key != wantK[i] || src.mv != wantV[i] {
				t.Fatalf("%v: rankSource record %d = (%d, %+v), want (%d, %+v)",
					kind, i, src.key, src.mv, wantK[i], wantV[i])
			}
			src.advance()
		}
	}
}

// TestSegWriterMatchesBuild writes one record set two ways — streamed
// through segWriter and built + serialized whole — and reopens both:
// the streamed segment must serve the same records, restore its bloom
// filter, and recover the same min/max fence metadata.
func TestSegWriterMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	n := 5000
	set := make(map[uint64]mval[uint64], n)
	for len(set) < n {
		k := rng.Uint64N(1 << 40)
		set[k] = mval[uint64]{val: k * 3, dead: k%9 == 0}
	}
	keys := make([]uint64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	vals := make([]mval[uint64], n)
	for i, k := range keys {
		vals[i] = set[k]
	}

	cfg := buildConfig(n, []Option{WithLayout(layout.VEB), WithShards(4)})
	var buf bytes.Buffer
	sw, err := newSegWriter[uint64, uint64](&buf, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	target := streamShardPlan(cfg, n)
	for lo := 0; lo < n; lo += target {
		hi := min(lo+target, n)
		if err := sw.AppendShard(slices.Clone(keys[lo:hi]), slices.Clone(vals[lo:hi])); err != nil {
			t.Fatalf("AppendShard: %v", err)
		}
	}
	if err := sw.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	got, err := readRunStream[uint64, uint64](bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatalf("reopening streamed segment: %v", err)
	}
	gotK, gotV := got.Export()
	if !slices.Equal(gotK, keys) {
		t.Fatalf("streamed segment serves %d keys, want %d", len(gotK), len(keys))
	}
	for i := range vals {
		if gotV[i] != vals[i] {
			t.Fatalf("payload %d = %+v, want %+v", i, gotV[i], vals[i])
		}
	}
	if got.fences[0] != keys[0] || got.maxKey != keys[n-1] {
		t.Fatalf("fence metadata [%d, %d], want [%d, %d]", got.fences[0], got.maxKey, keys[0], keys[n-1])
	}
	if got.bloom == nil {
		t.Fatal("streamed segment lost its bloom filter")
	}
	for _, k := range keys {
		if !got.bloom.MayContain(keyHash(k)) {
			t.Fatalf("bloom filter false negative for key %d", k)
		}
	}
}

// TestSegWriterErrors pins the writer's contract violations: appending
// after Finish, empty shards, mismatched slices, double Finish, and
// Finish with no shards must all error rather than corrupt the stream.
func TestSegWriterErrors(t *testing.T) {
	cfg := buildConfig(8, nil)
	var buf bytes.Buffer
	sw, err := newSegWriter[uint64, uint64](&buf, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendShard(nil, nil); err == nil {
		t.Fatal("AppendShard accepted an empty shard")
	}
	if err := sw.AppendShard([]uint64{1, 2}, []mval[uint64]{{}}); err == nil {
		t.Fatal("AppendShard accepted mismatched slices")
	}
	if err := sw.Finish(); err == nil {
		t.Fatal("Finish accepted a segment with no shards")
	}
	var buf2 bytes.Buffer
	sw2, err := newSegWriter[uint64, uint64](&buf2, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw2.AppendShard([]uint64{1}, []mval[uint64]{{val: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := sw2.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sw2.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
	if err := sw2.AppendShard([]uint64{3}, []mval[uint64]{{}}); err == nil {
		t.Fatal("AppendShard after Finish accepted")
	}
	// A writer for a non-fixed-width type must refuse up front.
	if _, err := newSegWriter[string, uint64](&buf, cfg, 8); err == nil {
		t.Fatal("newSegWriter accepted a string key type")
	}
}

// TestStreamShardPlan pins the shard sizing rule: the configured shard
// count governs small merges, the per-shard cap governs large ones.
func TestStreamShardPlan(t *testing.T) {
	cfg := Config{Shards: 4}
	if got := streamShardPlan(cfg, 1000); got != 250 {
		t.Fatalf("small merge target = %d, want 250", got)
	}
	big := 10 * maxStreamShardRecs
	if got := streamShardPlan(cfg, big); got > maxStreamShardRecs {
		t.Fatalf("large merge target = %d, over the %d cap", got, maxStreamShardRecs)
	}
	if got := streamShardPlan(Config{}, 0); got != 1 {
		t.Fatalf("empty merge target = %d, want 1", got)
	}
}
