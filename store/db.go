package store

import (
	"cmp"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/par"
)

// DefaultMemLimit is the default memtable flush threshold, in records.
const DefaultMemLimit = 1 << 15

// DefaultFanout is the default number of runs a level accumulates before
// the compactor merges them into one run of the next level.
const DefaultFanout = 4

// ErrClosed is returned by writes issued after Close.
var ErrClosed = errors.New("store: db is closed")

// DBConfig parameterizes NewDB and Open; zero fields select defaults.
type DBConfig struct {
	// MemLimit is the memtable size (in records, tombstones included) at
	// which the write path freezes it for flushing (default
	// DefaultMemLimit).
	MemLimit int
	// Fanout is the number of runs per level that triggers a merge into
	// the next level (default DefaultFanout).
	Fanout int
	// SyncWrites, in durable mode, fsyncs the write-ahead log after
	// every Put and Delete before acknowledging it, extending the crash
	// guarantee from "process crash loses nothing" to "OS or power
	// failure loses nothing" — at the cost of one disk sync per write.
	// The sync happens outside the DB's mutex, after the record is
	// logged and applied, so concurrent readers never stall behind it,
	// and one writer's fsync covers every append that preceded it (a
	// natural group commit under concurrency). With SyncWrites off (the
	// default), every acked write still reaches the OS before the call
	// returns, and the log is always fsynced when a memtable freezes.
	// Ignored in memory-only mode.
	SyncWrites bool
	// Mmap selects cold-serve mode for durable DBs: Open serves every
	// codec-v2 segment from a read-only memory mapping instead of
	// decoding it onto the heap, so reopening a directory is O(#segments)
	// metadata work — the shard arrays are never read, only mapped — and
	// the OS page cache, not the Go heap, holds the working set, letting
	// a DB serve datasets well beyond RAM (and beyond GOMEMLIMIT).
	// Segments written by flushes and compactions while the DB is open
	// are heap-born and stay on the heap; the next reopen maps them.
	// v1 (gob) segments and platforms without mmap fall back to heap
	// decoding per segment. A mapped segment's pages are released when
	// the last snapshot epoch holding its run is garbage-collected —
	// reads that started before a compaction or Close stay safe.
	// Ignored in memory-only mode (there are no segments to map).
	Mmap bool
	// Store holds the build options every run is built with — layout,
	// shard count, B, workers, permutation algorithm. WithDuplicates is
	// ignored: the write path has overwrite semantics, so runs are always
	// built KeepLast (see the duplicate-policy table in README.md).
	Store []Option
}

// DB is a writable key–value store: an LSM-style composition of one
// mutable sorted memtable (the write path) over a stack of immutable
// leveled runs, where every run is a sharded implicit-layout Store built
// by the same parallel sort → partition → permute pipeline as a static
// Build. The paper's cheap parallel in-place construction is what makes
// this composition viable — (re)building a run's search layout at flush
// and compaction time costs a parallel permutation, not a pointer-tree
// rebuild.
//
// Writes (Put, Delete) go to the memtable under a short mutex; when it
// reaches the configured limit it is frozen and a background compactor
// flushes it into a level-0 run, merging runs level to level as they
// accumulate (tiered compaction with the configured fanout, using the
// build pipeline's parallel pair merge). All immutable state — frozen
// memtables and the run stack — lives in one atomically swapped
// snapshot, so readers never block on the compactor and the compactor
// never blocks readers; a reader that loaded the previous snapshot keeps
// reading the runs it holds, which stay valid forever.
//
// Reads consult the active memtable, then frozen memtables, then runs
// newest to oldest; the first version of a key found wins, and a
// tombstone hides every older version until compaction into the oldest
// run drops it. Range and Scan k-way-merge the memtables with per-run
// fence-pruned layout streams, yielding live records in ascending key
// order.
//
// A DB is safe for concurrent use: any number of readers may overlap
// with any number of writers and with background compaction. Writes are
// applied one at a time (last writer wins on a key); reads are
// point-in-time against the state they start from.
//
// A DB opened with NewDB (or Open with an empty directory path) is
// memory-only: nothing survives the process. A DB opened with Open on a
// directory is durable — every Put and Delete is appended to a
// write-ahead log before it is acknowledged, flushed runs are written as
// checksummed segment files holding the permuted arrays verbatim, and an
// atomically rewritten manifest names the live segments, so a reopened
// directory serves every acknowledged write without re-sorting or
// re-permuting anything that had reached a segment.
type DB[K cmp.Ordered, V any] struct {
	cfg     DBConfig
	dir     string   // "" = memory-only
	unlock  func()   // releases the directory flock (durable mode)
	runOpts []Option // cfg.Store + the forced KeepLast policy
	mu      sync.RWMutex
	active  *memtable[K, V]
	wal     *walWriter // active memtable's log; nil when memory-only or closed (guarded by mu)
	closed  bool       // guarded by mu
	nextSeq atomic.Uint64
	state   atomic.Pointer[dbstate[K, V]]
	compact sync.Mutex // serializes maintain(): background worker vs Flush/Close
	worker  *par.Worker
	workers int // parallelism for compaction-time merge, from the build config
	errMu   sync.Mutex
	ioErr   error // first durability failure; sticky, fails all later writes

	// Read-amplification counters: for every (point lookup, run) pair
	// the read path either probes the run or the run's filter metadata
	// proves the key absent first (fence interval, then bloom filter).
	// Plain atomics — the counters are observability, never consulted
	// for correctness, and a Get must not contend on anything shared.
	ampProbed atomic.Uint64
	ampFence  atomic.Uint64
	ampBloom  atomic.Uint64
}

// NewDB opens an empty memory-only writable store — Open with no
// directory. The configuration is validated eagerly (unknown layouts
// fail here, not at first flush).
func NewDB[K cmp.Ordered, V any](cfg DBConfig) (*DB[K, V], error) {
	return Open[K, V]("", cfg)
}

// Open opens a writable store backed by dir, creating the directory if
// needed. An empty dir selects memory-only mode (NewDB). Otherwise the
// directory's manifest names the live segment files, each of which is
// reopened by reading its permuted shard arrays straight into memory —
// no re-sort, no re-permute — and any write-ahead logs left by a crash
// or unclean shutdown are replayed, flushed into a fresh level-0
// segment, and deleted, so the acknowledged history is intact before
// Open returns. (A log damaged beyond its tail is preserved under a
// ".corrupt" suffix rather than deleted: its intact prefix is recovered,
// the rest is kept for inspection.)
//
// The directory is held exclusively: Open takes an advisory flock on a
// LOCK file inside it, so a second Open — from this or another process
// — fails instead of corrupting the first opener's log and manifest.
// The lock dies with the process; Close releases it early. On platforms
// without flock (non-unix builds) this exclusivity is documented but
// not enforced — never point two DBs at one directory there.
func Open[K cmp.Ordered, V any](dir string, cfg DBConfig) (*DB[K, V], error) {
	if cfg.MemLimit == 0 {
		cfg.MemLimit = DefaultMemLimit
	}
	if cfg.MemLimit < 1 {
		return nil, fmt.Errorf("store: MemLimit %d < 1", cfg.MemLimit)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("store: Fanout %d < 2", cfg.Fanout)
	}
	runOpts := append(append([]Option{}, cfg.Store...), WithDuplicates(KeepLast))
	// Dry-run the option list through a one-record build to reject
	// invalid layouts or capacities before any data is accepted.
	if _, err := Build([]int{0}, []mval[struct{}]{{}}, runOpts...); err != nil {
		return nil, fmt.Errorf("store: invalid run options: %w", err)
	}
	db := &DB[K, V]{
		cfg:     cfg,
		runOpts: runOpts,
		active:  newMemtable[K, V](),
		workers: buildConfig(1, cfg.Store).Workers,
	}
	db.state.Store(&dbstate[K, V]{})
	if dir != "" {
		if err := db.openDir(dir); err != nil {
			return nil, err
		}
	}
	db.worker = par.NewWorker(db.maintain)
	return db, nil
}

// openDir performs the durable half of Open: manifest load, segment
// reopen, stale-file cleanup, WAL replay and recovery flush, and the
// creation of the active memtable's log.
func (db *DB[K, V]) openDir(dir string) error {
	db.dir = dir
	// Durable mode ships keys and values through gob; reject types it
	// cannot carry now, not at the first Put.
	var zeroK K
	if _, _, err := encodeWALRecord(zeroK, mval[V]{}); err != nil {
		return fmt.Errorf("store: durable mode requires gob-encodable key and value types: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating db directory: %w", err)
	}
	unlock, err := lockDir(dir)
	if err != nil {
		return err
	}
	db.unlock = unlock
	fail := func(err error) error {
		unlock()
		return err
	}
	man, found, err := readManifest(dir)
	if err != nil {
		return fail(err)
	}
	// Reopen every named segment concurrently — each is an independent
	// straight read of its permuted arrays, so recovery time is bounded
	// by the largest segment, not the segment count.
	runs := make([]*run[K, V], len(man.Segments))
	live := make(map[string]bool, len(man.Segments))
	segErrs := make([]error, len(man.Segments))
	for _, seg := range man.Segments {
		live[seg.File] = true
	}
	par.New(db.workers).Tasks(len(man.Segments), func(i int, _ par.Runner) {
		seg := man.Segments[i]
		st, err := db.readSegmentFile(seg.File)
		if err != nil {
			segErrs[i] = fmt.Errorf("store: reopening segment %s: %w", seg.File, err)
			return
		}
		runs[i] = &run[K, V]{st: st, level: seg.Level, file: seg.File}
	})
	if err := errors.Join(segErrs...); err != nil {
		return fail(err)
	}

	// Inventory the directory: find the WAL files to replay, delete
	// segments the manifest no longer references and temp files a
	// crashed atomic rewrite left behind (we hold the flock, so no live
	// writer owns one), and recover the naming sequence from the
	// highest number in use.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fail(fmt.Errorf("store: reading db directory: %w", err))
	}
	var walSeqs []uint64
	var maxSeq uint64
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseSegmentSeq(name); ok {
			if !found {
				// The protocol stamps a manifest before the first
				// segment ever exists, so segments without one mean the
				// authoritative list was lost to external damage.
				// Treating this as a fresh store would GC real data —
				// refuse instead.
				return fail(fmt.Errorf("store: %s holds segment files but no MANIFEST; refusing to open it as a fresh store", dir))
			}
			maxSeq = max(maxSeq, seq)
			if !live[name] {
				// A stray segment is normally a crashed flush's orphan —
				// garbage by protocol. But a stray whose codec version
				// this build does not know was written by a NEWER build,
				// and guessing that a newer build's file is garbage risks
				// destroying data whose role we cannot judge: refuse the
				// directory instead of GC'ing it.
				if v, err := probeSegmentVersion(filepath.Join(dir, name)); err == nil && v != segV1 && v != segV2 && v != segV21 {
					return fail(fmt.Errorf("store: stray segment %s has codec version %d, which this build does not know (written by a newer build?); refusing to garbage-collect it", name, v))
				}
				os.Remove(filepath.Join(dir, name)) // stray: GC, best-effort
			}
		} else if seq, ok := parseWALSeq(name); ok {
			maxSeq = max(maxSeq, seq)
			walSeqs = append(walSeqs, seq)
		} else if base, isCorrupt := strings.CutSuffix(name, ".corrupt"); isCorrupt {
			// Preserved damaged logs still pin their sequence numbers:
			// reusing one would let a future rename clobber the very
			// file that was kept for inspection.
			if seq, ok := parseWALSeq(base); ok {
				maxSeq = max(maxSeq, seq)
			}
		} else if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name)) // crashed WriteFileAtomic leftover
		}
	}
	db.nextSeq.Store(maxSeq + 1)
	db.state.Store(&dbstate[K, V]{runs: runs})
	if !found {
		// Stamp the fresh directory NOW, before any recovery flush can
		// create a segment: from here on, "segments but no manifest"
		// can only mean damage, which the check above turns into a
		// refusal rather than a silent GC.
		if err := writeManifest(dir, manifest{}); err != nil {
			return fail(err)
		}
	}

	// Replay the logs oldest to newest into one recovery memtable —
	// replay order is append order, so the newest version of every key
	// wins — then flush it synchronously into a level-0 segment. After
	// this the directory's segments alone carry the whole acknowledged
	// history and every replayed log can go: clean and torn logs are
	// deleted, a corrupt log keeps its intact-prefix recovery but is
	// preserved under a ".corrupt" suffix instead of being destroyed.
	slices.Sort(walSeqs)
	rec := newMemtable[K, V]()
	ends := make(map[uint64]walEnd, len(walSeqs))
	for _, seq := range walSeqs {
		_, end, err := replayWAL(walPath(dir, seq), rec.put)
		if err != nil {
			return fail(err)
		}
		ends[seq] = end
	}
	if rec.len() > 0 {
		if err := db.flushRecovered(rec); err != nil {
			return fail(err)
		}
	}
	for _, seq := range walSeqs {
		path := walPath(dir, seq)
		if ends[seq] == walCorrupt {
			err = os.Rename(path, path+".corrupt")
		} else {
			err = os.Remove(path)
		}
		if err != nil {
			return fail(fmt.Errorf("store: retiring replayed WAL: %w", err))
		}
	}
	if len(walSeqs) > 0 {
		if err := blockio.SyncDir(dir); err != nil {
			return fail(err)
		}
	}

	w, err := createWAL(dir, db.nextSeq.Add(1)-1)
	if err != nil {
		return fail(err)
	}
	db.wal = w
	return nil
}

// flushRecovered turns the WAL-replay memtable into a level-0 segment
// and commits it to the manifest — the recovery path's synchronous
// equivalent of flushOne.
func (db *DB[K, V]) flushRecovered(rec *memtable[K, V]) error {
	keys, vals := unzipRecs(rec.sortedRecs())
	newRun := &run[K, V]{st: db.buildRun(keys, vals), level: 0}
	nr, err := db.persistRun(newRun, db.state.Load().runs)
	if err != nil {
		return err
	}
	db.state.Store(&dbstate[K, V]{runs: nr})
	return nil
}

// Put stores val under key, overwriting any existing value. In durable
// mode the write is appended to the write-ahead log before it is
// applied. A nil error is the durability acknowledgment: the write is
// applied and (under the configured sync policy) safe. A non-nil error
// means the write was not acknowledged — it was either not applied at
// all (log append failed) or, on a SyncWrites fsync failure, applied
// but with its durability in doubt; either way the DB's error turns
// sticky and refuses further writes, so an unacknowledged write is
// never silently built upon. Writes after Close return ErrClosed.
func (db *DB[K, V]) Put(key K, val V) error {
	return db.write(key, mval[V]{val: val})
}

// Delete removes key by writing a tombstone: the deletion is a write
// like any other — logged ahead in durable mode, with Put's
// acknowledgment semantics — shadowing older versions of the key in
// frozen memtables and runs until compaction physically drops them.
// Deleting an absent key is a no-op that still costs a memtable slot
// until the next flush.
func (db *DB[K, V]) Delete(key K) error {
	return db.write(key, mval[V]{dead: true})
}

// write applies one record: log-ahead (durable mode), then the memtable
// under a short mutex, freezing the table for the compactor when it
// reaches the limit. The WAL append shares the memtable's mutex, which
// is what makes log order equal apply order; the record is encoded
// outside the lock and the SyncWrites fsync happens after the lock is
// released (see walWriter.syncAck), so the critical section is one
// unbuffered file write plus one map write even in the fully-durable
// configuration. The expensive work (sorting, permuting, merging) all
// happens on the compactor goroutine outside the lock.
func (db *DB[K, V]) write(key K, mv mval[V]) error {
	var tag byte
	var payload []byte
	if db.dir != "" {
		var err error
		tag, payload, err = encodeWALRecord(key, mv)
		if err != nil {
			return err
		}
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.err(); err != nil {
		db.mu.Unlock()
		return err
	}
	w := db.wal
	if w != nil {
		if err := w.append(tag, payload); err != nil {
			db.setErr(err)
			db.mu.Unlock()
			return err
		}
	}
	db.active.put(key, mv)
	kick := false
	if db.active.len() >= db.cfg.MemLimit {
		//lint:allow syncorder freeze seals the WAL under db.mu by design: one fsync per MemLimit writes, amortized, and the seal must be ordered against concurrent appends
		db.freezeLocked(true)
		kick = true
	}
	db.mu.Unlock()
	if kick {
		db.worker.Kick()
	}
	if w != nil && db.cfg.SyncWrites {
		// The ack waits on the fsync, but readers do not: the record is
		// already applied and the lock released. If a freeze sealed the
		// log in the meantime, the seal's fsync covered the record.
		if err := w.syncAck(); err != nil {
			db.setErr(err)
			return err
		}
	}
	return nil
}

// freezeLocked moves the active memtable into the snapshot's frozen list
// and installs a fresh one. In durable mode the outgoing table's log is
// sealed (fsynced and closed) and travels with it until the flush that
// makes it redundant; rotate selects whether a new log is created for
// the fresh table (Close passes false — no further writes are coming).
// Caller holds db.mu.
//
// A durable freeze deliberately pays two fsyncs under the lock (the
// seal, and createWAL's directory sync): they order the old log's
// durability ahead of the new log's existence, and at one freeze per
// MemLimit writes the cost is amortized to noise — unlike the per-write
// SyncWrites fsync, which is why that one lives outside the lock.
func (db *DB[K, V]) freezeLocked(rotate bool) {
	if db.active.len() == 0 {
		if !rotate && db.wal != nil {
			// Clean shutdown with an empty active table: its log holds
			// nothing — discard it.
			if err := db.wal.discard(); err != nil {
				db.setErr(err)
			}
			db.wal = nil
		}
		return
	}
	if db.wal != nil {
		if err := db.wal.seal(); err != nil {
			db.setErr(err)
		}
		db.active.wal = db.wal
		db.wal = nil
	}
	st := db.state.Load()
	ns := &dbstate[K, V]{
		frozen: append([]*memtable[K, V]{db.active}, st.frozen...),
		runs:   st.runs,
	}
	db.state.Store(ns)
	db.active = newMemtable[K, V]()
	if rotate && db.dir != "" {
		w, err := createWAL(db.dir, db.nextSeq.Add(1)-1)
		if err != nil {
			db.setErr(err) // sticky: every later write fails rather than going unlogged
		} else {
			db.wal = w
		}
	}
}

// Get returns the newest live value stored under key, or ok == false if
// the key is absent or deleted. The lookup checks the active memtable
// (under a read lock), then the atomic snapshot's frozen memtables and
// runs newest to oldest; the first version found decides.
func (db *DB[K, V]) Get(key K) (val V, ok bool) {
	db.mu.RLock()
	mv, hit := db.active.get(key)
	db.mu.RUnlock()
	if hit {
		return liveValue(mv)
	}
	st := db.state.Load()
	return db.getImmutable(st, key)
}

// getImmutable resolves key against one pinned immutable epoch — the
// frozen memtables, then the run stack, newest to oldest. It is the
// shared second half of Get and View.Get: the caller has already
// consulted whichever active memtable its point-in-time view names.
func (db *DB[K, V]) getImmutable(st *dbstate[K, V], key K) (val V, ok bool) {
	for _, m := range st.frozen {
		if mv, hit := m.get(key); hit {
			return liveValue(mv)
		}
	}
	for _, r := range st.runs {
		// Fences and bloom filter first: most runs cannot hold the key,
		// and proving that costs two comparisons and at most one filter
		// cache line — no descent, and (for mapped runs) no page faults.
		switch r.filterCheck(key) {
		case runSkipFence:
			db.ampFence.Add(1)
			continue
		case runSkipBloom:
			db.ampBloom.Add(1)
			continue
		}
		db.ampProbed.Add(1)
		if mv, hit := r.st.Get(key); hit {
			return liveValue(mv)
		}
	}
	var zero V
	return zero, false
}

// liveValue unwraps a version hit: a tombstone is an authoritative miss.
func liveValue[V any](mv mval[V]) (V, bool) {
	if mv.dead {
		var zero V
		return zero, false
	}
	return mv.val, true
}

// Contains reports whether key currently has a live value.
func (db *DB[K, V]) Contains(key K) bool {
	_, ok := db.Get(key)
	return ok
}

// GetBatch answers many independent point lookups at once: vals[i] and
// found[i] are what Get(keys[i]) would return. Keys the memtables decide
// (the active one under a single read lock, then the frozen ones) drop
// out first; the survivors walk the run stack newest to oldest, each run
// answering the still-pending keys with one Store.GetBatch call — the
// interleaved, shard-grouped ring kernels — and any version found, live
// or tombstone, settles its key. p is the worker count per run (values
// below 1 fall back to serial). The lookup sees the same point-in-time
// state as Get: writes issued after GetBatch starts may be missed.
func (db *DB[K, V]) GetBatch(keys []K, p int) (vals []V, found []bool) {
	db.mu.RLock()
	act := db.active
	// Load the snapshot under the same lock hold: a freeze moves the
	// active table into the snapshot under the write lock, so capturing
	// both sides in one read-lock section yields a coherent pair.
	st := db.state.Load()
	db.mu.RUnlock()
	return db.getBatchOn(act, st, keys, p)
}

// getBatchOn answers a batch of point lookups from one coherent
// (active memtable, immutable epoch) pair — the shared engine of
// DB.GetBatch and View.GetBatch. Every key in the batch is resolved
// against the same pinned dbstate, so a flush or merge racing the batch
// never hands half the keys a different run stack.
func (db *DB[K, V]) getBatchOn(act *memtable[K, V], st *dbstate[K, V], keys []K, p int) (vals []V, found []bool) {
	vals = make([]V, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found
	}
	// pending holds the indices of keys no version has decided yet;
	// every stage shrinks it in place.
	pending := make([]int, 0, len(keys))
	// The lock covers act while it is still the live active table; once
	// frozen the table is immutable and the lock is a harmless formality.
	db.mu.RLock()
	for i, k := range keys {
		if mv, hit := act.get(k); hit {
			vals[i], found[i] = liveValue(mv)
		} else {
			pending = append(pending, i)
		}
	}
	db.mu.RUnlock()
	for _, m := range st.frozen {
		if len(pending) == 0 {
			return vals, found
		}
		keep := pending[:0]
		for _, i := range pending {
			if mv, hit := m.get(keys[i]); hit {
				vals[i], found[i] = liveValue(mv)
			} else {
				keep = append(keep, i)
			}
		}
		pending = keep
	}
	sub := make([]K, 0, len(pending))
	subIdx := make([]int, 0, len(pending))
	var nProbe, nFence, nBloom uint64
	for _, r := range st.runs {
		if len(pending) == 0 {
			break
		}
		// Filter first: only keys the run's fences and bloom filter
		// cannot disprove enter the batch kernel. A filtered key stays
		// pending — an older run may still hold it.
		sub, subIdx = sub[:0], subIdx[:0]
		for _, i := range pending {
			switch r.filterCheck(keys[i]) {
			case runSkipFence:
				nFence++
			case runSkipBloom:
				nBloom++
			default:
				sub = append(sub, keys[i])
				subIdx = append(subIdx, i)
			}
		}
		if len(sub) == 0 {
			continue
		}
		nProbe += uint64(len(sub))
		br := r.st.GetBatch(sub, p)
		// Settle the probed keys that found a version (live or
		// tombstone), walking pending and the probed subset in lockstep
		// so the unprobed keys stay pending in order.
		keep := pending[:0]
		j := 0
		for _, i := range pending {
			if j < len(subIdx) && subIdx[j] == i {
				if br.Found[j] {
					vals[i], found[i] = liveValue(br.Vals[j])
					j++
					continue
				}
				j++
			}
			keep = append(keep, i)
		}
		pending = keep
	}
	if nProbe > 0 {
		db.ampProbed.Add(nProbe)
	}
	if nFence > 0 {
		db.ampFence.Add(nFence)
	}
	if nBloom > 0 {
		db.ampBloom.Add(nBloom)
	}
	return vals, found
}

// Range calls yield for every live record with lo <= key <= hi in
// ascending key order, stopping early if yield returns false. The
// iteration k-way-merges a copy of the active memtable's interval, the
// frozen memtables, and each run's fence-pruned layout stream,
// resolving versions newest-first and suppressing tombstones. It sees a
// point-in-time state: writes issued after Range starts are not
// reflected.
func (db *DB[K, V]) Range(lo, hi K, yield func(key K, val V) bool) {
	if hi < lo {
		return
	}
	db.rangeMerge(lo, hi, false, yield)
}

// Scan calls yield for every live record in ascending key order,
// stopping early if yield returns false — Range over the whole key
// space.
func (db *DB[K, V]) Scan(yield func(key K, val V) bool) {
	var zero K
	db.rangeMerge(zero, zero, true, yield)
}

func (db *DB[K, V]) rangeMerge(lo, hi K, all bool, yield func(key K, val V) bool) {
	db.mu.RLock()
	act := db.active
	// Load the snapshot under the same lock hold: a freeze moves the
	// active table into the snapshot under the write lock, so reading
	// both sides inside one read-lock section is what makes the merge a
	// true point-in-time view (copy + snapshot from the same epoch).
	st := db.state.Load()
	db.mu.RUnlock()
	db.rangeOn(act, st, lo, hi, all, yield)
}

// rangeOn runs the k-way merge over one coherent (active memtable,
// immutable epoch) pair — the shared engine of DB.Range/Scan and
// View.Range/Scan.
func (db *DB[K, V]) rangeOn(act *memtable[K, V], st *dbstate[K, V], lo, hi K, all bool, yield func(key K, val V) bool) {
	db.mu.RLock()
	actRecs := act.collect(lo, hi, all)
	db.mu.RUnlock()
	sortRecs(actRecs) // outside the lock: writers don't pay for our ordering
	sources := make([]*source[K, V], 0, 1+len(st.frozen)+len(st.runs))
	sources = append(sources, recsSource(actRecs))
	for _, m := range st.frozen {
		sources = append(sources, recsSource(boundRecs(m.sortedRecs(), lo, hi, all)))
	}
	for _, r := range st.runs {
		sources = append(sources, storeSource(r.st, lo, hi, all))
	}
	mergeSources(sources, yield)
}

// Flush synchronously freezes the active memtable (if non-empty) and
// drains all pending compaction work: on return every record is in a
// run — in durable mode, in a manifest-committed segment file — the
// memtable and frozen list are empty, and the level invariant (fewer
// than Fanout runs per level) holds. Concurrent writers may of course
// repopulate the memtable immediately. The returned error is the DB's
// sticky durability error, nil in memory-only mode.
func (db *DB[K, V]) Flush() error {
	db.mu.Lock()
	//lint:allow syncorder freeze seals the WAL under db.mu by design: Flush is an explicit stop-the-world drain, not the serving write path
	db.freezeLocked(true)
	db.mu.Unlock()
	db.maintain()
	return db.err()
}

// Close shuts the DB down cleanly: it freezes the active memtable,
// flushes every frozen memtable — not just the newest — through the
// compactor, and stops the background worker, so in durable mode no
// acknowledged write is left outside a manifest-committed segment and
// the directory reopens with nothing to replay. After Close the DB stays
// readable (reads serve the final state), but Put and Delete return
// ErrClosed. Close is idempotent; it returns the DB's sticky durability
// error, nil in memory-only mode.
func (db *DB[K, V]) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return db.err()
	}
	db.closed = true
	//lint:allow syncorder freeze seals the WAL under db.mu by design: Close is shutdown, no concurrent readers left to stall
	db.freezeLocked(false)
	db.mu.Unlock()
	db.maintain() // drain ALL frozen memtables (and merges) synchronously
	db.worker.Close()
	if db.unlock != nil {
		db.unlock() // release the directory for the next opener
	}
	return db.err()
}

// err returns the sticky durability error.
func (db *DB[K, V]) err() error {
	db.errMu.Lock()
	defer db.errMu.Unlock()
	return db.ioErr
}

// setErr records the first durability failure; later writes return it
// instead of acknowledging data the log no longer protects.
func (db *DB[K, V]) setErr(err error) {
	db.errMu.Lock()
	if db.ioErr == nil {
		db.ioErr = err
	}
	db.errMu.Unlock()
}

// DBStats is a point-in-time observability snapshot of a DB's shape.
type DBStats struct {
	// MemRecords is the active memtable size in records (tombstones
	// included).
	MemRecords int
	// FrozenTables is the number of memtables frozen but not yet flushed.
	FrozenTables int
	// DiskRuns is the number of runs backed by a segment file on disk
	// (0 in memory-only mode).
	DiskRuns int
	// MappedRuns is the number of runs served zero-copy from a mapped
	// segment (cold-serve mode; always ≤ DiskRuns). Runs flushed or
	// merged since Open are heap-born, so this count decays toward 0 as
	// compaction rewrites the mapped history.
	MappedRuns int
	// RunRecords and RunLevels describe the run stack newest-first:
	// run i holds RunRecords[i] records (tombstones included) at level
	// RunLevels[i].
	RunRecords []int
	// RunLevels — see RunRecords.
	RunLevels []int
	// RunsProbed, RunsSkippedFence, and RunsSkippedBloom decompose the
	// DB's lifetime point-lookup read amplification: for every
	// (lookup, run) pair considered by Get or GetBatch, exactly one of
	// the three counters advanced — the run was probed (a layout
	// descent), the fence interval proved the key absent, or the bloom
	// filter did. Probed / (sum of all three) is the fraction of the
	// run stack a lookup actually touches.
	RunsProbed uint64
	// RunsSkippedFence — see RunsProbed.
	RunsSkippedFence uint64
	// RunsSkippedBloom — see RunsProbed.
	RunsSkippedBloom uint64
}

// Runs returns the run count.
func (s DBStats) Runs() int { return len(s.RunRecords) }

// Stats returns the DB's current shape: memtable fill, frozen backlog,
// and the run stack. Benchmarks and tests use it to see compaction
// progress; it is cheap (no data is touched).
func (db *DB[K, V]) Stats() DBStats {
	db.mu.RLock()
	mem := db.active.len()
	db.mu.RUnlock()
	st := db.state.Load()
	stats := DBStats{
		MemRecords:       mem,
		FrozenTables:     len(st.frozen),
		RunRecords:       make([]int, len(st.runs)),
		RunLevels:        make([]int, len(st.runs)),
		RunsProbed:       db.ampProbed.Load(),
		RunsSkippedFence: db.ampFence.Load(),
		RunsSkippedBloom: db.ampBloom.Load(),
	}
	for i, r := range st.runs {
		stats.RunRecords[i] = r.st.Len()
		stats.RunLevels[i] = r.level
		if r.file != "" {
			stats.DiskRuns++
		}
		if r.st.Mapped() {
			stats.MappedRuns++
		}
	}
	return stats
}
