package store

import (
	"cmp"
	"fmt"
	"sync"
	"sync/atomic"

	"implicitlayout/internal/par"
)

// DefaultMemLimit is the default memtable flush threshold, in records.
const DefaultMemLimit = 1 << 15

// DefaultFanout is the default number of runs a level accumulates before
// the compactor merges them into one run of the next level.
const DefaultFanout = 4

// DBConfig parameterizes NewDB; zero fields select defaults.
type DBConfig struct {
	// MemLimit is the memtable size (in records, tombstones included) at
	// which the write path freezes it for flushing (default
	// DefaultMemLimit).
	MemLimit int
	// Fanout is the number of runs per level that triggers a merge into
	// the next level (default DefaultFanout).
	Fanout int
	// Store holds the build options every run is built with — layout,
	// shard count, B, workers, permutation algorithm. WithDuplicates is
	// ignored: the write path has overwrite semantics, so runs are always
	// built KeepLast (see the duplicate-policy table in README.md).
	Store []Option
}

// DB is a writable key–value store: an LSM-style composition of one
// mutable sorted memtable (the write path) over a stack of immutable
// leveled runs, where every run is a sharded implicit-layout Store built
// by the same parallel sort → partition → permute pipeline as a static
// Build. The paper's cheap parallel in-place construction is what makes
// this composition viable — (re)building a run's search layout at flush
// and compaction time costs a parallel permutation, not a pointer-tree
// rebuild.
//
// Writes (Put, Delete) go to the memtable under a short mutex; when it
// reaches the configured limit it is frozen and a background compactor
// flushes it into a level-0 run, merging runs level to level as they
// accumulate (tiered compaction with the configured fanout, using the
// build pipeline's parallel pair merge). All immutable state — frozen
// memtables and the run stack — lives in one atomically swapped
// snapshot, so readers never block on the compactor and the compactor
// never blocks readers; a reader that loaded the previous snapshot keeps
// reading the runs it holds, which stay valid forever.
//
// Reads consult the active memtable, then frozen memtables, then runs
// newest to oldest; the first version of a key found wins, and a
// tombstone hides every older version until compaction into the oldest
// run drops it. Range and Scan k-way-merge the memtables with per-run
// fence-pruned layout streams, yielding live records in ascending key
// order.
//
// A DB is safe for concurrent use: any number of readers may overlap
// with any number of writers and with background compaction. Writes are
// applied one at a time (last writer wins on a key); reads are
// point-in-time against the state they start from. The DB is in-memory
// only — Close stops the background compactor and nothing needs to be
// persisted.
type DB[K cmp.Ordered, V any] struct {
	cfg      DBConfig
	runOpts  []Option // cfg.Store + the forced KeepLast policy
	mu       sync.RWMutex
	active   *memtable[K, V]
	state    atomic.Pointer[dbstate[K, V]]
	compact  sync.Mutex // serializes maintain(): background worker vs Flush/Compact
	worker   *par.Worker
	workers  int // parallelism for compaction-time merge, from the build config
	closedMu sync.Mutex
	closed   bool
}

// NewDB opens an empty writable store. The configuration is validated
// eagerly (unknown layouts fail here, not at first flush).
func NewDB[K cmp.Ordered, V any](cfg DBConfig) (*DB[K, V], error) {
	if cfg.MemLimit == 0 {
		cfg.MemLimit = DefaultMemLimit
	}
	if cfg.MemLimit < 1 {
		return nil, fmt.Errorf("store: MemLimit %d < 1", cfg.MemLimit)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("store: Fanout %d < 2", cfg.Fanout)
	}
	runOpts := append(append([]Option{}, cfg.Store...), WithDuplicates(KeepLast))
	// Dry-run the option list through a one-record build to reject
	// invalid layouts or capacities before any data is accepted.
	if _, err := Build([]int{0}, []mval[struct{}]{{}}, runOpts...); err != nil {
		return nil, fmt.Errorf("store: invalid run options: %w", err)
	}
	db := &DB[K, V]{
		cfg:     cfg,
		runOpts: runOpts,
		active:  newMemtable[K, V](),
		workers: buildConfig(1, cfg.Store).Workers,
	}
	db.state.Store(&dbstate[K, V]{})
	db.worker = par.NewWorker(db.maintain)
	return db, nil
}

// Put stores val under key, overwriting any existing value.
func (db *DB[K, V]) Put(key K, val V) {
	db.write(key, mval[V]{val: val})
}

// Delete removes key by writing a tombstone: the deletion is a write
// like any other, shadowing older versions of the key in frozen
// memtables and runs until compaction physically drops them. Deleting an
// absent key is a no-op that still costs a memtable slot until the next
// flush.
func (db *DB[K, V]) Delete(key K) {
	db.write(key, mval[V]{dead: true})
}

// write applies one record to the active memtable, freezing it for the
// compactor when it reaches the limit. The critical section is one map
// write plus, at worst, three slice headers of snapshot bookkeeping —
// the expensive work (sorting, permuting, merging) all happens on the
// compactor goroutine outside the lock.
func (db *DB[K, V]) write(key K, mv mval[V]) {
	db.mu.Lock()
	db.active.put(key, mv)
	kick := false
	if db.active.len() >= db.cfg.MemLimit {
		db.freezeLocked()
		kick = true
	}
	db.mu.Unlock()
	if kick {
		db.worker.Kick()
	}
}

// freezeLocked moves the active memtable into the snapshot's frozen list
// and installs a fresh one. Caller holds db.mu.
func (db *DB[K, V]) freezeLocked() {
	if db.active.len() == 0 {
		return
	}
	st := db.state.Load()
	ns := &dbstate[K, V]{
		frozen: append([]*memtable[K, V]{db.active}, st.frozen...),
		runs:   st.runs,
	}
	db.state.Store(ns)
	db.active = newMemtable[K, V]()
}

// Get returns the newest live value stored under key, or ok == false if
// the key is absent or deleted. The lookup checks the active memtable
// (under a read lock), then the atomic snapshot's frozen memtables and
// runs newest to oldest; the first version found decides.
func (db *DB[K, V]) Get(key K) (val V, ok bool) {
	db.mu.RLock()
	mv, hit := db.active.get(key)
	db.mu.RUnlock()
	if hit {
		return liveValue(mv)
	}
	st := db.state.Load()
	for _, m := range st.frozen {
		if mv, hit := m.get(key); hit {
			return liveValue(mv)
		}
	}
	for _, r := range st.runs {
		if mv, hit := r.st.Get(key); hit {
			return liveValue(mv)
		}
	}
	var zero V
	return zero, false
}

// liveValue unwraps a version hit: a tombstone is an authoritative miss.
func liveValue[V any](mv mval[V]) (V, bool) {
	if mv.dead {
		var zero V
		return zero, false
	}
	return mv.val, true
}

// Contains reports whether key currently has a live value.
func (db *DB[K, V]) Contains(key K) bool {
	_, ok := db.Get(key)
	return ok
}

// Range calls yield for every live record with lo <= key <= hi in
// ascending key order, stopping early if yield returns false. The
// iteration k-way-merges a copy of the active memtable's interval, the
// frozen memtables, and each run's fence-pruned layout stream,
// resolving versions newest-first and suppressing tombstones. It sees a
// point-in-time state: writes issued after Range starts are not
// reflected.
func (db *DB[K, V]) Range(lo, hi K, yield func(key K, val V) bool) {
	if hi < lo {
		return
	}
	db.rangeMerge(lo, hi, false, yield)
}

// Scan calls yield for every live record in ascending key order,
// stopping early if yield returns false — Range over the whole key
// space.
func (db *DB[K, V]) Scan(yield func(key K, val V) bool) {
	var zero K
	db.rangeMerge(zero, zero, true, yield)
}

func (db *DB[K, V]) rangeMerge(lo, hi K, all bool, yield func(key K, val V) bool) {
	db.mu.RLock()
	act := db.active.collect(lo, hi, all)
	// Load the snapshot under the same lock hold: a freeze moves the
	// active table into the snapshot under the write lock, so reading
	// both sides inside one read-lock section is what makes the merge a
	// true point-in-time view (copy + snapshot from the same epoch).
	st := db.state.Load()
	db.mu.RUnlock()
	sortRecs(act) // outside the lock: writers don't pay for our ordering
	sources := make([]*source[K, V], 0, 1+len(st.frozen)+len(st.runs))
	sources = append(sources, recsSource(act))
	for _, m := range st.frozen {
		sources = append(sources, recsSource(boundRecs(m.sortedRecs(), lo, hi, all)))
	}
	for _, r := range st.runs {
		sources = append(sources, storeSource(r.st, lo, hi, all))
	}
	mergeSources(sources, yield)
}

// Flush synchronously freezes the active memtable (if non-empty) and
// drains all pending compaction work: on return every record is in a
// run, the memtable and frozen list are empty, and the level invariant
// (fewer than Fanout runs per level) holds. Concurrent writers may of
// course repopulate the memtable immediately.
func (db *DB[K, V]) Flush() {
	db.mu.Lock()
	db.freezeLocked()
	db.mu.Unlock()
	db.maintain()
}

// Close stops the background compactor and waits for any in-flight
// compaction to finish. The DB stays readable and even writable after
// Close, but frozen memtables are no longer flushed in the background —
// call Flush to drain synchronously. Close is idempotent.
func (db *DB[K, V]) Close() {
	db.closedMu.Lock()
	defer db.closedMu.Unlock()
	if db.closed {
		return
	}
	db.closed = true
	db.worker.Close()
}

// DBStats is a point-in-time observability snapshot of a DB's shape.
type DBStats struct {
	// MemRecords is the active memtable size in records (tombstones
	// included).
	MemRecords int
	// FrozenTables is the number of memtables frozen but not yet flushed.
	FrozenTables int
	// RunRecords and RunLevels describe the run stack newest-first:
	// run i holds RunRecords[i] records (tombstones included) at level
	// RunLevels[i].
	RunRecords []int
	// RunLevels — see RunRecords.
	RunLevels []int
}

// Runs returns the run count.
func (s DBStats) Runs() int { return len(s.RunRecords) }

// Stats returns the DB's current shape: memtable fill, frozen backlog,
// and the run stack. Benchmarks and tests use it to see compaction
// progress; it is cheap (no data is touched).
func (db *DB[K, V]) Stats() DBStats {
	db.mu.RLock()
	mem := db.active.len()
	db.mu.RUnlock()
	st := db.state.Load()
	stats := DBStats{
		MemRecords:   mem,
		FrozenTables: len(st.frozen),
		RunRecords:   make([]int, len(st.runs)),
		RunLevels:    make([]int, len(st.runs)),
	}
	for i, r := range st.runs {
		stats.RunRecords[i] = r.st.Len()
		stats.RunLevels[i] = r.level
	}
	return stats
}
