package store_test

import (
	"math/rand"
	"slices"
	"testing"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/store"
)

// shuffledOdd returns the keys 1, 3, ..., 2n-1 in random order, so every
// even value is a guaranteed miss.
func shuffledOdd(n int, seed int64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(2*i + 1)
	}
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
	return keys
}

var allKinds = []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier}

// TestRoundTrip is the key-set acceptance property: for every layout kind
// and shard count in {1, 4, 16}, building from a shuffled key set then
// querying every member hits, every non-member misses, GetBatch with
// p in {1, 8} matches the serial counts, and Export restores sorted
// order. Run under -race it also exercises the concurrent build and the
// parallel batch path for data races.
func TestRoundTrip(t *testing.T) {
	const n = 1 << 14
	keys := shuffledOdd(n, 7)
	for _, kind := range allKinds {
		for _, shards := range []int{1, 4, 16} {
			st, err := store.BuildSet(keys,
				store.WithLayout(kind), store.WithShards(shards), store.WithWorkers(8))
			if err != nil {
				t.Fatalf("%v/%d: Build: %v", kind, shards, err)
			}
			if st.Shards() != shards || st.Len() != n {
				t.Fatalf("%v/%d: got %d shards, %d keys", kind, shards, st.Shards(), st.Len())
			}
			if st.HasValues() {
				t.Fatalf("%v/%d: key set claims to carry values", kind, shards)
			}

			// Every member hits, at a Ref that reads back the key.
			for i := 0; i < n; i++ {
				x := uint64(2*i + 1)
				ref, ok := st.GetRef(x)
				if !ok {
					t.Fatalf("%v/%d: GetRef(%d) missed", kind, shards, x)
				}
				if key, _ := st.At(ref); key != x {
					t.Fatalf("%v/%d: At(%+v) = %d, want %d", kind, shards, ref, key, x)
				}
			}
			// Non-members (evens, below-range, above-range) miss.
			for i := 0; i <= n; i++ {
				if st.Contains(uint64(2 * i)) {
					t.Fatalf("%v/%d: Contains(%d) = true", kind, shards, 2*i)
				}
			}
			if st.Contains(uint64(2*n + 99)) {
				t.Fatalf("%v/%d: hit beyond maximum", kind, shards)
			}

			// Batched queries match serial results, worker count be damned.
			queries := make([]uint64, 0, 2*n)
			for i := 0; i < n; i++ {
				queries = append(queries, uint64(2*i+1), uint64(2*i))
			}
			serial := st.GetBatch(queries, 1)
			if serial.Hits != n || serial.Queries != 2*n {
				t.Fatalf("%v/%d: serial batch = %d/%d hits", kind, shards, serial.Hits, serial.Queries)
			}
			for qi, q := range queries {
				if serial.Found[qi] != (q%2 == 1) {
					t.Fatalf("%v/%d: Found[%d] = %v for query %d", kind, shards, qi, serial.Found[qi], q)
				}
			}
			for _, p := range []int{1, 8} {
				got := st.GetBatch(queries, p)
				if got.Hits != serial.Hits || got.Queries != serial.Queries {
					t.Fatalf("%v/%d p=%d: batch = %d/%d, want %d/%d",
						kind, shards, p, got.Hits, got.Queries, serial.Hits, serial.Queries)
				}
				if !slices.Equal(got.Found, serial.Found) {
					t.Fatalf("%v/%d p=%d: Found diverges from serial", kind, shards, p)
				}
				if len(got.Shards) != shards {
					t.Fatalf("%v/%d p=%d: %d shard stats", kind, shards, p, len(got.Shards))
				}
				for i := range got.Shards {
					if got.Shards[i] != serial.Shards[i] {
						t.Fatalf("%v/%d p=%d shard %d: stats %+v, want %+v",
							kind, shards, p, i, got.Shards[i], serial.Shards[i])
					}
				}
			}

			// Export inverts the build: ascending sorted order, all keys.
			out, noVals := st.Export()
			if noVals != nil {
				t.Fatalf("%v/%d: key set exported values", kind, shards)
			}
			if !slices.IsSorted(out) || len(out) != n || out[0] != 1 || out[n-1] != uint64(2*n-1) {
				t.Fatalf("%v/%d: Export not the sorted key set", kind, shards)
			}
		}
	}
}

// TestShardStatsAccount verifies per-shard statistics: every query lands
// in exactly one shard and the shard totals reconstruct the aggregate.
func TestShardStatsAccount(t *testing.T) {
	const n = 1 << 12
	st, err := store.BuildSet(shuffledOdd(n, 3),
		store.WithShards(4), store.WithLayout(layout.BTree), store.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]uint64, 0, 2*n)
	for i := 0; i < n; i++ {
		queries = append(queries, uint64(2*i+1), uint64(2*i))
	}
	stats := st.GetBatch(queries, 8)
	routed, hits := 0, 0
	for i, sh := range stats.Shards {
		if sh.Hits > sh.Queries {
			t.Fatalf("shard %d: %d hits out of %d queries", i, sh.Hits, sh.Queries)
		}
		routed += sh.Queries
		hits += sh.Hits
	}
	if hits != stats.Hits || stats.Hits != n {
		t.Fatalf("aggregate hits %d, shard sum %d, want %d", stats.Hits, hits, n)
	}
	// The only unrouted query value is 0, which precedes every fence and
	// appears once in the batch.
	if want := len(queries) - 1; routed != want {
		t.Fatalf("routed %d queries, want %d", routed, want)
	}
}

// TestPredecessor checks predecessor queries across shard boundaries —
// including queries that equal a fence key and queries in the gaps.
func TestPredecessor(t *testing.T) {
	const n = 1 << 10
	for _, kind := range allKinds {
		st, err := store.BuildSet(shuffledOdd(n, 5),
			store.WithShards(8), store.WithLayout(kind), store.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []uint64{0} {
			if _, _, ok := st.Predecessor(q); ok {
				t.Fatalf("%v: Predecessor(%d) should not exist", kind, q)
			}
		}
		for i := 0; i < n; i++ {
			odd := uint64(2*i + 1)
			for q, want := range map[uint64]uint64{odd: odd, odd + 1: odd} {
				key, _, ok := st.Predecessor(q)
				if !ok || key != want {
					t.Fatalf("%v: Predecessor(%d) = %d, %v; want %d", kind, q, key, ok, want)
				}
				ref, ok := st.PredecessorRef(q)
				if atKey, _ := st.At(ref); !ok || atKey != want {
					t.Fatalf("%v: PredecessorRef(%d) resolves to %d, want %d", kind, q, atKey, want)
				}
			}
		}
	}
}

// TestFences verifies the router invariant: fences ascend and every fence
// is the smallest key of its shard, so GlobalOffset ranks are consistent.
func TestFences(t *testing.T) {
	const n = 1000
	st, err := store.BuildSet(shuffledOdd(n, 9), store.WithShards(16), store.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	fences := st.Fences()
	if len(fences) != 16 || !slices.IsSorted(fences) {
		t.Fatalf("fences not 16 ascending keys: %v", fences)
	}
	off := 0
	for i := range fences {
		if st.GlobalOffset(i) != off {
			t.Fatalf("shard %d: offset %d, want %d", i, st.GlobalOffset(i), off)
		}
		if want := uint64(2*off + 1); fences[i] != want {
			t.Fatalf("shard %d: fence %d, want %d", i, fences[i], want)
		}
		off += st.ShardLen(i)
	}
	if off != n {
		t.Fatalf("shard lengths sum to %d, want %d", off, n)
	}
}

// TestDuplicatesAndTinyStores covers multiset (KeepAll) duplicate keys
// straddling shard boundaries and stores smaller than the requested
// shard count.
func TestDuplicatesAndTinyStores(t *testing.T) {
	dup := []uint64{5, 5, 5, 5, 9, 9, 1, 1, 1, 13}
	st, err := store.BuildSet(dup, store.WithShards(4), store.WithLayout(layout.BST),
		store.WithDuplicates(store.KeepAll))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(dup) {
		t.Fatalf("KeepAll store has %d keys, want %d", st.Len(), len(dup))
	}
	for _, x := range []uint64{1, 5, 9, 13} {
		if !st.Contains(x) {
			t.Fatalf("Contains(%d) = false", x)
		}
	}
	for _, x := range []uint64{0, 2, 7, 11, 14} {
		if st.Contains(x) {
			t.Fatalf("Contains(%d) = true", x)
		}
	}
	if got, _ := st.Export(); !slices.Equal(got, []uint64{1, 1, 1, 5, 5, 5, 5, 9, 9, 13}) {
		t.Fatalf("Export = %v", got)
	}

	tiny, err := store.BuildSet([]uint64{42, 7}, store.WithShards(16))
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Shards() > 2 {
		t.Fatalf("2-key store got %d shards", tiny.Shards())
	}
	if !tiny.Contains(7) || !tiny.Contains(42) || tiny.Contains(8) {
		t.Fatal("tiny store queries wrong")
	}

	if _, err := store.BuildSet([]uint64{}); err == nil {
		t.Fatal("Build of empty key set should fail")
	}
}

// TestRebuild migrates a snapshot to a new layout and shard count without
// disturbing the original.
func TestRebuild(t *testing.T) {
	const n = 4096
	st, err := store.BuildSet(shuffledOdd(n, 11),
		store.WithShards(4), store.WithLayout(layout.VEB), store.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := st.Rebuild(store.WithLayout(layout.BTree), store.WithB(4), store.WithShards(16))
	if err != nil {
		t.Fatal(err)
	}
	if rb.Layout() != layout.BTree || rb.B() != 4 || rb.Shards() != 16 {
		t.Fatalf("rebuild config not applied: %v b=%d shards=%d", rb.Layout(), rb.B(), rb.Shards())
	}
	if st.Layout() != layout.VEB || st.Shards() != 4 {
		t.Fatal("rebuild disturbed the original store")
	}
	for i := 0; i < n; i++ {
		if x := uint64(2*i + 1); !rb.Contains(x) || rb.Contains(x-1) {
			t.Fatalf("rebuilt store wrong at %d", x)
		}
	}
}

// TestBuildDoesNotMutateInput: the ingest copy really is a copy.
func TestBuildDoesNotMutateInput(t *testing.T) {
	keys := shuffledOdd(1<<13, 13)
	saved := slices.Clone(keys)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = keys[i] * 3
	}
	savedVals := slices.Clone(vals)
	if _, err := store.Build(keys, vals, store.WithShards(4), store.WithWorkers(8)); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(keys, saved) {
		t.Fatal("Build mutated its keys slice")
	}
	if !slices.Equal(vals, savedVals) {
		t.Fatal("Build mutated its vals slice")
	}
}

// TestAlgorithmFamiliesAgree: both permutation families produce stores
// that answer identically.
func TestAlgorithmFamiliesAgree(t *testing.T) {
	const n = 2048
	keys := shuffledOdd(n, 17)
	for _, kind := range []layout.Kind{layout.BST, layout.BTree, layout.VEB, layout.Hier} {
		a, err := store.BuildSet(keys, store.WithLayout(kind), store.WithShards(4),
			store.WithAlgorithm(perm.Involution))
		if err != nil {
			t.Fatal(err)
		}
		b, err := store.BuildSet(keys, store.WithLayout(kind), store.WithShards(4),
			store.WithAlgorithm(perm.CycleLeader))
		if err != nil {
			t.Fatal(err)
		}
		for q := uint64(0); q < uint64(2*n+2); q++ {
			if a.Contains(q) != b.Contains(q) {
				t.Fatalf("%v: families disagree at %d", kind, q)
			}
		}
	}
}
