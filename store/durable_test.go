package store

import (
	"bytes"
	"cmp"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"implicitlayout/layout"
)

// crashDB simulates a process crash: the background compactor stops and
// every file handle is dropped WITHOUT flushing memtables, writing the
// manifest, or deleting logs — exactly the state a kill -9 leaves on
// disk (the WAL appends are unbuffered, so everything acked is in the
// OS page cache / file already). The in-memory DB is unusable after.
func crashDB[K cmp.Ordered, V any](db *DB[K, V]) {
	db.worker.Close() // an in-flight flush may complete first: a valid crash point
	db.mu.Lock()
	db.closed = true
	if db.wal != nil {
		db.wal.f.Close() // drop the handle; the file keeps what was written
		db.wal = nil
	}
	db.mu.Unlock()
	if db.unlock != nil {
		db.unlock() // a dead process releases its flock
	}
}

func listFiles(t *testing.T, dir, pattern string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestDBCrashRecovery writes a batch across segments, frozen tables,
// and the active memtable, simulates a crash, reopens the directory,
// and verifies every acknowledged record — including overwrites and
// tombstones — is served exactly as acked. Every layout goes through
// the full cycle: recovery replays the WAL into segments encoded with
// the configured layout, so each on-disk kind (including the
// page-aligned hier frames) must survive crash → reopen → clean close.
func TestDBCrashRecovery(t *testing.T) {
	for _, kind := range append(layout.Kinds(), layout.Sorted) {
		t.Run(kind.String(), func(t *testing.T) {
			testDBCrashRecovery(t, kind)
		})
	}
}

func testDBCrashRecovery(t *testing.T, kind layout.Kind) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 64, Fanout: 2,
		Store: []Option{WithLayout(kind), WithShards(2), WithB(4)}}
	db, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ref := map[uint64]string{}
	ack := func(k uint64, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("write %d not acked: %v", k, err)
		}
	}
	for i := uint64(0); i < 300; i++ {
		v := fmt.Sprint("v", i)
		ack(i, db.Put(i, v))
		ref[i] = v
		if i == 150 {
			if err := db.Flush(); err != nil { // half the history: segments only
				t.Fatal(err)
			}
		}
	}
	for i := uint64(0); i < 300; i += 7 {
		ack(i, db.Delete(i))
		delete(ref, i)
	}
	for i := uint64(0); i < 300; i += 10 {
		v := fmt.Sprint("rewritten", i)
		ack(i, db.Put(i, v))
		ref[i] = v
	}

	crashDB(db)

	reopened, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatalf("reopening crashed directory: %v", err)
	}
	defer reopened.Close()
	if st := reopened.Stats(); st.DiskRuns != st.Runs() || st.DiskRuns == 0 {
		t.Fatalf("recovered runs not all disk-backed: %+v", st)
	}
	for i := uint64(0); i < 300; i++ {
		want, live := ref[i]
		got, ok := reopened.Get(i)
		if ok != live || got != want {
			t.Fatalf("recovered Get(%d) = %q, %v; want %q, %v", i, got, ok, want, live)
		}
	}
	n := 0
	reopened.Scan(func(k uint64, v string) bool {
		if want, ok := ref[k]; !ok || v != want {
			t.Fatalf("recovered Scan yielded %d=%q; reference says %q, %v", k, v, want, ok)
		}
		n++
		return true
	})
	if n != len(ref) {
		t.Fatalf("recovered Scan yielded %d records, reference has %d", n, len(ref))
	}

	// Replayed logs must be gone: recovery flushed them into a segment.
	if wals := listFiles(t, dir, "wal-*.log"); len(wals) != 1 {
		t.Fatalf("after recovery: %d WAL files, want exactly the fresh active log", len(wals))
	}

	// A clean close and a third open must serve the same state with
	// nothing to replay.
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	if wals := listFiles(t, dir, "wal-*.log"); len(wals) != 0 {
		t.Fatalf("after clean Close: WAL files remain: %v", wals)
	}
	third, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	for k, want := range ref {
		if got, ok := third.Get(k); !ok || got != want {
			t.Fatalf("third open Get(%d) = %q, %v; want %q", k, got, ok, want)
		}
	}
}

// TestDBTornWALTail cuts the final WAL record mid-frame — the shape a
// crash leaves when it interrupts an append — and verifies the reopen
// succeeds, serves every record before the tear, and drops only the
// torn one.
func TestDBTornWALTail(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 1 << 20} // never freezes: all records in one WAL
	db, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, fmt.Sprint("v", i)); err != nil {
			t.Fatal(err)
		}
	}
	crashDB(db)

	wals := listFiles(t, dir, "wal-*.log")
	if len(wals) != 1 {
		t.Fatalf("expected 1 WAL file, found %v", wals)
	}
	info, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0], info.Size()-3); err != nil { // tear the last frame
		t.Fatal(err)
	}

	reopened, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatalf("reopening with torn WAL tail: %v", err)
	}
	defer reopened.Close()
	for i := uint64(0); i < n-1; i++ {
		if v, ok := reopened.Get(i); !ok || v != fmt.Sprint("v", i) {
			t.Fatalf("record before the tear lost: Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := reopened.Get(n - 1); ok {
		t.Fatalf("the torn record was served")
	}
}

// TestDBWALCorruptMidFile flips a byte well inside the log: replay must
// stop at the damage (serving the intact prefix), Open must still
// succeed, and — unlike a benign torn tail — the damaged log must be
// preserved under a ".corrupt" suffix for inspection rather than
// silently deleted, and never replayed again.
func TestDBWALCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 1 << 20}
	db, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	crashDB(db)
	wals := listFiles(t, dir, "wal-*.log")
	raw, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(wals[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatalf("reopening with mid-file corruption: %v", err)
	}
	// The prefix before the damaged frame must be intact and correct.
	intact := 0
	for i := uint64(0); i < n; i++ {
		v, ok := reopened.Get(i)
		if !ok {
			break
		}
		if v != i*3 {
			t.Fatalf("recovered Get(%d) = %d, want %d", i, v, i*3)
		}
		intact++
	}
	if intact == 0 || intact == n {
		t.Fatalf("recovered %d/%d records; corruption should cost some tail but not everything", intact, n)
	}
	// The damaged log is evidence, not garbage: preserved, renamed, and
	// excluded from any future replay.
	if kept := listFiles(t, dir, "wal-*.log.corrupt"); len(kept) != 1 {
		t.Fatalf("corrupt WAL not preserved: %v", kept)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatalf("third open with a preserved .corrupt file: %v", err)
	}
	defer third.Close()
	for i := 0; i < intact; i++ {
		if v, ok := third.Get(uint64(i)); !ok || v != uint64(i)*3 {
			t.Fatalf("third open lost recovered record %d", i)
		}
	}
}

// TestDBWALCorruptMagic flips a bit inside the log's magic: the whole
// file is unreadable (nothing to recover), but the store must still
// open — preserving the file as .corrupt like any other damage — and
// its sequence number must stay pinned so no future rename can clobber
// the preserved copy.
func TestDBWALCorruptMagic(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 1 << 20}
	db, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := db.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	crashDB(db)
	wals := listFiles(t, dir, "wal-*.log")
	raw, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[2] ^= 0x01 // damage the magic itself
	if err := os.WriteFile(wals[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatalf("magic damage made the store unopenable: %v", err)
	}
	if _, ok := reopened.Get(3); ok {
		t.Fatal("records recovered from a log whose magic was damaged")
	}
	kept := listFiles(t, dir, "wal-*.log.corrupt")
	if len(kept) != 1 {
		t.Fatalf("damaged log not preserved: %v", kept)
	}
	// The preserved file pins its sequence: another crash-and-reopen
	// cycle must not reuse it (which would clobber the .corrupt copy).
	crashDB(reopened)
	third, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if after := listFiles(t, dir, "wal-*.log.corrupt"); len(after) != 1 || after[0] != kept[0] {
		t.Fatalf("preserved corrupt log disturbed: %v -> %v", kept, after)
	}
}

// TestDBOpenRefusesSecondOpener: the directory flock must make a
// concurrent second Open fail fast instead of letting two DBs corrupt
// each other's logs and manifest; Close releases it for the next opener.
func TestDBOpenRefusesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	db, err := Open[int, int](dir, DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open[int, int](dir, DBConfig{}); err == nil {
		t.Fatal("second Open of a live directory succeeded")
	}
	if err := db.Put(1, 1); err != nil { // the refused opener must not have broken the first
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open[int, int](dir, DBConfig{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer db2.Close()
	if v, ok := db2.Get(1); !ok || v != 1 {
		t.Fatalf("Get(1) = %d, %v after lock handoff", v, ok)
	}
}

// TestDBDurableCloseFlushesEverything is the durable face of the Close
// contract: several frozen tables plus an active one must all land in
// manifest-committed segments, with no logs left behind.
func TestDBDurableCloseFlushesEverything(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 8, Fanout: 4}
	db, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.worker.Close() // freeze backlog builds up with no background flushing
	const n = 50
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, fmt.Sprint("v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.FrozenTables < 2 {
		t.Fatalf("test needs a frozen backlog, got %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.MemRecords != 0 || st.FrozenTables != 0 || st.DiskRuns != st.Runs() {
		t.Fatalf("Close left volatile layers: %+v", st)
	}
	if wals := listFiles(t, dir, "wal-*.log"); len(wals) != 0 {
		t.Fatalf("Close left WAL files: %v", wals)
	}
	// The manifest and the directory must agree exactly (no strays).
	man, found, err := readManifest(dir)
	if err != nil || !found {
		t.Fatalf("manifest after Close: %v, found=%v", err, found)
	}
	segs := listFiles(t, dir, "seg-*.seg")
	if len(segs) != len(man.Segments) {
		t.Fatalf("%d segment files on disk, manifest names %d", len(segs), len(man.Segments))
	}
	reopened, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for i := uint64(0); i < n; i++ {
		if v, ok := reopened.Get(i); !ok || v != fmt.Sprint("v", i) {
			t.Fatalf("after Close+Open: Get(%d) = %q, %v", i, v, ok)
		}
	}
}

// TestDBDurableConcurrentWriters hammers a durable DB from several
// goroutines (WAL rotation and background flushing racing the writers),
// crashes it, and verifies every acknowledged write is recovered. Run
// under -race this also checks the log-rotation locking.
func TestDBDurableConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 128, Fanout: 2,
		Store: []Option{WithShards(2), WithLayout(layout.BTree), WithB(4)}}
	db, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		each    = 500
		stripe  = 1 << 20
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * stripe
			for i := uint64(0); i < each; i++ {
				if err := db.Put(base+i, base^i); err != nil {
					panic(fmt.Sprintf("writer %d: %v", w, err))
				}
				if i%5 == 0 {
					if err := db.Delete(base + i); err != nil {
						panic(fmt.Sprintf("writer %d delete: %v", w, err))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	crashDB(db)

	reopened, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for w := 0; w < writers; w++ {
		base := uint64(w) * stripe
		for i := uint64(0); i < each; i++ {
			v, ok := reopened.Get(base + i)
			if i%5 == 0 {
				if ok {
					t.Fatalf("deleted key %d resurrected as %d", base+i, v)
				}
			} else if !ok || v != base^i {
				t.Fatalf("acked write lost: Get(%d) = %d, %v; want %d", base+i, v, ok, base^i)
			}
		}
	}
}

// TestDBOpenEmptyAndReopen covers the degenerate lifecycles: an empty
// directory opens, closes, and reopens cleanly, and a crash with zero
// writes leaves a recoverable (empty) store.
func TestDBOpenEmptyAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open[int, int](dir, DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open[int, int](dir, DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db2.Get(1); ok {
		t.Fatal("empty store served a record")
	}
	crashDB(db2)
	db3, err := Open[int, int](dir, DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if n := db3.Stats().Runs(); n != 0 {
		t.Fatalf("empty lifecycle grew %d runs", n)
	}
}

// unencodable has fields but exports none, which gob refuses to carry.
type unencodable struct{ secret int }

// TestDBOpenRejectsUnencodableTypes: durable mode ships records through
// gob, so types it cannot carry must fail at Open, not at the first Put.
func TestDBOpenRejectsUnencodableTypes(t *testing.T) {
	if _, err := Open[int, unencodable](t.TempDir(), DBConfig{}); err == nil {
		t.Fatal("Open accepted a value type gob cannot encode (no exported fields)")
	}
	if _, err := Open[int, chan int](t.TempDir(), DBConfig{}); err == nil {
		t.Fatal("Open accepted a channel value type")
	}
	// The same types are fine in memory-only mode, and struct{} (a
	// durable key set) is fine in both — gob carries empty structs.
	db, err := NewDB[int, unencodable](DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	set, err := Open[int, struct{}](t.TempDir(), DBConfig{})
	if err != nil {
		t.Fatalf("durable key-set DB refused: %v", err)
	}
	set.Put(7, struct{}{})
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDBManifestSwapDeletesObsoleteSegments drives enough flushes to
// force merges and checks the directory never accumulates segments the
// manifest does not name.
func TestDBManifestSwapDeletesObsoleteSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 16, Fanout: 2}
	db, err := Open[uint64, uint64](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := db.Put(i%100, i); err != nil { // heavy overwrite: merges shrink
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	man, found, err := readManifest(dir)
	if err != nil || !found {
		t.Fatalf("manifest: %v, found=%v", err, found)
	}
	named := map[string]bool{}
	for _, s := range man.Segments {
		named[s.File] = true
	}
	for _, path := range listFiles(t, dir, "seg-*.seg") {
		if !named[filepath.Base(path)] {
			t.Fatalf("obsolete segment %s survived its manifest swap", filepath.Base(path))
		}
	}
	if len(named) != len(listFiles(t, dir, "seg-*.seg")) {
		t.Fatalf("manifest names %d segments, disk has %d", len(named), len(listFiles(t, dir, "seg-*.seg")))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDBOpenRefusesSegmentsWithoutManifest: a directory that holds
// segment files but no MANIFEST lost its authoritative segment list to
// external damage (the protocol stamps a manifest before any segment
// exists). Opening it as a fresh store would garbage-collect real data
// — it must be refused with everything left untouched.
func TestDBOpenRefusesSegmentsWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	db, err := Open[uint64, string](dir, DBConfig{MemLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30; i++ {
		if err := db.Put(i, fmt.Sprint("v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs := listFiles(t, dir, "seg-*.seg")
	if len(segs) == 0 {
		t.Fatal("test needs segment files")
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open[uint64, string](dir, DBConfig{}); err == nil {
		t.Fatal("Open accepted a segment-holding directory with no MANIFEST")
	}
	after := listFiles(t, dir, "seg-*.seg")
	if len(after) != len(segs) {
		t.Fatalf("refused Open still deleted segments: %d -> %d", len(segs), len(after))
	}
}

// TestDBOpenRejectsCorruptManifest: unlike a WAL tail, the manifest is
// rewritten atomically, so damage to it is real corruption and must be
// refused rather than guessed around.
func TestDBOpenRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	db, err := Open[int, int](dir, DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put(1, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open[int, int](dir, DBConfig{}); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

// TestDBSyncWrites smoke-tests the fsync-per-write path end to end.
func TestDBSyncWrites(t *testing.T) {
	dir := t.TempDir()
	cfg := DBConfig{MemLimit: 8, SyncWrites: true}
	db, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := db.Put(i, fmt.Sprint("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	crashDB(db)
	reopened, err := Open[uint64, string](dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for i := uint64(0); i < 20; i++ {
		if v, ok := reopened.Get(i); !ok || v != fmt.Sprint("s", i) {
			t.Fatalf("synced write lost: Get(%d) = %q, %v", i, v, ok)
		}
	}
}

// partialV21Stream builds the byte prefix a crash mid-streaming-merge
// leaves in the segment temp file: magic, v2.1 header, and one shard's
// frames — no filter frame, no trailer. Every reader must refuse it.
func partialV21Stream(t *testing.T, finish bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := newSegWriter[uint64, uint64](&buf, buildConfig(4, nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendShard([]uint64{10, 20, 30, 40},
		make([]mval[uint64], 4)); err != nil {
		t.Fatal(err)
	}
	if finish {
		if err := sw.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestDBCrashMidStreamingMerge plants the two artifacts a crash during
// a streaming compaction can leave — the WriteFileAtomic temp holding a
// partial v2.1 stream (killed mid-shard-append), and a complete v2.1
// segment that was renamed into place but never committed to the
// manifest — and verifies the reopen garbage-collects both, serves
// every record from the still-live victims, and that the interrupted
// merge then reruns to completion with the same answers.
func TestDBCrashMidStreamingMerge(t *testing.T) {
	dir := t.TempDir()
	big := DBConfig{MemLimit: 300, Fanout: 100} // one run per flush, no merges yet
	db, err := Open[uint64, uint64](dir, big)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[uint64]uint64{}
	for r := uint64(0); r < 3; r++ {
		for i := uint64(0); i < 200; i++ {
			k := r*150 + i // overlapping ranges: the merge resolves versions
			if k%11 == 0 {
				if err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(ref, k)
			} else {
				if err := db.Put(k, k*1000+r); err != nil {
					t.Fatal(err)
				}
				ref[k] = k*1000 + r
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Stats().Runs(); got != 3 {
		t.Fatalf("setup produced %d runs, want 3", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash artifacts. The temp is what dies mid-append inside
	// WriteFileAtomic; the strays are what dies between the rename and
	// the manifest commit (complete) or mid-append if the temp had
	// already been named (torn). All three carry the v2.1 version the
	// stray-GC probe must recognize — an unknown version would refuse
	// the whole directory.
	mustWrite := func(path string, data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite(filepath.Join(dir, ".tmp-seg-merge-crashed"), partialV21Stream(t, false))
	mustWrite(segmentPath(dir, 0xFFF0), partialV21Stream(t, false))
	mustWrite(segmentPath(dir, 0xFFF1), partialV21Stream(t, true))

	reopened, err := Open[uint64, uint64](dir, big)
	if err != nil {
		t.Fatalf("reopening after simulated merge crash: %v", err)
	}
	if got := reopened.Stats().Runs(); got != 3 {
		t.Fatalf("victims not all live after crash recovery: %d runs, want 3", got)
	}
	for _, glob := range []string{".tmp-*", "seg-000000000000fff*.seg"} {
		if left := listFiles(t, dir, glob); len(left) != 0 {
			t.Fatalf("crash artifacts survived the reopen: %v", left)
		}
	}
	for k := uint64(0); k < 500; k++ {
		want, live := ref[k]
		got, ok := reopened.Get(k)
		if ok != live || got != want {
			t.Fatalf("after crash recovery Get(%d) = (%d, %v), want (%d, %v)", k, got, ok, want, live)
		}
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}

	// Now let the interrupted merge actually run: reopen with a fanout
	// the three level-0 runs exceed and drain. The streamed merge must
	// produce one run serving the same records, deleted keys dropped
	// for good (the output is the oldest run).
	small := DBConfig{MemLimit: 300, Fanout: 3}
	merged, err := Open[uint64, uint64](dir, small)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if err := merged.Flush(); err != nil {
		t.Fatal(err)
	}
	st := merged.Stats()
	if st.Runs() != 1 || st.RunLevels[0] != 1 {
		t.Fatalf("merge did not compact to one level-1 run: %+v", st)
	}
	if st.RunRecords[0] != len(ref) {
		t.Fatalf("merged run holds %d records, want %d (tombstones dropped)", st.RunRecords[0], len(ref))
	}
	for k := uint64(0); k < 500; k++ {
		want, live := ref[k]
		got, ok := merged.Get(k)
		if ok != live || got != want {
			t.Fatalf("after merge Get(%d) = (%d, %v), want (%d, %v)", k, got, ok, want, live)
		}
	}
}
