package store

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"

	"implicitlayout/layout"
)

// v2FuzzLayouts maps the high bits of the fuzzed shard byte to a
// (layout, block capacity) pair, so one fuzz input byte steers shard
// count AND layout and the corpus explores every on-disk kind —
// including the page-aligned hier frames.
var v2FuzzLayouts = [8]struct {
	kind layout.Kind
	b    int
}{
	{layout.Sorted, 0},
	{layout.BST, 0},
	{layout.BTree, 8},
	{layout.VEB, 0},
	{layout.Hier, 8},
	{layout.BTree, 3},
	{layout.Hier, 2},
	{layout.Hier, 8},
}

// FuzzSegmentRoundTripV2 drives the raw fixed-width codec the way
// FuzzSegmentRoundTrip drives gob: fuzzer-shaped record sets over
// fixed-width keys AND values, so WriteTo picks codec v2 and the raw
// frames, padding, and platform-contract header fields are all in play.
// Properties: encode→decode identity (heap), truncation and bit-flip
// rejection (heap — the checksum-verifying reader), and a mapped parse
// of the same bytes that either refuses or serves the identical records,
// and never panics — including on truncated and misaligned input.
func FuzzSegmentRoundTripV2(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(2), uint8(7))
	f.Add([]byte{0xFF}, uint8(1), uint8(0))
	f.Add(bytes.Repeat([]byte{0x42, 0x00, 0x13}, 100), uint8(31), uint8(255))
	// High shard bits select the layout: 4<<5 is hier/b=8, 6<<5 hier/b=2.
	f.Add(bytes.Repeat([]byte{0x42, 0x00, 0x13}, 100), uint8(4<<5|2), uint8(9))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(6<<5|1), uint8(77))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8, flip uint8) {
		if len(data) == 0 {
			return
		}
		n := max(len(data)/3, 1)
		keys := make([]uint16, n)
		vals := make([]uint32, n)
		for i := 0; i < n; i++ {
			if 3*i+1 < len(data) {
				keys[i] = binary.LittleEndian.Uint16(data[3*i:])
			} else {
				keys[i] = uint16(data[3*i])
			}
			if 3*i+2 < len(data) {
				vals[i] = uint32(data[3*i+2]) * 3
			}
		}
		lay := v2FuzzLayouts[int(shards>>5)]
		st, err := Build(keys, vals,
			WithShards(int(shards%32)+1), WithLayout(lay.kind), WithB(lay.b))
		if err != nil {
			t.Fatalf("Build over fuzz records: %v", err)
		}
		var buf bytes.Buffer
		if _, err := st.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		enc := buf.Bytes()

		// Round trip through the checksum-verifying heap reader.
		got, err := ReadStore[uint16, uint32](bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("ReadStore on clean v2 stream: %v", err)
		}
		wantK, wantV := st.Export()
		gotK, gotV := got.Export()
		if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
			t.Fatalf("v2 round trip changed the records")
		}

		// The mapped parse of the same clean bytes serves identically.
		mst, err := readSegMapped[uint16, uint32](enc, plainCodec[uint32]{}, nil)
		if err != nil {
			t.Fatalf("readSegMapped on clean v2 stream: %v", err)
		}
		for _, k := range wantK {
			want, _ := st.Get(k)
			if v, ok := mst.Get(k); !ok || v != want {
				t.Fatalf("mapped Get(%d) = %d, %v; want %d", k, v, ok, want)
			}
		}

		// Truncation must be rejected by both readers.
		cut := int(flip) % len(enc)
		if _, err := ReadStore[uint16, uint32](bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("v2 segment truncated to %d/%d bytes accepted by heap reader", cut, len(enc))
		}
		if _, err := readSegMapped[uint16, uint32](enc[:cut:cut], plainCodec[uint32]{}, nil); err == nil {
			t.Fatalf("v2 segment truncated to %d/%d bytes accepted by mapped reader", cut, len(enc))
		}

		// A flipped byte must be rejected by the heap reader (every byte
		// is covered by the magic, a checksum, or structural validation).
		// The mapped reader deliberately skips bulk-array checksums, so
		// for it the property is weaker: no panic, and any store it does
		// return must still be structurally sound enough to query.
		pos := (int(flip)*131 + len(data)) % len(enc)
		bad := bytes.Clone(enc)
		bad[pos] ^= 1 | flip
		if bad[pos] == enc[pos] {
			return // the "corruption" was the identity; nothing to assert
		}
		if _, err := ReadStore[uint16, uint32](bytes.NewReader(bad)); err == nil {
			t.Fatalf("v2 segment with byte %d flipped accepted by heap reader", pos)
		}
		if bst, err := readSegMapped[uint16, uint32](bad, plainCodec[uint32]{}, nil); err == nil {
			for _, k := range wantK[:min(len(wantK), 8)] {
				bst.Get(k) // must not panic; values may legitimately differ
			}
		}
	})
}

// FuzzSegmentRoundTripV21 drives the streamable v2.1 run codec: records
// are shaped by the fuzzer, written through the streaming segment
// writer (fuzzer-chosen layout and shard sizing), and must round-trip
// identically through both the checksum-verifying heap reader and the
// mapped reader — bloom filter included. Truncation anywhere must be
// rejected by both readers, a flipped byte by the heap reader; the
// mapped reader must at minimum never panic.
func FuzzSegmentRoundTripV21(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(2), uint8(7))
	f.Add([]byte{0xFF}, uint8(1), uint8(0))
	f.Add(bytes.Repeat([]byte{0x42, 0x00, 0x13}, 100), uint8(31), uint8(255))
	f.Add(bytes.Repeat([]byte{9, 1, 0x77}, 64), uint8(4<<5|2), uint8(9))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(6<<5|1), uint8(77))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8, flip uint8) {
		if len(data) == 0 {
			return
		}
		// Derive a sorted, unique record set — the segWriter contract is
		// a KeepLast merge's output. Tombstones ride on a key-derived bit
		// so the 'w' frames carry dead slots too.
		n := max(len(data)/3, 1)
		set := make(map[uint16]mval[uint32], n)
		for i := 0; i < n; i++ {
			var k uint16
			if 3*i+1 < len(data) {
				k = binary.LittleEndian.Uint16(data[3*i:])
			} else {
				k = uint16(data[3*i])
			}
			set[k] = mval[uint32]{val: uint32(k) * 3, dead: k%5 == 0}
		}
		keys := make([]uint16, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		vals := make([]mval[uint32], len(keys))
		for i, k := range keys {
			vals[i] = set[k]
		}

		lay := v2FuzzLayouts[int(shards>>5)]
		cfg := buildConfig(len(keys), []Option{
			WithShards(int(shards%32) + 1), WithLayout(lay.kind), WithB(lay.b)})
		var buf bytes.Buffer
		sw, err := newSegWriter[uint16, uint32](&buf, cfg, len(keys))
		if err != nil {
			t.Fatalf("newSegWriter: %v", err)
		}
		// AppendShard permutes in place: feed it copies, keep the sorted
		// originals as the expectation.
		target := streamShardPlan(cfg, len(keys))
		for lo := 0; lo < len(keys); lo += target {
			hi := min(lo+target, len(keys))
			if err := sw.AppendShard(slices.Clone(keys[lo:hi]), slices.Clone(vals[lo:hi])); err != nil {
				t.Fatalf("AppendShard: %v", err)
			}
		}
		if err := sw.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		enc := buf.Bytes()

		// Heap round trip: identical records, restored bloom filter.
		got, err := readRunStream[uint16, uint32](bytes.NewReader(enc), 2)
		if err != nil {
			t.Fatalf("readRunStream on clean v2.1 stream: %v", err)
		}
		gotK, gotV := got.Export()
		if !slices.Equal(gotK, keys) {
			t.Fatalf("v2.1 round trip changed the keys: %d vs %d", len(gotK), len(keys))
		}
		for i := range vals {
			if gotV[i] != vals[i] {
				t.Fatalf("v2.1 round trip changed payload %d: %+v vs %+v", i, gotV[i], vals[i])
			}
		}
		if got.bloom == nil {
			t.Fatal("v2.1 round trip lost the bloom filter")
		}
		for _, k := range keys {
			if !got.bloom.MayContain(keyHash(k)) {
				t.Fatalf("restored bloom filter reports key %d absent", k)
			}
		}
		if got.maxKey != keys[len(keys)-1] {
			t.Fatalf("v2.1 round trip maxKey = %d, want %d", got.maxKey, keys[len(keys)-1])
		}

		// The mapped parse of the same clean bytes serves identically.
		mst, err := readSegMapped[uint16, mval[uint32]](enc, runCodec[uint32]{}, nil)
		if err != nil {
			t.Fatalf("readSegMapped on clean v2.1 stream: %v", err)
		}
		if mst.bloom == nil || mst.maxKey != keys[len(keys)-1] {
			t.Fatalf("mapped v2.1 open lost filter metadata (bloom=%v maxKey=%d)", mst.bloom != nil, mst.maxKey)
		}
		for _, k := range keys[:min(len(keys), 32)] {
			want, _ := got.Get(k)
			if v, ok := mst.Get(k); !ok || v != want {
				t.Fatalf("mapped Get(%d) = %+v, %v; want %+v", k, v, ok, want)
			}
		}

		// Truncation must be rejected by both readers.
		cut := int(flip) % len(enc)
		if _, err := readRunStream[uint16, uint32](bytes.NewReader(enc[:cut]), 1); err == nil {
			t.Fatalf("v2.1 segment truncated to %d/%d bytes accepted by heap reader", cut, len(enc))
		}
		if _, err := readSegMapped[uint16, mval[uint32]](enc[:cut:cut], runCodec[uint32]{}, nil); err == nil {
			t.Fatalf("v2.1 segment truncated to %d/%d bytes accepted by mapped reader", cut, len(enc))
		}

		// A flipped byte must be rejected by the heap reader; the mapped
		// reader skips bulk-array checksums, so for it: no panic.
		pos := (int(flip)*131 + len(data)) % len(enc)
		bad := bytes.Clone(enc)
		bad[pos] ^= 1 | flip
		if bad[pos] == enc[pos] {
			return
		}
		if _, err := readRunStream[uint16, uint32](bytes.NewReader(bad), 1); err == nil {
			t.Fatalf("v2.1 segment with byte %d flipped accepted by heap reader", pos)
		}
		if bst, err := readSegMapped[uint16, mval[uint32]](bad, runCodec[uint32]{}, nil); err == nil {
			for _, k := range keys[:min(len(keys), 8)] {
				bst.Get(k) // must not panic; values may legitimately differ
			}
		}
	})
}

// FuzzSegmentRoundTrip drives the segment codec with fuzzer-shaped
// record sets and checks the three properties the durability layer
// depends on: encode→decode is the identity on the served records, a
// truncated stream is rejected, and a checksum-corrupted stream is
// rejected. The record set (keys, values, shard count) is derived from
// the fuzz input so the fuzzer explores duplicate keys, single-record
// stores, and every shard/record ratio.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), uint8(7))
	f.Add([]byte{0}, uint8(4), uint8(0))
	f.Add(bytes.Repeat([]byte{0xFF, 0x00, 0x42}, 40), uint8(16), uint8(200))
	f.Add([]byte("duplicate duplicate duplicate"), uint8(3), uint8(13))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8, flip uint8) {
		if len(data) == 0 {
			return
		}
		// Derive records: 2 bytes of key, 1 byte of value payload each.
		n := max(len(data)/3, 1)
		keys := make([]uint16, n)
		vals := make([]string, n)
		for i := 0; i < n; i++ {
			var k uint16
			if 3*i+1 < len(data) {
				k = binary.LittleEndian.Uint16(data[3*i:])
			} else {
				k = uint16(data[3*i])
			}
			keys[i] = k
			if 3*i+2 < len(data) {
				vals[i] = string(data[3*i+2 : 3*i+3])
			}
		}
		st, err := Build(keys, vals, WithShards(int(shards%32)+1))
		if err != nil {
			t.Fatalf("Build over fuzz records: %v", err)
		}
		var buf bytes.Buffer
		if _, err := st.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		enc := buf.Bytes()

		// Round trip: the reopened store must serve the same records.
		got, err := ReadStore[uint16, string](bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("ReadStore on clean stream: %v", err)
		}
		wantK, wantV := st.Export()
		gotK, gotV := got.Export()
		if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
			t.Fatalf("round trip changed the records: %d vs %d", len(gotK), len(wantK))
		}
		for _, k := range wantK {
			want, _ := st.Get(k)
			if v, ok := got.Get(k); !ok || v != want {
				t.Fatalf("reopened Get(%d) = %q, %v; want %q", k, v, ok, want)
			}
		}

		// Truncation at a fuzzer-chosen point must be rejected.
		cut := int(flip) % len(enc)
		if _, err := ReadStore[uint16, string](bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("segment truncated to %d/%d bytes accepted", cut, len(enc))
		}

		// A flipped byte at a fuzzer-chosen position must be rejected:
		// every byte is covered by the magic, a frame checksum, or the
		// structural validation.
		pos := (int(flip)*131 + len(data)) % len(enc)
		bad := bytes.Clone(enc)
		bad[pos] ^= 1 | flip
		if bad[pos] == enc[pos] {
			return // the "corruption" was the identity; nothing to assert
		}
		if _, err := ReadStore[uint16, string](bytes.NewReader(bad)); err == nil {
			t.Fatalf("segment with byte %d flipped accepted", pos)
		}
	})
}
