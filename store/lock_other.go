//go:build !unix

package store

// lockDir on platforms without flock: the one-opener-per-directory
// contract is documented but not enforced.
func lockDir(dir string) (release func(), err error) {
	return func() {}, nil
}
