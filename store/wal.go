package store

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"implicitlayout/internal/blockio"
)

// The write-ahead log makes Put and Delete crash-safe: every write is
// appended to the active memtable's log file before it is applied (and
// before the call returns), so a process that dies with records still in
// memory replays them from the log at the next Open. One WAL file
// corresponds to one memtable lifetime: freezing the memtable rotates
// the log, and once the frozen table has been flushed into a segment and
// the manifest committed, its log is deleted — the segment now owns
// those records.
//
// A log is the magic "ILWAL\x01" followed by one blockio frame per
// record:
//
//	frame 'P': klen(4, LE) | gob(key) | gob(val)    a Put
//	frame 'D': klen(4, LE) | gob(key)               a Delete (tombstone)
//
// Each frame carries its own CRC-32C, so replay walks records until the
// stream ends, classifying how it ended: cleanly (walClean), at a frame
// cut short by a crashed append (walTorn — the expected shape of an
// interruption, costing at most the single write that was in flight),
// or at a checksum or decode failure (walCorrupt — real damage). Open
// deletes replayed logs that ended clean or torn, but preserves a
// corrupt log under a ".corrupt" suffix: the intact prefix is recovered
// and served, and the damaged file is kept for inspection instead of
// being silently destroyed.

const walMagic = "ILWAL\x01"

const (
	walTagPut    = 'P'
	walTagDelete = 'D'
)

// walEnd classifies how a log replay ended.
type walEnd int

const (
	walClean   walEnd = iota // the stream ended exactly at a frame boundary
	walTorn                  // final frame cut short: a crash-interrupted append
	walCorrupt               // checksum or decode failure: real damage
)

// walWriter appends records to one log file. Appends are not internally
// locked: the DB serializes them under the same mutex that orders
// memtable writes, which is what makes log order equal apply order.
// syncAck and seal have their own lock because the SyncWrites fsync
// deliberately happens after the DB mutex is released (see DB.write).
type walWriter struct {
	f    *os.File
	bw   *blockio.Writer
	path string

	mu       sync.Mutex // guards fsync vs seal/close, never held during appends
	sealed   bool       // seal ran: the file is closed
	fsyncErr error      // first fsync failure on this log, latched forever:
	// post-4.13 Linux reports a writeback error on only ONE fsync call
	// per fd, so a later caller's fsync can return nil after an earlier
	// one failed — every durability decision must consult the latch,
	// never a fresh Sync alone.
}

// walPath names the log file for the given sequence number.
func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

// parseWALSeq extracts the sequence number from a log file name. The
// match is exact, so derived names ("wal-….log.corrupt") and temp files
// never count as replayable logs.
func parseWALSeq(name string) (seq uint64, ok bool) {
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err != nil {
		return 0, false
	}
	return seq, name == fmt.Sprintf("wal-%016x.log", seq)
}

// createWAL creates a fresh log file for a new memtable lifetime and
// fsyncs the directory, so the file's existence survives a power
// failure — without that, a crash could drop the directory entry and
// with it every record the log had durably absorbed.
func createWAL(dir string, seq uint64) (*walWriter, error) {
	path := walPath(dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating WAL: %w", err)
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: initializing WAL: %w", err)
	}
	if err := blockio.SyncDir(dir); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: syncing db directory after WAL create: %w", err)
	}
	return &walWriter{f: f, bw: blockio.NewWriter(f), path: path}, nil
}

// append logs one record. The frame reaches the OS (one unbuffered
// write) before append returns; making it reach the disk is syncAck's
// job. Caller holds the DB mutex.
func (w *walWriter) append(tag byte, payload []byte) error {
	if err := w.bw.WriteBlock(tag, payload); err != nil {
		return fmt.Errorf("store: appending to WAL: %w", err)
	}
	return nil
}

// syncAck fsyncs the log before a SyncWrites Put/Delete is
// acknowledged. It runs after the DB mutex is released, so concurrent
// readers never stall behind a disk sync; because fsync persists the
// whole file, one writer's sync also covers every append that beat it —
// a natural group commit. If the log was sealed in the window between
// the append and this call (a concurrent freeze), the seal's fsync
// already covered the record and there is nothing to do.
func (w *walWriter) syncAck() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fsyncErr != nil {
		return w.fsyncErr // an earlier fsync failed; never ack over it
	}
	if w.sealed {
		return nil // covered by the seal's (successful) fsync
	}
	//lint:allow syncorder w.mu exists precisely to order this fsync against seal; db.mu is NOT held here — that is the ack-side group commit
	if err := w.f.Sync(); err != nil {
		w.fsyncErr = fmt.Errorf("store: syncing WAL: %w", err)
		return w.fsyncErr
	}
	return nil
}

// seal fsyncs and closes the log at memtable freeze: the frozen table's
// records are now durable regardless of the sync policy, and the file
// waits for its flush-then-delete.
func (w *walWriter) seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sealed = true
	if w.fsyncErr != nil {
		// A prior fsync already failed; this fd's Sync may now lie (the
		// kernel reports a writeback error once), so the log cannot be
		// trusted regardless of what a fresh call returns.
		w.f.Close()
		return w.fsyncErr
	}
	//lint:allow syncorder the seal's fsync must hold w.mu so racing syncAck calls cannot ack against a closed fd; w.mu is never reader-contended
	if err := w.f.Sync(); err != nil {
		// Latch the failure before anything else: a SyncWrites writer
		// racing this seal must see it from syncAck, not a false ack.
		w.fsyncErr = fmt.Errorf("store: syncing WAL at freeze: %w", err)
		w.f.Close()
		return w.fsyncErr
	}
	// The data is durable from here; a close failure loses nothing.
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing WAL: %w", err)
	}
	return nil
}

// discard closes the handle and deletes the file — used for the empty
// log of an active memtable at a clean Close. Only ever called on a log
// with no records (no syncAck can be in flight: there is nothing to
// ack).
func (w *walWriter) discard() error {
	w.mu.Lock()
	w.sealed = true
	w.f.Close()
	w.mu.Unlock()
	return os.Remove(w.path)
}

// encodeWALRecord builds the frame for one write. Key and value travel
// as independent gob streams so replay can decode them without a shared
// type dictionary; the key's byte length is prefixed to split the two.
func encodeWALRecord[K cmp.Ordered, V any](key K, mv mval[V]) (tag byte, payload []byte, err error) {
	var kbuf bytes.Buffer
	if err := gob.NewEncoder(&kbuf).Encode(key); err != nil {
		return 0, nil, fmt.Errorf("store: encoding WAL key: %w", err)
	}
	if mv.dead {
		payload = make([]byte, 4+kbuf.Len())
		binary.LittleEndian.PutUint32(payload, uint32(kbuf.Len()))
		copy(payload[4:], kbuf.Bytes())
		return walTagDelete, payload, nil
	}
	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(mv.val); err != nil {
		return 0, nil, fmt.Errorf("store: encoding WAL value: %w", err)
	}
	payload = make([]byte, 4+kbuf.Len()+vbuf.Len())
	binary.LittleEndian.PutUint32(payload, uint32(kbuf.Len()))
	copy(payload[4:], kbuf.Bytes())
	copy(payload[4+kbuf.Len():], vbuf.Bytes())
	return walTagPut, payload, nil
}

// decodeWALRecord inverts encodeWALRecord.
func decodeWALRecord[K cmp.Ordered, V any](tag byte, payload []byte) (key K, mv mval[V], err error) {
	if len(payload) < 4 {
		return key, mv, errors.New("store: WAL record shorter than its key-length prefix")
	}
	klen := int(binary.LittleEndian.Uint32(payload))
	if klen < 0 || 4+klen > len(payload) {
		return key, mv, fmt.Errorf("store: WAL record key length %d exceeds payload", klen)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload[4 : 4+klen])).Decode(&key); err != nil {
		return key, mv, fmt.Errorf("store: decoding WAL key: %w", err)
	}
	switch tag {
	case walTagDelete:
		mv.dead = true
	case walTagPut:
		if err := gob.NewDecoder(bytes.NewReader(payload[4+klen:])).Decode(&mv.val); err != nil {
			return key, mv, fmt.Errorf("store: decoding WAL value: %w", err)
		}
	default:
		return key, mv, fmt.Errorf("store: unknown WAL record tag %q", tag)
	}
	return key, mv, nil
}

// replayWAL applies every intact record of one log file in append order,
// returning the applied count and how the stream ended (see walEnd).
// Replay never errors on damage — the intact prefix is exactly the
// history worth recovering either way — but the caller uses the
// classification to decide the file's fate: delete a clean or torn log,
// preserve a corrupt one. Only a log the filesystem refuses to read is
// an error.
func replayWAL[K cmp.Ordered, V any](path string, apply func(key K, mv mval[V])) (n int, end walEnd, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, walCorrupt, fmt.Errorf("store: opening WAL: %w", err)
	}
	defer f.Close()
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, walTorn, nil // torn before the magic finished: an empty log
		}
		return 0, walCorrupt, fmt.Errorf("store: reading WAL magic: %w", err)
	}
	if string(magic) != walMagic {
		// The name matched the WAL pattern but the content does not:
		// bit rot in the first bytes. Same policy as damage anywhere
		// else — recover what can be recovered (nothing), preserve the
		// file, keep the store openable — rather than wedging every
		// future Open on a hard error.
		return 0, walCorrupt, nil
	}
	br := blockio.NewReader(f)
	for {
		tag, payload, err := br.Next()
		switch {
		case err == io.EOF:
			return n, walClean, nil
		case errors.Is(err, io.ErrUnexpectedEOF):
			return n, walTorn, nil // a crash-interrupted append: expected
		case err != nil:
			return n, walCorrupt, nil // checksum/length damage: preserve the file
		}
		key, mv, err := decodeWALRecord[K, V](tag, payload)
		if err != nil {
			return n, walCorrupt, nil // frame intact but content unparseable
		}
		apply(key, mv)
		n++
	}
}
