package store

import (
	"cmp"
	"fmt"
	"io"
	"reflect"
	"unsafe"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/filter"
	"implicitlayout/internal/mmapio"
	"implicitlayout/perm"
)

// segWriter writes a v2.1 run segment front to back, one shard at a
// time, without ever holding more than one shard's records: the caller
// hands AppendShard each shard's sorted keys and payloads as the merged
// stream produces them, the writer permutes them into the run's layout
// in place and appends their raw frames, and Finish seals the stream
// with the filter frame (shard lengths, record count, bloom filter) and
// the trailer. This is the streaming compaction's output half — the
// reason a merge of arbitrarily many records peaks at one shard of
// heap.
//
// The caller contract mirrors what a Build would have produced: each
// shard's keys strictly ascend (the run codec is KeepLast — no
// duplicates), successive shards ascend across the boundary, and no
// shard is empty. AppendShard permutes the caller's slices in place, so
// the caller may reuse them for the next shard once the call returns.
// A segWriter abandoned without Finish leaves a stream with no trailer,
// which every reader refuses — the crash-mid-merge story needs no
// writer-side cleanup.
type segWriter[K cmp.Ordered, V any] struct {
	bw       *blockio.Writer
	base     int64 // magic length: the frames' offset within the file
	cfg      Config
	align    int64
	keyWidth int
	valWidth int
	bloom    *filter.Bloom
	lens     []int
	records  int
	finished bool
}

// runStreamable reports whether runs of this type pair can take the
// streaming merge path at all: the v2.1 codec is raw-only, so both the
// key and the mval payload must be fixed-width. Everything else (string
// keys, struct values) merges through the in-memory path and persists
// as v1.
func runStreamable[K cmp.Ordered, V any]() bool {
	if _, ok := fixedKind(reflect.TypeFor[K]()); !ok {
		return false
	}
	_, _, ok := runCodec[V]{}.rawElem()
	return ok
}

// newSegWriter starts a v2.1 run segment on w: magic plus the header,
// whose structural counts stay zero — the trailing filter frame states
// them once the stream has run dry. upper is an upper bound on the
// record count (the sum of the merge inputs), used only to size the
// bloom filter; overshooting it costs filter density, never
// correctness. cfg carries the run build parameters (layout, B,
// algorithm, workers) the shards are permuted with.
func newSegWriter[K cmp.Ordered, V any](w io.Writer, cfg Config, upper int) (*segWriter[K, V], error) {
	if !runStreamable[K, V]() {
		return nil, fmt.Errorf("store: streaming segment writer requires fixed-width key and value types")
	}
	n, err := io.WriteString(w, segMagic)
	if err != nil {
		return nil, err
	}
	sw := &segWriter[K, V]{
		bw:    blockio.NewWriter(w),
		base:  int64(n),
		cfg:   cfg,
		align: int64(segAlignFor(cfg.Layout)),
		bloom: filter.New(upper),
	}
	kk, _ := fixedKind(reflect.TypeFor[K]())
	var zk K
	sw.keyWidth = int(unsafe.Sizeof(zk))
	vw, vk, _ := runCodec[V]{}.rawElem()
	sw.valWidth = vw
	hdr := segHeader{
		Version:    segV21,
		Payload:    segPayloadRun,
		HasVals:    true,
		Layout:     int(cfg.Layout),
		B:          cfg.B,
		Algorithm:  int(cfg.Algorithm),
		Duplicates: int(cfg.Duplicates),
		Endian:     hostEndian(),
		KeyKind:    int(kk),
		KeyWidth:   sw.keyWidth,
		ValKind:    int(vk),
		ValWidth:   vw,
	}
	if err := writeGobFrame(sw.bw, tagSegHeader, hdr); err != nil {
		return nil, err
	}
	return sw, nil
}

// AppendShard permutes one shard's sorted records into the configured
// layout — in place, mutating the caller's slices — and appends their
// raw frames. Every key is also fed to the run's bloom filter here, so
// filter construction rides the single pass the write already makes.
func (sw *segWriter[K, V]) AppendShard(keys []K, vals []mval[V]) error {
	if sw.finished {
		return fmt.Errorf("store: AppendShard after Finish")
	}
	if len(keys) == 0 || len(keys) != len(vals) {
		return fmt.Errorf("store: segment shard holds %d keys and %d values; want equal and nonzero", len(keys), len(vals))
	}
	if w := max(sw.keyWidth, sw.valWidth); len(keys) > blockio.MaxBlock/w {
		return fmt.Errorf("store: segment shard holds %d records × %d bytes, over the %d-byte per-shard frame cap of the raw segment codec",
			len(keys), w, blockio.MaxBlock)
	}
	for _, k := range keys {
		sw.bloom.Add(keyHash(k))
	}
	perm.PermuteWith(keys, vals, sw.cfg.Layout, sw.cfg.Algorithm,
		perm.WithWorkers(sw.cfg.Workers), perm.WithB(sw.cfg.B))
	if err := writeRawFrame(sw.bw, sw.base, tagSegKeys, mmapio.Bytes(keys), sw.align); err != nil {
		return err
	}
	if err := writeRawFrame(sw.bw, sw.base, tagSegRawVals, mmapio.Bytes(vals), sw.align); err != nil {
		return err
	}
	sw.lens = append(sw.lens, len(keys))
	sw.records += len(keys)
	return nil
}

// Records returns the record count appended so far.
func (sw *segWriter[K, V]) Records() int { return sw.records }

// Finish seals the segment: the filter frame carrying the shard
// lengths, record count, and bloom filter, then the trailer that marks
// the stream complete. At least one shard must have been appended — an
// empty segment is not a valid stream, and the compactor never writes
// one (an all-tombstone merge abandons the file instead).
func (sw *segWriter[K, V]) Finish() error {
	if sw.finished {
		return fmt.Errorf("store: Finish called twice")
	}
	if sw.records == 0 {
		return fmt.Errorf("store: Finish on a segment with no shards")
	}
	sw.finished = true
	sf := segFilter{ShardLens: sw.lens, Records: sw.records, Bloom: sw.bloom.Marshal()}
	if err := writeGobFrame(sw.bw, tagSegFilter, sf); err != nil {
		return err
	}
	return writeGobFrame(sw.bw, tagSegTrailer, segTrailer{Records: sw.records})
}
