// Package server serves a writable store.DB over TCP, speaking the
// pipelined binary protocol defined in internal/wire.
//
// Every layer below this one — implicit-layout stores, the LSM DB,
// mmap serving, the interleaved batch kernels — is in-process; this
// package is the wire. Its perf case mirrors the paper's argument one
// level up the hierarchy: just as the array layouts win by keeping many
// independent memory accesses in flight, a pipelined protocol wins by
// keeping many independent requests in flight per connection instead of
// paying one round trip per lookup — and pipelined GetBatch requests
// feed the interleaved ring kernels directly.
//
// Each connection runs one read loop and one write loop. The read loop
// decodes requests and dispatches reads (Get, GetBatch, Range, Stats)
// to a bounded pool of handler goroutines, so responses complete — and
// are written — out of order: a slow full-store Range never holds up
// the point lookups pipelined behind it. Writes (Put, Delete) execute
// inline on the read loop, so writes on one connection apply in the
// order they were sent. Each GetBatch and Range pins one snapshot epoch
// (store.View) for its whole batch: every key in the batch is answered
// by the same run stack, lock-free, no matter how the compactor churns
// mid-request.
//
// Close stops accepting, nudges every connection's read loop off its
// socket, waits for in-flight requests to finish and their responses to
// flush, and then closes the DB — a drain, not an abort. A torn
// connection tears down the same way minus the flush; pinned epochs are
// plain garbage-collected references, so a connection that dies
// mid-batch leaks neither goroutines nor epochs.
package server

import (
	"bufio"
	"bytes"
	"cmp"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/wire"
	"implicitlayout/store"
)

// ErrClosed is returned by Serve after Close has shut the server down.
var ErrClosed = errors.New("server: closed")

// handshakeTimeout bounds how long a fresh connection may take to send
// its Hello; a peer that connects and says nothing is dropped.
const handshakeTimeout = 10 * time.Second

// Config parameterizes New; zero fields select defaults.
type Config struct {
	// MaxInflight is the per-connection bound on concurrently executing
	// requests (default 64). It is the pipelining window the server
	// grants: past it, the read loop stops decoding until a handler
	// finishes, and TCP backpressure does the rest.
	MaxInflight int
	// MaxResult caps the records one Range response carries (default
	// wire.MaxBatch). A Range that hits the cap reports More=true and
	// the client continues from the last key it saw.
	MaxResult int
	// Workers is the per-request parallelism handed to GetBatch
	// (default 1, serial): under pipelining, concurrency comes from
	// many requests in flight, not from splitting one.
	Workers int
}

// Server serves one DB to any number of connections.
type Server[K cmp.Ordered, V any] struct {
	db    *store.DB[K, V]
	codec *wire.Codec[K, V]
	cfg   Config

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup // one per live connection
}

// New wraps db in a server. It fails if the key or value type cannot
// cross the wire (the raw format carries fixed-width primitives only,
// the same eligibility rule as the codec-v2 segment format).
func New[K cmp.Ordered, V any](db *store.DB[K, V], cfg Config) (*Server[K, V], error) {
	codec, err := wire.NewCodec[K, V]()
	if err != nil {
		return nil, err
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxResult <= 0 || cfg.MaxResult > wire.MaxBatch {
		cfg.MaxResult = wire.MaxBatch
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Server[K, V]{
		db:    db,
		codec: codec,
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts connections on lis until Close, serving each on its own
// goroutine pair. It returns ErrClosed after a clean shutdown, or the
// accept error that stopped it.
func (s *Server[K, V]) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr ("host:port") and serves — the
// one-call path for main functions.
func (s *Server[K, V]) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Addr returns the listening address, or nil before Serve.
func (s *Server[K, V]) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

func (s *Server[K, V]) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close shuts the server down gracefully: it stops accepting, kicks
// every connection's read loop off its socket (already-read requests
// keep executing and their responses still flush), waits for every
// connection to drain, and then closes the DB. It is idempotent; the
// error is the DB's Close error.
func (s *Server[K, V]) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		// An expired deadline unblocks the pending read and fails every
		// later one; it does not touch writes, so in-flight responses
		// still reach the peer before the connection closes.
		c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	if already {
		return s.db.Close() // idempotent: returns the sticky error
	}
	return s.db.Close()
}

// handleConn owns one connection: handshake, then the read-loop /
// write-loop pair until the peer hangs up, misbehaves, or Close drains
// us.
func (s *Server[K, V]) handleConn(conn net.Conn) {
	defer conn.Close()
	br := blockio.NewReaderLimit(bufio.NewReaderSize(conn, 64<<10), wire.MaxMessage)
	bw := bufio.NewWriterSize(conn, 64<<10)
	fw := blockio.NewWriter(bw)

	// Handshake: exactly one Hello, checked, answered. A peer whose
	// version or platform we cannot serve gets a refusal frame naming
	// the reason — mirroring the segment codec, an unknown version is
	// refused, never guessed at.
	if err := conn.SetReadDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return
	}
	tag, payload, err := br.Next()
	if err != nil || tag != wire.TagHello {
		return // not speaking the protocol: nothing sensible to say back
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		s.refuse(fw, bw, err)
		return
	}
	if err := s.codec.CheckHello(hello); err != nil {
		s.refuse(fw, bw, err)
		return
	}
	if err := fw.WriteBlock(wire.TagHelloOK, wire.EncodeHello(s.codec.Hello())); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return
	}

	// Session. The write loop serializes pre-rendered response frames;
	// the semaphore bounds concurrently executing requests.
	respCh := make(chan []byte, s.cfg.MaxInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		writeFrames(bw, respCh)
	}()
	sem := make(chan struct{}, s.cfg.MaxInflight)
	var handlers sync.WaitGroup
	for {
		tag, payload, err := br.Next()
		if err != nil || tag != wire.TagRequest {
			break // torn, closed, drained by Close, or a protocol violation
		}
		req, err := s.codec.DecodeRequest(payload)
		if err != nil {
			// The frame passed its checksum but does not parse as a
			// request: the peer is broken, and without a trustworthy ID
			// there is no way to answer just the bad request. Drop the
			// connection; its in-flight work still completes below.
			break
		}
		switch req.Op {
		case wire.OpPut, wire.OpDelete:
			// Inline on the read loop: writes on one connection apply in
			// the order the client sent them.
			respCh <- s.execWrite(req)
		case wire.OpGet:
			// Also inline: a point lookup is microseconds, below the cost
			// of dispatching it, and answering in place keeps a stream of
			// pipelined Gets on one hot goroutine. Out-of-order completion
			// is unharmed — the slow ops are the dispatched ones, and Gets
			// arriving behind them still answer immediately.
			respCh <- s.execRead(req)
		default:
			sem <- struct{}{}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				respCh <- s.execRead(req)
				<-sem
			}()
		}
	}
	handlers.Wait() // every dispatched request finishes and responds
	close(respCh)
	<-writerDone // and the responses are flushed (or the conn is dead)
}

// refuse answers a handshake with a refusal frame; best-effort, the
// connection is closing either way.
func (s *Server[K, V]) refuse(fw *blockio.Writer, bw *bufio.Writer, cause error) {
	if err := fw.WriteBlock(wire.TagRefuse, wire.EncodeError(0, cause.Error())); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
}

// writeFrames is the per-connection write loop: it writes frames as
// they complete, opportunistically coalescing everything already
// queued into one flush — the mirror of the client's pipelined send
// path. After a write error it keeps draining the channel (discarding)
// so no handler ever blocks on a dead connection.
func writeFrames(bw *bufio.Writer, respCh chan []byte) {
	var failed bool
	write := func(frame []byte) {
		if !failed {
			if _, err := bw.Write(frame); err != nil {
				failed = true
			}
		}
	}
	for frame := range respCh {
		write(frame)
		// One yield before draining: give handlers that are mid-enqueue a
		// chance to land their frames in this flush instead of paying a
		// syscall each — cheap on an idle pipe, a big coalescing win on a
		// busy one.
		runtime.Gosched()
	drain:
		for {
			select {
			case more, ok := <-respCh:
				if !ok {
					if !failed {
						bw.Flush()
					}
					return
				}
				write(more)
			default:
				break drain
			}
		}
		if !failed {
			if err := bw.Flush(); err != nil {
				failed = true
			}
		}
	}
	if !failed {
		bw.Flush()
	}
}

// execWrite applies one Put or Delete and renders its response frame.
func (s *Server[K, V]) execWrite(req *wire.Request[K, V]) []byte {
	var err error
	switch req.Op {
	case wire.OpPut:
		err = s.db.Put(req.Key, req.Val)
	case wire.OpDelete:
		err = s.db.Delete(req.Key)
	}
	if err != nil {
		return errFrame(req.ID, err)
	}
	return s.respFrame(req.ID, &wire.Response[K, V]{ID: req.ID, Op: req.Op})
}

// execRead serves one read request and renders its response frame.
// GetBatch and Range pin one snapshot epoch for the whole operation.
func (s *Server[K, V]) execRead(req *wire.Request[K, V]) []byte {
	resp := &wire.Response[K, V]{ID: req.ID, Op: req.Op}
	switch req.Op {
	case wire.OpGet:
		resp.Val, resp.Found = s.db.Get(req.Key)
	case wire.OpGetBatch:
		v := s.db.View()
		resp.Vals, resp.FoundAll = v.GetBatch(req.Keys, s.cfg.Workers)
	case wire.OpRange:
		limit := req.Limit
		if limit <= 0 || limit > s.cfg.MaxResult {
			limit = s.cfg.MaxResult
		}
		v := s.db.View()
		v.Range(req.Lo, req.Hi, func(k K, val V) bool {
			if len(resp.Keys) == limit {
				resp.More = true
				return false
			}
			resp.Keys = append(resp.Keys, k)
			resp.Vals = append(resp.Vals, val)
			return true
		})
	case wire.OpStats:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s.db.Stats()); err != nil {
			return errFrame(req.ID, err)
		}
		resp.Stats = buf.Bytes()
	default:
		return errFrame(req.ID, fmt.Errorf("unhandled op %s", req.Op))
	}
	return s.respFrame(req.ID, resp)
}

// respFrame renders a response, degrading to an error frame if the
// response itself cannot be encoded.
func (s *Server[K, V]) respFrame(id uint64, resp *wire.Response[K, V]) []byte {
	payload, err := s.codec.EncodeResponse(resp)
	if err != nil {
		return errFrame(id, err)
	}
	frame, err := wire.FrameBytes(wire.TagResponse, payload)
	if err != nil {
		return errFrame(id, err)
	}
	return frame
}

// errFrame renders an error response for one request.
func errFrame(id uint64, cause error) []byte {
	frame, err := wire.FrameBytes(wire.TagError, wire.EncodeError(id, cause.Error()))
	if err != nil {
		// Only reachable if the error text itself overflows a frame;
		// answer with a generic one rather than staying silent.
		frame, _ = wire.FrameBytes(wire.TagError, wire.EncodeError(id, "internal error"))
	}
	return frame
}
