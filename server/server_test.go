package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"implicitlayout/client"
	"implicitlayout/internal/blockio"
	"implicitlayout/internal/wire"
	"implicitlayout/server"
	"implicitlayout/store"
)

const valMagic = 0xD1B54A32D192ED03

// startServer brings up a server over db on a loopback listener and
// returns it, its address, and the channel Serve's result lands on.
func startServer(t *testing.T, db *store.DB[uint64, uint64], cfg server.Config) (*server.Server[uint64, uint64], string, chan error) {
	t.Helper()
	s, err := server.New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()
	return s, lis.Addr().String(), serveErr
}

// waitServe asserts Serve's clean-shutdown contract: it returns
// ErrClosed, promptly, after Close.
func waitServe(t *testing.T, serveErr chan error) {
	t.Helper()
	select {
	case err := <-serveErr:
		if !errors.Is(err, server.ErrClosed) {
			t.Fatalf("Serve returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

// TestServeRoundTrip drives every op through a real connection.
func TestServeRoundTrip(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, addr, serveErr := startServer(t, db, server.Config{})
	c, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := c.Put(ctx, i, i^valMagic); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if v, ok, err := c.Get(ctx, 7); err != nil || !ok || v != 7^valMagic {
		t.Fatalf("Get(7) = %d, %v, %v", v, ok, err)
	}
	if _, ok, err := c.Get(ctx, n+1); err != nil || ok {
		t.Fatalf("Get(missing) = found=%v, %v", ok, err)
	}
	if err := c.Delete(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(ctx, 7); err != nil || ok {
		t.Fatalf("Get(deleted) = found=%v, %v", ok, err)
	}

	keys := []uint64{1, 7, 2, n + 9, 3}
	vals, found, err := c.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		wantOK := k < n && k != 7
		if found[i] != wantOK {
			t.Fatalf("GetBatch key %d: found=%v, want %v", k, found[i], wantOK)
		}
		if wantOK && vals[i] != k^valMagic {
			t.Fatalf("GetBatch key %d: val %d", k, vals[i])
		}
	}

	rkeys, rvals, more, err := c.Range(ctx, 10, 19, 0)
	if err != nil || more {
		t.Fatalf("Range: more=%v, %v", more, err)
	}
	if len(rkeys) != 10 {
		t.Fatalf("Range returned %d records, want 10", len(rkeys))
	}
	for i, k := range rkeys {
		if k != uint64(10+i) || rvals[i] != k^valMagic {
			t.Fatalf("Range[%d] = %d → %d", i, k, rvals[i])
		}
	}
	// A limited Range truncates and says so.
	rkeys, _, more, err = c.Range(ctx, 0, n, 5)
	if err != nil || len(rkeys) != 5 || !more {
		t.Fatalf("limited Range: %d records, more=%v, %v", len(rkeys), more, err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.MemRecords == 0 {
		t.Fatalf("Stats over the wire reports an empty memtable: %+v", st)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)
}

// TestVersionMismatchRefused speaks a future protocol version at the
// server raw over TCP: the handshake must come back as a refusal frame
// naming the version, mirroring the segment codec's unknown-version
// rule — and the platform contract is held to the same standard.
func TestVersionMismatchRefused(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, addr, serveErr := startServer(t, db, server.Config{})

	hello := wire.Hello{Version: wire.Version + 7, Endian: "little", KeyKind: 11, KeyWidth: 8, ValKind: 11, ValWidth: 8}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := blockio.NewWriter(bw).WriteBlock(wire.TagHello, wire.EncodeHello(hello)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	tag, payload, err := blockio.NewReaderLimit(conn, wire.MaxMessage).Next()
	if err != nil {
		t.Fatal(err)
	}
	if tag != wire.TagRefuse {
		t.Fatalf("future-version hello answered with tag %q, want refusal", tag)
	}
	_, msg, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "version") {
		t.Fatalf("refusal does not name the version: %q", msg)
	}
	conn.Close()

	// The client surfaces a refusal as ErrRefused: here a platform
	// mismatch, dialing with the wrong key width.
	if _, err := client.Dial[uint32, uint64](addr, client.Config{}); !errors.Is(err, client.ErrRefused) {
		t.Fatalf("mismatched key type dial: %v, want ErrRefused", err)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)
}

// TestPipelinedOutOfOrder floods the pipeline with point Gets behind a
// full-store Range and checks the responses overtake it: the slow scan
// must not be the first call to complete.
func TestPipelinedOutOfOrder(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, i^valMagic); err != nil {
			t.Fatal(err)
		}
	}
	s, addr, serveErr := startServer(t, db, server.Config{})
	c, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One slow call first, then a pile of fast ones, all pipelined on
	// the single connection before any response is read.
	slow, err := c.Go(&wire.Request[uint64, uint64]{Op: wire.OpRange, Lo: 0, Hi: n, Limit: n})
	if err != nil {
		t.Fatal(err)
	}
	const gets = 32
	fast := make([]*client.Call[uint64, uint64], gets)
	for i := range fast {
		if fast[i], err = c.Go(&wire.Request[uint64, uint64]{Op: wire.OpGet, Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	order := make(chan int, gets+1)
	watch := func(idx int, done <-chan struct{}) { <-done; order <- idx }
	go watch(-1, slow.Done())
	for i, call := range fast {
		go watch(i, call.Done())
	}
	first := <-order
	if first == -1 {
		t.Fatalf("the full-store Range completed before any of the %d pipelined Gets behind it", gets)
	}
	for i := 0; i < gets; i++ {
		<-order
	}
	if slow.Err != nil || len(slow.Resp.Keys) != n {
		t.Fatalf("Range: %d records, %v", len(slow.Resp.Keys), slow.Err)
	}
	for i, call := range fast {
		if call.Err != nil || !call.Resp.Found || call.Resp.Val != uint64(i)^valMagic {
			t.Fatalf("Get(%d): %+v, %v", i, call.Resp, call.Err)
		}
	}

	if v, ok, err := c.Get(ctx, 5); err != nil || !ok || v != 5^valMagic {
		t.Fatalf("connection unhealthy after pipeline test: %d %v %v", v, ok, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)
}

// TestSnapshotConsistencyUnderWriter hammers the DB with writes through
// one connection while another issues GetBatch over a stable key set:
// every batch must resolve completely — one pinned epoch per batch, no
// key lost to a flush or merge mid-request.
func TestSnapshotConsistencyUnderWriter(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{MemLimit: 256, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, addr, serveErr := startServer(t, db, server.Config{})
	ctx := context.Background()

	const stable = 2000
	keys := make([]uint64, stable)
	writer, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		keys[i] = uint64(i)
		if err := writer.Put(ctx, keys[i], keys[i]^valMagic); err != nil {
			t.Fatal(err)
		}
	}

	// Churn: a writer connection floods disjoint keys, forcing constant
	// freezes, flushes, and merges under the reader's feet.
	churnDone := make(chan error, 1)
	stopChurn := make(chan struct{})
	go func() {
		k := uint64(1) << 32
		for {
			select {
			case <-stopChurn:
				churnDone <- nil
				return
			default:
			}
			if err := writer.Put(ctx, k, k); err != nil {
				churnDone <- err
				return
			}
			k++
		}
	}()

	reader, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		vals, found, err := reader.GetBatch(ctx, keys)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, k := range keys {
			if !found[i] || vals[i] != k^valMagic {
				t.Fatalf("round %d: key %d resolved found=%v val=%d — batch saw a torn epoch",
					round, k, found[i], vals[i])
			}
		}
	}
	close(stopChurn)
	if err := <-churnDone; err != nil {
		t.Fatalf("churn writer: %v", err)
	}

	if err := reader.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)
}

// TestErrClosedAfterShutdown closes the server under a live client:
// Serve returns ErrClosed, the client's session dies with ErrClosed,
// every later call fails fast, and new dials are refused.
func TestErrClosedAfterShutdown(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, addr, serveErr := startServer(t, db, server.Config{})
	c, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Put(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)

	// The client notices the hangup without being asked to write.
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("client never observed the server shutdown")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(c.Err(), client.ErrClosed) {
		t.Fatalf("session error = %v, want ErrClosed", c.Err())
	}
	if _, _, err := c.Get(ctx, 1); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Get after shutdown = %v, want ErrClosed", err)
	}
	if _, err := client.Dial[uint64, uint64](addr, client.Config{}); err == nil {
		t.Fatal("Dial succeeded against a closed server")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornConnectionLeaksNothing tears connections down mid-batch —
// requests sent, responses never read, socket slammed shut — and then
// requires the goroutine count to return to its baseline: a dead
// connection releases its read loop, write loop, handlers, and pinned
// epoch with no help from anyone.
func TestTornConnectionLeaksNothing(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{MemLimit: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10_000; i++ {
		if err := db.Put(i, i^valMagic); err != nil {
			t.Fatal(err)
		}
	}
	s, addr, serveErr := startServer(t, db, server.Config{})
	baseline := runtime.NumGoroutine()

	keys := make([]uint64, 8192)
	for i := range keys {
		keys[i] = uint64(i)
	}
	for round := 0; round < 5; round++ {
		c, err := client.Dial[uint64, uint64](addr, client.Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Queue a pile of batched reads and a write, flush them onto the
		// wire, and vanish without reading a single response.
		for j := 0; j < 4; j++ {
			if _, err := c.Go(&wire.Request[uint64, uint64]{Op: wire.OpGetBatch, Keys: keys}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Go(&wire.Request[uint64, uint64]{Op: wire.OpPut, Key: 1, Val: 1}); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}

	waitGoroutines(t, baseline, "after torn connections")

	// The server is unharmed: a fresh connection still gets answers.
	c, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(context.Background(), 3); err != nil || !ok || v != 3^valMagic {
		t.Fatalf("Get after torn connections: %d %v %v", v, ok, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)
}

// waitGoroutines polls until the goroutine count falls back to at most
// base (plus scheduler slack), failing with a dump of the overshoot.
func waitGoroutines(t *testing.T, base int, when string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines, baseline %d — connection teardown leaks", when, n, base)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelledCallFreesItsSlot cancels Dos against a tiny window and
// checks the window recovers: an abandoned call must free its slot when
// its response is eventually discarded, or the pipeline would jam.
func TestCancelledCallFreesItsSlot(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(9, 9^valMagic); err != nil {
		t.Fatal(err)
	}
	s, addr, serveErr := startServer(t, db, server.Config{})
	c, err := client.Dial[uint64, uint64](addr, client.Config{Window: 2})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: Do must abandon, not hang
		_, _, err := c.Get(ctx, 9)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Do: %v", err)
		}
	}
	// 20 abandoned calls through a window of 2: slots were recycled.
	if v, ok, err := c.Get(context.Background(), 9); err != nil || !ok || v != 9^valMagic {
		t.Fatalf("Get after cancellations: %d %v %v", v, ok, err)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)
}

// TestCloseDrainsInflight checks graceful shutdown ordering: requests
// already read keep executing, their responses still reach the client,
// and only then does the DB close.
func TestCloseDrainsInflight(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, i^valMagic); err != nil {
			t.Fatal(err)
		}
	}
	s, addr, serveErr := startServer(t, db, server.Config{})
	c, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// A slow full scan, provably read by the server before Close lands:
	// the read loop consumes frames in order, so once the Get queued
	// behind the Range has its answer, the Range has been dispatched.
	slow, err := c.Go(&wire.Request[uint64, uint64]{Op: wire.OpRange, Lo: 0, Hi: n, Limit: n})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(context.Background(), 1); err != nil || !ok {
		t.Fatalf("marker Get: %v %v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)

	select {
	case <-slow.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight Range never completed across Close")
	}
	if slow.Err != nil {
		t.Fatalf("drained Range failed: %v — Close cut an in-flight response off", slow.Err)
	}
	if len(slow.Resp.Keys) != n {
		t.Fatalf("drained Range returned %d records, want %d", len(slow.Resp.Keys), n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGarbageConnectionDropped feeds the server plain garbage and a
// checksummed-but-malformed request; both connections just die, and the
// server keeps serving.
func TestGarbageConnectionDropped(t *testing.T) {
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(1, 1^valMagic); err != nil {
		t.Fatal(err)
	}
	s, addr, serveErr := startServer(t, db, server.Config{})

	// Not even a frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(conn, "GET / HTTP/1.1\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("server answered garbage with %d bytes", n)
	}
	conn.Close()

	// A valid handshake, then a request frame whose payload is noise:
	// the checksum passes, the decode fails, the connection drops.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	fw := blockio.NewWriter(bw)
	codec, err := wire.NewCodec[uint64, uint64]()
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteBlock(wire.TagHello, wire.EncodeHello(codec.Hello())); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := blockio.NewReaderLimit(conn, wire.MaxMessage)
	if tag, _, err := br.Next(); err != nil || tag != wire.TagHelloOK {
		t.Fatalf("handshake: tag %q, %v", tag, err)
	}
	if err := fw.WriteBlock(wire.TagRequest, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := br.Next(); err == nil {
		t.Fatal("malformed request got a response instead of a hangup")
	}
	conn.Close()

	// Innocent bystanders are unaffected.
	c, err := client.Dial[uint64, uint64](addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(context.Background(), 1); err != nil || !ok || v != 1^valMagic {
		t.Fatalf("Get after garbage peers: %d %v %v", v, ok, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitServe(t, serveErr)
}
