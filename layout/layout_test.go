package layout

import (
	"reflect"
	"testing"
	"testing/quick"
)

func iota1(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i + 1
	}
	return s
}

// TestBSTFigure11 checks the BST layout against Figure 1.1 (N = 15).
func TestBSTFigure11(t *testing.T) {
	got := Build(BST, iota1(15), 0)
	want := []int{8, 4, 12, 2, 6, 10, 14, 1, 3, 5, 7, 9, 11, 13, 15}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BST layout N=15:\n got %v\nwant %v", got, want)
	}
}

// TestBTreeFigure12 checks the B-tree layout against Figure 1.2
// (N = 26, B = 2).
func TestBTreeFigure12(t *testing.T) {
	got := Build(BTree, iota1(26), 2)
	want := []int{
		9, 18,
		3, 6, 12, 15, 21, 24,
		1, 2, 4, 5, 7, 8, 10, 11, 13, 14, 16, 17, 19, 20, 22, 23, 25, 26,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("B-tree layout N=26 B=2:\n got %v\nwant %v", got, want)
	}
}

// TestVEBFigure13 checks the vEB layout against Figure 1.3 (N = 15).
func TestVEBFigure13(t *testing.T) {
	got := Build(VEB, iota1(15), 0)
	want := []int{8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vEB layout N=15:\n got %v\nwant %v", got, want)
	}
}

// TestRanksArePermutations verifies that every layout's rank table is a
// permutation of 0..n-1 for a sweep of sizes, including non-perfect ones.
func TestRanksArePermutations(t *testing.T) {
	for n := 1; n <= 300; n++ {
		for _, k := range Kinds() {
			for _, b := range btreeBs(k) {
				ranks := Ranks(k, n, b)
				seen := make([]bool, n)
				for _, r := range ranks {
					if r < 0 || r >= n || seen[r] {
						t.Fatalf("%v n=%d b=%d: rank table not a permutation: %v", k, n, b, ranks)
					}
					seen[r] = true
				}
			}
		}
	}
}

func btreeBs(k Kind) []int {
	if k == BTree || k == Hier {
		return []int{1, 2, 3, 4, 8}
	}
	return []int{0}
}

// TestBSTInOrderSorted verifies that walking any BST layout in-order
// yields 0..n-1: the defining property of a search-tree layout.
func TestBSTInOrderSorted(t *testing.T) {
	for n := 1; n <= 200; n++ {
		ranks := Ranks(BST, n, 0)
		var walk func(i int, next *int)
		walk = func(i int, next *int) {
			if i >= n {
				return
			}
			walk(BSTLeft(i), next)
			if ranks[i] != *next {
				t.Fatalf("n=%d: in-order visit of pos %d has rank %d, want %d", n, i, ranks[i], *next)
			}
			*next++
			walk(BSTRight(i), next)
		}
		next := 0
		walk(0, &next)
		if next != n {
			t.Fatalf("n=%d: in-order visited %d nodes", n, next)
		}
	}
}

// TestBSTPosInvertsRanks verifies BSTPos is the inverse of the rank table.
func TestBSTPosInvertsRanks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 10, 15, 100, 127, 128, 1000} {
		ranks := Ranks(BST, n, 0)
		for pos, rk := range ranks {
			if got := BSTPos(rk, n); got != pos {
				t.Fatalf("n=%d: BSTPos(%d) = %d, want %d", n, rk, got, pos)
			}
		}
	}
}

// TestVEBNavMatchesRanks verifies that the navigator's position of every
// conceptual tree node agrees with the rank table: the key at
// Pos(depth, rank) must have the in-order rank that the complete BST
// assigns to that node.
func TestVEBNavMatchesRanks(t *testing.T) {
	for n := 1; n <= 600; n++ {
		vr := Ranks(VEB, n, 0)
		br := Ranks(BST, n, 0) // br[bfs] = in-order rank of node bfs
		nav := NewVEBNav(n)
		for depth := 0; ; depth++ {
			first := 1<<uint(depth) - 1
			if first >= n {
				break
			}
			for rank := 0; rank < 1<<uint(depth) && first+rank < n; rank++ {
				pos := nav.Pos(depth, rank)
				if vr[pos] != br[first+rank] {
					t.Fatalf("n=%d node(d=%d,r=%d): vEB pos %d holds rank %d, want %d",
						n, depth, rank, pos, vr[pos], br[first+rank])
				}
			}
		}
	}
}

// TestVEBSplitMatchesPaper checks the split sizes quoted in Section 3.1.
func TestVEBSplitMatchesPaper(t *testing.T) {
	for x := 1; x <= 8; x++ {
		// N = 2^(2x) - 1: r = l = 2^x - 1.
		lt, lb := VEBSplit(2 * x)
		if r, l := 1<<uint(lt)-1, 1<<uint(lb)-1; r != 1<<uint(x)-1 || l != 1<<uint(x)-1 {
			t.Fatalf("L=%d: r=%d l=%d, want both %d", 2*x, r, l, 1<<uint(x)-1)
		}
		if 2*x-1 >= 1 {
			// N = 2^(2x-1) - 1: r = 2^x - 1, l = 2^(x-1) - 1.
			lt, lb = VEBSplit(2*x - 1)
			if r, l := 1<<uint(lt)-1, 1<<uint(lb)-1; r != 1<<uint(x)-1 || l != 1<<uint(x-1)-1 {
				t.Fatalf("L=%d: r=%d l=%d, want %d and %d", 2*x-1, r, l, 1<<uint(x)-1, 1<<uint(x-1)-1)
			}
		}
	}
}

// TestPerfectPrefix checks the full-level arithmetic for several branching
// factors.
func TestPerfectPrefix(t *testing.T) {
	cases := []struct{ n, k, full, h int }{
		{0, 2, 0, 0}, {1, 2, 1, 1}, {2, 2, 1, 1}, {3, 2, 3, 2},
		{6, 2, 3, 2}, {7, 2, 7, 3}, {8, 2, 7, 3},
		{26, 3, 26, 3}, {25, 3, 8, 2}, {80, 3, 80, 4},
		{9, 9, 8, 1}, {500000000, 2, 1<<28 - 1, 28},
	}
	for _, c := range cases {
		full, h := PerfectPrefix(c.n, c.k)
		if full != c.full || h != c.h {
			t.Errorf("PerfectPrefix(%d, %d) = (%d, %d), want (%d, %d)", c.n, c.k, full, h, c.full, c.h)
		}
	}
}

// TestBuildSortedIdentity checks the Sorted kind is the identity.
func TestBuildSortedIdentity(t *testing.T) {
	in := iota1(37)
	if got := Build(Sorted, in, 0); !reflect.DeepEqual(got, in) {
		t.Fatalf("Sorted layout is not the identity: %v", got)
	}
}

// TestVEBNavExists is a property test: Exists agrees with the BFS bound.
func TestVEBNavExists(t *testing.T) {
	f := func(nRaw uint16, d uint8, rk uint16) bool {
		n := int(nRaw)%1000 + 1
		depth := int(d) % 12
		rank := int(rk) % (1 << uint(depth))
		nav := NewVEBNav(n)
		want := (1<<uint(depth)-1)+rank < n
		return nav.Exists(depth, rank) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVEBCursorMatchesPos: descending through every root-to-leaf path with
// the incremental cursor visits exactly the positions VEBNav.Pos computes.
func TestVEBCursorMatchesPos(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 15, 16, 26, 63, 100, 255, 256, 1000, 4097} {
		nav := NewVEBNav(n)
		var walk func(cur VEBCursor, depth, rank int)
		walk = func(cur VEBCursor, depth, rank int) {
			want := nav.Pos(depth, rank)
			if got := cur.Pos(); got != want {
				t.Fatalf("n=%d node(d=%d,r=%d): cursor pos %d, want %d", n, depth, rank, got, want)
			}
			for dir := 0; dir <= 1; dir++ {
				child := cur
				exists := nav.Exists(depth+1, 2*rank+dir)
				if child.Descend(dir) != exists {
					t.Fatalf("n=%d node(d=%d,r=%d): Descend(%d) existence mismatch", n, depth, rank, dir)
				}
				if exists {
					walk(child, depth+1, 2*rank+dir)
				}
			}
		}
		walk(nav.Cursor(), 0, 0)
	}
}

// TestVEBCursorReset: a reused cursor returns to the root.
func TestVEBCursorReset(t *testing.T) {
	nav := NewVEBNav(1000)
	cur := nav.Cursor()
	root := cur.Pos()
	cur.Descend(1)
	cur.Descend(0)
	cur.Reset()
	if cur.Pos() != root {
		t.Fatal("Reset did not return to root")
	}
}
