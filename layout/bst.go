package layout

// BSTLeft returns the position of the left child of the node at BST-layout
// position i (0-indexed Eytzinger arithmetic).
func BSTLeft(i int) int { return 2*i + 1 }

// BSTRight returns the position of the right child of the node at
// BST-layout position i.
func BSTRight(i int) int { return 2*i + 2 }

// BSTParent returns the position of the parent of the node at BST-layout
// position i > 0.
func BSTParent(i int) int { return (i - 1) / 2 }

// bstRanks computes the in-order rank stored at every position of the BST
// layout of a complete tree with n nodes, by an iterative in-order
// traversal of the implicit tree (O(n) time, O(log n) space).
func bstRanks(n int) []int {
	ranks := make([]int, n)
	stack := make([]int, 0, 64)
	rank := 0
	i := 0
	for i < n || len(stack) > 0 {
		for i < n {
			stack = append(stack, i)
			i = BSTLeft(i)
		}
		i = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ranks[i] = rank
		rank++
		i = BSTRight(i)
	}
	return ranks
}

// BSTPos returns the BST-layout position of the key with in-order rank
// rank (0-based) in a complete tree of n nodes, in O(log n) time, by
// descending from the root and maintaining the rank of the current
// subtree's root.
func BSTPos(rank, n int) int {
	if rank < 0 || rank >= n {
		panic("layout: BSTPos rank out of range")
	}
	pos := 0
	lo, hi := 0, n // current subtree holds ranks [lo, hi)
	for {
		root := subtreeRootRank(lo, hi)
		switch {
		case rank == root:
			return pos
		case rank < root:
			pos, hi = BSTLeft(pos), root
		default:
			pos, lo = BSTRight(pos), root+1
		}
	}
}

// subtreeRootRank returns the in-order rank of the root of the complete
// subtree holding the contiguous rank interval [lo, hi).
func subtreeRootRank(lo, hi int) int {
	n := hi - lo
	if n == 1 {
		return lo
	}
	full, _ := PerfectPrefix(n, 2)
	// A complete tree with n nodes: the full levels hold `full` nodes; the
	// last level holds w = n - full nodes, filled left to right. The left
	// subtree holds (full-1)/2 full nodes plus min(w, cap) last-level
	// nodes, where cap = (full+1)/2 is the last-level capacity per side.
	if full == n {
		// perfect tree: root is the exact middle
		return lo + n/2
	}
	w := n - full
	capSide := (full + 1) / 2
	leftSize := (full-1)/2 + min(w, capSide)
	return lo + leftSize
}
