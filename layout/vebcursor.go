package layout

import "implicitlayout/internal/bits"

// maxVEBFrames bounds the decomposition stack depth: the level count at
// least halves per frame, so 64-level trees need at most 7 nested frames.
const maxVEBFrames = 8

// vebFrame is one subtree on the decomposition path to the current node.
// Local coordinates are derived from the cursor's global (depth, rank):
// the node's depth within the frame is gdepth - entry, and its rank within
// the frame is the low gdepth-entry bits of grank — so descending never
// rewrites the stack.
type vebFrame struct {
	off    int
	n      int
	levels int
	entry  int // global depth of this subtree's root level
}

// VEBCursor performs a root-to-leaf descent through a vEB layout with
// amortized O(1) work per level: it keeps the stack of decomposition
// subtrees containing the current node and updates it incrementally (each
// subtree on the path is entered exactly once). This is the optimization
// that keeps vEB query cost within a small factor of B-tree queries, as
// in the paper's measurements, instead of paying a full O(log log N)
// position derivation per level (VEBNav.Pos). The zero value is not
// usable; obtain cursors from VEBNav.Cursor.
type VEBCursor struct {
	n      int
	gdepth int
	grank  int
	top    int
	stack  [maxVEBFrames]vebFrame
}

// Cursor returns a cursor positioned at the root.
func (nav VEBNav) Cursor() VEBCursor {
	c := VEBCursor{n: nav.n}
	c.Reset()
	return c
}

// Reset repositions the cursor at the root.
func (c *VEBCursor) Reset() {
	c.gdepth, c.grank = 0, 0
	c.top = 0
	c.stack[0] = vebFrame{off: 0, n: c.n, levels: bits.Levels(max(c.n, 1)), entry: 0}
	c.refine()
}

// Pos returns the array position of the current node.
func (c *VEBCursor) Pos() int { return c.stack[c.top].off }

// Descend moves to the left (dir 0) or right (dir 1) child and reports
// whether that child exists in the complete tree.
func (c *VEBCursor) Descend(dir int) bool {
	gd, gr := c.gdepth+1, 2*c.grank+dir
	if (1<<uint(gd)-1)+gr >= c.n {
		return false
	}
	c.gdepth, c.grank = gd, gr
	// Pop the subtrees the child falls out of.
	for gd-c.stack[c.top].entry >= c.stack[c.top].levels {
		c.top--
	}
	c.refine()
	return true
}

// refine pushes decomposition frames until the innermost subtree has a
// single level, whose offset is the node's position. Each frame is pushed
// once on the way down a root-to-leaf path, so the cost is amortized
// constant per level.
func (c *VEBCursor) refine() {
	for {
		f := &c.stack[c.top]
		if f.levels <= 1 {
			return
		}
		depth := c.gdepth - f.entry
		lt, _ := VEBSplit(f.levels)
		if depth < lt {
			c.top++
			c.stack[c.top] = vebFrame{
				off:    f.off,
				n:      1<<uint(lt) - 1,
				levels: lt,
				entry:  f.entry,
			}
			continue
		}
		rank := c.grank & (1<<uint(depth) - 1) // rank within f's subtree
		bi := rank >> uint(depth-lt)
		lb := f.levels - lt
		if f.n == 1<<uint(f.levels)-1 {
			// Perfect subtree: all bottoms have 2^lb - 1 nodes.
			sj := 1<<uint(lb) - 1
			c.top++
			c.stack[c.top] = vebFrame{
				off:    f.off + (1<<uint(lt) - 1) + bi*sj,
				n:      sj,
				levels: lb,
				entry:  f.entry + lt,
			}
			continue
		}
		d := vebDecompose(f.n, f.levels)
		sj := d.size(bi)
		c.top++
		c.stack[c.top] = vebFrame{
			off:    f.off + d.topN + d.sizeSum(bi),
			n:      sj,
			levels: bits.Levels(sj),
			entry:  f.entry + lt,
		}
	}
}
