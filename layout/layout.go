// Package layout defines the implicit search-tree memory layouts:
// the three studied in the paper — the level-order binary search tree
// (BST), the level-order B-tree, and the van Emde Boas (vEB) layout —
// plus the page-aware two-level hierarchical layout (Hier, hier.go)
// built for mmap-backed serving, together with the index arithmetic
// needed to navigate them and reference (out-of-place) constructors
// that serve as correctness oracles for the in-place parallel
// permutation algorithms in package perm.
//
// All trees are *complete*: every level except possibly the last is full
// and the last level is filled left to right. A layout assigns each node of
// the conceptual tree a position in a flat array; the in-order traversal of
// the tree enumerates the stored keys in sorted order. Because a layout is
// just a permutation of sorted order, every query about it is index
// arithmetic: child and parent maps (vEB navigation is packaged in VEBNav
// and its cursor), and PosOf, the in-order rank → array position map that
// gives any layout positional access in sorted order in O(log N) — the
// primitive behind search.Index's rank accessors and ordered iteration,
// and through them the store layer's sorted record streaming.
package layout

import "fmt"

// Kind identifies one of the implicit search-tree layouts.
type Kind int

const (
	// BST is the breadth-first (level-order, Eytzinger) layout of a
	// complete binary search tree: node i has children 2i+1 and 2i+2.
	BST Kind = iota
	// BTree is the breadth-first layout of a complete (B+1)-ary B-tree:
	// node m occupies positions [m*B, m*B+B) and has children
	// m*(B+1)+1+c for c in [0, B].
	BTree
	// VEB is the van Emde Boas layout: the tree is split at the middle
	// level into a top tree of ceil(L/2) levels followed by the layouts
	// of its bottom subtrees, recursively (cache-oblivious).
	VEB
	// Sorted is the identity layout (plain sorted array, binary search).
	Sorted
	// Hier is the two-level hierarchical (FAST-style) layout: page-sized
	// super-blocks arranged as an outer B-tree, each internally laid out
	// as cacheline-sized B-tree blocks — see hier.go. b is the cacheline
	// node capacity; the page capacity is HierPageKeys(b).
	Hier
)

// String returns the conventional name of the layout.
func (k Kind) String() string {
	switch k {
	case BST:
		return "bst"
	case BTree:
		return "btree"
	case VEB:
		return "veb"
	case Sorted:
		return "sorted"
	case Hier:
		return "hier"
	}
	return fmt.Sprintf("layout.Kind(%d)", int(k))
}

// Kinds lists the four tree layouts (excluding Sorted): the paper's
// three plus the hierarchical two-level layout of hier.go.
func Kinds() []Kind { return []Kind{BST, BTree, VEB, Hier} }

// Ranks returns the rank table of the layout: r[pos] is the in-order rank
// (0-based position in sorted order) of the key stored at array position
// pos. b is the B-tree node capacity and is ignored by other layouts.
// Ranks is the reference definition of each layout; the in-place
// permutation algorithms are tested against it.
func Ranks(k Kind, n, b int) []int {
	switch k {
	case BST:
		return bstRanks(n)
	case BTree:
		return btreeRanks(n, b)
	case VEB:
		return vebRanks(n)
	case Hier:
		return hierRanks(n, b)
	case Sorted:
		r := make([]int, n)
		for i := range r {
			r[i] = i
		}
		return r
	}
	panic("layout: unknown kind")
}

// Build returns a new array holding sorted rearranged into layout k: the
// out-of-place oracle construction. b is the B-tree node capacity.
func Build[T any](k Kind, sorted []T, b int) []T {
	ranks := Ranks(k, len(sorted), b)
	out := make([]T, len(sorted))
	for pos, rk := range ranks {
		out[pos] = sorted[rk]
	}
	return out
}

// PerfectPrefix returns the largest I = k^h - 1 with I <= n, together with
// h: the number of keys on the full levels of a complete search tree with
// n keys and branching factor k (k = 2 for a BST, k = B+1 for a B-tree).
func PerfectPrefix(n, k int) (full, h int) {
	if n < 0 || k < 2 {
		panic("layout: PerfectPrefix domain error")
	}
	full, h = 0, 0
	next := k - 1
	for next <= n {
		full = next
		h++
		next = next*k + (k - 1)
	}
	return full, h
}
