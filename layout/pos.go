package layout

// PosOf returns the array position, under layout k, of the key with
// in-order rank `rank` (0-based) in a complete tree of n keys with B-tree
// node capacity b. It is the forward permutation pi of the paper: sorted
// index -> layout index, computable in O(log n) (plus O(log log n) factors
// for vEB) without materializing the rank table.
func PosOf(k Kind, rank, n, b int) int {
	if rank < 0 || rank >= n {
		panic("layout: PosOf rank out of range")
	}
	switch k {
	case Sorted:
		return rank
	case BST:
		return BSTPos(rank, n)
	case BTree:
		return BTreePos(rank, n, b)
	case VEB:
		return VEBPos(rank, n)
	case Hier:
		return HierPos(rank, n, b)
	}
	panic("layout: unknown kind")
}

// BTreePos returns the B-tree layout position of in-order rank `rank` by
// descending the node tree and maintaining the rank interval owned by the
// current subtree.
func BTreePos(rank, n, b int) int {
	node := 0
	lo, hi := 0, n // ranks owned by the subtree rooted at node
	for {
		start := BTreeNodeStart(node, b)
		keys := min(b, n-start)
		// Subtree children sizes follow from the complete-tree shape:
		// walk this node's keys and child subtrees in order.
		cur := lo
		for t := 0; t < keys; t++ {
			cs := BTreeSubtreeSize(BTreeChild(node, t, b), n, b)
			if rank < cur+cs {
				node = BTreeChild(node, t, b)
				lo, hi = cur, cur+cs
				goto descend
			}
			cur += cs
			if rank == cur {
				return start + t
			}
			cur++
		}
		// rank falls in the last child.
		node = BTreeChild(node, keys, b)
		lo = cur
		_ = hi
	descend:
	}
}

// BTreeSubtreeSize returns the number of keys stored in the subtree rooted
// at the given node of a complete B-tree with n keys, in O(log n) time:
// per level, the subtree owns a contiguous node interval whose key count
// follows from the BFS numbering.
func BTreeSubtreeSize(node int, n, b int) int {
	total := 0
	first, count := node, 1
	for first*b < n {
		start := first * b
		end := min((first+count)*b, n)
		if end > start {
			total += end - start
		}
		first = first*(b+1) + 1
		count *= b + 1
	}
	return total
}

// VEBPos returns the vEB layout position of in-order rank `rank`: it
// first locates the conceptual tree node holding that rank (as in a BST)
// and then converts it through the navigator.
func VEBPos(rank, n int) int {
	// Descend the conceptual complete BST exactly like BSTPos, tracking
	// (depth, nodeRank).
	depth, nodeRank := 0, 0
	lo, hi := 0, n
	nav := NewVEBNav(n)
	for {
		root := subtreeRootRank(lo, hi)
		switch {
		case rank == root:
			return nav.Pos(depth, nodeRank)
		case rank < root:
			depth, nodeRank, hi = depth+1, 2*nodeRank, root
		default:
			depth, nodeRank, lo = depth+1, 2*nodeRank+1, root+1
		}
	}
}
