package layout

// BTreeNode returns the node index (0-based, breadth-first) owning layout
// position pos when each node holds b keys.
func BTreeNode(pos, b int) int { return pos / b }

// BTreeChild returns the node index of child c (0 <= c <= b) of node m in
// a (b+1)-ary B-tree.
func BTreeChild(m, c, b int) int { return m*(b+1) + 1 + c }

// BTreeNodeStart returns the layout position of the first key of node m.
func BTreeNodeStart(m, b int) int { return m * b }

// btreeRanks computes the in-order rank stored at every position of the
// level-order B-tree layout of a complete B-tree with n keys and b keys
// per node. Nodes are filled breadth-first; every node is full except
// possibly the last one. The traversal is recursive with O(log n) depth.
func btreeRanks(n, b int) []int {
	if b < 1 {
		panic("layout: B-tree node capacity must be >= 1")
	}
	ranks := make([]int, n)
	rank := 0
	var visit func(m int)
	visit = func(m int) {
		start := BTreeNodeStart(m, b)
		if start >= n {
			return
		}
		keys := min(b, n-start)
		for t := 0; t < keys; t++ {
			visit(BTreeChild(m, t, b))
			ranks[start+t] = rank
			rank++
		}
		visit(BTreeChild(m, keys, b))
	}
	visit(0)
	return ranks
}
