package layout

import "testing"

// TestPosOfInvertsRanks: PosOf agrees with the rank table on every layout
// for a dense sweep of sizes — the forward permutation is exact.
func TestPosOfInvertsRanks(t *testing.T) {
	const b = 3
	for n := 1; n <= 400; n++ {
		for _, k := range append(Kinds(), Sorted) {
			ranks := Ranks(k, n, b)
			for pos, rk := range ranks {
				if got := PosOf(k, rk, n, b); got != pos {
					t.Fatalf("%v n=%d: PosOf(rank=%d) = %d, want %d", k, n, rk, got, pos)
				}
			}
		}
	}
}

// TestBTreeSubtreeSizes: subtree sizes sum correctly at the root.
func TestBTreeSubtreeSizes(t *testing.T) {
	for _, b := range []int{1, 2, 4} {
		for n := 1; n <= 300; n++ {
			if got := BTreeSubtreeSize(0, n, b); got != n {
				t.Fatalf("b=%d n=%d: root subtree size %d", b, n, got)
			}
		}
	}
}

func TestPosOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PosOf(BST, 5, 5, 0)
}
