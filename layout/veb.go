package layout

import "implicitlayout/internal/bits"

// VEBSplit returns the level split used by the van Emde Boas layout for a
// tree with L levels: the top tree keeps Lt = ceil(L/2) levels and every
// bottom subtree the remaining L - Lt levels. This matches Section 3.1:
// for N = 2^(2x)-1 the top and bottom sizes are r = l = 2^x - 1, and for
// N = 2^(2x-1)-1 they are r = 2^x - 1, l = 2^(x-1) - 1.
func VEBSplit(levels int) (top, bottom int) {
	top = (levels + 1) / 2
	return top, levels - top
}

// vebBottoms describes the bottom subtrees of one vEB decomposition step
// of a complete tree with n nodes and L = Levels(n) levels.
type vebBottoms struct {
	topN int // nodes in the (always perfect) top tree
	base int // full-part size of each bottom: 2^(Lb-1) - 1
	cap  int // last-level capacity of each bottom: 2^(Lb-1)
	w    int // nodes on the (possibly partial) last level of the tree
	lb   int // bottom levels (including the partial level)
}

func vebDecompose(n, levels int) vebBottoms {
	lt, lb := VEBSplit(levels)
	return vebBottoms{
		topN: 1<<uint(lt) - 1,
		base: 1<<uint(lb-1) - 1,
		cap:  1 << uint(lb-1),
		w:    n - (1<<uint(levels-1) - 1),
		lb:   lb,
	}
}

// size returns the node count of bottom subtree j (0-based), and sizeSum
// the total node count of bottoms 0..j-1. The last level distributes left
// to right, so bottom j receives clamp(w - j*cap, 0, cap) of its nodes.
func (d vebBottoms) size(j int) int {
	return d.base + clamp(d.w-j*d.cap, 0, d.cap)
}

func (d vebBottoms) sizeSum(j int) int {
	return j*d.base + min(d.w, j*d.cap)
}

// vebRanks computes the in-order rank stored at every position of the vEB
// layout of a complete tree with n nodes. The layout is the top tree's
// layout followed by each bottom subtree's layout; the in-order sequence
// interleaves bottoms and top keys: B_0, t_0, B_1, t_1, ..., B_topN.
func vebRanks(n int) []int {
	ranks := make([]int, n)
	var fill func(out []int, n int, rankOff func(local int) int)
	fill = func(out []int, n int, rankOff func(local int) int) {
		if n == 0 {
			return
		}
		if n == 1 {
			out[0] = rankOff(0)
			return
		}
		d := vebDecompose(n, bits.Levels(n))
		// Top tree: its i-th smallest key has global local-rank
		// sizeSum(i+1) + i (all keys of bottoms 0..i plus i top keys).
		fill(out[:d.topN], d.topN, func(i int) int {
			return rankOff(d.sizeSum(i+1) + i)
		})
		off := d.topN
		for j := 0; off < n; j++ {
			sj := d.size(j)
			if sj == 0 {
				break
			}
			base := d.sizeSum(j) + j
			fill(out[off:off+sj], sj, func(x int) int { return rankOff(base + x) })
			off += sj
		}
	}
	fill(ranks, n, func(i int) int { return i })
	return ranks
}

// VEBNav navigates a vEB-laid-out array of n nodes: it converts a node of
// the conceptual complete binary tree, identified by (depth, rank) with
// rank counted within the level, to its position in the layout array.
type VEBNav struct{ n int }

// NewVEBNav returns a navigator for a vEB layout of n nodes.
func NewVEBNav(n int) VEBNav { return VEBNav{n: n} }

// Exists reports whether node (depth, rank) exists in the complete tree:
// its breadth-first index 2^depth - 1 + rank must be below n.
func (nav VEBNav) Exists(depth, rank int) bool {
	return depth >= 0 && rank >= 0 && rank < 1<<uint(depth) &&
		(1<<uint(depth)-1)+rank < nav.n
}

// Pos returns the array position of node (depth, rank). It walks the
// recursive decomposition, O(log log n) steps, re-deriving at each step
// which top or bottom subtree the node falls into — the "costly index
// computation" that makes vEB queries slower than B-tree queries in the
// paper's measurements.
func (nav VEBNav) Pos(depth, rank int) int {
	if !nav.Exists(depth, rank) {
		panic("layout: VEBNav.Pos of non-existent node")
	}
	off, n := 0, nav.n
	levels := bits.Levels(n)
	for {
		if levels == 1 {
			return off // depth is necessarily 0 here
		}
		lt, _ := VEBSplit(levels)
		if depth < lt {
			// The node lies in the (perfect) top tree, which is laid out
			// first, starting at the same offset.
			n = 1<<uint(lt) - 1
			levels = lt
			continue
		}
		d := vebDecompose(n, levels)
		dd := depth - lt
		bi := rank >> uint(dd)
		rank &= 1<<uint(dd) - 1
		depth = dd
		off += d.topN + d.sizeSum(bi)
		n = d.size(bi)
		levels = bits.Levels(n)
	}
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
