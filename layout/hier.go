package layout

// The hierarchical (FAST-style) layout is the two-level blocking scheme
// of Lindstrom–Rajan ("Optimal Hierarchical Layouts for Cache-Oblivious
// Search Trees") and Alstrup et al. ("Efficient Tree Layout in a
// Multilevel Memory Hierarchy"), specialized to the two miss units the
// mmap serving path actually has: the key array is partitioned into
// page-sized super-blocks, and each super-block is internally laid out
// as cacheline-sized B-tree blocks.
//
// Structurally the layout is a composition of two B-tree layouts:
//
//   - The outer tree is the level-order B-tree layout with node capacity
//     P = HierPageKeys(b): page m owns the contiguous array positions
//     [m*P, m*P+P) — one page block — and has P+1 children. A cold
//     lookup therefore touches O(log_{P+1} N) pages, the page-cache
//     optimum, where the flat B-tree touches O(log_{b+1} N) pages.
//   - Within a page, the block's P keys (ascending in the outer layout)
//     are rearranged into the level-order B-tree layout with capacity b,
//     so resolving one page costs O(log_{b+1} P) cache lines instead of
//     a 4 KiB scan.
//
// Because both levels are plain B-tree layouts over contiguous windows,
// the position function is a two-step composition of BTreePos, the
// in-place construction is two passes of the existing B-tree permutation
// kernels (see internal/core), and the inverse is the same composition
// read backwards. Both trees are complete, so every array length is
// supported: the last page block and the last cacheline block of any
// page may be partial.

// HierPageNodes is the number of cacheline-sized B-tree nodes per page
// block of the hierarchical layout: 64 nodes of b keys each, so with the
// default b = 8 (8-byte keys, 64-byte lines) a page block holds 512 keys
// = 4 KiB — exactly one OS page.
const HierPageNodes = 64

// HierPageKeys returns the keys per page block of the hierarchical
// layout with cacheline node capacity b.
func HierPageKeys(b int) int {
	if b < 1 {
		panic("layout: hierarchical layouts require b >= 1")
	}
	return HierPageNodes * b
}

// HierPos returns the hierarchical-layout position of in-order rank
// `rank` in a complete tree of n keys with cacheline node capacity b:
// the outer page-granular B-tree locates the page block and the in-page
// rank, the inner cacheline B-tree places it within the block. O(log n).
func HierPos(rank, n, b int) int {
	p := HierPageKeys(b)
	outer := BTreePos(rank, n, p)
	pageStart := outer - outer%p
	pk := min(p, n-pageStart)
	return pageStart + BTreePos(outer-pageStart, pk, b)
}

// HierRank is the inverse of HierPos: the in-order rank of the key at
// array position pos. Together they are the forward and inverse halves
// of the layout's permutation — HierRank(HierPos(r, n, b), n, b) == r
// for every rank r.
func HierRank(pos, n, b int) int {
	if pos < 0 || pos >= n {
		panic("layout: HierRank position out of range")
	}
	p := HierPageKeys(b)
	pageStart := pos - pos%p
	pk := min(p, n-pageStart)
	return BTreeRank(pageStart+BTreeRank(pos-pageStart, pk, b), n, p)
}

// BTreeRank is the inverse of BTreePos: the in-order rank of the key at
// position pos of the level-order B-tree layout of a complete tree with
// n keys and b keys per node. It recovers the root-to-node path from the
// BFS numbering, then replays the descent summing the subtree sizes the
// path passes. O(log² n) index arithmetic, no rank table.
func BTreeRank(pos, n, b int) int {
	if pos < 0 || pos >= n {
		panic("layout: BTreeRank position out of range")
	}
	m, slot := BTreeNode(pos, b), pos%b
	// Child indices along the path from the root to node m, leaf-first.
	var path [64]int
	depth := 0
	for q := m; q > 0; depth++ {
		parent := (q - 1) / (b + 1)
		path[depth] = q - 1 - parent*(b+1)
		q = parent
	}
	rank := 0
	node := 0
	for d := depth - 1; d >= 0; d-- {
		c := path[d]
		// Entering child c skips the c keys before it and the subtrees of
		// children 0..c-1.
		rank += c
		for t := 0; t < c; t++ {
			rank += BTreeSubtreeSize(BTreeChild(node, t, b), n, b)
		}
		node = BTreeChild(node, c, b)
	}
	rank += slot
	for t := 0; t <= slot; t++ {
		rank += BTreeSubtreeSize(BTreeChild(node, t, b), n, b)
	}
	return rank
}

// hierRanks computes the in-order rank stored at every position of the
// hierarchical layout: the outer page-granular B-tree rank table, with
// each page block's positions routed through the inner cacheline B-tree
// rank table. It is the reference oracle HierPos and the in-place
// permutation are tested against.
func hierRanks(n, b int) []int {
	p := HierPageKeys(b)
	outer := btreeRanks(n, p)
	ranks := make([]int, n)
	for pageStart := 0; pageStart < n; pageStart += p {
		pk := min(p, n-pageStart)
		inner := btreeRanks(pk, b)
		for q, t := range inner {
			ranks[pageStart+q] = outer[pageStart+t]
		}
	}
	return ranks
}
