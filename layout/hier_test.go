package layout

import (
	"slices"
	"testing"
)

// hierSizes spans the boundary shapes the two-level blocking produces:
// n=1, below one cacheline block, exactly/around one block, below one
// page block, exactly/around one page, partial trailing blocks at both
// levels, and several full pages plus a partial one.
func hierSizes(b int) []int {
	p := HierPageKeys(b)
	sizes := []int{1, 2, b - 1, b, b + 1, 2*b + 1, p - 1, p, p + 1,
		2*p - 1, 2 * p, 3*p + b + 1, 5*p + 2}
	var out []int
	for _, n := range sizes {
		if n >= 1 {
			out = append(out, n)
		}
	}
	return out
}

// TestHierRanksAreAPermutation: the reference rank table is a bijection
// on [0, n) for every boundary size.
func TestHierRanksAreAPermutation(t *testing.T) {
	for _, b := range []int{1, 2, 8} {
		for _, n := range hierSizes(b) {
			ranks := Ranks(Hier, n, b)
			seen := make([]bool, n)
			for pos, r := range ranks {
				if r < 0 || r >= n || seen[r] {
					t.Fatalf("b=%d n=%d: rank %d at pos %d repeats or overflows", b, n, r, pos)
				}
				seen[r] = true
			}
		}
	}
}

// TestHierPosMatchesRanks: the closed-form position function agrees with
// the reference in-order walk for every rank.
func TestHierPosMatchesRanks(t *testing.T) {
	for _, b := range []int{1, 2, 3, 8} {
		for _, n := range hierSizes(b) {
			ranks := Ranks(Hier, n, b)
			for pos, r := range ranks {
				if got := HierPos(r, n, b); got != pos {
					t.Fatalf("b=%d n=%d: HierPos(%d) = %d, want %d", b, n, r, got, pos)
				}
			}
		}
	}
}

// TestHierPosRankRoundTrip: HierRank inverts HierPos for all ranks, and
// HierPos inverts HierRank for all positions.
func TestHierPosRankRoundTrip(t *testing.T) {
	for _, b := range []int{1, 2, 8} {
		for _, n := range hierSizes(b) {
			for r := 0; r < n; r++ {
				pos := HierPos(r, n, b)
				if got := HierRank(pos, n, b); got != r {
					t.Fatalf("b=%d n=%d: HierRank(HierPos(%d)) = %d", b, n, r, got)
				}
			}
			for pos := 0; pos < n; pos++ {
				r := HierRank(pos, n, b)
				if got := HierPos(r, n, b); got != pos {
					t.Fatalf("b=%d n=%d: HierPos(HierRank(%d)) = %d", b, n, pos, got)
				}
			}
		}
	}
}

// TestBTreeRankInvertsBTreePos: the new closed-form B-tree inverse
// agrees with the rank table the layout has always defined.
func TestBTreeRankInvertsBTreePos(t *testing.T) {
	for _, b := range []int{1, 2, 3, 8, 512} {
		for _, n := range []int{1, 2, 7, 8, 9, 63, 64, 65, 512, 513, 1000} {
			ranks := Ranks(BTree, n, b)
			for pos, r := range ranks {
				if got := BTreeRank(pos, n, b); got != r {
					t.Fatalf("b=%d n=%d: BTreeRank(%d) = %d, want %d", b, n, pos, got, r)
				}
			}
		}
	}
}

// TestHierBuildIsSearchable: Build places the sorted keys so that the
// in-order walk through HierPos recovers them ascending — the property
// every query kernel relies on.
func TestHierBuildIsSearchable(t *testing.T) {
	b := 8
	n := 3*HierPageKeys(b) + 37
	sorted := make([]int, n)
	for i := range sorted {
		sorted[i] = 10 * i
	}
	arr := Build(Hier, sorted, b)
	got := make([]int, n)
	for r := 0; r < n; r++ {
		got[r] = arr[HierPos(r, n, b)]
	}
	if !slices.Equal(got, sorted) {
		t.Fatal("in-order walk of the hier layout is not sorted")
	}
}

// TestHierPageBlocksAreContiguous: every page block is a contiguous
// window of the array whose keys are exactly the outer B-tree node's
// keys — the property that makes a page block one page-cache unit.
func TestHierPageBlocksAreContiguous(t *testing.T) {
	b := 4
	p := HierPageKeys(b)
	n := 2*p + 17
	ranks := Ranks(Hier, n, b)
	outer := Ranks(BTree, n, p)
	for pageStart := 0; pageStart < n; pageStart += p {
		pk := min(p, n-pageStart)
		want := append([]int(nil), outer[pageStart:pageStart+pk]...)
		got := append([]int(nil), ranks[pageStart:pageStart+pk]...)
		slices.Sort(want)
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("page at %d holds ranks %v, want %v", pageStart, got, want)
		}
	}
}

// FuzzHierLayout cross-checks the closed-form position function and its
// inverse against the reference in-order walk over fuzzer-chosen sizes
// and node capacities.
func FuzzHierLayout(f *testing.F) {
	f.Add(uint16(1), uint8(1))
	f.Add(uint16(513), uint8(8))
	f.Add(uint16(4096), uint8(3))
	f.Add(uint16(65535), uint8(16))
	f.Fuzz(func(t *testing.T, nRaw uint16, bRaw uint8) {
		n := int(nRaw)%4096 + 1
		b := int(bRaw)%16 + 1
		ranks := Ranks(Hier, n, b)
		for pos, r := range ranks {
			if got := HierPos(r, n, b); got != pos {
				t.Fatalf("n=%d b=%d: HierPos(%d) = %d, want %d", n, b, r, got, pos)
			}
			if got := HierRank(pos, n, b); got != r {
				t.Fatalf("n=%d b=%d: HierRank(%d) = %d, want %d", n, b, pos, got, r)
			}
		}
	})
}
