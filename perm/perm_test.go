package perm

import (
	"reflect"
	"sort"
	"testing"

	"implicitlayout/layout"
)

func sortedKeys(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i) * 3
	}
	return s
}

// TestPermuteMatchesOracle: the public API reproduces the oracle layout
// for every kind/algorithm pair, perfect and non-perfect sizes, serial and
// parallel.
func TestPermuteMatchesOracle(t *testing.T) {
	for _, n := range []int{0, 1, 2, 26, 100, 511, 512, 1000, 4095} {
		sorted := sortedKeys(n)
		for _, k := range append(layout.Kinds(), layout.Sorted) {
			want := layout.Build(k, sorted, DefaultB)
			for _, a := range Algorithms() {
				for _, workers := range []int{1, 3} {
					got := make([]uint64, n)
					copy(got, sorted)
					Permute(got, k, a, WithWorkers(workers))
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("n=%d %v/%v P=%d: mismatch", n, k, a, workers)
					}
				}
			}
		}
	}
}

// TestPermuteOptions: non-default B, software bit reversal, transposed
// gather all still match the oracle.
func TestPermuteOptions(t *testing.T) {
	n := 2000
	sorted := sortedKeys(n)

	got := append([]uint64(nil), sorted...)
	Permute(got, layout.BTree, CycleLeader, WithB(4), WithWorkers(2))
	if !reflect.DeepEqual(got, layout.Build(layout.BTree, sorted, 4)) {
		t.Fatal("WithB(4) mismatch")
	}

	got = append([]uint64(nil), sorted...)
	Permute(got, layout.BST, Involution, WithSoftwareBitReversal())
	if !reflect.DeepEqual(got, layout.Build(layout.BST, sorted, 0)) {
		t.Fatal("software bit reversal mismatch")
	}

	got = append([]uint64(nil), sorted...)
	Permute(got, layout.VEB, CycleLeader, WithTransposedGather(), WithWorkers(2))
	if !reflect.DeepEqual(got, layout.Build(layout.VEB, sorted, 0)) {
		t.Fatal("transposed gather mismatch")
	}
}

// TestUnpermuteRoundTrip: Permute then Unpermute restores sorted order for
// every layout, with either construction algorithm.
func TestUnpermuteRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 26, 100, 1000, 4095, 4096} {
		sorted := sortedKeys(n)
		for _, k := range append(layout.Kinds(), layout.Sorted) {
			for _, a := range Algorithms() {
				got := make([]uint64, n)
				copy(got, sorted)
				Permute(got, k, a, WithWorkers(2))
				if err := Unpermute(got, k, WithWorkers(2)); err != nil {
					t.Fatalf("Unpermute(%v): %v", k, err)
				}
				if !reflect.DeepEqual(got, sorted) {
					t.Fatalf("n=%d %v/%v: round trip failed", n, k, a)
				}
			}
		}
	}
}

// TestUnpermuteUnknownKind: an unknown layout kind is reported.
func TestUnpermuteUnknownKind(t *testing.T) {
	if err := Unpermute(sortedKeys(10), layout.Kind(99)); err == nil {
		t.Fatal("expected error for unknown layout kind")
	}
}

// TestPermuteIsPermutation: property — output is a rearrangement of the
// input (no key lost or duplicated), for a generic element type.
func TestPermuteIsPermutation(t *testing.T) {
	type kv struct {
		Key  int
		Blob [3]byte
	}
	n := 777
	in := make([]kv, n)
	for i := range in {
		in[i] = kv{Key: i, Blob: [3]byte{byte(i), byte(i >> 8), 0xAB}}
	}
	got := append([]kv(nil), in...)
	Permute(got, layout.VEB, CycleLeader, WithWorkers(3))
	back := append([]kv(nil), got...)
	sort.Slice(back, func(i, j int) bool { return back[i].Key < back[j].Key })
	if !reflect.DeepEqual(back, in) {
		t.Fatal("permutation lost or duplicated elements")
	}
}

// TestInPlaceAllocations: allocations do not scale with N — the in-place
// property of Definition 1. Serial runs of every algorithm on 2^12 vs 2^16
// elements must allocate (asymptotically) the same.
func TestInPlaceAllocations(t *testing.T) {
	run := func(n int, k layout.Kind, a Algorithm) float64 {
		data := sortedKeys(n)
		return testing.AllocsPerRun(3, func() {
			copySorted(data)
			Permute(data, k, a)
		})
	}
	for _, k := range layout.Kinds() {
		for _, a := range Algorithms() {
			small := run(1<<12, k, a)
			large := run(1<<16, k, a)
			// Allow generous slack for the recursion bookkeeping (which is
			// O(log n)) but reject anything near O(n).
			if large > small+600 {
				t.Errorf("%v/%v: allocations scale with N: %.0f -> %.0f", k, a, small, large)
			}
		}
	}
}

func copySorted(d []uint64) {
	for i := range d {
		d[i] = uint64(i) * 3
	}
}

// TestBatchedGatherOption: the batched-gather variant produces the exact
// vEB layout for perfect and non-perfect sizes.
func TestBatchedGatherOption(t *testing.T) {
	for _, n := range []int{100, 1023, 1024, 5000, 65535} {
		sorted := sortedKeys(n)
		got := make([]uint64, n)
		copy(got, sorted)
		Permute(got, layout.VEB, CycleLeader, WithBatchedGather(8), WithWorkers(2))
		if !reflect.DeepEqual(got, layout.Build(layout.VEB, sorted, 0)) {
			t.Fatalf("n=%d: batched gather mismatch", n)
		}
	}
}
