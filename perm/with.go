package perm

import (
	"fmt"

	"implicitlayout/internal/core"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// PermuteWith rearranges keys (which must be in ascending sorted order
// for the result to be a search tree) into layout k using algorithm a, in
// place, moving vals by the exact same permutation: after the call,
// vals[i] is still the payload of keys[i] for every i. Both families and
// every layout are supported with the same options as Permute.
//
// The kernels never compare elements, so the pairing is realized by a
// zipped memory backend rather than by materializing an array of pairs —
// the key array stays densely packed for the query kernels, and the
// permutation stays in place for both slices (O(P log N) auxiliary
// space, unchanged).
//
// PermuteWith panics if len(keys) != len(vals).
func PermuteWith[K, V any](keys []K, vals []V, k layout.Kind, a Algorithm, opts ...Option) {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("perm: PermuteWith slice lengths differ: %d keys, %d vals",
			len(keys), len(vals)))
	}
	c := buildConfig(opts)
	core.Permute[vec.KV[K, V]](c.options(), vec.ZipOf(keys, vals), k, a.core())
}

// UnpermuteWith restores ascending sorted order from a layout previously
// produced by PermuteWith (or by Permute on the keys with vals permuted
// alongside), applying the inverse permutation to keys and vals alike. As
// with Unpermute, inversion is involution-based whichever Algorithm built
// the layout, so no Algorithm is accepted; B must match the build for
// B-tree layouts.
//
// UnpermuteWith panics if len(keys) != len(vals).
func UnpermuteWith[K, V any](keys []K, vals []V, k layout.Kind, opts ...Option) error {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("perm: UnpermuteWith slice lengths differ: %d keys, %d vals",
			len(keys), len(vals)))
	}
	c := buildConfig(opts)
	o := c.options()
	z := vec.ZipOf(keys, vals)
	switch k {
	case layout.Sorted:
		return nil
	case layout.BST:
		core.InvertInvolutionBST[vec.KV[K, V]](o, z)
		return nil
	case layout.BTree:
		core.InvertInvolutionBTree[vec.KV[K, V]](o, z)
		return nil
	case layout.VEB:
		core.InvertInvolutionVEB[vec.KV[K, V]](o, z)
		return nil
	case layout.Hier:
		core.InvertHier[vec.KV[K, V]](o, z)
		return nil
	}
	return fmt.Errorf("perm: unknown layout %v", k)
}
