package perm

import (
	"reflect"
	"testing"

	"implicitlayout/layout"
)

// FuzzPermuteMatchesOracle drives every algorithm/layout/parameter
// combination from fuzzed inputs and checks the result against the
// reference layout. Run with `go test -fuzz FuzzPermuteMatchesOracle
// ./perm` for continuous exploration; the seed corpus runs in CI mode.
func FuzzPermuteMatchesOracle(f *testing.F) {
	f.Add(uint16(1), uint8(0), uint8(0), uint8(2), uint8(1))
	f.Add(uint16(26), uint8(1), uint8(1), uint8(3), uint8(2))
	f.Add(uint16(1000), uint8(2), uint8(0), uint8(8), uint8(3))
	f.Add(uint16(4095), uint8(2), uint8(1), uint8(1), uint8(1))
	f.Add(uint16(511), uint8(0), uint8(1), uint8(7), uint8(4))
	f.Fuzz(func(t *testing.T, nRaw uint16, kindRaw, algoRaw, bRaw, pRaw uint8) {
		n := int(nRaw) % 3000
		kind := layout.Kinds()[int(kindRaw)%len(layout.Kinds())]
		algo := Algorithms()[int(algoRaw)%2]
		b := int(bRaw)%16 + 1
		p := int(pRaw)%4 + 1
		sorted := sortedKeys(n)
		got := make([]uint64, n)
		copy(got, sorted)
		Permute(got, kind, algo, WithB(b), WithWorkers(p))
		want := layout.Build(kind, sorted, b)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d %v/%v b=%d p=%d: mismatch", n, kind, algo, b, p)
		}
	})
}

// FuzzUnpermuteRoundTrip checks the inverse transformations from fuzzed
// parameters.
func FuzzUnpermuteRoundTrip(f *testing.F) {
	f.Add(uint16(100), uint8(0), uint8(4))
	f.Add(uint16(4096), uint8(1), uint8(8))
	f.Add(uint16(80), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, nRaw uint16, kindRaw, bRaw uint8) {
		n := int(nRaw) % 3000
		kind := layout.Kinds()[int(kindRaw)%len(layout.Kinds())]
		b := int(bRaw)%16 + 1
		sorted := sortedKeys(n)
		got := make([]uint64, n)
		copy(got, sorted)
		Permute(got, kind, CycleLeader, WithB(b), WithWorkers(2))
		if err := Unpermute(got, kind, WithB(b), WithWorkers(2)); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, sorted) {
			t.Fatalf("n=%d %v b=%d: round trip failed", n, kind, b)
		}
	})
}
