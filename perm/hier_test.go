package perm

import (
	"reflect"
	"testing"

	"implicitlayout/layout"
)

// TestHierPermuteBoundaries: the hierarchical layout's two-pass in-place
// construction matches the oracle, and Unpermute restores sorted order,
// for both algorithm families across the boundary shapes the two-level
// blocking produces — n=1, below one cacheline block, below one page
// block, exact page multiples, and partial trailing blocks at both
// levels — with several cacheline capacities and worker counts.
func TestHierPermuteBoundaries(t *testing.T) {
	for _, b := range []int{1, 2, 8} {
		p := layout.HierPageKeys(b)
		sizes := []int{1, 2, b, b + 1, p - 1, p, p + 1, 2*p - 1, 3*p + b + 1}
		for _, n := range sizes {
			if n < 1 {
				continue
			}
			sorted := sortedKeys(n)
			want := layout.Build(layout.Hier, sorted, b)
			for _, a := range Algorithms() {
				for _, workers := range []int{1, 4} {
					got := append([]uint64(nil), sorted...)
					Permute(got, layout.Hier, a, WithB(b), WithWorkers(workers))
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("b=%d n=%d %v P=%d: permute mismatch", b, n, a, workers)
					}
					if err := Unpermute(got, layout.Hier, WithB(b), WithWorkers(workers)); err != nil {
						t.Fatalf("b=%d n=%d: Unpermute: %v", b, n, err)
					}
					if !reflect.DeepEqual(got, sorted) {
						t.Fatalf("b=%d n=%d %v P=%d: round trip failed", b, n, a, workers)
					}
				}
			}
		}
	}
}

// TestHierPermuteWithRoundTrip: PermuteWith moves values by the same
// hierarchical permutation as keys, and UnpermuteWith restores both.
func TestHierPermuteWithRoundTrip(t *testing.T) {
	n := 3*layout.HierPageKeys(DefaultB) + 29
	keys := sortedKeys(n)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(-i)
	}
	gotK := append([]uint64(nil), keys...)
	gotV := append([]int32(nil), vals...)
	PermuteWith(gotK, gotV, layout.Hier, CycleLeader, WithWorkers(2))
	if !reflect.DeepEqual(gotK, layout.Build(layout.Hier, keys, DefaultB)) {
		t.Fatal("PermuteWith keys mismatch")
	}
	for i, k := range gotK {
		if gotV[i] != int32(-int(k)/3) {
			t.Fatalf("pos %d: value %d not moved with key %d", i, gotV[i], k)
		}
	}
	if err := UnpermuteWith(gotK, gotV, layout.Hier, WithWorkers(2)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotK, keys) || !reflect.DeepEqual(gotV, vals) {
		t.Fatal("UnpermuteWith round trip failed")
	}
}
