package perm_test

import (
	"fmt"

	"implicitlayout/layout"
	"implicitlayout/perm"
)

// Permuting a small sorted array into each layout shows the
// transformations the paper's Figures 1.1-1.3 illustrate.
func Example() {
	sorted := func() []uint64 {
		return []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	}

	bst := sorted()
	perm.Permute(bst, layout.BST, perm.Involution)
	fmt.Println("bst: ", bst)

	veb := sorted()
	perm.Permute(veb, layout.VEB, perm.CycleLeader)
	fmt.Println("veb: ", veb)

	// Output:
	// bst:  [8 4 12 2 6 10 14 1 3 5 7 9 11 13 15]
	// veb:  [8 4 12 2 1 3 6 5 7 10 9 11 14 13 15]
}

// Unpermute restores sorted order in place for the BST and B-tree
// layouts.
func ExampleUnpermute() {
	data := []uint64{1, 2, 3, 4, 5, 6, 7}
	perm.Permute(data, layout.BST, perm.CycleLeader)
	fmt.Println(data)
	if err := perm.Unpermute(data, layout.BST); err != nil {
		panic(err)
	}
	fmt.Println(data)
	// Output:
	// [4 2 6 1 3 5 7]
	// [1 2 3 4 5 6 7]
}
