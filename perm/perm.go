// Package perm is the public API for the paper's contribution: parallel
// in-place permutation of a sorted array into the BST, B-tree, or van Emde
// Boas implicit search-tree layout.
//
// A typical keys-only use:
//
//	keys := loadSortedKeys()                       // []uint64, sorted
//	perm.Permute(keys, layout.VEB, perm.CycleLeader,
//	    perm.WithWorkers(runtime.NumCPU()))
//	idx := search.NewIndex(keys, layout.VEB, 0)    // query the layout
//
// For key–value records, PermuteWith moves a value slice by the exact
// same permutation as its keys — afterwards vals[i] is still the payload
// of keys[i] for every array position i, so a search hit's position
// indexes both slices:
//
//	perm.PermuteWith(keys, vals, layout.VEB, perm.CycleLeader)
//	if pos := idx.Find(q); pos >= 0 { use(vals[pos]) }
//
// Unpermute and UnpermuteWith invert the layouts back to sorted order,
// also in place. Every permutation uses O(P log N) auxiliary space (the
// paper's Definition 1 of parallel in-place), works for any array length
// (Chapter 5), and is deterministic for every worker count. The store
// package's build pipeline — including every flush and compaction of its
// writable DB — is a client of exactly these entry points.
package perm

import (
	"fmt"

	"implicitlayout/internal/bits"
	"implicitlayout/internal/core"
	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// Algorithm selects one of the paper's two algorithm families.
type Algorithm int

const (
	// Involution composes the permutation from O(1) rounds of disjoint
	// swaps per tree level (Chapter 2): simplest and lowest depth, but
	// with scattered memory access.
	Involution Algorithm = iota
	// CycleLeader uses the equidistant gather machinery (Chapter 3):
	// more index arithmetic but far better spatial locality — the fastest
	// family on CPUs in the paper's measurements.
	CycleLeader
)

// String returns the conventional name of the algorithm family.
func (a Algorithm) String() string { return a.core().String() }

func (a Algorithm) core() core.Algorithm {
	switch a {
	case Involution:
		return core.Involution
	case CycleLeader:
		return core.CycleLeader
	}
	panic(fmt.Sprintf("perm: unknown algorithm %d", int(a)))
}

// Algorithms lists both families.
func Algorithms() []Algorithm { return []Algorithm{Involution, CycleLeader} }

// DefaultB is the default B-tree node capacity: 8 keys of 8 bytes fill one
// 64-byte cache line, the configuration the paper benchmarks on CPUs.
const DefaultB = 8

type config struct {
	workers     int
	b           int
	softwareRev bool
	transposed  bool
	gatherBatch int
}

// Option configures Permute and Unpermute.
type Option func(*config)

// WithWorkers sets the number of parallel workers P (default 1; values
// below 1 select runtime.GOMAXPROCS(0)).
func WithWorkers(p int) Option { return func(c *config) { c.workers = p } }

// WithB sets the B-tree node capacity (default DefaultB). Ignored by the
// BST and vEB layouts.
func WithB(b int) Option { return func(c *config) { c.b = b } }

// WithSoftwareBitReversal makes the BST involution algorithm reverse bits
// with an O(log N) software loop instead of the O(1) hardware-style
// primitive, reproducing the paper's T_REV2 distinction between its CPU
// (software) and GPU (hardware) platforms.
func WithSoftwareBitReversal() Option { return func(c *config) { c.softwareRev = true } }

// WithTransposedGather enables the matrix-transposition I/O optimization
// of Section 4.2 in the vEB cycle-leader algorithm.
func WithTransposedGather() Option { return func(c *config) { c.transposed = true } }

// WithBatchedGather makes the vEB cycle-leader algorithm process gather
// cycles in batches of the given size per worker — the lighter-weight I/O
// optimization of Section 4.2 ("assign each processor a group of O(B)
// cycles"). Sensible values match the cache line size in elements (8 for
// 64-bit keys on 64-byte lines).
func WithBatchedGather(batch int) Option { return func(c *config) { c.gatherBatch = batch } }

func (c config) options() core.Options {
	// par.New already maps workers < 1 to runtime.GOMAXPROCS(0), so the
	// runner is built exactly once.
	o := core.Options{
		Runner:           par.New(c.workers),
		B:                c.b,
		TransposedGather: c.transposed,
		GatherBatch:      c.gatherBatch,
	}
	if c.softwareRev {
		o.Rev = bits.Software{}
	}
	return o
}

func buildConfig(opts []Option) config {
	c := config{workers: 1, b: DefaultB}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Permute rearranges data (which must be in ascending sorted order for the
// result to be a search tree) into layout k using algorithm a, in place.
func Permute[T any](data []T, k layout.Kind, a Algorithm, opts ...Option) {
	c := buildConfig(opts)
	core.Permute[T](c.options(), vec.Of(data), k, a.core())
}

// Unpermute restores ascending sorted order from a layout previously
// produced by Permute (with the same B for B-tree layouts), in place and
// in parallel, for every layout.
//
// Inversion is always involution-based, whichever Algorithm built the
// layout: Involution and CycleLeader realize the identical permutation
// (they differ only in how the swaps are scheduled), and running the
// involution rounds in reverse order inverts it with the lowest depth.
// Unpermute therefore needs only the layout kind and B — an Algorithm
// choice would be meaningless here, so none is accepted.
func Unpermute[T any](data []T, k layout.Kind, opts ...Option) error {
	c := buildConfig(opts)
	o := c.options()
	switch k {
	case layout.Sorted:
		return nil
	case layout.BST:
		core.InvertInvolutionBST[T](o, vec.Of(data))
		return nil
	case layout.BTree:
		core.InvertInvolutionBTree[T](o, vec.Of(data))
		return nil
	case layout.VEB:
		core.InvertInvolutionVEB[T](o, vec.Of(data))
		return nil
	case layout.Hier:
		core.InvertHier[T](o, vec.Of(data))
		return nil
	}
	return fmt.Errorf("perm: unknown layout %v", k)
}
