package perm

import (
	"runtime"
	"testing"

	"implicitlayout/layout"
)

// TestOptionPlumbing pins the config-to-core translation: exactly one
// runner is built, workers < 1 resolve to GOMAXPROCS, and defaults hold.
func TestOptionPlumbing(t *testing.T) {
	if c := buildConfig(nil); c.workers != 1 || c.b != DefaultB {
		t.Fatalf("defaults: workers=%d b=%d", c.workers, c.b)
	}
	if o := buildConfig(nil).options(); o.Runner.P() != 1 {
		t.Fatalf("default runner has %d workers, want 1", o.Runner.P())
	}
	if o := buildConfig([]Option{WithWorkers(3)}).options(); o.Runner.P() != 3 {
		t.Fatalf("WithWorkers(3) runner has %d workers", o.Runner.P())
	}
	for _, w := range []int{0, -5} {
		o := buildConfig([]Option{WithWorkers(w)}).options()
		if got, want := o.Runner.P(), runtime.GOMAXPROCS(0); got != want {
			t.Fatalf("WithWorkers(%d) runner has %d workers, want GOMAXPROCS=%d", w, got, want)
		}
	}
}

// TestUnpermuteInvertsBothFamilies documents the involution-based
// inversion contract: Unpermute restores sorted order no matter which
// Algorithm built the layout, because both families realize the same
// permutation.
func TestUnpermuteInvertsBothFamilies(t *testing.T) {
	const n = 1500
	for _, k := range layout.Kinds() {
		for _, a := range Algorithms() {
			data := make([]uint64, n)
			for i := range data {
				data[i] = uint64(i)
			}
			Permute(data, k, a, WithWorkers(4))
			if err := Unpermute(data, k, WithWorkers(4)); err != nil {
				t.Fatalf("%v/%v: %v", k, a, err)
			}
			for i := range data {
				if data[i] != uint64(i) {
					t.Fatalf("%v/%v: not restored at %d", k, a, i)
				}
			}
		}
	}
}
