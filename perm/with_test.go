package perm

import (
	"fmt"
	"reflect"
	"slices"
	"testing"

	"implicitlayout/layout"
)

// TestPermuteWithMatchesKeysAndMovesVals: for every layout x algorithm,
// the keys end up exactly where Permute puts them and each value travels
// with its key. Values are a distinct type (strings derived from the
// key) so a keys-for-vals mixup cannot type-check, let alone pass.
func TestPermuteWithMatchesKeysAndMovesVals(t *testing.T) {
	for _, n := range []int{0, 1, 2, 26, 100, 511, 512, 1000, 4095} {
		sorted := sortedKeys(n)
		for _, k := range append(layout.Kinds(), layout.Sorted) {
			wantKeys := layout.Build(k, sorted, DefaultB)
			for _, a := range Algorithms() {
				for _, workers := range []int{1, 3} {
					keys := append([]uint64(nil), sorted...)
					vals := make([]string, n)
					for i := range vals {
						vals[i] = fmt.Sprint("v", keys[i])
					}
					PermuteWith(keys, vals, k, a, WithWorkers(workers))
					if !slices.Equal(keys, wantKeys) {
						t.Fatalf("n=%d %v/%v P=%d: keys diverge from Permute", n, k, a, workers)
					}
					for i := range keys {
						if vals[i] != fmt.Sprint("v", keys[i]) {
							t.Fatalf("n=%d %v/%v P=%d: val %q detached from key %d at %d",
								n, k, a, workers, vals[i], keys[i], i)
						}
					}
				}
			}
		}
	}
}

// TestPermuteWithUnpermuteWithRoundTrip is the acceptance property: the
// pair (PermuteWith, UnpermuteWith) round-trips key–value pairs for all
// three layouts, both algorithm families, and awkward sizes.
func TestPermuteWithUnpermuteWithRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 26, 255, 256, 1000, 4095} {
		sorted := sortedKeys(n)
		origVals := make([]int64, n)
		for i := range origVals {
			origVals[i] = -int64(sorted[i]) - 7
		}
		for _, k := range append(layout.Kinds(), layout.Sorted) {
			for _, a := range Algorithms() {
				keys := append([]uint64(nil), sorted...)
				vals := append([]int64(nil), origVals...)
				PermuteWith(keys, vals, k, a, WithWorkers(2))
				if err := UnpermuteWith(keys, vals, k, WithWorkers(2)); err != nil {
					t.Fatalf("n=%d %v/%v: UnpermuteWith: %v", n, k, a, err)
				}
				if !slices.Equal(keys, sorted) || !slices.Equal(vals, origVals) {
					t.Fatalf("n=%d %v/%v: round trip lost data", n, k, a)
				}
			}
		}
	}
}

// TestPermuteWithNonDefaultB: pairs follow the keys for B-tree layouts
// built with a custom node capacity, and the inverse honors the same B.
func TestPermuteWithNonDefaultB(t *testing.T) {
	const n, b = 2000, 4
	sorted := sortedKeys(n)
	keys := append([]uint64(nil), sorted...)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = keys[i] * 10
	}
	PermuteWith(keys, vals, layout.BTree, CycleLeader, WithB(b), WithWorkers(2))
	if !reflect.DeepEqual(keys, layout.Build(layout.BTree, sorted, b)) {
		t.Fatal("keys diverge from oracle with WithB(4)")
	}
	for i := range keys {
		if vals[i] != keys[i]*10 {
			t.Fatalf("val detached at %d", i)
		}
	}
	if err := UnpermuteWith(keys, vals, layout.BTree, WithB(b)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, sorted) {
		t.Fatal("UnpermuteWith with WithB(4) did not restore sorted order")
	}
}

// TestPermuteWithLengthMismatchPanics: mismatched slices must fail loudly.
func TestPermuteWithLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"PermuteWith": func() {
			PermuteWith([]uint64{1, 2}, []int{1}, layout.BST, CycleLeader)
		},
		"UnpermuteWith": func() {
			_ = UnpermuteWith([]uint64{1, 2}, []int{1}, layout.BST)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched lengths should panic", name)
				}
			}()
			f()
		}()
	}
}

// TestUnpermuteWithUnknownLayout mirrors Unpermute's error contract.
func TestUnpermuteWithUnknownLayout(t *testing.T) {
	if err := UnpermuteWith([]uint64{1}, []int{1}, layout.Kind(99)); err == nil {
		t.Fatal("unknown layout should error")
	}
}
