module implicitlayout

go 1.24
