#!/usr/bin/env bash
# check_links.sh [file.md ...] — fail if any internal markdown link in
# the given files (default: README.md ARCHITECTURE.md) points at a file
# that does not exist or an anchor with no matching heading. External
# links (http/https/mailto) are ignored; run from the repository root.
set -u

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md ARCHITECTURE.md)
fi

# slugs_of <file.md> prints the GitHub-style anchor slug of every
# heading: lowercase, punctuation stripped, spaces to hyphens.
slugs_of() {
  grep -E '^#{1,6} ' "$1" | sed -E 's/^#{1,6} +//' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 -]//g; s/ /-/g'
}

fail=0
for f in "${files[@]}"; do
  if [ ! -f "$f" ]; then
    echo "check_links: no such file: $f" >&2
    fail=1
    continue
  fi
  # Extract every ](target) and strip the wrapper and any link title.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
    esac
    path="${target%%#*}"
    anchor=""
    case "$target" in
      *#*) anchor="${target#*#}" ;;
    esac
    if [ -z "$path" ]; then
      path="$f" # same-file anchor link
    fi
    if [ ! -e "$path" ]; then
      echo "$f: broken link: ($target) — no such file: $path" >&2
      fail=1
      continue
    fi
    case "$path" in
      *.md)
        if [ -n "$anchor" ] && ! slugs_of "$path" | grep -qx "$anchor"; then
          echo "$f: broken anchor: ($target) — no heading in $path slugs to #$anchor" >&2
          fail=1
        fi
        ;;
    esac
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//; s/ .*$//')
done

if [ "$fail" -ne 0 ]; then
  echo "check_links: FAILED" >&2
else
  echo "check_links: OK (${files[*]})"
fi
exit "$fail"
