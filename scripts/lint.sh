#!/usr/bin/env sh
# lint.sh — the repository's static-analysis gate.
#
# Builds cmd/implicitlint (the project-specific analyzer suite) and runs
# it over the whole module through `go vet -vettool`, then asserts the
# serving packages' dependency graph stays standard-library-only. Any
# finding, or any third-party import reachable from ./store, fails the
# script. Run from the module root:
#
#   ./scripts/lint.sh
#
# staticcheck runs too when it is on PATH (CI installs it pinned; local
# runs without it still get the project analyzers and go vet).

set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> implicitlint (project analyzers via go vet -vettool)"
tool="$(mktemp -d)/implicitlint"
trap 'rm -rf "$(dirname "$tool")"' EXIT
go build -o "$tool" ./cmd/implicitlint
go vet -vettool="$tool" ./...

echo "==> serving dep graph stays std-only"
# Everything reachable from ./store must be this module or std. A std
# package's first path element has no dot; any dotted domain (x/tools,
# or anything else third-party) is a regression of the zero-dependency
# serving invariant.
bad="$(go list -deps ./store | grep -v '^implicitlayout' | awk -F/ '$1 ~ /\./' || true)"
if [ -n "$bad" ]; then
    echo "non-std packages in the serving dep graph:" >&2
    printf '%s\n' "$bad" >&2
    exit 1
fi

if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck"
    staticcheck ./...
else
    echo "==> staticcheck not on PATH; skipped (CI runs it pinned)"
fi

echo "lint: OK"
