// Package client is the TCP client for the implicitlayout serving
// layer: the other end of the internal/wire protocol that
// implicitlayout/server speaks.
//
// A Client owns one connection and runs one send loop and one read loop
// over it, so the connection is a pipeline: Go queues a request and
// returns immediately with a Call, many calls ride the wire at once
// (bounded by Config.Window), and the read loop matches responses back
// to callers by request ID — in whatever order the server finishes
// them. Do is the blocking form (Go + wait), with per-request timeout
// and cancellation via its context: cancelling a Do abandons that one
// call and frees its window slot; the connection and every other
// in-flight call keep going.
//
// The typed wrappers (Get, GetBatch, Range, Put, Delete, Stats) are Do
// with the request spelled for you. For throughput, issue many Go calls
// and then collect — one flush carries a batch of requests, and the
// server's responses coalesce the same way coming back. GetBatch goes
// further: one request carries up to wire.MaxBatch keys and the server
// answers all of them from a single pinned snapshot epoch.
//
// Errors are sticky: the first connection-level failure (torn socket,
// malformed frame, local Close) fails every in-flight call and every
// later one with the same error. A Client is not transparently
// reconnecting — the caller that wants a new connection dials a new
// Client.
package client

import (
	"bufio"
	"bytes"
	"cmp"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"implicitlayout/internal/blockio"
	"implicitlayout/internal/wire"
	"implicitlayout/store"
)

// ErrClosed marks a client whose session has ended — Close was called,
// or the server shut the connection down cleanly. In-flight and later
// calls fail with an error wrapping it.
var ErrClosed = errors.New("client: connection closed")

// ErrRefused marks a handshake the server rejected; the wrapped text
// names the reason (unknown protocol version, platform mismatch).
var ErrRefused = errors.New("client: handshake refused by server")

// ServerError is an error the server reported for one request — the
// operation failed on the far side; the connection itself is fine.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// handshakeTimeout bounds Dial's hello exchange.
const handshakeTimeout = 10 * time.Second

// Config parameterizes Dial; zero fields select defaults.
type Config struct {
	// Window bounds the calls in flight at once (default 128). Go blocks
	// when the window is full — open-loop callers overrunning a slow
	// server queue here, not in unbounded memory.
	Window int
	// DialTimeout bounds the TCP connect (default 10s).
	DialTimeout time.Duration
}

// Call is one in-flight request. Done is closed when the call
// completes; Resp and Err are valid after that.
type Call[K cmp.Ordered, V any] struct {
	Req  *wire.Request[K, V]
	Resp *wire.Response[K, V]
	Err  error
	done chan struct{}
}

// Done returns the channel closed at completion, for callers selecting
// across many calls.
func (c *Call[K, V]) Done() <-chan struct{} { return c.done }

// sendItem is one unit of send-loop work: a pre-rendered frame to
// write, or (frame nil) a flush barrier to signal.
type sendItem struct {
	frame   []byte
	flushed chan struct{}
}

// Client is one connection to a server, safe for concurrent use.
type Client[K cmp.Ordered, V any] struct {
	conn  net.Conn
	codec *wire.Codec[K, V]

	sendCh chan sendItem
	window chan struct{}
	stop   chan struct{} // closed once, on the first failure or Close

	mu      sync.Mutex
	pending map[uint64]*Call[K, V]
	nextID  uint64
	err     error // sticky: the session's first failure

	sendDone chan struct{}
	readDone chan struct{}
}

// Dial connects to a server at addr and performs the handshake: it
// sends this end's protocol version and platform contract, and the
// server either accepts (echoing its own hello, which is checked right
// back) or refuses with a reason — ErrRefused wrapping text such as an
// ErrVersionUnknown message. K and V must match the served DB's types.
func Dial[K cmp.Ordered, V any](addr string, cfg Config) (*Client[K, V], error) {
	codec, err := wire.NewCodec[K, V]()
	if err != nil {
		return nil, err
	}
	if cfg.Window <= 0 {
		cfg.Window = 128
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if err := handshake(conn, codec); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client[K, V]{
		conn:     conn,
		codec:    codec,
		sendCh:   make(chan sendItem, cfg.Window),
		window:   make(chan struct{}, cfg.Window),
		stop:     make(chan struct{}),
		pending:  make(map[uint64]*Call[K, V]),
		nextID:   1,
		sendDone: make(chan struct{}),
		readDone: make(chan struct{}),
	}
	go c.sendLoop()
	go c.readLoop()
	return c, nil
}

// handshake runs Dial's hello exchange on a fresh connection. It uses
// an unbuffered reader so no session bytes are swallowed into a
// buffer the loops never see.
func handshake[K cmp.Ordered, V any](conn net.Conn, codec *wire.Codec[K, V]) error {
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return err
	}
	bw := bufio.NewWriter(conn)
	if err := blockio.NewWriter(bw).WriteBlock(wire.TagHello, wire.EncodeHello(codec.Hello())); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	tag, payload, err := blockio.NewReaderLimit(conn, wire.MaxMessage).Next()
	if err != nil {
		return fmt.Errorf("client: handshake read: %w", err)
	}
	switch tag {
	case wire.TagHelloOK:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			return err
		}
		// Symmetric check: the server accepted us, but its own contract
		// must match too before raw arrays flow either way.
		if err := codec.CheckHello(h); err != nil {
			return err
		}
	case wire.TagRefuse:
		_, msg, err := wire.DecodeError(payload)
		if err != nil {
			return err
		}
		return fmt.Errorf("%w: %s", ErrRefused, msg)
	default:
		return fmt.Errorf("%w: unexpected handshake frame tag %q", wire.ErrMalformed, tag)
	}
	return conn.SetDeadline(time.Time{})
}

// Go queues req on the pipeline and returns its Call without waiting.
// It assigns req.ID. Go blocks only when the in-flight window is full.
func (c *Client[K, V]) Go(req *wire.Request[K, V]) (*Call[K, V], error) {
	select {
	case c.window <- struct{}{}:
	case <-c.stop:
		return nil, c.sessionErr()
	}
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		<-c.window
		return nil, c.err
	}
	req.ID = c.nextID
	c.nextID++
	payload, err := c.codec.EncodeRequest(req)
	if err == nil {
		var frame []byte
		if frame, err = wire.FrameBytes(wire.TagRequest, payload); err == nil {
			call := &Call[K, V]{Req: req, done: make(chan struct{})}
			c.pending[req.ID] = call
			c.mu.Unlock()
			select {
			case c.sendCh <- sendItem{frame: frame}:
			case <-c.stop:
				// The failure path owns the call now: fail() completes
				// every pending call, this one included.
			}
			return call, nil
		}
	}
	c.mu.Unlock()
	<-c.window
	return nil, err
}

// Do runs one request to completion: Go, then wait. Cancelling ctx
// abandons this call only — its eventual response is discarded and its
// window slot freed; the connection is unaffected.
func (c *Client[K, V]) Do(ctx context.Context, req *wire.Request[K, V]) (*wire.Response[K, V], error) {
	call, err := c.Go(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-call.done:
		return call.Resp, call.Err
	case <-ctx.Done():
		c.forget(req.ID)
		return nil, ctx.Err()
	}
}

// Flush blocks until every request queued before it has been written to
// the socket — the pipelined caller's barrier between "queued" and "on
// the wire".
func (c *Client[K, V]) Flush() error {
	it := sendItem{flushed: make(chan struct{})}
	select {
	case c.sendCh <- it:
	case <-c.stop:
		return c.sessionErr()
	}
	select {
	case <-it.flushed:
	case <-c.stop:
		return c.sessionErr()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the session down: every in-flight call fails with
// ErrClosed, both loops exit, the socket closes. Idempotent.
func (c *Client[K, V]) Close() error {
	c.fail(ErrClosed)
	<-c.sendDone
	<-c.readDone
	return nil
}

// Err returns the sticky session error: nil while the session is live,
// and the first failure (or ErrClosed) forever after. It lets a caller
// observe that the server hung up without queuing a request to find
// out.
func (c *Client[K, V]) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// sessionErr returns the sticky session error (always non-nil once
// c.stop is closed).
func (c *Client[K, V]) sessionErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

// fail records the session's first error, fails every pending call with
// it, and tears the connection down. Later calls are no-ops.
func (c *Client[K, V]) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	close(c.stop)
	pend := c.pending
	c.pending = make(map[uint64]*Call[K, V])
	c.mu.Unlock()
	c.conn.Close()
	for _, call := range pend {
		c.complete(call, nil, err)
	}
}

// complete finishes one call and frees its window slot. Each call
// reaches here exactly once: deliver, forget, and fail all remove it
// from pending first, under the lock.
func (c *Client[K, V]) complete(call *Call[K, V], resp *wire.Response[K, V], err error) {
	call.Resp, call.Err = resp, err
	close(call.done)
	<-c.window
}

// deliver routes one response (or server-reported error) to its call.
// An unknown ID is a call some Do abandoned: its response is dropped on
// the floor, as promised.
func (c *Client[K, V]) deliver(id uint64, resp *wire.Response[K, V], err error) {
	c.mu.Lock()
	call, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ok {
		c.complete(call, resp, err)
	}
}

// forget abandons one pending call without completing it (its waiter
// already returned), freeing the window slot if the call was still
// pending.
func (c *Client[K, V]) forget(id uint64) {
	c.mu.Lock()
	_, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ok {
		<-c.window
	}
}

// sendLoop writes queued frames, coalescing everything already queued
// into one flush — the batching that makes the pipeline pay: a caller
// issuing N Gos back to back costs one syscall, not N.
func (c *Client[K, V]) sendLoop() {
	defer close(c.sendDone)
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	for {
		var it sendItem
		select {
		case it = <-c.sendCh:
		case <-c.stop:
			return
		}
		var barriers []chan struct{}
		fail := func(err error) {
			for _, b := range barriers {
				close(b)
			}
			c.fail(err)
		}
		for {
			if it.frame != nil {
				if _, err := bw.Write(it.frame); err != nil {
					fail(err)
					return
				}
			}
			if it.flushed != nil {
				barriers = append(barriers, it.flushed)
			}
			select {
			case it = <-c.sendCh:
				continue
			default:
			}
			// One yield before flushing: a caller issuing Gos back to back
			// is usually mid-enqueue right now, and picking its frames up
			// here turns N flush syscalls into one.
			runtime.Gosched()
			select {
			case it = <-c.sendCh:
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			fail(err)
			return
		}
		for _, b := range barriers {
			close(b)
		}
	}
}

// readLoop decodes response frames and delivers them by ID until the
// connection ends. A clean end of stream (the server closed the
// session) surfaces as ErrClosed; anything else as itself.
func (c *Client[K, V]) readLoop() {
	defer close(c.readDone)
	br := blockio.NewReaderLimit(bufio.NewReaderSize(c.conn, 64<<10), wire.MaxMessage)
	for {
		tag, payload, err := br.Next()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("%w: server ended the session", ErrClosed)
			}
			c.fail(err)
			return
		}
		switch tag {
		case wire.TagResponse:
			resp, err := c.codec.DecodeResponse(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(resp.ID, resp, nil)
		case wire.TagError:
			id, msg, err := wire.DecodeError(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, nil, &ServerError{Msg: msg})
		default:
			c.fail(fmt.Errorf("%w: unexpected session frame tag %q", wire.ErrMalformed, tag))
			return
		}
	}
}

// Get fetches one key.
func (c *Client[K, V]) Get(ctx context.Context, key K) (val V, ok bool, err error) {
	resp, err := c.Do(ctx, &wire.Request[K, V]{Op: wire.OpGet, Key: key})
	if err != nil {
		var zero V
		return zero, false, err
	}
	return resp.Val, resp.Found, nil
}

// GetBatch fetches many keys in one request; the server answers all of
// them from a single pinned snapshot epoch. vals and found align with
// keys, as in store.DB.GetBatch.
func (c *Client[K, V]) GetBatch(ctx context.Context, keys []K) (vals []V, found []bool, err error) {
	resp, err := c.Do(ctx, &wire.Request[K, V]{Op: wire.OpGetBatch, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	return resp.Vals, resp.FoundAll, nil
}

// Range fetches the live records with lo <= key <= hi in ascending key
// order, at most limit of them (0 means the server's cap). more reports
// truncation; continue from just past the last key returned.
func (c *Client[K, V]) Range(ctx context.Context, lo, hi K, limit int) (keys []K, vals []V, more bool, err error) {
	resp, err := c.Do(ctx, &wire.Request[K, V]{Op: wire.OpRange, Lo: lo, Hi: hi, Limit: limit})
	if err != nil {
		return nil, nil, false, err
	}
	return resp.Keys, resp.Vals, resp.More, nil
}

// Put stores key → val. A nil return means the server acknowledged the
// write as durable, the same contract as store.DB.Put.
func (c *Client[K, V]) Put(ctx context.Context, key K, val V) error {
	_, err := c.Do(ctx, &wire.Request[K, V]{Op: wire.OpPut, Key: key, Val: val})
	return err
}

// Delete removes key.
func (c *Client[K, V]) Delete(ctx context.Context, key K) error {
	_, err := c.Do(ctx, &wire.Request[K, V]{Op: wire.OpDelete, Key: key})
	return err
}

// Stats fetches the server DB's counters.
func (c *Client[K, V]) Stats(ctx context.Context) (store.DBStats, error) {
	resp, err := c.Do(ctx, &wire.Request[K, V]{Op: wire.OpStats})
	if err != nil {
		return store.DBStats{}, err
	}
	var st store.DBStats
	if err := gob.NewDecoder(bytes.NewReader(resp.Stats)).Decode(&st); err != nil {
		return store.DBStats{}, err
	}
	return st, nil
}
