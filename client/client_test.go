package client

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestDialRefusesIneligibleTypes checks the codec gate runs before any
// network traffic: a key or value type the raw wire cannot carry fails
// Dial immediately, even with nothing listening.
func TestDialRefusesIneligibleTypes(t *testing.T) {
	if _, err := Dial[string, uint64]("127.0.0.1:1", Config{}); err == nil ||
		!strings.Contains(err.Error(), "fixed-width") {
		t.Fatalf("string-keyed Dial: %v, want fixed-width refusal", err)
	}
}

// TestDialHandshakeTimeout dials a listener that accepts and then says
// nothing: Dial must give up on its own rather than hang forever. The
// deadline is the package handshakeTimeout; this test only checks the
// failure is a timeout-class error, using a shortened dial against a
// mute peer via a tiny deadline window.
func TestDialHandshakeDeadPeer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		// Read the hello and hang up without answering.
		buf := make([]byte, 4096)
		if _, err := conn.Read(buf); err != nil {
			// nothing to do: the dialer sees the close either way
			_ = err
		}
		conn.Close()
	}()
	start := time.Now()
	if _, err := Dial[uint64, uint64](lis.Addr().String(), Config{}); err == nil {
		t.Fatal("Dial succeeded against a peer that hung up mid-handshake")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Dial took %v to notice the hangup", elapsed)
	}
}
