// Benchmarks regenerating the paper's tables and figures in testing.B
// form, one per experiment, at a scale that completes quickly. The cmd/*
// tools run the same experiments at paper scale with full sweeps; see
// DESIGN.md's experiment index.
package implicitlayout

import (
	"fmt"
	"runtime"
	"testing"

	"implicitlayout/bench"
	"implicitlayout/internal/core"
	"implicitlayout/internal/gather"
	"implicitlayout/internal/gpu"
	"implicitlayout/internal/par"
	"implicitlayout/internal/pem"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/trace"
	"implicitlayout/internal/vec"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

const (
	benchLogN = 20 // permutation benchmark size: N = 2^20
	benchB    = 8  // B-tree node capacity on the "CPU" (64-byte lines)
)

// benchPermute times one permutation algorithm at the given worker count.
func benchPermute(b *testing.B, spec bench.AlgoSpec, p int) {
	n := 1 << benchLogN
	data := make([]uint64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.Refill(data)
		b.StartTimer()
		bench.RunPermute(spec, data, p, benchB, false)
	}
}

// BenchmarkFig61Permute reproduces Figure 6.1: sequential permutation
// time for each of the six algorithms.
func BenchmarkFig61Permute(b *testing.B) {
	for _, spec := range bench.Algos() {
		b.Run(spec.Name, func(b *testing.B) { benchPermute(b, spec, 1) })
	}
}

// BenchmarkFig62PermuteParallel reproduces Figure 6.2: parallel
// permutation time (P = GOMAXPROCS).
func BenchmarkFig62PermuteParallel(b *testing.B) {
	for _, spec := range bench.Algos() {
		b.Run(spec.Name, func(b *testing.B) { benchPermute(b, spec, runtime.GOMAXPROCS(0)) })
	}
}

// BenchmarkFig63Speedup reproduces Figure 6.3: the per-layout fastest
// algorithm across worker counts (speedup = t(P=1)/t(P)).
func BenchmarkFig63Speedup(b *testing.B) {
	specs := []bench.AlgoSpec{
		{Name: "cyc-bst", Kind: layout.BST, Algo: core.CycleLeader},
		{Name: "cyc-btree", Kind: layout.BTree, Algo: core.CycleLeader},
		{Name: "cyc-veb", Kind: layout.VEB, Algo: core.CycleLeader},
	}
	for _, spec := range specs {
		for _, p := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/P=%d", spec.Name, p), func(b *testing.B) {
				benchPermute(b, spec, p)
			})
		}
	}
}

// BenchmarkFig64GatherVsSwap reproduces Figure 6.4: one equidistant
// gather round on chunks versus swapping the array halves.
func BenchmarkFig64GatherVsSwap(b *testing.B) {
	units := benchB + (benchB+1)*benchB
	c := (1 << benchLogN) / units
	n := units * c
	data := make([]uint64, n)
	for _, p := range []int{1, 2} {
		rn := par.New(p)
		b.Run(fmt.Sprintf("gather-chunks/P=%d", p), func(b *testing.B) {
			b.SetBytes(int64(n * 16))
			for i := 0; i < b.N; i++ {
				gather.Equidistant[uint64](rn, vec.Of(data), 0, benchB, benchB, c)
			}
		})
		b.Run(fmt.Sprintf("swap-halves/P=%d", p), func(b *testing.B) {
			b.SetBytes(int64(n * 16))
			for i := 0; i < b.N; i++ {
				shuffle.SwapBlocks[uint64](rn, vec.Of(data), 0, n/2, n/2)
			}
		})
	}
}

// BenchmarkFig65Queries reproduces Figure 6.5: per-query time on each
// layout (binary search baseline, BST with and without prefetch, B-tree,
// vEB).
func BenchmarkFig65Queries(b *testing.B) {
	n := 1 << benchLogN
	sorted := workload.Sorted(n)
	qs := workload.Queries(1<<14, n, 0.5, 1)
	run := func(name string, arr []uint64, find func(q uint64) int) {
		b.Run(name, func(b *testing.B) {
			var h int
			for i := 0; i < b.N; i++ {
				if find(qs[i&(len(qs)-1)]) >= 0 {
					h++
				}
			}
			_ = h
		})
	}
	run("binary", sorted, func(q uint64) int { return search.Binary(sorted, q) })
	bst := layout.Build(layout.BST, sorted, 0)
	run("bst", bst, func(q uint64) int { return search.BST(bst, q) })
	run("bst-prefetch", bst, func(q uint64) int { return search.BSTPrefetch(bst, q) })
	btree := layout.Build(layout.BTree, sorted, benchB)
	run("btree", btree, func(q uint64) int { return search.BTree(btree, benchB, q) })
	veb := layout.Build(layout.VEB, sorted, 0)
	run("veb", veb, func(q uint64) int { return search.VEB(veb, q) })
}

// BenchmarkFig66Combined reproduces the Figure 6.6/6.7 quantity: permute
// plus a fixed batch of queries, per layout (Q = 1% of N, near the
// paper's crossover region).
func BenchmarkFig66Combined(b *testing.B) {
	n := 1 << benchLogN
	q := n / 100
	qs := workload.Queries(q, n, 0.5, 1)
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, k := range layout.Kinds() {
			b.Run(fmt.Sprintf("%s/P=%d", k, p), func(b *testing.B) {
				data := make([]uint64, n)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					workload.Refill(data)
					b.StartTimer()
					bench.RunPermute(bench.AlgoSpec{Kind: k, Algo: core.CycleLeader}, data, p, benchB, false)
					ix := search.NewIndex(data, k, benchB)
					if ix.FindBatch(qs, p) < 0 {
						b.Fatal("impossible")
					}
				}
			})
		}
		b.Run(fmt.Sprintf("binary-baseline/P=%d", p), func(b *testing.B) {
			sorted := workload.Sorted(n)
			ix := search.NewIndex(sorted, layout.Sorted, 0)
			for i := 0; i < b.N; i++ {
				if ix.FindBatch(qs, p) < 0 {
					b.Fatal("impossible")
				}
			}
		})
	}
}

// BenchmarkFig68GPUPermute reproduces Figure 6.8 on the simulated device;
// the reported metric model-ms is the modelled GPU time (the wall time of
// the benchmark itself is simulation overhead).
func BenchmarkFig68GPUPermute(b *testing.B) {
	dev := gpu.TeslaK40()
	n := 1 << 20
	for _, spec := range bench.Algos() {
		b.Run(spec.Name, func(b *testing.B) {
			data := make([]uint64, n)
			var ms float64
			for i := 0; i < b.N; i++ {
				workload.Refill(data)
				c := gpu.RunPermute(dev, data, spec.Kind, spec.Algo, 32, runtime.GOMAXPROCS(0))
				ms = dev.TimeMS(c)
			}
			b.ReportMetric(ms, "model-ms")
		})
	}
}

// BenchmarkFig69GPUQueries reproduces the query half of Figure 6.9.
func BenchmarkFig69GPUQueries(b *testing.B) {
	dev := gpu.TeslaK40()
	n := 1 << 20
	sorted := workload.Sorted(n)
	qs := workload.Queries(1<<14, n, 0.5, 1)
	for _, k := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB} {
		b.Run(k.String(), func(b *testing.B) {
			arr := sorted
			if k != layout.Sorted {
				arr = layout.Build(k, sorted, 32)
			}
			var us float64
			for i := 0; i < b.N; i++ {
				c := gpu.RunQueries(dev, arr, k, 32, qs, runtime.GOMAXPROCS(0))
				us = dev.TimeMS(c) / float64(len(qs)) * 1e3
			}
			b.ReportMetric(us, "model-us/query")
		})
	}
}

// BenchmarkTable11Work reports swaps per key for each algorithm (the work
// column of Table 1.1) as a custom metric.
func BenchmarkTable11Work(b *testing.B) {
	n := 1<<18 - 1
	for _, spec := range bench.Algos() {
		b.Run(spec.Name, func(b *testing.B) {
			var spk float64
			for i := 0; i < b.N; i++ {
				data := workload.Sorted(n)
				v := trace.New(data, 1)
				core.Permute[uint64](core.Options{Runner: par.New(1), B: benchB}, v, spec.Kind, spec.Algo)
				spk = float64(v.Swaps()) / float64(n)
			}
			b.ReportMetric(spk, "swaps/key")
		})
	}
}

// BenchmarkTable11IO reports the measured PEM parallel I/O count Q(N,P)
// per key (the I/O column of Table 1.1) as a custom metric.
func BenchmarkTable11IO(b *testing.B) {
	n := 1<<16 - 1
	cfg := pem.Config{M: 1 << 12, B: 8}
	for _, spec := range bench.Algos() {
		b.Run(spec.Name, func(b *testing.B) {
			var iopk float64
			for i := 0; i < b.N; i++ {
				data := workload.Sorted(n)
				v := pem.New(data, 4, cfg)
				rn := par.Runner{Lo: 0, Hi: 4, MinFor: 1}
				core.Permute[uint64](core.Options{Runner: rn, B: benchB}, v, spec.Kind, spec.Algo)
				iopk = float64(v.MaxIO()) * 4 / float64(n)
			}
			b.ReportMetric(iopk, "maxIO*P/key")
		})
	}
}

// BenchmarkPublicAPI exercises the perm package entry point end to end.
func BenchmarkPublicAPI(b *testing.B) {
	n := 1 << 18
	data := make([]uint64, n)
	b.Run("permute-veb-cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			workload.Refill(data)
			b.StartTimer()
			perm.Permute(data, layout.VEB, perm.CycleLeader, perm.WithWorkers(2))
		}
	})
}
