package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"implicitlayout/internal/mmapio"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
	"implicitlayout/store"
)

// ColdConfig parameterizes the cold-cache point-lookup experiment.
type ColdConfig struct {
	// LogN is the key count exponent (2^LogN keys).
	LogN int
	// Lookups is the number of cold lookups averaged per cell.
	Lookups int
	// B is the B-tree node capacity (inner block capacity for hier).
	B int
	// HitFrac is the expected fraction of present-key lookups.
	HitFrac float64
	// Layouts spans the compared layouts.
	Layouts []layout.Kind
	// Seed drives the query generator.
	Seed int64
	// Dir is the scratch directory for segment files; empty means a
	// fresh temp directory, removed afterwards.
	Dir string
}

// ColdLookup measures what a single point lookup costs when nothing is
// resident: per trial the segment is remapped AND evicted from the OS
// page cache, so every page the descent touches is a major fault served
// by the device. This is the regime the hier layout exists for — a
// lookup descends ceil(log_{P+1} N) page-sized super-blocks instead of
// ceil(log_{b+1} N) scattered cache lines, so it touches ~3 pages where
// the B-tree touches ~7 and the vEB order more still — and the
// majflt/op column reports the measured fault count per lookup
// (process-wide major faults, so it includes the value page on hits).
// The heap_us column times the same lookups on a heap-decoded store
// (cache-resident after warmup), where the B-tree's lower arithmetic
// cost wins instead: the crossover is what ARCHITECTURE.md's layout
// decision rule is based on. Shards are fixed at 1 so each lookup is
// one full-depth descent.
func ColdLookup(c ColdConfig) (*Table, error) {
	n := 1 << c.LogN
	sorted := workload.Sorted(n)
	// One extra query: the first cold lookup is discarded as warmup
	// (first-call effects: lazily built routing state, code paging).
	queries := workload.Queries(c.Lookups+1, n, c.HitFrac, c.Seed)
	t := &Table{
		Title: fmt.Sprintf("hier: fully cold point lookups, N=2^%d, %d lookups/cell", c.LogN, c.Lookups),
		Note: fmt.Sprintf("cold = segment remapped and page-cache-evicted before every lookup "+
			"(every touched page is a major fault); heap = same lookups on a resident heap decode; "+
			"hitfrac=%.2f b=%d shards=1", c.HitFrac, c.B),
		Header: []string{"layout", "heap_us/op", "cold_us/op", "majflt/op", "hit%"},
	}
	dir := c.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "coldbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	vals := make([]uint64, n)
	for i, k := range sorted {
		vals[i] = k ^ storeValMagic
	}
	for _, kind := range c.Layouts {
		built, err := store.Build(sorted, vals,
			store.WithLayout(kind), store.WithShards(1), store.WithB(c.B))
		if err != nil {
			return nil, fmt.Errorf("bench: %v: build: %w", kind, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("cold_%s.seg", kind))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if _, err := built.WriteTo(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: %v: write segment: %w", kind, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}

		// Heap baseline: the whole query set in one resident timed loop.
		heap, err := store.OpenStore[uint64, uint64](path)
		if err != nil {
			return nil, fmt.Errorf("bench: %v: reopen heap: %w", kind, err)
		}
		hits := 0
		hd := timeIt(3, func() { hits = 0 }, func() {
			for _, q := range queries[1:] {
				if v, ok := heap.Get(q); ok {
					if v != q^storeValMagic {
						panic(fmt.Sprintf("bench: %v: Get(%d) returned wrong value", kind, q))
					}
					hits++
				}
			}
		})
		heapUS := hd.Seconds() * 1e6 / float64(c.Lookups)

		// Cold lookups: remap + evict before every single Get, and count
		// the major faults the Get itself incurs.
		var st *store.Store[uint64, uint64]
		remap := func() error {
			if st != nil {
				st.Release()
			}
			runtime.GC()
			st, err = store.OpenStore[uint64, uint64](path, store.WithMmap(true))
			if err != nil {
				return fmt.Errorf("bench: %v: reopen mmap: %w", kind, err)
			}
			// Evict after the open, not before: the open's header and
			// fence reads trigger readahead that would re-warm the cache.
			// DONTNEED skips the handful of pages the open already
			// faulted through the mapping — warm router, cold tree.
			if err := mmapio.Evict(path); err != nil {
				return fmt.Errorf("bench: %v: evict page cache: %w", kind, err)
			}
			return nil
		}
		var total time.Duration
		var faults int64
		coldHits := 0
		for i, q := range queries {
			if err := remap(); err != nil {
				return nil, err
			}
			f0 := majorFaults()
			t0 := time.Now()
			v, ok := st.Get(q)
			dt := time.Since(t0)
			f1 := majorFaults()
			if ok && v != q^storeValMagic {
				return nil, fmt.Errorf("bench: %v: cold Get(%d) returned wrong value", kind, q)
			}
			if i == 0 {
				continue // warmup lookup: first-call effects
			}
			total += dt
			faults += f1 - f0
			if ok {
				coldHits++
			}
		}
		st.Release()
		if coldHits != hits {
			return nil, fmt.Errorf("bench: %v: cold hits %d != heap hits %d", kind, coldHits, hits)
		}
		t.AddRow(kind.String(),
			fmt.Sprintf("%.2f", heapUS),
			fmt.Sprintf("%.2f", total.Seconds()*1e6/float64(c.Lookups)),
			fmt.Sprintf("%.2f", float64(faults)/float64(c.Lookups)),
			fmt.Sprintf("%.1f", 100*float64(coldHits)/float64(c.Lookups)))
	}
	return t, nil
}
