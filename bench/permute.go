package bench

import (
	"fmt"
	"runtime"
	"time"

	"implicitlayout/internal/bits"
	"implicitlayout/internal/core"
	"implicitlayout/internal/gather"
	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
)

// AlgoSpec identifies one of the six permutation algorithms.
type AlgoSpec struct {
	// Name is the short label used in table headers.
	Name string
	// Kind is the layout the algorithm builds.
	Kind layout.Kind
	// Algo is the family.
	Algo core.Algorithm
}

// paperKinds lists the three layouts the paper's figures compare. The
// hier layout is this repo's extension and gets its own experiment
// (HierLookup); the figure reproductions stay pinned to the paper.
func paperKinds() []layout.Kind {
	return []layout.Kind{layout.BST, layout.BTree, layout.VEB}
}

// Algos lists the six algorithms in the order the paper's figures use.
func Algos() []AlgoSpec {
	return []AlgoSpec{
		{"inv-bst", layout.BST, core.Involution},
		{"cyc-bst", layout.BST, core.CycleLeader},
		{"inv-btree", layout.BTree, core.Involution},
		{"cyc-btree", layout.BTree, core.CycleLeader},
		{"inv-veb", layout.VEB, core.Involution},
		{"cyc-veb", layout.VEB, core.CycleLeader},
	}
}

// options assembles core options for a measurement run.
func options(p, b int, softwareRev bool) core.Options {
	o := core.Options{Runner: par.New(p), B: b}
	if softwareRev {
		o.Rev = bits.Software{}
	}
	return o
}

// RunPermute executes one permutation on data in place.
func RunPermute(spec AlgoSpec, data []uint64, p, b int, softwareRev bool) {
	core.Permute[uint64](options(p, b, softwareRev), vec.Of(data), spec.Kind, spec.Algo)
}

// PermuteConfig parameterizes the Figure 6.1 / 6.2 sweeps.
type PermuteConfig struct {
	// MinLog and MaxLog bound the sweep N = 2^MinLog .. 2^MaxLog.
	MinLog, MaxLog int
	// P is the worker count (1 reproduces Figure 6.1, NumCPU Figure 6.2).
	P int
	// B is the B-tree node capacity (the paper uses 8 on CPUs).
	B int
	// Trials is the number of timed repetitions averaged per cell.
	Trials int
	// SoftwareRev models a CPU without a hardware bit-reversal
	// instruction, as in the paper's CPU platform.
	SoftwareRev bool
}

// PermuteTimes reproduces Figures 6.1 and 6.2: the average time to permute
// a sorted array with each of the six algorithms, versus N.
func PermuteTimes(cfg PermuteConfig) Table {
	t := Table{
		Title: fmt.Sprintf("fig6.1/6.2: permute time [s] vs N (P=%d, B=%d)", cfg.P, cfg.B),
		Note:  fmt.Sprintf("%d trials per cell; 64-bit keys; softwareRev=%v", cfg.Trials, cfg.SoftwareRev),
	}
	t.Header = append([]string{"N"}, names(Algos())...)
	for lg := cfg.MinLog; lg <= cfg.MaxLog; lg++ {
		n := 1 << uint(lg)
		data := make([]uint64, n)
		row := []string{fmt.Sprintf("2^%d", lg)}
		for _, spec := range Algos() {
			spec := spec
			d := timeIt(cfg.Trials,
				func() { workload.Refill(data) },
				func() { RunPermute(spec, data, cfg.P, cfg.B, cfg.SoftwareRev) })
			row = append(row, secs(d))
		}
		t.AddRow(row...)
	}
	return t
}

func names(specs []AlgoSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// SpeedupConfig parameterizes the Figure 6.3 sweep.
type SpeedupConfig struct {
	// LogN fixes the input size N = 2^LogN.
	LogN int
	// MaxP bounds the worker sweep 1..MaxP.
	MaxP int
	// B is the B-tree node capacity.
	B int
	// Trials per cell.
	Trials int
}

// Speedup reproduces Figure 6.3: the speedup over P = 1 of the fastest
// permutation algorithm for each layout (determined by measurement at
// P = 1, as in the paper), versus the number of workers. Note that this
// host has runtime.NumCPU() hardware threads; speedups beyond that count
// measure scheduling overhead, not parallelism.
func Speedup(cfg SpeedupConfig) Table {
	n := 1 << uint(cfg.LogN)
	data := make([]uint64, n)
	// Pick the fastest family per layout at P = 1.
	fastest := map[layout.Kind]AlgoSpec{}
	base := map[layout.Kind]time.Duration{}
	for _, spec := range Algos() {
		spec := spec
		d := timeIt(cfg.Trials,
			func() { workload.Refill(data) },
			func() { RunPermute(spec, data, 1, cfg.B, false) })
		if cur, ok := base[spec.Kind]; !ok || d < cur {
			base[spec.Kind] = d
			fastest[spec.Kind] = spec
		}
	}
	t := Table{
		Title: fmt.Sprintf("fig6.3: speedup vs P (N=2^%d, B=%d, host has %d CPUs)", cfg.LogN, cfg.B, runtime.NumCPU()),
		Note: fmt.Sprintf("fastest per layout at P=1: bst=%s btree=%s veb=%s",
			fastest[layout.BST].Name, fastest[layout.BTree].Name, fastest[layout.VEB].Name),
		Header: []string{"P", "bst", "btree", "veb"},
	}
	for p := 1; p <= cfg.MaxP; p++ {
		row := []string{fmt.Sprintf("%d", p)}
		for _, k := range paperKinds() {
			spec := fastest[k]
			d := timeIt(cfg.Trials,
				func() { workload.Refill(data) },
				func() { RunPermute(spec, data, p, cfg.B, false) })
			row = append(row, ratio(base[k].Seconds()/d.Seconds()))
		}
		t.AddRow(row...)
	}
	return t
}

// ThroughputConfig parameterizes the Figure 6.4 comparison.
type ThroughputConfig struct {
	// LogN sets the approximate array size.
	LogN int
	// MaxP bounds the worker sweep.
	MaxP int
	// B sets the gather shape r = l = B.
	B int
	// Trials per cell.
	Trials int
}

// GatherThroughput reproduces Figure 6.4: the memory throughput of a
// single round of the equidistant gather on chunks of elements (the inner
// operation of the B-tree cycle-leader algorithm) versus the simplest
// analog, swapping the first half of the array with the second half.
// Throughput counts each element as 16 moved bytes (read + write).
func GatherThroughput(cfg ThroughputConfig) Table {
	units := cfg.B + (cfg.B+1)*cfg.B // shape-a unit count for r = l = B
	c := (1 << uint(cfg.LogN)) / units
	n := units * c
	data := make([]uint64, n)
	t := Table{
		Title:  fmt.Sprintf("fig6.4: throughput [GB/s] vs P (N=%d, chunk=%d)", n, c),
		Note:   "gather = one equidistant gather on chunks (r=l=B); swap = first half <-> second half",
		Header: []string{"P", "gather-chunks", "swap-halves"},
	}
	bytes := float64(n) * 16
	for p := 1; p <= cfg.MaxP; p++ {
		rn := par.New(p)
		dg := timeIt(cfg.Trials,
			func() { workload.Refill(data) },
			func() { gather.Equidistant[uint64](rn, vec.Of(data), 0, cfg.B, cfg.B, c) })
		ds := timeIt(cfg.Trials,
			func() { workload.Refill(data) },
			func() { shuffle.SwapBlocks[uint64](rn, vec.Of(data), 0, n/2, n/2) })
		t.AddRow(fmt.Sprintf("%d", p),
			fmt.Sprintf("%.2f", bytes/dg.Seconds()/1e9),
			fmt.Sprintf("%.2f", bytes/ds.Seconds()/1e9))
	}
	return t
}
