package bench

import (
	"strconv"
	"strings"
	"testing"

	"implicitlayout/layout"
)

// TestBatchThroughputSmoke runs the batched-search benchmark at tiny
// scale — heap and mmap rows — and checks the grid shape, the serial vs
// ring hit-count cross-check (an error return), and sane hit rates. The
// speedup column is not asserted: at this size everything is in cache
// and the interesting regime is the committed N=2^22 baseline.
func TestBatchThroughputSmoke(t *testing.T) {
	tb, err := BatchThroughput(BatchConfig{
		LogN: 12, Q: 4000, B: 8, HitFrac: 0.5,
		Layouts: []layout.Kind{layout.BST, layout.BTree},
		Workers: []int{1, 2},
		Trials:  1, Seed: 1,
		Mmap: true, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tb.Rows), 2*2*2; got != want { // {heap,mmap} x layouts x workers
		t.Fatalf("rows = %d, want %d", got, want)
	}
	modes := map[string]int{}
	for _, r := range tb.Rows {
		modes[r[0]]++
		if !strings.Contains(r[0], "heap") && !strings.Contains(r[0], "mmap") {
			t.Fatalf("unknown mode in row %v", r)
		}
		hit, err := strconv.ParseFloat(r[len(r)-1], 64)
		if err != nil || hit < 30 || hit > 70 {
			t.Fatalf("hit%% %s implausible for hitfrac 0.5: %v", r[len(r)-1], r)
		}
		if _, err := strconv.ParseFloat(r[5], 64); err != nil {
			t.Fatalf("speedup column not numeric: %v", r)
		}
	}
	if modes["heap"] != 4 || modes["mmap-cold"] != 4 {
		t.Fatalf("mode split %v, want 4 heap + 4 mmap-cold", modes)
	}
}
