package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// DBConfig parameterizes the writable-store mixed-workload benchmark:
// concurrent clients issue an interleaved stream of Puts and Gets
// against one DB while its background compactor flushes and merges.
type DBConfig struct {
	// LogN is the preloaded record count exponent (2^LogN records).
	LogN int
	// Ops is the number of timed operations per measurement, split
	// evenly across the client goroutines.
	Ops int
	// WriteFrac is the fraction of operations that are Puts; the rest
	// are Gets spread over twice the preloaded key range (so roughly
	// half the reads hit).
	WriteFrac float64
	// MemLimit and Fanout configure the DB (zero selects the store
	// defaults).
	MemLimit, Fanout int
	// B is the B-tree node capacity for B-tree run layouts.
	B int
	// Layouts and Workers span the measured grid; Workers counts client
	// goroutines, not build parallelism.
	Layouts []layout.Kind
	Workers []int
	// Trials is the number of timed repetitions per cell (each on a
	// freshly preloaded DB).
	Trials int
	// Seed drives the preload and the per-client operation streams.
	Seed int64
}

// DBThroughput measures the writable store under a mixed read/write
// workload: per layout x client count, a DB is preloaded with 2^LogN
// records and flushed into runs, then the clients hammer it with the
// configured Put/Get mix while compaction runs in the background. Every
// Get that hits is verified against the key-derived payload. The
// closing columns report the DB's shape after the run — how many runs
// and levels the write stream left behind.
func DBThroughput(c DBConfig) *Table {
	n := 1 << c.LogN
	t := &Table{
		Title: fmt.Sprintf("store/db: mixed workload, N=2^%d preloaded, %d ops, %.0f%% writes",
			c.LogN, c.Ops, 100*c.WriteFrac),
		Note: fmt.Sprintf("clients split the op stream; background compaction on; "+
			"memlimit=%d fanout=%d b=%d trials=%d", c.MemLimit, c.Fanout, c.B, c.Trials),
		Header: []string{"layout", "clients", "Mop/s", "ns/op", "hit%", "runs", "max_level"},
	}
	for _, kind := range c.Layouts {
		for _, clients := range c.Workers {
			var db *store.DB[uint64, uint64]
			var hits int64
			prep := func() {
				if db != nil {
					db.Close()
				}
				var err error
				db, err = store.NewDB[uint64, uint64](store.DBConfig{
					MemLimit: c.MemLimit, Fanout: c.Fanout,
					Store: []store.Option{store.WithLayout(kind), store.WithB(c.B)},
				})
				if err != nil {
					panic("bench: " + err.Error())
				}
				for i := 0; i < n; i++ {
					k := uint64(i)
					db.Put(k, k^storeValMagic)
				}
				db.Flush()
			}
			d := timeIt(c.Trials, prep, func() {
				hits = runMixed(db, c, clients, n)
			})
			st := db.Stats()
			maxLevel := 0
			for _, lvl := range st.RunLevels {
				maxLevel = max(maxLevel, lvl)
			}
			ops := float64(c.Ops)
			reads := float64(c.Ops) * (1 - c.WriteFrac)
			hitPct := 0.0
			if reads > 0 {
				hitPct = 100 * float64(hits) / reads
			}
			db.Close()
			db = nil
			t.AddRow(
				kind.String(),
				fmt.Sprint(clients),
				fmt.Sprintf("%.2f", ops/d.Seconds()/1e6),
				fmt.Sprintf("%.0f", float64(d.Nanoseconds())/ops),
				fmt.Sprintf("%.1f", hitPct),
				fmt.Sprint(st.Runs()),
				fmt.Sprint(maxLevel),
			)
		}
	}
	return t
}

// runMixed fires c.Ops operations at db from the given number of client
// goroutines and returns the read hit count. Writes always store the
// key-derived payload, so every hit is verifiable no matter which client
// wrote it or whether the version came from the memtable or a run.
func runMixed(db *store.DB[uint64, uint64], c DBConfig, clients, n int) int64 {
	if clients < 1 {
		clients = 1
	}
	per := c.Ops / clients
	var wg sync.WaitGroup
	hitsBy := make([]int64, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(c.Seed + int64(w) + 1))
			var hits int64
			for i := 0; i < per; i++ {
				if rng.Float64() < c.WriteFrac {
					k := uint64(rng.Intn(n))
					db.Put(k, k^storeValMagic)
				} else {
					k := uint64(rng.Intn(2 * n)) // ~half the reads miss
					if v, ok := db.Get(k); ok {
						if v != k^storeValMagic {
							panic(fmt.Sprintf("bench: db returned wrong value %d for key %d", v, k))
						}
						hits++
					}
				}
			}
			hitsBy[w] = hits
		}(w)
	}
	wg.Wait()
	var total int64
	for _, h := range hitsBy {
		total += h
	}
	return total
}
