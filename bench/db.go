package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// DBConfig parameterizes the writable-store mixed-workload benchmark:
// concurrent clients issue an interleaved stream of Puts and Gets
// against one DB while its background compactor flushes and merges.
type DBConfig struct {
	// LogN is the preloaded record count exponent (2^LogN records).
	LogN int
	// Ops is the number of timed operations per measurement, split
	// evenly across the client goroutines.
	Ops int
	// WriteFrac is the fraction of operations that are Puts; the rest
	// are Gets spread over twice the preloaded key range (so roughly
	// half the reads hit).
	WriteFrac float64
	// MemLimit and Fanout configure the DB (zero selects the store
	// defaults).
	MemLimit, Fanout int
	// B is the B-tree node capacity for B-tree run layouts.
	B int
	// Dir, when non-empty, switches the benchmark to the durable DB:
	// every cell opens a fresh subdirectory of Dir, every Put goes
	// through the write-ahead log, and after the timed workload the DB
	// is closed and reopened — the reopen (manifest load + segment read,
	// no re-sort, no re-permute) is measured and verified, and the table
	// grows reopen-time and segment-count columns.
	Dir string
	// SyncWrites additionally fsyncs the WAL on every write (durable
	// mode only) — the full power-failure guarantee, at syscall cost.
	SyncWrites bool
	// Mmap (durable mode only) reopens the DB in cold-serve mode —
	// segments mapped, not decoded — and turns the reopen measurement
	// into a comparison: the table reports both the full-decode reopen
	// (decode_ms) and the mapped reopen (mmap_ms) of the same directory,
	// so the cold-start gap the zero-copy codec buys is a column, not a
	// claim. Reads are verified against the mapped DB.
	Mmap bool
	// Layouts and Workers span the measured grid; Workers counts client
	// goroutines, not build parallelism.
	Layouts []layout.Kind
	Workers []int
	// Trials is the number of timed repetitions per cell (each on a
	// freshly preloaded DB).
	Trials int
	// Seed drives the preload and the per-client operation streams.
	Seed int64
}

// DBThroughput measures the writable store under a mixed read/write
// workload: per layout x client count, a DB is preloaded with 2^LogN
// records and flushed into runs, then the clients hammer it with the
// configured Put/Get mix while compaction runs in the background. Every
// Get that hits is verified against the key-derived payload. The
// closing columns report the DB's shape after the run — how many runs
// and levels the write stream left behind — plus, in durable mode
// (Dir set), the measured reopen/recovery time and on-disk segment
// count.
func DBThroughput(c DBConfig) *Table {
	n := 1 << c.LogN
	durable := c.Dir != ""
	mode := "in-memory"
	if durable {
		mode = fmt.Sprintf("durable (dir=%s sync=%v)", c.Dir, c.SyncWrites)
	}
	if c.Mmap {
		mode += " mmap"
	}
	t := &Table{
		Title: fmt.Sprintf("store/db: mixed workload, N=2^%d preloaded, %d ops, %.0f%% writes, %s",
			c.LogN, c.Ops, 100*c.WriteFrac, mode),
		Note: fmt.Sprintf("clients split the op stream; background compaction on; "+
			"memlimit=%d fanout=%d b=%d trials=%d", c.MemLimit, c.Fanout, c.B, c.Trials),
		Header: []string{"layout", "clients", "Mop/s", "ns/op", "hit%", "runs", "max_level"},
	}
	if durable {
		if c.Mmap {
			// The cold-reopen comparison: decode_ms pages and decodes the
			// whole dataset, mmap_ms maps it — same directory, same
			// segments.
			t.Header = append(t.Header, "decode_ms", "mmap_ms", "segs", "mapped")
		} else {
			t.Header = append(t.Header, "reopen_ms", "segs")
		}
	}
	cell := 0
	for _, kind := range c.Layouts {
		for _, clients := range c.Workers {
			cell++
			var db *store.DB[uint64, uint64]
			var dir string
			var hits int64
			cfg := store.DBConfig{
				MemLimit: c.MemLimit, Fanout: c.Fanout, SyncWrites: c.SyncWrites,
				Store: []store.Option{store.WithLayout(kind), store.WithB(c.B)},
			}
			prep := func() {
				if db != nil {
					if err := db.Close(); err != nil {
						panic("bench: closing previous db: " + err.Error())
					}
				}
				if dir != "" {
					os.RemoveAll(dir)
				}
				var err error
				if durable {
					dir = filepath.Join(c.Dir, fmt.Sprintf("cell-%d", cell))
					os.RemoveAll(dir) // a fresh directory every trial
					db, err = store.Open[uint64, uint64](dir, cfg)
				} else {
					db, err = store.NewDB[uint64, uint64](cfg)
				}
				if err != nil {
					panic("bench: " + err.Error())
				}
				for i := 0; i < n; i++ {
					k := uint64(i)
					if err := db.Put(k, k^storeValMagic); err != nil {
						panic("bench: preload: " + err.Error())
					}
				}
				if err := db.Flush(); err != nil {
					panic("bench: preload flush: " + err.Error())
				}
			}
			d := timeIt(c.Trials, prep, func() {
				hits = runMixed(db, c, clients, n)
			})
			st := db.Stats()
			maxLevel := 0
			for _, lvl := range st.RunLevels {
				maxLevel = max(maxLevel, lvl)
			}
			ops := float64(c.Ops)
			reads := float64(c.Ops) * (1 - c.WriteFrac)
			hitPct := 0.0
			if reads > 0 {
				hitPct = 100 * float64(hits) / reads
			}
			row := []string{
				kind.String(),
				fmt.Sprint(clients),
				fmt.Sprintf("%.2f", ops/d.Seconds()/1e6),
				fmt.Sprintf("%.0f", float64(d.Nanoseconds())/ops),
				fmt.Sprintf("%.1f", hitPct),
				fmt.Sprint(st.Runs()),
				fmt.Sprint(maxLevel),
			}
			if durable {
				if c.Mmap {
					decodeMS, mmapMS, segs, mapped := measureReopenModes(db, dir, cfg, n)
					row = append(row,
						fmt.Sprintf("%.1f", decodeMS),
						fmt.Sprintf("%.2f", mmapMS),
						fmt.Sprint(segs),
						fmt.Sprint(mapped))
				} else {
					reopenMS, segs := measureReopen(db, dir, cfg, n)
					row = append(row,
						fmt.Sprintf("%.1f", reopenMS),
						fmt.Sprint(segs))
				}
				db = nil // the reopen measurement closed it
				os.RemoveAll(dir)
				dir = ""
			} else {
				if err := db.Close(); err != nil {
					panic("bench: closing db: " + err.Error())
				}
				db = nil
			}
			t.AddRow(row...)
		}
	}
	return t
}

// measureReopen closes the benchmarked DB (flushing everything to
// manifest-committed segments), reopens the directory cold, verifies a
// sample of the preloaded records against their key-derived payloads,
// and returns the reopen wall time and on-disk segment count. The
// reopen is the recovery path the durable design optimizes: manifest
// load plus straight reads of the permuted arrays.
func measureReopen(db *store.DB[uint64, uint64], dir string, cfg store.DBConfig, n int) (ms float64, segs int) {
	if err := db.Close(); err != nil {
		panic("bench: closing durable db: " + err.Error())
	}
	start := time.Now()
	reopened, err := store.Open[uint64, uint64](dir, cfg)
	if err != nil {
		panic("bench: reopening durable db: " + err.Error())
	}
	elapsed := time.Since(start)
	for i := 0; i < n; i += 97 { // sampled verification: reads hit real segments
		k := uint64(i)
		if v, ok := reopened.Get(k); !ok || v != k^storeValMagic {
			panic(fmt.Sprintf("bench: reopened db lost key %d (got %d, %v)", k, v, ok))
		}
	}
	segs = reopened.Stats().DiskRuns
	if err := reopened.Close(); err != nil {
		panic("bench: closing reopened db: " + err.Error())
	}
	return float64(elapsed.Nanoseconds()) / 1e6, segs
}

// measureReopenModes closes the benchmarked DB, then reopens the same
// directory twice cold: once decoding every segment onto the heap, once
// mapping them (cold-serve mode). The ratio of the two times is the
// point of codec v2 — a mapped reopen is O(#segments) metadata work
// while the decode reopen is O(data) — and reporting both from the same
// directory makes the comparison honest. The mapped DB's records are
// verified by sampled reads before it is closed.
func measureReopenModes(db *store.DB[uint64, uint64], dir string, cfg store.DBConfig, n int) (decodeMS, mmapMS float64, segs, mapped int) {
	if err := db.Close(); err != nil {
		panic("bench: closing durable db: " + err.Error())
	}
	heapCfg := cfg
	heapCfg.Mmap = false
	start := time.Now()
	decoded, err := store.Open[uint64, uint64](dir, heapCfg)
	if err != nil {
		panic("bench: decode-reopening durable db: " + err.Error())
	}
	decodeMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if err := decoded.Close(); err != nil {
		panic("bench: closing decode-reopened db: " + err.Error())
	}

	mmapCfg := cfg
	mmapCfg.Mmap = true
	start = time.Now()
	mappedDB, err := store.Open[uint64, uint64](dir, mmapCfg)
	if err != nil {
		panic("bench: mmap-reopening durable db: " + err.Error())
	}
	mmapMS = float64(time.Since(start).Nanoseconds()) / 1e6
	for i := 0; i < n; i += 97 {
		k := uint64(i)
		if v, ok := mappedDB.Get(k); !ok || v != k^storeValMagic {
			panic(fmt.Sprintf("bench: mmap-reopened db lost key %d (got %d, %v)", k, v, ok))
		}
	}
	st := mappedDB.Stats()
	segs, mapped = st.DiskRuns, st.MappedRuns
	if err := mappedDB.Close(); err != nil {
		panic("bench: closing mmap-reopened db: " + err.Error())
	}
	return decodeMS, mmapMS, segs, mapped
}

// runMixed fires c.Ops operations at db from the given number of client
// goroutines and returns the read hit count. Writes always store the
// key-derived payload, so every hit is verifiable no matter which client
// wrote it or whether the version came from the memtable or a run.
func runMixed(db *store.DB[uint64, uint64], c DBConfig, clients, n int) int64 {
	if clients < 1 {
		clients = 1
	}
	per := c.Ops / clients
	var wg sync.WaitGroup
	hitsBy := make([]int64, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(c.Seed + int64(w) + 1))
			var hits int64
			for i := 0; i < per; i++ {
				if rng.Float64() < c.WriteFrac {
					k := uint64(rng.Intn(n))
					if err := db.Put(k, k^storeValMagic); err != nil {
						panic("bench: put not acked: " + err.Error())
					}
				} else {
					k := uint64(rng.Intn(2 * n)) // ~half the reads miss
					if v, ok := db.Get(k); ok {
						if v != k^storeValMagic {
							panic(fmt.Sprintf("bench: db returned wrong value %d for key %d", v, k))
						}
						hits++
					}
				}
			}
			hitsBy[w] = hits
		}(w)
	}
	wg.Wait()
	var total int64
	for _, h := range hitsBy {
		total += h
	}
	return total
}
