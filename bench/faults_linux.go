//go:build linux

package bench

import "syscall"

// majorFaults returns the process's cumulative major page fault count —
// faults that required device I/O, which after an mmapio.Evict is every
// first touch of a mapped page.
func majorFaults() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Majflt
}
