package bench

import (
	"fmt"
	"math"

	"implicitlayout/internal/core"
	"implicitlayout/internal/pem"
	"implicitlayout/internal/trace"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"

	"implicitlayout/internal/par"
)

// Table11Config parameterizes the empirical validation of Table 1.1.
type Table11Config struct {
	// MinLog and MaxLog bound the size sweep.
	MinLog, MaxLog int
	// B is the B-tree node capacity.
	B int
	// P is the simulated processor count for the PEM run.
	P int
	// PEM sizes the simulated caches (zero value: pem.DefaultConfig).
	PEM pem.Config
}

func (c Table11Config) pemConfig() pem.Config {
	if c.PEM.B == 0 {
		return pem.DefaultConfig()
	}
	return c.PEM
}

// perfectSize returns the largest perfect-tree size for the layout that
// does not exceed 2^lg: Table 1.1 is stated (Chapters 2-4) for perfect
// trees, so its empirical validation uses them; the Chapter 5 extensions
// have separate (larger) bounds.
func perfectSize(k layout.Kind, b, lg int) int {
	if k == layout.BTree {
		full, _ := layout.PerfectPrefix(1<<uint(lg), b+1)
		return full
	}
	return 1<<uint(lg) - 1
}

// WorkScaling validates the time column of Table 1.1: it runs every
// algorithm on the counting backend and reports swaps per element. The
// growth of each column with N must match the closed form — constant for
// the involution BST (O(N) work), log_{B+1} N for the B-tree algorithms,
// log log N for the vEB cycle-leader, log N for the vEB involution.
func WorkScaling(cfg Table11Config) Table {
	t := Table{
		Title:  fmt.Sprintf("table1.1 (work): element swaps per key vs N (B=%d)", cfg.B),
		Note:   "perfect-tree sizes per layout; growth must track: inv-bst O(1); btree O(log_{B+1}N); inv-veb O(logN); cyc-veb O(loglogN)",
		Header: append([]string{"N"}, names(Algos())...),
	}
	for lg := cfg.MinLog; lg <= cfg.MaxLog; lg++ {
		row := []string{fmt.Sprintf("~2^%d", lg)}
		for _, spec := range Algos() {
			n := perfectSize(spec.Kind, cfg.B, lg)
			data := workload.Sorted(n)
			v := trace.New(data, 1)
			core.Permute[uint64](core.Options{Runner: par.New(1), B: cfg.B}, v, spec.Kind, spec.Algo)
			row = append(row, fmt.Sprintf("%.2f", float64(v.Swaps())/float64(n)))
		}
		t.AddRow(row...)
	}
	return t
}

// ioBound evaluates the Table 1.1 I/O bound (without constants) for one
// algorithm at the given parameters; K = min(N/P, M).
func ioBound(spec AlgoSpec, n, p, btreeB int, cfg pem.Config) float64 {
	N, P := float64(n), float64(p)
	B := float64(cfg.B)
	K := math.Min(N/P, float64(cfg.M))
	logBp1 := func(x float64) float64 { return math.Log(x) / math.Log(float64(btreeB)+1) }
	log2 := func(x float64) float64 { return math.Log2(x) }
	pos := func(x float64) float64 { return math.Max(x, 1) }
	switch {
	case spec.Kind == layout.BST && spec.Algo == core.Involution:
		return N / P
	case spec.Kind == layout.BST && spec.Algo == core.CycleLeader:
		return (N/(P*B) + pos(log2(N/K))) * pos(log2(N/K))
	case spec.Kind == layout.BTree && spec.Algo == core.Involution:
		return N/P + float64(btreeB)*pos(logBp1(N/K))
	case spec.Kind == layout.BTree && spec.Algo == core.CycleLeader:
		return (N/(P*B) + pos(logBp1(N/K))) * pos(logBp1(N/K))
	case spec.Kind == layout.VEB && spec.Algo == core.Involution:
		return N / P * pos(math.Log2(pos(log2(N))/pos(log2(K))+1)+1)
	case spec.Kind == layout.VEB && spec.Algo == core.CycleLeader:
		return N / (P * B) * pos(math.Log2(pos(log2(N))/pos(log2(K))+1)+1)
	}
	return math.NaN()
}

// IOScaling validates the I/O column of Table 1.1: every algorithm runs
// on the PEM simulator and the measured parallel I/O count Q(N, P) — the
// maximum block transfers of any processor — is divided by the Table 1.1
// bound. A ratio that stays (roughly) flat as N grows confirms the
// asymptotic; its value is the constant factor.
func IOScaling(cfg Table11Config) Table {
	pc := cfg.pemConfig()
	t := Table{
		Title: fmt.Sprintf("table1.1 (I/O): measured Q(N,P)/bound vs N (P=%d, M=%d, B=%d words, btreeB=%d)",
			cfg.P, pc.M, pc.B, cfg.B),
		Note:   "flat columns confirm the Table 1.1 I/O bounds; the value is the constant factor",
		Header: append([]string{"N"}, names(Algos())...),
	}
	for lg := cfg.MinLog; lg <= cfg.MaxLog; lg++ {
		row := []string{fmt.Sprintf("~2^%d", lg)}
		for _, spec := range Algos() {
			n := perfectSize(spec.Kind, cfg.B, lg)
			data := workload.Sorted(n)
			v := pem.New(data, cfg.P, pc)
			rn := par.Runner{Lo: 0, Hi: cfg.P, MinFor: 1}
			core.Permute[uint64](core.Options{Runner: rn, B: cfg.B}, v, spec.Kind, spec.Algo)
			bound := ioBound(spec, n, cfg.P, cfg.B, pc)
			row = append(row, fmt.Sprintf("%.3f", float64(v.MaxIO())/bound))
		}
		t.AddRow(row...)
	}
	return t
}
