package bench

import (
	"fmt"
	"time"

	"implicitlayout/internal/workload"
	"implicitlayout/layout"
	"implicitlayout/search"
)

// BreakEvenConfig parameterizes the Figure 6.6 / 6.7 experiment.
type BreakEvenConfig struct {
	// LogN fixes the array size N = 2^LogN (the paper uses 2^29).
	LogN int
	// P is the worker count for permutation and batch queries (1
	// reproduces Figure 6.6, NumCPU Figure 6.7).
	P int
	// B is the B-tree node capacity.
	B int
	// Trials per measurement.
	Trials int
	// QBase is the batch size used to measure per-query cost.
	QBase int
	// MinLogQ and MaxLogQ bound the reported sweep Q = 2^MinLogQ...
	MinLogQ, MaxLogQ int
	// Seed drives query generation.
	Seed int64
}

// BreakEvenResult carries the Figure 6.6/6.7 table plus the headline
// crossover points (the paper's central practical claim).
type BreakEvenResult struct {
	// Combined is the permute+query time table versus Q.
	Combined Table
	// Crossovers lists, per layout, the smallest Q at which permuting
	// beats plain binary search.
	Crossovers Table
}

// BreakEven reproduces Figures 6.6 and 6.7: the combined time of permuting
// an N-key sorted array into each layout (with the fastest algorithm for
// that layout, as measured) and answering Q uniformly random queries,
// versus Q, against the binary-search-only baseline. Per-query costs are
// measured on a QBase-sized batch and scaled — query cost is linear in Q
// for uniform random queries. The crossover Q for each layout is
// permuteTime / (binaryRate - layoutRate).
func BreakEven(cfg BreakEvenConfig) BreakEvenResult {
	n := 1 << uint(cfg.LogN)
	sorted := workload.Sorted(n)
	queries := workload.Queries(cfg.QBase, n, 0.5, cfg.Seed)

	// Permutation times: fastest family per layout.
	permTime := map[layout.Kind]time.Duration{}
	permName := map[layout.Kind]string{}
	data := make([]uint64, n)
	for _, spec := range Algos() {
		spec := spec
		d := timeIt(cfg.Trials,
			func() { workload.Refill(data) },
			func() { RunPermute(spec, data, cfg.P, cfg.B, false) })
		if cur, ok := permTime[spec.Kind]; !ok || d < cur {
			permTime[spec.Kind] = d
			permName[spec.Kind] = spec.Name
		}
	}

	// Per-query rates (seconds per query) per layout, and the baseline.
	rate := map[layout.Kind]float64{}
	kinds := []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB}
	for _, k := range kinds {
		arr := sorted
		if k != layout.Sorted {
			arr = layoutCopy(sorted, k, cfg.B)
		}
		ix := search.NewIndex(arr, k, cfg.B)
		d := timeIt(cfg.Trials, func() {}, func() {
			querySink += ix.FindBatch(queries, cfg.P)
		})
		rate[k] = d.Seconds() / float64(len(queries))
	}

	combined := Table{
		Title: fmt.Sprintf("fig6.6/6.7: permute+query time [s] vs Q (N=2^%d, P=%d, B=%d)", cfg.LogN, cfg.P, cfg.B),
		Note: fmt.Sprintf("permute algorithms: bst=%s (%.3gs) btree=%s (%.3gs) veb=%s (%.3gs); rates measured on Q=%d",
			permName[layout.BST], permTime[layout.BST].Seconds(),
			permName[layout.BTree], permTime[layout.BTree].Seconds(),
			permName[layout.VEB], permTime[layout.VEB].Seconds(), cfg.QBase),
		Header: []string{"Q", "binary", "bst", "btree", "veb"},
	}
	for lq := cfg.MinLogQ; lq <= cfg.MaxLogQ; lq++ {
		q := float64(int(1) << uint(lq))
		row := []string{fmt.Sprintf("2^%d", lq)}
		row = append(row, fmt.Sprintf("%.4g", q*rate[layout.Sorted]))
		for _, k := range paperKinds() {
			row = append(row, fmt.Sprintf("%.4g", permTime[k].Seconds()+q*rate[k]))
		}
		combined.AddRow(row...)
	}

	cross := Table{
		Title:  fmt.Sprintf("break-even queries vs binary search (N=2^%d, P=%d)", cfg.LogN, cfg.P),
		Note:   "Q* = permute / (binary_rate - layout_rate); paper: <= 12% of N sequential, <= 6% parallel",
		Header: []string{"layout", "permute[s]", "ns/query", "binary ns/query", "Q*", "Q*/N"},
	}
	for _, k := range paperKinds() {
		var qstar string
		var frac string
		if rate[k] < rate[layout.Sorted] {
			q := permTime[k].Seconds() / (rate[layout.Sorted] - rate[k])
			qstar = fmt.Sprintf("%.3g", q)
			frac = fmt.Sprintf("%.2f%%", 100*q/float64(n))
		} else {
			qstar, frac = "never", "-"
		}
		cross.AddRow(k.String(),
			fmt.Sprintf("%.4g", permTime[k].Seconds()),
			fmt.Sprintf("%.1f", rate[k]*1e9),
			fmt.Sprintf("%.1f", rate[layout.Sorted]*1e9),
			qstar, frac)
	}
	return BreakEvenResult{Combined: combined, Crossovers: cross}
}
