package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"runtime"

	"implicitlayout/internal/mmapio"
	"implicitlayout/internal/par"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
	"implicitlayout/search"
	"implicitlayout/store"
)

// BatchConfig parameterizes the batched-search benchmark: serial
// one-at-a-time descents against the interleaved ring kernels, on a
// heap-resident index and (optionally) on a freshly mapped segment.
type BatchConfig struct {
	// LogN is the key count exponent (2^LogN keys) — the measurement is
	// only meaningful when the index is out of cache (LogN >= 22 on
	// typical parts).
	LogN int
	// Q is the number of queries per measurement.
	Q int
	// B is the B-tree node capacity.
	B int
	// HitFrac is the expected fraction of present-key queries.
	HitFrac float64
	// Layouts and Workers span the measured grid.
	Layouts []layout.Kind
	Workers []int
	// Trials is the number of timed repetitions per cell.
	Trials int
	// Seed drives the query generator.
	Seed int64
	// Mmap adds cold-serve rows: each layout's records are written to a
	// codec-v2 segment, and every trial reopens it with the arrays
	// mapped — so the queried pages fault in during the measurement,
	// the regime PR 5's zero-copy serving creates after a cold start.
	Mmap bool
	// Dir is the scratch directory for Mmap segment files; empty means
	// a fresh temp directory, removed afterwards.
	Dir string
}

// serialFindBatch is the pre-kernel batch path kept as the baseline:
// partition across p workers, each answering its chunk with
// one-at-a-time descents — one dependent pointer chase per query.
func serialFindBatch(ix *search.Index[uint64], queries []uint64, p int) int {
	if p < 2 || len(queries) < 2*p {
		hits := 0
		for _, q := range queries {
			if ix.Find(q) >= 0 {
				hits++
			}
		}
		return hits
	}
	r := par.Runner{Lo: 0, Hi: p, MinFor: 2 * p}
	partial := make([]int, p)
	r.For(len(queries), func(w, lo, hi int) {
		h := 0
		for _, q := range queries[lo:hi] {
			if ix.Find(q) >= 0 {
				h++
			}
		}
		partial[w] = h
	})
	hits := 0
	for _, h := range partial {
		hits += h
	}
	return hits
}

// serialGetBatch is the same baseline at the store surface: per-query
// route + descend, partitioned across p workers.
func serialGetBatch(st *store.Store[uint64, uint64], queries []uint64, p int) int {
	if p < 2 || len(queries) < 2*p {
		hits := 0
		for _, q := range queries {
			if _, ok := st.Get(q); ok {
				hits++
			}
		}
		return hits
	}
	r := par.Runner{Lo: 0, Hi: p, MinFor: 2 * p}
	partial := make([]int, p)
	r.For(len(queries), func(w, lo, hi int) {
		h := 0
		for _, q := range queries[lo:hi] {
			if _, ok := st.Get(q); ok {
				h++
			}
		}
		partial[w] = h
	})
	hits := 0
	for _, h := range partial {
		hits += h
	}
	return hits
}

// BatchThroughput measures what the interleaved ring kernels buy over
// serial descents for the paper's headline workload — millions of
// independent queries. The heap rows compare Index.FindBatch's kernel
// path against the per-query baseline on a resident index; with Mmap
// set, the mmap-cold rows repeat the comparison through Store.GetBatch
// on a segment remapped before every trial, where each miss is a page
// fault away. Both paths' hit counts are cross-checked every trial.
func BatchThroughput(c BatchConfig) (*Table, error) {
	n := 1 << c.LogN
	sorted := workload.Sorted(n)
	queries := workload.Queries(c.Q, n, c.HitFrac, c.Seed)
	t := &Table{
		Title: fmt.Sprintf("batch: interleaved ring kernels vs serial descents, N=2^%d, %d queries", c.LogN, c.Q),
		Note: fmt.Sprintf("serial = per-query descents partitioned across workers (the pre-kernel "+
			"batch path); ring = interleaved lockstep kernels; hitfrac=%.2f b=%d trials=%d",
			c.HitFrac, c.B, c.Trials),
		Header: []string{"mode", "layout", "workers", "serial_Mop/s", "ring_Mop/s", "speedup", "hit%"},
	}
	mops := func(secs float64) float64 { return float64(c.Q) / secs / 1e6 }
	for _, kind := range c.Layouts {
		arr := layout.Build(kind, sorted, c.B)
		ix := search.NewIndex(arr, kind, c.B)
		for _, p := range c.Workers {
			var serialHits, ringHits int
			gc := func() { runtime.GC() }
			sd := timeIt(c.Trials, gc, func() {
				serialHits = serialFindBatch(ix, queries, p)
			})
			rd := timeIt(c.Trials, gc, func() {
				ringHits = ix.FindBatch(queries, p)
			})
			if ringHits != serialHits {
				return nil, fmt.Errorf("bench: %v heap: ring hits %d != serial hits %d", kind, ringHits, serialHits)
			}
			sm, rm := mops(sd.Seconds()), mops(rd.Seconds())
			t.AddRow("heap", kind.String(), fmt.Sprint(p), fmt.Sprintf("%.2f", sm),
				fmt.Sprintf("%.2f", rm), ratio(rm/sm),
				fmt.Sprintf("%.1f", 100*float64(ringHits)/float64(c.Q)))
		}
	}
	if !c.Mmap {
		return t, nil
	}
	dir := c.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "batchbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	vals := make([]uint64, n)
	for i, k := range sorted {
		vals[i] = k ^ storeValMagic
	}
	for _, kind := range c.Layouts {
		built, err := store.Build(sorted, vals,
			store.WithLayout(kind), store.WithShards(8), store.WithB(c.B))
		if err != nil {
			return nil, fmt.Errorf("bench: %v: build: %w", kind, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("batch_%s.seg", kind))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if _, err := built.WriteTo(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: %v: write segment: %w", kind, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		for _, p := range c.Workers {
			var st *store.Store[uint64, uint64]
			remap := func() {
				// Unmap the previous trial's mapping and collect the heap
				// garbage the measurements left behind, outside the timed
				// region: stale mappings and a mid-trial GC otherwise bleed
				// one cell into the next on a single-CPU machine. Evicting
				// the segment from the page cache is what makes the trial
				// cold: without it a remap only rebuilds page tables and
				// every "fault" is a minor fault against warm cache.
				if st != nil {
					st.Release()
				}
				runtime.GC()
				var err error
				st, err = store.OpenStore[uint64, uint64](path, store.WithMmap(true))
				if err != nil {
					panic(fmt.Sprintf("bench: %v: reopen mmap: %v", kind, err))
				}
				if err := mmapio.Evict(path); err != nil {
					panic(fmt.Sprintf("bench: %v: evict page cache: %v", kind, err))
				}
			}
			var serialHits, ringHits int
			sd := timeIt(c.Trials, remap, func() {
				serialHits = serialGetBatch(st, queries, p)
			})
			rd := timeIt(c.Trials, remap, func() {
				ringHits = st.GetBatch(queries, p).Hits
			})
			if ringHits != serialHits {
				return nil, fmt.Errorf("bench: %v mmap: ring hits %d != serial hits %d", kind, ringHits, serialHits)
			}
			sm, rm := mops(sd.Seconds()), mops(rd.Seconds())
			t.AddRow("mmap-cold", kind.String(), fmt.Sprint(p), fmt.Sprintf("%.2f", sm),
				fmt.Sprintf("%.2f", rm), ratio(rm/sm),
				fmt.Sprintf("%.1f", 100*float64(ringHits)/float64(c.Q)))
		}
	}
	return t, nil
}
