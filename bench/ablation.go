package bench

import (
	"fmt"

	"implicitlayout/internal/core"
	"implicitlayout/internal/par"
	"implicitlayout/internal/pem"
	"implicitlayout/internal/vec"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
)

// AblationConfig parameterizes the gather-variant ablation.
type AblationConfig struct {
	// MinLog and MaxLog bound the size sweep.
	MinLog, MaxLog int
	// Trials per timed cell.
	Trials int
	// Batch is the batched-gather cycle group size.
	Batch int
	// PEM sizes the cache simulation for the I/O columns.
	PEM pem.Config
}

// GatherAblation compares the three phase-1 strategies of the vEB
// cycle-leader algorithm from Section 4.2 — direct strided cycles,
// per-worker cycle batching (the "simpler solution"), and the
// matrix-transposition blocking — on both wall-clock time and simulated
// block transfers. It substantiates the design-choice discussion in
// DESIGN.md: batching wins on real caches; transposition wins on large
// blocks but pays constant-factor passes.
func GatherAblation(cfg AblationConfig) Table {
	if cfg.PEM.B == 0 {
		cfg.PEM = pem.DefaultConfig()
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	t := Table{
		Title: fmt.Sprintf("ablation: vEB cycle-leader gather variants (batch=%d, pem M=%d B=%d)",
			cfg.Batch, cfg.PEM.M, cfg.PEM.B),
		Note:   "time columns in seconds (P=1); io columns are total simulated block transfers / N",
		Header: []string{"N", "t-plain", "t-batched", "t-transposed", "io-plain", "io-batched", "io-transposed"},
	}
	variants := []core.Options{
		{},
		{GatherBatch: cfg.Batch},
		{TransposedGather: true},
	}
	for lg := cfg.MinLog; lg <= cfg.MaxLog; lg++ {
		n := 1<<uint(lg) - 1 // perfect sizes isolate the gather phases
		row := []string{fmt.Sprintf("2^%d-1", lg)}
		data := make([]uint64, n)
		for _, opt := range variants {
			opt := opt
			opt.Runner = par.New(1)
			d := timeIt(cfg.Trials,
				func() { workload.Refill(data) },
				func() { core.CycleVEB[uint64](opt, vec.Of(data)) })
			row = append(row, secs(d))
		}
		for _, opt := range variants {
			opt := opt
			opt.Runner = par.New(1)
			opt.Runner.MinFor = 1
			v := pem.New(workload.Sorted(n), 1, cfg.PEM)
			core.CycleVEB[uint64](opt, v)
			row = append(row, fmt.Sprintf("%.3f", float64(v.TotalIO())/float64(n)))
		}
		// correctness guard: all variants must produce the vEB layout
		for _, opt := range variants {
			opt := opt
			opt.Runner = par.New(1)
			check := workload.Sorted(n)
			core.CycleVEB[uint64](opt, vec.Of(check))
			want := layout.Build(layout.VEB, workload.Sorted(n), 0)
			for i := range check {
				if check[i] != want[i] {
					panic("gather ablation variant produced a wrong layout")
				}
			}
		}
		t.AddRow(row...)
	}
	return t
}
