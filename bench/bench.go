// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (Chapter 6 and Table 1.1). Each runner
// executes the corresponding workload on this machine (or on the PEM/GPU
// simulators) and returns a Table whose rows mirror the series the paper
// plots; cmd/* print them, and EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rectangular result set with a title and column headers.
type Table struct {
	// Title names the experiment, e.g. "fig6.1 permute time, P=1".
	Title string
	// Note carries methodology remarks shown under the title.
	Note string
	// Header labels the columns.
	Header []string
	// Rows holds the data, already formatted.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// JSON writes the table as one machine-readable JSON object — title,
// note, header, and both the raw rows and a records array of
// header-keyed objects — so CI can archive benchmark runs
// (BENCH_<name>.json) and trend them without parsing aligned text.
func (t *Table) JSON(w io.Writer) error {
	records := make([]map[string]string, len(t.Rows))
	for i, r := range t.Rows {
		rec := make(map[string]string, len(t.Header))
		for j, h := range t.Header {
			if j < len(r) {
				rec[h] = r[j]
			}
		}
		records[i] = rec
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string              `json:"title"`
		Note    string              `json:"note,omitempty"`
		Header  []string            `json:"header"`
		Rows    [][]string          `json:"rows"`
		Records []map[string]string `json:"records"`
	}{t.Title, t.Note, t.Header, t.Rows, records})
}

// timeIt runs f trials times after one warmup and returns the mean
// duration. prep runs before each trial, outside the timed region.
func timeIt(trials int, prep func(), f func()) time.Duration {
	if trials < 1 {
		trials = 1
	}
	prep()
	f() // warmup
	var total time.Duration
	for i := 0; i < trials; i++ {
		prep()
		start := time.Now()
		f()
		total += time.Since(start)
	}
	return total / time.Duration(trials)
}

// secs formats a duration in seconds with 4 significant digits.
func secs(d time.Duration) string { return fmt.Sprintf("%.4g", d.Seconds()) }

// ratio formats a float with 3 decimals.
func ratio(x float64) string { return fmt.Sprintf("%.3f", x) }
