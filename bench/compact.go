package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// CompactConfig parameterizes the streaming-compaction benchmark: a
// durable DB is preloaded into R fully-overlapping level-0 runs, the
// filter-gated read path is exercised with in-range misses, and then one
// big R-way merge is driven to completion while the heap is sampled —
// the point being that merge memory is O(one output shard), not O(sum
// of inputs).
type CompactConfig struct {
	// LogN is the preloaded record count exponent (2^LogN records split
	// evenly across the runs).
	LogN int
	// Runs is the number of level-0 input runs the merge consumes. Keys
	// are strided across the runs, so every run spans the whole key
	// range and the merge genuinely interleaves all inputs.
	Runs int
	// MissOps is the number of absent-key Gets issued before the merge
	// to exercise the per-run filters; the fence/bloom/probe counters
	// they advance become table columns.
	MissOps int
	// B is the B-tree node capacity for B-tree run layouts.
	B int
	// Dir backs the DBs; every cell uses a fresh subdirectory. Required:
	// the streaming merge path is the durable write path.
	Dir string
	// Mmap serves the input runs zero-copy from mapped segments, so the
	// merge reads through the page cache instead of a heap decode — the
	// configuration where the O(one shard) bound covers the whole
	// operation, inputs included.
	Mmap bool
	// Layouts spans the measured grid.
	Layouts []layout.Kind
	// Trials is the number of timed repetitions per cell (each on a
	// freshly preloaded directory).
	Trials int
	// Seed reserved for workload randomization.
	Seed int64
}

// CompactThroughput preloads R overlapping runs, reads through the
// filter gate, then times the R-way streaming merge while sampling
// HeapAlloc. Columns: merge wall time, merge throughput over the input
// bytes (16 bytes per uint64 record), peak sampled heap during the
// merge, and the read-amp counters from the miss phase (runs probed vs
// skipped by fences vs skipped by blooms). Every record is verified
// against its key-derived payload after the merge.
func CompactThroughput(c CompactConfig) (*Table, error) {
	if c.Dir == "" {
		return nil, fmt.Errorf("bench: compact mode needs a directory: the streaming merge is the durable path")
	}
	if c.Runs < 2 {
		return nil, fmt.Errorf("bench: compact mode needs at least 2 runs to merge, got %d", c.Runs)
	}
	n := 1 << c.LogN
	mode := "decode"
	if c.Mmap {
		mode = "mmap"
	}
	t := &Table{
		Title: fmt.Sprintf("store/db: streaming compaction, N=2^%d in %d overlapping runs, %s inputs",
			c.LogN, c.Runs, mode),
		Note: fmt.Sprintf("merge = one %d-way level-0 drain; peak_heap sampled during the merge; "+
			"probe/skip counters from %d absent-key Gets before it; b=%d trials=%d",
			c.Runs, c.MissOps, c.B, c.Trials),
		Header: []string{"layout", "runs", "merge_ms", "MB/s", "peak_heap_mb",
			"probed", "skip_fence", "skip_bloom"},
	}
	cell := 0
	for _, kind := range c.Layouts {
		cell++
		dir := filepath.Join(c.Dir, fmt.Sprintf("compact-%d", cell))
		loadCfg := store.DBConfig{
			// Fanout above the run count: the load phase must leave the
			// level-0 stack intact for the measured merge to consume.
			MemLimit: n, Fanout: c.Runs + 1,
			Store: []store.Option{store.WithLayout(kind), store.WithB(c.B)},
		}
		mergeCfg := loadCfg
		mergeCfg.Fanout = c.Runs // now level 0 is over-full: Flush merges it
		mergeCfg.Mmap = c.Mmap

		var db *store.DB[uint64, uint64]
		var probed, fenced, bloomed uint64
		var peakHeap uint64
		prep := func() {
			if db != nil {
				if err := db.Close(); err != nil {
					panic("bench: closing previous db: " + err.Error())
				}
			}
			os.RemoveAll(dir)
			var err error
			db, err = store.Open[uint64, uint64](dir, loadCfg)
			if err != nil {
				panic("bench: " + err.Error())
			}
			// Even keys strided across the runs: run r holds keys
			// {2*(i*Runs + r)}, so all runs cover [0, 2n) and every odd
			// key is an in-range miss only the blooms can disprove.
			for r := 0; r < c.Runs; r++ {
				for i := 0; i < n/c.Runs; i++ {
					k := uint64(2 * (i*c.Runs + r))
					if err := db.Put(k, k^storeValMagic); err != nil {
						panic("bench: preload: " + err.Error())
					}
				}
				if err := db.Flush(); err != nil {
					panic("bench: preload flush: " + err.Error())
				}
			}
			if err := db.Close(); err != nil {
				panic("bench: closing loaded db: " + err.Error())
			}
			db, err = store.Open[uint64, uint64](dir, mergeCfg)
			if err != nil {
				panic("bench: reopening for merge: " + err.Error())
			}
			if got := db.Stats().Runs(); got != c.Runs {
				panic(fmt.Sprintf("bench: load produced %d runs, want %d", got, c.Runs))
			}
			// The filter phase: in-range absent keys. Counter deltas
			// are reported from the last trial (they are deterministic
			// given the key set, so trials agree).
			before := db.Stats()
			for i := 0; i < c.MissOps; i++ {
				if _, ok := db.Get(uint64(2*i + 1)); ok {
					panic("bench: phantom hit")
				}
			}
			after := db.Stats()
			probed = after.RunsProbed - before.RunsProbed
			fenced = after.RunsSkippedFence - before.RunsSkippedFence
			bloomed = after.RunsSkippedBloom - before.RunsSkippedBloom
			runtime.GC() // clean baseline for the merge's heap sampling
		}
		d := timeIt(c.Trials, prep, func() {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			var peak uint64
			go func() {
				defer wg.Done()
				var ms runtime.MemStats
				for {
					runtime.ReadMemStats(&ms)
					peak = max(peak, ms.HeapAlloc)
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
					}
				}
			}()
			if err := db.Flush(); err != nil { // drives the R-way merge
				panic("bench: merge: " + err.Error())
			}
			close(stop)
			wg.Wait()
			peakHeap = peak
		})
		st := db.Stats()
		if st.Runs() != 1 {
			panic(fmt.Sprintf("bench: merge left %d runs, want 1", st.Runs()))
		}
		for i := 0; i < n; i += 97 { // sampled verification across the merged run
			k := uint64(2 * i)
			if v, ok := db.Get(k); !ok || v != k^storeValMagic {
				panic(fmt.Sprintf("bench: merged db lost key %d (got %d, %v)", k, v, ok))
			}
		}
		if err := db.Close(); err != nil {
			panic("bench: closing merged db: " + err.Error())
		}
		db = nil
		os.RemoveAll(dir)
		inputMB := float64(n*16) / (1 << 20) // uint64 key + uint64 payload per record
		t.AddRow(
			kind.String(),
			fmt.Sprint(c.Runs),
			fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e6),
			fmt.Sprintf("%.1f", inputMB/d.Seconds()),
			fmt.Sprintf("%.1f", float64(peakHeap)/(1<<20)),
			fmt.Sprint(probed),
			fmt.Sprint(fenced),
			fmt.Sprint(bloomed),
		)
	}
	return t, nil
}
