package bench

import (
	"fmt"
	"runtime"

	"implicitlayout/internal/gpu"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
)

// GPUConfig parameterizes the simulated-GPU experiments (Figures 6.8 and
// 6.9). The device stands in for the paper's Tesla K40 — see package gpu
// and DESIGN.md for the substitution rationale.
type GPUConfig struct {
	// MinLog and MaxLog bound the size sweep for Figure 6.8.
	MinLog, MaxLog int
	// LogN fixes the size for the Figure 6.9 break-even run.
	LogN int
	// B is the B-tree node capacity (the paper uses 32 on the GPU: 128
	// byte cache lines).
	B int
	// QBase is the batch used to measure per-query cost.
	QBase int
	// MinLogQ and MaxLogQ bound the Figure 6.9 sweep.
	MinLogQ, MaxLogQ int
	// Device is the simulated accelerator (zero value: Tesla K40).
	Device gpu.Device
	// Seed drives query generation.
	Seed int64
}

func (c GPUConfig) device() gpu.Device {
	if c.Device.Name == "" {
		return gpu.TeslaK40()
	}
	return c.Device
}

// GPUPermuteTimes reproduces Figure 6.8: the modelled time of each
// permutation algorithm on the simulated GPU versus N. The expected shape
// (paper): B-tree cycle-leader fastest; BST involution close behind
// (hardware bit reversal); B-tree involution poor (modular inverses);
// both vEB ports poor (per-subtree kernel launches).
func GPUPermuteTimes(cfg GPUConfig) Table {
	dev := cfg.device()
	t := Table{
		Title:  fmt.Sprintf("fig6.8: simulated GPU permute time [ms] vs N (B=%d, %s)", cfg.B, dev.Name),
		Note:   "cost model: kernel launches + memory transactions + instructions (see internal/gpu)",
		Header: append([]string{"N"}, names(Algos())...),
	}
	p := runtime.GOMAXPROCS(0)
	for lg := cfg.MinLog; lg <= cfg.MaxLog; lg++ {
		n := 1 << uint(lg)
		data := make([]uint64, n)
		row := []string{fmt.Sprintf("2^%d", lg)}
		for _, spec := range Algos() {
			workload.Refill(data)
			c := gpu.RunPermute(dev, data, spec.Kind, spec.Algo, cfg.B, p)
			row = append(row, fmt.Sprintf("%.3f", dev.TimeMS(c)))
		}
		t.AddRow(row...)
	}
	return t
}

// GPUBreakEven reproduces Figure 6.9: modelled combined permute+query GPU
// time versus Q, with binary search on the un-permuted array as baseline.
// The paper omits vEB from this figure because its permutation is far
// slower; it is included here with that caveat visible in the numbers.
func GPUBreakEven(cfg GPUConfig) BreakEvenResult {
	dev := cfg.device()
	p := runtime.GOMAXPROCS(0)
	n := 1 << uint(cfg.LogN)
	sorted := workload.Sorted(n)
	queries := workload.Queries(cfg.QBase, n, 0.5, cfg.Seed)

	// Permute cost per layout: fastest algorithm under the model.
	permMS := map[layout.Kind]float64{}
	permName := map[layout.Kind]string{}
	data := make([]uint64, n)
	for _, spec := range Algos() {
		workload.Refill(data)
		c := gpu.RunPermute(dev, data, spec.Kind, spec.Algo, cfg.B, p)
		ms := dev.TimeMS(c)
		if cur, ok := permMS[spec.Kind]; !ok || ms < cur {
			permMS[spec.Kind] = ms
			permName[spec.Kind] = spec.Name
		}
	}

	// Query cost per layout, per query, under the model.
	rateMS := map[layout.Kind]float64{}
	for _, k := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB} {
		arr := sorted
		if k != layout.Sorted {
			arr = layoutCopy(sorted, k, cfg.B)
		}
		c := gpu.RunQueries(dev, arr, k, cfg.B, queries, p)
		rateMS[k] = dev.TimeMS(c) / float64(len(queries))
	}

	combined := Table{
		Title: fmt.Sprintf("fig6.9: simulated GPU permute+query [ms] vs Q (N=2^%d, B=%d)", cfg.LogN, cfg.B),
		Note: fmt.Sprintf("permute: bst=%s (%.2fms) btree=%s (%.2fms) veb=%s (%.2fms)",
			permName[layout.BST], permMS[layout.BST],
			permName[layout.BTree], permMS[layout.BTree],
			permName[layout.VEB], permMS[layout.VEB]),
		Header: []string{"Q", "binary", "bst", "btree", "veb"},
	}
	for lq := cfg.MinLogQ; lq <= cfg.MaxLogQ; lq++ {
		q := float64(int(1) << uint(lq))
		row := []string{fmt.Sprintf("2^%d", lq)}
		row = append(row, fmt.Sprintf("%.2f", q*rateMS[layout.Sorted]))
		for _, k := range paperKinds() {
			row = append(row, fmt.Sprintf("%.2f", permMS[k]+q*rateMS[k]))
		}
		combined.AddRow(row...)
	}

	cross := Table{
		Title:  fmt.Sprintf("simulated GPU break-even vs binary search (N=2^%d)", cfg.LogN),
		Note:   "paper: BST >= 12.7% of N, B-tree >= 5.6% of N",
		Header: []string{"layout", "permute[ms]", "us/query", "binary us/query", "Q*", "Q*/N"},
	}
	for _, k := range paperKinds() {
		var qstar, frac string
		if rateMS[k] < rateMS[layout.Sorted] {
			q := permMS[k] / (rateMS[layout.Sorted] - rateMS[k])
			qstar = fmt.Sprintf("%.3g", q)
			frac = fmt.Sprintf("%.2f%%", 100*q/float64(n))
		} else {
			qstar, frac = "never", "-"
		}
		cross.AddRow(k.String(),
			fmt.Sprintf("%.2f", permMS[k]),
			fmt.Sprintf("%.3f", rateMS[k]*1e3),
			fmt.Sprintf("%.3f", rateMS[layout.Sorted]*1e3),
			qstar, frac)
	}
	return BreakEvenResult{Combined: combined, Crossovers: cross}
}
