package bench

import (
	"strconv"
	"strings"
	"testing"

	"implicitlayout/layout"
)

// TestStoreThroughputSmoke runs the serving benchmark at tiny scale and
// checks the table covers the full grid with sane hit rates.
func TestStoreThroughputSmoke(t *testing.T) {
	tb := StoreThroughput(StoreConfig{
		LogN: 12, Q: 2000, B: 8, HitFrac: 0.5,
		Layouts: []layout.Kind{layout.VEB, layout.BTree},
		Shards:  []int{1, 4},
		Workers: []int{1, 4},
		Trials:  1, Seed: 1,
	})
	if got, want := len(tb.Rows), 2*2*2; got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, r := range tb.Rows {
		if strings.Contains(r[3], "failed") {
			t.Fatalf("build failed row: %v", r)
		}
		hit, err := strconv.ParseFloat(r[len(r)-1], 64)
		if err != nil || hit < 30 || hit > 70 {
			t.Fatalf("hit%% %s implausible for hitfrac 0.5: %v", r[len(r)-1], r)
		}
	}
}
