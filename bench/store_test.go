package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"implicitlayout/layout"
)

// TestStoreThroughputSmoke runs the serving benchmark at tiny scale and
// checks the table covers the full grid with sane hit rates.
func TestStoreThroughputSmoke(t *testing.T) {
	tb := StoreThroughput(StoreConfig{
		LogN: 12, Q: 2000, B: 8, HitFrac: 0.5,
		Layouts: []layout.Kind{layout.VEB, layout.BTree},
		Shards:  []int{1, 4},
		Workers: []int{1, 4},
		Trials:  1, Seed: 1,
	})
	if got, want := len(tb.Rows), 2*2*2; got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, r := range tb.Rows {
		if strings.Contains(r[3], "failed") {
			t.Fatalf("build failed row: %v", r)
		}
		hit, err := strconv.ParseFloat(r[len(r)-1], 64)
		if err != nil || hit < 30 || hit > 70 {
			t.Fatalf("hit%% %s implausible for hitfrac 0.5: %v", r[len(r)-1], r)
		}
	}
}

// TestTableJSON: the machine-readable emitter produces valid JSON whose
// records mirror the rows under header keys.
func TestTableJSON(t *testing.T) {
	tb := &Table{
		Title:  "t",
		Note:   "n",
		Header: []string{"layout", "Mq/s"},
		Rows:   [][]string{{"veb", "12.5"}, {"btree", "20.1"}},
	}
	var buf bytes.Buffer
	if err := tb.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string              `json:"title"`
		Header  []string            `json:"header"`
		Rows    [][]string          `json:"rows"`
		Records []map[string]string `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got.Title != "t" || len(got.Rows) != 2 || len(got.Records) != 2 {
		t.Fatalf("JSON shape wrong: %+v", got)
	}
	if got.Records[1]["layout"] != "btree" || got.Records[1]["Mq/s"] != "20.1" {
		t.Fatalf("records not header-keyed: %+v", got.Records)
	}
}
