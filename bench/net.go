package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"implicitlayout/client"
	"implicitlayout/internal/wire"
	"implicitlayout/server"
	"implicitlayout/store"
)

// NetConfig parameterizes NetThroughput.
type NetConfig struct {
	// LogN sizes the preloaded DB: 1<<LogN records.
	LogN int
	// Ops is the number of key lookups per measurement (a batched
	// request of B keys counts as B).
	Ops int
	// Conns lists the client connection counts to sweep.
	Conns []int
	// Batch is the keys per GetBatch request in the batched mode.
	Batch int
	// Window is the per-connection pipeline depth (client window and
	// server inflight bound).
	Window int
	// WriteFrac makes the serial and pipelined modes mixed workloads:
	// this fraction of operations are Puts.
	WriteFrac float64
	// Rate, when positive, switches the pipelined and batched modes to
	// open-loop arrival: each connection schedules one request every
	// 1/Rate seconds and latency is measured from the scheduled arrival,
	// so queueing delay under overload is charged to the server, not
	// hidden by a slow closed-loop client.
	Rate int
	// Trials is the timed repetitions per cell.
	Trials int
	// Seed feeds the key and coin-flip generators.
	Seed int64
}

// NetThroughput measures the wire protocol end to end on loopback: for
// each connection count it drives the same lookup stream three ways —
// serial (one request per round trip, the pre-pipelining baseline),
// pipelined (up to Window point Gets in flight per connection), and
// batched (GetBatch requests of Batch keys riding the same pipeline) —
// and reports throughput, latency percentiles, and each mode's speedup
// over serial at the same connection count.
//
// The serving stack is the real one: a server.Server over an in-memory
// store.DB, TCP via loopback, checksummed frames both ways. The paper's
// layout argument shows up at the top of the stack: batched mode is
// what feeds the interleaved ring kernels a full batch per request
// instead of one key per RTT.
func NetThroughput(c NetConfig) (*Table, error) {
	n := 1 << c.LogN
	if c.Ops <= 0 {
		c.Ops = n
	}
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Trials < 1 {
		c.Trials = 1
	}
	if len(c.Conns) == 0 {
		c.Conns = []int{1, 4}
	}

	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		k := uint64(i)
		if err := db.Put(k, k^storeValMagic); err != nil {
			return nil, err
		}
	}
	srv, err := server.New(db, server.Config{MaxInflight: c.Window})
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	addr := lis.Addr().String()

	note := fmt.Sprintf("loopback TCP, n=2^%d records, %d lookups/run, window=%d, batch=%d, writefrac=%g",
		c.LogN, c.Ops, c.Window, c.Batch, c.WriteFrac)
	if c.Rate > 0 {
		note += fmt.Sprintf(", open-loop %d req/s/conn", c.Rate)
	}
	t := &Table{
		Title:  "net: pipelined wire protocol vs one request per round trip",
		Note:   note,
		Header: []string{"mode", "conns", "ops", "wall_s", "kops_s", "p50_us", "p99_us", "p999_us", "speedup"},
	}

	for _, conns := range c.Conns {
		var serialOps float64
		for _, mode := range []string{"serial", "pipelined", "batched"} {
			var elapsed time.Duration
			var lats []time.Duration
			for trial := 0; trial < c.Trials; trial++ {
				e, l, err := runLoad(addr, mode, conns, c)
				if err != nil {
					return nil, fmt.Errorf("net bench %s/%d: %w", mode, conns, err)
				}
				elapsed += e
				lats = append(lats, l...)
			}
			elapsed /= time.Duration(c.Trials)
			opsPerSec := float64(c.Ops) / elapsed.Seconds()
			speedup := 1.0
			if mode == "serial" {
				serialOps = opsPerSec
			} else if serialOps > 0 {
				speedup = opsPerSec / serialOps
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			t.AddRow(mode, fmt.Sprint(conns), fmt.Sprint(c.Ops), secs(elapsed),
				fmt.Sprintf("%.0f", opsPerSec/1e3),
				micros(pctl(lats, 0.50)), micros(pctl(lats, 0.99)), micros(pctl(lats, 0.999)),
				ratio(speedup))
		}
	}

	if err := srv.Close(); err != nil {
		return nil, err
	}
	if err := <-serveErr; err != server.ErrClosed {
		return nil, err
	}
	return t, nil
}

// runLoad drives one timed run: conns connections each issue an equal
// share of the c.Ops lookups in the given mode, and every response is
// verified. It returns the wall time and the per-request latencies.
func runLoad(addr, mode string, conns int, c NetConfig) (time.Duration, []time.Duration, error) {
	n := uint64(1) << c.LogN
	clients := make([]*client.Client[uint64, uint64], conns)
	for i := range clients {
		cl, err := client.Dial[uint64, uint64](addr, client.Config{Window: c.Window})
		if err != nil {
			return 0, nil, err
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			if err := cl.Close(); err != nil {
				panic("bench: closing client: " + err.Error())
			}
		}
	}()

	perConn := c.Ops / conns
	errs := make(chan error, conns)
	latSets := make([][]time.Duration, conns)
	start := time.Now()
	for i, cl := range clients {
		go func(i int, cl *client.Client[uint64, uint64]) {
			lats, err := driveConn(cl, mode, perConn, n, c, c.Seed+int64(i)+1)
			latSets[i] = lats
			errs <- err
		}(i, cl)
	}
	for range clients {
		if err := <-errs; err != nil {
			return 0, nil, err
		}
	}
	elapsed := time.Since(start)
	var all []time.Duration
	for _, l := range latSets {
		all = append(all, l...)
	}
	return elapsed, all, nil
}

// driveConn issues one connection's share of the workload and verifies
// what comes back. Latency is per request: from issue (or, open-loop,
// from the scheduled arrival) to response.
func driveConn(cl *client.Client[uint64, uint64], mode string, ops int, n uint64, c NetConfig, seed int64) ([]time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	var interval time.Duration
	if c.Rate > 0 {
		interval = time.Second / time.Duration(c.Rate)
	}

	verify := func(key uint64, found bool, val uint64) error {
		if !found {
			return fmt.Errorf("key %d not found", key)
		}
		if val != key^storeValMagic {
			return fmt.Errorf("key %d returned %d", key, val)
		}
		return nil
	}

	if mode == "serial" {
		// One request per round trip: issue, wait, repeat. This is the
		// baseline every RPC client starts as.
		lats := make([]time.Duration, 0, ops)
		for i := 0; i < ops; i++ {
			t0 := time.Now()
			if c.WriteFrac > 0 && rng.Float64() < c.WriteFrac {
				k := rng.Uint64() % n
				if err := cl.Put(ctx, k, k^storeValMagic); err != nil {
					return nil, err
				}
			} else {
				k := rng.Uint64() % n
				val, found, err := cl.Get(ctx, k)
				if err != nil {
					return nil, err
				}
				if err := verify(k, found, val); err != nil {
					return nil, err
				}
			}
			lats = append(lats, time.Since(t0))
		}
		return lats, nil
	}

	// Pipelined modes: an issuer queues requests through the client's
	// window while collector workers — one per window slot, so a
	// completed call is always observed promptly — verify responses and
	// record latencies.
	type inflight struct {
		call  *client.Call[uint64, uint64]
		sched time.Time
	}
	pending := make(chan inflight, c.Window)
	var mu sync.Mutex
	var lats []time.Duration
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var collectors sync.WaitGroup
	for w := 0; w < c.Window; w++ {
		collectors.Add(1)
		go func() {
			defer collectors.Done()
			for f := range pending {
				<-f.call.Done()
				lat := time.Since(f.sched)
				if err := f.call.Err; err != nil {
					fail(err)
					continue
				}
				resp := f.call.Resp
				switch resp.Op {
				case wire.OpGet:
					if err := verify(f.call.Req.Key, resp.Found, resp.Val); err != nil {
						fail(err)
					}
				case wire.OpGetBatch:
					for i, k := range f.call.Req.Keys {
						if err := verify(k, resp.FoundAll[i], resp.Vals[i]); err != nil {
							fail(err)
							break
						}
					}
				}
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}
		}()
	}

	next := time.Now()
	issue := func(req *wire.Request[uint64, uint64]) error {
		if interval > 0 {
			// Open loop: the request "arrives" on schedule whether or not
			// the pipeline is keeping up; waiting in the window is part of
			// its latency.
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		sched := next
		if interval == 0 {
			sched = time.Now()
		}
		call, err := cl.Go(req)
		if err != nil {
			return err
		}
		pending <- inflight{call: call, sched: sched}
		next = next.Add(interval)
		return nil
	}

	var err error
	if mode == "batched" {
		for done := 0; done < ops && err == nil; {
			batch := min(c.Batch, ops-done)
			keys := make([]uint64, batch)
			for i := range keys {
				keys[i] = rng.Uint64() % n
			}
			err = issue(&wire.Request[uint64, uint64]{Op: wire.OpGetBatch, Keys: keys})
			done += batch
		}
	} else {
		for i := 0; i < ops && err == nil; i++ {
			if c.WriteFrac > 0 && rng.Float64() < c.WriteFrac {
				k := rng.Uint64() % n
				err = issue(&wire.Request[uint64, uint64]{Op: wire.OpPut, Key: k, Val: k ^ storeValMagic})
			} else {
				err = issue(&wire.Request[uint64, uint64]{Op: wire.OpGet, Key: rng.Uint64() % n})
			}
		}
	}
	close(pending)
	collectors.Wait()
	if err == nil {
		mu.Lock()
		err = firstErr
		mu.Unlock()
	}
	return lats, err
}

// pctl reads the q-quantile from an ascending-sorted latency sample.
func pctl(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// micros formats a duration as microseconds with one decimal.
func micros(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}
