//go:build !linux

package bench

// majorFaults reports 0 without getrusage: the majflt/op column is
// informative only on platforms that can both evict and count.
func majorFaults() int64 { return 0 }
