package bench

import (
	"fmt"
	"math/rand"

	"implicitlayout/internal/workload"
	"implicitlayout/layout"
	"implicitlayout/store"
)

// storeValMagic derives a record's payload from its key, so the
// benchmark can verify returned values without a reference table.
const storeValMagic = 0x9e3779b97f4a7c15

// StoreConfig parameterizes the sharded-store serving benchmark: the
// cross product of layouts, shard counts, and query worker counts over
// one record set.
type StoreConfig struct {
	// LogN is the record count exponent (2^LogN records).
	LogN int
	// Q is the number of queries per measurement.
	Q int
	// B is the B-tree node capacity.
	B int
	// HitFrac is the expected fraction of present-key queries.
	HitFrac float64
	// Layouts, Shards, and Workers span the measured grid.
	Layouts []layout.Kind
	Shards  []int
	Workers []int
	// Trials is the number of timed repetitions per cell.
	Trials int
	// Seed drives the key shuffle and the query generator.
	Seed int64
}

// StoreThroughput measures the store serving layer over key–value
// records: build time of the parallel pipeline (stable sort + partition
// + concurrent payload-carrying permute) and GetBatch query throughput
// — values returned and verified against the key-derived payload — for
// every layout x shard count x worker count. The busiest-shard column
// reports per-shard throughput under the fence router's near-uniform
// query spread.
func StoreThroughput(c StoreConfig) *Table {
	n := 1 << c.LogN
	keys := workload.Sorted(n)
	rand.New(rand.NewSource(c.Seed)).Shuffle(n, func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = keys[i] ^ storeValMagic
	}
	queries := workload.Queries(c.Q, n, c.HitFrac, c.Seed+1)

	t := &Table{
		Title: fmt.Sprintf("store: serving throughput, N=2^%d records, %d queries", c.LogN, c.Q),
		Note: fmt.Sprintf("build = parallel stable sort + range partition + concurrent "+
			"payload-carrying permute; hitfrac=%.2f b=%d trials=%d", c.HitFrac, c.B, c.Trials),
		Header: []string{"layout", "shards", "workers", "build_s", "Mq/s", "ns/query",
			"busiest_shard_q/s", "hit%"},
	}
	for _, kind := range c.Layouts {
		for _, shards := range c.Shards {
			var st *store.Store[uint64, uint64]
			var err error
			build := timeIt(c.Trials, func() {}, func() {
				st, err = store.Build(keys, vals,
					store.WithLayout(kind), store.WithShards(shards), store.WithB(c.B))
			})
			if err != nil {
				t.AddRow(kind.String(), fmt.Sprint(shards), "-", "build failed: "+err.Error(),
					"-", "-", "-", "-")
				continue
			}
			for _, p := range c.Workers {
				var res store.BatchResult[uint64]
				d := timeIt(c.Trials, func() {}, func() {
					res = st.GetBatch(queries, p)
				})
				for qi, q := range queries {
					if res.Found[qi] && res.Vals[qi] != q^storeValMagic {
						panic(fmt.Sprintf("bench: store returned wrong value for key %d", q))
					}
				}
				busiest := 0
				for _, sh := range res.Shards {
					busiest = max(busiest, sh.Queries)
				}
				qps := float64(c.Q) / d.Seconds()
				t.AddRow(
					kind.String(),
					fmt.Sprint(st.Shards()),
					fmt.Sprint(p),
					secs(build),
					fmt.Sprintf("%.2f", qps/1e6),
					fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(c.Q)),
					fmt.Sprintf("%.3g", float64(busiest)/d.Seconds()),
					fmt.Sprintf("%.1f", 100*float64(res.Hits)/float64(res.Queries)),
				)
			}
		}
	}
	return t
}
