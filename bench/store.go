package bench

import (
	"fmt"
	"math/rand"

	"implicitlayout/internal/workload"
	"implicitlayout/layout"
	"implicitlayout/store"
)

// StoreConfig parameterizes the sharded-store serving benchmark: the
// cross product of layouts, shard counts, and query worker counts over
// one key set.
type StoreConfig struct {
	// LogN is the key count exponent (2^LogN keys).
	LogN int
	// Q is the number of queries per measurement.
	Q int
	// B is the B-tree node capacity.
	B int
	// HitFrac is the expected fraction of present-key queries.
	HitFrac float64
	// Layouts, Shards, and Workers span the measured grid.
	Layouts []layout.Kind
	Shards  []int
	Workers []int
	// Trials is the number of timed repetitions per cell.
	Trials int
	// Seed drives the key shuffle and the query generator.
	Seed int64
}

// StoreThroughput measures the store serving layer: build time of the
// parallel pipeline (sort + partition + concurrent permute) and GetBatch
// query throughput, for every layout x shard count x worker count. The
// busiest-shard column reports per-shard throughput under the fence
// router's near-uniform query spread.
func StoreThroughput(c StoreConfig) *Table {
	n := 1 << c.LogN
	keys := workload.Sorted(n)
	rand.New(rand.NewSource(c.Seed)).Shuffle(n, func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
	queries := workload.Queries(c.Q, n, c.HitFrac, c.Seed+1)

	t := &Table{
		Title: fmt.Sprintf("store: serving throughput, N=2^%d, %d queries", c.LogN, c.Q),
		Note: fmt.Sprintf("build = parallel sort + range partition + concurrent permute; "+
			"hitfrac=%.2f b=%d trials=%d", c.HitFrac, c.B, c.Trials),
		Header: []string{"layout", "shards", "workers", "build_s", "Mq/s", "ns/query",
			"busiest_shard_q/s", "hit%"},
	}
	for _, kind := range c.Layouts {
		for _, shards := range c.Shards {
			var st *store.Store[uint64]
			var err error
			build := timeIt(c.Trials, func() {}, func() {
				st, err = store.Build(keys,
					store.WithLayout(kind), store.WithShards(shards), store.WithB(c.B))
			})
			if err != nil {
				t.AddRow(kind.String(), fmt.Sprint(shards), "-", "build failed: "+err.Error(),
					"-", "-", "-", "-")
				continue
			}
			for _, p := range c.Workers {
				var stats store.BatchStats
				d := timeIt(c.Trials, func() {}, func() {
					stats = st.GetBatch(queries, p)
				})
				busiest := 0
				for _, sh := range stats.Shards {
					busiest = max(busiest, sh.Queries)
				}
				qps := float64(c.Q) / d.Seconds()
				t.AddRow(
					kind.String(),
					fmt.Sprint(st.Shards()),
					fmt.Sprint(p),
					secs(build),
					fmt.Sprintf("%.2f", qps/1e6),
					fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(c.Q)),
					fmt.Sprintf("%.3g", float64(busiest)/d.Seconds()),
					fmt.Sprintf("%.1f", 100*float64(stats.Hits)/float64(stats.Queries)),
				)
			}
		}
	}
	return t
}
