package bench

import (
	"strings"
	"testing"
	"time"

	"implicitlayout/internal/pem"
)

// Tiny configurations: these tests validate that every experiment runner
// produces well-formed tables with sane values; the cmd/* tools run them
// at paper scale.

func TestTableFormatting(t *testing.T) {
	tb := Table{Title: "t", Note: "n", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== t ==", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	sb.Reset()
	tb.CSV(&sb)
	if !strings.HasPrefix(sb.String(), "a,bb\n1,2\n") {
		t.Fatalf("bad CSV:\n%s", sb.String())
	}
}

func TestTimeIt(t *testing.T) {
	preps, runs := 0, 0
	d := timeIt(3, func() { preps++ }, func() { runs++; time.Sleep(time.Millisecond) })
	if preps != 4 || runs != 4 { // 1 warmup + 3 trials
		t.Fatalf("preps=%d runs=%d", preps, runs)
	}
	if d < 500*time.Microsecond {
		t.Fatalf("mean %v implausible", d)
	}
}

func TestPermuteTimesShape(t *testing.T) {
	tb := PermuteTimes(PermuteConfig{MinLog: 10, MaxLog: 11, P: 2, B: 4, Trials: 1})
	if len(tb.Rows) != 2 || len(tb.Header) != 7 {
		t.Fatalf("unexpected shape: %dx%d", len(tb.Rows), len(tb.Header))
	}
}

func TestSpeedupShape(t *testing.T) {
	tb := Speedup(SpeedupConfig{LogN: 12, MaxP: 2, B: 4, Trials: 1})
	if len(tb.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tb.Rows))
	}
	if tb.Rows[0][1] == "" {
		t.Fatal("empty speedup cell")
	}
}

func TestGatherThroughputShape(t *testing.T) {
	tb := GatherThroughput(ThroughputConfig{LogN: 14, MaxP: 2, B: 4, Trials: 1})
	if len(tb.Rows) != 2 || len(tb.Header) != 3 {
		t.Fatal("unexpected shape")
	}
}

func TestQueryTimesShape(t *testing.T) {
	tb := QueryTimes(QueryConfig{MinLog: 10, MaxLog: 11, Q: 1000, B: 4, Trials: 1, Seed: 1})
	if len(tb.Rows) != 2 || len(tb.Header) != 6 {
		t.Fatal("unexpected shape")
	}
}

func TestBreakEvenProducesCrossovers(t *testing.T) {
	res := BreakEven(BreakEvenConfig{
		LogN: 14, P: 1, B: 4, Trials: 1, QBase: 1 << 12,
		MinLogQ: 10, MaxLogQ: 12, Seed: 1,
	})
	if len(res.Combined.Rows) != 3 {
		t.Fatalf("want 3 combined rows, got %d", len(res.Combined.Rows))
	}
	if len(res.Crossovers.Rows) != 3 {
		t.Fatalf("want 3 crossover rows, got %d", len(res.Crossovers.Rows))
	}
}

func TestGPUTablesShape(t *testing.T) {
	cfg := GPUConfig{MinLog: 10, MaxLog: 11, LogN: 11, B: 8, QBase: 1 << 10, MinLogQ: 8, MaxLogQ: 10, Seed: 1}
	tb := GPUPermuteTimes(cfg)
	if len(tb.Rows) != 2 || len(tb.Header) != 7 {
		t.Fatal("unexpected GPU permute shape")
	}
	res := GPUBreakEven(cfg)
	if len(res.Combined.Rows) != 3 || len(res.Crossovers.Rows) != 3 {
		t.Fatal("unexpected GPU break-even shape")
	}
}

func TestTable11Runners(t *testing.T) {
	cfg := Table11Config{MinLog: 8, MaxLog: 10, B: 2, P: 2, PEM: pem.Config{M: 256, B: 4}}
	work := WorkScaling(cfg)
	ios := IOScaling(cfg)
	if len(work.Rows) != 3 || len(ios.Rows) != 3 {
		t.Fatal("unexpected table 1.1 shapes")
	}
	// ratios must be positive and finite
	for _, row := range ios.Rows {
		for _, cell := range row[1:] {
			if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") || strings.HasPrefix(cell, "-") {
				t.Fatalf("bad I/O ratio cell %q", cell)
			}
		}
	}
}
