package bench

import (
	"fmt"

	"implicitlayout/internal/core"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
	"implicitlayout/search"
)

// QueryConfig parameterizes the Figure 6.5 sweep.
type QueryConfig struct {
	// MinLog and MaxLog bound the array-size sweep N = 2^MinLog..2^MaxLog.
	MinLog, MaxLog int
	// Q is the number of queries per measurement (the paper uses 10^6).
	Q int
	// B is the B-tree node capacity.
	B int
	// Trials per cell.
	Trials int
	// Seed drives query generation.
	Seed int64
}

// querySink absorbs hit counts so search loops cannot be eliminated.
var querySink int

// QueryTimes reproduces Figure 6.5: the time to sequentially answer Q
// uniformly random queries on each search layout versus the array size,
// with binary search on the un-permuted array as the baseline and the BST
// layout measured both with and without explicit prefetching.
func QueryTimes(cfg QueryConfig) Table {
	t := Table{
		Title:  fmt.Sprintf("fig6.5: time [s] for %d queries vs N (B=%d)", cfg.Q, cfg.B),
		Note:   "sequential; uniform random queries, 50% hit rate",
		Header: []string{"N", "binary", "bst", "bst-prefetch", "btree", "veb"},
	}
	for lg := cfg.MinLog; lg <= cfg.MaxLog; lg++ {
		n := 1 << uint(lg)
		sorted := workload.Sorted(n)
		queries := workload.Queries(cfg.Q, n, 0.5, cfg.Seed+int64(lg))
		row := []string{fmt.Sprintf("2^%d", lg)}

		row = append(row, secs(timeIt(cfg.Trials, func() {}, func() {
			h := 0
			for _, q := range queries {
				if search.Binary(sorted, q) >= 0 {
					h++
				}
			}
			querySink += h
		})))

		bst := layoutCopy(sorted, layout.BST, cfg.B)
		row = append(row, secs(timeIt(cfg.Trials, func() {}, func() {
			h := 0
			for _, q := range queries {
				if search.BST(bst, q) >= 0 {
					h++
				}
			}
			querySink += h
		})))
		row = append(row, secs(timeIt(cfg.Trials, func() {}, func() {
			h := 0
			for _, q := range queries {
				if search.BSTPrefetch(bst, q) >= 0 {
					h++
				}
			}
			querySink += h
		})))

		btree := layoutCopy(sorted, layout.BTree, cfg.B)
		row = append(row, secs(timeIt(cfg.Trials, func() {}, func() {
			h := 0
			for _, q := range queries {
				if search.BTree(btree, cfg.B, q) >= 0 {
					h++
				}
			}
			querySink += h
		})))

		veb := layoutCopy(sorted, layout.VEB, cfg.B)
		row = append(row, secs(timeIt(cfg.Trials, func() {}, func() {
			h := 0
			for _, q := range queries {
				if search.VEB(veb, q) >= 0 {
					h++
				}
			}
			querySink += h
		})))

		t.AddRow(row...)
	}
	return t
}

// layoutCopy returns a copy of sorted permuted into layout k using the
// cycle-leader algorithm (the permutation is exact, so the construction
// algorithm does not matter for query measurements).
func layoutCopy(sorted []uint64, k layout.Kind, b int) []uint64 {
	out := make([]uint64, len(sorted))
	copy(out, sorted)
	RunPermute(AlgoSpec{Kind: k, Algo: core.CycleLeader}, out, 0, b, false)
	return out
}
