// Network serving walkthrough: the DB on a TCP socket. A server wraps
// a writable store.DB and speaks the internal/wire protocol — every
// message one checksummed blockio frame, a version-negotiated
// handshake, raw native-endian bulk arrays (the codec-v2 platform
// contract, applied to a socket). The client pipelines: many requests
// ride one connection concurrently, the server answers out of order,
// and a multi-key GetBatch is resolved against a single pinned snapshot
// epoch no matter what the compactor is doing. This walkthrough runs
// server and client in one process over loopback; the two halves only
// ever talk through the socket.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"

	"implicitlayout/client"
	"implicitlayout/internal/wire"
	"implicitlayout/server"
	"implicitlayout/store"
)

func main() {
	// 1. A DB to serve. The wire carries fixed-width keys and values
	//    only (ints, uints, floats): server.New would refuse a string-
	//    valued DB the same way a codec-v2 segment write would.
	db, err := store.NewDB[uint64, uint64](store.DBConfig{})
	must(err)
	for i := uint64(0); i < 10_000; i++ {
		must(db.Put(i, i*i))
	}

	// 2. Serve it. Serve blocks, so it runs on its own goroutine; the
	//    returned error is the record of why the listener stopped —
	//    server.ErrClosed after a clean Close.
	srv, err := server.New(db, server.Config{})
	must(err)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	fmt.Println("serving on", lis.Addr())

	// 3. Dial. The handshake sends this end's protocol version and
	//    platform contract; a server that cannot honor them refuses with
	//    the reason instead of serving garbage.
	c, err := client.Dial[uint64, uint64](lis.Addr().String(), client.Config{})
	must(err)
	ctx := context.Background()

	// 4. The blocking API: one call, one round trip.
	v, ok, err := c.Get(ctx, 42)
	must(err)
	fmt.Printf("Get(42) = %d, %v\n", v, ok)
	must(c.Put(ctx, 42, 99)) // nil only after the server's durable ack
	v, _, err = c.Get(ctx, 42)
	must(err)
	fmt.Printf("after Put: Get(42) = %d\n", v)

	// 5. The batched form: one request, many keys, one snapshot epoch —
	//    the server resolves every key against the same run stack, and
	//    the batch feeds the interleaved search kernels whole.
	keys := []uint64{1, 2, 3, 5, 8, 13, 21_000}
	vals, found, err := c.GetBatch(ctx, keys)
	must(err)
	for i, k := range keys {
		fmt.Printf("  batch key %5d: found=%-5v val=%d\n", k, found[i], vals[i])
	}

	// 6. The pipelined async API: queue first, collect after. All eight
	//    requests are on the wire before the first response is read;
	//    responses complete out of order and match back by ID.
	calls := make([]*client.Call[uint64, uint64], 8)
	for i := range calls {
		calls[i], err = c.Go(&wire.Request[uint64, uint64]{Op: wire.OpGet, Key: uint64(i * 100)})
		must(err)
	}
	must(c.Flush())
	for _, call := range calls {
		<-call.Done()
		must(call.Err)
		fmt.Printf("  pipelined Get(%d) = %d\n", call.Req.Key, call.Resp.Val)
	}

	// 7. Ordered reads travel too: a Range is one request, with the
	//    server capping the response and reporting truncation.
	rk, rv, more, err := c.Range(ctx, 10, 15, 0)
	must(err)
	fmt.Printf("Range[10,15]: %d records (more=%v), first %d→%d\n", len(rk), more, rk[0], rv[0])

	// 8. Graceful shutdown: Close stops accepting, drains what is in
	//    flight, then closes the DB. The client sees the hangup as
	//    ErrClosed on every later call.
	must(c.Close())
	must(srv.Close())
	if err := <-serveErr; !errors.Is(err, server.ErrClosed) {
		panic(err)
	}
	fmt.Println("server drained and closed")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
