// Key–value store walkthrough: the record API end to end. Unsorted
// user records go in; the parallel pipeline stable-sorts them by key,
// resolves duplicate keys (last write wins, like loading a map),
// range-partitions into shards, and permutes keys AND values together
// into the B-tree layout. Point lookups return the stored value, batch
// lookups return every value, and Range/Scan stream records in global
// key order straight off the permuted shards — no unpermuting, ever.
package main

import (
	"fmt"
	"math/rand"
	"runtime"

	"implicitlayout/layout"
	"implicitlayout/store"
)

// user is the payload type: any Go type works, it is never compared.
type user struct {
	Name  string
	Score int
}

func main() {
	// 1. Unsorted records with duplicate keys: id 500001 appears twice,
	//    and the later occurrence (score 99) must win under the default
	//    KeepLast policy.
	const n = 1 << 18
	ids := make([]uint64, 0, n+1)
	users := make([]user, 0, n+1)
	for i := 0; i < n; i++ {
		id := uint64(2*i + 1)
		ids = append(ids, id)
		users = append(users, user{Name: fmt.Sprint("user-", id), Score: int(id % 100)})
	}
	rand.New(rand.NewSource(3)).Shuffle(len(ids), func(i, j int) {
		ids[i], ids[j] = ids[j], ids[i]
		users[i], users[j] = users[j], users[i]
	})
	// The overwrite arrives last in the input, so KeepLast keeps it.
	ids = append(ids, 500001)
	users = append(users, user{Name: "user-500001", Score: 99})

	// 2. Build the sharded B-tree record store.
	st, err := store.Build(ids, users,
		store.WithLayout(layout.BTree),
		store.WithShards(8),
		store.WithWorkers(runtime.NumCPU()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("built %d records (%d ingested, duplicates resolved %v) into %d %v shards\n",
		st.Len(), len(ids), st.Duplicates(), st.Shards(), st.Layout())

	// 3. Point lookups return the value.
	if u, ok := st.Get(500001); ok {
		fmt.Printf("Get(500001) -> %s score=%d (last write won)\n", u.Name, u.Score)
	}
	if _, ok := st.Get(500002); !ok {
		fmt.Println("Get(500002) -> miss")
	}

	// 4. Batch lookups return values in query order.
	queries := []uint64{1, 2, 42 + 1, 500001, uint64(2*n - 1)}
	res := st.GetBatch(queries, 4)
	for i, q := range queries {
		if res.Found[i] {
			fmt.Printf("batch[%d] id=%d -> %s\n", i, q, res.Vals[i].Name)
		}
	}
	fmt.Printf("batch: %d/%d hits\n", res.Hits, res.Queries)

	// 5. Range streams records in global key order across shards —
	//    directly over the permuted layout.
	fmt.Println("records with 99995 <= id <= 100005:")
	st.Range(99995, 100005, func(id uint64, u user) bool {
		fmt.Printf("  %d -> %s\n", id, u.Name)
		return true
	})

	// 6. Scan walks everything in order; here: the global top score.
	best, count := user{Score: -1}, 0
	st.Scan(func(id uint64, u user) bool {
		count++
		if u.Score > best.Score {
			best = u
		}
		return true
	})
	fmt.Printf("scanned %d records; a top scorer: %s (%d)\n", count, best.Name, best.Score)

	// 7. Export recovers the sorted records (keys ascending, values
	//    aligned) without disturbing the serving shards.
	ks, vs := st.Export()
	fmt.Printf("export: first record (%d, %s), last record (%d, %s)\n",
		ks[0], vs[0].Name, ks[len(ks)-1], vs[len(vs)-1].Name)
}
