// Staticdb models the workload that motivates the paper (Khuong & Morin
// report binary searches on static sorted arrays eating 10% of an
// ad-bidding engine's compute): a read-only key/value store that receives
// a large batch of point lookups. It builds the store once, permutes the
// key column into each layout, and reports lookups/second against the
// binary-search baseline, then shows the break-even batch size measured
// on this machine.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

func main() {
	logN := flag.Int("logn", 22, "number of records = 2^logn")
	q := flag.Int("q", 2_000_000, "lookup batch size")
	flag.Parse()
	n := 1 << uint(*logN)

	// The store: a sorted key column plus a parallel payload column.
	// Lookups resolve a key to its position, then read the payload with
	// the *same* index because the payload column is permuted alongside.
	keys := make([]uint64, n)
	payload := make([]uint32, n)
	for i := range keys {
		keys[i] = uint64(3*i) + 7
		payload[i] = rand.Uint32()
	}
	queries := make([]uint64, *q)
	for i := range queries {
		queries[i] = uint64(3*rand.Intn(n)) + 7 // always present
	}

	fmt.Printf("static store: %d records, %d lookups, %d workers\n\n", n, *q, runtime.NumCPU())

	base := run("binary  ", keys, payload, layout.Sorted, queries, 0)
	for _, k := range layout.Kinds() {
		pk := make([]uint64, n)
		copy(pk, keys)
		pv := make([]uint32, n)
		copy(pv, payload)
		start := time.Now()
		perm.Permute(pk, k, perm.CycleLeader, perm.WithWorkers(runtime.NumCPU()))
		// Permute the payload column with the identical permutation so
		// positions line up. (A production system would permute a row
		// index or interleave key+payload structs.)
		perm.Permute(pv, k, perm.CycleLeader, perm.WithWorkers(runtime.NumCPU()))
		ptime := time.Since(start)
		lookup := run(fmt.Sprintf("%-8s", k), pk, pv, k, queries, ptime)
		if lookup < base {
			// break-even: permute cost amortized after this many lookups
			perQGain := (base - lookup).Seconds() / float64(*q)
			fmt.Printf("          -> permute pays for itself after %.0f lookups (%.2f%% of N)\n",
				ptime.Seconds()/perQGain, 100*ptime.Seconds()/perQGain/float64(n))
		}
	}
}

var sink uint64

func run(name string, keys []uint64, payload []uint32, k layout.Kind, queries []uint64, ptime time.Duration) time.Duration {
	ix := search.NewIndex(keys, k, perm.DefaultB)
	start := time.Now()
	var acc uint64
	for _, q := range queries {
		if pos := ix.Find(q); pos >= 0 {
			acc += uint64(payload[pos])
		}
	}
	el := time.Since(start)
	sink += acc
	rate := float64(len(queries)) / el.Seconds() / 1e6
	if ptime > 0 {
		fmt.Printf("%s %6.2f M lookups/s   (one-time permute: %v)\n", name, rate, ptime.Round(time.Millisecond))
	} else {
		fmt.Printf("%s %6.2f M lookups/s   (no permutation)\n", name, rate)
	}
	return el
}
