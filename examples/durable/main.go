// Durable store walkthrough: the crash-safe lifecycle of a DB backed by
// a directory. Every Put and Delete is appended to a write-ahead log
// before it is acknowledged; flushed memtables become checksummed
// segment files holding the permuted shard arrays verbatim; and an
// atomically-rewritten manifest names the live segments. The payoff of
// the paper's implicit (pointer-free) layouts is the reopen: a segment
// is read straight back into memory and served — no deserialization, no
// re-sort, no re-permute, because the permuted array IS the on-disk
// format. This program runs the full cycle twice over the same
// directory: first populating it, then — in the same invocation,
// simulating a restart — reopening and reading the persisted state.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"implicitlayout/layout"
	"implicitlayout/store"
)

func main() {
	dir := filepath.Join(os.TempDir(), "implicitlayout-durable-example")
	os.RemoveAll(dir) // a clean slate so the walkthrough is deterministic
	defer os.RemoveAll(dir)

	// ---- First lifetime: create, write, close. --------------------------
	cfg := store.DBConfig{
		MemLimit: 100, // tiny, so this walkthrough produces real segment files
		Fanout:   2,
		Store:    []store.Option{store.WithLayout(layout.VEB), store.WithShards(4)},
	}
	db, err := store.Open[uint64, string](dir, cfg)
	if err != nil {
		panic(err)
	}

	// Every write is logged before it is acked: a non-nil error means the
	// write did NOT happen and will not survive a restart.
	for i := uint64(0); i < 500; i++ {
		if err := db.Put(i, fmt.Sprint("value-", i)); err != nil {
			panic(err)
		}
	}
	if err := db.Put(7, "rewritten-before-the-restart"); err != nil {
		panic(err)
	}
	if err := db.Delete(13); err != nil {
		panic(err)
	}

	// Close freezes the active memtable and flushes EVERY layer through
	// the compactor into manifest-committed segments — a clean shutdown
	// leaves nothing for the write-ahead log to replay.
	if err := db.Close(); err != nil {
		panic(err)
	}
	fmt.Println("first lifetime closed; directory now holds:")
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		info, _ := e.Info()
		fmt.Printf("  %-28s %6d bytes\n", e.Name(), info.Size())
	}

	// ---- Second lifetime: reopen and serve. -----------------------------
	// Open loads the manifest, reads each segment's permuted arrays
	// straight into servable shards, and replays any write-ahead logs a
	// crash would have left (here: none — the shutdown was clean).
	reopened, err := store.Open[uint64, string](dir, cfg)
	if err != nil {
		panic(err)
	}
	defer func() {
		if err := reopened.Close(); err != nil {
			panic(err)
		}
	}()

	st := reopened.Stats()
	fmt.Printf("reopened: %d runs (%d disk-backed), levels %v\n",
		st.Runs(), st.DiskRuns, st.RunLevels)

	if v, ok := reopened.Get(7); ok {
		fmt.Println("Get(7) ->", v)
	}
	if _, ok := reopened.Get(13); !ok {
		fmt.Println("Get(13) -> still deleted")
	}
	n := 0
	reopened.Scan(func(uint64, string) bool { n++; return true })
	fmt.Println("live records after restart:", n)

	// The reopened DB is fully writable: new writes go to a fresh
	// write-ahead log in the same directory.
	if err := reopened.Put(1000, "written-after-the-restart"); err != nil {
		panic(err)
	}
	if v, ok := reopened.Get(1000); ok {
		fmt.Println("Get(1000) ->", v)
	}
}
