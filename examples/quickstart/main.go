// Quickstart: permute a sorted array into a search-tree layout in place,
// query it, and restore sorted order — the one-minute tour of the library.
package main

import (
	"fmt"
	"runtime"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

func main() {
	// 1. Start from sorted data (here: the odd numbers up to 2N-1).
	const n = 1 << 20
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(2*i + 1)
	}

	// 2. Permute it, in place and in parallel, into a B-tree layout whose
	//    node size matches a 64-byte cache line. No second array exists at
	//    any point — the transformation is a sequence of swaps.
	perm.Permute(keys, layout.BTree, perm.CycleLeader,
		perm.WithWorkers(runtime.NumCPU()))

	// 3. Query the layout. Each search touches one cache line per tree
	//    level instead of one per comparison (binary search).
	ix := search.NewIndex(keys, layout.BTree, perm.DefaultB)
	for _, q := range []uint64{1, 99991, 2*n - 1, 42} {
		if pos := ix.Find(q); pos >= 0 {
			fmt.Printf("Find(%d)  -> position %d\n", q, pos)
		} else {
			fmt.Printf("Find(%d)  -> not present\n", q)
		}
	}

	// Predecessor queries work on every layout too.
	if pos := ix.Predecessor(100); pos >= 0 {
		fmt.Printf("Pred(100) -> %d\n", keys[pos])
	}

	// 4. The permutation is invertible: restore sorted order in place.
	if err := perm.Unpermute(keys, layout.BTree, perm.WithWorkers(runtime.NumCPU())); err != nil {
		panic(err)
	}
	fmt.Printf("restored sorted order: keys[0]=%d keys[%d]=%d\n", keys[0], n-1, keys[n-1])
}
