// Sharded store walkthrough: ingest an unsorted key set, let the parallel
// pipeline sort + partition + permute it into a sharded vEB key set, serve
// concurrent batched queries with per-shard statistics, then export the
// sorted snapshot and migrate it to a B-tree layout — the serving-layer
// tour of the library. (For value payloads and range scans, see
// examples/kvstore.)
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"implicitlayout/layout"
	"implicitlayout/store"
)

func main() {
	// 1. Start from UNSORTED data — the store owns the whole pipeline.
	//    (Odd keys, so every even value is a guaranteed miss.)
	const n = 1 << 20
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(2*i + 1)
	}
	rand.New(rand.NewSource(42)).Shuffle(n, func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})

	// 2. Build: parallel sort, range-partition into shards, and permute
	//    every shard concurrently into the vEB layout. BuildSet is the
	//    keys-only constructor; store.Build ingests key–value pairs.
	st, err := store.BuildSet(keys,
		store.WithShards(8),
		store.WithLayout(layout.VEB),
		store.WithWorkers(runtime.NumCPU()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("built %d keys into %d vEB shards; fences %v...\n",
		st.Len(), st.Shards(), st.Fences()[:3])

	// 3. Point queries route through the fence keys to one shard.
	for _, q := range []uint64{1, 99991, 2*n - 1, 42} {
		if ref, ok := st.GetRef(q); ok {
			fmt.Printf("GetRef(%d) -> shard %d pos %d\n", q, ref.Shard, ref.Pos)
		} else {
			fmt.Printf("GetRef(%d) -> not present\n", q)
		}
	}
	if key, _, ok := st.Predecessor(100); ok {
		fmt.Printf("Pred(100) -> %d\n", key)
	}

	// 4. The store is an immutable snapshot: readers share it freely.
	//    Here four goroutines each serve a batch; GetBatch itself fans
	//    each batch out over its own bounded worker pool.
	rng := rand.New(rand.NewSource(7))
	queries := make([]uint64, 1<<16)
	for i := range queries {
		queries[i] = uint64(rng.Intn(2 * n))
	}
	var wg sync.WaitGroup
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := st.GetBatch(queries, 4)
			busiest := store.ShardStats{}
			for _, sh := range res.Shards {
				if sh.Queries > busiest.Queries {
					busiest = sh
				}
			}
			fmt.Printf("reader: %d/%d hits; busiest shard answered %d\n",
				res.Hits, res.Queries, busiest.Queries)
		}()
	}
	wg.Wait()

	// 5. Export the sorted snapshot (Unpermute per shard, concurrently)
	//    and migrate the same keys to a 16-shard B-tree store — the
	//    original store keeps serving until the swap.
	sorted, _ := st.Export()
	fmt.Printf("export: sorted[0]=%d sorted[%d]=%d\n", sorted[0], n-1, sorted[n-1])

	migrated, err := st.Rebuild(store.WithLayout(layout.BTree), store.WithShards(16))
	if err != nil {
		panic(err)
	}
	fmt.Printf("migrated to %d %v shards; Contains(99991)=%v\n",
		migrated.Shards(), migrated.Layout(), migrated.Contains(99991))
}
