// Timeseries exercises the predecessor queries that dominate read-only
// time-indexed data (the "finance" and "numerical analysis" motivations
// of the paper's introduction): given a sorted array of event timestamps,
// answer "what is the latest event at or before time t?" for a large
// batch of probes. Exact-match search is useless here — almost no probe
// hits a stored timestamp — so the example shows the layouts' predecessor
// descent and compares throughput against binary search.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

func main() {
	logN := flag.Int("logn", 22, "number of events = 2^logn")
	q := flag.Int("q", 2_000_000, "probe count")
	flag.Parse()
	n := 1 << uint(*logN)

	// Events: strictly increasing timestamps with jittered gaps.
	rng := rand.New(rand.NewSource(42))
	ts := make([]uint64, n)
	t := uint64(1_600_000_000_000) // epoch millis
	for i := range ts {
		t += uint64(rng.Intn(2000) + 1)
		ts[i] = t
	}
	span := ts[n-1] - ts[0]
	probes := make([]uint64, *q)
	for i := range probes {
		probes[i] = ts[0] + uint64(rng.Int63n(int64(span)))
	}

	fmt.Printf("time index: %d events over %.1f days, %d probes\n\n",
		n, float64(span)/86400000, *q)

	// Reference answers from the sorted array.
	want := make([]uint64, 64)
	for i := range want {
		want[i] = valueAt(search.PredecessorBinary(ts, probes[i]), ts)
	}

	baseline := measure("binary  ", ts, layout.Sorted, probes, want)
	for _, k := range layout.Kinds() {
		arr := make([]uint64, n)
		copy(arr, ts)
		start := time.Now()
		perm.Permute(arr, k, perm.CycleLeader, perm.WithWorkers(runtime.NumCPU()))
		fmt.Printf("%-8s permute %v; ", k, time.Since(start).Round(time.Millisecond))
		d := measure("", arr, k, probes, want)
		fmt.Printf("          speedup over binary: %.2fx\n", baseline.Seconds()/d.Seconds())
	}
}

func valueAt(pos int, arr []uint64) uint64 {
	if pos < 0 {
		return 0
	}
	return arr[pos]
}

var sink uint64

func measure(label string, arr []uint64, k layout.Kind, probes []uint64, want []uint64) time.Duration {
	ix := search.NewIndex(arr, k, perm.DefaultB)
	// Correctness spot check against the sorted reference.
	for i := range want {
		if got := valueAt(ix.Predecessor(probes[i]), arr); got != want[i] {
			panic(fmt.Sprintf("%v: predecessor(%d) = %d, want %d", k, probes[i], got, want[i]))
		}
	}
	start := time.Now()
	var acc uint64
	for _, p := range probes {
		if pos := ix.Predecessor(p); pos >= 0 {
			acc += arr[pos]
		}
	}
	el := time.Since(start)
	sink += acc
	fmt.Printf("%s%6.2f M predecessor queries/s\n", label, float64(len(probes))/el.Seconds()/1e6)
	return el
}
