// Writable store walkthrough: the LSM-style DB built from the paper's
// construction primitive. Writes land in a mutable memtable; when it
// fills, a background compactor flushes it into an immutable level-0 run
// — a sharded implicit-layout Store built by the parallel sort →
// partition → permute pipeline — and merges runs level to level as they
// pile up. Reads see memtable and runs as one ordered key space:
// newest version wins, tombstones hide deleted keys, and Range k-way
// merges the layers. The point of the exercise: because the paper makes
// (re)building a search layout cheap, "rebuild the index at every flush"
// becomes the write path, not a maintenance outage.
package main

import (
	"fmt"

	"implicitlayout/layout"
	"implicitlayout/store"
)

func main() {
	// 1. Open a DB. MemLimit is set artificially tiny so this walkthrough
	//    triggers real flushes and merges with a few hundred writes; the
	//    default (store.DefaultMemLimit) is 32Ki records.
	db, err := store.NewDB[uint64, string](store.DBConfig{
		MemLimit: 100,
		Fanout:   2,
		Store:    []store.Option{store.WithLayout(layout.VEB), store.WithShards(4)},
	})
	if err != nil {
		panic(err)
	}
	defer func() { must(db.Close()) }()

	// 2. Write traffic: every Put is a memtable insert under a short
	//    lock; crossing MemLimit freezes the table and wakes the
	//    compactor, but the writer never waits for a flush. A nil error
	//    is the acknowledgment that the write is in.
	for i := uint64(0); i < 1000; i++ {
		must(db.Put(i, fmt.Sprint("value-", i)))
	}
	must(db.Put(7, "value-7-rewritten")) // overwrite: newest version wins
	must(db.Delete(13))                  // delete: a tombstone, not an in-place erase

	// 3. Reads are first-hit-wins through memtable -> frozen -> runs,
	//    so they see every write above immediately, wherever it lives.
	if v, ok := db.Get(7); ok {
		fmt.Println("Get(7) ->", v)
	}
	if _, ok := db.Get(13); !ok {
		fmt.Println("Get(13) -> deleted")
	}

	// 4. Range merges all layers into one ordered stream of live records.
	fmt.Println("records with 10 <= key <= 15:")
	db.Range(10, 15, func(k uint64, v string) bool {
		fmt.Printf("  %d -> %s\n", k, v)
		return true
	})

	// 5. Flush drains everything into runs synchronously — here just to
	//    make the run stack deterministic for printing; a serving process
	//    never needs to call it.
	must(db.Flush())
	st := db.Stats()
	fmt.Printf("after flush: %d memtable records, %d runs, levels %v, sizes %v\n",
		st.MemRecords, st.Runs(), st.RunLevels, st.RunRecords)

	// 6. The DB keeps absorbing writes after compaction; the merged runs
	//    are immutable history, the memtable is the present.
	must(db.Put(2000, "late arrival"))
	n := 0
	db.Scan(func(uint64, string) bool { n++; return true })
	fmt.Println("total live records:", n)
}

// must keeps the walkthrough honest about the write API's contract —
// every error return is a refused acknowledgment — without burying the
// narrative under error plumbing.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
