// Lowmem demonstrates the property the paper is named for: the
// permutation is genuinely in place, so a search-tree layout can be built
// even when the data occupies essentially all available memory. The
// program allocates one large array, measures the heap before and after
// permuting into each layout, and verifies that the transformation
// allocated no second copy (an out-of-place rebuild would need another
// 8·N bytes).
package main

import (
	"flag"
	"fmt"
	"runtime"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

func main() {
	logN := flag.Int("logn", 24, "array size = 2^logn 64-bit keys")
	flag.Parse()
	n := 1 << uint(*logN)

	keys := make([]uint64, n)
	fill(keys)
	arrayMB := float64(n*8) / (1 << 20)
	fmt.Printf("array: %d keys = %.0f MiB\n\n", n, arrayMB)

	for _, k := range layout.Kinds() {
		fill(keys)
		heapBefore := heapMB()
		perm.Permute(keys, k, perm.CycleLeader, perm.WithWorkers(runtime.NumCPU()))
		heapAfter := heapMB()

		// Sanity: the layout actually answers queries.
		ix := search.NewIndex(keys, k, perm.DefaultB)
		if ix.Find(uint64(2*n-1)) < 0 || ix.Find(2) >= 0 {
			panic("layout broken")
		}
		grown := heapAfter - heapBefore
		fmt.Printf("%-6s permuted in place: heap grew %.1f MiB (array is %.0f MiB)\n",
			k, grown, arrayMB)
		if grown > arrayMB/2 {
			panic("permutation allocated a second copy — not in place!")
		}
	}

	// Round-trip: every layout can be un-permuted in place too.
	for _, k := range layout.Kinds() {
		fill(keys)
		perm.Permute(keys, k, perm.Involution)
		if err := perm.Unpermute(keys, k); err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			if keys[i] != uint64(2*i+1) {
				panic("round trip lost data")
			}
		}
	}
	fmt.Println("\nRound trips (permute + un-permute) restored sorted order exactly for all layouts.")
}

func fill(keys []uint64) {
	for i := range keys {
		keys[i] = uint64(2*i + 1)
	}
}

func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}
