// Lowmem demonstrates serving a dataset whose working set does not fit
// the Go heap: the "beyond RAM" property the zero-copy segment codec
// buys. The paper's permutation is in place, so building a search-tree
// layout never needs a second copy of the data — and because an implicit
// layout is a pointer-free array, the permuted array can be written to
// disk once and then served forever from the OS page cache through a
// read-only mapping, with the Go heap holding only the store's O(shards)
// skeleton.
//
// The program runs the lifecycle in one process:
//
//  1. build a Store of 2^logn key–value records (16 bytes per record)
//     and persist it as a codec-v2 segment file;
//  2. drop the build from the heap and clamp the runtime with a
//     GOMEMLIMIT-style memory limit far below the dataset size;
//  3. reopen the file twice — decoded onto the heap vs mapped — timing
//     both, then serve verified point queries and a range scan from the
//     mapped store while measuring how small the heap stays.
//
// Run it with the defaults (64 MiB of records, 16 MiB memory limit):
//
//	go run ./examples/lowmem
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"implicitlayout/store"
)

func main() {
	logN := flag.Int("logn", 22, "record count = 2^logn (16 bytes per record)")
	limitMiB := flag.Int64("memlimit", 16, "Go soft memory limit while serving, MiB")
	flag.Parse()
	n := 1 << uint(*logN)
	dataMiB := float64(n*16) / (1 << 20)

	// Phase 1: build and persist. The build needs the records on the
	// heap — that is exactly the cost serving will not pay.
	keys := make([]int64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = int64(2*i + 1)
		vals[i] = uint64(i) * 3
	}
	st, err := store.Build(keys, vals)
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "lowmem")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "records.seg")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	written, err := st.WriteTo(f)
	if err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("dataset: %d records = %.0f MiB, segment file %.0f MiB\n\n",
		n, dataMiB, float64(written)/(1<<20))

	// Phase 2: forget the build and clamp the heap well below the data.
	st, keys, vals = nil, nil, nil
	runtime.GC()
	debug.SetMemoryLimit(*limitMiB << 20)
	fmt.Printf("serving under a %d MiB memory limit (dataset is %.0fx larger)\n\n",
		*limitMiB, dataMiB/float64(*limitMiB))

	// Phase 3: cold-open both ways, then serve from the mapping.
	start := time.Now()
	decoded, err := store.OpenStore[int64, uint64](path)
	if err != nil {
		panic(err)
	}
	decodeMS := float64(time.Since(start).Microseconds()) / 1e3
	if decoded.Len() != n {
		panic("decode reopen lost records")
	}
	decoded = nil
	_ = decoded
	runtime.GC()

	start = time.Now()
	served, err := store.OpenStore[int64, uint64](path, store.WithMmap(true))
	if err != nil {
		panic(err)
	}
	mmapMS := float64(time.Since(start).Microseconds()) / 1e3
	fmt.Printf("cold open, heap decode: %8.2f ms (reads and decodes every record)\n", decodeMS)
	fmt.Printf("cold open, mmap:        %8.2f ms (maps the file, decodes nothing)\n\n", mmapMS)
	if served.Mapped() {
		fmt.Println("store is served zero-copy from the page cache")
	} else {
		fmt.Println("(no mmap on this platform: served from the heap instead)")
	}

	// Point queries against the mapped store, verified.
	rng := rand.New(rand.NewSource(1))
	queries := make([]int64, 1<<16)
	for i := range queries {
		queries[i] = int64(rng.Intn(2 * n)) // ~half hit
	}
	res := served.GetBatch(queries, runtime.NumCPU())
	for i, q := range queries {
		if res.Found[i] && res.Vals[i] != uint64(q/2)*3 {
			panic("wrong value served")
		}
	}
	// An ordered range through the middle of the key space.
	lo, hi := int64(n), int64(n+64)
	count := 0
	served.Range(lo, hi, func(k int64, v uint64) bool { count++; return true })

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapMiB := float64(ms.HeapAlloc) / (1 << 20)
	fmt.Printf("\nserved %d point queries (%d hits) + a %d-record range scan\n",
		len(queries), res.Hits, count)
	fmt.Printf("heap while serving: %.1f MiB for a %.0f MiB dataset (%.1f%%)\n",
		heapMiB, dataMiB, 100*heapMiB/dataMiB)
	if served.Mapped() && heapMiB > dataMiB/4 {
		panic("serving pulled the dataset onto the heap — not zero-copy!")
	}
}
