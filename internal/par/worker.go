package par

import "sync"

// Worker is the background-goroutine lifecycle used by long-lived
// maintenance loops (the store's DB compactor): one goroutine that runs a
// drain function whenever kicked, with kick coalescing and a synchronous
// shutdown. It complements the fork-join Runner — Runner structures the
// parallelism *inside* one burst of work, Worker decides *when* a burst
// runs without blocking the caller.
//
// Kick is cheap, non-blocking, and safe from any goroutine; kicks that
// arrive while the drain function is running coalesce into at most one
// pending re-run, so the drain function must itself loop until no work
// remains. Close stops the goroutine after any in-flight run completes
// and then waits for it to exit; kicks after Close are no-ops.
type Worker struct {
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewWorker spawns the background goroutine and returns its handle. fn is
// only ever invoked from that one goroutine, so it needs no internal
// locking against itself.
func NewWorker(fn func()) *Worker {
	w := &Worker{
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		for {
			select {
			case <-w.stop:
				return
			case <-w.kick:
				fn()
			}
		}
	}()
	return w
}

// Kick schedules one run of the drain function. It never blocks: if a run
// is already pending the kick coalesces with it.
func (w *Worker) Kick() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// Close stops the worker after any in-flight run completes and waits for
// the goroutine to exit. A pending coalesced kick is dropped, not drained
// — callers that need the last burst of work done run it synchronously
// before (or after) closing. Close is idempotent.
func (w *Worker) Close() {
	w.once.Do(func() { close(w.stop) })
	<-w.done
}
