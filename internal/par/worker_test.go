package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkerRunsOnKick(t *testing.T) {
	var runs atomic.Int64
	ran := make(chan struct{}, 16)
	w := NewWorker(func() {
		runs.Add(1)
		ran <- struct{}{}
	})
	defer w.Close()

	w.Kick()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never ran after Kick")
	}
	if runs.Load() < 1 {
		t.Fatalf("runs = %d, want >= 1", runs.Load())
	}
}

func TestWorkerCoalescesKicks(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	var runs atomic.Int64
	w := NewWorker(func() {
		started <- struct{}{}
		<-block
		runs.Add(1)
	})

	w.Kick()
	<-started // first run is in flight
	for i := 0; i < 100; i++ {
		w.Kick() // all of these coalesce into at most one pending run
	}
	block <- struct{}{} // finish run 1
	select {
	case <-started: // the coalesced rerun
		block <- struct{}{}
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced kick never ran")
	}
	w.Close()
	if got := runs.Load(); got != 2 {
		t.Fatalf("runs = %d, want exactly 2 (1 in-flight + 1 coalesced)", got)
	}
}

func TestWorkerCloseWaitsForInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var finished atomic.Bool
	w := NewWorker(func() {
		close(started)
		<-release
		finished.Store(true)
	})
	w.Kick()
	<-started
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	w.Close() // must block until fn returns
	if !finished.Load() {
		t.Fatal("Close returned before the in-flight run finished")
	}
}

func TestWorkerCloseIdempotentAndConcurrent(t *testing.T) {
	w := NewWorker(func() {})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Close()
		}()
	}
	wg.Wait()
	w.Kick() // after Close: must not panic, must be a no-op
}
