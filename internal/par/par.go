// Package par is the parallel runtime used by every permutation algorithm.
// It provides fork-join data parallelism over an explicit worker-id range,
// which is what the paper's PRAM algorithms need: each of the P processors
// owns a contiguous block of iterations (CREW discipline, deterministic
// partitioning) and backends such as the PEM simulator account I/Os per
// worker id.
//
// A Runner owns the half-open worker-id interval [lo, hi). Nested
// parallelism (the recursive cycle-leader algorithms) splits the interval
// into disjoint sub-intervals, so two concurrently running tasks never
// share a worker id. Total extra space is O(P log N): one goroutine stack
// per worker plus the recursion bookkeeping, which satisfies the paper's
// Definition 1 of parallel in-place computation.
package par

import (
	"runtime"
	"sync"
)

// DefaultMinFor is the smallest iteration count worth forking for. Runs
// that need exact P-way splits regardless of size (e.g. the PEM simulator)
// lower it to 1.
const DefaultMinFor = 1 << 11

// Runner executes loops and task groups on the worker-id range [Lo, Hi).
type Runner struct {
	// Lo and Hi bound the half-open worker-id interval owned by this runner.
	Lo, Hi int
	// MinFor is the minimum loop length that is split across workers;
	// shorter loops run inline on worker Lo. Zero means DefaultMinFor.
	MinFor int
}

// New returns a Runner with p workers (ids 0..p-1). p < 1 selects
// runtime.GOMAXPROCS(0) workers.
func New(p int) Runner {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	return Runner{Lo: 0, Hi: p}
}

// Serial returns a single-worker Runner pinned to worker id w.
func Serial(w int) Runner { return Runner{Lo: w, Hi: w + 1} }

// P returns the number of workers owned by the runner.
func (r Runner) P() int { return r.Hi - r.Lo }

// IsSerial reports whether the runner owns a single worker.
func (r Runner) IsSerial() bool { return r.P() <= 1 }

func (r Runner) minFor() int {
	if r.MinFor > 0 {
		return r.MinFor
	}
	return DefaultMinFor
}

// For runs f over the index range [0, n), split into at most P contiguous
// blocks, one per worker. f receives the worker id and its block [lo, hi).
// For blocks until every worker has finished: it is one synchronous
// parallel round in the PRAM sense.
func (r Runner) For(n int, f func(p, lo, hi int)) {
	if n <= 0 {
		return
	}
	p := r.P()
	if p <= 1 || n < r.minFor() {
		f(r.Lo, 0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for w := 1; w < p; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			f(id, lo, hi)
		}(r.Lo+w, lo, hi)
	}
	f(r.Lo, 0, min(chunk, n))
	wg.Wait()
}

// ForWeighted runs f over [0, n) like For, but splits the range so that
// every worker receives approximately equal total weight, where the weight
// of the prefix [0, i) is given by the monotone function cum(i) with
// cum(0) == 0. The equidistant gather uses it to balance cycles whose
// lengths grow linearly with the cycle index.
func (r Runner) ForWeighted(n int, cum func(i int) int, f func(p, lo, hi int)) {
	if n <= 0 {
		return
	}
	p := r.P()
	if p <= 1 || n < 2*p {
		f(r.Lo, 0, n)
		return
	}
	total := cum(n)
	if total <= 0 {
		f(r.Lo, 0, n)
		return
	}
	// bounds[w] = smallest i with cum(i) >= w*total/p; the non-decreasing
	// boundaries partition [0, n) into blocks of near-equal weight.
	bounds := make([]int, p+1)
	bounds[p] = n
	for w := 1; w < p; w++ {
		target := w * (total / p)
		lo, hi := bounds[w-1], n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum(mid) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[w] = lo
	}
	var wg sync.WaitGroup
	for w := 1; w < p; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			f(id, lo, hi)
		}(r.Lo+w, lo, hi)
	}
	if bounds[0] < bounds[1] {
		f(r.Lo, bounds[0], bounds[1])
	}
	wg.Wait()
}

// Tasks runs m independent tasks. When m >= P each worker processes a
// contiguous block of tasks serially; when m < P the worker range is split
// into m sub-runners so each task keeps internal parallelism. task receives
// the task index and the Runner it may use.
func (r Runner) Tasks(m int, task func(i int, sub Runner)) {
	if m <= 0 {
		return
	}
	p := r.P()
	switch {
	case p <= 1 || m == 1:
		if m == 1 {
			task(0, r)
			return
		}
		for i := 0; i < m; i++ {
			task(i, Serial(r.Lo))
		}
	case m >= p:
		// Tasks are coarse-grained by definition — each one is at least a
		// whole task body, not one loop iteration — so the element-grained
		// MinFor cutoff must not serialize the dispatch: a runner fresh
		// from New would otherwise run any m < DefaultMinFor tasks inline
		// on one worker.
		rt := r
		rt.MinFor = 1
		rt.For(m, func(w, lo, hi int) {
			sub := Serial(w)
			for i := lo; i < hi; i++ {
				task(i, sub)
			}
		})
	default:
		// Fewer tasks than workers: give each task a disjoint slice of
		// the worker range.
		chunk := p / m
		rem := p % m
		var wg sync.WaitGroup
		lo := r.Lo
		var first Runner
		for i := 0; i < m; i++ {
			w := chunk
			if i < rem {
				w++
			}
			sub := Runner{Lo: lo, Hi: lo + w, MinFor: r.MinFor}
			lo += w
			if i == 0 {
				first = sub
				continue
			}
			wg.Add(1)
			go func(i int, sub Runner) {
				defer wg.Done()
				task(i, sub)
			}(i, sub)
		}
		task(0, first)
		wg.Wait()
	}
}

// Do runs the given functions concurrently, splitting the worker range
// between them, and returns when all have finished.
func (r Runner) Do(fs ...func(sub Runner)) {
	r.Tasks(len(fs), func(i int, sub Runner) { fs[i](sub) })
}
