package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 100, 10000} {
			r := Runner{Lo: 0, Hi: p, MinFor: 1}
			hit := make([]int32, n)
			r.For(n, func(w, lo, hi int) {
				if w < 0 || w >= p {
					t.Errorf("worker id %d out of range [0,%d)", w, p)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hit[i], 1)
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("P=%d n=%d: index %d hit %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForDistinctWorkerIDs(t *testing.T) {
	r := Runner{Lo: 3, Hi: 7, MinFor: 1}
	var mu sync.Mutex
	seen := map[int]bool{}
	r.For(400, func(w, lo, hi int) {
		mu.Lock()
		if seen[w] {
			mu.Unlock()
			t.Errorf("worker id %d used twice", w)
			return
		}
		seen[w] = true
		mu.Unlock()
	})
	for w := range seen {
		if w < 3 || w >= 7 {
			t.Errorf("worker id %d outside runner range [3,7)", w)
		}
	}
}

func TestForSerialBelowMinFor(t *testing.T) {
	r := Runner{Lo: 2, Hi: 6, MinFor: 1000}
	calls := 0
	r.For(10, func(w, lo, hi int) {
		calls++
		if w != 2 || lo != 0 || hi != 10 {
			t.Errorf("expected single inline call on worker 2, got w=%d [%d,%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 call, got %d", calls)
	}
}

func TestForWeightedCoversRange(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		r := Runner{Lo: 0, Hi: p, MinFor: 1}
		n := 500
		cum := func(i int) int { return i * (i + 3) / 2 } // quadratic weights
		hit := make([]int32, n)
		r.ForWeighted(n, cum, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("P=%d: index %d hit %d times", p, i, h)
			}
		}
	}
}

func TestForWeightedBalance(t *testing.T) {
	p := 4
	r := Runner{Lo: 0, Hi: p, MinFor: 1}
	n := 10000
	cum := func(i int) int { return i * (i + 1) / 2 }
	var mu sync.Mutex
	loads := map[int]int{}
	r.ForWeighted(n, cum, func(w, lo, hi int) {
		mu.Lock()
		loads[w] += cum(hi) - cum(lo)
		mu.Unlock()
	})
	total := cum(n)
	for w, load := range loads {
		if load > total/p*2 {
			t.Errorf("worker %d got %d of %d total weight: imbalanced", w, load, total)
		}
	}
}

func TestTasksAllRunWithDisjointRunners(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, m := range []int{1, 2, 3, 10, 100} {
			r := Runner{Lo: 0, Hi: p, MinFor: 1}
			ran := make([]int32, m)
			var mu sync.Mutex
			type span struct{ lo, hi int }
			active := []span{}
			r.Tasks(m, func(i int, sub Runner) {
				atomic.AddInt32(&ran[i], 1)
				if sub.P() < 1 {
					t.Errorf("task %d got empty runner", i)
				}
				mu.Lock()
				active = append(active, span{sub.Lo, sub.Hi})
				mu.Unlock()
			})
			for i, c := range ran {
				if c != 1 {
					t.Fatalf("P=%d m=%d: task %d ran %d times", p, m, i, c)
				}
			}
		}
	}
}

// TestTasksSplitRunnersDisjoint: with fewer tasks than workers, the
// sub-runners partition the worker range.
func TestTasksSplitRunnersDisjoint(t *testing.T) {
	r := Runner{Lo: 0, Hi: 8, MinFor: 1}
	var mu sync.Mutex
	used := map[int]int{}
	r.Tasks(3, func(i int, sub Runner) {
		mu.Lock()
		defer mu.Unlock()
		for w := sub.Lo; w < sub.Hi; w++ {
			used[w]++
		}
	})
	if len(used) != 8 {
		t.Fatalf("expected all 8 workers assigned, got %d", len(used))
	}
	for w, c := range used {
		if c != 1 {
			t.Fatalf("worker %d assigned to %d tasks", w, c)
		}
	}
}

// TestTasksDispatchIgnoresMinFor: with m >= P, a default runner (MinFor
// unset) still spreads tasks across the whole worker range — the
// element-grained MinFor cutoff must not serialize task dispatch.
func TestTasksDispatchIgnoresMinFor(t *testing.T) {
	r := New(4)
	var mu sync.Mutex
	ids := map[int]bool{}
	r.Tasks(8, func(i int, sub Runner) {
		mu.Lock()
		ids[sub.Lo] = true
		mu.Unlock()
	})
	if len(ids) != 4 {
		t.Fatalf("8 tasks on 4 default workers used %d worker ids, want 4", len(ids))
	}
}

func TestDoRunsAll(t *testing.T) {
	r := New(4)
	var a, b int32
	r.Do(
		func(sub Runner) { atomic.AddInt32(&a, 1) },
		func(sub Runner) { atomic.AddInt32(&b, 1) },
	)
	if a != 1 || b != 1 {
		t.Fatalf("Do did not run all functions: a=%d b=%d", a, b)
	}
}

func TestNewDefaults(t *testing.T) {
	if New(0).P() < 1 {
		t.Fatal("New(0) should give at least one worker")
	}
	if New(5).P() != 5 {
		t.Fatal("New(5) should give 5 workers")
	}
	if !Serial(3).IsSerial() || Serial(3).Lo != 3 {
		t.Fatal("Serial(3) wrong")
	}
}
