// Package unsafeview defines an analyzer that confines unsafe memory
// reinterpretation to the checked View/Bytes pattern of
// internal/mmapio.
//
// The engine serves mmap'd segment bytes as typed shard arrays, which
// requires exactly one kind of unsafe code: reinterpreting []byte as
// []T (and back) for fixed-width T. PR 5 concentrated that in
// mmapio.View and mmapio.Bytes, where the byte length is checked to be
// a whole multiple of the element width and the pointer checked to be
// aligned for T before unsafe.Slice runs — a cast that cannot silently
// produce a slice whose tail reads out of bounds or whose loads trap on
// alignment-strict hardware. This analyzer keeps the invariant machine-
// checked as the codebase grows:
//
//   - Outside the allowlisted packages (flag "allow", default
//     internal/mmapio), any use of package unsafe is reported, except
//     the compile-time size queries unsafe.Sizeof, unsafe.Alignof and
//     unsafe.Offsetof, which reinterpret nothing.
//   - Inside an allowlisted package, unsafe.Add, unsafe.String and
//     unsafe.StringData are still reported (raw pointer arithmetic and
//     string aliasing are outside the pattern), and every
//     unsafe.Slice((*T)(p), n) reinterpretation to a non-byte element
//     type must be preceded, in the same function, by both a
//     length-multiple check (a % expression over a len() or Sizeof
//     value) and an alignment check (a % expression over a uintptr or
//     Alignof value). Casting to []byte needs no guards: byte has size
//     and alignment 1.
package unsafeview

import (
	"go/ast"
	"go/token"
	"go/types"

	"implicitlayout/internal/analysis/lintkit"
)

// Analyzer confines unsafe reinterpretation to checked View/Bytes casts
// in allowlisted packages.
var Analyzer = &lintkit.Analyzer{
	Name: "unsafeview",
	Doc: "confine package unsafe to checked View/Bytes reinterpretation in allowlisted packages\n\n" +
		"Reports any use of unsafe outside the allowlist (except Sizeof/Alignof/Offsetof), and, inside it, " +
		"unsafe.Slice casts to non-byte element types that are not guarded by length-multiple and alignment checks.",
	Run: run,
}

var allowedPkgs = "internal/mmapio"

func init() {
	Analyzer.Flags.StringVar(&allowedPkgs, "allow", allowedPkgs,
		"comma-separated package path suffixes where unsafe reinterpretation is permitted")
}

// sizeQueries are the unsafe operations that compute layout constants
// without reinterpreting memory; they are permitted everywhere.
var sizeQueries = map[string]bool{"Sizeof": true, "Alignof": true, "Offsetof": true}

// rawOps are never part of the View/Bytes pattern, even in allowlisted
// packages.
var rawOps = map[string]bool{"Add": true, "String": true, "StringData": true}

func run(pass *lintkit.Pass) error {
	inAllowed := lintkit.PkgPathMatches(pass.Pkg.Path(), allowedPkgs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && inAllowed {
				checkAllowedFunc(pass, fd)
				continue
			}
			checkNoUnsafe(pass, decl, inAllowed)
		}
	}
	return nil
}

// checkNoUnsafe reports unsafe references in code that may not hold
// any (non-function decls everywhere; all decls outside the allowlist).
func checkNoUnsafe(pass *lintkit.Pass, n ast.Node, inAllowed bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, ok := unsafeRef(pass.TypesInfo, sel)
		if !ok || sizeQueries[name] {
			return true
		}
		if inAllowed {
			// Package-level unsafe in an allowlisted package: only the
			// raw ops are categorically out; conversions in var
			// initializers get the same report as elsewhere because no
			// guard can precede them.
			pass.Reportf(sel.Pos(), "unsafe.%s outside a function body; reinterpretation belongs in a guarded function (mmapio.View/Bytes pattern)", name)
			return true
		}
		pass.Reportf(sel.Pos(), "use of unsafe.%s outside the unsafe allowlist (%s); zero-copy reinterpretation belongs behind internal/mmapio View/Bytes", name, allowedPkgs)
		return true
	})
}

// checkAllowedFunc enforces the guarded-cast pattern inside an
// allowlisted package's function.
func checkAllowedFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	// Pre-scan the body for guard expressions, recording their
	// positions: a guard only protects casts that follow it.
	var lenGuards, alignGuards []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.REM {
			return true
		}
		if mentionsWidth(pass.TypesInfo, be) {
			lenGuards = append(lenGuards, be.Pos())
		}
		if mentionsAlignment(pass.TypesInfo, be) {
			alignGuards = append(alignGuards, be.Pos())
		}
		return true
	})
	guardedBefore := func(guards []token.Pos, pos token.Pos) bool {
		for _, g := range guards {
			if g < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, ok := unsafeRef(pass.TypesInfo, sel)
		if !ok {
			return true
		}
		switch {
		case sizeQueries[name]:
		case rawOps[name]:
			pass.Reportf(sel.Pos(), "unsafe.%s is outside the View/Bytes pattern even in allowlisted packages; use a checked slice reinterpretation", name)
		case name == "Slice":
			checkSliceCast(pass, sel, guardedBefore, lenGuards, alignGuards)
		}
		return true
	})
}

// checkSliceCast validates one unsafe.Slice call site.
func checkSliceCast(pass *lintkit.Pass, sel *ast.SelectorExpr, guardedBefore func([]token.Pos, token.Pos) bool, lenGuards, alignGuards []token.Pos) {
	call := enclosingCall(pass, sel)
	if call == nil || len(call.Args) != 2 {
		return
	}
	elem := sliceElemType(pass.TypesInfo, call.Args[0])
	if elem == nil {
		return
	}
	if basic, ok := elem.Underlying().(*types.Basic); ok && basic.Kind() == types.Uint8 {
		return // []byte direction: width 1, alignment 1, nothing to check
	}
	if !guardedBefore(lenGuards, call.Pos()) {
		pass.Reportf(call.Pos(), "unchecked reinterpretation to []%s: no length-multiple guard (len(b) %% width) precedes this unsafe.Slice", elem)
	}
	if !guardedBefore(alignGuards, call.Pos()) {
		pass.Reportf(call.Pos(), "unchecked reinterpretation to []%s: no alignment guard (uintptr(p) %% align) precedes this unsafe.Slice", elem)
	}
}

// enclosingCall returns the CallExpr whose Fun is sel, found by type
// information rather than parent tracking: sel's type is a builtin
// signature, so look it up in the expression's parent via Pos scanning.
func enclosingCall(pass *lintkit.Pass, sel *ast.SelectorExpr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, f := range pass.Files {
		if f.FileStart <= sel.Pos() && sel.Pos() < f.FileEnd {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
					found = call
					return false
				}
				return found == nil
			})
		}
	}
	return found
}

// sliceElemType returns T for a first argument of form (*T)(p), or the
// pointee of the argument's pointer type in general.
func sliceElemType(info *types.Info, arg ast.Expr) types.Type {
	tv, ok := info.Types[arg]
	if !ok {
		return nil
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	return ptr.Elem()
}

// unsafeRef reports whether sel is a reference unsafe.<name>.
func unsafeRef(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "unsafe" {
		return "", false
	}
	return sel.Sel.Name, true
}

// mentionsWidth reports whether a % expression involves a len() call or
// an unsafe.Sizeof-derived value — the shape of a "whole number of
// elements" check.
func mentionsWidth(info *types.Info, be *ast.BinaryExpr) bool {
	found := false
	ast.Inspect(be, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "len" {
				found = true
			}
		case *ast.SelectorExpr:
			if name, ok := unsafeRef(info, fun); ok && name == "Sizeof" {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsAlignment reports whether a % expression involves a uintptr
// conversion or unsafe.Alignof — the shape of an alignment check.
func mentionsAlignment(info *types.Info, be *ast.BinaryExpr) bool {
	found := false
	ast.Inspect(be, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if name, ok := unsafeRef(info, fun); ok && name == "Alignof" {
					found = true
				}
			}
		case ast.Expr:
			if tv, ok := info.Types[n]; ok {
				if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.Uintptr {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
