package unsafeview_test

import (
	"testing"

	"implicitlayout/internal/analysis/lintkit/analysistest"
	"implicitlayout/internal/analysis/unsafeview"
)

func TestUnsafeview(t *testing.T) {
	analysistest.Run(t, "testdata", unsafeview.Analyzer, "outside", "internal/mmapio")
}
