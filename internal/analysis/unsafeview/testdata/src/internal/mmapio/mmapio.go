// Package mmapio models the allowlisted package: unsafe.Slice is legal
// here, but only behind the View/Bytes guard pattern.
package mmapio

import "unsafe"

// view is the canonical checked cast: a length-multiple guard and an
// alignment guard both precede the reinterpretation.
func view(b []byte) []uint64 {
	var z uint64
	w := int(unsafe.Sizeof(z))
	if len(b)%w != 0 {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%unsafe.Alignof(z) != 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(p), len(b)/w)
}

// bytes goes the other direction: byte has width 1 and alignment 1, so
// no guard is required.
func bytes(a []uint64) []byte {
	p := unsafe.Pointer(unsafe.SliceData(a))
	return unsafe.Slice((*byte)(p), 8*len(a))
}

// unguarded reinterprets with neither check: both findings fire.
func unguarded(b []byte) []uint32 {
	p := unsafe.Pointer(unsafe.SliceData(b))
	return unsafe.Slice((*uint32)(p), len(b)/4) // want `no length-multiple guard` `no alignment guard`
}

// halfGuarded checks the length but not the alignment.
func halfGuarded(b []byte) []uint32 {
	if len(b)%4 != 0 {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	return unsafe.Slice((*uint32)(p), len(b)/4) // want `no alignment guard`
}

// rawAdd: pointer arithmetic is outside the pattern even here.
func rawAdd(p unsafe.Pointer) unsafe.Pointer {
	return unsafe.Add(p, 8) // want `unsafe\.Add is outside the View/Bytes pattern`
}
