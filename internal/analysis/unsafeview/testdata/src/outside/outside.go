// Package outside models engine code that is NOT on the unsafe
// allowlist: any reinterpretation here must be reported, size queries
// must not be.
package outside

import "unsafe"

type hdr struct{ magic, count uint64 }

// Size queries reinterpret nothing and are legal everywhere.
const hdrSize = unsafe.Sizeof(hdr{})

func deref(p *uint16) byte {
	return *(*byte)(unsafe.Pointer(p)) // want `use of unsafe\.Pointer outside the unsafe allowlist`
}

func slice(p *byte, n int) []byte {
	return unsafe.Slice(p, n) // want `use of unsafe\.Slice outside the unsafe allowlist`
}

func align() uintptr {
	return unsafe.Alignof(hdr{}) // size query: fine
}

// A justified allow waives the ban for a reviewed one-off; the comment
// on its own line covers the declaration below.
//
//lint:allow unsafeview reviewed FFI shim, pointer never dereferenced
func shim(p unsafe.Pointer) uintptr { return uintptr(p) }
