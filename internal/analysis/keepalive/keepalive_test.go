package keepalive_test

import (
	"testing"

	"implicitlayout/internal/analysis/keepalive"
	"implicitlayout/internal/analysis/lintkit/analysistest"
)

func TestKeepalive(t *testing.T) {
	analysistest.Run(t, "testdata", keepalive.Analyzer, "prefetch")
}
