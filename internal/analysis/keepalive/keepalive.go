// Package keepalive defines an analyzer that keeps software-prefetch
// warm-up loads observable to the compiler.
//
// The Khuong–Morin prefetched search loops (search.BSTPrefetch, and the
// upcoming AMAC batched kernels) have no portable prefetch intrinsic to
// call, so they issue an ordinary "warm-up" load of the block they will
// visit a few levels down and accumulate it into a local sink:
//
//	var warm T
//	for i < n {
//		if j := 8*i + 7; j < n {
//			if warm < a[j] { // pull the great-grandchildren's line
//				warm = a[j]
//			}
//		}
//		...
//	}
//
// The sink's value is never used, which is exactly the problem: a
// compiler that proves warm dead may delete the loads, silently turning
// the prefetched kernel back into the slow one — a regression no test
// catches, because the code stays correct. The established idiom pins
// the sink with runtime.KeepAlive(warm) immediately before every
// return, which both keeps the loads live and stays race-free under
// concurrent batch queries (no shared sink).
//
// The analyzer recognizes warm-up sinks by shape — a local variable
// conditionally updated from an index expression inside a loop, where
// the condition compares the variable against that same load — and then
// requires runtime.KeepAlive(sink) to be the statement immediately
// preceding every return located after the warming loop begins.
// Returns before the loop (guard clauses) need no pin: nothing has been
// loaded yet.
package keepalive

import (
	"go/ast"
	"go/token"
	"go/types"

	"implicitlayout/internal/analysis/lintkit"
)

// Analyzer requires a runtime.KeepAlive pin on every exit of a
// prefetch warm-up loop.
var Analyzer = &lintkit.Analyzer{
	Name: "keepalive",
	Doc: "require runtime.KeepAlive pins on prefetch warm-up sinks\n\n" +
		"A local accumulated from in-loop warm-up loads (if sink < a[j] { sink = a[j] }) must be pinned with " +
		"runtime.KeepAlive(sink) immediately before every return after the loop starts, or the compiler may " +
		"delete the prefetching loads.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for fd := range lintkit.EnclosingFuncs(pass.TypesInfo, pass.Files) {
		checkFunc(pass, fd)
	}
	return nil
}

// sink is one detected warm-up accumulator.
type sink struct {
	obj      types.Object
	loopPos  token.Pos // start of the loop doing the warming
	declPos  token.Pos
	keptOnce bool // some KeepAlive(sink) exists in the function
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	sinks := findSinks(pass, fd)
	if len(sinks) == 0 {
		return
	}
	// Which sinks does any KeepAlive call pin?
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isKeepAlive(pass.TypesInfo, call) {
			return true
		}
		if obj := argObj(pass.TypesInfo, call); obj != nil {
			for _, s := range sinks {
				if s.obj == obj {
					s.keptOnce = true
				}
			}
		}
		return true
	})
	for _, s := range sinks {
		if !s.keptOnce {
			pass.Reportf(s.declPos,
				"prefetch warm-up sink %s is never pinned: the compiler may delete the warming loads; add runtime.KeepAlive(%s) before every return",
				s.obj.Name(), s.obj.Name())
		}
	}
	// Every return after a sink's loop start must be immediately
	// preceded by KeepAlive(sink) in its statement list.
	checkReturns(pass, fd.Body, sinks)
}

// findSinks detects warm-up accumulators: inside a for/range loop, an
// if statement whose condition compares a local variable against an
// index expression and whose body assigns that index expression (or
// any indexed load) to the variable.
func findSinks(pass *lintkit.Pass, fd *ast.FuncDecl) []*sink {
	var sinks []*sink
	seen := make(map[types.Object]bool)
	var loops []token.Pos // enclosing loop starts, innermost last
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.Pos())
			ast.Inspect(bodyOf(n), walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.IfStmt:
			if len(loops) == 0 {
				return true
			}
			obj := warmSinkOf(pass.TypesInfo, n)
			if obj != nil && !seen[obj] && obj.Parent() != pass.Pkg.Scope() {
				seen[obj] = true
				sinks = append(sinks, &sink{obj: obj, loopPos: loops[0], declPos: obj.Pos()})
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return sinks
}

func bodyOf(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// warmSinkOf matches `if v OP a[j] { v = <expr with index> }` (either
// operand order) and returns v's object.
func warmSinkOf(info *types.Info, ifs *ast.IfStmt) types.Object {
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return nil
	}
	var v *ast.Ident
	if id, ok := ast.Unparen(cond.X).(*ast.Ident); ok && isIndexLoad(cond.Y) {
		v = id
	} else if id, ok := ast.Unparen(cond.Y).(*ast.Ident); ok && isIndexLoad(cond.X) {
		v = id
	} else {
		return nil
	}
	obj := info.Uses[v]
	if obj == nil {
		return nil
	}
	// The body must feed the same variable from an indexed load.
	for _, s := range ifs.Body.List {
		asg, ok := s.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			continue
		}
		lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok || info.Uses[lhs] != obj {
			continue
		}
		if isIndexLoad(asg.Rhs[0]) {
			return obj
		}
	}
	return nil
}

func isIndexLoad(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.IndexExpr)
	return ok
}

// checkReturns enforces the immediately-preceding-KeepAlive rule on
// every return statement after each sink's warming loop.
func checkReturns(pass *lintkit.Pass, body *ast.BlockStmt, sinks []*sink) {
	var walkList func(list []ast.Stmt)
	var walk func(n ast.Node) bool
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			if ret, ok := s.(*ast.ReturnStmt); ok {
				for _, sk := range sinks {
					if ret.Pos() < sk.loopPos || !sk.keptOnce {
						continue // guard-clause return, or already reported as never-pinned
					}
					if i == 0 || !keepsAlive(pass.TypesInfo, list[i-1], sk.obj) {
						pass.Reportf(ret.Pos(),
							"return without pinning warm-up sink %s: add runtime.KeepAlive(%s) immediately before this return",
							sk.obj.Name(), sk.obj.Name())
					}
				}
				continue
			}
			ast.Inspect(s, walk)
		}
	}
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			walkList(n.List)
			return false
		case *ast.CaseClause:
			walkList(n.Body)
			return false
		case *ast.CommClause:
			walkList(n.Body)
			return false
		case *ast.FuncLit:
			return false // separate function, separate discipline
		}
		return true
	}
	walkList(body.List)
}

// keepsAlive reports whether stmt is runtime.KeepAlive(obj).
func keepsAlive(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || !isKeepAlive(info, call) {
		return false
	}
	return argObj(info, call) == obj
}

func isKeepAlive(info *types.Info, call *ast.CallExpr) bool {
	fn := lintkit.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "runtime" && fn.Name() == "KeepAlive"
}

func argObj(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}
