// Package prefetch models the Khuong–Morin warm-up idiom: an in-loop
// conditional load accumulated into a sink that must stay observable.
package prefetch

import "runtime"

// good mirrors search.BSTPrefetch: the sink is pinned immediately
// before every return after the warming loop begins.
func good(a []uint64, key uint64) int {
	if len(a) == 0 {
		return -1 // guard clause before the loop: nothing loaded yet
	}
	var warm uint64
	i := 0
	for i < len(a) {
		if j := 8*i + 7; j < len(a) {
			if warm < a[j] {
				warm = a[j]
			}
		}
		if a[i] == key {
			runtime.KeepAlive(warm)
			return i
		}
		i++
	}
	runtime.KeepAlive(warm)
	return -1
}

// neverPinned has no KeepAlive at all: the compiler may prove warm dead
// and delete every warming load.
func neverPinned(a []uint64) int {
	var warm uint64 // want `prefetch warm-up sink warm is never pinned`
	for i := range a {
		if warm < a[i] {
			warm = a[i]
		}
	}
	return len(a)
}

// halfPinned pins one exit and forgets the other.
func halfPinned(a []uint64, key uint64) bool {
	var warm uint64
	for i := range a {
		if warm < a[i] {
			warm = a[i]
		}
		if a[i] == key {
			runtime.KeepAlive(warm)
			return true
		}
	}
	return false // want `return without pinning warm-up sink warm`
}

// plainMax is a real max-reduction, not a warm-up: the accumulated
// value is used, so the compiler cannot delete the loads. The analyzer
// still sees the warm-up shape; the justified waiver records why no pin
// is needed.
func plainMax(a []uint64) uint64 {
	//lint:allow keepalive m is a real max-reduction whose value is returned; the loads are live without a pin
	var m uint64
	for i := range a {
		if m < a[i] {
			m = a[i]
		}
	}
	return m
}
