package fixdb

// Test files are exempt: a test that wants to ignore Close can. No
// finding is expected anywhere in this file.
func drainForTest(db *DB) {
	db.Put(1, 2)
	db.Close()
}
