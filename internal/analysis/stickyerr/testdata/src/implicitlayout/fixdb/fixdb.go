// Package fixdb models the durable API: module-declared methods whose
// error results are the durability acknowledgment.
package fixdb

import "implicitlayout/internal/blockio"

type DB struct{}

func (db *DB) Put(k, v uint64) error       { return nil }
func (db *DB) Delete(k uint64) error       { return nil }
func (db *DB) Close() error                { return nil }
func (db *DB) Get(k uint64) (uint64, bool) { return 0, false }
func (db *DB) Stats() (int, error)         { return 0, nil }

func useBad(db *DB) {
	db.Put(1, 2)     // want `error result of DB\.Put discarded`
	defer db.Close() // want `error result of DB\.Close discarded by defer`
	_ = db.Delete(3) // want `error result of DB\.Delete assigned to blank`
	go db.Close()    // want `error result of DB\.Close discarded by go`
}

// SegWriter models the streaming segment writer: a shard append or the
// finishing frame that fails unreported leaves a torn stream behind an
// otherwise-successful-looking merge.
type SegWriter struct{}

func (w *SegWriter) AppendShard(keys, vals []uint64) error { return nil }
func (w *SegWriter) Finish() error                         { return nil }

func useSegWriter(w *SegWriter) {
	w.AppendShard(nil, nil) // want `error result of SegWriter\.AppendShard discarded`
	_ = w.Finish()          // want `error result of SegWriter\.Finish assigned to blank`
}

func useSegWriterGood(w *SegWriter) error {
	if err := w.AppendShard(nil, nil); err != nil {
		return err
	}
	return w.Finish()
}

// Server and Client model the wire serving layer: Serve's return is the
// only record of why a listener died, and Do's error is the only record
// that a response never came.
type Server struct{}

func (s *Server) Serve(lis any) error { return nil }
func (s *Server) Close() error        { return nil }

type Client struct{}

func (c *Client) Do(req any) (any, error) { return nil, nil }
func (c *Client) Flush() error            { return nil }

func useWireBad(s *Server, c *Client) {
	go s.Serve(nil)  // want `error result of Server\.Serve discarded by go`
	c.Flush()        // want `error result of Client\.Flush discarded`
	_, _ = c.Do(nil) // want `error result of Client\.Do assigned to blank`
	s.Serve(nil)     // want `error result of Server\.Serve discarded`
}

func useWireGood(s *Server, c *Client) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(nil) }()
	resp, err := c.Do(nil)
	_ = resp
	if err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	if err := s.Close(); err != nil {
		return err
	}
	return <-serveErr
}

func useBlockio() {
	blockio.WriteFileAtomic("MANIFEST", nil) // want `error result of blockio\.WriteFileAtomic discarded`
}

func useGood(db *DB) error {
	if err := db.Put(1, 2); err != nil {
		return err
	}
	// Methods off the contract list are not the analyzer's business.
	db.Get(5)
	// The contract is "the error reaches a variable" — flow after that
	// is vet's territory.
	n, err := db.Stats()
	_ = n
	if err != nil {
		return err
	}
	return db.Close()
}

// useWaived records a site where dropping the error is argued and
// waived rather than silently ignored.
func useWaived(db *DB) {
	//lint:allow stickyerr best-effort close on the error path; the primary error is already being returned
	db.Close()
}
