// Package blockio stubs the module's atomic-write functions, which are
// on the analyzer's default function list.
package blockio

func WriteFileAtomic(path string, b []byte) error { return nil }

func SyncDir(dir string) error { return nil }
