package stickyerr_test

import (
	"testing"

	"implicitlayout/internal/analysis/lintkit/analysistest"
	"implicitlayout/internal/analysis/stickyerr"
)

func TestStickyerr(t *testing.T) {
	analysistest.Run(t, "testdata", stickyerr.Analyzer, "implicitlayout/fixdb")
}
