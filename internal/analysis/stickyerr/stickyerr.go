// Package stickyerr defines a scoped error-consumption analyzer for the
// durable API.
//
// Since PR 4, the write path's error results ARE the durability
// contract: a nil return from Put/Delete is the acknowledgment that the
// record reached the log, Flush/Close surface the sticky first-I/O
// error, and a dropped error means code builds on a write that was
// never acknowledged. Generic errcheck linters are too broad to gate CI
// on (they flag every fmt.Fprintf); this analyzer checks exactly the
// calls whose errors the engine's contract forbids dropping:
//
//   - methods named by the "methods" flag (default Put, Delete, Flush,
//     Close, WriteTo, WriteBlock, AppendShard, Finish, Serve, Do) whose
//     receiver type is declared in this module (flag "module", default
//     implicitlayout) — so a discarded os.File.Close elsewhere is out
//     of scope, but a discarded DB.Close, blockio.Writer.WriteBlock,
//     streaming segment writer AppendShard/Finish, wire server Serve,
//     or wire client Do is a finding (a dropped Serve error hides why
//     the listener died; a dropped Do error builds on a response that
//     never came);
//   - package-level functions named by the "funcs" flag (default
//     WriteFileAtomic, SyncDir) declared in this module.
//
// A call is reported when its error result is discarded: used as a
// statement, deferred, launched with go, or assigned to blank. Test
// files are exempt (a test that wants to ignore Close can), as are
// calls whose error lands in a non-blank variable — even one the code
// later ignores; single-assignment flow is vet's territory, the
// contract here is "the error must at least reach a variable".
package stickyerr

import (
	"go/ast"
	"go/types"
	"strings"

	"implicitlayout/internal/analysis/lintkit"
)

// Analyzer reports discarded error results from the durable API's
// contract methods.
var Analyzer = &lintkit.Analyzer{
	Name: "stickyerr",
	Doc: "require consumption of the durable API's error results\n\n" +
		"Reports discarded errors from module-declared methods (Put/Delete/Flush/Close/WriteTo/WriteBlock/AppendShard/Finish/Serve/Do) and " +
		"blockio's atomic-write functions: a dropped error silently builds on an unacknowledged write.",
	Run: run,
}

var (
	methodNames = "Put,Delete,Flush,Close,WriteTo,WriteBlock,AppendShard,Finish,Serve,Do"
	funcNames   = "WriteFileAtomic,SyncDir"
	modulePath  = "implicitlayout"
)

func init() {
	Analyzer.Flags.StringVar(&methodNames, "methods", methodNames,
		"comma-separated method names whose error results must be consumed (module-declared receivers only)")
	Analyzer.Flags.StringVar(&funcNames, "funcs", funcNames,
		"comma-separated function names whose error results must be consumed (module-declared only)")
	Analyzer.Flags.StringVar(&modulePath, "module", modulePath,
		"module path prefix scoping the checked declarations")
}

func run(pass *lintkit.Pass) error {
	methods := nameSet(methodNames)
	funcs := nameSet(funcNames)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		checkFile(pass, f, methods, funcs)
	}
	return nil
}

func nameSet(csv string) map[string]bool {
	set := make(map[string]bool)
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			set[n] = true
		}
	}
	return set
}

func isTestFile(pass *lintkit.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.FileStart).Filename, "_test.go")
}

func checkFile(pass *lintkit.Pass, f *ast.File, methods, funcs map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				report(pass, call, methods, funcs, "discarded")
			}
			return true
		case *ast.DeferStmt:
			report(pass, n.Call, methods, funcs, "discarded by defer")
			return true
		case *ast.GoStmt:
			report(pass, n.Call, methods, funcs, "discarded by go")
			return true
		case *ast.AssignStmt:
			checkAssign(pass, n, methods, funcs)
			return true
		}
		return true
	})
}

// checkAssign flags contract calls whose error result position is
// assigned to blank.
func checkAssign(pass *lintkit.Pass, asg *ast.AssignStmt, methods, funcs map[string]bool) {
	if len(asg.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errIdx, ok := contractCall(pass, call, methods, funcs)
	if !ok || errIdx >= len(asg.Lhs) {
		return
	}
	if id, isIdent := ast.Unparen(asg.Lhs[errIdx]).(*ast.Ident); isIdent && id.Name == "_" {
		pass.Reportf(call.Pos(), "error result of %s assigned to blank: %s", label(fn), contractMsg)
	}
}

const contractMsg = "the return is the durability acknowledgment; check it"

func report(pass *lintkit.Pass, call *ast.CallExpr, methods, funcs map[string]bool, how string) {
	if fn, _, ok := contractCall(pass, call, methods, funcs); ok {
		pass.Reportf(call.Pos(), "error result of %s %s: %s", label(fn), how, contractMsg)
	}
}

// contractCall reports whether call is a contract call whose results
// include an error, returning the callee and the error result index.
func contractCall(pass *lintkit.Pass, call *ast.CallExpr, methods, funcs map[string]bool) (*types.Func, int, bool) {
	fn := lintkit.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !inModule(fn.Pkg().Path()) {
		return nil, 0, false
	}
	isMethod := lintkit.ReceiverNamed(fn) != nil
	if isMethod && !methods[fn.Name()] || !isMethod && !funcs[fn.Name()] {
		return nil, 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, 0, false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return fn, i, true
		}
	}
	return nil, 0, false
}

func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

func label(fn *types.Func) string {
	if named := lintkit.ReceiverNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
