// Package snapdb models the engine's snapshot pattern: immutable state
// published through one atomic.Pointer field, readers loading it once.
package snapdb

import "sync/atomic"

type state struct {
	runs []int
}

type DB struct {
	state atomic.Pointer[state]
	aux   atomic.Pointer[state]
}

// Get is the disciplined reader: one load, the whole operation served
// from that snapshot.
func (db *DB) Get(k int) bool {
	st := db.state.Load()
	return st != nil && len(st.runs) > k
}

// GetTorn is the PR-4-style regression: the second Load may observe a
// different epoch than the first.
func (db *DB) GetTorn(k int) bool {
	if db.state.Load() == nil {
		return false
	}
	st := db.state.Load() // want `db\.state loaded more than once in GetTorn`
	return len(st.runs) > k
}

// twoFields loads two DIFFERENT fields once each: not a tear.
func (db *DB) twoFields() (bool, bool) {
	return db.state.Load() != nil, db.aux.Load() != nil
}

// hijack publishes outside the designated helpers.
func (db *DB) hijack(s *state) {
	db.state.Store(s) // want `snapshot publish db\.state\.Store outside the publish helpers`
}

// freezeLocked is on the default publisher list, so its swap is the
// legitimate commit point.
func (db *DB) freezeLocked(s *state) {
	db.state.Store(s)
}

// mergeOne shows the sanctioned waiver: a publisher re-reads the
// pointer at the swap point under the mutex, with a justified allow.
func (db *DB) mergeOne(s *state) {
	cur := db.state.Load()
	_ = cur
	//lint:allow snapload deliberate re-read at the swap point: the lock is held, so this sees entries added since the first snapshot
	cur = db.state.Load()
	db.state.Store(s)
}
