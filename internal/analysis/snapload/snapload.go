// Package snapload defines an analyzer enforcing the engine's snapshot
// discipline on atomic.Pointer state fields.
//
// The DB publishes all immutable state (frozen memtables + run stack)
// through a single atomic.Pointer[dbstate] field. The correctness
// contract, established in PR 3 and relied on by every reader since,
// has two halves:
//
//  1. One load per operation. A reader loads the snapshot pointer
//     exactly once and serves the whole operation from that value.
//     Loading it twice in one operation tears the point-in-time view:
//     a flush or merge between the loads hands the second half of the
//     operation a different epoch (duplicated or vanished records in a
//     Range, a Get consulting runs that no longer match the frozen
//     list it already walked).
//  2. Publish only through the swap helpers. Store/Swap/CompareAndSwap
//     on the field is the commit point of the flush/merge protocol and
//     must follow its ordering (segment written → manifest committed →
//     snapshot swapped). Only the functions named by the "publishers"
//     flag may call them.
//
// The analyzer reports, for every field of type sync/atomic.Pointer[T]:
// a function whose body loads the same field expression more than once
// (waivable with //lint:allow where the second load is a publisher's
// deliberate under-mutex re-read), and any Store/Swap/CompareAndSwap
// outside the publisher set.
package snapload

import (
	"go/ast"
	"go/types"
	"strings"

	"implicitlayout/internal/analysis/lintkit"
)

// Analyzer enforces one-load snapshot reads and publisher-only swaps on
// atomic.Pointer fields.
var Analyzer = &lintkit.Analyzer{
	Name: "snapload",
	Doc: "enforce snapshot discipline on atomic.Pointer state fields\n\n" +
		"Reports functions that Load the same atomic.Pointer field more than once (a torn point-in-time view) " +
		"and Store/Swap/CompareAndSwap calls outside the designated publish helpers.",
	Run: run,
}

// publishers names the functions allowed to swap a snapshot pointer:
// the DB's open/recovery paths and the compactor's commit points.
var publishers = "Open,openDir,flushRecovered,freezeLocked,flushOne,mergeOne"

func init() {
	Analyzer.Flags.StringVar(&publishers, "publishers", publishers,
		"comma-separated function names allowed to Store/Swap/CompareAndSwap snapshot pointers")
}

func run(pass *lintkit.Pass) error {
	pubs := make(map[string]bool)
	for _, name := range strings.Split(publishers, ",") {
		if name = strings.TrimSpace(name); name != "" {
			pubs[name] = true
		}
	}
	for fd := range lintkit.EnclosingFuncs(pass.TypesInfo, pass.Files) {
		checkFunc(pass, fd, pubs)
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl, pubs map[string]bool) {
	loads := make(map[string]int) // rendered field expr -> count
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if fn == nil || !isAtomicPointerMethod(fn) {
			return true
		}
		field := types.ExprString(sel.X)
		switch fn.Name() {
		case "Load":
			loads[field]++
			if loads[field] >= 2 { // each extra load is its own finding (and needs its own waiver)
				pass.Reportf(call.Pos(),
					"%s loaded more than once in %s: a second Load sees a different epoch and tears the point-in-time view; load the snapshot once and reuse it",
					field, fd.Name.Name)
			}
		case "Store", "Swap", "CompareAndSwap":
			if !pubs[fd.Name.Name] {
				pass.Reportf(call.Pos(),
					"snapshot publish %s.%s outside the publish helpers (%s): swaps must follow the segment→manifest→snapshot commit ordering",
					field, fn.Name(), publishers)
			}
		}
		return true
	})
}

// isAtomicPointerMethod reports whether fn is a method of
// sync/atomic.Pointer[T].
func isAtomicPointerMethod(fn *types.Func) bool {
	named := lintkit.ReceiverNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
