package snapload_test

import (
	"testing"

	"implicitlayout/internal/analysis/lintkit/analysistest"
	"implicitlayout/internal/analysis/snapload"
)

func TestSnapload(t *testing.T) {
	analysistest.Run(t, "testdata", snapload.Analyzer, "snapdb")
}
