// Package syncorder defines an analyzer that keeps disk syncs out of
// lock critical sections.
//
// PR 4's group-commit fix moved the SyncWrites fsync to the ack side:
// the write-ahead-log append and memtable apply happen under db.mu, the
// lock is released, and only then does the writer fsync — so concurrent
// readers never stall behind a disk sync, and one writer's fsync covers
// every append that beat it. The invariant is easy to regress: any
// future code path that calls File.Sync, blockio.WriteFileAtomic, or
// blockio.SyncDir — directly or through a helper — while a contended
// mutex is held reintroduces multi-millisecond reader stalls.
//
// The analyzer computes, per package, the set of "syncing" functions: a
// function that directly fsyncs ((*os.File).Sync, or a call into
// internal/blockio's WriteFileAtomic/SyncDir, both of which fsync
// internally), or that calls a same-package syncing function
// (transitive closure over the package-local call graph). It then walks
// every function tracking which tracked mutexes are held — Lock/RLock
// through Unlock/RUnlock on selector paths whose final field name is in
// the "locks" flag (default "mu", the reader-contended locks; the
// compactor's serialization mutex is deliberately named differently) —
// and reports any call to a syncing function inside a held region.
// Deliberate exceptions (the freeze path's amortized seal) carry
// //lint:allow syncorder waivers with their justification.
package syncorder

import (
	"go/ast"
	"go/types"
	"strings"

	"implicitlayout/internal/analysis/lintkit"
)

// Analyzer reports fsync-reaching calls made while a tracked mutex is
// held.
var Analyzer = &lintkit.Analyzer{
	Name: "syncorder",
	Doc: "flag disk syncs performed while a tracked mutex is held\n\n" +
		"Reports calls that reach File.Sync / blockio.WriteFileAtomic / blockio.SyncDir (directly or through " +
		"same-package helpers) between Lock and Unlock of a tracked mutex; fsync belongs after the lock is " +
		"released (ack-side group commit).",
	Run: run,
}

// trackedLocks names the mutex fields whose critical sections must not
// sync: the reader-contended ones.
var trackedLocks = "mu"

// blockioPkg is the path suffix of the framed-block I/O package whose
// writers fsync internally.
var blockioPkg = "internal/blockio"

func init() {
	Analyzer.Flags.StringVar(&trackedLocks, "locks", trackedLocks,
		"comma-separated mutex field names whose critical sections must not reach an fsync")
}

func run(pass *lintkit.Pass) error {
	locks := make(map[string]bool)
	for _, name := range strings.Split(trackedLocks, ",") {
		if name = strings.TrimSpace(name); name != "" {
			locks[name] = true
		}
	}
	funcs := lintkit.EnclosingFuncs(pass.TypesInfo, pass.Files)
	syncers := syncingFuncs(pass, funcs)
	for fd := range funcs {
		w := &walker{pass: pass, locks: locks, syncers: syncers}
		w.stmts(fd.Body.List, map[string]bool{})
	}
	return nil
}

// syncingFuncs returns the package-local functions that reach an fsync:
// direct sync sites plus the transitive closure over same-package
// calls.
func syncingFuncs(pass *lintkit.Pass, funcs map[*ast.FuncDecl]*types.Func) map[*types.Func]bool {
	calls := make(map[*types.Func][]*types.Func) // caller -> callees (same package)
	syncers := make(map[*types.Func]bool)
	for fd, fn := range funcs {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintkit.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if isDirectSync(callee) {
				syncers[fn] = true
			} else if callee.Pkg() == pass.Pkg {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if syncers[caller] {
				continue
			}
			for _, callee := range callees {
				if syncers[callee] {
					syncers[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return syncers
}

// isDirectSync reports whether fn itself syncs to disk: (*os.File).Sync
// or blockio's atomic-write primitives (which fsync internally).
func isDirectSync(fn *types.Func) bool {
	if lintkit.IsMethodOf(fn, "os", "File", "Sync") {
		return true
	}
	if fn.Pkg() != nil && lintkit.PkgPathMatches(fn.Pkg().Path(), blockioPkg) {
		switch fn.Name() {
		case "WriteFileAtomic", "SyncDir":
			return true
		}
	}
	return false
}

// walker tracks held mutexes through a statement list. Lock adds the
// mutex's rendered selector path to held; Unlock removes it; nested
// control-flow bodies get a copy, so an early-unlock-and-return branch
// does not release the lock on the fallthrough path.
type walker struct {
	pass    *lintkit.Pass
	locks   map[string]bool
	syncers map[*types.Func]bool
}

func (w *walker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mu, op, ok := w.lockOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[mu] = true
			case "Unlock", "RUnlock":
				delete(held, mu)
			}
			return
		}
		w.checkCalls(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return, not here: the region
		// extends to the end of the function, which the held set
		// already models. Any other deferred call runs after the
		// critical section too — skip.
		if _, _, ok := w.lockOp(s.Call); !ok {
			// Argument expressions evaluate now, under the lock.
			for _, arg := range s.Call.Args {
				w.checkCalls(arg, held)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.checkCalls(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkCalls(s.Cond, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.checkCalls(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkCalls(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine runs concurrently, not under this lock.
	default:
		// Assignments, returns, sends, etc.: scan contained
		// expressions for calls.
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // runs later, not necessarily under the lock
			}
			if call, ok := n.(*ast.CallExpr); ok {
				w.checkCall(call, held)
			}
			return true
		})
	}
}

// checkCalls scans an expression (not a FuncLit body) for calls made
// while held.
func (w *walker) checkCalls(e ast.Expr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.checkCall(call, held)
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	callee := lintkit.CalleeFunc(w.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if isDirectSync(callee) || w.syncers[callee] {
		mus := make([]string, 0, len(held))
		for mu := range held {
			mus = append(mus, mu)
		}
		w.pass.Reportf(call.Pos(),
			"%s reaches an fsync while %s is held; sync after releasing the lock (ack-side group commit, PR 4)",
			calleeLabel(callee), strings.Join(mus, ", "))
	}
}

// lockOp decodes e as mu.Lock()/Unlock()/RLock()/RUnlock() on a tracked
// sync.Mutex or sync.RWMutex path and returns the rendered mutex
// expression.
func (w *walker) lockOp(e ast.Expr) (mu, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, _ := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	named := lintkit.ReceiverNamed(fn)
	if named == nil {
		return "", "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	// Track only mutexes whose final path element is a configured name.
	if inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr); isSel {
		if !w.locks[inner.Sel.Name] {
			return "", "", false
		}
	} else if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
		if !w.locks[id.Name] {
			return "", "", false
		}
	} else {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func calleeLabel(fn *types.Func) string {
	if named := lintkit.ReceiverNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
