package syncorder_test

import (
	"testing"

	"implicitlayout/internal/analysis/lintkit/analysistest"
	"implicitlayout/internal/analysis/syncorder"
)

func TestSyncorder(t *testing.T) {
	analysistest.Run(t, "testdata", syncorder.Analyzer, "syncdb")
}
