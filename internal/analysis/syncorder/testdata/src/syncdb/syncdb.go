// Package syncdb models the ack-side group-commit discipline: no call
// that reaches an fsync may run while the reader-contended mutex "mu"
// is held.
package syncdb

import (
	"internal/blockio"
	"os"
	"sync"
)

type DB struct {
	mu   sync.Mutex
	gate sync.Mutex // untracked name: the compactor-style serialization lock
	f    *os.File
}

// putSyncUnderLock is the PR-4 regression reintroduced: the fsync sits
// inside the critical section, stalling every concurrent reader.
func (db *DB) putSyncUnderLock() {
	db.mu.Lock()
	db.f.Sync() // want `File\.Sync reaches an fsync while db\.mu is held`
	db.mu.Unlock()
}

// putAckSide is the fix: append under the lock, release, then sync.
func (db *DB) putAckSide() {
	db.mu.Lock()
	db.mu.Unlock()
	db.f.Sync()
}

// freeze reaches the fsync through a same-package helper: the
// transitive closure still catches it.
func (db *DB) freeze() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.seal() // want `DB\.seal reaches an fsync while db\.mu is held`
}

// seal itself holds no lock; it is merely a syncing function.
func (db *DB) seal() {
	db.f.Sync()
}

// manifest: blockio's atomic writers fsync internally, so they count as
// direct syncs.
func (db *DB) manifest() {
	db.mu.Lock()
	defer db.mu.Unlock()
	blockio.WriteFileAtomic("MANIFEST", nil) // want `WriteFileAtomic reaches an fsync while db\.mu is held`
}

// compactSync: locks not named by the -syncorder.locks flag are not
// reader-contended and do not gate syncs.
func (db *DB) compactSync() {
	db.gate.Lock()
	db.f.Sync()
	db.gate.Unlock()
}

// branchy: an early unlock-and-return branch releases the lock only on
// that path; the fallthrough is still inside the critical section.
func (db *DB) branchy(ok bool) {
	db.mu.Lock()
	if ok {
		db.mu.Unlock()
		db.f.Sync()
		return
	}
	db.f.Sync() // want `File\.Sync reaches an fsync while db\.mu is held`
	db.mu.Unlock()
}

// sealWaived carries the sanctioned amortization waiver.
func (db *DB) sealWaived() {
	db.mu.Lock()
	defer db.mu.Unlock()
	//lint:allow syncorder amortized seal: one fsync per MemLimit writes, ordered against concurrent appends
	db.seal()
}
