// Package blockio is a stub of the engine's framed-block I/O package:
// the analyzer treats these writers as direct fsyncs because the real
// ones sync internally.
package blockio

func WriteFileAtomic(path string, b []byte) error { return nil }

func SyncDir(dir string) error { return nil }
