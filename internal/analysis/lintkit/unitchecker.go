package lintkit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool=` driver protocol, so
// cmd/implicitlint plugs into the build system exactly like vet itself:
//
//	-V=full    print an executable version line (for go's build cache)
//	-flags     print supported flags as JSON (go vet validates its
//	           command line against them)
//	unit.cfg   analyze the single compilation unit the JSON config
//	           describes
//
// The config names the unit's Go files and, crucially, the export-data
// file of every dependency the build already compiled — so typechecking
// a unit is parse + one gc-importer pass, never a transitive source
// load. Findings print to stderr as "file:line:col: message (analyzer)"
// and a finding makes the tool exit 1, which go vet reports per
// package. The protocol and config shape follow
// golang.org/x/tools/go/analysis/unitchecker (the contract is go vet's,
// not ours to vary), reimplemented here on the standard library.

// unitConfig is the JSON compilation-unit description go vet writes.
// Fields this driver does not consume (fact plumbing, gccgo support)
// are listed to document the full contract but left unused: the suite's
// analyzers are all intra-package, so no .vetx facts are read or
// written.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built from this framework. It
// parses the protocol flags, then either services a protocol query or
// analyzes the configured unit and exits with 1 if any finding
// survived suppression.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := validate(analyzers); err != nil {
		log.Fatal(err)
	}
	enabled := registerFlags(analyzers)
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Var(versionFlag{}, "V", "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] unit.cfg   (via go vet -vettool=%s)\n", progname, progname)
		fmt.Fprintf(os.Stderr, "       %s [flags] packages...\n", progname)
		flag.PrintDefaults()
		os.Exit(2)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	run := enabled()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], run)
		return
	}
	// Not a vet config: standalone mode over package patterns.
	os.Exit(RunStandalone(run, args))
}

// validate rejects duplicate or unnamed analyzers before any driver
// work.
func validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		switch {
		case a.Name == "":
			return fmt.Errorf("analyzer with empty name")
		case a.Run == nil:
			return fmt.Errorf("analyzer %s has no Run function", a.Name)
		case seen[a.Name]:
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// registerFlags wires each analyzer into the command line: a boolean
// -NAME flag selects analyzers (as with go vet's built-ins: if any is
// set true only those run; set-false analyzers are dropped), and each
// analyzer's own flags appear as -NAME.flag. It returns a closure
// resolving the enabled set after flag.Parse.
func registerFlags(analyzers []*Analyzer) func() []*Analyzer {
	selected := make(map[string]*triState, len(analyzers))
	for _, a := range analyzers {
		ts := new(triState)
		flag.Var(ts, a.Name, "enable only the "+a.Name+" analysis")
		selected[a.Name] = ts
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	return func() []*Analyzer {
		anyTrue := false
		for _, ts := range selected {
			if *ts == setTrue {
				anyTrue = true
			}
		}
		var keep []*Analyzer
		for _, a := range analyzers {
			switch *selected[a.Name] {
			case setTrue:
				keep = append(keep, a)
			case unset:
				if !anyTrue {
					keep = append(keep, a)
				}
			case setFalse:
				// dropped
			}
		}
		return keep
	}
}

// runUnit analyzes one go vet compilation unit and exits.
func runUnit(cfgFile string, analyzers []*Analyzer) {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.VetxOnly {
		// go vet runs the tool over dependencies only to collect facts.
		// This suite keeps no cross-package facts, so a fact-only visit
		// has nothing to do — but the (empty) fact output must exist for
		// the caller's bookkeeping.
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatal(err)
			}
		}
		os.Exit(0)
	}
	fset := token.NewFileSet()
	diags, err := analyzeUnit(fset, cfg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	exit := 0
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		exit = 1
	}
	os.Exit(exit)
}

func readUnitConfig(filename string) (*unitConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyzeUnit parses and typechecks the unit against the build's export
// data, then runs the analyzers.
func analyzeUnit(fset *token.FileSet, cfg *unitConfig, analyzers []*Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring etc.
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunAnalyzers(analyzers, fset, files, pkg, info)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printFlags services the -flags query: go vet validates the flags on
// its own command line against this list before invoking the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements -V=full: go's build cache identifies the tool
// by this line, hashing the executable so a rebuilt linter invalidates
// cached vet results. The output shape ("<prog> version devel ...
// buildID=<hex>") is what cmd/go's toolID parser accepts.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel implicitlint buildID=%02x\n", prog, h.Sum(nil))
	os.Exit(0)
	return nil
}

// triState distinguishes an unset -NAME flag from explicit true/false,
// which is what makes "-unsafeview" mean "only unsafeview" while no
// selection flags means "everything".
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (ts *triState) IsBoolFlag() bool { return true }
func (ts *triState) Get() any         { return *ts == setTrue }
func (ts *triState) String() string {
	if ts != nil && *ts == setTrue {
		return "true"
	}
	return "false"
}
func (ts *triState) Set(value string) error {
	switch value {
	case "true", "":
		*ts = setTrue
	case "false":
		*ts = setFalse
	default:
		return fmt.Errorf("invalid boolean %q", value)
	}
	return nil
}
