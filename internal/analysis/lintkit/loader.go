package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
)

// Standalone mode: `implicitlint ./...` without go vet. The unitchecker
// path is the CI gate (it reuses the build's export data and caching);
// this path exists so a developer can run the suite directly. Packages
// are enumerated with `go list` and typechecked with the source
// importer, so it must run from inside the module.

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// RunStandalone analyzes the packages matching patterns and prints
// findings to stderr; the result is the process exit code (1 if any
// finding, 2 on loader errors).
func RunStandalone(analyzers []*Analyzer, patterns []string) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	exit := 0
	for _, p := range pkgs {
		diags, err := analyzeDir(fset, imp, p, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.ImportPath, err)
			exit = 2
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func analyzeDir(fset *token.FileSet, imp types.Importer, p listedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, p.Dir+string(os.PathSeparator)+name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{Importer: imp}
	info := NewTypesInfo()
	pkg, err := tc.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(analyzers, fset, files, pkg, info)
}
