package lintkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments.
//
// A finding is suppressed by a comment of the form
//
//	//lint:allow <analyzer> <justification>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The justification is mandatory: the comment
// records WHY the invariant is waived at this site (e.g. "seal's fsync
// is amortized to one per MemLimit writes"), so a reviewer reading the
// line gets the argument, not just the waiver. An allow comment with no
// justification, or naming an analyzer the suite does not run, is
// reported as a finding in its own right — dead or vague suppressions
// never accumulate silently.

const allowPrefix = "//lint:allow"

// allowSite is one parsed //lint:allow comment.
type allowSite struct {
	analyzer string
	used     bool
}

// allowIndex maps file -> line -> suppressions effective on that line.
type allowIndex map[string]map[int][]*allowSite

// suppressed reports whether d is covered by an allow comment for its
// analyzer, marking the comment used.
func (ai allowIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	if ai == nil || !d.Pos.IsValid() {
		return false
	}
	pos := fset.Position(d.Pos)
	for _, site := range ai[pos.Filename][pos.Line] {
		if site.analyzer == d.Analyzer {
			site.used = true
			return true
		}
	}
	return false
}

// indexAllows parses every //lint:allow comment in files and returns
// the suppression index plus diagnostics for malformed comments.
func indexAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (allowIndex, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	idx := make(allowIndex)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowother — not ours
				}
				name, justification, _ := strings.Cut(strings.TrimSpace(rest), " ")
				switch {
				case name == "":
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "lint:allow names no analyzer (want //lint:allow <analyzer> <justification>)",
						Analyzer: "lintkit",
					})
					continue
				case !known[name]:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "lint:allow names unknown analyzer " + name,
						Analyzer: "lintkit",
					})
					continue
				case strings.TrimSpace(justification) == "":
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "lint:allow " + name + " has no justification; say why the invariant is waived here",
						Analyzer: "lintkit",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				site := &allowSite{analyzer: name}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowSite)
					idx[pos.Filename] = lines
				}
				// The comment covers its own line; a comment that is the
				// whole line (it starts the line's source) covers the next
				// line instead, so suppressions can sit above long calls.
				lines[pos.Line] = append(lines[pos.Line], site)
				if startsLine(fset, f, c) {
					lines[pos.Line+1] = append(lines[pos.Line+1], site)
				}
			}
		}
	}
	return idx, bad
}

// startsLine reports whether comment c is the first token on its line —
// i.e. nothing but the comment occupies the line, so it documents the
// line below rather than the code to its left.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// A trailing comment shares its line with code that began earlier;
	// scan the file's declarations for any node starting on the same
	// line before the comment's column.
	sameLineCode := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || sameLineCode {
			return false
		}
		np := fset.Position(n.Pos())
		if np.Line == pos.Line && np.Column < pos.Column {
			sameLineCode = true
			return false
		}
		// Prune subtrees that end before the line of interest.
		return fset.Position(n.End()).Line >= pos.Line
	})
	return !sameLineCode
}
