// Package analysistest runs a lintkit analyzer over fixture packages
// and checks its findings against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<importpath>/*.go
//
// A fixture line that should be flagged carries a trailing comment
//
//	x := db.state.Load() // want `loaded 2 times`
//
// where each quoted argument (Go string syntax, `...` or "...") is a
// regular expression that must match the message of one finding on that
// line. Lines without a want comment must produce no findings. Because
// the harness runs the same RunAnalyzers path as the real drivers,
// //lint:allow suppressions are live in fixtures too — a fixture can
// assert both that a pattern is flagged and that a justified allow
// comment silences it.
//
// Fixture imports resolve testdata-first: an import path that exists
// under testdata/src is loaded as a fixture (so fixtures can model
// project packages like "implicitlayout/internal/blockio" with small
// stubs), and anything else comes from the standard library via the
// source importer.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"implicitlayout/internal/analysis/lintkit"
)

// Run analyzes each fixture package (an import path under
// testdata/src) with a and reports mismatches against the // want
// expectations through t.
func Run(t *testing.T, testdata string, a *lintkit.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		fp, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture package %s: %v", path, err)
			continue
		}
		diags, err := lintkit.RunAnalyzers([]*lintkit.Analyzer{a}, l.fset, fp.files, fp.pkg, fp.info)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, l.fset, fp.files, diags)
	}
}

// expectation is one `// want` regexp, keyed to its file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// check matches findings against expectations one-to-one.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lintkit.Diagnostic) {
	t.Helper()
	expects, errs := collectWants(fset, files)
	for _, err := range errs {
		t.Error(err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, ex := range expects {
			if ex.met || ex.file != pos.Filename || ex.line != pos.Line {
				continue
			}
			if ex.re.MatchString(d.Message) {
				ex.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, ex := range expects {
		if !ex.met {
			t.Errorf("%s:%d: expected finding matching %s, got none", ex.file, ex.line, ex.raw)
		}
	}
}

// collectWants parses every `// want "re" ...` comment in files.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, []error) {
	var expects []*expectation
	var errs []error
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					text, ok = strings.CutPrefix(c.Text, "//want ")
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitQuoted(strings.TrimSpace(text))
				if err != nil {
					errs = append(errs, fmt.Errorf("%s: bad want comment: %v", pos, err))
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						errs = append(errs, fmt.Errorf("%s: bad want regexp: %v", pos, err))
						continue
					}
					expects = append(expects, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: strconv.Quote(p),
					})
				}
			}
		}
	}
	sort.SliceStable(expects, func(i, j int) bool {
		if expects[i].file != expects[j].file {
			return expects[i].file < expects[j].file
		}
		return expects[i].line < expects[j].line
	})
	return expects, errs
}

// splitQuoted parses a sequence of Go string literals ("..." or `...`).
func splitQuoted(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit, s = s[:end+1], s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit, s = s[:end+2], s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", lit, err)
		}
		out = append(out, unq)
	}
	return out, nil
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader typechecks fixture packages, resolving imports testdata-first
// and std-from-source otherwise.
type loader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*fixturePkg
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*fixturePkg),
	}
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.cache[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	tc := &types.Config{Importer: importerFunc(l.importPkg)}
	info := lintkit.NewTypesInfo()
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{files: files, pkg: pkg, info: info}
	l.cache[path] = fp
	return fp, nil
}

// importPkg resolves an import from within a fixture.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
