// Package lintkit is the repository's self-contained static-analysis
// framework: a deliberately small reimplementation of the
// golang.org/x/tools/go/analysis surface on top of nothing but the
// standard library's go/ast, go/types, and go/importer.
//
// Why not x/tools? Two reasons, both structural. First, the serving
// binary's dependency graph must stay std-only — `go list -deps ./store`
// showing no third-party import is a checked invariant, and an analysis
// framework living in the same module must not be able to violate it by
// accident. Second, the analyzers in the sibling packages are
// project-specific: they encode invariants of THIS engine (checked
// unsafe casts, one-load snapshot discipline, fsync-outside-mutex,
// KeepAlive pinning, the durable API's error contract), so the framework
// under them only needs the subset of the x/tools API those checks use.
//
// The shape mirrors go/analysis on purpose so the analyzers read like
// any other Go analyzer and could be ported to x/tools verbatim:
//
//   - Analyzer describes one check: name, doc, flags, and a Run function.
//   - Pass hands Run one typechecked package and collects Diagnostics.
//   - Findings are suppressed per line with a justified
//     "//lint:allow <analyzer> <reason>" comment (see allow.go) — an
//     UNjustified allow comment is itself a finding, so suppressions
//     cannot silently accumulate.
//
// Three drivers run analyzers:
//
//   - unitchecker.go speaks the `go vet -vettool=` protocol, which is how
//     cmd/implicitlint runs in CI: go vet plans the build, hands each
//     package's files and export data to the tool via a JSON config, and
//     relays line-anchored findings.
//   - loader.go loads packages directly (go list + source importer) for
//     standalone `implicitlint ./...` runs without go vet.
//   - analysistest/ runs an analyzer over testdata fixture packages and
//     checks findings against `// want "regexp"` comments.
package lintkit

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags
	// (-Name, -Name.flag), and //lint:allow comments. It must be a
	// valid identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then details.
	Doc string

	// Flags holds analyzer-specific flags, registered by the drivers
	// under the "Name." prefix.
	Flags flag.FlagSet

	// Run applies the check to one package and reports findings through
	// pass.Report/Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass is one application of one analyzer to one typechecked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	allow allowIndex
}

// A Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report records a finding unless an allow comment suppresses it.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	if p.allow.suppressed(p.Fset, d) {
		return
	}
	p.diags = append(p.diags, d)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies each analyzer to one typechecked package and
// returns every surviving finding in position order. It is the single
// execution path shared by the unitchecker, the standalone loader, and
// analysistest, so suppression semantics cannot drift between drivers.
// Besides the analyzers' own findings it reports malformed //lint:allow
// comments (unknown analyzer name, missing justification): a suppression
// that does not say what it suppresses and why is itself a defect.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	allow, bad := indexAllows(fset, files, analyzers)
	var all []Diagnostic
	all = append(all, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			allow:     allow,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		all = append(all, pass.diags...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Pos < all[j].Pos })
	return all, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers use
// populated — all drivers typecheck through this so no analyzer finds a
// nil map in one driver that another filled in.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// ---- shared type/AST helpers used by the analyzer packages ----

// CalleeFunc returns the *types.Func a call resolves to, or nil for
// calls through function values, builtins, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn != nil {
		// Calls to methods of generic types resolve to the
		// instantiation; normalize to the generic declaration so callees
		// compare equal to the objects in info.Defs.
		fn = fn.Origin()
	}
	return fn
}

// ReceiverNamed returns the named type of a method's receiver,
// unwrapping one pointer, or nil if fn is not a method.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethodOf reports whether fn is a method named name on the named
// type pkgPath.typeName (receiver pointer-ness ignored). Generic types
// match on their origin.
func IsMethodOf(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := ReceiverNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// PkgPathMatches reports whether path equals one of the comma-separated
// patterns or ends with "/"+pattern — so "internal/mmapio" matches the
// package whatever the module is named, without matching
// "otherinternal/mmapio".
func PkgPathMatches(path, patterns string) bool {
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// EnclosingFuncs returns, for each top-level FuncDecl in the files, the
// declaration and its types.Func object. Declarations the typechecker
// could not resolve are skipped.
func EnclosingFuncs(info *types.Info, files []*ast.File) map[*ast.FuncDecl]*types.Func {
	m := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				m[fd] = fn
			}
		}
	}
	return m
}
