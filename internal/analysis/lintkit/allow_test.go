package lintkit_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"implicitlayout/internal/analysis/lintkit"
)

// The fixture declares five functions; the dummy analyzer flags every
// one, and the allow comments decide which findings survive:
//
//   - unguarded has no waiver and must be reported;
//   - covered carries a trailing justified waiver (suppressed);
//   - coveredAbove is waived by a whole-line comment on the line above
//     (suppressed);
//   - the three malformed waivers (no analyzer, unknown analyzer, no
//     justification) must each produce a lintkit finding AND fail to
//     suppress the dummy finding on their function.
const allowSrc = `package p

func unguarded() {}

func covered() {} //lint:allow dummy trailing waiver covers its own line

//lint:allow dummy whole-line waiver covers the next line
func coveredAbove() {}

//lint:allow
func noName() {}

//lint:allow nosuch it is not in the suite
func unknownName() {}

func noWhy() {} //lint:allow dummy
`

func TestAllowSemantics(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_fixture.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := lintkit.NewTypesInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	dummy := &lintkit.Analyzer{
		Name: "dummy",
		Doc:  "flag every function declaration",
		Run: func(pass *lintkit.Pass) error {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Name.Pos(), "boom %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := lintkit.RunAnalyzers([]*lintkit.Analyzer{dummy}, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	wantSub := []string{
		"dummy: boom unguarded",
		"dummy: boom noName", // malformed waiver suppresses nothing
		"dummy: boom unknownName",
		"dummy: boom noWhy",
		"lintkit: lint:allow names no analyzer",
		"lintkit: lint:allow names unknown analyzer nosuch",
		"lintkit: lint:allow dummy has no justification",
	}
	for _, w := range wantSub {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected finding %q in %q", w, got)
		}
	}
	for _, g := range got {
		if strings.Contains(g, "boom covered") {
			t.Errorf("finding on a waived function survived: %q", g)
		}
	}
	if len(diags) != len(wantSub) {
		t.Errorf("got %d findings, want %d: %q", len(diags), len(wantSub), got)
	}
}
