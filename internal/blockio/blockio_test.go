package blockio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	frames := []struct {
		tag     byte
		payload []byte
	}{
		{'a', []byte("hello")},
		{'b', nil},
		{'c', bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, f := range frames {
		if err := bw.WriteBlock(f.tag, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	if bw.Offset() != int64(buf.Len()) {
		t.Fatalf("Offset() = %d, buffer holds %d bytes", bw.Offset(), buf.Len())
	}
	br := NewReader(bytes.NewReader(buf.Bytes()))
	for i, f := range frames {
		tag, payload, err := br.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if tag != f.tag || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: tag %c payload %d bytes; want %c, %d bytes",
				i, tag, len(payload), f.tag, len(f.payload))
		}
	}
	if _, _, err := br.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBlock('x', []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flipping any single byte of the frame must fail: tag and payload
	// are covered by the checksum, the length redirects it, and the
	// stored checksum no longer matches.
	for i := range clean {
		bad := bytes.Clone(clean)
		bad[i] ^= 0x40
		_, _, err := NewReader(bytes.NewReader(bad)).Next()
		if err == nil {
			t.Fatalf("flipped byte %d: frame accepted", i)
		}
	}
}

func TestReaderDetectsTornTail(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBlock('x', []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBlock('y', []byte("second, soon torn")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(full) - 1; cut > HeaderSize+len("first"); cut-- {
		br := NewReader(bytes.NewReader(full[:cut]))
		if _, _, err := br.Next(); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		_, _, err := br.Next()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: torn frame gave %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	for _, content := range []string{"first version", "second version"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("ReadFile = %q, %v; want %q", got, err, content)
		}
	}
	// A failed write must leave the previous version and no temp litter.
	wantErr := errors.New("boom")
	err := WriteFileAtomic(path, func(io.Writer) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("failing write returned %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second version" {
		t.Fatalf("after failed write: %q, %v; want previous version intact", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "artifact" {
		t.Fatalf("directory holds %d entries after failed write; want just the artifact", len(entries))
	}
}

func TestFrameWalk(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	frames := []struct {
		tag     byte
		payload []byte
	}{
		{'x', []byte("zero-copy")},
		{'y', nil},
		{'z', bytes.Repeat([]byte{0x5A}, 1000)},
	}
	for _, f := range frames {
		if err := bw.WriteBlock(f.tag, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	b := buf.Bytes()
	off := 0
	for i, f := range frames {
		tag, payload, next, err := Frame(b, off, true)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if tag != f.tag || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: tag %c, %d bytes; want %c, %d bytes",
				i, tag, len(payload), f.tag, len(f.payload))
		}
		// The payload must alias b, not copy it.
		if len(payload) > 0 && &payload[0] != &b[off+HeaderSize] {
			t.Fatalf("frame %d: payload copied", i)
		}
		off = next
	}
	if _, _, _, err := Frame(b, off, true); err != io.EOF {
		t.Fatalf("walk past the last frame: %v, want io.EOF", err)
	}
}

func TestFrameWalkErrors(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBlock('q', []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()

	// Truncation anywhere inside the frame is ErrUnexpectedEOF.
	for cut := 1; cut < len(b); cut++ {
		if _, _, _, err := Frame(b[:cut], 0, true); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut to %d bytes: %v, want ErrUnexpectedEOF", cut, err)
		}
	}

	// A flipped payload byte is ErrCorrupt with verification on, and
	// sails through with it off (the caller opted out).
	bad := bytes.Clone(b)
	bad[len(bad)-1] ^= 0xFF
	if _, _, _, err := Frame(bad, 0, true); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload, verify on: %v, want ErrCorrupt", err)
	}
	if _, _, _, err := Frame(bad, 0, false); err != nil {
		t.Fatalf("flipped payload, verify off: %v, want nil", err)
	}

	// A corrupted length field fails the bounds check or MaxBlock.
	bad = bytes.Clone(b)
	bad[3] = 0xFF
	if _, _, _, err := Frame(bad, 0, true); err == nil {
		t.Fatalf("absurd length accepted")
	}

	// Offsets outside the buffer are rejected, not sliced.
	if _, _, _, err := Frame(b, len(b)+1, true); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("offset past the end: %v, want ErrCorrupt", err)
	}
	if _, _, _, err := Frame(b, -1, true); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative offset: %v, want ErrCorrupt", err)
	}
}

func TestFrameEdgeCases(t *testing.T) {
	// A zero-length payload frame that is the whole buffer: the frame
	// parses (empty payload, not nil semantics the caller must guess
	// at), next lands exactly at len(b), and the walk then ends with a
	// clean io.EOF — the "frame ends exactly at EOF" boundary.
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteBlock('e', nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	tag, payload, next, err := Frame(b, 0, true)
	if err != nil {
		t.Fatalf("zero-length frame: %v", err)
	}
	if tag != 'e' || len(payload) != 0 {
		t.Fatalf("zero-length frame: tag %c, %d payload bytes", tag, len(payload))
	}
	if next != len(b) {
		t.Fatalf("zero-length frame: next=%d, want %d", next, len(b))
	}
	if _, _, _, err := Frame(b, next, true); err != io.EOF {
		t.Fatalf("after final frame: %v, want io.EOF", err)
	}

	// The same walk must hold with verification off: skipping the CRC
	// must not skip the structural checks.
	if _, _, _, err := Frame(b, 0, false); err != nil {
		t.Fatalf("zero-length frame, verify off: %v", err)
	}
	if _, _, _, err := Frame(b, next, false); err != io.EOF {
		t.Fatalf("after final frame, verify off: %v, want io.EOF", err)
	}
	if _, _, _, err := Frame(b[:HeaderSize-1], 0, false); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header, verify off: %v, want ErrUnexpectedEOF", err)
	}
	if _, _, _, err := Frame(b, len(b)+1, false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("offset past the end, verify off: %v, want ErrCorrupt", err)
	}
	if _, _, _, err := Frame(b, -1, false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative offset, verify off: %v, want ErrCorrupt", err)
	}

	// A payload subslice is capacity-clamped to its own frame: a caller
	// appending to it must reallocate rather than scribble over the
	// header of the frame that follows in the mapped file.
	buf.Reset()
	bw := NewWriter(&buf)
	if err := bw.WriteBlock('a', []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBlock('b', []byte("second")); err != nil {
		t.Fatal(err)
	}
	b = buf.Bytes()
	_, payload, next, err = Frame(b, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if cap(payload) != len(payload) {
		t.Fatalf("payload capacity %d leaks past its frame (len %d)", cap(payload), len(payload))
	}
	grown := append(payload, '!')
	if tag, second, _, err := Frame(b, next, true); err != nil || tag != 'b' || !bytes.Equal(second, []byte("second")) {
		t.Fatalf("append to first payload damaged the next frame: tag %c, %q, %v", tag, second, err)
	}
	_ = grown
}

// TestReaderLimit checks the connection-facing cap: a header claiming a
// payload beyond the limit is refused as corrupt before any allocation
// proportional to the claim, while frames inside the limit still read.
func TestReaderLimit(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBlock('a', []byte("small")); err != nil {
		t.Fatal(err)
	}
	br := NewReaderLimit(bytes.NewReader(buf.Bytes()), 16)
	if tag, payload, err := br.Next(); err != nil || tag != 'a' || string(payload) != "small" {
		t.Fatalf("in-limit frame: %c %q %v", tag, payload, err)
	}

	// A 9-byte header claiming a near-MaxBlock payload: the default
	// reader would allocate it; the limited reader must refuse.
	hdr := make([]byte, HeaderSize)
	hdr[0] = 'a'
	binary.LittleEndian.PutUint32(hdr[1:5], 1<<29)
	br = NewReaderLimit(bytes.NewReader(hdr), 1<<20)
	if _, _, err := br.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-limit frame: got %v, want ErrCorrupt", err)
	}
}
