package blockio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	frames := []struct {
		tag     byte
		payload []byte
	}{
		{'a', []byte("hello")},
		{'b', nil},
		{'c', bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, f := range frames {
		if err := bw.WriteBlock(f.tag, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	if bw.Offset() != int64(buf.Len()) {
		t.Fatalf("Offset() = %d, buffer holds %d bytes", bw.Offset(), buf.Len())
	}
	br := NewReader(bytes.NewReader(buf.Bytes()))
	for i, f := range frames {
		tag, payload, err := br.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if tag != f.tag || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: tag %c payload %d bytes; want %c, %d bytes",
				i, tag, len(payload), f.tag, len(f.payload))
		}
	}
	if _, _, err := br.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBlock('x', []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flipping any single byte of the frame must fail: tag and payload
	// are covered by the checksum, the length redirects it, and the
	// stored checksum no longer matches.
	for i := range clean {
		bad := bytes.Clone(clean)
		bad[i] ^= 0x40
		_, _, err := NewReader(bytes.NewReader(bad)).Next()
		if err == nil {
			t.Fatalf("flipped byte %d: frame accepted", i)
		}
	}
}

func TestReaderDetectsTornTail(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.WriteBlock('x', []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBlock('y', []byte("second, soon torn")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(full) - 1; cut > headerSize+len("first"); cut-- {
		br := NewReader(bytes.NewReader(full[:cut]))
		if _, _, err := br.Next(); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		_, _, err := br.Next()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: torn frame gave %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	for _, content := range []string{"first version", "second version"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("ReadFile = %q, %v; want %q", got, err, content)
		}
	}
	// A failed write must leave the previous version and no temp litter.
	wantErr := errors.New("boom")
	err := WriteFileAtomic(path, func(io.Writer) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("failing write returned %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second version" {
		t.Fatalf("after failed write: %q, %v; want previous version intact", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "artifact" {
		t.Fatalf("directory holds %d entries after failed write; want just the artifact", len(entries))
	}
}
