// Package blockio implements the framed-block file format shared by the
// store's durable artifacts — segment files, the write-ahead log, and
// the manifest. Every artifact is a sequence of self-describing frames:
//
//	frame := tag(1) | length(4, LE) | crc32c(4, LE) | payload
//
// The checksum is CRC-32C (Castagnoli) over the tag byte followed by the
// payload, so a flipped bit anywhere in a frame's content — including
// its type — fails verification, and a corrupted length field makes the
// checksum run over the wrong byte range and fail with overwhelming
// probability. A frame cut short by a crash (a "torn tail") surfaces as
// io.ErrUnexpectedEOF, which callers distinguish from both a clean end
// of stream (io.EOF) and content corruption (ErrCorrupt): a torn final
// frame is the expected shape of an interrupted append, while a checksum
// mismatch earlier in a file is real damage.
//
// WriteFileAtomic is the publication primitive for rewrite-in-place
// artifacts (the manifest, finished segments): write to a temp file in
// the destination directory, fsync it, rename over the destination, and
// fsync the directory, so concurrent readers and post-crash reopens see
// either the old complete file or the new complete file, never a prefix.
package blockio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCorrupt reports a frame whose checksum does not match its content
// (or whose header is structurally impossible). It is distinct from
// io.ErrUnexpectedEOF, which reports a frame cut short by truncation.
var ErrCorrupt = errors.New("blockio: corrupt block")

// HeaderSize is the fixed frame prelude: tag, payload length, checksum.
// It is exported so callers laying frames out at controlled offsets (the
// segment codec's 64-byte payload alignment) can do the arithmetic.
const HeaderSize = 1 + 4 + 4

// MaxBlock caps a single frame's payload. It exists so a corrupted
// length field cannot demand an absurd read; real payloads (a shard's
// encoded key array, a WAL record) sit far below it.
const MaxBlock = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(tag byte, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, []byte{tag})
	return crc32.Update(crc, castagnoli, payload)
}

// Writer appends frames to an underlying stream and tracks the byte
// offset, so callers can report exact file sizes without stat calls.
type Writer struct {
	w   io.Writer
	off int64
}

// NewWriter returns a frame writer over w. The writer does no buffering
// of its own: each WriteBlock issues one Write of the whole frame, so an
// *os.File underneath has every acked frame in the OS page cache (a
// process crash loses nothing; fsync policy is the caller's).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteBlock appends one frame holding payload under the given tag.
func (bw *Writer) WriteBlock(tag byte, payload []byte) error {
	if len(payload) > MaxBlock {
		return fmt.Errorf("blockio: payload of %d bytes exceeds MaxBlock", len(payload))
	}
	frame := make([]byte, HeaderSize+len(payload))
	frame[0] = tag
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[5:9], checksum(tag, payload))
	copy(frame[HeaderSize:], payload)
	n, err := bw.w.Write(frame)
	bw.off += int64(n)
	return err
}

// Offset returns the number of bytes written so far.
func (bw *Writer) Offset() int64 { return bw.off }

// Reader iterates the frames of a stream, verifying each checksum.
type Reader struct {
	r   io.Reader
	max int
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, max: MaxBlock} }

// NewReaderLimit returns a frame reader that treats any frame whose
// payload exceeds limit as corrupt. Next allocates the payload buffer
// before reading it, so a reader fed by an untrusted peer — a network
// connection rather than a file this process wrote — must cap what a
// nine-byte header can make it allocate; limit is clamped to MaxBlock.
func NewReaderLimit(r io.Reader, limit int) *Reader {
	return &Reader{r: r, max: min(limit, MaxBlock)}
}

// Next returns the next frame's tag and payload. At a clean end of
// stream it returns io.EOF; a frame cut short mid-header or mid-payload
// returns io.ErrUnexpectedEOF; a checksum mismatch or impossible length
// returns an error wrapping ErrCorrupt.
func (br *Reader) Next() (tag byte, payload []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean boundary: no frame started
		}
		return 0, nil, err
	}
	if _, err := io.ReadFull(br.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // header started but cut short
		}
		return 0, nil, err
	}
	tag = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	want := binary.LittleEndian.Uint32(hdr[5:9])
	if int64(n) > int64(br.max) {
		return 0, nil, fmt.Errorf("%w: frame length %d exceeds limit %d", ErrCorrupt, n, br.max)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if got := checksum(tag, payload); got != want {
		return 0, nil, fmt.Errorf("%w: checksum %08x, frame says %08x", ErrCorrupt, got, want)
	}
	return tag, payload, nil
}

// Frame parses the frame starting at byte off of b and returns its tag,
// its payload as a subslice of b — no copy, which is the point: b is
// typically a mapped file, and the payload subslice IS the servable
// data — and the offset of the frame that follows. At the exact end of
// b it returns io.EOF; a frame cut short by the end of b returns
// io.ErrUnexpectedEOF; an impossible length returns ErrCorrupt.
//
// verify selects whether the payload checksum is recomputed. Passing
// false skips an O(len(payload)) touch of every mapped page — the
// zero-copy open path verifies the small structural frames and leaves
// bulk array frames to the integrity of the store's write protocol —
// while true gives the same guarantee as Reader.Next.
func Frame(b []byte, off int, verify bool) (tag byte, payload []byte, next int, err error) {
	if off == len(b) {
		return 0, nil, 0, io.EOF
	}
	if off < 0 || off > len(b) {
		return 0, nil, 0, fmt.Errorf("%w: frame offset %d outside %d bytes", ErrCorrupt, off, len(b))
	}
	if len(b)-off < HeaderSize {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	tag = b[off]
	n := binary.LittleEndian.Uint32(b[off+1 : off+5])
	want := binary.LittleEndian.Uint32(b[off+5 : off+9])
	if n > MaxBlock {
		return 0, nil, 0, fmt.Errorf("%w: frame length %d exceeds MaxBlock", ErrCorrupt, n)
	}
	// Compare in int, not uint32: the remaining-byte count of a mapped
	// multi-GiB file overflows uint32, and a wrapped comparison would
	// reject intact frames past the 4 GiB mark.
	if len(b)-off-HeaderSize < int(n) {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	start := off + HeaderSize
	payload = b[start : start+int(n) : start+int(n)]
	if verify {
		if got := checksum(tag, payload); got != want {
			return 0, nil, 0, fmt.Errorf("%w: checksum %08x, frame says %08x", ErrCorrupt, got, want)
		}
	}
	return tag, payload, start + int(n), nil
}

// WriteFileAtomic publishes a file at path by writing it to a temp file
// in the same directory, fsyncing, and renaming it into place, then
// fsyncing the directory so the rename itself is durable. On any error
// the temp file is removed and the destination is untouched.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	tmp = nil // renamed away: nothing to clean up
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making completed renames and removals in
// it durable. Filesystems that cannot sync a directory handle report an
// error from Sync; those are surfaced to the caller.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
