// Package filter implements the blocked Bloom filter behind the store's
// per-run key filters.
//
// A filter answers "might this key be present?" with no false negatives
// and a tunable false-positive rate, in O(1) and — the blocked part —
// exactly one cache line per query: the filter is an array of 512-bit
// blocks, a key's hash selects one block, and all of the key's probe
// bits land inside it. A point lookup against a run that cannot contain
// the key then costs one cache line of filter instead of a descent
// through the run's layout (and, for a mapped run, instead of faulting
// cold pages). The price of blocking is a slightly worse false-positive
// rate than a flat Bloom filter of equal size — the classic trade, and
// the right one for a filter that exists to avoid memory traffic.
//
// The filter is deterministic and platform-independent: callers supply
// 64-bit key hashes (see store's keyHash), block selection uses the
// fastrange high-multiply, probe bits come from a fixed multiplicative
// remix of the hash, and Marshal serializes the block array little-
// endian — so a filter written on one machine answers identically on
// any other, which is what lets it ride inside a segment file.
package filter

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const (
	// blockWords is the size of one filter block in 64-bit words: 8
	// words = 512 bits = one cache line, the unit a query touches.
	blockWords = 8
	blockBits  = blockWords * 64

	// probesPerKey is the number of bits a key sets within its block.
	// With ~10 bits per key, 6 probes sits near the false-positive
	// optimum for a blocked filter (~1-2%).
	probesPerKey = 6

	// bitsPerKey sizes the filter: ~10 filter bits per expected key.
	bitsPerKey = 10

	// MaxBytes caps a filter's block array. A run large enough to hit
	// the cap gets a denser, weaker filter rather than an unbounded
	// metadata frame; at 10 bits/key the cap covers ~13M keys at full
	// strength.
	MaxBytes = 1 << 24
)

// Bloom is a blocked Bloom filter over 64-bit key hashes. The zero value
// is not usable; construct with New or Unmarshal. Add and MayContain may
// not race with each other, but a filter that is no longer being added
// to serves any number of concurrent readers.
type Bloom struct {
	blocks []uint64 // nblocks × blockWords, block-major
	n      uint64   // block count
}

// New returns a filter sized for n expected keys (values below 1 are
// treated as 1). The size is capped at MaxBytes; beyond the cap the
// filter stays correct but its false-positive rate degrades.
func New(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	nb := (uint64(n)*bitsPerKey + blockBits - 1) / blockBits
	if nb > MaxBytes/(blockWords*8) {
		nb = MaxBytes / (blockWords * 8)
	}
	return &Bloom{blocks: make([]uint64, nb*blockWords), n: nb}
}

// block maps a hash to its block's first word via the fastrange
// high-multiply: the high 64 bits of h × n are uniform over [0, n).
func (b *Bloom) block(h uint64) uint64 {
	hi, _ := bits.Mul64(h, b.n)
	return hi * blockWords
}

// probe derives the i-th probe's (word, bit) within a block from the
// remix state x: the top bits of a multiplicative sequence, 9 bits per
// probe (3 to pick the word, 6 to pick the bit).
func probe(x uint64) (word, bit uint64) {
	return (x >> 61) & (blockWords - 1), (x >> 55) & 63
}

// remix advances the probe sequence: an odd-multiplier LCG whose high
// bits are well mixed — deterministic, and independent of the block
// selection, which consumed the hash's own high bits.
func remix(x uint64) uint64 {
	return x*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
}

// Add records a key hash.
func (b *Bloom) Add(h uint64) {
	base := b.block(h)
	x := h
	for i := 0; i < probesPerKey; i++ {
		x = remix(x)
		w, bit := probe(x)
		b.blocks[base+w] |= 1 << bit
	}
}

// MayContain reports whether h may have been added: a false result is
// definitive (no false negatives), a true result is probabilistic.
func (b *Bloom) MayContain(h uint64) bool {
	base := b.block(h)
	x := h
	for i := 0; i < probesPerKey; i++ {
		x = remix(x)
		w, bit := probe(x)
		if b.blocks[base+w]&(1<<bit) == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the marshaled size of the filter.
func (b *Bloom) Bytes() int { return 8 + len(b.blocks)*8 }

// Marshal serializes the filter: an 8-byte little-endian block count
// followed by the block words, little-endian. The format is platform-
// independent; Unmarshal inverts it exactly.
func (b *Bloom) Marshal() []byte {
	out := make([]byte, b.Bytes())
	binary.LittleEndian.PutUint64(out, b.n)
	for i, w := range b.blocks {
		binary.LittleEndian.PutUint64(out[8+i*8:], w)
	}
	return out
}

// Unmarshal reconstructs a filter serialized by Marshal, rejecting any
// byte slice whose length disagrees with its block count.
func Unmarshal(data []byte) (*Bloom, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("filter: %d bytes is too short for a filter header", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if n < 1 || n > MaxBytes/(blockWords*8) {
		return nil, fmt.Errorf("filter: block count %d outside (0, %d]", n, MaxBytes/(blockWords*8))
	}
	if want := 8 + int(n)*blockWords*8; len(data) != want {
		return nil, fmt.Errorf("filter: %d bytes for %d blocks, want %d", len(data), n, want)
	}
	b := &Bloom{blocks: make([]uint64, n*blockWords), n: n}
	for i := range b.blocks {
		b.blocks[i] = binary.LittleEndian.Uint64(data[8+i*8:])
	}
	return b, nil
}
