package filter

import (
	"math/rand/v2"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 10, 1000, 100_000} {
		b := New(n)
		hashes := make([]uint64, n)
		for i := range hashes {
			hashes[i] = rng.Uint64()
			b.Add(hashes[i])
		}
		for i, h := range hashes {
			if !b.MayContain(h) {
				t.Fatalf("n=%d: added hash %d (#%d) reported absent", n, h, i)
			}
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n, probes = 100_000, 100_000
	rng := rand.New(rand.NewPCG(3, 4))
	b := New(n)
	present := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		h := rng.Uint64()
		present[h] = true
		b.Add(h)
	}
	fp := 0
	for i := 0; i < probes; i++ {
		h := rng.Uint64()
		if present[h] {
			continue
		}
		if b.MayContain(h) {
			fp++
		}
	}
	// ~10 bits/key with 6 in-block probes lands near 1-2% for a blocked
	// filter; 4% leaves headroom without letting a regression hide.
	if rate := float64(fp) / probes; rate > 0.04 {
		t.Fatalf("false-positive rate %.4f over 4%% budget", rate)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	b := New(10_000)
	hashes := make([]uint64, 10_000)
	for i := range hashes {
		hashes[i] = rng.Uint64()
		b.Add(hashes[i])
	}
	got, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal of Marshal output: %v", err)
	}
	for _, h := range hashes {
		if !got.MayContain(h) {
			t.Fatalf("round-tripped filter lost hash %d", h)
		}
	}
	// Answers must be bit-identical, positives and negatives alike.
	for i := 0; i < 10_000; i++ {
		h := rng.Uint64()
		if b.MayContain(h) != got.MayContain(h) {
			t.Fatalf("round-tripped filter answers differently for hash %d", h)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	b := New(100)
	enc := b.Marshal()
	cases := map[string][]byte{
		"empty":            {},
		"short header":     enc[:4],
		"truncated blocks": enc[:len(enc)-8],
		"trailing junk":    append(append([]byte{}, enc...), 0),
		"zero blocks":      make([]byte, 8),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: Unmarshal accepted malformed input", name)
		}
	}
}

func TestSizeCap(t *testing.T) {
	b := New(1 << 30) // would want ~1.3 GiB of bits uncapped
	if got := b.Bytes(); got > MaxBytes+8 {
		t.Fatalf("capped filter marshals to %d bytes, cap is %d", got, MaxBytes)
	}
	h := uint64(0x1234_5678_9abc_def0)
	b.Add(h)
	if !b.MayContain(h) {
		t.Fatal("capped filter lost an added hash")
	}
}
