//go:build !unix

package mmapio

import "fmt"

// Supported reports whether this platform can map files. When false, Map
// always fails and callers fall back to heap decoding.
const Supported = false

// Map on platforms without mmap: always fails; callers heap-decode
// instead.
func Map(path string) (*Region, error) {
	return nil, fmt.Errorf("mmapio: file mapping is not supported on this platform")
}

func (r *Region) unmap() error { return nil }
