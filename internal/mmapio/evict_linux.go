//go:build linux

package mmapio

import (
	"os"
	"syscall"
)

// posix_fadvise advice value; the syscall package exports the syscall
// number but not the POSIX advice constants.
const fadvDontNeed = 4 // POSIX_FADV_DONTNEED

// Evict asks the OS to drop every cached page of path from the page
// cache, so the next reads — including faults through a fresh mapping —
// hit the device. Dirty pages are not droppable, so the file is synced
// first. Best-effort like Advise: benchmarks use it to measure truly
// cold serving, and a failure only means the cache stayed warm.
func Evict(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return err
	}
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, fadvDontNeed, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
