//go:build linux

package mmapio

import "syscall"

// Advise passes an access-pattern hint for the whole region to the OS.
// Purely advisory: serving is correct without it, and an error (or an
// already-closed region) only means the hint was dropped.
func (r *Region) Advise(a Advice) error {
	if len(r.data) == 0 {
		return nil
	}
	var flag int
	switch a {
	case Random:
		flag = syscall.MADV_RANDOM
	case Sequential:
		flag = syscall.MADV_SEQUENTIAL
	case WillNeed:
		flag = syscall.MADV_WILLNEED
	default:
		flag = syscall.MADV_NORMAL
	}
	return syscall.Madvise(r.data, flag)
}
