package mmapio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestViewRoundTrip(t *testing.T) {
	src := []uint64{0, 1, 0xDEADBEEF, 1<<64 - 1, 42}
	raw := Bytes(src)
	if len(raw) != 8*len(src) {
		t.Fatalf("Bytes length %d, want %d", len(raw), 8*len(src))
	}
	got, err := View[uint64](raw)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("View[%d] = %d, want %d", i, got[i], src[i])
		}
	}
	// The view aliases, never copies.
	if &got[0] != &src[0] {
		t.Fatalf("View copied the data")
	}
}

func TestViewChecks(t *testing.T) {
	if _, err := View[uint64](make([]byte, 12)); err == nil {
		t.Fatalf("View accepted 12 bytes as []uint64")
	}
	if _, err := View[struct{}](make([]byte, 8)); err == nil {
		t.Fatalf("View accepted a zero-width element type")
	}
	v, err := View[uint32](nil)
	if err != nil || len(v) != 0 {
		t.Fatalf("View(nil) = %v, %v; want empty, nil", v, err)
	}
	// A deliberately odd offset into an 8-aligned buffer must be refused
	// for 8-byte elements.
	buf := make([]byte, 32)
	if _, err := View[uint64](buf[1:17]); err == nil {
		t.Fatalf("View accepted misaligned data")
	}
}

func TestBytesEndianness(t *testing.T) {
	// Bytes writes native memory order; on the little-endian platforms we
	// build for, that is little-endian. (The segment header records the
	// order and refuses mismatched hosts, so this is an invariant check,
	// not an assumption.)
	raw := Bytes([]uint32{0x01020304})
	want := make([]byte, 4)
	if hostLittle() {
		binary.LittleEndian.PutUint32(want, 0x01020304)
	} else {
		binary.BigEndian.PutUint32(want, 0x01020304)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("Bytes = %x, want %x", raw, want)
	}
}

func hostLittle() bool {
	raw := Bytes([]uint16{1})
	return raw[0] == 1
}

func TestMapLifecycle(t *testing.T) {
	if !Supported {
		t.Skip("no mmap on this platform")
	}
	path := filepath.Join(t.TempDir(), "data")
	content := bytes.Repeat([]byte{0xA5, 0x5A}, 4096)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Map(path)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !bytes.Equal(r.Bytes(), content) {
		t.Fatalf("mapped bytes differ from file content")
	}
	if err := r.Advise(Random); err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// Deleting a mapped file must leave the mapping readable (the store
	// deletes obsolete segments while old readers still hold them).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Bytes(), content) {
		t.Fatalf("mapping died with the directory entry")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMapErrors(t *testing.T) {
	if !Supported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	if _, err := Map(filepath.Join(dir, "missing")); err == nil {
		t.Fatalf("Map accepted a missing file")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(empty); err == nil {
		t.Fatalf("Map accepted an empty file")
	}
}
