//go:build !linux

package mmapio

// Advise without a portable madvise (the syscall package exports it on
// linux only): accept and drop the hint — it is purely advisory, so
// serving is identical, just without the read-ahead tuning.
func (r *Region) Advise(a Advice) error { return nil }
