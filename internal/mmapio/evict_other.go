//go:build !linux

package mmapio

// Evict is a no-op without posix_fadvise: the page cache stays warm and
// cold-serve benchmarks measure the warm path instead.
func Evict(path string) error { return nil }
