// Package mmapio maps files into memory for zero-copy serving. The
// store's segment codec v2 writes fixed-width shard arrays as raw,
// 64-byte-aligned blocks precisely so this package can hand them back as
// typed slices without decoding: a mapped segment is served straight
// from the OS page cache, the servable dataset is bounded by the address
// space rather than the heap, and a cold open costs page-table setup
// instead of an O(data) read.
//
// The package has two halves:
//
//   - Region is the lifecycle half: Map opens a file read-only and maps
//     it whole; Advise passes access-pattern hints to the OS; Close
//     unmaps. Both Map and the mapping syscalls are unix-only — on other
//     platforms Supported is false and Map fails, which callers treat as
//     "fall back to heap decode" (mirroring the store's lock.go /
//     lock_other.go pattern).
//
//   - View and Bytes are the cast half and compile everywhere: a checked
//     unsafe.Slice reinterpretation between []byte and []T for
//     fixed-width T. They are what make "a mapped region is still just a
//     []K" true, so search kernels never know whether their array lives
//     on the heap or in the page cache.
//
// Mapped memory is read-only: writing through a View of a mapped region
// faults. The fault-safety contract is the segment protocol's
// immutability — segments are never modified in place, and deleting a
// mapped file is safe on unix (the pages live until the last unmap).
package mmapio

import (
	"fmt"
	"sync"
	"unsafe"
)

// Region is one read-only mapping of a whole file. It is safe for any
// number of concurrent readers; Close (idempotent, safe to race with
// itself) unmaps, after which every slice derived from Bytes or View is
// invalid — the caller owns the ordering between last read and Close.
type Region struct {
	data  []byte
	close sync.Once
	err   error
}

// Bytes returns the mapped file contents. The slice is valid until
// Close.
func (r *Region) Bytes() []byte { return r.data }

// Len returns the mapped length in bytes.
func (r *Region) Len() int { return len(r.data) }

// Close unmaps the region. Idempotent: the first call's error is
// remembered and returned by every later call.
func (r *Region) Close() error {
	r.close.Do(func() { r.err = r.unmap() })
	return r.err
}

// Advice names an access-pattern hint for Advise. Hints are best-effort:
// platforms without madvise accept and ignore them.
type Advice int

const (
	// Normal clears any previous hint.
	Normal Advice = iota
	// Random hints point queries: read-ahead is wasted on a tree
	// descent's scattered cache-line touches.
	Random
	// Sequential hints full scans: aggressive read-ahead, early reclaim.
	Sequential
	// WillNeed asks the OS to start paging the region in now.
	WillNeed
)

// View reinterprets b as a []T without copying. T must be a fixed-width
// type; the byte length must be an exact multiple of T's size and the
// data must be aligned for T — both are checked, because b typically
// comes from a file whose header the caller has only partially
// validated. An empty b yields an empty slice.
func View[T any](b []byte) ([]T, error) {
	var zero T
	w := int(unsafe.Sizeof(zero))
	if w == 0 {
		return nil, fmt.Errorf("mmapio: cannot view zero-width type %T", zero)
	}
	if len(b) == 0 {
		return []T{}, nil
	}
	if len(b)%w != 0 {
		return nil, fmt.Errorf("mmapio: %d bytes is not a whole number of %d-byte elements", len(b), w)
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if a := unsafe.Alignof(zero); uintptr(p)%a != 0 {
		return nil, fmt.Errorf("mmapio: data misaligned for %d-byte alignment", a)
	}
	return unsafe.Slice((*T)(p), len(b)/w), nil
}

// Bytes returns the raw memory of s as a byte slice, without copying —
// View's inverse, used by the segment writer to put a shard array on
// disk exactly as it sits in memory. The result aliases s and is valid
// while s is.
func Bytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*int(unsafe.Sizeof(s[0])))
}
