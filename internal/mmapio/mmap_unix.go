//go:build unix

package mmapio

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// Supported reports whether this platform can map files. When false, Map
// always fails and callers fall back to heap decoding.
const Supported = true

// Map opens the file at path read-only and maps it whole. The file
// descriptor is closed before Map returns — the mapping keeps the file's
// pages alive on its own, including across a later unlink, which is what
// lets the store delete an obsolete segment while old readers still
// serve from its mapping.
func Map(path string) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, fmt.Errorf("mmapio: %s is empty, nothing to map", path)
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("mmapio: %s is %d bytes, beyond this platform's address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapio: mapping %s: %w", path, err)
	}
	return &Region{data: data}, nil
}

func (r *Region) unmap() error {
	if r.data == nil {
		return nil
	}
	data := r.data
	r.data = nil
	return syscall.Munmap(data)
}
