package core

import (
	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// InvolutionVEB permutes the sorted window into the van Emde Boas layout
// with the involution machinery of Section 2.3: each recursive vEB split
// is the B-tree involution step with B = l (the bottom-subtree size) —
// an (l+1)-way perfect un-shuffle with simulated 1-indexing gathers the
// top tree to the front, and an l-way perfect shuffle groups each bottom
// subtree contiguously. O(N/P log N) time, O(log N) depth.
func InvolutionVEB[T any, V vec.Vec[T]](o Options, v V) {
	vebEntry[T](o, v, involutionVEBOps[T, V]())
}

func involutionVEBOps[T any, V vec.Vec[T]]() vebOps[T, V] {
	return vebOps[T, V]{
		split: func(rn par.Runner, v V, off, n, levels int) {
			lt, lb := layout.VEBSplit(levels)
			invVEBStep[T](rn, v, off, n, 1<<uint(lt)-1, 1<<uint(lb))
		},
		fullSplit: func(rn par.Runner, v V, off, nFull, levels int) {
			lt, lb := layout.VEBSplit(levels)
			// The bottoms lost their last level, so interleave by
			// k = 2^(lb-1); the top size is unchanged.
			invVEBStep[T](rn, v, off, nFull, 1<<uint(lt)-1, 1<<uint(lb-1))
		},
	}
}

// invVEBStep separates [T0 (r keys)] from the bottoms with one un-shuffle
// and one shuffle: the top keys sit at every k-th 1-indexed position
// (k = bottom size + 1), so the k-way un-shuffle gathers them in front and
// leaves the bottom keys in residue-class columns, which the (k-1)-way
// shuffle interleaves back into contiguous bottom subtrees.
func invVEBStep[T any, V vec.Vec[T]](rn par.Runner, v V, off, n, r, k int) {
	shuffle.KUnshuffle1[T](rn, v, off, n, k)
	shuffle.KShuffle[T](rn, v, off+r, n-r, k-1)
}
