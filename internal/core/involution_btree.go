package core

import (
	"implicitlayout/internal/bits"
	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
)

// InvolutionBTree permutes the sorted window into the level-order B-tree
// layout with the involution algorithm of Section 2.2. Per element level e
// (from the leaves up): a (B+1)-way perfect un-shuffle with simulated
// 1-indexing gathers the internal keys (every (B+1)-th) to the front and
// the leaf keys into residue-class columns; a B-way perfect shuffle of the
// leaf region then interleaves the columns back into B-key leaf nodes.
// The algorithm iterates on the internal keys, log_{B+1} N levels, for
// O((N/P + log_{B+1} N) log N) time (the log N factor is the extended
// Euclidean algorithm inside the J involutions).
func InvolutionBTree[T any, V vec.Vec[T]](o Options, v V) {
	rn := o.runner()
	b := o.b()
	n := v.Len()
	gatherPartialLevel[T](rn, v, 0, n, b)
	full, d := fullSize(n, b)
	btreeInvolutionPerfect[T](rn, v, b, full, d)
}

// btreeInvolutionPerfect runs the per-level un-shuffle/shuffle loop on a
// perfect prefix of full = (b+1)^d - 1 keys.
func btreeInvolutionPerfect[T any, V vec.Vec[T]](rn par.Runner, v V, b, full, d int) {
	k := b + 1
	ne := full
	for e := d; e >= 2; e-- {
		shuffle.KUnshuffle1[T](rn, v, 0, ne, k)
		leafStart := bits.Pow(k, e-1) - 1
		shuffle.KShuffle[T](rn, v, leafStart, ne-leafStart, b)
		ne = leafStart
	}
}

// InvertInvolutionBTree restores sorted order from a B-tree layout by
// unwinding the involution rounds bottom-up.
func InvertInvolutionBTree[T any, V vec.Vec[T]](o Options, v V) {
	rn := o.runner()
	b := o.b()
	n := v.Len()
	_, d := fullSize(n, b)
	k := b + 1
	for e := 2; e <= d; e++ {
		ne := bits.Pow(k, e) - 1
		leafStart := bits.Pow(k, e-1) - 1
		shuffle.KUnshuffle[T](rn, v, leafStart, ne-leafStart, b)
		shuffle.KShuffle1[T](rn, v, 0, ne, k)
	}
	scatterPartialLevel[T](rn, v, 0, n, b)
}
