package core

import (
	"implicitlayout/internal/gather"
	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// CycleVEB permutes the sorted window into the van Emde Boas layout with
// the cycle-leader algorithm of Section 3.1: each vEB split is one
// equidistant gather (r == l, trees with an even level count) or two
// half-window gathers knitted together by a circular shift (r == 2l+1,
// odd level count), followed by parallel recursion into all subtrees.
// O(N/P log log N) time — the fastest CPU algorithm in the paper's
// measurements. With Options.TransposedGather the square gathers use the
// matrix-transposition I/O optimization of Section 4.2.
func CycleVEB[T any, V vec.Vec[T]](o Options, v V) {
	vebEntry[T](o, v, cycleVEBOps[T, V](o.TransposedGather, o.GatherBatch))
}

func cycleVEBOps[T any, V vec.Vec[T]](transposed bool, batch int) vebOps[T, V] {
	square := func(rn par.Runner, v V, off, r int) {
		if transposed && r > 1 {
			gather.Transposed[T](rn, v, off, r, 1)
			return
		}
		if batch >= 2 {
			gather.EquidistantBatched[T](rn, v, off, r, r, 1, batch)
			return
		}
		gather.Equidistant[T](rn, v, off, r, r, 1)
	}
	return vebOps[T, V]{
		split: func(rn par.Runner, v V, off, n, levels int) {
			lt, lb := layout.VEBSplit(levels)
			r := 1<<uint(lt) - 1
			l := 1<<uint(lb) - 1
			if r == l {
				square(rn, v, off, r)
				return
			}
			// r == 2l+1: gather each half (each a perfect r' = l' = l
			// shape), then rotate the second half's top keys forward.
			half := (n - 1) / 2
			if rn.IsSerial() {
				square(rn, v, off, l)
				square(rn, v, off+half+1, l)
			} else {
				rn.Do(
					func(sub par.Runner) { square(sub, v, off, l) },
					func(sub par.Runner) { square(sub, v, off+half+1, l) },
				)
			}
			shuffle.RotateRight[T](rn, v, off+l, half+1, l+1)
		},
		fullSplit: func(rn par.Runner, v V, off, nFull, levels int) {
			if levels%2 == 0 {
				// The full part is a perfect tree with levels-1 (odd)
				// levels whose natural split boundary coincides with the
				// original tree's: reuse the perfect split.
				cycleVEBOps[T, V](transposed, batch).split(rn, v, off, nFull, levels-1)
				return
			}
			// Odd level count: the bottoms lost their last level, so the
			// shape is r = 2^lt - 1 tops with bottoms of l' = 2^(lb-1)-1
			// keys; r+1 = 4(l'+1), handled by the extended gather.
			lt, lb := layout.VEBSplit(levels)
			r := 1<<uint(lt) - 1
			lp := 1<<uint(lb-1) - 1
			gather.ExtendedPerfect[T](rn, v, off, r, lp, 1)
		},
	}
}
