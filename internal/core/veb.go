package core

import (
	"implicitlayout/internal/bits"
	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// vebOps abstracts the one step both vEB algorithm families share: the
// separation of a subtree into its top tree and bottom subtrees. The
// involution family separates with un-shuffle/shuffle rounds (Section
// 2.3), the cycle-leader family with equidistant gathers (Section 3.1).
type vebOps[T any, V vec.Vec[T]] struct {
	// split separates a perfect subtree of n = 2^L - 1 sorted keys at
	// [off, off+n) into [T0][bottom_1]...[bottom_{r+1}], each part sorted.
	split func(rn par.Runner, v V, off, n, L int)
	// fullSplit does the same for the full part (a perfect tree with L-1
	// levels) of a non-perfect tree with L levels, using the *original*
	// tree's split boundary Lt = ceil(L/2): the bottoms come out with
	// Lb-1 levels each (their last level was peeled off beforehand).
	fullSplit func(rn par.Runner, v V, off, nFull, L int)
}

// vebEntry permutes the sorted window into the vEB layout, dispatching
// between the perfect recursion and the Chapter 5 non-perfect path.
func vebEntry[T any, V vec.Vec[T]](o Options, v V, ops vebOps[T, V]) {
	rn := o.runner()
	n := v.Len()
	if n <= 1 {
		return
	}
	levels := bits.Levels(n)
	if n == 1<<uint(levels)-1 {
		vebRecurse[T](rn, v, 0, n, levels, ops)
		return
	}
	fullN, w := gatherPartialLevel[T](rn, v, 0, n, 1)
	vebAnySeparated[T](rn, v, 0, fullN, w, levels, ops)
}

// vebRecurse lays out a perfect subtree of n = 2^L - 1 sorted keys:
// split, then recurse on the top tree and all bottom subtrees in parallel.
func vebRecurse[T any, V vec.Vec[T]](rn par.Runner, v V, off, n, levels int, ops vebOps[T, V]) {
	if levels <= 1 {
		return
	}
	ops.split(rn, v, off, n, levels)
	lt, lb := layout.VEBSplit(levels)
	r := 1<<uint(lt) - 1
	if lb <= 1 {
		// Bottoms are single nodes; only the top tree recurses.
		vebRecurse[T](rn, v, off, r, lt, ops)
		return
	}
	l := 1<<uint(lb) - 1
	if rn.IsSerial() {
		vebRecurse[T](rn, v, off, r, lt, ops)
		for j := 0; j <= r; j++ {
			vebRecurse[T](rn, v, off+r+j*l, l, lb, ops)
		}
		return
	}
	rn.Tasks(r+2, func(i int, sub par.Runner) {
		if i == 0 {
			vebRecurse[T](sub, v, off, r, lt, ops)
			return
		}
		vebRecurse[T](sub, v, off+r+(i-1)*l, l, lb, ops)
	})
}

// vebAnySeparated lays out a complete (non-perfect) subtree with L levels
// whose keys have already been separated into [fullN full-level keys,
// sorted][w last-level keys, sorted] at [off, off+fullN+w). It splits the
// full part at the original tree's boundary, merges each bottom's share of
// last-level keys next to its full keys, and recurses — bottoms that
// received last-level keys recurse through this same separated form, so
// the separation is never repeated.
func vebAnySeparated[T any, V vec.Vec[T]](rn par.Runner, v V, off, fullN, w, levels int, ops vebOps[T, V]) {
	lt, lb := layout.VEBSplit(levels)
	r := 1<<uint(lt) - 1
	if lt == levels-1 {
		// The full part is exactly T0 and every last-level key is its own
		// single-node bottom subtree, already in position.
		vebRecurse[T](rn, v, off, r, lt, ops)
		return
	}
	ops.fullSplit(rn, v, off, fullN, levels)
	lp := 1<<uint(lb-1) - 1 // bottom full-part size
	capB := 1 << uint(lb-1) // bottom last-level capacity
	f := w / capB           // bottoms receiving a full leaf chunk
	s := w - f*capB         // size of the partial chunk (bottom f)
	mergeLeafChunks[T](rn, v, off+r, r+1, lp, capB, f, s)
	child := func(sub par.Runner, j int) {
		wj := clamp(w-j*capB, 0, capB)
		start := off + r + j*lp + min(w, j*capB)
		if wj == 0 {
			vebRecurse[T](sub, v, start, lp, lb-1, ops)
			return
		}
		vebAnySeparated[T](sub, v, start, lp, wj, lb, ops)
	}
	if rn.IsSerial() {
		vebRecurse[T](rn, v, off, r, lt, ops)
		for j := 0; j <= r; j++ {
			child(rn, j)
		}
		return
	}
	rn.Tasks(r+2, func(i int, sub par.Runner) {
		if i == 0 {
			vebRecurse[T](sub, v, off, r, lt, ops)
			return
		}
		child(sub, i-1)
	})
}

// mergeLeafChunks interleaves two adjacent block sequences in place: nG
// groups of lp elements (the bottoms' full parts) followed by the
// last-level chunks — f full chunks of capB elements plus, if s > 0, one
// partial chunk of s — producing [G_0 C_0][G_1 C_1]...[G_f partial]
// [G_{f+1}]...[G_{nG-1}]. Divide and conquer on the group count with one
// parallel rotation per node: O(n log nG) work, O(log² nG) rounds. (The
// paper sketches this merge as a chunked 2-way shuffle; the rotation tree
// keeps every step a uniform in-place primitive at the cost of one
// logarithmic factor on this non-perfect-only path.)
func mergeLeafChunks[T any, V vec.Vec[T]](rn par.Runner, v V, base, nG, lp, capB, f, s int) {
	cTot := f
	if s > 0 {
		cTot++
	}
	if cTot == 0 || lp == 0 {
		return
	}
	// csum(c) = total size of global chunks [0, c).
	csum := func(c int) int {
		t := min(c, f) * capB
		if c > f {
			t += s
		}
		return t
	}
	var rec func(rn par.Runner, pos, g0, ng, nc int)
	rec = func(rn par.Runner, pos, g0, ng, nc int) {
		// region at pos holds groups [g0, g0+ng) then chunks [g0, g0+nc).
		if nc == 0 || ng <= 1 {
			return
		}
		h := (ng + 1) / 2
		cL := clamp(h, 0, nc) // chunks belonging to the left half
		moved := (ng - h) * lp
		rotLen := moved + csum(g0+cL) - csum(g0)
		shuffle.RotateLeft[T](rn, v, pos+h*lp, rotLen, moved)
		leftSize := h*lp + csum(g0+cL) - csum(g0)
		if rn.IsSerial() {
			rec(rn, pos, g0, h, cL)
			rec(rn, pos+leftSize, g0+h, ng-h, nc-cL)
			return
		}
		rn.Do(
			func(sub par.Runner) { rec(sub, pos, g0, h, cL) },
			func(sub par.Runner) { rec(sub, pos+leftSize, g0+h, ng-h, nc-cL) },
		)
	}
	rec(rn, base, 0, nG, cTot)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
