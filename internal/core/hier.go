package core

import (
	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// PermuteHier rearranges the sorted window into the two-level hierarchical
// layout (layout.Hier) by composing the existing B-tree kernels — no new
// data movement primitives are needed. The outer pass is a whole-array
// B-tree permutation with node capacity P = HierPageKeys(b), which leaves
// every page block holding its P keys contiguously in ascending order;
// the second pass then permutes each page block independently into the
// cacheline B-tree layout with capacity b over a vec window. Both passes
// inherit the in-place O(P log N) auxiliary-space bound of the kernels
// they reuse, and the per-page pass is embarrassingly parallel.
func PermuteHier[T any, V vec.Vec[T]](o Options, v V, a Algorithm) {
	outer, inner, p := hierOptions(o)
	if a == CycleLeader {
		CycleBTree[T](outer, v)
	} else {
		InvolutionBTree[T](outer, v)
	}
	hierPages(o.runner(), v.Len(), p, func(sub par.Runner, off, pk int) {
		io := inner
		io.Runner = sub
		w := vec.Window[T](v, off, pk)
		if a == CycleLeader {
			CycleBTree[T](io, w)
		} else {
			InvolutionBTree[T](io, w)
		}
	})
}

// InvertHier restores sorted order from the hierarchical layout by
// unwinding PermuteHier: each page block is inverted back to its sorted
// window, then the outer page-granular B-tree permutation is inverted.
// As with the other layouts, inversion is involution-based whichever
// algorithm family built the layout.
func InvertHier[T any, V vec.Vec[T]](o Options, v V) {
	outer, inner, p := hierOptions(o)
	hierPages(o.runner(), v.Len(), p, func(sub par.Runner, off, pk int) {
		io := inner
		io.Runner = sub
		InvertInvolutionBTree[T](io, vec.Window[T](v, off, pk))
	})
	InvertInvolutionBTree[T](outer, v)
}

// hierOptions splits the caller's options into the outer (page-capacity)
// and inner (cacheline-capacity) kernel configurations.
func hierOptions(o Options) (outer, inner Options, p int) {
	p = layout.HierPageKeys(o.b())
	outer, inner = o, o
	outer.B = p
	return outer, inner, p
}

// hierPages invokes f once per page block [off, off+pk), distributing the
// blocks over the runner's workers. Page blocks are disjoint windows, so
// the CREW discipline holds trivially.
func hierPages(rn par.Runner, n, p int, f func(sub par.Runner, off, pk int)) {
	pages := (n + p - 1) / p
	rn.Tasks(pages, func(i int, sub par.Runner) {
		off := i * p
		f(sub, off, min(p, n-off))
	})
}
