package core

import (
	"implicitlayout/internal/bits"
	"implicitlayout/internal/gather"
	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
)

// CycleBTree permutes the sorted window into the level-order B-tree layout
// with the cycle-leader algorithm of Section 3.2: per element level, one
// extended equidistant gather moves the internal keys (every (B+1)-th) to
// the front while the leaf keys fall into place as B-key nodes; the
// algorithm then iterates on the internal prefix. O((N/P + log_{B+1} N) ·
// log_{B+1} N) time with strictly better spatial locality than the
// involution algorithm (every swap moves contiguous chunks).
func CycleBTree[T any, V vec.Vec[T]](o Options, v V) {
	rn := o.runner()
	b := o.b()
	n := v.Len()
	gatherPartialLevel[T](rn, v, 0, n, b)
	full, d := fullSize(n, b)
	cycleBTreePerfect[T](rn, v, b, full, d)
}

// cycleBTreePerfect runs the per-level gather loop on a perfect prefix of
// full = (b+1)^d - 1 keys.
func cycleBTreePerfect[T any, V vec.Vec[T]](rn par.Runner, v V, b, full, d int) {
	k := b + 1
	for e := d; e >= 2; e-- {
		r := bits.Pow(k, e-1) - 1
		gather.ExtendedPerfect[T](rn, v, 0, r, b, 1)
	}
}

// CycleBST permutes the sorted window into the BST layout: the B-tree
// cycle-leader algorithm with B = 1 (Section 3.3).
func CycleBST[T any, V vec.Vec[T]](o Options, v V) {
	rn := o.runner()
	n := v.Len()
	gatherPartialLevel[T](rn, v, 0, n, 1)
	full, d := fullSize(n, 1)
	cycleBTreePerfect[T](rn, v, 1, full, d)
}
