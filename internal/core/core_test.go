package core

import (
	"math/rand"
	"reflect"
	"testing"

	"implicitlayout/internal/bits"
	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// want returns the oracle layout of seq(n): since keys equal their sorted
// ranks, the expected array is exactly the rank table.
func want(k layout.Kind, n, b int) []int {
	return layout.Ranks(k, n, b)
}

type algo struct {
	name string
	kind layout.Kind
	b    int
	run  func(o Options, v vec.Slice[int])
}

func allAlgos() []algo {
	var as []algo
	as = append(as,
		algo{"involution-bst", layout.BST, 0, func(o Options, v vec.Slice[int]) { InvolutionBST[int](o, v) }},
		algo{"cycle-bst", layout.BST, 0, func(o Options, v vec.Slice[int]) { CycleBST[int](o, v) }},
		algo{"involution-veb", layout.VEB, 0, func(o Options, v vec.Slice[int]) { InvolutionVEB[int](o, v) }},
		algo{"cycle-veb", layout.VEB, 0, func(o Options, v vec.Slice[int]) { CycleVEB[int](o, v) }},
		algo{"cycle-veb-transposed", layout.VEB, 0, func(o Options, v vec.Slice[int]) {
			o.TransposedGather = true
			CycleVEB[int](o, v)
		}},
	)
	for _, b := range []int{1, 2, 3, 4, 7, 8} {
		b := b
		as = append(as,
			algo{"involution-btree/B=" + itoa(b), layout.BTree, b, func(o Options, v vec.Slice[int]) {
				o.B = b
				InvolutionBTree[int](o, v)
			}},
			algo{"cycle-btree/B=" + itoa(b), layout.BTree, b, func(o Options, v vec.Slice[int]) {
				o.B = b
				CycleBTree[int](o, v)
			}},
		)
	}
	for _, b := range []int{1, 2, 4} {
		b := b
		as = append(as,
			algo{"involution-hier/B=" + itoa(b), layout.Hier, b, func(o Options, v vec.Slice[int]) {
				o.B = b
				PermuteHier[int](o, v, Involution)
			}},
			algo{"cycle-hier/B=" + itoa(b), layout.Hier, b, func(o Options, v vec.Slice[int]) {
				o.B = b
				PermuteHier[int](o, v, CycleLeader)
			}},
		)
	}
	return as
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestAllAlgorithmsExhaustiveSmall checks every algorithm against the
// layout oracle for every size up to 260, serial and parallel — this
// covers all perfect/non-perfect shape combinations of small trees.
func TestAllAlgorithmsExhaustiveSmall(t *testing.T) {
	runners := []par.Runner{par.New(1), {Lo: 0, Hi: 3, MinFor: 1}}
	for _, a := range allAlgos() {
		a := a
		t.Run(a.name, func(t *testing.T) {
			t.Parallel()
			for n := 0; n <= 260; n++ {
				w := want(a.kind, n, a.b)
				for _, rn := range runners {
					got := seq(n)
					a.run(Options{Runner: rn}, vec.Of(got))
					if !reflect.DeepEqual(got, w) {
						t.Fatalf("n=%d P=%d:\n got %v\nwant %v", n, rn.P(), got, w)
					}
				}
			}
		})
	}
}

// TestAllAlgorithmsLargerSizes spot-checks larger sizes including exact
// powers, perfect sizes, and random lengths.
func TestAllAlgorithmsLargerSizes(t *testing.T) {
	sizes := []int{511, 512, 513, 1023, 1024, 4095, 4096, 8191, 10000, 16383, 16384, 32767, 40000}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		sizes = append(sizes, rng.Intn(1<<16)+1)
	}
	rn := par.Runner{Lo: 0, Hi: 4, MinFor: 64}
	for _, a := range allAlgos() {
		a := a
		t.Run(a.name, func(t *testing.T) {
			t.Parallel()
			for _, n := range sizes {
				w := want(a.kind, n, a.b)
				got := seq(n)
				a.run(Options{Runner: rn}, vec.Of(got))
				if !reflect.DeepEqual(got, w) {
					t.Fatalf("n=%d: mismatch (first diff at %d)", n, firstDiff(got, w))
				}
			}
		})
	}
}

func firstDiff(a, b []int) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestPermuteDispatch exercises the Permute entry point for each
// kind/algorithm pair.
func TestPermuteDispatch(t *testing.T) {
	n := 1000
	for _, k := range layout.Kinds() {
		for _, a := range Algorithms() {
			got := seq(n)
			Permute[int](Options{Runner: par.New(2), B: 4}, vec.Of(got), k, a)
			bb := 0
			if k == layout.BTree || k == layout.Hier {
				bb = 4
			}
			if !reflect.DeepEqual(got, want(k, n, bb)) {
				t.Fatalf("Permute(%v, %v) wrong", k, a)
			}
		}
	}
	got := seq(n)
	Permute[int](Options{Runner: par.New(2)}, vec.Of(got), layout.Sorted, Involution)
	if !reflect.DeepEqual(got, seq(n)) {
		t.Fatal("Permute(Sorted) must be the identity")
	}
}

// TestSoftwareReverserMatchesHardware: the BST involution algorithm
// produces the same layout under both T_REV2 cost models.
func TestSoftwareReverserMatchesHardware(t *testing.T) {
	for _, n := range []int{127, 128, 1000, 4095} {
		a, b := seq(n), seq(n)
		InvolutionBST[int](Options{Rev: bits.Software{}}, vec.Of(a))
		InvolutionBST[int](Options{Rev: bits.Hardware{}}, vec.Of(b))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: software and hardware reversers disagree", n)
		}
	}
}

// TestInvertInvolutionBST round-trips permute + invert for all small n.
func TestInvertInvolutionBST(t *testing.T) {
	for n := 0; n <= 300; n++ {
		a := seq(n)
		o := Options{Runner: par.Runner{Lo: 0, Hi: 2, MinFor: 1}}
		InvolutionBST[int](o, vec.Of(a))
		InvertInvolutionBST[int](o, vec.Of(a))
		if !reflect.DeepEqual(a, seq(n)) {
			t.Fatalf("n=%d: round trip failed: %v", n, a)
		}
	}
}

// TestInvertInvolutionBTree round-trips for all small n and several B.
func TestInvertInvolutionBTree(t *testing.T) {
	for _, b := range []int{1, 2, 3, 7} {
		for n := 0; n <= 300; n++ {
			a := seq(n)
			o := Options{Runner: par.New(1), B: b}
			InvolutionBTree[int](o, vec.Of(a))
			InvertInvolutionBTree[int](o, vec.Of(a))
			if !reflect.DeepEqual(a, seq(n)) {
				t.Fatalf("B=%d n=%d: round trip failed", b, n)
			}
		}
	}
}

// TestInvertHier round-trips the hierarchical layout for all small n and
// several cacheline capacities, built by either algorithm family, serial
// and parallel.
func TestInvertHier(t *testing.T) {
	runners := []par.Runner{par.New(1), {Lo: 0, Hi: 3, MinFor: 1}}
	for _, b := range []int{1, 2, 4} {
		for _, a := range Algorithms() {
			for _, rn := range runners {
				o := Options{Runner: rn, B: b}
				for n := 0; n <= 300; n++ {
					arr := seq(n)
					PermuteHier[int](o, vec.Of(arr), a)
					InvertHier[int](o, vec.Of(arr))
					if !reflect.DeepEqual(arr, seq(n)) {
						t.Fatalf("B=%d %v P=%d n=%d: round trip failed", b, a, rn.P(), n)
					}
				}
			}
		}
	}
}

// TestResultIndependentOfP: the permutation is deterministic and identical
// for any worker count (Definition 1 requires correctness for all P >= 1).
func TestResultIndependentOfP(t *testing.T) {
	n := 12345
	for _, a := range allAlgos() {
		base := seq(n)
		a.run(Options{Runner: par.New(1)}, vec.Of(base))
		for _, p := range []int{2, 3, 5, 8} {
			got := seq(n)
			a.run(Options{Runner: par.Runner{Lo: 0, Hi: p, MinFor: 16}}, vec.Of(got))
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("%s: result differs between P=1 and P=%d", a.name, p)
			}
		}
	}
}

// TestGatherPartialLevel checks the Chapter 5 pre-pass directly: fulls to
// the front, partial level to the back, both in order.
func TestGatherPartialLevel(t *testing.T) {
	rn := par.Runner{Lo: 0, Hi: 2, MinFor: 1}
	for _, b := range []int{1, 2, 3, 5} {
		for n := 1; n <= 200; n++ {
			a := seq(n)
			full, w := gatherPartialLevel[int](rn, vec.Of(a), 0, n, b)
			if full+w != n {
				t.Fatalf("b=%d n=%d: full=%d w=%d don't sum", b, n, full, w)
			}
			// Expected: ranks of full-level keys ascending, then leaves.
			ranks := layout.Ranks(layout.BTree, n, b)
			isLeafKey := make([]bool, n)
			for pos := full; pos < n; pos++ {
				// positions full.. in the layout are the partial level
				isLeafKey[ranks[pos]] = true
			}
			var wantArr []int
			for i := 0; i < n; i++ {
				if !isLeafKey[i] {
					wantArr = append(wantArr, i)
				}
			}
			for i := 0; i < n; i++ {
				if isLeafKey[i] {
					wantArr = append(wantArr, i)
				}
			}
			if !reflect.DeepEqual(a, wantArr) {
				t.Fatalf("b=%d n=%d:\n got %v\nwant %v", b, n, a, wantArr)
			}
		}
	}
}

// TestScatterInvertsGather: scatterPartialLevel is the exact inverse.
func TestScatterInvertsGather(t *testing.T) {
	rn := par.New(2)
	for _, b := range []int{1, 2, 4} {
		for n := 1; n <= 200; n++ {
			a := seq(n)
			gatherPartialLevel[int](rn, vec.Of(a), 0, n, b)
			scatterPartialLevel[int](rn, vec.Of(a), 0, n, b)
			if !reflect.DeepEqual(a, seq(n)) {
				t.Fatalf("b=%d n=%d: scatter did not invert gather", b, n)
			}
		}
	}
}

// TestInvertInvolutionVEB round-trips the vEB layout for every small n
// (both construction algorithms produce the same layout, so one inverse
// serves both) plus larger perfect and non-perfect sizes.
func TestInvertInvolutionVEB(t *testing.T) {
	runners := []par.Runner{par.New(1), {Lo: 0, Hi: 3, MinFor: 1}}
	for _, rn := range runners {
		o := Options{Runner: rn}
		for n := 0; n <= 300; n++ {
			a := seq(n)
			InvolutionVEB[int](o, vec.Of(a))
			InvertInvolutionVEB[int](o, vec.Of(a))
			if !reflect.DeepEqual(a, seq(n)) {
				t.Fatalf("P=%d n=%d: vEB round trip failed: %v", rn.P(), n, a)
			}
		}
		for _, n := range []int{1023, 1024, 5000, 16383, 16384, 40000} {
			a := seq(n)
			CycleVEB[int](o, vec.Of(a)) // cycle-built layout, involution-inverted
			InvertInvolutionVEB[int](o, vec.Of(a))
			if !reflect.DeepEqual(a, seq(n)) {
				t.Fatalf("P=%d n=%d: cycle->invert round trip failed", rn.P(), n)
			}
		}
	}
}
