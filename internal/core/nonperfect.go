package core

import (
	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// gatherPartialLevel implements the Chapter 5 pre-pass for complete (but
// not perfect) trees: the keys of the partial last level move, in order,
// to the end of the window [off, off+n), and the keys of the full levels
// gather, in order, at the front. It returns the sizes of the two parts.
//
// In sorted order the prefix of the array interleaves last-level leaf
// nodes (B keys each) with single separator keys from the full levels:
//
//	([B leaf keys][1 separator]) x (D-1)  [s leaf keys]  [remaining fulls]
//
// where D = ceil(W/B) is the number of last-level leaves and s the size of
// the final (possibly partial) one. A (B+1)-way un-shuffle peels the
// separators off the repeating region, a B-way shuffle restores leaf-major
// order, and two rotations deliver [fulls][leaves]. All steps are parallel
// rounds of swaps.
func gatherPartialLevel[T any, V vec.Vec[T]](rn par.Runner, v V, off, n, b int) (full, partial int) {
	k := b + 1
	full, _ = layout.PerfectPrefix(n, k)
	w := n - full
	if w == 0 {
		return full, 0
	}
	d := (w + b - 1) / b // last-level leaf nodes
	s := w - b*(d-1)     // keys in the final leaf
	if d > 1 {
		region := (d - 1) * k
		shuffle.KUnshuffle[T](rn, v, off, region, k)
		if b >= 2 {
			shuffle.KShuffle[T](rn, v, off, (d-1)*b, b)
		}
		// [leaves (d-1)b][separators d-1] -> [separators][leaves].
		shuffle.RotateLeft[T](rn, v, off, region, (d-1)*b)
	}
	// [seps d-1][leaves (d-1)b][s leaves][rest fulls] ->
	// [seps][rest fulls][all w leaves].
	shuffle.RotateLeft[T](rn, v, off+(d-1), n-(d-1), (d-1)*b+s)
	return full, w
}

// fullSize returns the number of keys on the full levels of a complete
// search tree with n keys and node capacity b, and the number of full
// levels h (full = (b+1)^h - 1).
func fullSize(n, b int) (full, h int) {
	return layout.PerfectPrefix(n, b+1)
}

// scatterPartialLevel is the exact inverse of gatherPartialLevel: it
// re-interleaves the partial-level keys from the end of the window back
// into sorted order. Used by the inverse (un-permute) transformations.
func scatterPartialLevel[T any, V vec.Vec[T]](rn par.Runner, v V, off, n, b int) {
	k := b + 1
	full, _ := layout.PerfectPrefix(n, k)
	w := n - full
	if w == 0 {
		return
	}
	d := (w + b - 1) / b
	s := w - b*(d-1)
	shuffle.RotateRight[T](rn, v, off+(d-1), n-(d-1), (d-1)*b+s)
	if d > 1 {
		region := (d - 1) * k
		shuffle.RotateRight[T](rn, v, off, region, (d-1)*b)
		if b >= 2 {
			shuffle.KUnshuffle[T](rn, v, off, (d-1)*b, b)
		}
		shuffle.KShuffle[T](rn, v, off, region, k)
	}
}
