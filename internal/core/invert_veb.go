package core

import (
	"implicitlayout/internal/bits"
	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// InvertInvolutionVEB restores sorted order from a van Emde Boas layout
// (produced by either vEB construction algorithm — the layout is
// identical) by running the involution algorithm's steps backwards:
// subtrees are un-laid-out bottom-up, each split is undone with the
// inverse shuffle pair, non-perfect trees un-merge their last-level leaf
// chunks and re-interleave the partial level. Same work, depth, and
// in-place bounds as the forward transformation.
func InvertInvolutionVEB[T any, V vec.Vec[T]](o Options, v V) {
	rn := o.runner()
	n := v.Len()
	if n <= 1 {
		return
	}
	levels := bits.Levels(n)
	if n == 1<<uint(levels)-1 {
		invertVEBRecurse[T](rn, v, 0, n, levels)
		return
	}
	fullN, _ := fullSize(n, 1)
	invertVEBSeparated[T](rn, v, 0, fullN, n-fullN, levels)
	scatterPartialLevel[T](rn, v, 0, n, 1)
}

// invertVEBRecurse undoes vebRecurse on a perfect subtree: invert the top
// and bottom subtrees, then undo the split.
func invertVEBRecurse[T any, V vec.Vec[T]](rn par.Runner, v V, off, n, levels int) {
	if levels <= 1 {
		return
	}
	lt, lb := layout.VEBSplit(levels)
	r := 1<<uint(lt) - 1
	switch {
	case lb <= 1:
		invertVEBRecurse[T](rn, v, off, r, lt)
	case rn.IsSerial():
		invertVEBRecurse[T](rn, v, off, r, lt)
		l := 1<<uint(lb) - 1
		for j := 0; j <= r; j++ {
			invertVEBRecurse[T](rn, v, off+r+j*l, l, lb)
		}
	default:
		l := 1<<uint(lb) - 1
		rn.Tasks(r+2, func(i int, sub par.Runner) {
			if i == 0 {
				invertVEBRecurse[T](sub, v, off, r, lt)
				return
			}
			invertVEBRecurse[T](sub, v, off+r+(i-1)*l, l, lb)
		})
	}
	invVEBUnstep[T](rn, v, off, n, r, 1<<uint(lb))
}

// invVEBUnstep is the inverse of invVEBStep: un-shuffle the bottoms back
// into residue columns, then re-interleave the top keys.
func invVEBUnstep[T any, V vec.Vec[T]](rn par.Runner, v V, off, n, r, k int) {
	shuffle.KUnshuffle[T](rn, v, off+r, n-r, k-1)
	shuffle.KShuffle1[T](rn, v, off, n, k)
}

// invertVEBSeparated undoes vebAnySeparated: invert every subtree, pull
// the last-level leaf chunks back to the end, and undo the full-part
// split, leaving [fulls sorted][leaves sorted].
func invertVEBSeparated[T any, V vec.Vec[T]](rn par.Runner, v V, off, fullN, w, levels int) {
	lt, lb := layout.VEBSplit(levels)
	r := 1<<uint(lt) - 1
	if lt == levels-1 {
		invertVEBRecurse[T](rn, v, off, r, lt)
		return
	}
	lp := 1<<uint(lb-1) - 1
	capB := 1 << uint(lb-1)
	f := w / capB
	s := w - f*capB

	child := func(sub par.Runner, j int) {
		wj := clamp(w-j*capB, 0, capB)
		start := off + r + j*lp + min(w, j*capB)
		if wj == 0 {
			invertVEBRecurse[T](sub, v, start, lp, lb-1)
			return
		}
		// Inverting a separated bottom restores exactly the separated
		// [fulls][leaves] form the un-merge below expects.
		invertVEBSeparated[T](sub, v, start, lp, wj, lb)
	}
	if rn.IsSerial() {
		invertVEBRecurse[T](rn, v, off, r, lt)
		for j := 0; j <= r; j++ {
			child(rn, j)
		}
	} else {
		rn.Tasks(r+2, func(i int, sub par.Runner) {
			if i == 0 {
				invertVEBRecurse[T](sub, v, off, r, lt)
				return
			}
			child(sub, i-1)
		})
	}
	unmergeLeafChunks[T](rn, v, off+r, r+1, lp, capB, f, s)
	// Undo the full-part split (the inverse of the fullSplit shuffles).
	if levels%2 == 0 {
		lt2, lb2 := layout.VEBSplit(levels - 1)
		invVEBUnstep[T](rn, v, off, fullN, 1<<uint(lt2)-1, 1<<uint(lb2))
	} else {
		invVEBUnstep[T](rn, v, off, fullN, r, 1<<uint(lb-1))
	}
}

// unmergeLeafChunks is the inverse of mergeLeafChunks: it separates the
// interleaved [G_0 C_0][G_1 C_1]... arrangement back into [all groups]
// [all chunks], mirroring the forward divide-and-conquer with the inverse
// rotation applied after the sub-problems are undone.
func unmergeLeafChunks[T any, V vec.Vec[T]](rn par.Runner, v V, base, nG, lp, capB, f, s int) {
	cTot := f
	if s > 0 {
		cTot++
	}
	if cTot == 0 || lp == 0 {
		return
	}
	csum := func(c int) int {
		t := min(c, f) * capB
		if c > f {
			t += s
		}
		return t
	}
	var rec func(rn par.Runner, pos, g0, ng, nc int)
	rec = func(rn par.Runner, pos, g0, ng, nc int) {
		if nc == 0 || ng <= 1 {
			return
		}
		h := (ng + 1) / 2
		cL := clamp(h, 0, nc)
		moved := (ng - h) * lp
		rotLen := moved + csum(g0+cL) - csum(g0)
		leftSize := h*lp + csum(g0+cL) - csum(g0)
		if rn.IsSerial() {
			rec(rn, pos, g0, h, cL)
			rec(rn, pos+leftSize, g0+h, ng-h, nc-cL)
		} else {
			rn.Do(
				func(sub par.Runner) { rec(sub, pos, g0, h, cL) },
				func(sub par.Runner) { rec(sub, pos+leftSize, g0+h, ng-h, nc-cL) },
			)
		}
		shuffle.RotateRight[T](rn, v, pos+h*lp, rotLen, moved)
	}
	rec(rn, base, 0, nG, cTot)
}
