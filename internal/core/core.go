// Package core implements the paper's contribution: six parallel in-place
// algorithms that permute a sorted array into the BST, B-tree, and van
// Emde Boas (vEB) implicit search-tree layouts — an involution-based and a
// cycle-leader algorithm per layout (Chapters 2 and 3), with the
// non-perfect tree extensions of Chapter 5 so any array length is
// supported.
//
// Every algorithm moves data exclusively through the swap-based primitives
// of internal/shuffle and internal/gather, generic over the memory backend
// (raw slice, PEM I/O simulator, GPU cost model), and parallelizes through
// internal/par with O(P log N) auxiliary space — "in-place" per the
// paper's Definition 1.
package core

import (
	"implicitlayout/internal/bits"
	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

// Options configures a permutation run.
type Options struct {
	// Runner supplies the worker pool (P workers). The zero value selects
	// a single worker.
	Runner par.Runner
	// B is the B-tree node capacity (ignored by BST and vEB layouts).
	B int
	// Rev selects the T_REV2 model for the BST involution algorithm:
	// bits.Hardware (O(1), default) or bits.Software (O(log N) per call).
	Rev bits.Reverser
	// TransposedGather selects the matrix-transposition I/O optimization
	// of Section 4.2 for the vEB cycle-leader algorithm.
	TransposedGather bool
	// GatherBatch, when >= 2, makes the vEB cycle-leader process phase-1
	// cycles in batches of this many consecutive cycles per worker — the
	// "simpler solution" I/O optimization of Section 4.2. Ignored when
	// TransposedGather is set.
	GatherBatch int
}

func (o Options) runner() par.Runner {
	if o.Runner.P() < 1 {
		return par.New(1)
	}
	return o.Runner
}

func (o Options) rev() bits.Reverser {
	if o.Rev == nil {
		return bits.Hardware{}
	}
	return o.Rev
}

func (o Options) b() int {
	if o.B < 1 {
		panic("core: B-tree layouts require B >= 1")
	}
	return o.B
}

// Permute rearranges v (holding keys in sorted order) into layout k using
// algorithm a, in place and in parallel.
func Permute[T any, V vec.Vec[T]](o Options, v V, k layout.Kind, a Algorithm) {
	switch {
	case k == layout.Sorted:
		// identity
	case k == layout.BST && a == Involution:
		InvolutionBST[T](o, v)
	case k == layout.BST && a == CycleLeader:
		CycleBST[T](o, v)
	case k == layout.BTree && a == Involution:
		InvolutionBTree[T](o, v)
	case k == layout.BTree && a == CycleLeader:
		CycleBTree[T](o, v)
	case k == layout.VEB && a == Involution:
		InvolutionVEB[T](o, v)
	case k == layout.VEB && a == CycleLeader:
		CycleVEB[T](o, v)
	case k == layout.Hier && (a == Involution || a == CycleLeader):
		PermuteHier[T](o, v, a)
	default:
		panic("core: unknown layout/algorithm combination")
	}
}

// Algorithm selects one of the paper's two algorithm families.
type Algorithm int

const (
	// Involution composes the permutation from rounds of disjoint swaps
	// (Chapter 2).
	Involution Algorithm = iota
	// CycleLeader uses the equidistant gather machinery (Chapter 3).
	CycleLeader
)

// String returns the conventional name of the algorithm family.
func (a Algorithm) String() string {
	switch a {
	case Involution:
		return "involution"
	case CycleLeader:
		return "cycle-leader"
	}
	return "unknown"
}

// Algorithms lists both families.
func Algorithms() []Algorithm { return []Algorithm{Involution, CycleLeader} }
