package core

import (
	"implicitlayout/internal/bits"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
)

// InvolutionBST permutes the sorted window into the BST (Eytzinger) layout
// with the involution algorithm of Section 2.1 (after Fich, Munro,
// Poblete): writing the 1-indexed sorted position as i = (x 1 0^j)_2, its
// layout position is pi(i) = (0^j 1 x)_2, which factors into the two
// involutions rev2(d, .) followed by keep-MSB-reverse-rest. Each involution
// is one parallel round of N/2 independent swaps, so the algorithm runs in
// O(N/P * T_REV2(N)) time and O(1) rounds — the fastest-depth algorithm in
// Table 1.1. Non-perfect sizes are handled by the Chapter 5 pre-pass.
func InvolutionBST[T any, V vec.Vec[T]](o Options, v V) {
	rn := o.runner()
	rev := o.rev()
	n := v.Len()
	full, d := fullSize(n, 1)
	gatherPartialLevel[T](rn, v, 0, n, 1)
	if full < 2 {
		return
	}
	cost := rev.Cost(d) + 4
	shuffle.ApplyInvolution[T](rn, v, 0, full, cost, bstRound1{rev: rev, d: d})
	shuffle.ApplyInvolution[T](rn, v, 0, full, cost, bstRound2{rev: rev})
}

// bstRound1 is the first BST involution: reverse all d bits of the
// 1-indexed position (shifted to 0-indexing).
type bstRound1 struct {
	rev bits.Reverser
	d   int
}

// Map returns rev2(d, i+1) - 1.
func (m bstRound1) Map(i uint64) uint64 { return m.rev.Rev2(m.d, i+1) - 1 }

// bstRound2 is the second BST involution: keep the most significant bit of
// the 1-indexed position and reverse the rest.
type bstRound2 struct{ rev bits.Reverser }

// Map returns revBelowMSB(i+1) - 1.
func (m bstRound2) Map(i uint64) uint64 { return bits.RevBelowMSB(m.rev, i+1) - 1 }

// InvertInvolutionBST restores sorted order from a BST layout produced by
// InvolutionBST (or CycleBST — the layouts are identical) by applying the
// involutions in the opposite order and undoing the partial-level gather.
func InvertInvolutionBST[T any, V vec.Vec[T]](o Options, v V) {
	rn := o.runner()
	rev := o.rev()
	n := v.Len()
	full, d := fullSize(n, 1)
	if full >= 2 {
		cost := rev.Cost(d) + 4
		shuffle.ApplyInvolution[T](rn, v, 0, full, cost, bstRound2{rev: rev})
		shuffle.ApplyInvolution[T](rn, v, 0, full, cost, bstRound1{rev: rev, d: d})
	}
	scatterPartialLevel[T](rn, v, 0, n, 1)
}
