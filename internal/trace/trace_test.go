package trace

import (
	"reflect"
	"testing"

	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
)

func TestCountsSerial(t *testing.T) {
	v := New([]int{0, 1, 2, 3}, 1)
	v.Swap(0, 0, 3)
	v.Swap(0, 1, 2)
	v.SwapRange(0, 0, 2, 2)
	_ = v.Get(0, 1)
	v.Set(0, 1, 9)
	v.AddInstr(0, 7)
	v.BeginRound("r", 4)
	v.BeginRound("r", 4)

	if v.Swaps() != 2+2 {
		t.Fatalf("Swaps = %d, want 4", v.Swaps())
	}
	if v.Work() != 2*4+1+1 {
		t.Fatalf("Work = %d, want 10", v.Work())
	}
	if v.Instr() != 7 || v.Rounds() != 2 {
		t.Fatalf("Instr/Rounds wrong: %d %d", v.Instr(), v.Rounds())
	}
	if v.MaxWork() != v.Work() {
		t.Fatal("single proc MaxWork must equal Work")
	}
	v.Reset()
	if v.Work() != 0 || v.Rounds() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestParallelAccountingMatchesSerial: total work is identical whatever
// the worker count, and MaxWork shrinks with P.
func TestParallelAccountingMatchesSerial(t *testing.T) {
	n := 1 << 12
	mk := func() []int {
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		return s
	}
	s1 := mk()
	v1 := New(s1, 1)
	shuffle.KShuffle[int](par.New(1), v1, 0, n, 4)

	s4 := mk()
	v4 := New(s4, 4)
	shuffle.KShuffle[int](par.Runner{Lo: 0, Hi: 4, MinFor: 1}, v4, 0, n, 4)

	if !reflect.DeepEqual(s1, s4) {
		t.Fatal("results differ")
	}
	if v1.Work() != v4.Work() {
		t.Fatalf("total work differs: %d vs %d", v1.Work(), v4.Work())
	}
	if v4.MaxWork() >= v1.MaxWork() {
		t.Fatalf("P=4 MaxWork %d not smaller than serial %d", v4.MaxWork(), v1.MaxWork())
	}

	// A reversal assigns swaps perfectly evenly, so its per-processor
	// balance must be near-ideal.
	s := mk()
	vr := New(s, 4)
	shuffle.Reverse[int](par.Runner{Lo: 0, Hi: 4, MinFor: 1}, vr, 0, n)
	if vr.MaxWork() > vr.Work()/4+64 {
		t.Fatalf("reversal imbalanced: max %d of total %d", vr.MaxWork(), vr.Work())
	}
}

// TestTraceDataIntact: counting must not corrupt the data.
func TestTraceDataIntact(t *testing.T) {
	s := []int{3, 1, 2}
	v := New(s, 2)
	v.Swap(1, 0, 1)
	if !reflect.DeepEqual(s, []int{1, 3, 2}) {
		t.Fatalf("data wrong: %v", s)
	}
}
