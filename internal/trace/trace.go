// Package trace provides a counting memory backend: it executes a
// permutation algorithm on a real slice while tallying, per processor, the
// number of element swaps, block-swap elements, reads, writes, model
// instructions and primitive rounds. The counters empirically validate the
// work column of Table 1.1 (total operations must track the closed forms
// O(N), O(N log N), O(N log log N), ...) and feed the experiment harness.
package trace

import "sync/atomic"

// pad separates per-processor counters onto distinct cache lines.
type counters struct {
	swaps  int64
	ranged int64 // elements moved through SwapRange
	gets   int64
	sets   int64
	instr  int64
	_      [3]int64
}

// Vec wraps a slice and counts every access. Use one Vec per measurement;
// processors must follow the CREW discipline (distinct p for concurrent
// calls), as everywhere else in this repository.
type Vec[T any] struct {
	Data   []T
	pc     []counters
	rounds atomic.Int64
}

// New returns a counting backend over data for up to p processors.
func New[T any](data []T, p int) *Vec[T] {
	if p < 1 {
		p = 1
	}
	return &Vec[T]{Data: data, pc: make([]counters, p)}
}

// Len returns the number of elements.
func (v *Vec[T]) Len() int { return len(v.Data) }

// Get returns the element at index i.
func (v *Vec[T]) Get(p, i int) T {
	v.pc[p].gets++
	return v.Data[i]
}

// Set stores x at index i.
func (v *Vec[T]) Set(p, i int, x T) {
	v.pc[p].sets++
	v.Data[i] = x
}

// Swap exchanges elements i and j.
func (v *Vec[T]) Swap(p, i, j int) {
	v.pc[p].swaps++
	v.Data[i], v.Data[j] = v.Data[j], v.Data[i]
}

// SwapRange exchanges the non-overlapping blocks [i, i+n) and [j, j+n).
func (v *Vec[T]) SwapRange(p, i, j, n int) {
	v.pc[p].ranged += int64(n)
	a, b := v.Data[i:i+n], v.Data[j:j+n]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// BeginRound counts one primitive round (may be called concurrently from
// independent subtree tasks).
func (v *Vec[T]) BeginRound(string, int) { v.rounds.Add(1) }

// AddInstr charges n model instructions to processor p.
func (v *Vec[T]) AddInstr(p, n int) { v.pc[p].instr += int64(n) }

// Swaps returns the total number of element swaps, counting each
// block-swapped element as one swap.
func (v *Vec[T]) Swaps() int64 {
	var t int64
	for i := range v.pc {
		t += v.pc[i].swaps + v.pc[i].ranged
	}
	return t
}

// Work returns the total number of element operations: swaps (weighted by
// the two elements they move) plus reads and writes.
func (v *Vec[T]) Work() int64 {
	var t int64
	for i := range v.pc {
		t += 2*(v.pc[i].swaps+v.pc[i].ranged) + v.pc[i].gets + v.pc[i].sets
	}
	return t
}

// Instr returns the total model instruction count charged by the index
// arithmetic (digit reversals, modular inverses).
func (v *Vec[T]) Instr() int64 {
	var t int64
	for i := range v.pc {
		t += v.pc[i].instr
	}
	return t
}

// MaxWork returns the largest per-processor operation count: the load of
// the busiest processor, whose ratio to Work()/P measures balance.
func (v *Vec[T]) MaxWork() int64 {
	var m int64
	for i := range v.pc {
		w := 2*(v.pc[i].swaps+v.pc[i].ranged) + v.pc[i].gets + v.pc[i].sets
		if w > m {
			m = w
		}
	}
	return m
}

// Rounds returns the number of primitive rounds issued.
func (v *Vec[T]) Rounds() int64 { return v.rounds.Load() }

// Reset clears all counters.
func (v *Vec[T]) Reset() {
	for i := range v.pc {
		v.pc[i] = counters{}
	}
	v.rounds.Store(0)
}
