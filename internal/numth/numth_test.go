package numth

import (
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, w uint64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {17, 13, 1}, {100, 75, 25},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.w {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.w)
		}
	}
}

func TestExtGCDBezout(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a, b := int64(aRaw)+1, int64(bRaw)+1
		g, x, y := ExtGCD(a, b)
		return a*x+b*y == g && g == int64(GCD(uint64(a), uint64(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModInverse(t *testing.T) {
	f := func(aRaw, mRaw uint16) bool {
		m := uint64(mRaw)%1000 + 2
		a := uint64(aRaw)%m + 1
		if GCD(a, m) != 1 {
			return true // skip non-coprime draws
		}
		inv := ModInverse(a, m)
		return inv > 0 && inv < m && a*inv%m == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestModInversePanicsOnNonCoprime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-coprime inverse")
		}
	}()
	ModInverse(4, 8)
}

// TestJIsInvolution: J_r is an involution on {0..m} when gcd(r, m) == 1.
func TestJIsInvolution(t *testing.T) {
	for _, n := range []int{6, 9, 10, 12, 27, 64, 81, 100} {
		m := uint64(n - 1)
		for _, r := range []uint64{1, 2, 3} {
			if GCD(r, m) != 1 {
				continue
			}
			for i := uint64(0); i <= m; i++ {
				j := J(r, i, m)
				if j > m {
					t.Fatalf("J_%d(%d) mod %d = %d out of range", r, i, m, j)
				}
				if J(r, j, m) != i {
					t.Fatalf("J_%d not involution at i=%d (m=%d): J(J(i))=%d", r, i, m, J(r, j, m))
				}
			}
		}
	}
}

// TestShuffleFactorsThroughJ: sigma(i) = k*i mod (n-1) equals J_k(J_1(i)),
// the involution factorization of Yang et al. used by every Ξ₂ round.
func TestShuffleFactorsThroughJ(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{6, 2}, {6, 3}, {12, 2}, {12, 3}, {12, 4}, {27, 3}, {100, 5}, {64, 2},
	} {
		m := uint64(tc.n - 1)
		k := uint64(tc.k)
		for i := uint64(0); i < uint64(tc.n); i++ {
			want := Shuffle(k, i, uint64(tc.n))
			got := J(k, J(1, i, m), m)
			if got != want {
				t.Fatalf("n=%d k=%d i=%d: J_k(J_1(i))=%d, want sigma(i)=%d", tc.n, tc.k, i, got, want)
			}
		}
	}
}

// TestUnshuffleInvertsShuffle on full index sets.
func TestUnshuffleInvertsShuffle(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{6, 2}, {12, 3}, {27, 3}, {64, 2}, {125, 5},
	} {
		n, k := uint64(tc.n), uint64(tc.k)
		for i := uint64(0); i < n; i++ {
			if Unshuffle(k, Shuffle(k, i, n), n) != i {
				t.Fatalf("n=%d k=%d: unshuffle(shuffle(%d)) != %d", tc.n, tc.k, i, i)
			}
		}
	}
}

// TestShuffleInterleaves: the shuffle of k decks of m cards interleaves
// them: input position c*m+j lands at j*k+c.
func TestShuffleInterleaves(t *testing.T) {
	for _, tc := range []struct{ k, m int }{{2, 5}, {3, 4}, {4, 4}, {5, 3}} {
		n := uint64(tc.k * tc.m)
		for c := 0; c < tc.k; c++ {
			for j := 0; j < tc.m; j++ {
				i := uint64(c*tc.m + j)
				want := uint64(j*tc.k + c)
				if got := Shuffle(uint64(tc.k), i, n); got != want {
					t.Fatalf("k=%d m=%d: shuffle(%d)=%d, want %d", tc.k, tc.m, i, got, want)
				}
			}
		}
	}
}
