// Package numth implements the modest number-theoretic machinery behind the
// involution decomposition of the k-way perfect shuffle (Yang, Ellis,
// Mamakani, Ruskey 2013): greatest common divisors, the extended Euclidean
// algorithm, modular inverses, and the J_r involutions whose composition
// J_k ∘ J_1 equals the shuffle permutation sigma(i) = k*i mod (N-1).
package numth

// GCD returns the greatest common divisor of a and b, with GCD(0, 0) == 0.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGCD returns (g, x, y) such that a*x + b*y == g == gcd(a, b), using the
// iterative extended Euclidean algorithm. x and y may be negative.
func ExtGCD(a, b int64) (g, x, y int64) {
	x0, x1 := int64(1), int64(0)
	y0, y1 := int64(0), int64(1)
	for b != 0 {
		q := a / b
		a, b = b, a-q*b
		x0, x1 = x1, x0-q*x1
		y0, y1 = y1, y0-q*y1
	}
	return a, x0, y0
}

// ModInverse returns the multiplicative inverse of a modulo m (0 < result <
// m), and panics if gcd(a, m) != 1 or m < 2. Its running time, O(log m),
// dominates the per-element cost of the J involutions — the O(log N) factor
// in the involution B-tree row of Table 1.1.
func ModInverse(a, m uint64) uint64 {
	if m < 2 {
		panic("numth: ModInverse modulus must be >= 2")
	}
	a %= m
	g, x, _ := ExtGCD(int64(a), int64(m))
	if g != 1 {
		panic("numth: ModInverse of non-coprime element")
	}
	xm := x % int64(m)
	if xm < 0 {
		xm += int64(m)
	}
	return uint64(xm)
}

// J computes the involution J_r on the index set {0, ..., m} where m = N-1:
//
//	J_r(i) = g * ( r * (i/g)^{-1} mod (m/g) ),  g = gcd(i, m),
//
// with the fixed points J_r(0) = 0 and J_r(m) = m. J_r is an involution
// whenever gcd(r, m) == 1; the k-way perfect shuffle of N elements
// (sigma(i) = k*i mod m) factors as sigma = J_k ∘ J_1 because N ≡ 0 (mod k)
// implies gcd(k, m) == 1.
func J(r, i, m uint64) uint64 {
	if i == 0 || i == m {
		return i
	}
	g := GCD(i, m)
	mg := m / g
	inv := ModInverse(i/g, mg)
	return g * (r % mg * inv % mg)
}

// Shuffle returns sigma(i) = k*i mod (N-1) for 0 <= i < N, with
// sigma(N-1) = N-1: the position that element i of the deck-major input
// occupies after a k-way perfect shuffle of N = k*m elements.
func Shuffle(k, i, n uint64) uint64 {
	if n < 2 || i == n-1 {
		return i
	}
	return k * i % (n - 1)
}

// Unshuffle returns sigma^{-1}(i): the position element i moves to under
// the k-way perfect un-shuffle of N elements.
func Unshuffle(k, i, n uint64) uint64 {
	if n < 2 || i == n-1 {
		return i
	}
	m := n - 1
	// sigma^{-1}(i) = (N/k) * i mod (N-1) since k * (N/k) = N ≡ 1 (mod N-1).
	return n / k * i % m
}
