// Package gather implements the equidistant gather operation of Chapter 3
// and its extensions: the core building block of the cycle-leader
// permutation algorithms.
//
// The input window holds r "top" units T0[1..r] equidistantly distributed
// among r+1 "bottom" groups of l units each:
//
//	[ T1 (l units) ][T0[1]][ T2 (l units) ][T0[2]] ... [T0[r]][ T_{r+1} ]
//
// and the gather moves every T0 unit to the front, preserving the relative
// order of everything:
//
//	[ T0 (r units) ][ T1 ][ T2 ] ... [ T_{r+1} ]
//
// Phase 1 rotates, for each i in 1..r, the contents of the i+1 units at
// (1-indexed) unit positions {i, l+i, 2l+i, ..., il+i} right by one — the
// r disjoint cycles identified in Section 3.1 (requires r <= l). Phase 2
// fixes the rotation of each bottom group: group j is shifted right by
// r+1-j (mod l). Both phases are compositions of parallel in-place
// rotations, so the whole gather is O(n) work, O(1) depth rounds.
//
// Units are c contiguous elements; c > 1 gives the chunked gathers used by
// the extended equidistant gather (Section 3.2) and by the I/O analysis of
// Chapter 4. ExtendedPerfect and the shape-b variant implement the r > l
// recursion for B-tree construction, and Transposed implements the
// matrix-transposition blocking of Section 4.2 (Figure 4.1).
package gather

import (
	"fmt"

	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
)

// Equidistant performs the equidistant gather on the window of
// r + (r+1)*l units of c elements each starting at element offset lo.
// Requires 0 <= r <= l.
func Equidistant[T any, V vec.Vec[T]](rn par.Runner, v V, lo, r, l, c int) {
	if r == 0 {
		return
	}
	if r < 0 || l < r || c < 1 {
		panic(fmt.Sprintf("gather: invalid equidistant shape r=%d l=%d c=%d", r, l, c))
	}
	phase1[T](rn, v, lo, r, l, c)
	phase2[T](rn, v, lo, r, l, c)
}

// phase1 rotates each of the r disjoint cycles right by one unit. Cycle i
// (1-indexed) covers unit positions {t*l + i : t = 0..i} (1-indexed),
// i.e. 0-indexed unit t*l + i - 1, and ends at unit i*(l+1) - 1 which
// holds T0[i]. Cycle lengths grow linearly with i, so the cycles are
// distributed across workers by total weight.
func phase1[T any, V vec.Vec[T]](rn par.Runner, v V, lo, r, l, c int) {
	v.BeginRound("gather/cycles", (r*(r+3)/2)*c)
	if rn.IsSerial() {
		phase1Seq[T](v, rn.Lo, lo, l, c, 1, r)
		return
	}
	// weight of cycles 1..i is sum(t+1) = i(i+3)/2.
	cum := func(i int) int { return i * (i + 3) / 2 }
	rn.ForWeighted(r, cum, func(p, a, b int) {
		phase1Seq[T](v, p, lo, l, c, a+1, b)
	})
}

// phase1Seq rotates cycles a..b (1-indexed, inclusive) on one worker.
func phase1Seq[T any, V vec.Vec[T]](v V, p, lo, l, c, a, b int) {
	sub := par.Serial(p)
	for i := a; i <= b; i++ {
		base := lo + (i-1)*c
		shuffle.RotateRightUnits[T](sub, v, base, l*c, i+1, c, 1)
	}
}

// phase2 shifts bottom group j (1-indexed, j = 1..r) right by r+1-j units.
// Group j occupies l units starting at 0-indexed unit r + (j-1)*l.
func phase2[T any, V vec.Vec[T]](rn par.Runner, v V, lo, r, l, c int) {
	v.BeginRound("gather/fixup", r*l*c)
	if rn.IsSerial() {
		for j := 1; j <= r; j++ {
			base := lo + (r+(j-1)*l)*c
			shuffle.RotateRightUnits[T](rn, v, base, c, l, c, (r+1-j)%l)
		}
		return
	}
	rn.Tasks(r, func(j0 int, sub par.Runner) {
		j := j0 + 1
		base := lo + (r+(j-1)*l)*c
		shuffle.RotateRightUnits[T](sub, v, base, c, l, c, (r+1-j)%l)
	})
}

// ExtendedPerfect performs the extended equidistant gather (Section 3.2)
// on a window in the "shape a" pattern ([l units][1 unit])^r [l units]
// with r+1 a multiple of l+1 (r > l allowed): all r interleaved units are
// gathered, in order, to the front, preserving the order of the rest.
// The window holds (r+1)*(l+1) - 1 units of c elements at offset lo.
//
// For r <= l it reduces to the plain equidistant gather; otherwise it
// partitions the window into l+1 sub-windows, gathers each recursively,
// and finishes with one chunk-level gather that treats whole sub-results
// as units — the C-chunk scheme of the paper.
func ExtendedPerfect[T any, V vec.Vec[T]](rn par.Runner, v V, lo, r, l, c int) {
	if r <= l {
		Equidistant[T](rn, v, lo, r, l, c)
		return
	}
	if (r+1)%(l+1) != 0 {
		panic(fmt.Sprintf("gather: extended shape needs (l+1) | (r+1), got r=%d l=%d", r, l))
	}
	cc := (r + 1) / (l + 1) // interleaved units per partition
	// Partition 0: shape a with r0 = cc-1, size cc*(l+1)-1 units.
	// Partitions 1..l: shape b with cc interleaved units, cc*(l+1) units.
	s0 := cc*(l+1) - 1
	sp := cc * (l + 1)
	if rn.IsSerial() {
		ExtendedPerfect[T](rn, v, lo, cc-1, l, c)
		for i := 1; i <= l; i++ {
			extendedC[T](rn, v, lo+(s0+(i-1)*sp)*c, cc, l, c)
		}
	} else {
		rn.Tasks(l+1, func(i int, sub par.Runner) {
			if i == 0 {
				ExtendedPerfect[T](sub, v, lo, cc-1, l, c)
				return
			}
			start := lo + (s0+(i-1)*sp)*c
			extendedC[T](sub, v, start, cc, l, c)
		})
	}
	// Chunk-level gather with units of cc*c elements, skipping the cc-1
	// already-gathered units at the very front: the remaining pattern is
	// ([l chunks][1 chunk])^l [l chunks].
	Equidistant[T](rn, v, lo+(cc-1)*c, l, l, cc*c)
}

// extendedC gathers the "interleaved-first" pattern ([1 unit][l units])^rb
// — rb*(l+1) units total — moving the rb interleaved units, in order, to
// the front and preserving the order of the rest. Requires rb <= l+1 or
// (l+1) | rb (always satisfied by the callers: rb is a power of l+1 for
// B-trees and a small constant for the non-perfect vEB path).
func extendedC[T any, V vec.Vec[T]](rn par.Runner, v V, lo, rb, l, c int) {
	if rb <= 1 {
		return // [1][l] is already gathered
	}
	if rb <= l+1 {
		// Skip the leading interleaved unit (already in place); the rest
		// is ([l][1])^(rb-1) [l], i.e. shape a with r = rb-1 <= l.
		Equidistant[T](rn, v, lo+c, rb-1, l, c)
		return
	}
	if rb%(l+1) != 0 {
		panic(fmt.Sprintf("gather: interleaved-first shape needs rb <= l+1 or (l+1) | rb, got rb=%d l=%d", rb, l))
	}
	cc := rb / (l + 1)
	sp := cc * (l + 1)
	if rn.IsSerial() {
		for i := 0; i <= l; i++ {
			extendedC[T](rn, v, lo+i*sp*c, cc, l, c)
		}
	} else {
		rn.Tasks(l+1, func(i int, sub par.Runner) {
			extendedC[T](sub, v, lo+i*sp*c, cc, l, c)
		})
	}
	// Chunk view with chunks of cc units: ([1 chunk][l chunks])^(l+1);
	// skip the first chunk and gather the remaining shape-a pattern.
	Equidistant[T](rn, v, lo+cc*c, l, l, cc*c)
}
