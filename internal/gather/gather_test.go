package gather

import (
	"math/rand"
	"reflect"
	"testing"

	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
)

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// refGather computes the gather out of place: the units at 1-indexed unit
// positions that are multiples of l+1 (the interleaved T0 units) move, in
// order, to the front; all other units keep their relative order. It works
// for both shape a ((r+1)(l+1)-1 units) and the interleaved patterns used
// by the extended gather.
func refGather(in []int, l, c int) []int {
	nu := len(in) / c
	var tops, rest []int
	for u := 0; u < nu; u++ {
		unit := in[u*c : (u+1)*c]
		if (u+1)%(l+1) == 0 {
			tops = append(tops, unit...)
		} else {
			rest = append(rest, unit...)
		}
	}
	return append(tops, rest...)
}

func runners() []par.Runner {
	return []par.Runner{
		par.New(1),
		{Lo: 0, Hi: 2, MinFor: 1},
		{Lo: 0, Hi: 5, MinFor: 1},
	}
}

func TestEquidistantAgainstReference(t *testing.T) {
	for _, rn := range runners() {
		for _, tc := range []struct{ r, l, c int }{
			{1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {7, 7, 1}, {2, 5, 1}, {1, 9, 1},
			{4, 4, 3}, {3, 6, 2}, {5, 5, 4}, {0, 3, 1}, {15, 15, 1}, {10, 31, 2},
		} {
			n := (tc.r + (tc.r+1)*tc.l) * tc.c
			a := seq(n)
			want := refGather(seq(n), tc.l, tc.c)
			Equidistant[int](rn, vec.Of(a), 0, tc.r, tc.l, tc.c)
			if !reflect.DeepEqual(a, want) {
				t.Fatalf("P=%d r=%d l=%d c=%d:\n got %v\nwant %v", rn.P(), tc.r, tc.l, tc.c, a, want)
			}
		}
	}
}

func TestEquidistantWithOffset(t *testing.T) {
	rn := par.New(2)
	pad := 4
	r, l, c := 3, 3, 2
	n := (r + (r+1)*l) * c
	a := seq(pad + n + pad)
	want := append(append(seq(pad), refGather(seq2(pad, n), l, c)...), seq2(pad+n, pad)...)
	Equidistant[int](rn, vec.Of(a), pad, r, l, c)
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("offset gather:\n got %v\nwant %v", a, want)
	}
}

func seq2(start, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = start + i
	}
	return s
}

func TestEquidistantPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for r > l")
		}
	}()
	a := seq(100)
	Equidistant[int](par.New(1), vec.Of(a), 0, 5, 2, 1)
}

// TestExtendedPerfect checks the r > l recursion against the reference for
// B-tree shapes: r = (l+1)^(e-1) - 1.
func TestExtendedPerfect(t *testing.T) {
	for _, rn := range runners() {
		for _, tc := range []struct{ l, e, c int }{
			{1, 2, 1}, {1, 3, 1}, {1, 4, 1}, {1, 5, 1},
			{2, 2, 1}, {2, 3, 1}, {2, 4, 1},
			{3, 3, 1}, {3, 3, 2}, {7, 2, 1}, {7, 3, 1}, {4, 3, 3},
		} {
			k := tc.l + 1
			r := pow(k, tc.e-1) - 1
			n := (pow(k, tc.e) - 1) * tc.c
			a := seq(n)
			want := refGather(seq(n), tc.l, tc.c)
			ExtendedPerfect[int](rn, vec.Of(a), 0, r, tc.l, tc.c)
			if !reflect.DeepEqual(a, want) {
				t.Fatalf("P=%d l=%d e=%d c=%d (r=%d):\n got %v\nwant %v",
					rn.P(), tc.l, tc.e, tc.c, r, a[:min(len(a), 40)], want[:min(len(want), 40)])
			}
		}
	}
}

// TestExtendedPerfectVEBShapes checks the shapes used by the non-perfect
// vEB path: r+1 = 4(l+1).
func TestExtendedPerfectVEBShapes(t *testing.T) {
	rn := par.New(3)
	rn.MinFor = 1
	for _, x := range []int{3, 4, 5, 6} {
		l := 1<<uint(x-2) - 1
		r := 1<<uint(x) - 1
		n := r + (r+1)*l
		a := seq(n)
		want := refGather(seq(n), l, 1)
		ExtendedPerfect[int](rn, vec.Of(a), 0, r, l, 1)
		if !reflect.DeepEqual(a, want) {
			t.Fatalf("x=%d r=%d l=%d: extended gather mismatch", x, r, l)
		}
	}
}

// TestTransposedMatchesEquidistant: the I/O-optimized transpose variant
// computes the same permutation as the direct gather for r == l.
func TestTransposedMatchesEquidistant(t *testing.T) {
	for _, rn := range runners() {
		for _, tc := range []struct{ r, c int }{
			{1, 1}, {2, 1}, {3, 1}, {4, 1}, {7, 1}, {15, 1}, {31, 1}, {33, 1},
			{3, 2}, {8, 3}, {40, 1}, {64, 1},
		} {
			n := (tc.r + (tc.r+1)*tc.r) * tc.c
			a := seq(n)
			b := seq(n)
			Transposed[int](rn, vec.Of(a), 0, tc.r, tc.c)
			Equidistant[int](rn, vec.Of(b), 0, tc.r, tc.r, tc.c)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("P=%d r=%d c=%d: transposed gather differs from direct", rn.P(), tc.r, tc.c)
			}
		}
	}
}

// TestGatherRandomized fuzzes shapes and worker counts.
func TestGatherRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		l := rng.Intn(12) + 1
		r := rng.Intn(l) + 1 // r <= l
		c := rng.Intn(3) + 1
		p := rng.Intn(6) + 1
		rn := par.Runner{Lo: 0, Hi: p, MinFor: 1}
		n := (r + (r+1)*l) * c
		a := seq(n)
		want := refGather(seq(n), l, c)
		Equidistant[int](rn, vec.Of(a), 0, r, l, c)
		if !reflect.DeepEqual(a, want) {
			t.Fatalf("trial %d r=%d l=%d c=%d P=%d: mismatch", trial, r, l, c, p)
		}
	}
}

func pow(k, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= k
	}
	return r
}

// TestEquidistantBatchedMatchesPlain: the Section 4.2 "simpler solution"
// (batched cycle processing) computes the identical permutation.
func TestEquidistantBatchedMatchesPlain(t *testing.T) {
	for _, rn := range runners() {
		for _, tc := range []struct{ r, l, c, batch int }{
			{1, 1, 1, 2}, {3, 3, 1, 2}, {7, 7, 1, 4}, {15, 15, 1, 8},
			{5, 9, 1, 3}, {31, 31, 1, 8}, {8, 8, 2, 4}, {63, 63, 1, 16},
			{4, 4, 1, 99}, // batch > l falls back to the plain gather
		} {
			n := (tc.r + (tc.r+1)*tc.l) * tc.c
			a := seq(n)
			want := refGather(seq(n), tc.l, tc.c)
			EquidistantBatched[int](rn, vec.Of(a), 0, tc.r, tc.l, tc.c, tc.batch)
			if !reflect.DeepEqual(a, want) {
				t.Fatalf("P=%d r=%d l=%d c=%d batch=%d: mismatch", rn.P(), tc.r, tc.l, tc.c, tc.batch)
			}
		}
	}
}

// TestBatchedGatherRandomized fuzzes the batched gather.
func TestBatchedGatherRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		l := rng.Intn(20) + 1
		r := rng.Intn(l) + 1
		batch := rng.Intn(l+2) + 2
		p := rng.Intn(4) + 1
		rn := par.Runner{Lo: 0, Hi: p, MinFor: 1}
		n := r + (r+1)*l
		a := seq(n)
		want := refGather(seq(n), l, 1)
		EquidistantBatched[int](rn, vec.Of(a), 0, r, l, 1, batch)
		if !reflect.DeepEqual(a, want) {
			t.Fatalf("trial %d r=%d l=%d batch=%d P=%d: mismatch", trial, r, l, batch, p)
		}
	}
}
