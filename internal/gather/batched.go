package gather

import (
	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
)

// maxBatchTemp bounds the per-worker temporary space of the batched
// gather, keeping the algorithm within the paper's Definition 1 budget of
// O(M) words per processor.
const maxBatchTemp = 256

// EquidistantBatched performs the equidistant gather like Equidistant but
// processes phase-1 cycles in batches of `batch` consecutive cycles per
// worker — the "simpler solution" of Section 4.2: B consecutive array
// elements always belong to B consecutive cycles, so walking a batch row
// by row turns the strided cycle accesses into contiguous runs, at the
// cost of O(batch·c) temporary words per worker. Falls back to the plain
// gather when the temporary would exceed the per-processor budget.
func EquidistantBatched[T any, V vec.Vec[T]](rn par.Runner, v V, lo, r, l, c, batch int) {
	if batch < 2 || batch > l || batch*c > maxBatchTemp || r == 0 {
		Equidistant[T](rn, v, lo, r, l, c)
		return
	}
	if r < 0 || l < r || c < 1 {
		panic("gather: invalid equidistant shape")
	}
	v.BeginRound("gather/cycles-batched", (r*(r+3)/2)*c)
	nBatches := (r + batch - 1) / batch
	// Work of batch k is dominated by its longest cycle (~(k+1)*batch).
	cum := func(k int) int { return k * (k + 1) / 2 }
	rn.ForWeighted(nBatches, cum, func(p, a, b int) {
		tmp := make([]T, batch*c)
		for k := a; k < b; k++ {
			i0 := k*batch + 1
			i1 := min(i0+batch, r+1)
			batchedCycles[T](v, p, lo, l, c, i0, i1, tmp)
		}
	})
	phase2[T](rn, v, lo, r, l, c)
}

// batchedCycles rotates cycles i0..i1-1 (1-indexed) right by one unit,
// walking rows top-down so each row move touches two contiguous runs.
// Cycle i covers unit positions u_t = t*l + i - 1 for t = 0..i; content
// moves u_t -> u_{t+1} cyclically.
func batchedCycles[T any, V vec.Vec[T]](v V, p, lo, l, c, i0, i1 int, tmp []T) {
	// Save each cycle's last unit (position i*(l+1)-1, the T0 element).
	for i := i0; i < i1; i++ {
		base := lo + (i*(l+1)-1)*c
		for e := 0; e < c; e++ {
			tmp[(i-i0)*c+e] = v.Get(p, base+e)
		}
	}
	// Shift rows upward: for t descending, cycles with i >= t+1 move
	// their row-t unit to row t+1. The sources for fixed t are the
	// contiguous units [t*l + max(i0,t+1) - 1, t*l + i1 - 1).
	for t := i1 - 2; t >= 0; t-- {
		first := max(i0, t+1)
		src := lo + (t*l+first-1)*c
		dst := lo + ((t+1)*l+first-1)*c
		run := (i1 - first) * c
		for e := run - 1; e >= 0; e-- {
			v.Set(p, dst+e, v.Get(p, src+e))
		}
	}
	// Drop the saved units into the cycle heads (contiguous run).
	head := lo + (i0-1)*c
	for i := i0; i < i1; i++ {
		for e := 0; e < c; e++ {
			v.Set(p, head+(i-i0)*c+e, tmp[(i-i0)*c+e])
		}
	}
}
