package gather

import (
	"fmt"

	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
)

// Transposed performs the equidistant gather for the square case r == l
// using the I/O-optimized algorithm of Section 4.2 (Figure 4.1): the
// window is viewed as an (r+1) x (r+1) row-major matrix of units with the
// bottom-right unit missing. Each row i of the leading r x r submatrix is
// rotated right by i, aligning the elements of each phase-1 cycle into a
// column; transposing the submatrix then makes every cycle contiguous, so
// each cycle rotation touches sequential memory. The transformation is
// undone afterwards and the usual phase-2 fixup shifts complete the
// gather. The result is identical to Equidistant with r == l.
func Transposed[T any, V vec.Vec[T]](rn par.Runner, v V, lo, r, c int) {
	if r == 0 {
		return
	}
	if r < 0 || c < 1 {
		panic(fmt.Sprintf("gather: invalid transposed shape r=%d c=%d", r, c))
	}
	if r == 1 {
		Equidistant[T](rn, v, lo, 1, 1, c)
		return
	}
	rowLen := (r + 1) * c // elements per matrix row

	// Step 1: rotate row i of the r x r submatrix right by i units.
	shiftRow := func(sub par.Runner, i int, back bool) {
		s := i % r
		if back {
			s = (r - s) % r
		}
		shuffle.RotateRightUnits[T](sub, v, lo+i*rowLen, c, r, c, s)
	}
	shiftRows := func(back bool) {
		v.BeginRound("gather/rowshift", r*r*c)
		if rn.IsSerial() {
			for i := 1; i < r; i++ {
				shiftRow(rn, i, back)
			}
			return
		}
		rn.Tasks(r-1, func(i0 int, sub par.Runner) {
			shiftRow(sub, i0+1, back)
		})
	}
	shiftRows(false)
	transpose[T](rn, v, lo, r, rowLen, c)

	// Step 3: every cycle is now contiguous. Cycle i (1-indexed) occupies
	// the first i units of row i-1 plus the T0 unit in column r of the
	// same row; rotate its contents right by one: rotate the contiguous
	// run, then swap the first unit with the T0 unit.
	v.BeginRound("gather/cycles", (r*(r+3)/2)*c)
	rotCycles := func(p, a, b int) {
		sub := par.Serial(p)
		for i := a; i <= b; i++ {
			rowBase := lo + (i-1)*rowLen
			shuffle.RotateRightUnits[T](sub, v, rowBase, c, i, c, 1)
			t0 := rowBase + r*c
			if c == 1 {
				v.Swap(p, rowBase, t0)
			} else {
				v.SwapRange(p, rowBase, t0, c)
			}
		}
	}
	if rn.IsSerial() {
		rotCycles(rn.Lo, 1, r)
	} else {
		cum := func(i int) int { return i * (i + 3) / 2 }
		rn.ForWeighted(r, cum, func(p, a, b int) { rotCycles(p, a+1, b) })
	}

	// Steps 4-5: undo the transposition, then the row shifts.
	transpose[T](rn, v, lo, r, rowLen, c)
	shiftRows(true)

	phase2[T](rn, v, lo, r, r, c)
}

// transposeTile bounds the square tile (in units) processed at once, so a
// tile pair fits in a cache of Θ(tile²·c) elements — the tall-cache tiling
// that gives the O(r²/B) transposition bound of Vitter (Section 4.2).
const transposeTile = 32

// transpose transposes the r x r unit submatrix in place (unit (i,j) at
// element offset lo + i*rowLen + j*c), swapping whole units so unit
// contents are preserved. Tiles are processed pairwise for I/O efficiency
// and distributed across workers.
func transpose[T any, V vec.Vec[T]](rn par.Runner, v V, lo, r, rowLen, c int) {
	v.BeginRound("gather/transpose", r*r*c)
	tiles := (r + transposeTile - 1) / transposeTile
	// Enumerate tile pairs (ti, tj) with ti <= tj.
	npairs := tiles * (tiles + 1) / 2
	doPairs := func(p, a, b int) {
		for idx := a; idx < b; idx++ {
			ti, tj := unflattenPair(idx, tiles)
			iEnd := min(r, (ti+1)*transposeTile)
			jEnd := min(r, (tj+1)*transposeTile)
			for i := ti * transposeTile; i < iEnd; i++ {
				jStart := tj * transposeTile
				if ti == tj {
					jStart = i + 1
				}
				for j := jStart; j < jEnd; j++ {
					ea := lo + i*rowLen + j*c
					eb := lo + j*rowLen + i*c
					if c == 1 {
						v.Swap(p, ea, eb)
					} else {
						v.SwapRange(p, ea, eb, c)
					}
				}
			}
		}
	}
	if rn.IsSerial() {
		doPairs(rn.Lo, 0, npairs)
		return
	}
	rn.For(npairs, doPairs)
}

// unflattenPair maps a linear index to the idx-th pair (i, j), i <= j < n,
// enumerated row by row.
func unflattenPair(idx, n int) (int, int) {
	i := 0
	rowLen := n
	for idx >= rowLen {
		idx -= rowLen
		i++
		rowLen--
	}
	return i, i + idx
}
