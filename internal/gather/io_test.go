package gather

import (
	"testing"

	"implicitlayout/internal/par"
	"implicitlayout/internal/pem"
)

// TestTransposedGatherSavesIO validates the Section 4.2 claim: for large
// square gathers the transpose-blocked algorithm issues every swap against
// contiguous memory, so its block-transfer count beats the direct
// strided-cycle algorithm by a factor that grows with the block size B
// (the direct phase 1 pays one transfer per element once cycles exceed the
// cache). Measured here: ~1.6x at B=8 and >3x at B=16 for r=511.
func TestTransposedGatherSavesIO(t *testing.T) {
	r := 511
	n := r + (r+1)*r
	rn := par.New(1)
	for _, tc := range []struct {
		blockWords int
		minRatio   float64
	}{
		{8, 1.3},
		{16, 2.0},
		{32, 4.0},
	} {
		cfg := pem.Config{M: 64 * tc.blockWords, B: tc.blockWords}

		direct := pem.New(seq(n), 1, cfg)
		Equidistant[int](rn, direct, 0, r, r, 1)

		blocked := pem.New(seq(n), 1, cfg)
		Transposed[int](rn, blocked, 0, r, 1)

		ratio := float64(direct.TotalIO()) / float64(blocked.TotalIO())
		if ratio < tc.minRatio {
			t.Errorf("B=%d: transposed saving %.2fx, want >= %.1fx (direct=%d blocked=%d)",
				tc.blockWords, ratio, tc.minRatio, direct.TotalIO(), blocked.TotalIO())
		}
	}
}

// TestChunkedGatherIsBlockEfficient: with unit sizes at or above the block
// size, even the direct gather is I/O-efficient — the mechanism behind the
// B-tree cycle-leader bound (Section 4.3: every swap moves chunks of C >=
// B contiguous elements).
func TestChunkedGatherIsBlockEfficient(t *testing.T) {
	r, l, c := 8, 8, 64
	n := (r + (r+1)*l) * c
	cfg := pem.Config{M: 1 << 10, B: 8}
	rn := par.New(1)

	v := pem.New(seq(n), 1, cfg)
	Equidistant[int](rn, v, 0, r, l, c)

	// The gather moves every element O(1) times; block-efficient means
	// O(n/B) transfers with a small constant.
	limit := int64(8 * n / cfg.B)
	if got := v.TotalIO(); got > limit {
		t.Fatalf("chunked gather I/O = %d, want <= %d (n/B = %d)", got, limit, n/cfg.B)
	}
}
