package gpu

import (
	"reflect"
	"testing"

	"implicitlayout/internal/core"
	"implicitlayout/internal/vec"
	"implicitlayout/internal/workload"
	"implicitlayout/layout"
)

var _ vec.Vec[uint64] = (*Vec[uint64])(nil)

func TestCoalescedVsScatteredTxns(t *testing.T) {
	dev := TeslaK40()
	n := 1 << 14
	data := make([]uint64, n)

	v := NewVec(data, 1, dev)
	for i := 0; i < n; i++ {
		v.Get(0, i) // streaming
	}
	seqTxns := v.Cost().Txns

	v2 := NewVec(data, 1, dev)
	stride := 4099
	for i := 0; i < n; i++ {
		v2.Get(0, (i*stride)%n) // scattered
	}
	scatTxns := v2.Cost().Txns

	wordsPerLine := int64(dev.LineBytes / dev.WordBytes)
	if seqTxns != int64(n)/wordsPerLine {
		t.Fatalf("streaming txns = %d, want %d", seqTxns, int64(n)/wordsPerLine)
	}
	if scatTxns < 8*seqTxns {
		t.Fatalf("scattered %d vs streaming %d: expected >= 8x", scatTxns, seqTxns)
	}
}

func TestRunPermuteCorrectAndCosted(t *testing.T) {
	dev := TeslaK40()
	for _, n := range []int{26, 1000, 4095} {
		for _, spec := range []struct {
			k layout.Kind
			a core.Algorithm
		}{
			{layout.BST, core.Involution}, {layout.BST, core.CycleLeader},
			{layout.BTree, core.Involution}, {layout.BTree, core.CycleLeader},
			{layout.VEB, core.Involution}, {layout.VEB, core.CycleLeader},
		} {
			data := workload.Sorted(n)
			c := RunPermute(dev, data, spec.k, spec.a, 4, 2)
			want := layout.Build(layout.Kind(spec.k), workload.Sorted(n), 4)
			if !reflect.DeepEqual(data, want) {
				t.Fatalf("%v/%v n=%d: GPU-backend permutation wrong", spec.k, spec.a, n)
			}
			if c.Txns <= 0 || c.Launches <= 0 {
				t.Fatalf("%v/%v: degenerate cost %+v", spec.k, spec.a, c)
			}
		}
	}
}

// TestLaunchOrdering: the kernel-decomposition model must reproduce the
// paper's Figure 6.8 mechanism — flat algorithms launch few kernels, the
// recursive vEB ports launch orders of magnitude more.
func TestLaunchOrdering(t *testing.T) {
	n := 1 << 22
	b := 32
	invBST := Launches(layout.BST, core.Involution, n, b)
	invBT := Launches(layout.BTree, core.Involution, n, b)
	cycBT := Launches(layout.BTree, core.CycleLeader, n, b)
	cycVEB := Launches(layout.VEB, core.CycleLeader, n, b)
	if invBST > 20 {
		t.Fatalf("involution BST should be a handful of kernels, got %d", invBST)
	}
	if invBT > 100 || cycBT > 100 {
		t.Fatalf("flat B-tree ports should be tens of kernels: inv=%d cyc=%d", invBT, cycBT)
	}
	if cycVEB < 100*cycBT {
		t.Fatalf("recursive vEB port should dwarf the flat ports: veb=%d btree=%d", cycVEB, cycBT)
	}
}

// TestGPUQueryCorrectness: the query kernels agree with plain search on
// hits and misses for every layout.
func TestGPUQueryCorrectness(t *testing.T) {
	dev := TeslaK40()
	n := 2000
	sorted := workload.Sorted(n)
	queries := workload.Queries(500, n, 0.5, 7)
	wantHits := 0
	for _, q := range queries {
		if q%2 == 1 {
			wantHits++
		}
	}
	for _, k := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB} {
		arr := sorted
		if k != layout.Sorted {
			arr = layout.Build(k, sorted, 8)
		}
		v := NewVec(arr, 1, dev)
		nav := layout.NewVEBNav(n)
		hits := 0
		for _, q := range queries {
			if pos := queryKernel(v, nav, 0, n, k, 8, q); pos >= 0 {
				if arr[pos] != q {
					t.Fatalf("%v: found wrong key", k)
				}
				hits++
			}
		}
		if hits != wantHits {
			t.Fatalf("%v: hits = %d, want %d", k, hits, wantHits)
		}
	}
}

// TestTimeModelMonotone: more of any cost component means more time.
func TestTimeModelMonotone(t *testing.T) {
	dev := TeslaK40()
	base := Cost{Launches: 10, Txns: 1000, Instr: 1000}
	tm := dev.TimeMS(base)
	if dev.TimeMS(base.Add(Cost{Launches: 10})) <= tm {
		t.Fatal("launches must add time")
	}
	if dev.TimeMS(base.Add(Cost{Txns: 1 << 20})) <= tm {
		t.Fatal("txns must add time")
	}
	if tm <= 0 {
		t.Fatal("time must be positive")
	}
}

func TestVecReset(t *testing.T) {
	v := NewVec(make([]uint64, 64), 1, TeslaK40())
	v.Get(0, 0)
	if v.Cost().Txns != 1 {
		t.Fatal("miss not counted")
	}
	v.Reset()
	if v.Cost().Txns != 0 {
		t.Fatal("Reset did not clear")
	}
	v.Get(0, 0)
	if v.Cost().Txns != 1 {
		t.Fatal("cache not cold after Reset")
	}
}
