package gpu

import (
	"sync"

	"implicitlayout/internal/bits"
	"implicitlayout/internal/core"
	"implicitlayout/internal/par"
	"implicitlayout/layout"
)

// RunPermute executes permutation algorithm a over the sorted keys in data
// (in place) on the simulated device and returns the model cost, including
// the analytic kernel-launch count. p is the executor parallelism (it
// affects wall-clock of the simulation, not the modelled cost).
func RunPermute(dev Device, data []uint64, k layout.Kind, a core.Algorithm, b, p int) Cost {
	if p < 1 {
		p = 1
	}
	v := NewVec(data, p, dev)
	o := core.Options{
		Runner: par.Runner{Lo: 0, Hi: p, MinFor: 1 << 12},
		B:      b,
	}
	if dev.HasBitrev {
		o.Rev = bits.Hardware{}
	} else {
		o.Rev = bits.Software{}
	}
	core.Permute[uint64](o, v, k, a)
	c := v.Cost()
	c.Launches = Launches(k, a, len(data), b)
	return c
}

// RunQueries executes the batch-query kernel — one logical GPU thread per
// query, the paper's GPU search strategy — against data already permuted
// into layout k, and returns the model cost (a single kernel launch plus
// the measured memory transactions and instructions).
func RunQueries(dev Device, data []uint64, k layout.Kind, b int, queries []uint64, p int) Cost {
	if p < 1 {
		p = 1
	}
	v := NewVec(data, p, dev)
	n := len(data)
	nav := layout.NewVEBNav(max(n, 1))
	var wg sync.WaitGroup
	chunk := (len(queries) + p - 1) / p
	for w := 0; w < p; w++ {
		lo := w * chunk
		if lo >= len(queries) {
			break
		}
		hi := min(lo+chunk, len(queries))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, q := range queries[lo:hi] {
				queryKernel(v, nav, w, n, k, b, q)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	c := v.Cost()
	c.Launches = 1
	return c
}

// queryKernel performs one search through the cost-counting backend.
func queryKernel(v *Vec[uint64], nav layout.VEBNav, p, n int, k layout.Kind, b int, x uint64) int {
	switch k {
	case layout.Sorted:
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			e := v.Get(p, mid)
			v.AddInstr(p, 4)
			switch {
			case e == x:
				return mid
			case e < x:
				lo = mid + 1
			default:
				hi = mid
			}
		}
	case layout.BST:
		i := 0
		for i < n {
			e := v.Get(p, i)
			v.AddInstr(p, 4)
			switch {
			case e == x:
				return i
			case x < e:
				i = 2*i + 1
			default:
				i = 2*i + 2
			}
		}
	case layout.BTree:
		node := 0
		for {
			start := node * b
			if start >= n {
				return -1
			}
			end := min(start+b, n)
			c := start
			for c < end && v.Get(p, c) < x {
				v.AddInstr(p, 3)
				c++
			}
			if c < end && v.Get(p, c) == x {
				return c
			}
			node = node*(b+1) + 1 + (c - start)
			v.AddInstr(p, 6)
		}
	case layout.VEB:
		cur := nav.Cursor()
		for {
			pos := cur.Pos()
			// incremental decomposition bookkeeping per level
			v.AddInstr(p, 12)
			e := v.Get(p, pos)
			v.AddInstr(p, 4)
			var dir int
			switch {
			case e == x:
				return pos
			case x < e:
				dir = 0
			default:
				dir = 1
			}
			if !cur.Descend(dir) {
				return -1
			}
		}
	}
	return -1
}
