// Package gpu is the GPU substitute of this reproduction: a SIMT cost
// model standing in for the paper's NVidia Tesla K40. It does not emulate
// CUDA; it executes the real permutation algorithms and query loops
// functionally while charging the three costs that determine GPU running
// time at this workload's scale:
//
//   - memory transactions: every access goes through a small per-processor
//     direct-mapped line cache (128-byte lines), so streaming access
//     coalesces and scattered access pays one transaction per element —
//     the coalescing behaviour of a GPU memory controller;
//   - instructions: index arithmetic is charged through vec.AddInstr, so
//     the extended-Euclid J involutions are expensive and hardware bit
//     reversal is O(1), the T_REV2 distinction of the paper;
//   - kernel launches: derived from the kernel decomposition each
//     algorithm's GPU port uses (see Launches) — flat involution rounds
//     and level-batched gathers cost a handful of launches, while the
//     recursive vEB ports launch per subtree, the overhead the paper
//     blames for vEB's poor GPU performance (Figure 6.8).
//
// The absolute numbers are a model; the shape — who wins and by roughly
// what factor — is what EXPERIMENTS.md compares against the paper.
package gpu

import (
	"implicitlayout/internal/core"
	"implicitlayout/layout"
)

// Device describes the simulated accelerator.
type Device struct {
	// Name labels the device in reports.
	Name string
	// SMs and CoresPerSM give the compute width.
	SMs, CoresPerSM int
	// ClockGHz is the core clock.
	ClockGHz float64
	// MemBandwidthGBps is the global-memory bandwidth.
	MemBandwidthGBps float64
	// LineBytes is the memory transaction (cache line) size.
	LineBytes int
	// WordBytes is the element size (8 for the paper's 64-bit keys).
	WordBytes int
	// LaunchOverheadUs is the fixed cost of one kernel launch.
	LaunchOverheadUs float64
	// HasBitrev reports a hardware bit-reversal instruction (the K40 has
	// one, making T_REV2 = O(1) on this platform).
	HasBitrev bool
}

// TeslaK40 returns the configuration of the paper's GPU platform.
func TeslaK40() Device {
	return Device{
		Name:             "tesla-k40-sim",
		SMs:              15,
		CoresPerSM:       192,
		ClockGHz:         0.745,
		MemBandwidthGBps: 288,
		LineBytes:        128,
		WordBytes:        8,
		LaunchOverheadUs: 5,
		HasBitrev:        true,
	}
}

// Cost aggregates the model costs of one GPU execution.
type Cost struct {
	// Launches is the number of kernel launches.
	Launches int64
	// Txns is the number of memory transactions (LineBytes each).
	Txns int64
	// Instr is the number of model instructions.
	Instr int64
}

// Add returns the sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{c.Launches + o.Launches, c.Txns + o.Txns, c.Instr + o.Instr}
}

// TimeMS converts a cost to model milliseconds: launches serialize;
// memory and compute overlap, so the larger of the two dominates.
func (d Device) TimeMS(c Cost) float64 {
	launch := float64(c.Launches) * d.LaunchOverheadUs / 1e3
	mem := float64(c.Txns) * float64(d.LineBytes) / (d.MemBandwidthGBps * 1e9) * 1e3
	comp := float64(c.Instr) / (float64(d.SMs*d.CoresPerSM) * d.ClockGHz * 1e9) * 1e3
	if mem > comp {
		return launch + mem
	}
	return launch + comp
}

// tagSlots is the per-processor direct-mapped line-cache size: enough to
// capture the streaming reuse a warp sees, far too small to hold working
// sets — which is exactly the regime of a GPU L1/texture path.
const tagSlots = 256

type proc struct {
	tags  [tagSlots]int64
	txns  int64
	instr int64
	_     [6]int64
}

// Vec is the cost-counting memory backend. Concurrent callers must use
// distinct processor ids (CREW discipline).
type Vec[T any] struct {
	Data  []T
	dev   Device
	procs []proc
}

// NewVec wraps data for p executor processors on device d.
func NewVec[T any](data []T, p int, d Device) *Vec[T] {
	if p < 1 {
		p = 1
	}
	v := &Vec[T]{Data: data, dev: d, procs: make([]proc, p)}
	v.Reset()
	return v
}

func (v *Vec[T]) lineOf(i int) int64 {
	return int64(i) * int64(v.dev.WordBytes) / int64(v.dev.LineBytes)
}

func (v *Vec[T]) touch(p int, i int) {
	line := v.lineOf(i)
	st := &v.procs[p]
	slot := int(uint64(line) % tagSlots)
	if st.tags[slot] != line {
		st.tags[slot] = line
		st.txns++
	}
}

// Len returns the number of elements.
func (v *Vec[T]) Len() int { return len(v.Data) }

// Get returns element i, charging one access.
func (v *Vec[T]) Get(p, i int) T {
	v.touch(p, i)
	v.procs[p].instr += 2
	return v.Data[i]
}

// Set stores x at i, charging one access.
func (v *Vec[T]) Set(p, i int, x T) {
	v.touch(p, i)
	v.procs[p].instr += 2
	v.Data[i] = x
}

// Swap exchanges elements i and j.
func (v *Vec[T]) Swap(p, i, j int) {
	v.touch(p, i)
	v.touch(p, j)
	v.procs[p].instr += 6
	v.Data[i], v.Data[j] = v.Data[j], v.Data[i]
}

// SwapRange exchanges blocks [i, i+n) and [j, j+n), charging the touched
// lines of both (streaming, so coalesced).
func (v *Vec[T]) SwapRange(p, i, j, n int) {
	wpl := v.dev.LineBytes / v.dev.WordBytes
	for e := 0; e < n; e += wpl {
		v.touch(p, i+e)
		v.touch(p, j+e)
	}
	v.touch(p, i+n-1)
	v.touch(p, j+n-1)
	v.procs[p].instr += int64(2 * n)
	a, b := v.Data[i:i+n], v.Data[j:j+n]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// BeginRound is informational here; launch counts come from Launches.
func (v *Vec[T]) BeginRound(string, int) {}

// AddInstr charges n model instructions to processor p.
func (v *Vec[T]) AddInstr(p, n int) { v.procs[p].instr += int64(n) }

// Cost returns the accumulated memory and instruction cost (no launches).
func (v *Vec[T]) Cost() Cost {
	var c Cost
	for i := range v.procs {
		c.Txns += v.procs[i].txns
		c.Instr += v.procs[i].instr
	}
	return c
}

// Reset clears counters and invalidates all line caches.
func (v *Vec[T]) Reset() {
	for i := range v.procs {
		v.procs[i].txns = 0
		v.procs[i].instr = 0
		for s := range v.procs[i].tags {
			v.procs[i].tags[s] = -1
		}
	}
}

// vebKernelCutoff is the subtree level count below which the recursive
// vEB GPU ports stop launching per-subtree kernels and finish the subtree
// within the parent kernel.
const vebKernelCutoff = 7

// Launches returns the kernel-launch count of algorithm a building layout
// k over n keys (node capacity b), per the kernel decomposition of each
// GPU port: the involution BST is two flat kernels; the involution B-tree
// four kernels per level; the cycle-leader BST/B-tree batch each gather
// recursion depth into two kernels; and the vEB ports (both families)
// launch per subtree down to the cutoff — the recursion penalty of
// Figure 6.8. Non-perfect sizes add a constant pre-pass.
func Launches(k layout.Kind, a core.Algorithm, n, b int) int64 {
	if n < 2 {
		return 0
	}
	var kernels int64
	prepass := int64(0)
	switch k {
	case layout.BST:
		full, d := layout.PerfectPrefix(n, 2)
		if full < n {
			prepass = 10
		}
		if a == core.Involution {
			kernels = 2
		} else {
			kernels = batchedGatherKernels(d)
		}
	case layout.BTree:
		full, d := layout.PerfectPrefix(n, b+1)
		if full < n {
			prepass = 10
		}
		if a == core.Involution {
			kernels = 4 * int64(d-1)
		} else {
			kernels = batchedGatherKernels(d)
		}
	case layout.VEB:
		levels := levelsOf(n)
		if pf, _ := layout.PerfectPrefix(n, 2); pf < n {
			prepass = 10
		}
		memo := map[int]int64{}
		kernels = 2 * vebSplitKernels(levels, memo)
		if a == core.CycleLeader {
			// each split is two gathers plus a knitting rotation on the
			// odd-level path; approximate with a factor of two.
			kernels *= 2
		}
	}
	return kernels + prepass
}

// batchedGatherKernels counts the kernels of a level-synchronous extended
// equidistant gather implementation: per tree level e, each of the e-1
// gather recursion depths batches all partitions into a phase-1 and a
// phase-2 kernel.
func batchedGatherKernels(d int) int64 {
	var t int64
	for e := 2; e <= d; e++ {
		t += 2 * int64(e-1)
	}
	if t == 0 {
		t = 1
	}
	return t
}

// vebSplitKernels counts the subtree splits that launch kernels in the
// recursive vEB ports: every subtree with at least vebKernelCutoff levels.
func vebSplitKernels(levels int, memo map[int]int64) int64 {
	if levels < vebKernelCutoff || levels <= 1 {
		return 0
	}
	if v, ok := memo[levels]; ok {
		return v
	}
	lt, lb := layout.VEBSplit(levels)
	v := 1 + vebSplitKernels(lt, memo) + int64(1)<<uint(lt)*vebSplitKernels(lb, memo)
	memo[levels] = v
	return v
}

func levelsOf(n int) int {
	l := 0
	for v := n; v > 0; v >>= 1 {
		l++
	}
	return l
}
