package vec

import "testing"

func TestZipBasicOps(t *testing.T) {
	keys := []uint64{10, 11, 12, 13, 14, 15}
	vals := []string{"a", "b", "c", "d", "e", "f"}
	z := ZipOf(keys, vals)
	if z.Len() != 6 {
		t.Fatal("Len wrong")
	}
	if got := z.Get(0, 3); got.Key != 13 || got.Val != "d" {
		t.Fatalf("Get = %+v", got)
	}
	z.Set(1, 0, KV[uint64, string]{Key: 42, Val: "z"})
	if keys[0] != 42 || vals[0] != "z" {
		t.Fatal("Set did not write both slices")
	}
	z.Swap(0, 0, 5)
	if keys[0] != 15 || vals[0] != "f" || keys[5] != 42 || vals[5] != "z" {
		t.Fatal("Swap did not move both slices")
	}
	z.BeginRound("x", 1) // no-ops must not panic
	z.AddInstr(0, 10)
}

func TestZipSwapRangeMovesBothSlices(t *testing.T) {
	const half = 7
	keys := make([]int, 2*half)
	vals := make([]int, 2*half)
	for i := range keys {
		keys[i] = i
		vals[i] = -i
	}
	ZipOf(keys, vals).SwapRange(0, 0, half, half)
	for i := 0; i < half; i++ {
		if keys[i] != half+i || keys[half+i] != i {
			t.Fatalf("keys not block-swapped: %v", keys)
		}
		if vals[i] != -(half+i) || vals[half+i] != -i {
			t.Fatalf("vals not block-swapped: %v", vals)
		}
	}
}

func TestZipLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ZipOf with mismatched lengths should panic")
		}
	}()
	ZipOf([]int{1, 2}, []string{"a"})
}

func TestZipStaysPaired(t *testing.T) {
	// Any sequence of moves must keep keys[i] and vals[i] paired: vals
	// start as the negation of keys, and the invariant must survive.
	keys := make([]int, 33)
	vals := make([]int, 33)
	for i := range keys {
		keys[i] = i + 1
		vals[i] = -(i + 1)
	}
	z := ZipOf(keys, vals)
	z.Swap(0, 3, 30)
	z.SwapRange(0, 0, 16, 10)
	tmp := z.Get(0, 7)
	z.Set(0, 7, z.Get(0, 22))
	z.Set(0, 22, tmp)
	for i := range keys {
		if vals[i] != -keys[i] {
			t.Fatalf("pair broken at %d: key %d val %d", i, keys[i], vals[i])
		}
	}
}
