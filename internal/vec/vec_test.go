package vec

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSliceBasicOps(t *testing.T) {
	s := Of([]int{0, 1, 2, 3, 4, 5})
	if s.Len() != 6 {
		t.Fatal("Len wrong")
	}
	if s.Get(0, 3) != 3 {
		t.Fatal("Get wrong")
	}
	s.Set(1, 0, 42)
	if s.S[0] != 42 {
		t.Fatal("Set wrong")
	}
	s.Swap(0, 0, 5)
	if s.S[0] != 5 || s.S[5] != 42 {
		t.Fatal("Swap wrong")
	}
	s.BeginRound("x", 1) // no-ops must not panic
	s.AddInstr(0, 10)
}

func TestSliceSwapRange(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%20 + 4
		half := n / 2
		s := make([]int, 2*half)
		for i := range s {
			s[i] = i
		}
		Of(s).SwapRange(0, 0, half, half)
		for i := 0; i < half; i++ {
			if s[i] != half+i || s[half+i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowTranslatesIndices(t *testing.T) {
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	w := Window[int](Of(s), 2, 4) // covers s[2:6]
	if w.Len() != 4 {
		t.Fatal("window Len wrong")
	}
	if w.Get(0, 0) != 2 || w.Get(0, 3) != 5 {
		t.Fatal("window Get wrong")
	}
	w.Swap(0, 0, 3)
	if !reflect.DeepEqual(s, []int{0, 1, 5, 3, 4, 2, 6, 7}) {
		t.Fatalf("window Swap wrong: %v", s)
	}
	w.SwapRange(0, 0, 2, 2)
	if !reflect.DeepEqual(s, []int{0, 1, 4, 2, 5, 3, 6, 7}) {
		t.Fatalf("window SwapRange wrong: %v", s)
	}
	w.Set(0, 1, 99)
	if s[3] != 99 {
		t.Fatal("window Set wrong")
	}
	w.BeginRound("x", 1)
	w.AddInstr(0, 1)
}

func TestWindowBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range window")
		}
	}()
	Window[int](Of([]int{1, 2, 3}), 2, 5)
}
