// Package vec defines the memory abstraction that every permutation
// algorithm in this repository moves data through. Algorithms are generic
// over a Vec so that a single code base serves three backends:
//
//   - Slice:   a bare slice, zero-overhead, used by the public perm API;
//   - pem.Vec: the parallel-external-memory simulator, which counts block
//     transfers per processor (validates the I/O column of Table 1.1);
//   - gpu.Vec: the SIMT cost model, which charges memory transactions,
//     instructions and kernel launches (reproduces the GPU figures).
//
// Every mutation is expressed as a swap (or a block swap), which makes the
// in-place property of the algorithms structurally evident: no backend
// needs auxiliary element storage.
package vec

// Vec is the minimal memory interface the permutation kernels require. The
// p argument identifies the calling processor (worker); backends that model
// per-processor caches use it for accounting and the slice backend ignores
// it. Concurrent calls with distinct processors must only touch disjoint
// index sets (the CREW discipline of the paper's PRAM algorithms).
type Vec[T any] interface {
	// Len returns the number of elements.
	Len() int
	// Get returns the element at index i.
	Get(p, i int) T
	// Set stores x at index i.
	Set(p, i int, x T)
	// Swap exchanges the elements at i and j.
	Swap(p, i, j int)
	// SwapRange exchanges the n-element blocks starting at i and j.
	// The blocks must not overlap.
	SwapRange(p, i, j, n int)
	// BeginRound records the start of one parallel primitive round (one
	// PRAM step of O(1) depth, or one GPU kernel launch) named name that
	// will touch approximately n elements. Cost-model backends accumulate
	// depth and launch overhead from it; the slice backend ignores it.
	// Methods on the interface (rather than optional extensions) keep the
	// hot path free of interface boxing.
	BeginRound(name string, n int)
	// AddInstr charges n model instructions to processor p, used by
	// backends that cost index arithmetic (digit reversals, modular
	// inverses). The slice backend ignores it.
	AddInstr(p, n int)
}

// Slice adapts a plain slice to the Vec interface with no overhead beyond
// bounds checks. The processor argument is ignored.
type Slice[T any] struct{ S []T }

// Of wraps s in a Slice backend.
func Of[T any](s []T) Slice[T] { return Slice[T]{S: s} }

// Len returns the number of elements.
func (v Slice[T]) Len() int { return len(v.S) }

// Get returns the element at index i.
func (v Slice[T]) Get(_, i int) T { return v.S[i] }

// Set stores x at index i.
func (v Slice[T]) Set(_, i int, x T) { v.S[i] = x }

// Swap exchanges elements i and j.
func (v Slice[T]) Swap(_, i, j int) { v.S[i], v.S[j] = v.S[j], v.S[i] }

// SwapRange exchanges the non-overlapping blocks [i, i+n) and [j, j+n).
func (v Slice[T]) SwapRange(_, i, j, n int) {
	a, b := v.S[i:i+n], v.S[j:j+n]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// BeginRound is a no-op for the raw slice backend.
func (Slice[T]) BeginRound(string, int) {}

// AddInstr is a no-op for the raw slice backend.
func (Slice[T]) AddInstr(int, int) {}

// View restricts a Vec to the window [off, off+n), translating indices.
// Views compose; all backends keep their accounting because calls forward
// to the underlying Vec.
type View[T any, V Vec[T]] struct {
	Base V
	Off  int
	N    int
}

// Window returns a view of v covering [off, off+n).
func Window[T any, V Vec[T]](v V, off, n int) View[T, V] {
	if off < 0 || n < 0 || off+n > v.Len() {
		panic("vec: window out of range")
	}
	return View[T, V]{Base: v, Off: off, N: n}
}

// Len returns the window length.
func (w View[T, V]) Len() int { return w.N }

// Get returns the element at window index i.
func (w View[T, V]) Get(p, i int) T { return w.Base.Get(p, w.Off+i) }

// Set stores x at window index i.
func (w View[T, V]) Set(p, i int, x T) { w.Base.Set(p, w.Off+i, x) }

// Swap exchanges window indices i and j.
func (w View[T, V]) Swap(p, i, j int) { w.Base.Swap(p, w.Off+i, w.Off+j) }

// SwapRange exchanges the window blocks [i, i+n) and [j, j+n).
func (w View[T, V]) SwapRange(p, i, j, n int) { w.Base.SwapRange(p, w.Off+i, w.Off+j, n) }

// BeginRound forwards round tracking to the base backend.
func (w View[T, V]) BeginRound(name string, n int) { w.Base.BeginRound(name, n) }

// AddInstr forwards instruction accounting to the base backend.
func (w View[T, V]) AddInstr(p, n int) { w.Base.AddInstr(p, n) }
