package vec

// KV is the element type a Zip backend presents to the permutation
// kernels: one key paired with its payload. The kernels never inspect
// elements — they only move them — so the pairing exists purely to make
// two slices travel under one permutation.
type KV[K, V any] struct {
	Key K
	Val V
}

// Zip adapts two equal-length parallel slices to the Vec interface as a
// single logical array of key–value pairs: every Swap, Set, and SwapRange
// applies identically to both slices, so whatever permutation a kernel
// realizes on the keys is realized on the values too. The processor
// argument is ignored, like Slice. Keeping the slices separate (rather
// than materializing []KV) preserves the caller's memory layout: the key
// array stays densely packed for the search kernels.
type Zip[K, V any] struct {
	Keys []K
	Vals []V
}

// ZipOf wraps the parallel slices keys and vals in a Zip backend. It
// panics if the lengths differ — a length mismatch could only scramble
// data silently.
func ZipOf[K, V any](keys []K, vals []V) Zip[K, V] {
	if len(keys) != len(vals) {
		panic("vec: zipped slices must have equal length")
	}
	return Zip[K, V]{Keys: keys, Vals: vals}
}

// Len returns the number of pairs.
func (z Zip[K, V]) Len() int { return len(z.Keys) }

// Get returns the pair at index i.
func (z Zip[K, V]) Get(_, i int) KV[K, V] { return KV[K, V]{Key: z.Keys[i], Val: z.Vals[i]} }

// Set stores the pair x at index i.
func (z Zip[K, V]) Set(_, i int, x KV[K, V]) { z.Keys[i], z.Vals[i] = x.Key, x.Val }

// Swap exchanges the pairs at i and j.
func (z Zip[K, V]) Swap(_, i, j int) {
	z.Keys[i], z.Keys[j] = z.Keys[j], z.Keys[i]
	z.Vals[i], z.Vals[j] = z.Vals[j], z.Vals[i]
}

// SwapRange exchanges the non-overlapping pair blocks [i, i+n) and
// [j, j+n).
func (z Zip[K, V]) SwapRange(_, i, j, n int) {
	ka, kb := z.Keys[i:i+n], z.Keys[j:j+n]
	for t := range ka {
		ka[t], kb[t] = kb[t], ka[t]
	}
	va, vb := z.Vals[i:i+n], z.Vals[j:j+n]
	for t := range va {
		va[t], vb[t] = vb[t], va[t]
	}
}

// BeginRound is a no-op for the zipped slice backend.
func (Zip[K, V]) BeginRound(string, int) {}

// AddInstr is a no-op for the zipped slice backend.
func (Zip[K, V]) AddInstr(int, int) {}
