// Package pem simulates the Parallel External Memory model of Arge et al.
// — the machine model of the paper's I/O analysis (Chapter 4). Each of P
// processors owns a private fully-associative LRU cache of M words filled
// in blocks of B words from a shared external memory. Every element access
// of a permutation algorithm run on a pem.Vec is translated into cache
// probes, and cache misses are counted as block transfers (I/Os) per
// processor. The parallel I/O complexity Q(N, P) — the maximum number of
// transfers by any one processor — is the quantity bounded in Table 1.1,
// and cmd/iobench compares the measured values against those bounds.
package pem

import "sync/atomic"

// Config sizes the simulated memory hierarchy, in words (elements).
type Config struct {
	// M is the internal-memory (cache) capacity per processor, in words.
	M int
	// B is the block (cache line) size, in words.
	B int
}

// DefaultConfig models a 256 KiB private cache with 64-byte lines holding
// 8-byte words: M = 32768 words, B = 8 words.
func DefaultConfig() Config { return Config{M: 1 << 15, B: 8} }

// lruCache is a fully associative LRU set of block indices with intrusive
// doubly-linked order, preallocated to its capacity.
type lruCache struct {
	cap   int
	slots map[int]int // block -> node index
	block []int
	prev  []int
	next  []int
	head  int // most recent
	tail  int // least recent
	used  int
}

func newLRU(capacity int) *lruCache {
	c := &lruCache{
		cap:   capacity,
		slots: make(map[int]int, capacity),
		block: make([]int, capacity),
		prev:  make([]int, capacity),
		next:  make([]int, capacity),
		head:  -1,
		tail:  -1,
	}
	return c
}

// touch probes the cache for block b and returns true on hit, inserting
// and possibly evicting on miss.
func (c *lruCache) touch(b int) bool {
	if n, ok := c.slots[b]; ok {
		c.moveToFront(n)
		return true
	}
	var n int
	if c.used < c.cap {
		n = c.used
		c.used++
	} else {
		n = c.tail
		delete(c.slots, c.block[n])
		c.detach(n)
	}
	c.block[n] = b
	c.slots[b] = n
	c.attachFront(n)
	return false
}

func (c *lruCache) moveToFront(n int) {
	if c.head == n {
		return
	}
	c.detach(n)
	c.attachFront(n)
}

func (c *lruCache) detach(n int) {
	if c.prev[n] >= 0 {
		c.next[c.prev[n]] = c.next[n]
	}
	if c.next[n] >= 0 {
		c.prev[c.next[n]] = c.prev[n]
	}
	if c.head == n {
		c.head = c.next[n]
	}
	if c.tail == n {
		c.tail = c.prev[n]
	}
}

func (c *lruCache) attachFront(n int) {
	c.prev[n] = -1
	c.next[n] = c.head
	if c.head >= 0 {
		c.prev[c.head] = n
	}
	c.head = n
	if c.tail < 0 {
		c.tail = n
	}
}

type procState struct {
	cache *lruCache
	ios   int64
	_     [7]int64
}

// Vec is the PEM-counting memory backend. Concurrent use requires the
// CREW discipline: concurrent calls must use distinct processor ids.
type Vec[T any] struct {
	Data   []T
	cfg    Config
	procs  []procState
	rounds atomic.Int64
}

// New wraps data in a PEM simulation with p processors and the given
// cache configuration.
func New[T any](data []T, p int, cfg Config) *Vec[T] {
	if p < 1 {
		p = 1
	}
	if cfg.B < 1 || cfg.M < 2*cfg.B {
		panic("pem: need B >= 1 and M >= 2B")
	}
	v := &Vec[T]{Data: data, cfg: cfg, procs: make([]procState, p)}
	for i := range v.procs {
		v.procs[i].cache = newLRU(cfg.M / cfg.B)
	}
	return v
}

func (v *Vec[T]) access(p, i int) {
	st := &v.procs[p]
	if !st.cache.touch(i / v.cfg.B) {
		st.ios++
	}
}

func (v *Vec[T]) accessRange(p, i, n int) {
	first := i / v.cfg.B
	last := (i + n - 1) / v.cfg.B
	st := &v.procs[p]
	for b := first; b <= last; b++ {
		if !st.cache.touch(b) {
			st.ios++
		}
	}
}

// Len returns the number of elements.
func (v *Vec[T]) Len() int { return len(v.Data) }

// Get returns the element at i, charging its block access to processor p.
func (v *Vec[T]) Get(p, i int) T {
	v.access(p, i)
	return v.Data[i]
}

// Set stores x at i, charging its block access to processor p.
func (v *Vec[T]) Set(p, i int, x T) {
	v.access(p, i)
	v.Data[i] = x
}

// Swap exchanges elements i and j, charging both block accesses.
func (v *Vec[T]) Swap(p, i, j int) {
	v.access(p, i)
	v.access(p, j)
	v.Data[i], v.Data[j] = v.Data[j], v.Data[i]
}

// SwapRange exchanges the blocks [i, i+n) and [j, j+n), charging the
// touched cache blocks of both ranges.
func (v *Vec[T]) SwapRange(p, i, j, n int) {
	v.accessRange(p, i, n)
	v.accessRange(p, j, n)
	a, b := v.Data[i:i+n], v.Data[j:j+n]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// BeginRound counts primitive rounds (informational).
func (v *Vec[T]) BeginRound(string, int) { v.rounds.Add(1) }

// AddInstr is ignored: the PEM model counts only block transfers.
func (v *Vec[T]) AddInstr(int, int) {}

// MaxIO returns Q(N, P): the largest number of block transfers performed
// by any one processor.
func (v *Vec[T]) MaxIO() int64 {
	var m int64
	for i := range v.procs {
		if v.procs[i].ios > m {
			m = v.procs[i].ios
		}
	}
	return m
}

// TotalIO returns the total number of block transfers across processors.
func (v *Vec[T]) TotalIO() int64 {
	var t int64
	for i := range v.procs {
		t += v.procs[i].ios
	}
	return t
}

// Config returns the simulated hierarchy parameters.
func (v *Vec[T]) Config() Config { return v.cfg }

// Reset clears the I/O counters and empties every cache.
func (v *Vec[T]) Reset() {
	for i := range v.procs {
		v.procs[i].ios = 0
		v.procs[i].cache = newLRU(v.cfg.M / v.cfg.B)
	}
	v.rounds.Store(0)
}
