package pem

import (
	"testing"

	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
)

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestSequentialScanCostsNOverB(t *testing.T) {
	n := 1 << 12
	v := New(seq(n), 1, Config{M: 1 << 8, B: 8})
	for i := 0; i < n; i++ {
		v.Get(0, i)
	}
	if got, want := v.TotalIO(), int64(n/8); got != want {
		t.Fatalf("scan I/O = %d, want %d", got, want)
	}
}

func TestCacheResidentWorkingSetIsFree(t *testing.T) {
	v := New(seq(64), 1, Config{M: 1 << 8, B: 8})
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 64; i++ {
			v.Get(0, i)
		}
	}
	// 8 blocks fetched once; all later passes hit.
	if got := v.TotalIO(); got != 8 {
		t.Fatalf("resident set I/O = %d, want 8", got)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	// M/B = 2 lines. Touch blocks 0,1,0,2: block 1 must be evicted, so a
	// later touch of 1 misses while 0... (0 was refreshed before 2, so 0
	// stays, 1 evicted).
	v := New(seq(64), 1, Config{M: 16, B: 8})
	v.Get(0, 0)  // miss (block 0)
	v.Get(0, 8)  // miss (block 1)
	v.Get(0, 1)  // hit  (block 0, refresh)
	v.Get(0, 16) // miss (block 2, evicts block 1)
	v.Get(0, 2)  // hit  (block 0)
	v.Get(0, 9)  // miss (block 1 was evicted)
	if got := v.TotalIO(); got != 4 {
		t.Fatalf("I/O = %d, want 4", got)
	}
}

func TestSwapChargesBothSides(t *testing.T) {
	v := New(seq(1024), 1, Config{M: 64, B: 8})
	v.Swap(0, 0, 512)
	if got := v.TotalIO(); got != 2 {
		t.Fatalf("swap I/O = %d, want 2", got)
	}
	if v.Data[0] != 512 || v.Data[512] != 0 {
		t.Fatal("swap did not move data")
	}
}

func TestSwapRangeCountsBlocks(t *testing.T) {
	v := New(seq(1024), 1, Config{M: 1 << 8, B: 8})
	v.SwapRange(0, 0, 512, 64)
	// 64 elements = 8 blocks per side.
	if got := v.TotalIO(); got != 16 {
		t.Fatalf("swaprange I/O = %d, want 16", got)
	}
}

func TestPerProcessorAccounting(t *testing.T) {
	n := 1 << 12
	v := New(seq(n), 4, Config{M: 1 << 8, B: 8})
	rn := par.Runner{Lo: 0, Hi: 4, MinFor: 1}
	shuffle.Reverse[int](rn, v, 0, n)
	if v.MaxIO() <= 0 {
		t.Fatal("no I/Os recorded")
	}
	if v.MaxIO() > v.TotalIO() {
		t.Fatal("MaxIO exceeds TotalIO")
	}
	// A reversal splits evenly: max should be about total/4.
	if v.MaxIO() > v.TotalIO()/2 {
		t.Fatalf("imbalanced: max %d of total %d", v.MaxIO(), v.TotalIO())
	}
	for i := 0; i < n; i++ {
		if v.Data[i] != n-1-i {
			t.Fatal("reversal wrong through PEM backend")
		}
	}
}

// TestScatteredVsSequentialIO: the defining property the paper exploits —
// B-wise blocked access costs a factor B fewer I/Os than scattered access.
func TestScatteredVsSequentialIO(t *testing.T) {
	n := 1 << 14
	cfg := Config{M: 1 << 8, B: 8}
	seqv := New(seq(n), 1, cfg)
	for i := 0; i < n/2; i++ {
		seqv.Swap(0, i, i+n/2) // both streams sequential
	}
	scat := New(seq(n), 1, cfg)
	stride := 509 // prime >> cache
	for i := 0; i < n/2; i++ {
		scat.Swap(0, i, (i*stride)%n)
	}
	if scat.TotalIO() < 4*seqv.TotalIO() {
		t.Fatalf("scattered %d vs sequential %d: expected >= 4x gap", scat.TotalIO(), seqv.TotalIO())
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for M < 2B")
		}
	}()
	New(seq(8), 1, Config{M: 8, B: 8})
}

func TestReset(t *testing.T) {
	v := New(seq(64), 2, DefaultConfig())
	v.Get(0, 0)
	v.Reset()
	if v.TotalIO() != 0 {
		t.Fatal("Reset did not clear I/O counters")
	}
	v.Get(0, 0)
	if v.TotalIO() != 1 {
		t.Fatal("cache not cold after Reset")
	}
}

var _ vec.Vec[int] = (*Vec[int])(nil)
