package wire

import (
	"errors"
	"reflect"
	"testing"
)

func mustCodec[K int64 | uint64 | float64, V int64 | uint64 | float64 | uint32](t *testing.T) *Codec[K, V] {
	t.Helper()
	c, err := NewCodec[K, V]()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCodecEligibility(t *testing.T) {
	if _, err := NewCodec[int, string](); err == nil {
		t.Fatal("NewCodec accepted a string value type")
	}
	if _, err := NewCodec[uint64, [2]int](); err == nil {
		t.Fatal("NewCodec accepted an array value type")
	}
	if _, err := NewCodec[uint64, float32](); err != nil {
		t.Fatalf("NewCodec refused uint64/float32: %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	c := mustCodec[uint64, int64](t)
	h := c.Hello()
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello round trip: got %+v want %+v", got, h)
	}
	if err := c.CheckHello(got); err != nil {
		t.Fatalf("own hello refused: %v", err)
	}
}

func TestHelloRefusals(t *testing.T) {
	c := mustCodec[uint64, int64](t)
	h := c.Hello()

	future := h
	future.Version = 99
	if err := c.CheckHello(future); !errors.Is(err, ErrVersionUnknown) {
		t.Fatalf("future version: got %v, want ErrVersionUnknown", err)
	}

	foreign := h
	if foreign.Endian == "little" {
		foreign.Endian = "big"
	} else {
		foreign.Endian = "little"
	}
	if err := c.CheckHello(foreign); !errors.Is(err, ErrPlatform) {
		t.Fatalf("foreign endian: got %v, want ErrPlatform", err)
	}

	narrow := h
	narrow.KeyWidth = 4
	narrow.KeyKind = reflect.Uint32
	if err := c.CheckHello(narrow); !errors.Is(err, ErrPlatform) {
		t.Fatalf("narrow keys: got %v, want ErrPlatform", err)
	}

	// A future-version hello still decodes (so it can be refused by
	// number), but a wrong magic or torn payload does not.
	if _, err := DecodeHello(EncodeHello(future)); err != nil {
		t.Fatalf("well-formed future hello failed to decode: %v", err)
	}
	bad := EncodeHello(h)
	bad[0] ^= 0xff
	if _, err := DecodeHello(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad magic: got %v, want ErrMalformed", err)
	}
	if _, err := DecodeHello(EncodeHello(h)[:5]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short hello: got %v, want ErrMalformed", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	c := mustCodec[uint64, int64](t)
	reqs := []*Request[uint64, int64]{
		{ID: 1, Op: OpGet, Key: 42},
		{ID: 2, Op: OpDelete, Key: 0xffffffffffffffff},
		{ID: 3, Op: OpPut, Key: 7, Val: -9},
		{ID: 4, Op: OpGetBatch, Keys: []uint64{1, 2, 3, 1 << 60}},
		{ID: 5, Op: OpGetBatch, Keys: []uint64{}},
		{ID: 6, Op: OpRange, Lo: 10, Hi: 20, Limit: 100},
		{ID: 7, Op: OpStats},
	}
	for _, req := range reqs {
		payload, err := c.EncodeRequest(req)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		got, err := c.DecodeRequest(payload)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("%s round trip: got %+v want %+v", req.Op, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	c := mustCodec[uint64, int64](t)
	resps := []*Response[uint64, int64]{
		{ID: 1, Op: OpGet, Found: true, Val: -5},
		{ID: 2, Op: OpGet, Found: false},
		{ID: 3, Op: OpPut},
		{ID: 4, Op: OpDelete},
		{ID: 5, Op: OpGetBatch, Vals: []int64{9, 0, 11}, FoundAll: []bool{true, false, true}},
		{ID: 6, Op: OpGetBatch, Vals: []int64{}, FoundAll: []bool{}},
		{ID: 7, Op: OpRange, Keys: []uint64{1, 2}, Vals: []int64{10, 20}, More: true},
		{ID: 8, Op: OpStats, Stats: []byte("gob-blob")},
	}
	for _, resp := range resps {
		payload, err := c.EncodeResponse(resp)
		if err != nil {
			t.Fatalf("%s: %v", resp.Op, err)
		}
		got, err := c.DecodeResponse(payload)
		if err != nil {
			t.Fatalf("%s: %v", resp.Op, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("%s round trip: got %+v want %+v", resp.Op, got, resp)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	payload := EncodeError(99, "store: db is closed")
	id, msg, err := DecodeError(payload)
	if err != nil || id != 99 || msg != "store: db is closed" {
		t.Fatalf("error round trip: %d %q %v", id, msg, err)
	}
	if _, _, err := DecodeError(payload[:4]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short error payload: got %v, want ErrMalformed", err)
	}
}

// TestDecodeRejectsMutations runs every structural mutation the decoder
// must refuse: truncation at each boundary, trailing garbage, and
// impossible counts. No panics, no over-reads — every case is a clean
// ErrMalformed.
func TestDecodeRejectsMutations(t *testing.T) {
	c := mustCodec[uint64, int64](t)
	reqPayload, err := c.EncodeRequest(&Request[uint64, int64]{ID: 1, Op: OpGetBatch, Keys: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(reqPayload); cut++ {
		if _, err := c.DecodeRequest(reqPayload[:cut]); err == nil {
			t.Fatalf("request truncated to %d bytes decoded cleanly", cut)
		}
	}
	if _, err := c.DecodeRequest(append(append([]byte{}, reqPayload...), 0)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing byte: got %v, want ErrMalformed", err)
	}
	// A count claiming more keys than the body holds must be refused
	// before any allocation proportional to the claim.
	huge := append([]byte{}, reqPayload...)
	huge[9], huge[10], huge[11], huge[12] = 0xff, 0xff, 0xff, 0x7f
	if _, err := c.DecodeRequest(huge); !errors.Is(err, ErrMalformed) {
		t.Fatalf("inflated count: got %v, want ErrMalformed", err)
	}

	respPayload, err := c.EncodeResponse(&Response[uint64, int64]{
		ID: 2, Op: OpRange, Keys: []uint64{5}, Vals: []int64{50},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(respPayload); cut++ {
		if _, err := c.DecodeResponse(respPayload[:cut]); err == nil {
			t.Fatalf("response truncated to %d bytes decoded cleanly", cut)
		}
	}
	unknown := append([]byte{}, respPayload...)
	unknown[8] = 'z'
	if _, err := c.DecodeResponse(unknown); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown op: got %v, want ErrMalformed", err)
	}
}

func TestFrameBytes(t *testing.T) {
	payload := EncodeError(3, "boom")
	frame, err := FrameBytes(TagError, payload)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != TagError || len(frame) != 9+len(payload) {
		t.Fatalf("frame shape: tag %q len %d", frame[0], len(frame))
	}
}
