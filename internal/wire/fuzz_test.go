package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"implicitlayout/internal/blockio"
)

// FuzzWireRoundTrip throws arbitrary bytes at every wire decoder — as a
// raw frame stream and as bare payloads — and holds the decoders to the
// segment fuzz targets' standard: malformed, truncated, and bit-flipped
// input must error cleanly, never panic and never over-read, and
// anything that does decode must re-encode to a payload that decodes to
// the same message.
func FuzzWireRoundTrip(f *testing.F) {
	c, err := NewCodec[uint64, int64]()
	if err != nil {
		f.Fatal(err)
	}
	seed := func(payload []byte, err error) {
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	seed(c.EncodeRequest(&Request[uint64, int64]{ID: 1, Op: OpGet, Key: 42}))
	seed(c.EncodeRequest(&Request[uint64, int64]{ID: 2, Op: OpPut, Key: 7, Val: -1}))
	seed(c.EncodeRequest(&Request[uint64, int64]{ID: 3, Op: OpGetBatch, Keys: []uint64{1, 2, 3}}))
	seed(c.EncodeRequest(&Request[uint64, int64]{ID: 4, Op: OpRange, Lo: 1, Hi: 9, Limit: 5}))
	seed(c.EncodeRequest(&Request[uint64, int64]{ID: 5, Op: OpStats}))
	seed(c.EncodeResponse(&Response[uint64, int64]{ID: 6, Op: OpGet, Found: true, Val: 9}))
	seed(c.EncodeResponse(&Response[uint64, int64]{ID: 7, Op: OpGetBatch, Vals: []int64{5}, FoundAll: []bool{true}}))
	seed(c.EncodeResponse(&Response[uint64, int64]{ID: 8, Op: OpRange, Keys: []uint64{1}, Vals: []int64{2}, More: true}))
	f.Add(EncodeHello(Hello{Version: 1, Endian: "little", KeyKind: 11, KeyWidth: 8, ValKind: 6, ValWidth: 8}))
	f.Add(EncodeError(9, "boom"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// As bare payloads: every decoder must survive arbitrary bytes,
		// and a successful decode must round-trip to the same message.
		if req, err := c.DecodeRequest(data); err == nil {
			re, err := c.EncodeRequest(req)
			if err != nil {
				t.Fatalf("decoded request failed to re-encode: %v", err)
			}
			again, err := c.DecodeRequest(re)
			if err != nil || !reflect.DeepEqual(again, req) {
				t.Fatalf("request round trip diverged: %+v vs %+v (%v)", req, again, err)
			}
		}
		if resp, err := c.DecodeResponse(data); err == nil {
			re, err := c.EncodeResponse(resp)
			if err != nil {
				t.Fatalf("decoded response failed to re-encode: %v", err)
			}
			again, err := c.DecodeResponse(re)
			if err != nil || !reflect.DeepEqual(again, resp) {
				t.Fatalf("response round trip diverged: %+v vs %+v (%v)", resp, again, err)
			}
		}
		if h, err := DecodeHello(data); err == nil {
			if got, err := DecodeHello(EncodeHello(h)); err != nil || got != h {
				t.Fatalf("hello round trip diverged: %+v vs %+v (%v)", h, got, err)
			}
		}
		if id, msg, err := DecodeError(data); err == nil {
			id2, msg2, err := DecodeError(EncodeError(id, msg))
			if err != nil || id2 != id || msg2 != msg {
				t.Fatalf("error round trip diverged")
			}
		}

		// As a frame stream: the connection read path is blockio.Reader
		// over the socket; arbitrary bytes must never panic it, and any
		// frame it does yield must hit the payload decoders cleanly.
		r := blockio.NewReaderLimit(bytes.NewReader(data), MaxMessage)
		for {
			tag, payload, err := r.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !isCorrupt(err) {
					t.Fatalf("frame walk: unexpected error class %v", err)
				}
				break
			}
			switch tag {
			case TagRequest:
				c.DecodeRequest(payload)
			case TagResponse:
				c.DecodeResponse(payload)
			case TagHello:
				DecodeHello(payload)
			case TagError, TagRefuse:
				DecodeError(payload)
			}
		}
	})
}

func isCorrupt(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == blockio.ErrCorrupt {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
