package wire

import (
	"cmp"
	"encoding/binary"
	"fmt"

	"implicitlayout/internal/mmapio"
)

// Request is one client operation. ID is client-chosen and echoed by
// the matching response; which other fields are meaningful depends on
// Op: Key for Get/Delete, Key+Val for Put, Keys for GetBatch, Lo/Hi and
// Limit for Range, nothing for Stats.
type Request[K cmp.Ordered, V any] struct {
	ID    uint64
	Op    Op
	Key   K
	Val   V
	Keys  []K
	Lo    K
	Hi    K
	Limit int // Range: max records per response (0 = server's cap)
}

// Response is one operation's answer, matched to its request by ID.
// Field use per op: Found/Val for Get; Vals/FoundAll (aligned with the
// request's keys) for GetBatch; Keys/Vals/More for Range; Stats holds
// an opaque gob blob for Stats; Put/Delete carry nothing.
type Response[K cmp.Ordered, V any] struct {
	ID       uint64
	Op       Op
	Found    bool
	Val      V
	Vals     []V
	FoundAll []bool
	Keys     []K
	More     bool // Range: truncated at the limit; more records exist
	Stats    []byte
}

// sessionHeader is the fixed prelude of every request and response
// payload: id u64 LE + op byte.
const sessionHeader = 8 + 1

// appendRaw appends a slice's raw native-endian memory to dst — the
// codec-v2 array dump, on the wire.
func appendRaw[T any](dst []byte, s []T) []byte {
	return append(dst, mmapio.Bytes(s)...)
}

// rawSlice decodes n raw elements from the front of b, returning the
// remainder. The copy into a freshly allocated slice is what guarantees
// alignment: the payload's offset inside a read buffer is arbitrary,
// the new backing array is not.
func rawSlice[T any](b []byte, n, width int) ([]T, []byte, error) {
	if n < 0 || n > MaxBatch || width <= 0 || len(b)/width < n {
		return nil, nil, fmt.Errorf("%w: %d elements of %d bytes in a %d-byte body", ErrMalformed, n, width, len(b))
	}
	out := make([]T, n)
	copy(mmapio.Bytes(out), b[:n*width])
	return out, b[n*width:], nil
}

// rawOne decodes one raw element from the front of b.
func rawOne[T any](b []byte, width int) (T, []byte, error) {
	s, rest, err := rawSlice[T](b, 1, width)
	if err != nil {
		var zero T
		return zero, nil, err
	}
	return s[0], rest, nil
}

// EncodeRequest renders req as a TagRequest payload.
func (c *Codec[K, V]) EncodeRequest(req *Request[K, V]) ([]byte, error) {
	b := make([]byte, 0, sessionHeader+c.keyWidth+c.valWidth+len(req.Keys)*c.keyWidth+8)
	b = binary.LittleEndian.AppendUint64(b, req.ID)
	b = append(b, byte(req.Op))
	switch req.Op {
	case OpGet, OpDelete:
		b = appendRaw(b, []K{req.Key})
	case OpPut:
		b = appendRaw(b, []K{req.Key})
		b = appendRaw(b, []V{req.Val})
	case OpGetBatch:
		if len(req.Keys) > MaxBatch {
			return nil, fmt.Errorf("%w: GetBatch of %d keys exceeds MaxBatch %d", ErrMalformed, len(req.Keys), MaxBatch)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(req.Keys)))
		b = appendRaw(b, req.Keys)
	case OpRange:
		b = appendRaw(b, []K{req.Lo, req.Hi})
		b = binary.LittleEndian.AppendUint32(b, uint32(req.Limit))
	case OpStats:
		// header only
	default:
		return nil, fmt.Errorf("%w: unknown request op %q", ErrMalformed, byte(req.Op))
	}
	return b, nil
}

// DecodeRequest parses a TagRequest payload. Every branch checks the
// exact body length for its op — short bodies, impossible counts, and
// trailing bytes are all ErrMalformed, never an over-read.
func (c *Codec[K, V]) DecodeRequest(payload []byte) (*Request[K, V], error) {
	if len(payload) < sessionHeader {
		return nil, fmt.Errorf("%w: request payload of %d bytes has no header", ErrMalformed, len(payload))
	}
	req := &Request[K, V]{
		ID: binary.LittleEndian.Uint64(payload[:8]),
		Op: Op(payload[8]),
	}
	body := payload[sessionHeader:]
	var err error
	switch req.Op {
	case OpGet, OpDelete:
		if req.Key, body, err = rawOne[K](body, c.keyWidth); err != nil {
			return nil, err
		}
	case OpPut:
		if req.Key, body, err = rawOne[K](body, c.keyWidth); err != nil {
			return nil, err
		}
		if req.Val, body, err = rawOne[V](body, c.valWidth); err != nil {
			return nil, err
		}
	case OpGetBatch:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: GetBatch body of %d bytes has no count", ErrMalformed, len(body))
		}
		n := int(binary.LittleEndian.Uint32(body[:4]))
		if req.Keys, body, err = rawSlice[K](body[4:], n, c.keyWidth); err != nil {
			return nil, err
		}
	case OpRange:
		var bounds []K
		if bounds, body, err = rawSlice[K](body, 2, c.keyWidth); err != nil {
			return nil, err
		}
		req.Lo, req.Hi = bounds[0], bounds[1]
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: Range body has no limit", ErrMalformed)
		}
		req.Limit = int(binary.LittleEndian.Uint32(body[:4]))
		body = body[4:]
	case OpStats:
		// header only
	default:
		return nil, fmt.Errorf("%w: unknown request op %q", ErrMalformed, byte(req.Op))
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %s request", ErrMalformed, len(body), req.Op)
	}
	return req, nil
}

// EncodeResponse renders resp as a TagResponse payload.
func (c *Codec[K, V]) EncodeResponse(resp *Response[K, V]) ([]byte, error) {
	n := max(len(resp.Vals), len(resp.Keys))
	b := make([]byte, 0, sessionHeader+8+n*(c.keyWidth+c.valWidth+1)+len(resp.Stats))
	b = binary.LittleEndian.AppendUint64(b, resp.ID)
	b = append(b, byte(resp.Op))
	switch resp.Op {
	case OpGet:
		b = append(b, boolByte(resp.Found))
		b = appendRaw(b, []V{resp.Val})
	case OpPut, OpDelete:
		// header only: the response IS the acknowledgment
	case OpGetBatch:
		if len(resp.FoundAll) != len(resp.Vals) {
			return nil, fmt.Errorf("%w: GetBatch response with %d vals but %d found flags",
				ErrMalformed, len(resp.Vals), len(resp.FoundAll))
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Vals)))
		for _, f := range resp.FoundAll {
			b = append(b, boolByte(f))
		}
		b = appendRaw(b, resp.Vals)
	case OpRange:
		if len(resp.Keys) != len(resp.Vals) {
			return nil, fmt.Errorf("%w: Range response with %d keys but %d vals",
				ErrMalformed, len(resp.Keys), len(resp.Vals))
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Keys)))
		b = append(b, boolByte(resp.More))
		b = appendRaw(b, resp.Keys)
		b = appendRaw(b, resp.Vals)
	case OpStats:
		b = append(b, resp.Stats...)
	default:
		return nil, fmt.Errorf("%w: unknown response op %q", ErrMalformed, byte(resp.Op))
	}
	return b, nil
}

// DecodeResponse parses a TagResponse payload with the same exhaustive
// length discipline as DecodeRequest.
func (c *Codec[K, V]) DecodeResponse(payload []byte) (*Response[K, V], error) {
	if len(payload) < sessionHeader {
		return nil, fmt.Errorf("%w: response payload of %d bytes has no header", ErrMalformed, len(payload))
	}
	resp := &Response[K, V]{
		ID: binary.LittleEndian.Uint64(payload[:8]),
		Op: Op(payload[8]),
	}
	body := payload[sessionHeader:]
	var err error
	switch resp.Op {
	case OpGet:
		if len(body) < 1 {
			return nil, fmt.Errorf("%w: Get response has no found flag", ErrMalformed)
		}
		if resp.Found, err = byteBool(body[0]); err != nil {
			return nil, err
		}
		if resp.Val, body, err = rawOne[V](body[1:], c.valWidth); err != nil {
			return nil, err
		}
	case OpPut, OpDelete:
		// header only
	case OpGetBatch:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: GetBatch response has no count", ErrMalformed)
		}
		n := int(binary.LittleEndian.Uint32(body[:4]))
		body = body[4:]
		if n < 0 || n > MaxBatch || len(body) < n {
			return nil, fmt.Errorf("%w: GetBatch response counts %d in a %d-byte body", ErrMalformed, n, len(body))
		}
		resp.FoundAll = make([]bool, n)
		for i := range resp.FoundAll {
			if resp.FoundAll[i], err = byteBool(body[i]); err != nil {
				return nil, err
			}
		}
		if resp.Vals, body, err = rawSlice[V](body[n:], n, c.valWidth); err != nil {
			return nil, err
		}
	case OpRange:
		if len(body) < 5 {
			return nil, fmt.Errorf("%w: Range response has no count", ErrMalformed)
		}
		n := int(binary.LittleEndian.Uint32(body[:4]))
		if resp.More, err = byteBool(body[4]); err != nil {
			return nil, err
		}
		if resp.Keys, body, err = rawSlice[K](body[5:], n, c.keyWidth); err != nil {
			return nil, err
		}
		if resp.Vals, body, err = rawSlice[V](body, n, c.valWidth); err != nil {
			return nil, err
		}
	case OpStats:
		resp.Stats, body = body, nil
	default:
		return nil, fmt.Errorf("%w: unknown response op %q", ErrMalformed, byte(resp.Op))
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %s response", ErrMalformed, len(body), resp.Op)
	}
	return resp, nil
}

// EncodeError renders a TagError payload: the failed request's ID and a
// human-readable reason.
func EncodeError(id uint64, msg string) []byte {
	b := make([]byte, 0, 8+len(msg))
	b = binary.LittleEndian.AppendUint64(b, id)
	return append(b, msg...)
}

// DecodeError parses a TagError payload.
func DecodeError(payload []byte) (id uint64, msg string, err error) {
	if len(payload) < 8 {
		return 0, "", fmt.Errorf("%w: error payload of %d bytes has no id", ErrMalformed, len(payload))
	}
	return binary.LittleEndian.Uint64(payload[:8]), string(payload[8:]), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// byteBool is strict: a found flag is 0 or 1, anything else is a
// malformed message, so a fuzzer's 0x02 cannot round-trip to 0x01.
func byteBool(b byte) (bool, error) {
	if b > 1 {
		return false, fmt.Errorf("%w: boolean byte %d", ErrMalformed, b)
	}
	return b == 1, nil
}
