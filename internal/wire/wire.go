// Package wire defines the binary protocol the TCP serving layer
// speaks: the message grammar shared by implicitlayout/server and
// implicitlayout/client.
//
// The wire reuses internal/blockio's frame grammar verbatim — every
// message is one frame:
//
//	frame := tag(1) | length(4, LE) | crc32c(4, LE) | payload
//
// so a flipped bit anywhere in a message fails its checksum, a message
// cut short by a dying connection surfaces as io.ErrUnexpectedEOF, and
// the read loops on both ends are blockio.Reader.Next — the same code
// that walks segment files walks the socket.
//
// A connection opens with version negotiation: the client sends one
// Hello frame carrying the protocol version and the platform contract —
// byte order, key/value reflect kinds and element widths, exactly the
// fields a codec-v2 segment header records — and the server answers
// with an accept or a refusal that names the reason. An unknown version
// is refused, never guessed at (the segment codec's
// errSegVersionUnknown rule, applied to the socket), and a platform
// mismatch is refused the way a mapped segment from a foreign machine
// is: bulk key and value arrays cross the wire as raw native-endian
// memory dumps, encoded exactly as codec-v2 array frames are, so both
// ends must agree on the bytes before any data moves.
//
// After the handshake the connection is a full-duplex pipeline:
// requests carry client-chosen IDs, the server answers each when its
// work completes — out of order when a slow Range trails fast Gets —
// and the client matches responses back to callers by ID. Protocol
// integers (IDs, counts, limits) are little-endian like the frame
// headers; only the bulk arrays are native-endian, and the handshake
// has already proven both ends native-identical.
package wire

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"unsafe"

	"implicitlayout/internal/blockio"
)

const (
	// Magic opens every Hello payload; a server reading anything else
	// is not talking to this protocol at all.
	Magic = "ILWP\x01"

	// Version is the protocol version this build speaks.
	Version = 1

	// MaxMessage caps one message's payload. Both ends read the socket
	// through blockio.NewReaderLimit with this cap, so a nine-byte
	// header claiming a gigabyte payload is refused as corrupt instead
	// of allocated — an untrusted peer cannot buy memory with a length
	// field.
	MaxMessage = 16 << 20

	// MaxBatch caps the element count of one GetBatch or Range message.
	// With 8-byte keys and values the largest message it permits sits
	// well inside MaxMessage; decoders refuse larger counts before
	// allocating.
	MaxBatch = 1 << 19
)

// Frame tags. Handshake frames carry no request ID; session frames
// (request, response, error) start their payload with one.
const (
	TagHello    byte = 'H' // client → server: version + platform contract
	TagHelloOK  byte = 'O' // server → client: handshake accepted
	TagRefuse   byte = 'F' // server → client: handshake refused, payload names why
	TagRequest  byte = 'q' // client → server: one operation
	TagResponse byte = 'R' // server → client: one operation's answer
	TagError    byte = 'E' // server → client: one operation failed
)

// Op identifies a request's operation, carried as one payload byte.
type Op byte

const (
	OpGet      Op = 'g'
	OpGetBatch Op = 'b'
	OpRange    Op = 'r'
	OpPut      Op = 'p'
	OpDelete   Op = 'd'
	OpStats    Op = 's'
)

// String names an op for errors and stats.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "Get"
	case OpGetBatch:
		return "GetBatch"
	case OpRange:
		return "Range"
	case OpPut:
		return "Put"
	case OpDelete:
		return "Delete"
	case OpStats:
		return "Stats"
	}
	return fmt.Sprintf("Op(%q)", byte(o))
}

// ErrVersionUnknown marks a handshake whose protocol version this build
// does not know. Mirroring the segment codec's rule, an unknown version
// is refused with its number named — never served on a guess.
var ErrVersionUnknown = errors.New("wire: protocol version unknown to this build")

// ErrPlatform marks a handshake whose platform contract (byte order,
// key/value kinds or widths) does not match this end's: raw array
// frames would be reinterpreted as garbage, so the connection is
// refused instead.
var ErrPlatform = errors.New("wire: platform contract mismatch")

// ErrMalformed marks a frame whose payload does not parse as the
// message its tag claims: wrong length arithmetic, impossible counts,
// trailing bytes. The checksum already passed, so this is a peer
// speaking the grammar but not the protocol.
var ErrMalformed = errors.New("wire: malformed message")

// Hello is the handshake's content: the protocol version and the
// platform contract, the same facts a codec-v2 segment header pins.
type Hello struct {
	Version  int
	Endian   string // "little" or "big", as in segment headers
	KeyKind  reflect.Kind
	KeyWidth int
	ValKind  reflect.Kind
	ValWidth int
}

// helloSize is the fixed Hello payload: magic, version u32, endian
// byte, then kind/width byte pairs for key and value.
const helloSize = len(Magic) + 4 + 1 + 4

// hostEndian returns this machine's byte order tag.
func hostEndian() string {
	var buf [2]byte
	binary.NativeEndian.PutUint16(buf[:], 1)
	if buf[0] == 1 {
		return "little"
	}
	return "big"
}

func endianByte(e string) byte {
	if e == "big" {
		return 2
	}
	return 1
}

// Codec carries one (K, V) pair's wire facts: reflect kinds and element
// widths for the raw array frames, as negotiated in the handshake.
type Codec[K cmp.Ordered, V any] struct {
	keyKind  reflect.Kind
	keyWidth int
	valKind  reflect.Kind
	valWidth int
}

// fixedKind reports whether t is a fixed-width primitive the raw wire
// format can carry as a memory dump — the same eligibility rule as the
// codec-v2 segment format.
func fixedKind(t reflect.Type) (reflect.Kind, bool) {
	switch k := t.Kind(); k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64:
		return k, true
	}
	return 0, false
}

// NewCodec builds the codec for one key/value type pair, refusing types
// the raw wire format cannot carry (strings, structs, slices — anything
// the segment codec would route to gob instead of a raw dump).
func NewCodec[K cmp.Ordered, V any]() (*Codec[K, V], error) {
	kk, ok := fixedKind(reflect.TypeFor[K]())
	if !ok {
		var zk K
		return nil, fmt.Errorf("wire: key type %T is not fixed-width; the wire carries raw native-endian arrays only", zk)
	}
	vk, ok := fixedKind(reflect.TypeFor[V]())
	if !ok {
		var zv V
		return nil, fmt.Errorf("wire: value type %T is not fixed-width; the wire carries raw native-endian arrays only", zv)
	}
	var zk K
	var zv V
	return &Codec[K, V]{
		keyKind:  kk,
		keyWidth: int(unsafe.Sizeof(zk)),
		valKind:  vk,
		valWidth: int(unsafe.Sizeof(zv)),
	}, nil
}

// Hello returns the handshake this codec's end would send.
func (c *Codec[K, V]) Hello() Hello {
	return Hello{
		Version:  Version,
		Endian:   hostEndian(),
		KeyKind:  c.keyKind,
		KeyWidth: c.keyWidth,
		ValKind:  c.valKind,
		ValWidth: c.valWidth,
	}
}

// CheckHello validates a peer's handshake against this codec: the
// version must be known and the platform contract must match exactly.
func (c *Codec[K, V]) CheckHello(h Hello) error {
	if h.Version != Version {
		return fmt.Errorf("%w: peer speaks version %d, this build speaks %d",
			ErrVersionUnknown, h.Version, Version)
	}
	mine := c.Hello()
	if h.Endian != mine.Endian {
		return fmt.Errorf("%w: peer is %s-endian, this end is %s-endian", ErrPlatform, h.Endian, mine.Endian)
	}
	if h.KeyKind != mine.KeyKind || h.KeyWidth != mine.KeyWidth {
		return fmt.Errorf("%w: peer keys are kind %d width %d, this end kind %d width %d",
			ErrPlatform, h.KeyKind, h.KeyWidth, mine.KeyKind, mine.KeyWidth)
	}
	if h.ValKind != mine.ValKind || h.ValWidth != mine.ValWidth {
		return fmt.Errorf("%w: peer values are kind %d width %d, this end kind %d width %d",
			ErrPlatform, h.ValKind, h.ValWidth, mine.ValKind, mine.ValWidth)
	}
	return nil
}

// EncodeHello renders a Hello payload.
func EncodeHello(h Hello) []byte {
	b := make([]byte, 0, helloSize)
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Version))
	b = append(b, endianByte(h.Endian), byte(h.KeyKind), byte(h.KeyWidth), byte(h.ValKind), byte(h.ValWidth))
	return b
}

// DecodeHello parses a Hello payload. A wrong magic or a short payload
// is ErrMalformed; version and platform checks are the caller's
// (CheckHello), so a well-formed future-version hello still decodes and
// can be refused by number.
func DecodeHello(payload []byte) (Hello, error) {
	if len(payload) != helloSize {
		return Hello{}, fmt.Errorf("%w: hello payload is %d bytes, want %d", ErrMalformed, len(payload), helloSize)
	}
	if string(payload[:len(Magic)]) != Magic {
		return Hello{}, fmt.Errorf("%w: bad hello magic %q", ErrMalformed, payload[:len(Magic)])
	}
	p := payload[len(Magic):]
	h := Hello{
		Version:  int(binary.LittleEndian.Uint32(p[0:4])),
		KeyKind:  reflect.Kind(p[5]),
		KeyWidth: int(p[6]),
		ValKind:  reflect.Kind(p[7]),
		ValWidth: int(p[8]),
	}
	switch p[4] {
	case 1:
		h.Endian = "little"
	case 2:
		h.Endian = "big"
	default:
		return Hello{}, fmt.Errorf("%w: unknown endian tag %d", ErrMalformed, p[4])
	}
	return h, nil
}

// FrameBytes renders one complete frame — header and payload — as a
// byte slice, through the same blockio writer that renders it onto a
// socket. The client's pipelined send path queues pre-rendered frames.
func FrameBytes(tag byte, payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(blockio.HeaderSize + len(payload))
	if err := blockio.NewWriter(&buf).WriteBlock(tag, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
