package shuffle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
)

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func runners() []par.Runner {
	return []par.Runner{
		par.New(1),
		{Lo: 0, Hi: 2, MinFor: 1},
		{Lo: 0, Hi: 4, MinFor: 1},
		{Lo: 0, Hi: 3, MinFor: 8},
	}
}

// refShuffle computes the k-way shuffle out of place: deck-major input to
// interleaved output.
func refShuffle(in []int, k int) []int {
	n := len(in)
	m := n / k
	out := make([]int, n)
	for c := 0; c < k; c++ {
		for j := 0; j < m; j++ {
			out[j*k+c] = in[c*m+j]
		}
	}
	return out
}

func refUnshuffle(in []int, k int) []int {
	n := len(in)
	m := n / k
	out := make([]int, n)
	for c := 0; c < k; c++ {
		for j := 0; j < m; j++ {
			out[c*m+j] = in[j*k+c]
		}
	}
	return out
}

func TestReverse(t *testing.T) {
	for _, r := range runners() {
		for _, n := range []int{0, 1, 2, 3, 10, 101, 4096} {
			s := seq(n)
			Reverse[int](r, vec.Of(s), 0, n)
			for i := range s {
				if s[i] != n-1-i {
					t.Fatalf("P=%d n=%d: reverse wrong at %d: %v", r.P(), n, i, s[:min(n, 20)])
				}
			}
		}
	}
}

func TestReversePartialWindow(t *testing.T) {
	r := par.New(2)
	s := seq(10)
	Reverse[int](r, vec.Of(s), 3, 4) // reverse s[3:7]
	want := []int{0, 1, 2, 6, 5, 4, 3, 7, 8, 9}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("got %v want %v", s, want)
	}
}

func TestRotateRight(t *testing.T) {
	for _, r := range runners() {
		for _, n := range []int{1, 2, 3, 7, 64, 1000} {
			for _, s := range []int{0, 1, 2, n - 1, n, n + 3, -1} {
				a := seq(n)
				RotateRight[int](r, vec.Of(a), 0, n, s)
				sm := ((s % n) + n) % n
				for i := 0; i < n; i++ {
					if a[(i+sm)%n] != i {
						t.Fatalf("P=%d n=%d s=%d: rotate wrong: %v", r.P(), n, s, a[:min(n, 20)])
					}
				}
			}
		}
	}
}

func TestRotateLeftInvertsRotateRight(t *testing.T) {
	f := func(nRaw uint16, sRaw uint16) bool {
		n := int(nRaw)%500 + 1
		s := int(sRaw) % (2 * n)
		a := seq(n)
		r := par.New(2)
		RotateRight[int](r, vec.Of(a), 0, n, s)
		RotateLeft[int](r, vec.Of(a), 0, n, s)
		return reflect.DeepEqual(a, seq(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRotateRightUnitsStrided checks strided unit rotation: units along a
// stride, contents preserved.
func TestRotateRightUnitsStrided(t *testing.T) {
	// 12 elements, units of c=2 at stride 4: units at offsets 0, 4, 8.
	a := []int{0, 1, 100, 101, 2, 3, 102, 103, 4, 5, 104, 105}
	RotateRightUnits[int](par.New(2), vec.Of(a), 0, 4, 3, 2, 1)
	want := []int{4, 5, 100, 101, 0, 1, 102, 103, 2, 3, 104, 105}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("strided rotate:\n got %v\nwant %v", a, want)
	}
}

// TestRotateUnitsChunkedEqualsElementwise: rotating m units of c elements
// equals rotating m*c elements by s*c when units are adjacent.
func TestRotateUnitsChunkedEqualsElementwise(t *testing.T) {
	f := func(mRaw, cRaw, sRaw uint8) bool {
		m := int(mRaw)%20 + 1
		c := int(cRaw)%8 + 1
		s := int(sRaw) % m
		a := seq(m * c)
		b := seq(m * c)
		r := par.New(2)
		RotateRightUnits[int](r, vec.Of(a), 0, c, m, c, s)
		RotateRight[int](r, vec.Of(b), 0, m*c, s*c)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKShuffleAgainstReference(t *testing.T) {
	for _, r := range runners() {
		for _, tc := range []struct{ m, k int }{
			{1, 2}, {2, 2}, {5, 2}, {4, 3}, {9, 3}, {7, 4}, {3, 5}, {100, 2}, {50, 6},
		} {
			n := tc.m * tc.k
			a := seq(n)
			KShuffle[int](r, vec.Of(a), 0, n, tc.k)
			want := refShuffle(seq(n), tc.k)
			if !reflect.DeepEqual(a, want) {
				t.Fatalf("P=%d n=%d k=%d:\n got %v\nwant %v", r.P(), n, tc.k, a, want)
			}
		}
	}
}

func TestKUnshuffleAgainstReference(t *testing.T) {
	for _, r := range runners() {
		for _, tc := range []struct{ m, k int }{
			{2, 2}, {5, 2}, {9, 3}, {7, 4}, {100, 2}, {50, 6}, {27, 3},
		} {
			n := tc.m * tc.k
			a := seq(n)
			KUnshuffle[int](r, vec.Of(a), 0, n, tc.k)
			want := refUnshuffle(seq(n), tc.k)
			if !reflect.DeepEqual(a, want) {
				t.Fatalf("P=%d n=%d k=%d:\n got %v\nwant %v", r.P(), n, tc.k, a, want)
			}
		}
	}
}

// TestKShufflePowMatchesJPath: the digit-reversal path Ξ₁ and the modular
// inverse path Ξ₂ produce identical permutations when both apply.
func TestKShufflePowMatchesJPath(t *testing.T) {
	r := par.New(2)
	for _, tc := range []struct{ k, d int }{{2, 2}, {2, 5}, {3, 3}, {4, 3}, {5, 2}} {
		n := 1
		for i := 0; i < tc.d; i++ {
			n *= tc.k
		}
		a, b := seq(n), seq(n)
		KShufflePow[int](r, vec.Of(a), 0, n, tc.k, tc.d)
		KShuffle[int](r, vec.Of(b), 0, n, tc.k)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d d=%d: pow path %v != J path %v", tc.k, tc.d, a, b)
		}
		a2, b2 := seq(n), seq(n)
		KUnshufflePow[int](r, vec.Of(a2), 0, n, tc.k, tc.d)
		KUnshuffle[int](r, vec.Of(b2), 0, n, tc.k)
		if !reflect.DeepEqual(a2, b2) {
			t.Fatalf("k=%d d=%d: unshuffle pow path %v != J path %v", tc.k, tc.d, a2, b2)
		}
	}
}

// TestKUnshuffle1GathersStrided: with simulated 1-indexing, every k-th
// element (1-indexed) gathers in order to the front.
func TestKUnshuffle1GathersStrided(t *testing.T) {
	for _, r := range runners() {
		for _, tc := range []struct{ n, k int }{
			{7, 2}, {15, 2}, {8, 3}, {26, 3}, {11, 4}, {63, 4}, {24, 5}, {124, 5},
		} {
			a := seq(tc.n)
			KUnshuffle1[int](r, vec.Of(a), 0, tc.n, tc.k)
			// fronts: elements at 1-indexed positions k, 2k, ... in order.
			cnt := (tc.n + 1) / tc.k
			for j := 1; j < cnt; j++ {
				if a[j-1] != j*tc.k-1 {
					t.Fatalf("P=%d n=%d k=%d: front[%d]=%d, want %d (array %v)",
						r.P(), tc.n, tc.k, j-1, a[j-1], j*tc.k-1, a)
				}
			}
			// deck c (1 <= c < k) holds original 1-indexed positions
			// j*k+c in order, at array slots (n+1)/k*c - 1 + j.
			m := (tc.n + 1) / tc.k
			for c := 1; c < tc.k; c++ {
				for j := 0; j < m; j++ {
					slot := m*c - 1 + j
					if slot >= tc.n {
						continue
					}
					orig := j*tc.k + c - 1
					if a[slot] != orig {
						t.Fatalf("P=%d n=%d k=%d: deck %d slot %d holds %d, want %d (array %v)",
							r.P(), tc.n, tc.k, c, slot, a[slot], orig, a)
					}
				}
			}
		}
	}
}

// TestKShuffle1InvertsKUnshuffle1 round-trips.
func TestKShuffle1InvertsKUnshuffle1(t *testing.T) {
	r := par.New(3)
	r.MinFor = 1
	for _, tc := range []struct{ n, k int }{
		{7, 2}, {26, 3}, {63, 4}, {124, 5}, {31, 2}, {80, 9},
	} {
		a := seq(tc.n)
		KUnshuffle1[int](r, vec.Of(a), 0, tc.n, tc.k)
		KShuffle1[int](r, vec.Of(a), 0, tc.n, tc.k)
		if !reflect.DeepEqual(a, seq(tc.n)) {
			t.Fatalf("n=%d k=%d: round trip failed: %v", tc.n, tc.k, a)
		}
	}
}

func TestSwapBlocks(t *testing.T) {
	for _, r := range runners() {
		a := seq(1000)
		SwapBlocks[int](r, vec.Of(a), 0, 500, 500)
		for i := 0; i < 500; i++ {
			if a[i] != 500+i || a[500+i] != i {
				t.Fatalf("P=%d: swap halves wrong at %d", r.P(), i)
			}
		}
	}
}

// TestWindowedOps: operations respect the window offset lo.
func TestWindowedOps(t *testing.T) {
	r := par.New(2)
	a := seq(20)
	KShuffle[int](r, vec.Of(a), 5, 10, 2)
	want := append(seq(5), refShuffle([]int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14}, 2)...)
	want = append(want, 15, 16, 17, 18, 19)
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("windowed shuffle:\n got %v\nwant %v", a, want)
	}
}

// TestRandomizedRotations: fuzz rotations against a reference.
func TestRandomizedRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := par.Runner{Lo: 0, Hi: 4, MinFor: 1}
	for trial := 0; trial < 200; trial++ {
		m := rng.Intn(30) + 1
		c := rng.Intn(5) + 1
		stride := c + rng.Intn(4)*c // stride multiple of c keeps units disjoint
		s := rng.Intn(2 * m)
		total := (m-1)*stride + c
		base := rng.Intn(5)
		a := seq(base + total + 3)
		want := append([]int(nil), a...)
		// reference: collect units, rotate, scatter.
		units := make([][]int, m)
		for t := 0; t < m; t++ {
			units[t] = append([]int(nil), a[base+t*stride:base+t*stride+c]...)
		}
		for t := 0; t < m; t++ {
			src := ((t-s)%m + m) % m
			copy(want[base+t*stride:], units[src])
		}
		RotateRightUnits[int](r, vec.Of(a), base, stride, m, c, s)
		if !reflect.DeepEqual(a, want) {
			t.Fatalf("trial %d m=%d c=%d stride=%d s=%d:\n got %v\nwant %v", trial, m, c, stride, s, a, want)
		}
	}
}
