// Package shuffle implements the parallel in-place data-movement
// primitives every permutation algorithm in this repository is composed
// of:
//
//   - application of an involution as one round of disjoint swaps;
//   - reversals and circular shifts (rotations) of unit sequences, where a
//     unit is a contiguous chunk of c elements placed at a fixed stride —
//     this single generalization covers plain ranges, the strided cycles
//     of the equidistant gather, and the chunked (block) variants that
//     make the cycle-leader algorithms I/O-efficient (Chapter 4);
//   - k-way perfect shuffles and un-shuffles, via the digit-reversal
//     involutions Ξ₁ for sizes k^d and the modular-inverse involutions
//     Ξ₂ = J_k ∘ J_1 for any size divisible by k (Yang et al.), plus the
//     1-indexed variants (phantom fixed index 0) used by the B-tree and
//     vEB algorithms on arrays of k^d − 1 elements.
//
// Rotations use the two-round reversal identity, so every primitive moves
// data exclusively through swaps: O(1) auxiliary space per worker.
package shuffle

import (
	"fmt"

	"implicitlayout/internal/bits"
	"implicitlayout/internal/numth"
	"implicitlayout/internal/par"
	"implicitlayout/internal/vec"
)

// InvMap is an index involution f with f(f(i)) == i. Implementations are
// small value types so that involution rounds dispatch statically and
// allocate nothing — the recursive vEB algorithms apply one round per
// subtree, so a per-round closure would make them non-in-place.
type InvMap interface {
	// Map returns f(i).
	Map(i uint64) uint64
}

// JMap is the modular-inverse involution J_R over {0..M} (Yang et al.).
type JMap struct{ R, M uint64 }

// Map returns J_R(i).
func (m JMap) Map(i uint64) uint64 { return numth.J(m.R, i, m.M) }

// RevKMap reverses the B least significant base-K digits of the index.
type RevKMap struct {
	K uint64
	B int
}

// Map returns rev_K(B, i).
func (m RevKMap) Map(i uint64) uint64 { return bits.RevK(m.K, m.B, i) }

// ApplyInvolution performs one parallel round of swaps realizing the
// involution f on the window [lo, lo+n) of v: element lo+i is exchanged
// with lo+f(i). f must satisfy f(i) < n for all i < n. cost is the model
// cost (instruction count) of one evaluation of f, forwarded to
// cost-tracking backends.
func ApplyInvolution[T any, F InvMap, V vec.Vec[T]](r par.Runner, v V, lo, n int, cost int, f F) {
	v.BeginRound("involution", n)
	if r.IsSerial() {
		applyInvSeq[T](v, r.Lo, lo, 0, n, cost, f)
		return
	}
	r.For(n, func(p, a, b int) {
		applyInvSeq[T](v, p, lo, a, b, cost, f)
	})
}

func applyInvSeq[T any, F InvMap, V vec.Vec[T]](v V, p, lo, a, b, cost int, f F) {
	v.AddInstr(p, (b-a)*cost)
	for i := a; i < b; i++ {
		j := int(f.Map(uint64(i)))
		if j > i {
			v.Swap(p, lo+i, lo+j)
		}
	}
}

// ReverseUnits reverses the order of m units, where unit t occupies the c
// contiguous elements starting at base + t*stride. Unit contents are
// preserved (units are swapped whole), which is what makes chunked
// rotations I/O-efficient. It is one parallel round of block swaps.
func ReverseUnits[T any, V vec.Vec[T]](r par.Runner, v V, base, stride, m, c int) {
	if m < 2 {
		return
	}
	v.BeginRound("reverse", m*c)
	half := m / 2
	if r.IsSerial() {
		reverseUnitsSeq[T](v, r.Lo, base, stride, m, c, 0, half)
		return
	}
	r.For(half, func(p, a, b int) {
		reverseUnitsSeq[T](v, p, base, stride, m, c, a, b)
	})
}

func reverseUnitsSeq[T any, V vec.Vec[T]](v V, p, base, stride, m, c, a, b int) {
	for t := a; t < b; t++ {
		i := base + t*stride
		j := base + (m-1-t)*stride
		if c == 1 {
			v.Swap(p, i, j)
		} else {
			v.SwapRange(p, i, j, c)
		}
	}
}

// RotateRightUnits circularly shifts the contents of m units right by s
// positions: the content of unit t moves to unit (t+s) mod m. Unit t
// occupies c contiguous elements at base + t*stride. Implemented as the
// classical three reversals (two parallel rounds of swaps), it uses O(1)
// space per worker.
func RotateRightUnits[T any, V vec.Vec[T]](r par.Runner, v V, base, stride, m, c, s int) {
	if m < 2 {
		return
	}
	s %= m
	if s < 0 {
		s += m
	}
	if s == 0 {
		return
	}
	// rotate right by s == reverse whole; reverse first s; reverse rest.
	ReverseUnits[T](r, v, base, stride, m, c)
	if r.P() > 1 && s > 1 && m-s > 1 {
		r.Do(
			func(sub par.Runner) { ReverseUnits[T](sub, v, base, stride, s, c) },
			func(sub par.Runner) { ReverseUnits[T](sub, v, base+s*stride, stride, m-s, c) },
		)
		return
	}
	ReverseUnits[T](r, v, base, stride, s, c)
	ReverseUnits[T](r, v, base+s*stride, stride, m-s, c)
}

// Reverse reverses v[lo : lo+n) in one parallel round.
func Reverse[T any, V vec.Vec[T]](r par.Runner, v V, lo, n int) {
	ReverseUnits[T](r, v, lo, 1, n, 1)
}

// RotateRight circularly shifts v[lo : lo+n) right by s positions.
func RotateRight[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, s int) {
	RotateRightUnits[T](r, v, lo, 1, n, 1, s)
}

// SwapBlocks exchanges the non-overlapping n-element blocks at i and j,
// split across workers (one parallel round). It is the baseline operation
// the paper compares the chunked equidistant gather against (Figure 6.4).
func SwapBlocks[T any, V vec.Vec[T]](r par.Runner, v V, i, j, n int) {
	if n <= 0 {
		return
	}
	v.BeginRound("swapblocks", 2*n)
	if r.IsSerial() {
		v.SwapRange(r.Lo, i, j, n)
		return
	}
	r.For(n, func(p, a, b int) {
		v.SwapRange(p, i+a, j+a, b-a)
	})
}

// RotateLeft circularly shifts v[lo : lo+n) left by s positions.
func RotateLeft[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, s int) {
	if n < 2 {
		return
	}
	s %= n
	if s < 0 {
		s += n
	}
	RotateRightUnits[T](r, v, lo, 1, n, 1, n-s)
}

// costs of evaluating the index maps, in model instructions. The J
// involution runs the extended Euclidean algorithm, hence the log factor
// that shows up in the involution B-tree row of Table 1.1. Digit reversal
// costs are per digit in software; hardware base-2 reversal is O(1).
const (
	costSwapBase = 4
	costPerDigit = 6
)

func costRev(k uint64, d int) int {
	if k == 2 {
		return costSwapBase + 2 // modelled as hardware/table reversal
	}
	return costSwapBase + costPerDigit*d
}

func costJ(n int) int {
	// gcd + extended Euclid, both O(log n) iterations.
	return costSwapBase + 3*logCeil(n)
}

func logCeil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// KShuffle performs the k-way perfect shuffle of v[lo : lo+n): the
// deck-major input (k decks of n/k elements each) becomes interleaved.
// Element i moves to position k*i mod (n-1), with n-1 fixed. n must be a
// positive multiple of k. Two involution rounds (Ξ₂ = J_k ∘ J_1).
func KShuffle[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, k int) {
	checkDeck(n, k)
	if n <= k || k == 1 { // a single deck or single-element decks: identity
		return
	}
	m := uint64(n - 1)
	cost := costJ(n)
	ApplyInvolution[T](r, v, lo, n, cost, JMap{R: 1, M: m})
	ApplyInvolution[T](r, v, lo, n, cost, JMap{R: uint64(k), M: m})
}

// KUnshuffle performs the k-way perfect un-shuffle of v[lo : lo+n): the
// interleaved input is separated into k contiguous decks; element i moves
// to position (n/k)*i mod (n-1). n must be a positive multiple of k.
func KUnshuffle[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, k int) {
	checkDeck(n, k)
	if n <= k || k == 1 {
		return
	}
	m := uint64(n - 1)
	cost := costJ(n)
	ApplyInvolution[T](r, v, lo, n, cost, JMap{R: uint64(k), M: m})
	ApplyInvolution[T](r, v, lo, n, cost, JMap{R: 1, M: m})
}

// KShufflePow performs the k-way perfect shuffle of v[lo : lo+n) for
// n = k^d, using the digit-reversal involutions Ξ₁: the shuffle is the
// left rotation of base-k digits, realized as rev_k(d-1) then rev_k(d).
func KShufflePow[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, k, d int) {
	checkPow(n, k, d)
	if d < 2 {
		return
	}
	ku := uint64(k)
	ApplyInvolution[T](r, v, lo, n, costRev(ku, d-1), RevKMap{K: ku, B: d - 1})
	ApplyInvolution[T](r, v, lo, n, costRev(ku, d), RevKMap{K: ku, B: d})
}

// KUnshufflePow performs the k-way perfect un-shuffle of v[lo : lo+n) for
// n = k^d: the right rotation of base-k digits, rev_k(d) then rev_k(d-1).
func KUnshufflePow[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, k, d int) {
	checkPow(n, k, d)
	if d < 2 {
		return
	}
	ku := uint64(k)
	ApplyInvolution[T](r, v, lo, n, costRev(ku, d), RevKMap{K: ku, B: d})
	ApplyInvolution[T](r, v, lo, n, costRev(ku, d-1), RevKMap{K: ku, B: d - 1})
}

// KUnshuffle1 performs the k-way perfect un-shuffle with simulated
// 1-indexing on v[lo : lo+n): the permutation acts on the index set
// {0, ..., n} with the phantom index 0 fixed, so array position q holds
// 1-indexed element q+1. Every (k)-th element (1-indexed positions k, 2k,
// ...) gathers, in order, to the front; the remaining elements gather into
// k-1 residue-class decks. n+1 must be a multiple of k. The digit-reversal
// path is used when n+1 is a power of k, the J path otherwise.
func KUnshuffle1[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, k int) {
	dom := n + 1
	checkDeck(dom, k)
	if k == 1 || dom <= k {
		return
	}
	ku := uint64(k)
	if d, ok := bits.PerfectKTreeExp(ku, n); ok {
		// domain k^d: right digit rotation via Ξ₁.
		if d < 2 {
			return
		}
		ApplyInvolution1[T](r, v, lo, n, costRev(ku, d), RevKMap{K: ku, B: d})
		ApplyInvolution1[T](r, v, lo, n, costRev(ku, d-1), RevKMap{K: ku, B: d - 1})
		return
	}
	m := uint64(dom - 1)
	cost := costJ(dom)
	ApplyInvolution1[T](r, v, lo, n, cost, JMap{R: ku, M: m})
	ApplyInvolution1[T](r, v, lo, n, cost, JMap{R: 1, M: m})
}

// KShuffle1 is the inverse of KUnshuffle1: the k-way perfect shuffle with
// simulated 1-indexing on v[lo : lo+n), n+1 a multiple of k.
func KShuffle1[T any, V vec.Vec[T]](r par.Runner, v V, lo, n, k int) {
	dom := n + 1
	checkDeck(dom, k)
	if k == 1 || dom <= k {
		return
	}
	ku := uint64(k)
	if d, ok := bits.PerfectKTreeExp(ku, n); ok {
		if d < 2 {
			return
		}
		ApplyInvolution1[T](r, v, lo, n, costRev(ku, d-1), RevKMap{K: ku, B: d - 1})
		ApplyInvolution1[T](r, v, lo, n, costRev(ku, d), RevKMap{K: ku, B: d})
		return
	}
	m := uint64(dom - 1)
	cost := costJ(dom)
	ApplyInvolution1[T](r, v, lo, n, cost, JMap{R: 1, M: m})
	ApplyInvolution1[T](r, v, lo, n, cost, JMap{R: ku, M: m})
}

// ApplyInvolution1 applies involution f over the 1-indexed domain
// {0, ..., n} (index 0 phantom and necessarily fixed by f) to the array
// window [lo, lo+n): array slot q corresponds to domain index q+1.
func ApplyInvolution1[T any, F InvMap, V vec.Vec[T]](r par.Runner, v V, lo, n int, cost int, f F) {
	v.BeginRound("involution1", n)
	if r.IsSerial() {
		applyInv1Seq[T](v, r.Lo, lo, 0, n, cost, f)
		return
	}
	r.For(n, func(p, a, b int) {
		applyInv1Seq[T](v, p, lo, a, b, cost, f)
	})
}

func applyInv1Seq[T any, F InvMap, V vec.Vec[T]](v V, p, lo, a, b, cost int, f F) {
	v.AddInstr(p, (b-a)*cost)
	for q := a; q < b; q++ {
		j := int(f.Map(uint64(q + 1)))
		if j > q+1 {
			v.Swap(p, lo+q, lo+j-1)
		}
	}
}

func checkDeck(n, k int) {
	if k < 1 || n < 0 || (k > 0 && n%k != 0) {
		panic(fmt.Sprintf("shuffle: length %d is not a multiple of k=%d", n, k))
	}
}

func checkPow(n, k, d int) {
	if bits.Pow(k, d) != n {
		panic(fmt.Sprintf("shuffle: length %d is not %d^%d", n, k, d))
	}
}
