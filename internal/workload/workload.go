// Package workload generates the inputs of the paper's evaluation:
// sorted arrays of 64-bit keys and uniformly random query batches
// (Section 6.0.1: "queries are randomly sampled from a uniform
// distribution").
package workload

import "math/rand"

// Sorted returns the n sorted keys 1, 3, 5, ..., 2n-1. Odd values make
// every even value a guaranteed miss, which query generators exploit.
func Sorted(n int) []uint64 {
	s := make([]uint64, n)
	Refill(s)
	return s
}

// Refill rewrites s with the sorted key sequence in place, so timing
// loops can reuse one allocation across trials.
func Refill(s []uint64) {
	for i := range s {
		s[i] = uint64(2*i + 1)
	}
}

// Queries returns q uniformly random queries against a key space of n
// sorted odd keys. hitFrac of them (in expectation) are present keys; the
// rest are guaranteed misses (even values in range).
func Queries(q, n int, hitFrac float64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, q)
	for i := range out {
		v := uint64(rng.Intn(n))
		if rng.Float64() < hitFrac {
			out[i] = 2*v + 1 // present
		} else {
			out[i] = 2 * v // absent
		}
	}
	return out
}
