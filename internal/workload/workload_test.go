package workload

import "testing"

func TestSortedShape(t *testing.T) {
	s := Sorted(5)
	want := []uint64{1, 3, 5, 7, 9}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Sorted(5) = %v", s)
		}
	}
}

func TestRefillRestores(t *testing.T) {
	s := Sorted(100)
	s[3], s[50] = 0, 0
	Refill(s)
	for i, v := range s {
		if v != uint64(2*i+1) {
			t.Fatalf("Refill wrong at %d", i)
		}
	}
}

func TestQueriesHitFraction(t *testing.T) {
	n, q := 10000, 50000
	for _, frac := range []float64{0, 0.5, 1} {
		qs := Queries(q, n, frac, 42)
		hits := 0
		for _, x := range qs {
			if x >= uint64(2*n) {
				t.Fatalf("query %d out of range", x)
			}
			if x%2 == 1 {
				hits++
			}
		}
		got := float64(hits) / float64(q)
		if got < frac-0.02 || got > frac+0.02 {
			t.Fatalf("hit fraction %.3f, want ~%.2f", got, frac)
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	a := Queries(100, 1000, 0.5, 7)
	b := Queries(100, 1000, 0.5, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same queries")
		}
	}
}
