package bits

import (
	"testing"
	"testing/quick"
)

func TestRev2Small(t *testing.T) {
	cases := []struct {
		b    int
		x, w uint64
	}{
		{3, 0b100, 0b001}, {3, 0b110, 0b011}, {3, 0b111, 0b111},
		{4, 0b0001, 0b1000}, {0, 5, 5}, {1, 1, 1}, {1, 0, 0},
		{5, 0b10100, 0b00101},
		// high bits untouched
		{3, 0b1000_100, 0b1000_001},
	}
	for _, c := range cases {
		if got := (Hardware{}).Rev2(c.b, c.x); got != c.w {
			t.Errorf("Hardware.Rev2(%d, %b) = %b, want %b", c.b, c.x, got, c.w)
		}
		if got := (Software{}).Rev2(c.b, c.x); got != c.w {
			t.Errorf("Software.Rev2(%d, %b) = %b, want %b", c.b, c.x, got, c.w)
		}
	}
}

// TestRev2Agreement: the hardware and software models compute the same
// function, and it is an involution.
func TestRev2Agreement(t *testing.T) {
	f := func(x uint64, bRaw uint8) bool {
		b := int(bRaw % 65)
		h := (Hardware{}).Rev2(b, x)
		s := (Software{}).Rev2(b, x)
		return h == s && (Hardware{}).Rev2(b, h) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRevKMatchesRev2 for k = 2 the generic digit reversal equals Rev2.
func TestRevKMatchesRev2(t *testing.T) {
	f := func(xRaw uint32, bRaw uint8) bool {
		b := int(bRaw % 33)
		x := uint64(xRaw)
		return RevK(2, b, x) == Rev2(b, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRevKInvolution: reversing b digits twice is the identity, any base.
func TestRevKInvolution(t *testing.T) {
	f := func(xRaw uint32, kRaw, bRaw uint8) bool {
		k := uint64(kRaw%15) + 2
		b := int(bRaw % 12)
		x := uint64(xRaw)
		return RevK(k, b, RevK(k, b, x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRevKExplicit(t *testing.T) {
	// base 3, digits of 5 = 12_3, reverse 2 digits -> 21_3 = 7.
	if got := RevK(3, 2, 5); got != 7 {
		t.Errorf("RevK(3,2,5) = %d, want 7", got)
	}
	// base 10: reverse 3 digits of 12345 -> 12 543.
	if got := RevK(10, 3, 12345); got != 12543 {
		t.Errorf("RevK(10,3,12345) = %d, want 12543", got)
	}
}

func TestRevBelowMSB(t *testing.T) {
	cases := []struct{ x, w uint64 }{
		{0, 0}, {1, 1}, {2, 2}, {3, 3},
		{0b100, 0b100}, {0b110, 0b101}, {0b1011, 0b1110},
	}
	for _, c := range cases {
		if got := RevBelowMSB(Hardware{}, c.x); got != c.w {
			t.Errorf("RevBelowMSB(%b) = %b, want %b", c.x, got, c.w)
		}
	}
	f := func(x uint64) bool {
		y := RevBelowMSB(Software{}, x)
		return RevBelowMSB(Software{}, y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowAndLogs(t *testing.T) {
	if PowU(3, 4) != 81 || Pow(2, 10) != 1024 || PowU(7, 0) != 1 {
		t.Fatal("PowU/Pow wrong")
	}
	if Log2Floor(1) != 0 || Log2Floor(2) != 1 || Log2Floor(3) != 1 || Log2Floor(1024) != 10 {
		t.Fatal("Log2Floor wrong")
	}
	if Levels(1) != 1 || Levels(3) != 2 || Levels(4) != 3 || Levels(7) != 3 {
		t.Fatal("Levels wrong")
	}
	if LogKFloor(3, 1) != 0 || LogKFloor(3, 26) != 2 || LogKFloor(3, 27) != 3 {
		t.Fatal("LogKFloor wrong")
	}
}

func TestPerfectKTreeExp(t *testing.T) {
	if d, ok := PerfectKTreeExp(3, 26); !ok || d != 3 {
		t.Fatalf("26 = 3^3-1: got d=%d ok=%v", d, ok)
	}
	if d, ok := PerfectKTreeExp(2, 7); !ok || d != 3 {
		t.Fatalf("7 = 2^3-1: got d=%d ok=%v", d, ok)
	}
	if _, ok := PerfectKTreeExp(3, 25); ok {
		t.Fatal("25 is not 3^d - 1")
	}
	if _, ok := PerfectKTreeExp(2, 0); ok {
		t.Fatal("0 should not be perfect")
	}
}

func TestIsPerfectBST(t *testing.T) {
	for _, n := range []int{1, 3, 7, 15, 1<<20 - 1} {
		if !IsPerfectBST(n) {
			t.Errorf("IsPerfectBST(%d) = false", n)
		}
	}
	for _, n := range []int{0, 2, 4, 8, 1 << 20} {
		if IsPerfectBST(n) {
			t.Errorf("IsPerfectBST(%d) = true", n)
		}
	}
}

func BenchmarkRev2Hardware(b *testing.B) {
	var r Hardware
	var s uint64
	for i := 0; i < b.N; i++ {
		s += r.Rev2(29, uint64(i))
	}
	sinkU64 = s
}

func BenchmarkRev2Software(b *testing.B) {
	var r Software
	var s uint64
	for i := 0; i < b.N; i++ {
		s += r.Rev2(29, uint64(i))
	}
	sinkU64 = s
}

var sinkU64 uint64
