// Package bits provides the digit-manipulation kit used by the involution
// based permutation algorithms: reversal of the b least significant digits
// of an index in an arbitrary base k (the rev_k(b, i) operation of the
// paper), plus small integer helpers (powers, logarithms, perfect-tree
// size arithmetic) shared by every layout.
//
// The cost of base-2 digit reversal, T_REV2(N), is a first-class parameter
// of the paper's analysis: some architectures (e.g. the NVidia K40 GPU)
// reverse bits in hardware in O(1) time while a software loop needs
// O(log N). The Reverser implementations Hardware and Software model the
// two regimes; algorithms are generic over the choice so benchmarks can
// expose the T_REV2 term of Table 1.1.
package bits

import mathbits "math/bits"

// Reverser reverses the b least significant binary digits of x, leaving any
// higher bits untouched. Implementations must be pure and safe for
// concurrent use.
type Reverser interface {
	// Rev2 reverses the b least significant bits of x.
	Rev2(b int, x uint64) uint64
	// Cost returns the model cost (instructions) of one b-bit reversal,
	// the T_REV2 parameter of the paper's analysis.
	Cost(b int) int
}

// Hardware reverses bits using the single-instruction primitive exposed by
// math/bits (compiled to RBIT/equivalent where available). It models the
// O(1) hardware bit-reversal of the paper's GPU platform.
type Hardware struct{}

// Rev2 reverses the b least significant bits of x in O(1) time.
func (Hardware) Rev2(b int, x uint64) uint64 {
	if b <= 0 {
		return x
	}
	lo := x & (1<<uint(b) - 1)
	return x&^(1<<uint(b)-1) | mathbits.Reverse64(lo)>>(64-uint(b))
}

// Cost of a hardware reversal is constant.
func (Hardware) Cost(int) int { return 2 }

// Software reverses bits with an explicit per-bit loop, modelling the
// O(log N) software implementation on CPUs without a bit-reversal
// instruction (the paper's CPU platform).
type Software struct{}

// Rev2 reverses the b least significant bits of x one bit at a time.
func (Software) Rev2(b int, x uint64) uint64 {
	if b <= 0 {
		return x
	}
	lo := x & (1<<uint(b) - 1)
	var r uint64
	for i := 0; i < b; i++ {
		r = r<<1 | lo&1
		lo >>= 1
	}
	return x&^(1<<uint(b)-1) | r
}

// Cost of a software reversal is linear in the bit count.
func (Software) Cost(b int) int { return 2 * b }

// Rev2 reverses the b least significant bits of x using the fast path. It
// is the default used when the caller does not care about the T_REV2 cost
// model.
func Rev2(b int, x uint64) uint64 {
	return Hardware{}.Rev2(b, x)
}

// RevK reverses the b least significant base-k digits of x, leaving higher
// digits untouched. For k == 2 prefer a Reverser. Runs in O(b) time.
func RevK(k uint64, b int, x uint64) uint64 {
	if b <= 0 || k < 2 {
		return x
	}
	kb := PowU(k, b)
	hi, lo := x/kb, x%kb
	var r uint64
	for i := 0; i < b; i++ {
		r = r*k + lo%k
		lo /= k
	}
	return hi*kb + r
}

// RevBelowMSB keeps the most significant set bit of x in place and reverses
// all bits below it. It is the second involution of the BST permutation
// (Fich, Munro, Poblete): pi(i) = RevBelowMSB(Rev2(d, i)). RevBelowMSB(0)
// is 0. The operation is an involution.
func RevBelowMSB(r Reverser, x uint64) uint64 {
	if x == 0 {
		return 0
	}
	b := mathbits.Len64(x) - 1
	return 1<<uint(b) | r.Rev2(b, x&(1<<uint(b)-1))
}

// PowU returns k**e for unsigned base and exponent. It panics on overflow
// because every caller works with array indices that fit in uint64.
func PowU(k uint64, e int) uint64 {
	r := uint64(1)
	for i := 0; i < e; i++ {
		nr := r * k
		if k != 0 && nr/k != r {
			panic("bits: PowU overflow")
		}
		r = nr
	}
	return r
}

// Pow returns k**e for non-negative int arguments.
func Pow(k, e int) int {
	return int(PowU(uint64(k), e))
}

// Log2Floor returns floor(log2(n)) for n >= 1.
func Log2Floor(n int) int {
	if n < 1 {
		panic("bits: Log2Floor of non-positive value")
	}
	return mathbits.Len64(uint64(n)) - 1
}

// Levels returns the number of levels of a complete binary tree with n >= 1
// nodes, i.e. floor(log2(n)) + 1.
func Levels(n int) int {
	return Log2Floor(n) + 1
}

// LogKFloor returns floor(log_k(n)) for n >= 1 and k >= 2.
func LogKFloor(k uint64, n uint64) int {
	if n < 1 || k < 2 {
		panic("bits: LogKFloor domain error")
	}
	e := 0
	for v := n; v >= k; v /= k {
		e++
	}
	return e
}

// IsPerfectBST reports whether n == 2^d - 1 for some d >= 1, i.e. whether a
// binary search tree with n nodes is perfect.
func IsPerfectBST(n int) bool {
	return n >= 1 && (uint64(n)+1)&uint64(n) == 0
}

// PerfectKTreeExp returns (d, true) when n == k^d - 1 for some d >= 1: the
// number of element levels of a perfect B-tree with branching factor k and
// n keys. It returns (0, false) otherwise.
func PerfectKTreeExp(k uint64, n int) (int, bool) {
	if n < 1 || k < 2 {
		return 0, false
	}
	v := uint64(n) + 1
	d := 0
	for v > 1 {
		if v%k != 0 {
			return 0, false
		}
		v /= k
		d++
	}
	return d, true
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}
