// Package implicitlayout reproduces "Beyond Binary Search: Parallel
// In-Place Construction of Implicit Search Tree Layouts" (Berney, 2018):
// parallel in-place algorithms that permute a sorted array into the
// level-order BST (Eytzinger), level-order B-tree, and van Emde Boas
// memory layouts, together with the query engines, cost-model simulators
// (PEM I/O, GPU), and the benchmark harness that regenerates every table
// and figure of the paper's evaluation.
//
// The repository treats layouts as indexes over key–value records, not
// bare key sets: perm.PermuteWith moves a value slice by the exact same
// permutation as its keys, search iterates records in sorted order
// directly over any layout, and store serves key–value records — as
// immutable sharded snapshots (Store) and as a writable LSM-style store
// (DB) whose flushes and compactions are the paper's parallel
// construction run again and again.
//
// Public API:
//
//   - layout: layout definitions, index arithmetic (including in-order
//     rank -> array position), reference builders;
//   - perm:   the in-place parallel permutations (the paper's
//     contribution), keys-only (Permute/Unpermute) and payload-carrying
//     (PermuteWith/UnpermuteWith);
//   - search: queries on every layout — exact, predecessor, successor,
//     rank access, and ordered Range/Scan iteration without unpermuting;
//   - store:  the serving layer. Store is the static sharded key–value
//     snapshot — parallel build pipeline (stable sort, duplicate-key
//     resolution, range partition, concurrent payload-carrying permute)
//     plus a concurrent, batched query engine with value-returning
//     Get/GetBatch and cross-shard ordered Range/Scan streaming (Set is
//     the keys-only alias). DB is the writable store on top: memtable
//     Put/Delete with tombstones, background flush into leveled
//     implicit-layout runs, tiered compaction, and atomic-snapshot reads
//     that never block on writers;
//   - bench:  experiment runners for the paper's tables and figures and
//     the store serving benchmarks, read-only and mixed read/write
//     (text, CSV, and JSON output).
//
// See README.md for a tour and quickstart, and ARCHITECTURE.md for the
// layer diagram, the build and Put→flush→compact data flows, and the
// snapshot/epoch semantics.
package implicitlayout
