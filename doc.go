// Package implicitlayout reproduces "Beyond Binary Search: Parallel
// In-Place Construction of Implicit Search Tree Layouts" (Berney, 2018):
// parallel in-place algorithms that permute a sorted array into the
// level-order BST (Eytzinger), level-order B-tree, and van Emde Boas
// memory layouts, together with the query engines, cost-model simulators
// (PEM I/O, GPU), and the benchmark harness that regenerates every table
// and figure of the paper's evaluation.
//
// Public API:
//
//   - layout: layout definitions, index arithmetic, reference builders;
//   - perm:   the in-place parallel permutations (the paper's contribution);
//   - search: queries (exact and predecessor) on every layout;
//   - store:  sharded static index store — parallel build pipeline (sort,
//     range partition, concurrent permute) plus a concurrent, batched
//     query engine with snapshot semantics;
//   - bench:  experiment runners for the paper's tables and figures and
//     the store serving benchmarks.
//
// See README.md for a tour and quickstart.
package implicitlayout
