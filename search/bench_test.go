package search

import (
	"fmt"
	"testing"

	"implicitlayout/layout"
)

// benchArr builds one layout and a query stream for the micro-benchmarks.
func benchArr(b *testing.B, kind layout.Kind, n, bw int) ([]uint64, []uint64) {
	b.Helper()
	sorted := oddKeys(n)
	arr := sorted
	if kind != layout.Sorted {
		arr = layout.Build(kind, sorted, bw)
	}
	qs := make([]uint64, 1024)
	for i := range qs {
		qs[i] = uint64(2*(i*2654435761%n) + 1)
	}
	return arr, qs
}

var benchSink int

func benchQueries(b *testing.B, find func(q uint64) int, qs []uint64) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += find(qs[i&1023])
	}
}

func BenchmarkSearch(b *testing.B) {
	for _, lg := range []int{16, 20, 24} {
		n := 1 << uint(lg)
		b.Run(fmt.Sprintf("binary/n=2^%d", lg), func(b *testing.B) {
			arr, qs := benchArr(b, layout.Sorted, n, 8)
			benchQueries(b, func(q uint64) int { return Binary(arr, q) }, qs)
		})
		b.Run(fmt.Sprintf("bst/n=2^%d", lg), func(b *testing.B) {
			arr, qs := benchArr(b, layout.BST, n, 8)
			benchQueries(b, func(q uint64) int { return BST(arr, q) }, qs)
		})
		b.Run(fmt.Sprintf("bst-branchless/n=2^%d", lg), func(b *testing.B) {
			arr, qs := benchArr(b, layout.BST, n, 8)
			benchQueries(b, func(q uint64) int { return BSTBranchless(arr, q) }, qs)
		})
		b.Run(fmt.Sprintf("bst-prefetch/n=2^%d", lg), func(b *testing.B) {
			arr, qs := benchArr(b, layout.BST, n, 8)
			benchQueries(b, func(q uint64) int { return BSTPrefetch(arr, q) }, qs)
		})
		b.Run(fmt.Sprintf("btree/n=2^%d", lg), func(b *testing.B) {
			arr, qs := benchArr(b, layout.BTree, n, 8)
			benchQueries(b, func(q uint64) int { return BTree(arr, 8, q) }, qs)
		})
		b.Run(fmt.Sprintf("veb/n=2^%d", lg), func(b *testing.B) {
			arr, qs := benchArr(b, layout.VEB, n, 8)
			benchQueries(b, func(q uint64) int { return VEB(arr, q) }, qs)
		})
	}
}

func BenchmarkPredecessor(b *testing.B) {
	n := 1 << 20
	for _, kind := range []layout.Kind{layout.Sorted, layout.BST, layout.BTree, layout.VEB, layout.Hier} {
		b.Run(kind.String(), func(b *testing.B) {
			arr, qs := benchArr(b, kind, n, 8)
			ix := NewIndex(arr, kind, 8)
			benchQueries(b, ix.Predecessor, qs)
		})
	}
}
