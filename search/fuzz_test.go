package search

import (
	"testing"

	"implicitlayout/layout"
)

// FuzzSearchConsistency checks, from fuzzed sizes and queries, that every
// layout's Find/Predecessor/Successor agree with binary search on the
// sorted array.
func FuzzSearchConsistency(f *testing.F) {
	f.Add(uint16(1), uint32(0), uint8(1))
	f.Add(uint16(100), uint32(55), uint8(4))
	f.Add(uint16(4095), uint32(9999), uint8(8))
	f.Add(uint16(513), uint32(1), uint8(31))
	f.Fuzz(func(t *testing.T, nRaw uint16, qRaw uint32, bRaw uint8) {
		n := int(nRaw)%4000 + 1
		b := int(bRaw)%32 + 1
		q := uint64(qRaw) % uint64(2*n+4)
		sorted := oddKeys(n)
		wantFind := Binary(sorted, q) >= 0
		wantPred := PredecessorBinary(sorted, q)
		wantSucc := successorBinary(sorted, q)
		for _, k := range layout.Kinds() {
			arr := layout.Build(k, sorted, b)
			ix := NewIndex(arr, k, b)
			if got := ix.Find(q); (got >= 0) != wantFind || (got >= 0 && arr[got] != q) {
				t.Fatalf("%v n=%d b=%d: Find(%d) inconsistent", k, n, b, q)
			}
			p := ix.Predecessor(q)
			switch {
			case wantPred < 0 && p >= 0, wantPred >= 0 && (p < 0 || arr[p] != sorted[wantPred]):
				t.Fatalf("%v n=%d b=%d: Predecessor(%d) inconsistent", k, n, b, q)
			}
			s := ix.Successor(q)
			switch {
			case wantSucc < 0 && s >= 0, wantSucc >= 0 && (s < 0 || arr[s] != sorted[wantSucc]):
				t.Fatalf("%v n=%d b=%d: Successor(%d) inconsistent", k, n, b, q)
			}
		}
	})
}
