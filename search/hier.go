package search

import (
	"cmp"
	"runtime"

	"implicitlayout/layout"
)

// This file holds the query kernels for the two-level hierarchical
// (FAST-style) layout of layout/hier.go. A descent works at two miss
// granularities: the outer loop walks page-sized super-blocks — one
// page fault per level when the array is a cold file mapping — and
// within each page an inner loop walks cacheline-sized B-tree blocks.
// The outer child index is recovered from the within-page successor by
// layout.BTreeRank, so no rank table is materialized anywhere.

// hierPageSucc returns the array position of the smallest key >= x
// within the page block [pageStart, pageStart+pk), or -1 if every page
// key is below x. The page is laid out as a level-order B-tree with b
// keys per block, so the scan is a standard multi-way descent over the
// page's cache lines.
func hierPageSucc[T cmp.Ordered](a []T, pageStart, pk, b int, x T) int {
	node, at := 0, -1
	for {
		start := node * b
		if start >= pk {
			return at
		}
		end := min(start+b, pk)
		c := start
		for c < end && a[pageStart+c] < x {
			c++
		}
		if c < end {
			at = pageStart + c
		}
		node = node*(b+1) + 1 + (c - start)
	}
}

// hierPagePred returns the array position of the largest key <= x
// within the page block [pageStart, pageStart+pk), or -1 if every page
// key exceeds x.
func hierPagePred[T cmp.Ordered](a []T, pageStart, pk, b int, x T) int {
	node, at := 0, -1
	for {
		start := node * b
		if start >= pk {
			return at
		}
		end := min(start+b, pk)
		c := start
		for c < end && a[pageStart+c] <= x {
			c++
		}
		if c > start {
			at = pageStart + c - 1
		}
		node = node*(b+1) + 1 + (c - start)
	}
}

// Hier searches the two-level hierarchical layout (cacheline node
// capacity b, page capacity layout.HierPageKeys(b)) and returns the
// position of x, or -1. Each outer step resolves one page: the page's
// inner B-tree is descended for the smallest key >= x, whose in-page
// rank — recovered arithmetically by layout.BTreeRank — is exactly the
// outer child to descend into when x is absent from the page.
func Hier[T cmp.Ordered](a []T, b int, x T) int {
	n := len(a)
	if n == 0 {
		return -1
	}
	p := layout.HierPageKeys(b)
	node := 0
	for {
		pageStart := node * p
		if pageStart >= n {
			return -1
		}
		pk := min(p, n-pageStart)
		at := hierPageSucc(a, pageStart, pk, b, x)
		c := pk
		if at >= 0 {
			if a[at] == x {
				return at
			}
			c = layout.BTreeRank(at-pageStart, pk, b)
		}
		node = node*(p+1) + 1 + c
	}
}

// PredecessorHier returns the position (in the hierarchical layout with
// cacheline capacity b) of the largest key <= x, or -1. Deeper pages on
// the descent path hold keys between the current candidate and its
// in-order successor, so overwriting the candidate per page keeps the
// largest.
func PredecessorHier[T cmp.Ordered](a []T, b int, x T) int {
	n := len(a)
	p := layout.HierPageKeys(b)
	node, cand := 0, -1
	for {
		pageStart := node * p
		if pageStart >= n {
			return cand
		}
		pk := min(p, n-pageStart)
		at := hierPagePred(a, pageStart, pk, b, x)
		c := 0
		if at >= 0 {
			cand = at
			c = layout.BTreeRank(at-pageStart, pk, b) + 1
		}
		node = node*(p+1) + 1 + c
	}
}

// successorHier returns the position of the smallest key >= x in the
// hierarchical layout, or -1 if every key is below x.
func successorHier[T cmp.Ordered](a []T, b int, x T) int {
	n := len(a)
	p := layout.HierPageKeys(b)
	node, cand := 0, -1
	for {
		pageStart := node * p
		if pageStart >= n {
			return cand
		}
		pk := min(p, n-pageStart)
		at := hierPageSucc(a, pageStart, pk, b, x)
		c := pk
		if at >= 0 {
			cand = at
			c = layout.BTreeRank(at-pageStart, pk, b)
		}
		node = node*(p+1) + 1 + c
	}
}

// scanHier walks the hierarchical layout under outer page node pageNode
// in order: the page's inner B-tree is walked in order with a running
// in-page rank t, and the outer child t is visited immediately before
// the rank-t page key — the interleaving that makes the global visit
// sequence ascending.
func (ix *Index[T]) scanHier(pageNode int, st *yieldState[T]) {
	n, b := len(ix.data), ix.b
	p := layout.HierPageKeys(b)
	pageStart := pageNode * p
	if pageStart >= n || st.done {
		return
	}
	pk := min(p, n-pageStart)
	t := 0 // in-page rank of the next key the inner walk will visit
	var walk func(node int)
	walk = func(node int) {
		start := node * b
		if start >= pk || st.done {
			return
		}
		end := min(start+b, pk)
		for w := start; w < end; w++ {
			walk(node*(b+1) + 1 + (w - start))
			if st.done {
				return
			}
			ix.scanHier(pageNode*(p+1)+1+t, st)
			if st.done {
				return
			}
			if !st.yield(pageStart+w, ix.data[pageStart+w]) {
				st.done = true
				return
			}
			t++
		}
		walk(node*(b+1) + 1 + (end - start))
	}
	walk(0)
	if st.done {
		return
	}
	ix.scanHier(pageNode*(p+1)+1+pk, st) // keys above every page key
}

// rangeHier is scanHier with [lo, hi] pruning. Pruning breaks the
// running rank counter, so the in-page rank of a visited key — the
// outer child index before it — is recovered arithmetically with
// layout.BTreeRank instead.
func (ix *Index[T]) rangeHier(pageNode int, lo, hi T, st *yieldState[T]) {
	n, b := len(ix.data), ix.b
	p := layout.HierPageKeys(b)
	pageStart := pageNode * p
	if pageStart >= n || st.done {
		return
	}
	pk := min(p, n-pageStart)
	over := false // a page key above hi was reached: nothing later qualifies
	var walk func(node int)
	walk = func(node int) {
		start := node * b
		if start >= pk || st.done || over {
			return
		}
		end := min(start+b, pk)
		for w := start; w < end; w++ {
			key := ix.data[pageStart+w]
			if key > lo {
				walk(node*(b+1) + 1 + (w - start))
				if st.done || over {
					return
				}
				ix.rangeHier(pageNode*(p+1)+1+layout.BTreeRank(w, pk, b), lo, hi, st)
				if st.done {
					return
				}
			}
			if key >= lo && key <= hi {
				if !st.yield(pageStart+w, key) {
					st.done = true
					return
				}
			}
			if key > hi {
				over = true
				return
			}
		}
		walk(node*(b+1) + 1 + (end - start))
	}
	walk(0)
	if st.done || over {
		return
	}
	// Keys above every page key live in the last outer child.
	if pk > 0 && ix.data[hierPagePredAll(ix.data, pageStart, pk, b)] < hi {
		ix.rangeHier(pageNode*(p+1)+1+pk, lo, hi, st)
	}
}

// hierPagePredAll returns the position of the largest key of the page
// block — the rightmost in-order key, found by descending last children.
func hierPagePredAll[T cmp.Ordered](a []T, pageStart, pk, b int) int {
	node, at := 0, pageStart
	for {
		start := node * b
		if start >= pk {
			return at
		}
		end := min(start+b, pk)
		at = pageStart + end - 1
		node = node*(b+1) + 1 + (end - start)
	}
}

// hierMach is one in-flight hierarchical search: the query, the outer
// page node about to be resolved, and the accumulated answer. One ring
// rotation resolves one whole page — a handful of cacheline-resident
// block scans — and issues the first line of the chosen child page
// before rotating away, so a cold page's fetch overlaps the other
// machines' in-page work.
type hierMach[T cmp.Ordered] struct {
	q    T
	node int
	res  int
	done bool
}

// HierBatch answers many independent queries against the hierarchical
// layout with a ring of interleaved page-granular descents. Results
// match Hier per query; pos may be nil.
func HierBatch[T cmp.Ordered](a []T, b int, queries []T, pos []int) int {
	return hierBatchRing(a, b, queries, pos, batchRing)
}

func hierBatchRing[T cmp.Ordered](a []T, b int, queries []T, pos []int, ring int) (hits int) {
	n := len(a)
	if len(queries) == 0 {
		return 0
	}
	if n == 0 || b < 1 {
		for i := range queries {
			if pos != nil {
				pos[i] = -1
			}
		}
		return 0
	}
	if ring < 1 {
		ring = 1
	}
	p := layout.HierPageKeys(b)
	ms := make([]hierMach[T], ring)
	// warm sinks the early loads of chosen child pages: their values are
	// consumed only on the next rotation's in-page scan, so the running
	// maximum keeps the loads observable (see BSTPrefetch).
	var warm T
	for base := 0; base < len(queries); base += ring {
		g := min(ring, len(queries)-base)
		for s := 0; s < g; s++ {
			ms[s] = hierMach[T]{q: queries[base+s], res: -1}
		}
		// A complete outer tree's descents differ by at most one page
		// level, so the done flag costs one predictable branch per
		// machine for the last rotation or two.
		for live := g; live > 0; {
			for s := 0; s < g; s++ {
				m := &ms[s]
				if m.done {
					continue
				}
				pageStart := m.node * p
				if pageStart >= n {
					m.done = true
					live--
					continue
				}
				pk := min(p, n-pageStart)
				at := hierPageSucc(a, pageStart, pk, b, m.q)
				c := pk
				if at >= 0 {
					if a[at] == m.q {
						m.res = at
						m.done = true
						live--
						continue
					}
					c = layout.BTreeRank(at-pageStart, pk, b)
				}
				m.node = m.node*(p+1) + 1 + c
				if j := m.node * p; j < n {
					if warm < a[j] { // pull the child page's first line
						warm = a[j]
					}
				}
			}
		}
		for s := 0; s < g; s++ {
			m := &ms[s]
			if m.res >= 0 {
				hits++
			}
			if pos != nil {
				pos[base+s] = m.res
			}
		}
	}
	runtime.KeepAlive(warm)
	return hits
}
