package search

import (
	"cmp"
	"fmt"

	"implicitlayout/layout"
	"implicitlayout/perm"
)

// Index bundles a laid-out array with the query routine matching its
// layout, giving the layouts a common interface for examples, benchmarks
// and applications.
type Index[T cmp.Ordered] struct {
	data []T
	kind layout.Kind
	b    int
}

// NewIndex wraps data, already permuted into layout k (with node capacity
// b for B-tree layouts), in a queryable index. It does not copy data.
// For B-tree layouts a b below 1 defaults to perm.DefaultB, matching the
// capacity perm.Permute uses when none is given — pass b explicitly
// whenever the layout was built with perm.WithB: b must equal the build
// capacity or every query silently descends the wrong tree.
func NewIndex[T cmp.Ordered](data []T, k layout.Kind, b int) *Index[T] {
	if (k == layout.BTree || k == layout.Hier) && b < 1 {
		b = perm.DefaultB
	}
	return &Index[T]{data: data, kind: k, b: b}
}

// Len returns the number of keys.
func (ix *Index[T]) Len() int { return len(ix.data) }

// Data returns the laid-out array itself — not a copy. Callers must
// treat it as read-only: it is shared with every other user of the
// index, and for a store serving a mapped segment it is a read-only
// file mapping, where a write does not corrupt data but faults.
func (ix *Index[T]) Data() []T { return ix.data }

// Kind returns the layout the index queries.
func (ix *Index[T]) Kind() layout.Kind { return ix.kind }

// B returns the B-tree node capacity the index queries with (0 for
// non-B-tree layouts built with no capacity).
func (ix *Index[T]) B() int { return ix.b }

// At returns the key stored at array position pos, as returned by Find or
// Predecessor.
func (ix *Index[T]) At(pos int) T { return ix.data[pos] }

// PosOfRank returns the array position of the key with in-order rank
// `rank` (0-based): the forward permutation of the paper, computed in
// O(log N) index arithmetic without any rank table. It panics if rank is
// outside [0, Len()).
func (ix *Index[T]) PosOfRank(rank int) int {
	return layout.PosOf(ix.kind, rank, len(ix.data), ix.b)
}

// AtRank returns the rank-th smallest key (0-based). Together with
// PosOfRank it gives layouts positional access in sorted order — the
// rank machinery behind ordered iteration — at O(log N) per call; use
// Scan or Range to stream many keys.
func (ix *Index[T]) AtRank(rank int) T { return ix.data[ix.PosOfRank(rank)] }

// bstPrefetchMinLen is the key count from which Find routes BST-layout
// queries through BSTPrefetch: below it the tree's hot levels fit in L2
// and the extra warm-up loads are pure overhead; above it they hide
// memory latency (Khuong–Morin report ~2x on large arrays).
const bstPrefetchMinLen = 1 << 15

// Find returns the array position of x, or -1 if absent.
func (ix *Index[T]) Find(x T) int {
	switch ix.kind {
	case layout.Sorted:
		return Binary(ix.data, x)
	case layout.BST:
		if len(ix.data) >= bstPrefetchMinLen {
			return BSTPrefetch(ix.data, x)
		}
		return BST(ix.data, x)
	case layout.BTree:
		return BTree(ix.data, ix.b, x)
	case layout.VEB:
		return VEB(ix.data, x)
	case layout.Hier:
		return Hier(ix.data, ix.b, x)
	}
	panic(fmt.Sprintf("search: unknown layout %v", ix.kind))
}

// Contains reports whether x is present.
func (ix *Index[T]) Contains(x T) bool { return ix.Find(x) >= 0 }

// FindBatch answers all queries with p parallel workers (values below 1
// fall back to serial) and returns the number of hits. Queries are
// independent — the embarrassingly parallel workload of the paper's
// evaluation, where each GPU thread owns one query. Each worker's chunk
// dispatches to the layout's interleaved ring kernel above
// InterleaveMinBatch queries (see FindBatchInto) and to one-at-a-time
// descents below it.
func (ix *Index[T]) FindBatch(queries []T, p int) (hits int) {
	return ix.findBatch(queries, nil, p)
}
