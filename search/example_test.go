package search_test

import (
	"fmt"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

// An Index bundles a permuted array with its query routines.
func ExampleIndex() {
	keys := []uint64{10, 20, 30, 40, 50, 60, 70}
	perm.Permute(keys, layout.BTree, perm.CycleLeader, perm.WithB(2))
	ix := search.NewIndex(keys, layout.BTree, 2)

	fmt.Println("contains 30:", ix.Contains(30))
	fmt.Println("contains 35:", ix.Contains(35))
	if pos := ix.Predecessor(35); pos >= 0 {
		fmt.Println("predecessor of 35:", keys[pos])
	}
	// Output:
	// contains 30: true
	// contains 35: false
	// predecessor of 35: 30
}

// Range enumerates keys in sorted order even though the array is stored
// in a tree layout.
func ExampleIndex_Range() {
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	perm.Permute(keys, layout.VEB, perm.CycleLeader)
	ix := search.NewIndex(keys, layout.VEB, 0)

	var got []uint64
	ix.Range(5, 9, func(pos int, key uint64) bool {
		got = append(got, key)
		return true
	})
	fmt.Println(got)
	// Output:
	// [5 6 7 8 9]
}
