package search

import (
	"math/rand"
	"testing"

	"implicitlayout/layout"
	"implicitlayout/perm"
)

// TestNewIndexDefaultB: a B-tree index built with b < 1 defaults to
// perm.DefaultB instead of panicking, and queries a layout permuted with
// the same default correctly.
func TestNewIndexDefaultB(t *testing.T) {
	const n = 1000
	sorted := oddKeys(n)
	arr := layout.Build(layout.BTree, sorted, perm.DefaultB)
	for _, b := range []int{0, -1} {
		ix := NewIndex(arr, layout.BTree, b)
		if ix.B() != perm.DefaultB {
			t.Fatalf("NewIndex(b=%d).B() = %d, want %d", b, ix.B(), perm.DefaultB)
		}
		for i := 0; i < n; i++ {
			x := uint64(2*i + 1)
			if pos := ix.Find(x); pos < 0 || ix.At(pos) != x {
				t.Fatalf("b=%d: Find(%d) = %d", b, x, pos)
			}
			if ix.Find(x-1) != -1 {
				t.Fatalf("b=%d: found absent %d", b, x-1)
			}
		}
	}
	// Non-B-tree layouts keep b untouched (0 stays 0).
	if ix := NewIndex(sorted, layout.Sorted, 0); ix.B() != 0 {
		t.Fatalf("Sorted index B() = %d, want 0", ix.B())
	}
}

// TestFindBatchParallelMatchesSerial: for every layout, the parallel
// FindBatch path (p > 1, len(queries) >= 2p) returns exactly the serial
// hit count. Run under -race this also exercises the worker partitioning
// for data races.
func TestFindBatchParallelMatchesSerial(t *testing.T) {
	const (
		n = 1 << 13
		b = 8
	)
	sorted := oddKeys(n)
	rng := rand.New(rand.NewSource(23))
	queries := make([]uint64, 6*n+5) // odd length so chunks are ragged
	for i := range queries {
		queries[i] = uint64(rng.Intn(2*n + 2))
	}
	kinds := append([]layout.Kind{layout.Sorted}, layout.Kinds()...)
	for _, kind := range kinds {
		ix := NewIndex(layout.Build(kind, sorted, b), kind, b)
		serial := ix.FindBatch(queries, 1)
		for _, p := range []int{2, 3, 8, 16} {
			if len(queries) < 2*p {
				t.Fatalf("p=%d: batch too small to force the parallel path", p)
			}
			if got := ix.FindBatch(queries, p); got != serial {
				t.Fatalf("%v p=%d: FindBatch = %d, serial = %d", kind, p, got, serial)
			}
		}
	}
}
