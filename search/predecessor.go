package search

import (
	"cmp"

	"implicitlayout/layout"
)

// PredecessorBinary returns the position of the largest key <= x in the
// sorted array, or -1 if every key exceeds x.
func PredecessorBinary[T cmp.Ordered](a []T, x T) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// PredecessorBST returns the position (in the BST layout) of the largest
// key <= x, or -1. The descent tracks the last node whose key did not
// exceed x.
func PredecessorBST[T cmp.Ordered](a []T, x T) int {
	n := len(a)
	i, cand := 0, -1
	for i < n {
		if a[i] <= x {
			cand = i
			i = 2*i + 2
		} else {
			i = 2*i + 1
		}
	}
	return cand
}

// PredecessorBTree returns the position (in the B-tree layout with b keys
// per node) of the largest key <= x, or -1.
func PredecessorBTree[T cmp.Ordered](a []T, b int, x T) int {
	n := len(a)
	node, cand := 0, -1
	for {
		start := node * b
		if start >= n {
			return cand
		}
		end := start + b
		if end > n {
			end = n
		}
		c := start
		for c < end && a[c] <= x {
			c++
		}
		if c > start {
			cand = c - 1
		}
		node = node*(b+1) + 1 + (c - start)
	}
}

// PredecessorVEB returns the position (in the vEB layout) of the largest
// key <= x, or -1.
func PredecessorVEB[T cmp.Ordered](a []T, x T) int {
	n := len(a)
	if n == 0 {
		return -1
	}
	cur := layout.NewVEBNav(n).Cursor()
	cand := -1
	for {
		pos := cur.Pos()
		dir := 0
		if a[pos] <= x {
			cand = pos
			dir = 1
		}
		if !cur.Descend(dir) {
			return cand
		}
	}
}

// Predecessor returns the position of the largest key <= x under the
// index's layout, or -1 if x precedes every key.
func (ix *Index[T]) Predecessor(x T) int {
	switch ix.kind {
	case layout.Sorted:
		return PredecessorBinary(ix.data, x)
	case layout.BST:
		return PredecessorBST(ix.data, x)
	case layout.BTree:
		return PredecessorBTree(ix.data, ix.b, x)
	case layout.VEB:
		return PredecessorVEB(ix.data, x)
	case layout.Hier:
		return PredecessorHier(ix.data, ix.b, x)
	}
	return -1
}
