package search

import (
	"math/rand"
	"reflect"
	"testing"

	"implicitlayout/layout"
)

// TestSuccessorAgainstBinary: every layout's successor equals the sorted
// answer by value.
func TestSuccessorAgainstBinary(t *testing.T) {
	const b = 3
	for _, n := range []int{1, 2, 7, 26, 100, 513} {
		sorted := oddKeys(n)
		for kind, arr := range buildAll(n, b) {
			ix := NewIndex(arr, kind, b)
			for q := uint64(0); q <= uint64(2*n+2); q++ {
				want := successorBinary(sorted, q)
				got := ix.Successor(q)
				switch {
				case want == -1 && got != -1:
					t.Fatalf("%v n=%d q=%d: got %d, want -1", kind, n, q, got)
				case want >= 0 && (got < 0 || arr[got] != sorted[want]):
					t.Fatalf("%v n=%d q=%d: successor mismatch", kind, n, q)
				}
			}
		}
	}
}

// TestRangeEnumeratesInOrder: Range yields exactly the keys of [lo, hi] in
// ascending order on every layout.
func TestRangeEnumeratesInOrder(t *testing.T) {
	const b = 4
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 5, 26, 100, 511, 1000} {
		sorted := oddKeys(n)
		for kind, arr := range buildAll(n, b) {
			ix := NewIndex(arr, kind, b)
			for trial := 0; trial < 20; trial++ {
				lo := uint64(rng.Intn(2*n + 2))
				hi := lo + uint64(rng.Intn(2*n+2))
				var want []uint64
				for _, k := range sorted {
					if k >= lo && k <= hi {
						want = append(want, k)
					}
				}
				var got []uint64
				ix.Range(lo, hi, func(pos int, key uint64) bool {
					if arr[pos] != key {
						t.Fatalf("%v: yielded pos %d does not hold %d", kind, pos, key)
					}
					got = append(got, key)
					return true
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v n=%d [%d,%d]:\n got %v\nwant %v", kind, n, lo, hi, got, want)
				}
			}
		}
	}
}

// TestRangeEarlyStop: yield returning false stops the scan.
func TestRangeEarlyStop(t *testing.T) {
	n := 1000
	sorted := oddKeys(n)
	for kind, arr := range buildAll(n, 4) {
		ix := NewIndex(arr, kind, 4)
		count := 0
		ix.Range(0, uint64(2*n), func(int, uint64) bool {
			count++
			return count < 5
		})
		if count != 5 {
			t.Fatalf("%v: early stop yielded %d keys, want 5", kind, count)
		}
	}
	_ = sorted
}

// TestRangeEmptyInterval: inverted or out-of-range intervals yield nothing.
func TestRangeEmptyInterval(t *testing.T) {
	arr := layout.Build(layout.VEB, oddKeys(100), 0)
	ix := NewIndex(arr, layout.VEB, 0)
	calls := 0
	ix.Range(50, 10, func(int, uint64) bool { calls++; return true })
	ix.Range(1000, 2000, func(int, uint64) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("expected no yields, got %d", calls)
	}
}
