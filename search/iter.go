package search

import (
	"cmp"

	"implicitlayout/layout"
)

// Successor returns the position of the smallest key >= x under the
// index's layout, or -1 if every key is below x.
func (ix *Index[T]) Successor(x T) int {
	switch ix.kind {
	case layout.Sorted:
		return successorBinary(ix.data, x)
	case layout.BST:
		return successorTree(ix.data, x, func(pos int) (int, int) {
			return 2*pos + 1, 2*pos + 2
		}, len(ix.data))
	case layout.BTree:
		return successorBTree(ix.data, ix.b, x)
	case layout.VEB:
		return successorVEB(ix.data, x)
	case layout.Hier:
		return successorHier(ix.data, ix.b, x)
	}
	return -1
}

func successorBinary[T cmp.Ordered](a []T, x T) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(a) {
		return -1
	}
	return lo
}

// successorTree descends a binary layout tracking the last key >= x.
func successorTree[T cmp.Ordered](a []T, x T, children func(pos int) (int, int), n int) int {
	pos, cand := 0, -1
	for pos < n {
		l, r := children(pos)
		if a[pos] >= x {
			cand = pos
			pos = l
		} else {
			pos = r
		}
	}
	return cand
}

func successorBTree[T cmp.Ordered](a []T, b int, x T) int {
	n := len(a)
	node, cand := 0, -1
	for {
		start := node * b
		if start >= n {
			return cand
		}
		end := min(start+b, n)
		c := start
		for c < end && a[c] < x {
			c++
		}
		if c < end {
			cand = c
		}
		node = node*(b+1) + 1 + (c - start)
	}
}

func successorVEB[T cmp.Ordered](a []T, x T) int {
	n := len(a)
	if n == 0 {
		return -1
	}
	cur := layout.NewVEBNav(n).Cursor()
	cand := -1
	for {
		pos := cur.Pos()
		dir := 1
		if a[pos] >= x {
			cand = pos
			dir = 0
		}
		if !cur.Descend(dir) {
			return cand
		}
	}
}

// Range calls yield for every key in [lo, hi], in ascending order,
// stopping early if yield returns false. It works on every layout by
// walking the conceptual tree in order: O(k + log N) node visits for k
// reported keys.
func (ix *Index[T]) Range(lo, hi T, yield func(pos int, key T) bool) {
	if hi < lo || len(ix.data) == 0 {
		return
	}
	switch ix.kind {
	case layout.Sorted:
		start := successorBinary(ix.data, lo)
		if start < 0 {
			return
		}
		for pos := start; pos < len(ix.data) && ix.data[pos] <= hi; pos++ {
			if !yield(pos, ix.data[pos]) {
				return
			}
		}
	case layout.BTree:
		ix.rangeBTree(0, lo, hi, &yieldState[T]{yield: yield})
	case layout.Hier:
		ix.rangeHier(0, lo, hi, &yieldState[T]{yield: yield})
	default:
		ix.rangeTree(0, 0, lo, hi, &yieldState[T]{yield: yield})
	}
}

// Scan calls yield for every key in the index, in ascending sorted
// order, stopping early if yield returns false. Like Range it walks the
// conceptual tree in order — O(N) node visits, no unpermuting, no
// allocation — which is how the store streams whole shards for
// sorted-order export-style reads while they keep serving point queries.
func (ix *Index[T]) Scan(yield func(pos int, key T) bool) {
	switch ix.kind {
	case layout.Sorted:
		for pos, key := range ix.data {
			if !yield(pos, key) {
				return
			}
		}
	case layout.BTree:
		ix.scanBTree(0, &yieldState[T]{yield: yield})
	case layout.Hier:
		ix.scanHier(0, &yieldState[T]{yield: yield})
	default:
		ix.scanTree(0, 0, &yieldState[T]{yield: yield})
	}
}

// scanTree walks the conceptual complete BST under (depth, rank) in
// order, unconditionally: Range with the comparisons stripped out.
func (ix *Index[T]) scanTree(depth, rank int, st *yieldState[T]) {
	bfs := (1 << uint(depth)) - 1 + rank
	if bfs >= len(ix.data) || st.done {
		return
	}
	ix.scanTree(depth+1, 2*rank, st)
	if st.done {
		return
	}
	pos := ix.posOf(depth, rank)
	if !st.yield(pos, ix.data[pos]) {
		st.done = true
		return
	}
	ix.scanTree(depth+1, 2*rank+1, st)
}

// scanBTree walks the multi-way node tree in order, unconditionally.
func (ix *Index[T]) scanBTree(node int, st *yieldState[T]) {
	n := len(ix.data)
	start := node * ix.b
	if start >= n || st.done {
		return
	}
	end := min(start+ix.b, n)
	for c := start; c < end; c++ {
		ix.scanBTree(node*(ix.b+1)+1+(c-start), st)
		if st.done {
			return
		}
		if !st.yield(c, ix.data[c]) {
			st.done = true
			return
		}
	}
	ix.scanBTree(node*(ix.b+1)+1+ix.b, st)
}

type yieldState[T any] struct {
	yield func(pos int, key T) bool
	done  bool
}

// rangeTree walks the conceptual complete BST under (depth, rank) in
// order, pruning subtrees outside [lo, hi].
func (ix *Index[T]) rangeTree(depth, rank int, lo, hi T, st *yieldState[T]) {
	if st.done {
		return
	}
	bfs := (1 << uint(depth)) - 1 + rank
	if bfs >= len(ix.data) {
		return
	}
	pos := ix.posOf(depth, rank)
	key := ix.data[pos]
	if key > lo {
		ix.rangeTree(depth+1, 2*rank, lo, hi, st)
	}
	if st.done {
		return
	}
	if key >= lo && key <= hi {
		if !st.yield(pos, key) {
			st.done = true
			return
		}
	}
	if key < hi {
		ix.rangeTree(depth+1, 2*rank+1, lo, hi, st)
	}
}

// posOf maps a conceptual tree node to its array position in this layout.
func (ix *Index[T]) posOf(depth, rank int) int {
	switch ix.kind {
	case layout.BST:
		return (1 << uint(depth)) - 1 + rank
	case layout.VEB:
		return layout.NewVEBNav(len(ix.data)).Pos(depth, rank)
	case layout.BTree:
		// The conceptual binary tree of a B-tree layout is not the node
		// tree; map through in-order ranks instead.
		panic("unreachable: B-tree ranges use rangeBTree")
	}
	panic("search: posOf on sorted layout")
}

// rangeBTree walks the multi-way node tree in order.
func (ix *Index[T]) rangeBTree(node int, lo, hi T, st *yieldState[T]) {
	n := len(ix.data)
	start := node * ix.b
	if start >= n || st.done {
		return
	}
	end := min(start+ix.b, n)
	for c := start; c < end; c++ {
		key := ix.data[c]
		if key > lo {
			ix.rangeBTree(node*(ix.b+1)+1+(c-start), lo, hi, st)
			if st.done {
				return
			}
		}
		if key >= lo && key <= hi {
			if !st.yield(c, key) {
				st.done = true
				return
			}
		}
		if key > hi {
			return
		}
	}
	ix.rangeBTree(node*(ix.b+1)+1+ix.b, lo, hi, st)
}
