package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"implicitlayout/layout"
)

// TestPredecessorAgainstBinary: every layout's predecessor equals the
// sorted-array answer (compared by value), across sizes and queries.
func TestPredecessorAgainstBinary(t *testing.T) {
	const b = 4
	for _, n := range []int{1, 2, 3, 7, 26, 100, 511, 1000} {
		sorted := oddKeys(n)
		arrs := buildAll(n, b)
		for q := uint64(0); q <= uint64(2*n+2); q++ {
			want := PredecessorBinary(sorted, q)
			for kind, arr := range arrs {
				ix := NewIndex(arr, kind, b)
				got := ix.Predecessor(q)
				switch {
				case want == -1 && got != -1:
					t.Fatalf("%v n=%d q=%d: got pos %d, want -1", kind, n, q, got)
				case want >= 0 && (got < 0 || arr[got] != sorted[want]):
					t.Fatalf("%v n=%d q=%d: predecessor value mismatch", kind, n, q)
				}
			}
		}
	}
}

// TestPredecessorProperties: quick-check the defining property on random
// sizes: the result key is <= x and the successor key (if any) is > x.
func TestPredecessorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(qRaw uint32) bool {
		n := rng.Intn(2000) + 1
		x := uint64(qRaw) % uint64(2*n+2)
		sorted := oddKeys(n)
		for _, kind := range layout.Kinds() {
			arr := layout.Build(kind, sorted, 4)
			ix := NewIndex(arr, kind, 4)
			pos := ix.Predecessor(x)
			if pos == -1 {
				if sorted[0] <= x {
					return false
				}
				continue
			}
			v := arr[pos]
			if v > x {
				return false
			}
			// successor in sorted order must exceed x
			si := PredecessorBinary(sorted, x) + 1
			if si < n && sorted[si] <= x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
