package search

import (
	"cmp"
	"fmt"
	"math/bits"
	"runtime"

	"implicitlayout/internal/par"
	"implicitlayout/layout"
)

// This file holds the batched, interleaved search kernels (software
// AMAC): each kernel advances a ring of in-flight query state machines,
// one tree step per machine per rotation, issuing the next node's load
// before rotating away. By the time the ring comes back around, the
// line is resident, so one query's memory latency is hidden behind the
// compare work of the ring's other queries — the asynchronous
// memory-access chaining of Kocberber et al., in portable Go: with no
// prefetch intrinsic, the "prefetch" is an ordinary early load whose
// value is consumed one rotation later, which leaves the out-of-order
// core free to overlap the ring's independent misses.
//
// Every kernel answers the same contract: pos[i] receives the array
// position of queries[i] (or -1 when absent) — pos may be nil when only
// the hit count is wanted — and the result is identical to running the
// layout's serial searcher per query. Finished slots are refilled from
// the pending queries, so the ring stays full until the batch drains.

// batchRing is the number of in-flight searches per ring. One rotation
// must outlast a memory fetch for the early loads to land in time: at a
// handful of ns of compare work per machine step, 32 machines cover
// DRAM latency with slack, keeping the per-core miss buffers (~10-16
// outstanding lines) saturated even while some loads are still queued
// behind them. Measured on the lockstep kernels, 32 edges out 16 on
// every layout (see BenchmarkBatchKernels) and the extra state is a few
// hundred bytes.
const batchRing = 32

// InterleaveMinBatch is the per-worker batch size from which the
// batched Index queries (FindBatch, FindBatchInto) dispatch to the
// interleaved ring kernels instead of one-at-a-time descents: below
// roughly two ring fills the admission and drain bookkeeping is not
// amortized, and the serial kernels win.
const InterleaveMinBatch = 2 * batchRing

// b2i converts a comparison result to an int without a branch in the
// callers' compare loops (the compiler lowers it to a flag move).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// bstMach is one in-flight Eytzinger search: the query, the current
// node as a 1-based level-order index (children 2j and 2j+1 — the
// Khuong–Morin indexing, whose bit trail recovers the answer), and the
// node's value, loaded when the node was entered one rotation ago.
type bstMach[T cmp.Ordered] struct {
	q T
	v T // a[j-1], loaded one rotation ago
	j int
}

// BSTBatch answers many independent queries against the level-order
// (Eytzinger) BST layout with a ring of interleaved branch-free
// descents. Results match BST per query; pos may be nil.
func BSTBatch[T cmp.Ordered](a, queries []T, pos []int) int {
	return bstBatchRing(a, queries, pos, batchRing)
}

func bstBatchRing[T cmp.Ordered](a, queries []T, pos []int, ring int) (hits int) {
	n := len(a)
	if len(queries) == 0 {
		return 0
	}
	if n == 0 {
		for i := range queries {
			if pos != nil {
				pos[i] = -1
			}
		}
		return 0
	}
	if ring < 1 {
		ring = 1
	}
	root := a[0]
	ms := make([]bstMach[T], ring)
	// full is the number of completely occupied tree levels: a complete
	// tree's root-to-leaf paths all descend through them, which is what
	// makes the group lockstep below branch-free.
	full := bits.Len(uint(n+1)) - 1
	for base := 0; base < len(queries); base += ring {
		g := min(ring, len(queries)-base)
		for s := 0; s < g; s++ {
			ms[s] = bstMach[T]{q: queries[base+s], v: root, j: 1}
		}
		// Lockstep through the full levels: every machine takes one
		// branch-free descent step — j = 2j + (v < q), then the early
		// load of the next node — per rotation. The loads of the g
		// in-flight searches are independent, so the core overlaps
		// their misses; no exit checks, no data-dependent branches.
		for step := 0; step < full-1; step++ {
			for s := 0; s < g; s++ {
				m := &ms[s]
				j := 2*m.j + b2i(m.v < m.q)
				m.j = j
				m.v = a[j-1]
			}
		}
		// Conditional tail: at most the partial last level remains.
		// The descent went left exactly at the nodes with key >= q, so
		// stripping the trailing ones of the overflowed index walks
		// back up to the lower bound (Khuong–Morin).
		for s := 0; s < g; s++ {
			m := &ms[s]
			j := 2*m.j + b2i(m.v < m.q)
			for j <= n {
				m.j = j
				m.v = a[j-1]
				j = 2*j + b2i(m.v < m.q)
			}
			lb := j >> uint(bits.TrailingZeros(^uint(j))+1)
			res := -1
			if lb >= 1 && a[lb-1] == m.q {
				res = lb - 1
				hits++
			}
			if pos != nil {
				pos[base+s] = res
			}
		}
	}
	return hits
}

// btreeMach is one in-flight B-tree search: the query, the node
// (block) about to be scanned, its first and last keys — loaded when
// the parent step chose it, which is what puts the block's cache lines
// in flight one rotation early — and the accumulated answer.
type btreeMach[T cmp.Ordered] struct {
	q      T
	v0, v1 T // a[node*b], a[node*b+b-1], loaded one rotation ago
	node   int
	res    int // -1 until an in-block equality lands
}

// btreeFullLevels returns the number of tree levels whose blocks are
// all complete (b keys, b+1 children): level k holds (b+1)^k nodes
// starting at node index ((b+1)^k - 1)/b, and is full when its last
// block's end stays within n keys. Descents through full levels need
// no bounds clamps — the branch-free lockstep phase of BTreeBatch.
func btreeFullLevels(n, b int) int {
	full := 0
	levelStart, nodes := 0, 1
	for (levelStart+nodes)*b <= n {
		full++
		levelStart = levelStart*(b+1) + 1
		nodes *= b + 1
	}
	return full
}

// BTreeBatch answers many independent queries against the level-order
// B-tree layout (b keys per node) with a ring of interleaved searches:
// each step scans one block with a branch-free compare loop (count the
// keys below q — no early exit, no per-key branch) and warms the
// chosen child block's lines before rotating away. Results match BTree
// per query; pos may be nil.
func BTreeBatch[T cmp.Ordered](a []T, b int, queries []T, pos []int) int {
	return btreeBatchRing(a, b, queries, pos, batchRing)
}

func btreeBatchRing[T cmp.Ordered](a []T, b int, queries []T, pos []int, ring int) (hits int) {
	n := len(a)
	if len(queries) == 0 {
		return 0
	}
	if n == 0 || b < 1 {
		for i := range queries {
			if pos != nil {
				pos[i] = -1
			}
		}
		return 0
	}
	if ring < 1 {
		ring = 1
	}
	ms := make([]btreeMach[T], ring)
	full := btreeFullLevels(n, b)
	if b == 1 {
		// Degenerate single-key blocks: the boundary-key scan below
		// assumes two distinct block ends, so send every level through
		// the conditional tail.
		full = 0
	}
	// The root block's boundary keys, preloaded for every machine's
	// first lockstep scan (unused when even the root is partial).
	var root0, root1 T
	if full >= 1 {
		root0, root1 = a[0], a[b-1]
	}
	// warm sinks the partial-level touches issued by the last full-level
	// step: those loads' values are never consumed, so the running
	// maximum keeps them observable (see BSTPrefetch), pinned at the
	// return below.
	var warm T
	for base := 0; base < len(queries); base += ring {
		g := min(ring, len(queries)-base)
		for s := 0; s < g; s++ {
			ms[s] = btreeMach[T]{q: queries[base+s], v0: root0, v1: root1, res: -1}
		}
		// Lockstep through all but the last full level: scan the whole
		// block branch-free — the boundary keys come from machine state,
		// consuming the loads issued one rotation ago — fold a possible
		// equality into res arithmetically (the clamped probe a[cl]
		// reads a just-scanned line, and when c == b it reads a key < q,
		// which can never equal q), pick child c, and load the child
		// block's boundary keys so its lines are in flight while the
		// other machines take their steps. The child sits in a full
		// level, so the loads need no bounds checks and no machine takes
		// a data-dependent branch.
		for step := 0; step < full-1; step++ {
			for s := 0; s < g; s++ {
				m := &ms[s]
				start := m.node * b
				c := b2i(m.v0 < m.q) + b2i(m.v1 < m.q)
				for _, v := range a[start+1 : start+b-1] {
					c += b2i(v < m.q)
				}
				cl := start + c - b2i(c == b)
				// Fold at most one equality in: the res < 0 factor keeps
				// the first (topmost) match, as the serial kernel does,
				// when duplicate keys put a second match deeper on the
				// same path.
				m.res += (b2i(a[cl] == m.q) & b2i(m.res < 0)) * (cl + 1)
				m.node = m.node*(b+1) + 1 + c
				j := m.node * b
				m.v0, m.v1 = a[j], a[j+b-1]
			}
		}
		// Last full level: same scan, but the chosen child lives in the
		// partial level, so warm its clamped block ends for the tail
		// instead of preloading state.
		if full >= 1 {
			for s := 0; s < g; s++ {
				m := &ms[s]
				start := m.node * b
				c := b2i(m.v0 < m.q) + b2i(m.v1 < m.q)
				for _, v := range a[start+1 : start+b-1] {
					c += b2i(v < m.q)
				}
				cl := start + c - b2i(c == b)
				m.res += (b2i(a[cl] == m.q) & b2i(m.res < 0)) * (cl + 1)
				m.node = m.node*(b+1) + 1 + c
				if j := m.node * b; j < n {
					if warm < a[j] {
						warm = a[j]
					}
					if e := min(j+b, n) - 1; e > j {
						if warm < a[e] {
							warm = a[e]
						}
					}
				}
			}
		}
		// Conditional tail: at most the partial last level remains.
		for s := 0; s < g; s++ {
			m := &ms[s]
			res := m.res
			for res < 0 {
				start := m.node * b
				if start >= n {
					break
				}
				end := min(start+b, n)
				c := 0
				for k := start; k < end; k++ {
					c += b2i(a[k] < m.q)
				}
				if p := start + c; p < end && a[p] == m.q {
					res = p
					break
				}
				m.node = m.node*(b+1) + 1 + c
			}
			if res >= 0 {
				hits++
			}
			if pos != nil {
				pos[base+s] = res
			}
		}
	}
	runtime.KeepAlive(warm)
	return hits
}

// vebMach is one in-flight van Emde Boas search: the query, the
// decomposition cursor positioned at the current node, the value
// loaded when that node was entered, and the last position whose key
// did not exceed the query (with its value, so resolution never
// reloads a line the descent has moved past).
type vebMach[T cmp.Ordered] struct {
	q    T
	v    T // a[cur.Pos()], loaded one rotation ago
	cv   T // a[cand]
	cand int
	done bool
	cur  layout.VEBCursor
}

// VEBBatch answers many independent queries against the van Emde Boas
// layout with a ring of interleaved cursor descents: the cursor's rank
// arithmetic for one query overlaps the other queries' loads, and the
// descent is two-way (track the last key <= q, verify equality once at
// the bottom) rather than re-testing equality every level. Results
// match VEB per query; pos may be nil.
func VEBBatch[T cmp.Ordered](a, queries []T, pos []int) int {
	return vebBatchRing(a, queries, pos, batchRing)
}

func vebBatchRing[T cmp.Ordered](a, queries []T, pos []int, ring int) (hits int) {
	n := len(a)
	if len(queries) == 0 {
		return 0
	}
	if n == 0 {
		for i := range queries {
			if pos != nil {
				pos[i] = -1
			}
		}
		return 0
	}
	if ring < 1 {
		ring = 1
	}
	nav := layout.NewVEBNav(n)
	rootCur := nav.Cursor()
	rootVal := a[rootCur.Pos()]
	ms := make([]vebMach[T], ring)
	for base := 0; base < len(queries); base += ring {
		g := min(ring, len(queries)-base)
		for s := 0; s < g; s++ {
			ms[s] = vebMach[T]{q: queries[base+s], v: rootVal, cand: -1, cur: rootCur}
		}
		// Lockstep descents: a complete tree's paths differ by at most
		// one level, so the done flag costs one predictable branch per
		// machine for the last rotation or two.
		for live := g; live > 0; {
			for s := 0; s < g; s++ {
				m := &ms[s]
				if m.done {
					continue
				}
				dir := 0
				if m.v <= m.q {
					m.cand, m.cv = m.cur.Pos(), m.v
					dir = 1
				}
				if !m.cur.Descend(dir) {
					m.done = true
					live--
					continue
				}
				m.v = a[m.cur.Pos()] // early load for the next rotation
			}
		}
		for s := 0; s < g; s++ {
			m := &ms[s]
			res := -1
			if m.cand >= 0 && m.cv == m.q {
				res = m.cand
				hits++
			}
			if pos != nil {
				pos[base+s] = res
			}
		}
	}
	return hits
}

// binMach is one in-flight branchless binary search: the query, the
// live window [lo, lo+ln), and the value at the window's midpoint,
// loaded when the window was set.
type binMach[T cmp.Ordered] struct {
	q      T
	v      T // a[lo + ln/2], loaded one rotation ago
	lo, ln int
}

// BinaryBatch answers many independent queries against the sorted
// baseline layout with a ring of interleaved branchless binary
// searches. Results match Binary per query; pos may be nil.
func BinaryBatch[T cmp.Ordered](a, queries []T, pos []int) int {
	return binBatchRing(a, queries, pos, batchRing)
}

func binBatchRing[T cmp.Ordered](a, queries []T, pos []int, ring int) (hits int) {
	n := len(a)
	if len(queries) == 0 {
		return 0
	}
	if n == 0 {
		for i := range queries {
			if pos != nil {
				pos[i] = -1
			}
		}
		return 0
	}
	if ring < 1 {
		ring = 1
	}
	rootVal := a[n/2]
	ms := make([]binMach[T], ring)
	// After k halvings the window holds at least (n+1)/2^k - 1 keys, so
	// the first Len(n+1)-2 steps can run without emptiness checks.
	uncond := max(bits.Len(uint(n+1))-2, 0)
	for base := 0; base < len(queries); base += ring {
		g := min(ring, len(queries)-base)
		for s := 0; s < g; s++ {
			ms[s] = binMach[T]{q: queries[base+s], v: rootVal, ln: n}
		}
		// Lockstep branchless halving: keep the midpoint in the window
		// when its key is not below q, drop it otherwise — arithmetic
		// only, so a machine's unpredictable comparison never flushes
		// the other machines' in-flight loads.
		for step := 0; step < uncond; step++ {
			for s := 0; s < g; s++ {
				m := &ms[s]
				lt := b2i(m.v < m.q)
				half := m.ln >> 1
				m.lo += -lt & (half + 1)
				m.ln = half - (lt &^ (m.ln & 1))
				m.v = a[m.lo+m.ln>>1] // early load for the next rotation
			}
		}
		// Conditional tail: a couple of keys per window remain.
		for s := 0; s < g; s++ {
			m := &ms[s]
			for m.ln > 0 {
				half := m.ln >> 1
				if m.v < m.q {
					m.lo += half + 1
					m.ln -= half + 1
				} else {
					m.ln = half
				}
				if m.ln > 0 {
					m.v = a[m.lo+m.ln>>1]
				}
			}
			// Window empty: lo is the lower bound.
			res := -1
			if m.lo < n && a[m.lo] == m.q {
				res = m.lo
				hits++
			}
			if pos != nil {
				pos[base+s] = res
			}
		}
	}
	return hits
}

// findBatchKernel routes one already-sized chunk to its layout's
// interleaved kernel.
func (ix *Index[T]) findBatchKernel(queries []T, pos []int) int {
	switch ix.kind {
	case layout.Sorted:
		return BinaryBatch(ix.data, queries, pos)
	case layout.BST:
		return BSTBatch(ix.data, queries, pos)
	case layout.BTree:
		return BTreeBatch(ix.data, ix.b, queries, pos)
	case layout.VEB:
		return VEBBatch(ix.data, queries, pos)
	case layout.Hier:
		return HierBatch(ix.data, ix.b, queries, pos)
	}
	panic(fmt.Sprintf("search: unknown layout %v", ix.kind))
}

// findBatchChunk answers one worker's chunk: interleaved above the
// dispatch threshold, one-at-a-time descents below it. pos may be nil.
func (ix *Index[T]) findBatchChunk(queries []T, pos []int) (hits int) {
	if len(queries) >= InterleaveMinBatch {
		return ix.findBatchKernel(queries, pos)
	}
	for i, q := range queries {
		p := ix.Find(q)
		if pos != nil {
			pos[i] = p
		}
		if p >= 0 {
			hits++
		}
	}
	return hits
}

// FindBatchInto answers all queries with p parallel workers (values
// below 1 fall back to serial), writing the array position of
// queries[i] — or -1 when absent — to pos[i], and returns the number of
// hits. len(pos) must equal len(queries). Positions let a caller
// resolve values without a second descent: the store's batched reads
// feed each position straight into the shard's value array.
//
// Chunks of at least InterleaveMinBatch queries run on the interleaved
// ring kernels, which answer the same queries identically to Find but
// overlap independent searches' memory latency; smaller chunks run
// serial descents.
func (ix *Index[T]) FindBatchInto(queries []T, pos []int, p int) (hits int) {
	if len(pos) != len(queries) {
		panic(fmt.Sprintf("search: FindBatchInto: %d queries but %d positions", len(queries), len(pos)))
	}
	return ix.findBatch(queries, pos, p)
}

// findBatch is the shared batch driver: partition across workers with
// par.Runner, answer each chunk, merge hit counts. pos may be nil when
// only the hit count is wanted (FindBatch).
func (ix *Index[T]) findBatch(queries []T, pos []int, p int) (hits int) {
	if p < 1 {
		p = 1
	}
	if p == 1 || len(queries) < 2*p {
		var chunkPos []int
		if pos != nil {
			chunkPos = pos[:len(queries)]
		}
		return ix.findBatchChunk(queries, chunkPos)
	}
	// Each iteration is a full tree descent, so forking pays off well
	// below par.DefaultMinFor — same partition idiom as store.GetBatch.
	r := par.Runner{Lo: 0, Hi: p, MinFor: 2 * p}
	partial := make([]int, p)
	r.For(len(queries), func(w, lo, hi int) {
		var chunkPos []int
		if pos != nil {
			chunkPos = pos[lo:hi]
		}
		partial[w] = ix.findBatchChunk(queries[lo:hi], chunkPos)
	})
	for _, h := range partial {
		hits += h
	}
	return hits
}
