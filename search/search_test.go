package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"implicitlayout/layout"
)

// oddKeys returns n sorted keys 1, 3, 5, ... so that even values are
// guaranteed misses.
func oddKeys(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(2*i + 1)
	}
	return s
}

func buildAll(n int, b int) map[layout.Kind][]uint64 {
	sorted := oddKeys(n)
	m := map[layout.Kind][]uint64{layout.Sorted: sorted}
	for _, k := range layout.Kinds() {
		m[k] = layout.Build(k, sorted, b)
	}
	return m
}

// TestFindAllPresentKeys: every key is found at the position that holds
// it, for every layout and a sweep of sizes including non-perfect ones.
func TestFindAllPresentKeys(t *testing.T) {
	const b = 3
	for _, n := range []int{1, 2, 3, 7, 8, 15, 26, 63, 64, 100, 255, 256, 1000} {
		for kind, arr := range buildAll(n, b) {
			ix := NewIndex(arr, kind, b)
			for i := 0; i < n; i++ {
				x := uint64(2*i + 1)
				pos := ix.Find(x)
				if pos < 0 || arr[pos] != x {
					t.Fatalf("%v n=%d: Find(%d) = %d (value %v)", kind, n, x, pos, safeAt(arr, pos))
				}
			}
		}
	}
}

func safeAt(a []uint64, i int) any {
	if i < 0 || i >= len(a) {
		return "out of range"
	}
	return a[i]
}

// TestFindMissesAbsentKeys: even values, 0, and values beyond the maximum
// all miss.
func TestFindMissesAbsentKeys(t *testing.T) {
	const b = 4
	for _, n := range []int{1, 5, 26, 100, 511, 513} {
		for kind, arr := range buildAll(n, b) {
			ix := NewIndex(arr, kind, b)
			for i := 0; i <= n; i++ {
				x := uint64(2 * i)
				if pos := ix.Find(x); pos != -1 {
					t.Fatalf("%v n=%d: Find(%d) = %d, want -1", kind, n, x, pos)
				}
			}
			if ix.Find(uint64(2*n+99)) != -1 {
				t.Fatalf("%v n=%d: found key beyond maximum", kind, n)
			}
		}
	}
}

// TestVariantsAgree: the BST search variants and binary search agree on
// hit/miss for random queries (property test).
func TestVariantsAgree(t *testing.T) {
	n := 1000
	sorted := oddKeys(n)
	bst := layout.Build(layout.BST, sorted, 0)
	f := func(q uint64) bool {
		q %= uint64(2*n + 2)
		hit := Binary(sorted, q) >= 0
		p1 := BST(bst, q)
		p2 := BSTBranchless(bst, q)
		p3 := BSTPrefetch(bst, q)
		ok := (p1 >= 0) == hit && (p2 >= 0) == hit && (p3 >= 0) == hit
		if hit {
			ok = ok && bst[p1] == q && bst[p2] == q && bst[p3] == q
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeWideNodes exercises the in-node binary search path (b > 16).
func TestBTreeWideNodes(t *testing.T) {
	const b = 32
	for _, n := range []int{1, 31, 32, 33, 1000, 32*33 + 17} {
		sorted := oddKeys(n)
		arr := layout.Build(layout.BTree, sorted, b)
		for i := 0; i < n; i++ {
			x := uint64(2*i + 1)
			pos := BTree(arr, b, x)
			if pos < 0 || arr[pos] != x {
				t.Fatalf("n=%d: wide BTree Find(%d) failed", n, x)
			}
			if BTree(arr, b, x+1) != -1 {
				t.Fatalf("n=%d: wide BTree found absent %d", n, x+1)
			}
		}
	}
}

// TestVEBSearchRandomSizes fuzzes vEB search over random non-perfect sizes.
func TestVEBSearchRandomSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(5000) + 1
		sorted := oddKeys(n)
		arr := layout.Build(layout.VEB, sorted, 0)
		for probe := 0; probe < 200; probe++ {
			i := rng.Intn(n)
			x := uint64(2*i + 1)
			pos := VEB(arr, x)
			if pos < 0 || arr[pos] != x {
				t.Fatalf("n=%d: VEB Find(%d) failed (pos=%d)", n, x, pos)
			}
			if VEB(arr, x-1) != -1 {
				t.Fatalf("n=%d: VEB found absent %d", n, x-1)
			}
		}
	}
}

// TestFindBatch counts hits correctly in serial and parallel.
func TestFindBatch(t *testing.T) {
	n := 4096
	sorted := oddKeys(n)
	arr := layout.Build(layout.BTree, sorted, 8)
	ix := NewIndex(arr, layout.BTree, 8)
	queries := make([]uint64, 0, 2*n)
	for i := 0; i < n; i++ {
		queries = append(queries, uint64(2*i+1), uint64(2*i)) // hit, miss
	}
	for _, p := range []int{1, 2, 4, 7} {
		if hits := ix.FindBatch(queries, p); hits != n {
			t.Fatalf("p=%d: FindBatch hits = %d, want %d", p, hits, n)
		}
	}
	if hits := ix.FindBatch(nil, 4); hits != 0 {
		t.Fatalf("empty batch: hits = %d", hits)
	}
}

// TestEmptyAndSingle cover degenerate arrays.
func TestEmptyAndSingle(t *testing.T) {
	if Binary([]uint64{}, 1) != -1 || BST([]uint64{}, 1) != -1 ||
		BTree([]uint64{}, 4, 1) != -1 || VEB([]uint64{}, 1) != -1 {
		t.Fatal("searches on empty arrays must miss")
	}
	one := []uint64{42}
	for kind := range buildAll(1, 2) {
		ix := NewIndex(one, kind, 2)
		if ix.Find(42) != 0 || ix.Find(41) != -1 {
			t.Fatalf("%v: single-element search wrong", kind)
		}
	}
}
