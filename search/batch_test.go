package search

import (
	"math/rand"
	"testing"

	"implicitlayout/layout"
)

// ringKernel runs one layout's interleaved kernel with an explicit ring
// size — the knob the exported wrappers fix at batchRing.
func ringKernel(kind layout.Kind, arr []uint64, b int, queries []uint64, pos []int, ring int) int {
	switch kind {
	case layout.Sorted:
		return binBatchRing(arr, queries, pos, ring)
	case layout.BST:
		return bstBatchRing(arr, queries, pos, ring)
	case layout.BTree:
		return btreeBatchRing(arr, b, queries, pos, ring)
	case layout.VEB:
		return vebBatchRing(arr, queries, pos, ring)
	case layout.Hier:
		return hierBatchRing(arr, b, queries, pos, ring)
	}
	panic("unknown kind")
}

func allKindsWithSorted() []layout.Kind {
	return append([]layout.Kind{layout.Sorted}, layout.Kinds()...)
}

// TestBatchKernelsMatchSerial: on unique keys, every ring kernel returns
// exactly the serial Find position for every query — across layouts,
// ring sizes (including 1 and rings larger than the batch), batch sizes
// (empty, smaller than the ring, non-multiples of the ring), and array
// sizes with partial last levels.
func TestBatchKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 7, 26, 100, 513, 4095} {
		sorted := oddKeys(n)
		for _, b := range []int{1, 3, 8} {
			for _, kind := range allKindsWithSorted() {
				arr := layout.Build(kind, sorted, b)
				ix := NewIndex(arr, kind, b)
				for _, nq := range []int{0, 1, 5, 31, 32, 33, 100} {
					queries := make([]uint64, nq)
					for i := range queries {
						queries[i] = uint64(rng.Intn(2*n + 2))
					}
					want := make([]int, nq)
					wantHits := 0
					for i, q := range queries {
						want[i] = ix.Find(q)
						if want[i] >= 0 {
							wantHits++
						}
					}
					for _, ring := range []int{1, 2, 8, 16, 32, 64} {
						pos := make([]int, nq)
						for i := range pos {
							pos[i] = -2 // poison: every slot must be written
						}
						hits := ringKernel(kind, arr, b, queries, pos, ring)
						if hits != wantHits {
							t.Fatalf("%v n=%d b=%d nq=%d ring=%d: hits = %d, want %d",
								kind, n, b, nq, ring, hits, wantHits)
						}
						for i := range pos {
							if pos[i] != want[i] {
								t.Fatalf("%v n=%d b=%d nq=%d ring=%d: pos[%d] = %d, want %d (query %d)",
									kind, n, b, nq, ring, i, pos[i], want[i], queries[i])
							}
						}
						// nil pos: count-only contract.
						if hits := ringKernel(kind, arr, b, queries, nil, ring); hits != wantHits {
							t.Fatalf("%v n=%d b=%d nq=%d ring=%d: nil-pos hits = %d, want %d",
								kind, n, b, nq, ring, hits, wantHits)
						}
					}
				}
			}
		}
	}
}

// TestBatchKernelsEmptyArray: kernels on an empty index miss every query
// and still write every position.
func TestBatchKernelsEmptyArray(t *testing.T) {
	queries := []uint64{0, 1, 2}
	for _, kind := range allKindsWithSorted() {
		pos := []int{7, 7, 7}
		if hits := ringKernel(kind, nil, 4, queries, pos, 8); hits != 0 {
			t.Fatalf("%v: empty array returned %d hits", kind, hits)
		}
		for i, p := range pos {
			if p != -1 {
				t.Fatalf("%v: pos[%d] = %d on empty array, want -1", kind, i, p)
			}
		}
	}
}

// TestBatchKernelsDuplicates: with duplicate keys a kernel may land on a
// different equal occurrence than the serial descent (the lockstep BST
// answer is the in-order-lowest equal key; serial BST stops at the
// topmost on its path), so parity is semantic: hit iff serial hits, and
// any returned position must hold the query.
func TestBatchKernelsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{9, 64, 257} {
		sorted := make([]uint64, n)
		k := uint64(1)
		for i := range sorted {
			sorted[i] = k
			if rng.Intn(3) > 0 { // runs of duplicates, odd values only
				k += 2
			}
		}
		for _, b := range []int{2, 8} {
			for _, kind := range allKindsWithSorted() {
				arr := layout.Build(kind, sorted, b)
				ix := NewIndex(arr, kind, b)
				queries := make([]uint64, 200)
				for i := range queries {
					queries[i] = uint64(rng.Intn(int(sorted[n-1]) + 2))
				}
				for _, ring := range []int{1, 16} {
					pos := make([]int, len(queries))
					hits := ringKernel(kind, arr, b, queries, pos, ring)
					wantHits := 0
					for i, q := range queries {
						serial := ix.Find(q)
						if serial >= 0 {
							wantHits++
						}
						if (pos[i] >= 0) != (serial >= 0) {
							t.Fatalf("%v n=%d b=%d ring=%d: query %d ring pos %d, serial %d",
								kind, n, b, ring, q, pos[i], serial)
						}
						if pos[i] >= 0 && arr[pos[i]] != q {
							t.Fatalf("%v n=%d b=%d ring=%d: pos[%d] = %d holds %d, want %d",
								kind, n, b, ring, i, pos[i], arr[pos[i]], q)
						}
					}
					if hits != wantHits {
						t.Fatalf("%v n=%d b=%d ring=%d: hits = %d, want %d", kind, n, b, ring, hits, wantHits)
					}
				}
			}
		}
	}
}

// TestFindBatchInto: positions come back aligned with queries through
// the public batch entry point, on both the serial and parallel paths
// and on chunks both above and below the interleave threshold.
func TestFindBatchInto(t *testing.T) {
	const n, b = 1 << 12, 8
	sorted := oddKeys(n)
	rng := rand.New(rand.NewSource(3))
	for _, kind := range allKindsWithSorted() {
		arr := layout.Build(kind, sorted, b)
		ix := NewIndex(arr, kind, b)
		for _, nq := range []int{InterleaveMinBatch / 2, 8 * InterleaveMinBatch} {
			queries := make([]uint64, nq)
			for i := range queries {
				queries[i] = uint64(rng.Intn(2*n + 2))
			}
			for _, p := range []int{1, 4} {
				pos := make([]int, nq)
				hits := ix.FindBatchInto(queries, pos, p)
				wantHits := 0
				for i, q := range queries {
					want := ix.Find(q)
					if want >= 0 {
						wantHits++
					}
					if pos[i] != want {
						t.Fatalf("%v nq=%d p=%d: pos[%d] = %d, want %d", kind, nq, p, i, pos[i], want)
					}
				}
				if hits != wantHits {
					t.Fatalf("%v nq=%d p=%d: hits = %d, want %d", kind, nq, p, hits, wantHits)
				}
				if got := ix.FindBatch(queries, p); got != wantHits {
					t.Fatalf("%v nq=%d p=%d: FindBatch = %d, want %d", kind, nq, p, got, wantHits)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FindBatchInto with mismatched pos length did not panic")
		}
	}()
	ix := NewIndex(sorted, layout.Sorted, 0)
	ix.FindBatchInto(make([]uint64, 4), make([]int, 3), 1)
}

// FuzzBatchParity cross-checks every ring kernel against serial Find on
// fuzzed sizes, block capacities, ring sizes, and query streams.
func FuzzBatchParity(f *testing.F) {
	f.Add(uint16(1), uint8(1), uint8(1), uint64(0))
	f.Add(uint16(100), uint8(4), uint8(8), uint64(42))
	f.Add(uint16(4095), uint8(8), uint8(33), uint64(7))
	f.Add(uint16(513), uint8(31), uint8(16), uint64(99))
	f.Fuzz(func(t *testing.T, nRaw uint16, bRaw, ringRaw uint8, seed uint64) {
		n := int(nRaw)%2000 + 1
		b := int(bRaw)%16 + 1
		ring := int(ringRaw)%48 + 1
		sorted := oddKeys(n)
		queries := make([]uint64, 80)
		rng := seed
		for i := range queries {
			rng = rng*6364136223846793005 + 1442695040888963407
			queries[i] = rng % uint64(2*n+3)
		}
		for _, kind := range allKindsWithSorted() {
			arr := layout.Build(kind, sorted, b)
			ix := NewIndex(arr, kind, b)
			pos := make([]int, len(queries))
			hits := ringKernel(kind, arr, b, queries, pos, ring)
			wantHits := 0
			for i, q := range queries {
				want := ix.Find(q)
				if want >= 0 {
					wantHits++
				}
				if pos[i] != want {
					t.Fatalf("%v n=%d b=%d ring=%d: pos[%d] = %d, want %d (query %d)",
						kind, n, b, ring, i, pos[i], want, q)
				}
			}
			if hits != wantHits {
				t.Fatalf("%v n=%d b=%d ring=%d: hits = %d, want %d", kind, n, b, ring, hits, wantHits)
			}
		}
	})
}
