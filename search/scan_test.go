package search

import (
	"fmt"
	"reflect"
	"testing"

	"implicitlayout/layout"
)

// TestScanEnumeratesAllInOrder: Scan yields every key exactly once, in
// ascending order, at a position that really holds it, on every layout
// and a sweep of sizes including non-perfect ones.
func TestScanEnumeratesAllInOrder(t *testing.T) {
	const b = 4
	for _, n := range []int{0, 1, 2, 5, 7, 26, 100, 511, 512, 1000} {
		sorted := oddKeys(n)
		for kind, arr := range buildAll(n, b) {
			ix := NewIndex(arr, kind, b)
			var got []uint64
			ix.Scan(func(pos int, key uint64) bool {
				if arr[pos] != key {
					t.Fatalf("%v n=%d: yielded pos %d does not hold %d", kind, n, pos, key)
				}
				got = append(got, key)
				return true
			})
			if !reflect.DeepEqual(got, sorted) && !(len(got) == 0 && n == 0) {
				t.Fatalf("%v n=%d:\n got %v\nwant %v", kind, n, got, sorted)
			}
		}
	}
}

// TestScanEarlyStop: yield returning false stops the scan immediately.
func TestScanEarlyStop(t *testing.T) {
	const n = 1000
	for kind, arr := range buildAll(n, 4) {
		ix := NewIndex(arr, kind, 4)
		count := 0
		ix.Scan(func(int, uint64) bool {
			count++
			return count < 5
		})
		if count != 5 {
			t.Fatalf("%v: early stop yielded %d keys, want 5", kind, count)
		}
	}
}

// TestRankAccessors: PosOfRank inverts the layout permutation rank by
// rank, and AtRank returns the rank-th smallest key.
func TestRankAccessors(t *testing.T) {
	const b = 3
	for _, n := range []int{1, 2, 7, 26, 100, 513} {
		sorted := oddKeys(n)
		for kind, arr := range buildAll(n, b) {
			ix := NewIndex(arr, kind, b)
			for r := 0; r < n; r++ {
				if got := ix.AtRank(r); got != sorted[r] {
					t.Fatalf("%v n=%d: AtRank(%d) = %d, want %d", kind, n, r, got, sorted[r])
				}
				if pos := ix.PosOfRank(r); arr[pos] != sorted[r] {
					t.Fatalf("%v n=%d: PosOfRank(%d) = %d holds %d", kind, n, r, pos, arr[pos])
				}
			}
		}
	}
}

// TestBSTPrefetchGenericTypes: the prefetching searcher, now generic,
// agrees with the plain BST searcher for non-uint64 key types.
func TestBSTPrefetchGenericTypes(t *testing.T) {
	const n = 300
	sortedStr := make([]string, n)
	for i := range sortedStr {
		sortedStr[i] = fmt.Sprintf("key-%04d", 2*i+1)
	}
	arr := layout.Build(layout.BST, sortedStr, 0)
	for i := 0; i < 2*n+2; i++ {
		q := fmt.Sprintf("key-%04d", i)
		if got, want := BSTPrefetch(arr, q), BST(arr, q); got != want {
			t.Fatalf("string key %q: prefetch %d, plain %d", q, got, want)
		}
	}

	sortedI := make([]int32, n)
	for i := range sortedI {
		sortedI[i] = int32(3*i) - 450 // negatives included
	}
	arrI := layout.Build(layout.BST, sortedI, 0)
	for q := int32(-460); q < 460; q++ {
		if got, want := BSTPrefetch(arrI, q), BST(arrI, q); got != want {
			t.Fatalf("int32 key %d: prefetch %d, plain %d", q, got, want)
		}
	}
}

// TestIndexFindUsesPrefetchPath: above the wiring threshold the BST index
// answers through BSTPrefetch; verify query answers stay correct there.
func TestIndexFindUsesPrefetchPath(t *testing.T) {
	n := bstPrefetchMinLen // exactly at the threshold: prefetch path
	sorted := oddKeys(n)
	arr := layout.Build(layout.BST, sorted, 0)
	ix := NewIndex(arr, layout.BST, 0)
	for i := 0; i < 4000; i++ {
		present := uint64(2*(i*7%n) + 1)
		if pos := ix.Find(present); pos < 0 || arr[pos] != present {
			t.Fatalf("Find(%d) = %d on prefetch path", present, pos)
		}
		if pos := ix.Find(present - 1); pos != -1 {
			t.Fatalf("Find(%d) = %d, want -1 on prefetch path", present-1, pos)
		}
	}
}
