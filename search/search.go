// Package search implements the query side of every memory layout the
// repository builds. The layout-specific kernels — plain binary search
// on sorted arrays (the paper's baseline), level-order BST search with
// and without explicit prefetching, level-order B-tree search, and van
// Emde Boas search — are the engines behind the paper's evaluation
// figures 6.5–6.7 and 6.9, and the Index type wraps any laid-out array
// in one queryable interface over them.
//
// Beyond exact membership, an Index answers predecessor and successor
// queries, gives positional access in sorted order (PosOfRank/AtRank,
// O(log N) index arithmetic with no rank table), and streams keys in
// ascending order with Range and Scan by walking the conceptual tree in
// order — no unpermuting, no allocation. FindBatch fans independent
// queries across workers, the embarrassingly parallel workload of the
// paper's GPU evaluation. These primitives are what the store layer
// builds its record serving on: positions returned by an Index are array
// positions, so a value slice moved by perm.PermuteWith is indexed by
// the very same integers.
package search

import (
	"cmp"
	"runtime"

	"implicitlayout/layout"
)

// Binary performs classical binary search on a sorted array and returns
// the index of x, or -1. It is the no-permutation baseline: optimal
// O(log N) comparisons but one cache line touched per comparison.
func Binary[T cmp.Ordered](a []T, x T) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case a[mid] == x:
			return mid
		case a[mid] < x:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}

// BST searches the level-order (Eytzinger) BST layout and returns the
// position of x, or -1. Children of position i sit at 2i+1 and 2i+2, so
// the top levels of the tree share a handful of cache lines.
func BST[T cmp.Ordered](a []T, x T) int {
	n := len(a)
	i := 0
	for i < n {
		v := a[i]
		switch {
		case x == v:
			return i
		case x < v:
			i = 2*i + 1
		default:
			i = 2*i + 2
		}
	}
	return -1
}

// BSTBranchless searches the BST layout without an equality branch in the
// loop (Khuong–Morin): it always descends to a leaf, tracking the position
// of the last element not exceeding x, and verifies once at the end.
func BSTBranchless[T cmp.Ordered](a []T, x T) int {
	n := len(a)
	i := 0
	cand := -1
	for i < n {
		if a[i] <= x {
			cand = i
			i = 2*i + 2
		} else {
			i = 2*i + 1
		}
	}
	if cand >= 0 && a[cand] == x {
		return cand
	}
	return -1
}

// BSTPrefetch searches the BST layout while explicitly touching the
// great-grandchild block of the current node, emulating the software
// prefetching that Khuong and Morin report roughly doubles BST query
// throughput. Go has no portable prefetch intrinsic, so the "hint" is an
// ordinary load: by the time the search descends three levels, the line
// is resident. It works for any ordered key type; the warm-up load feeds
// a running maximum that runtime.KeepAlive pins at every exit, which
// keeps each load observable to the compiler without a shared sink — so
// concurrent batch queries stay free of data races.
func BSTPrefetch[T cmp.Ordered](a []T, x T) int {
	n := len(a)
	i := 0
	var warm T
	for i < n {
		if j := 8*i + 7; j < n {
			if warm < a[j] { // pull the great-grandchildren's cache line
				warm = a[j]
			}
		}
		v := a[i]
		switch {
		case x == v:
			runtime.KeepAlive(warm)
			return i
		case x < v:
			i = 2*i + 1
		default:
			i = 2*i + 2
		}
	}
	runtime.KeepAlive(warm)
	return -1
}

// BTree searches the level-order B-tree layout (b keys per node) and
// returns the position of x, or -1. Each node is one contiguous run of b
// keys — with b matched to the cache line size, every level costs a single
// line fill, the locality that makes this the fastest query layout in the
// paper's measurements.
func BTree[T cmp.Ordered](a []T, b int, x T) int {
	n := len(a)
	node := 0
	for {
		start := node * b
		if start >= n {
			return -1
		}
		end := start + b
		if end > n {
			end = n
		}
		c := start
		if b > 16 {
			// binary search within wide nodes
			lo, hi := start, end
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if a[mid] < x {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			c = lo
		} else {
			for c < end && a[c] < x {
				c++
			}
		}
		if c < end && a[c] == x {
			return c
		}
		node = node*(b+1) + 1 + (c - start)
	}
}

// VEB searches the van Emde Boas layout and returns the position of x, or
// -1. The descent walks the conceptual complete BST and converts nodes to
// array positions through an incremental decomposition cursor; the extra
// index arithmetic per level is the overhead that leaves vEB queries
// measurably behind B-tree queries in the paper despite comparable
// locality.
func VEB[T cmp.Ordered](a []T, x T) int {
	n := len(a)
	if n == 0 {
		return -1
	}
	cur := layout.NewVEBNav(n).Cursor()
	for {
		pos := cur.Pos()
		v := a[pos]
		switch {
		case x == v:
			return pos
		case x < v:
			if !cur.Descend(0) {
				return -1
			}
		default:
			if !cur.Descend(1) {
				return -1
			}
		}
	}
}
