package search

import (
	"fmt"
	"testing"

	"implicitlayout/layout"
)

// Benchmarks comparing one-at-a-time descents against the interleaved
// ring kernels on an out-of-cache index — the measurement behind the
// FindBatch dispatch rule and bench.BatchThroughput.
func BenchmarkBatchKernels(b *testing.B) {
	const logN = 22
	n := 1 << logN
	sorted := oddKeys(n)
	queries := make([]uint64, 1<<20)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := range queries {
		rng = rng*6364136223846793005 + 1442695040888963407
		queries[i] = rng % uint64(2*n)
	}
	pos := make([]int, len(queries))
	for _, kind := range []layout.Kind{layout.BST, layout.BTree, layout.VEB, layout.Hier, layout.Sorted} {
		arr := layout.Build(kind, sorted, 8)
		ix := NewIndex(arr, kind, 8)
		b.Run(fmt.Sprintf("%v/serial", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := 0
				for _, q := range queries {
					if ix.Find(q) >= 0 {
						h++
					}
				}
			}
			b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
		})
		for _, ring := range []int{8, 16, 32} {
			b.Run(fmt.Sprintf("%v/ring%d", kind, ring), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					switch kind {
					case layout.BST:
						bstBatchRing(arr, queries, pos, ring)
					case layout.BTree:
						btreeBatchRing(arr, 8, queries, pos, ring)
					case layout.VEB:
						vebBatchRing(arr, queries, pos, ring)
					case layout.Sorted:
						binBatchRing(arr, queries, pos, ring)
					}
				}
				b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
			})
		}
	}
}
